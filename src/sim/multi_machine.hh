/**
 * @file
 * A multiprogrammed native machine: N processes, each with its own
 * page table, superpage policy, and workload stream, time-sharing one
 * TLB hierarchy, hardware walker, and cache hierarchy. Context
 * switches happen every `quantum` translated references under one of
 * two policies: FullFlush (the untagged baseline — every switch drops
 * both TLB levels and the PWC) or AsidTagged (entries carry the
 * owning process's ASID and survive switches, competing for capacity).
 */

#ifndef MIXTLB_SIM_MULTI_MACHINE_HH
#define MIXTLB_SIM_MULTI_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "os/memhog.hh"
#include "os/memory_manager.hh"
#include "os/process.hh"
#include "os/scan.hh"
#include "perf/energy_model.hh"
#include "perf/perf_model.hh"
#include "sim/configs.hh"
#include "tlb/hierarchy.hh"
#include "tlb/walk_source.hh"
#include "workload/generator.hh"

namespace mixtlb::sim
{

/** What a context switch does to the translation caches. */
enum class SwitchPolicy : std::uint8_t
{
    FullFlush,  ///< untagged hardware: flush TLBs + PWC every switch
    AsidTagged, ///< tagged hardware: no flush, entries coexist
};

const char *switchPolicyName(SwitchPolicy policy);

struct MultiMachineParams
{
    std::string name = "multi";
    std::uint64_t memBytes = 8ULL << 30;
    /** One entry per process (name defaults to "procN" when empty). */
    std::vector<os::ProcessParams> procs;
    /** Translated references per scheduling slice. */
    std::uint64_t quantum = 1024;
    SwitchPolicy policy = SwitchPolicy::AsidTagged;
    TlbDesign design = TlbDesign::Split;
    ConfigScale scale{};
    double memhogFraction = 0.0;
    double memhogUnmovableShare = 0.2;
    std::uint64_t seed = 1;
    bool dataRefsThroughCaches = true;
    unsigned pwcEntries = 0;
    cache::HierarchyParams caches{};
    tlb::TlbHierarchyParams tlbLatency{};
};

/**
 * N processes round-robin scheduled over one shared TlbHierarchy.
 *
 * Per-process translation statistics (accesses, hits, walk cycles,
 * fills, energy feeders) are attributed by snapshotting the shared
 * hierarchy's counters around each slice, and land in per-process
 * stat groups "p0", "p1", ... under the machine root.
 */
class MultiMachine
{
  public:
    explicit MultiMachine(const MultiMachineParams &params);

    unsigned numProcs() const
    {
        return static_cast<unsigned>(procs_.size());
    }

    /** ASID of process @p proc. ASID 0 stays the single-process default. */
    static Asid asidOf(unsigned proc)
    {
        return static_cast<Asid>(proc + 1);
    }

    /** Reserve a virtual arena for process @p proc's workload. */
    VAddr mapArena(unsigned proc, std::uint64_t bytes);

    /** Pre-touch + pre-translate an arena as process @p proc. */
    void warmup(unsigned proc, VAddr base, std::uint64_t bytes,
                std::uint64_t step = pageBytes(PageSize::Size4K));

    /** Hand process @p proc its reference stream. */
    void attachWorkload(unsigned proc,
                        std::unique_ptr<workload::TraceGenerator> gen);

    /**
     * Round-robin all processes, @p refs_per_proc references each, in
     * quantum-sized slices. A process that runs out of memory is
     * parked; the rest keep running. Returns total references done.
     */
    std::uint64_t run(std::uint64_t refs_per_proc);

    /** Reset statistics after warmup. */
    void startMeasurement();

    /** Run every structural auditor (all processes + TLBs + memory). */
    void auditAll() const;

    /** Machine-wide metrics over the measured window. */
    perf::RunMetrics metrics(const perf::PerfParams &params = {}) const;

    /** Machine-wide energy-model inputs. */
    perf::EnergyInputs energyInputs() const;

    /** Per-process attribution scalar @p name (group "p<proc>"). */
    double procStat(unsigned proc, const std::string &name) const;

    /** Per-process L1 TLB miss fraction over the measured window. */
    double procL1MissRate(unsigned proc) const;

    os::PageSizeDistribution distribution(unsigned proc) const;

    double contextSwitches() const { return switches_.value(); }
    double fullFlushes() const { return flushes_.value(); }

    os::Process &process(unsigned proc) { return *procs_.at(proc); }
    tlb::TlbHierarchy &tlbs() { return *hier_; }
    stats::StatGroup &root() { return root_; }
    TlbDesign design() const { return params_.design; }
    SwitchPolicy policy() const { return params_.policy; }

  private:
    /** Snapshot of the shared hierarchy's counters for attribution. */
    struct Snapshot
    {
        double accesses = 0, l1Hits = 0, l2Hits = 0, walks = 0;
        double walkCycles = 0, translationCycles = 0;
        double walkAccesses = 0, walkDramAccesses = 0, dirtyOps = 0;
        double l1WaysRead = 0, l2WaysRead = 0;
        double l1Fills = 0, l2Fills = 0;
    };

    /** Per-process attribution scalars, group "p<index>". */
    struct ProcStats
    {
        ProcStats(unsigned index, stats::StatGroup *parent);

        stats::StatGroup group;
        stats::Scalar &accesses;
        stats::Scalar &l1Hits;
        stats::Scalar &l2Hits;
        stats::Scalar &walks;
        stats::Scalar &walkCycles;
        stats::Scalar &translationCycles;
        stats::Scalar &walkAccesses;
        stats::Scalar &walkDramAccesses;
        stats::Scalar &dirtyOps;
        stats::Scalar &l1WaysRead;
        stats::Scalar &l2WaysRead;
        stats::Scalar &l1Fills;
        stats::Scalar &l2Fills;
        stats::Scalar &slices;
    };

    Snapshot takeSnapshot() const;
    void accumulate(unsigned proc, const Snapshot &before);

    /**
     * Make @p proc the running process: bump the switch counters,
     * apply the flush policy, retarget the walker/PWC, and set the
     * active ASID at both TLB levels.
     */
    void switchTo(unsigned proc);

    /** Replay up to @p refs references of @p proc's stream. */
    std::uint64_t runSlice(unsigned proc, std::uint64_t refs);

    MultiMachineParams params_;
    stats::StatGroup root_;
    mem::PhysMem mem_;
    os::MemoryManager mm_;
    os::Memhog memhog_;
    cache::CacheHierarchy caches_;

    std::vector<std::unique_ptr<os::Process>> procs_;
    std::vector<std::unique_ptr<workload::TraceGenerator>> gens_;
    std::unique_ptr<tlb::MultiWalkSource> source_;
    std::unique_ptr<tlb::TlbHierarchy> hier_;
    std::vector<std::unique_ptr<ProcStats>> procStats_;

    stats::StatGroup sched_;
    stats::Scalar &switches_;
    stats::Scalar &flushes_;

    unsigned current_ = 0;
    bool everSwitched_ = false;
    std::uint64_t refs_ = 0;
    std::uint64_t dataCycles_ = 0;
};

} // namespace mixtlb::sim

#endif // MIXTLB_SIM_MULTI_MACHINE_HH
