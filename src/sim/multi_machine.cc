#include "multi_machine.hh"

#include <algorithm>

#include "common/contracts.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/simd.hh"
#include "sim/machine.hh"
#include "tlb/ideal.hh"

namespace mixtlb::sim
{

/** Mid-run audit cadence at paranoia >= 3 (must be a power of two). */
constexpr std::uint64_t MultiAuditPeriod = 1ULL << 16;

/** Deadline-poll cadence inside slices (must be a power of two). */
constexpr std::uint64_t MultiCheckPeriod = 1ULL << 10;

/** Frames reclaimed alongside each injected demote storm. */
constexpr std::uint64_t StormReclaimFrames = 64;

const char *
switchPolicyName(SwitchPolicy policy)
{
    switch (policy) {
      case SwitchPolicy::FullFlush: return "full-flush";
      case SwitchPolicy::AsidTagged: return "asid";
    }
    return "unknown";
}

MultiMachine::ProcStats::ProcStats(unsigned index,
                                   stats::StatGroup *parent)
    : group("p" + std::to_string(index), parent),
      accesses(group.addScalar("accesses",
          "translated references attributed to this process")),
      l1Hits(group.addScalar("l1_hits", "L1 TLB hits")),
      l2Hits(group.addScalar("l2_hits", "L2 TLB hits")),
      walks(group.addScalar("walks", "page table walks")),
      walkCycles(group.addScalar("walk_cycles",
                                 "cycles spent in walks")),
      translationCycles(group.addScalar("translation_cycles",
          "total address translation cycles")),
      walkAccesses(group.addScalar("walk_accesses",
          "memory references issued by walks")),
      walkDramAccesses(group.addScalar("walk_dram_accesses",
          "walk references that reached DRAM")),
      dirtyOps(group.addScalar("dirty_ops",
          "dirty-bit update micro-ops")),
      l1WaysRead(group.addScalar("l1_ways_read",
          "L1 TLB ways read during this process's slices")),
      l2WaysRead(group.addScalar("l2_ways_read",
          "L2 TLB ways read during this process's slices")),
      l1Fills(group.addScalar("l1_fills", "L1 TLB fills")),
      l2Fills(group.addScalar("l2_fills", "L2 TLB fills")),
      slices(group.addScalar("slices", "scheduling slices executed"))
{
    group.addFormula("l1_miss_rate", "L1 TLB miss fraction", [this] {
        double total = accesses.value();
        return total > 0 ? 1.0 - l1Hits.value() / total : 0.0;
    });
}

MultiMachine::MultiMachine(const MultiMachineParams &params)
    : params_(params), root_(params.name), mem_(params.memBytes),
      mm_(mem_, &root_,
          [&params] {
              os::CompactionParams compaction;
              compaction.seed = params.seed * 0x9e3779b9ULL + 17;
              return compaction;
          }()),
      memhog_(mm_, params.memhogUnmovableShare),
      caches_(params.caches, &root_), sched_("sched", &root_),
      switches_(sched_.addScalar("context_switches",
          "context switches performed")),
      flushes_(sched_.addScalar("full_flushes",
          "TLB+PWC full flushes forced by the switch policy"))
{
    fatal_if(params.procs.empty(),
             "MultiMachine %s needs at least one process",
             params.name.c_str());
    fatal_if(params.quantum == 0,
             "MultiMachine %s: quantum must be nonzero",
             params.name.c_str());

    if (params.memhogFraction > 0.0)
        memhog_.fragment(params.memhogFraction, params.seed);

    source_ = std::make_unique<tlb::MultiWalkSource>(
        &root_, walkerScanLines(params.design),
        pt::PwcParams{params.pwcEntries});

    for (unsigned i = 0; i < params.procs.size(); i++) {
        os::ProcessParams pp = params.procs[i];
        if (pp.name.empty() || pp.name == "proc")
            pp.name = "proc" + std::to_string(i);
        procs_.push_back(
            std::make_unique<os::Process>(mm_, pp, &root_));
        source_->addProcess(
            procs_.back()->pageTable(),
            [this, i](VAddr va, bool store) {
                return procs_[i]->touch(va, store)
                       != os::TouchResult::OutOfMemory;
            });
        procStats_.push_back(
            std::make_unique<ProcStats>(i, &root_));
    }
    gens_.resize(procs_.size());

    const pt::PageTable *table = &procs_[0]->pageTable();
    hier_ = std::make_unique<tlb::TlbHierarchy>(
        "tlb", &root_,
        makeCpuL1(params.design, &root_, table, params.scale),
        makeCpuL2(params.design, &root_, table, params.scale),
        *source_, caches_, params.tlbLatency);

    // The Ideal design bypasses fills and translates straight from a
    // page table, so it needs every address space registered by ASID.
    if (params.design == TlbDesign::Ideal) {
        for (auto *level : {&hier_->l1(), &hier_->l2()}) {
            auto *ideal = dynamic_cast<tlb::IdealTlb *>(level);
            panic_if(!ideal, "Ideal design without IdealTlb levels");
            for (unsigned i = 0; i < procs_.size(); i++)
                ideal->registerTable(asidOf(i), procs_[i]->pageTable());
        }
    }

    // Shootdowns from compaction / memhog churn broadcast with the
    // owning process's ASID, whoever happens to be running.
    for (unsigned i = 0; i < procs_.size(); i++) {
        procs_[i]->addInvalidateListener(
            [this, i](VAddr vbase, PageSize size) {
                hier_->invalidatePage(vbase, size, asidOf(i));
            });
    }

    // Start with process 0 resident so warmup/run never translate
    // against an unswitched walker.
    switchTo(0);
}

VAddr
MultiMachine::mapArena(unsigned proc, std::uint64_t bytes)
{
    return procs_.at(proc)->mmap(bytes);
}

void
MultiMachine::attachWorkload(
    unsigned proc, std::unique_ptr<workload::TraceGenerator> gen)
{
    gens_.at(proc) = std::move(gen);
}

MultiMachine::Snapshot
MultiMachine::takeSnapshot() const
{
    Snapshot s;
    s.accesses = hier_->accessCount();
    s.l1Hits = hier_->l1HitCount();
    s.l2Hits = hier_->l2HitCount();
    s.walks = hier_->walkCount();
    s.walkCycles = hier_->walkCycleCount();
    s.translationCycles = hier_->translationCycleCount();
    s.walkAccesses = hier_->walkAccessCount();
    s.walkDramAccesses = hier_->walkDramAccessCount();
    s.dirtyOps = hier_->dirtyMicroOpCount();
    s.l1WaysRead = hier_->l1().waysReadCount();
    s.l2WaysRead = hier_->l2().waysReadCount();
    s.l1Fills = hier_->l1().fillCount();
    s.l2Fills = hier_->l2().fillCount();
    return s;
}

void
MultiMachine::accumulate(unsigned proc, const Snapshot &before)
{
    const Snapshot now = takeSnapshot();
    ProcStats &ps = *procStats_[proc];
    ps.accesses += now.accesses - before.accesses;
    ps.l1Hits += now.l1Hits - before.l1Hits;
    ps.l2Hits += now.l2Hits - before.l2Hits;
    ps.walks += now.walks - before.walks;
    ps.walkCycles += now.walkCycles - before.walkCycles;
    ps.translationCycles +=
        now.translationCycles - before.translationCycles;
    ps.walkAccesses += now.walkAccesses - before.walkAccesses;
    ps.walkDramAccesses +=
        now.walkDramAccesses - before.walkDramAccesses;
    ps.dirtyOps += now.dirtyOps - before.dirtyOps;
    ps.l1WaysRead += now.l1WaysRead - before.l1WaysRead;
    ps.l2WaysRead += now.l2WaysRead - before.l2WaysRead;
    ps.l1Fills += now.l1Fills - before.l1Fills;
    ps.l2Fills += now.l2Fills - before.l2Fills;
    ++ps.slices;
}

void
MultiMachine::switchTo(unsigned proc)
{
    if (everSwitched_ && proc == current_)
        return;
    if (everSwitched_)
        ++switches_;
    if (params_.policy == SwitchPolicy::FullFlush && everSwitched_) {
        hier_->invalidateAll();
        source_->flushTranslationCaches();
        ++flushes_;
    }
    source_->switchTo(proc, asidOf(proc));
    hier_->setAsid(asidOf(proc));
    current_ = proc;
    everSwitched_ = true;
}

std::uint64_t
MultiMachine::runSlice(unsigned proc, std::uint64_t refs)
{
    MemRef batch[MultiCheckPeriod];
    workload::TraceGenerator &gen = *gens_[proc];
    const bool data_through_caches = params_.dataRefsThroughCaches;
    std::uint64_t done = 0;
    while (done < refs) {
        const auto chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(
                MultiCheckPeriod - (done & (MultiCheckPeriod - 1)),
                refs - done));
        simd::prefetchWrite(batch);     // next trace chunk
        simd::prefetchWrite(batch + 4);
        gen.nextBatch(batch, chunk);
        auto br = hier_->translateBatch({batch, chunk},
                                        data_through_caches);
        bool oom = false;
        if (!br.ok) {
            warn("machine %s: process %u out of memory, parking it",
                 params_.name.c_str(), proc);
            oom = true;
        }
        done += br.done;
        dataCycles_ += br.dataCycles;
        if (oom)
            break;
        if ((done & (MultiCheckPeriod - 1)) == 0 &&
            fault::deadlineExpired()) {
            memhog_.burstRelease();
            MIX_RAISE("deadline",
                      "machine %s exceeded per-point deadline after "
                      "%llu refs of process %u",
                      params_.name.c_str(), (unsigned long long)done,
                      proc);
        }
        if (contracts::paranoia() >= 3 &&
            (done & (MultiAuditPeriod - 1)) == 0) {
            auditAll();
        }
    }
    return done;
}

std::uint64_t
MultiMachine::run(std::uint64_t refs_per_proc)
{
    for (unsigned i = 0; i < numProcs(); i++) {
        fatal_if(!gens_[i],
                 "machine %s: process %u has no workload attached",
                 params_.name.c_str(), i);
    }
    std::vector<std::uint64_t> remaining(numProcs(), refs_per_proc);
    std::uint64_t total = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (unsigned i = 0; i < numProcs(); i++) {
            if (!remaining[i])
                continue;
            const std::uint64_t slice =
                std::min(params_.quantum, remaining[i]);
            switchTo(i);
            const Snapshot before = takeSnapshot();
            const std::uint64_t done = runSlice(i, slice);
            accumulate(i, before);
            total += done;
            if (done)
                progress = true;
            // A short slice means OOM: park the process for good.
            remaining[i] = done < slice ? 0 : remaining[i] - done;
            // Pressure bursts straddle slice boundaries: the previous
            // burst (if any) ends here, and a new one may begin.
            memhog_.burstRelease();
            if (fault::fire(fault::Site::PressureBurst))
                memhog_.burstAcquire(mem_.buddy().freeFrames() / 2);
            // Injected demotion storms model the OS under memory
            // duress: demote one of this process's superpages, then
            // reclaim frames — which may shrink *other* processes too
            // (the reclaimer registry spans the shared memory
            // manager), exercising per-ASID shootdown isolation.
            if (fault::fire(fault::Site::DemoteStorm)) {
                procs_[i]->demoteStorm(1);
                mm_.reclaim(StormReclaimFrames);
            }
            procs_[i]->maintain();
        }
    }
    memhog_.burstRelease();
    refs_ += total;
    if (contracts::paranoia() >= 1)
        auditAll();
    return total;
}

void
MultiMachine::warmup(unsigned proc, VAddr base, std::uint64_t bytes,
                     std::uint64_t step)
{
    switchTo(proc);
    std::uint64_t steps = 0;
    for (std::uint64_t off = 0; off < bytes; off += step, steps++) {
        auto result = hier_->access(base + off, true);
        if (!result.ok) {
            MIX_RAISE("oom",
                      "machine %s: warmup of process %u ran out of "
                      "memory at offset %llu of %llu bytes",
                      params_.name.c_str(), proc,
                      (unsigned long long)off,
                      (unsigned long long)bytes);
        }
        if ((steps & (MultiCheckPeriod - 1)) == MultiCheckPeriod - 1 &&
            fault::deadlineExpired()) {
            MIX_RAISE("deadline",
                      "machine %s exceeded per-point deadline during "
                      "warmup of process %u",
                      params_.name.c_str(), proc);
        }
    }
    if (contracts::paranoia() >= 1)
        auditAll();
}

void
MultiMachine::auditAll() const
{
    contracts::AuditReport report(params_.name);
    mem_.audit(report);
    for (const auto &proc : procs_)
        proc->audit(report);
    hier_->l1().audit(report);
    hier_->l2().audit(report);
    contracts::require(report);
}

void
MultiMachine::startMeasurement()
{
    root_.resetStats();
    refs_ = 0;
    dataCycles_ = 0;
}

perf::RunMetrics
MultiMachine::metrics(const perf::PerfParams &params) const
{
    return perf::computeMetrics(refs_, hier_->translationCycleCount(),
                                static_cast<double>(dataCycles_),
                                params);
}

perf::EnergyInputs
MultiMachine::energyInputs() const
{
    auto metrics_now = metrics();
    return harvestEnergyInputs(root_, *hier_, params_.design,
                               metrics_now.totalCycles);
}

double
MultiMachine::procStat(unsigned proc, const std::string &name) const
{
    return procStats_.at(proc)->group.scalar(name).value();
}

double
MultiMachine::procL1MissRate(unsigned proc) const
{
    const ProcStats &ps = *procStats_.at(proc);
    const double total = ps.accesses.value();
    return total > 0 ? 1.0 - ps.l1Hits.value() / total : 0.0;
}

os::PageSizeDistribution
MultiMachine::distribution(unsigned proc) const
{
    return os::scanDistribution(procs_.at(proc)->pageTable());
}

} // namespace mixtlb::sim
