/**
 * @file
 * The sweep runner: the paper's headline figures sweep hundreds of
 * (design x policy x workload x fragmentation) configurations, each an
 * independent simulation. SweepRunner executes a declarative grid of
 * such points on a thread pool and hands results back **in grid
 * order**, so a parallel sweep prints tables bit-identical to the
 * serial run.
 *
 * Determinism contract: every randomised input a point consumes must
 * derive from sweepPointSeed(base seed, point index) — never from the
 * scheduling order, thread ids, or wall-clock time — so `--jobs 1` and
 * `--jobs N` produce identical RunResults.
 */

#ifndef MIXTLB_SIM_SWEEP_HH
#define MIXTLB_SIM_SWEEP_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "common/contracts.hh"
#include "common/fault.hh"
#include "common/thread_pool.hh"

namespace mixtlb::sim
{

/**
 * The deterministic seed for grid point @p index of a sweep seeded
 * with @p base_seed (a splitmix64 mix, so neighbouring points get
 * decorrelated streams).
 */
std::uint64_t sweepPointSeed(std::uint64_t base_seed,
                             std::uint64_t index);

struct SweepParams
{
    /** Concurrent simulation points; 0 = hardware_concurrency. */
    unsigned jobs = 0;
    /**
     * Additional attempts runChecked() grants a failing point before
     * quarantining it. Each retry reuses the point's deterministic
     * seed, so only environmental failures (injected transients,
     * resource blips) can succeed on retry — a deterministic failure
     * fails identically every time.
     */
    unsigned retries = 1;
    /** Cooperative per-point deadline in seconds; 0 disables it. */
    double deadlineSeconds = 0.0;
    /** Fault-injection configuration active during each point. */
    fault::FaultConfig faults{};
};

/**
 * The outcome of one grid point under runChecked(): either a clean
 * result, or a quarantined failure with its error classification.
 */
struct PointStatus
{
    /** The point produced a valid result. */
    bool ok = true;
    /** False when the point was skipped (checkpoint resume). */
    bool ran = true;
    /** Attempts consumed (1 = first try succeeded; 0 = skipped). */
    unsigned attempts = 0;
    /** SimError kind ("oom", "deadline", ...), or "exception". */
    std::string errorKind;
    /** Human-readable failure description. */
    std::string errorMessage;
    /** Faults injected during the final attempt, indexed by Site. */
    std::array<std::uint64_t, fault::SiteCount> faults{};
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepParams params = {});

    /** Resolved worker count (never 0). */
    unsigned jobs() const { return jobs_; }

    /**
     * Run @p body for every index in [0, count) concurrently and
     * return the results indexed by grid position. @p body must be
     * safe to call from multiple threads for distinct indices.
     */
    template <typename Result>
    std::vector<Result>
    run(std::size_t count,
        const std::function<Result(std::size_t)> &body) const
    {
        std::vector<Result> results(count);
        if (count == 0)
            return results;
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs_, count)));
        for (std::size_t i = 0; i < count; i++)
            pool.submit([&, i] { results[i] = body(i); });
        pool.wait();
        return results;
    }

    /**
     * The resilient variant of run(): every point executes under a
     * per-point FaultScope (seeded by @p seed_of, so the fault
     * schedule is independent of scheduling order), failures are
     * caught and recorded instead of killing the process, failing
     * points get params.retries additional attempts with the *same*
     * seed, and a nonzero params.deadlineSeconds arms the cooperative
     * watchdog the simulation loops poll.
     *
     * @param statuses resized to @p count; statuses[i] describes
     *        point i's outcome.
     * @param skip when non-null and skip(i) is true, point i is not
     *        executed (checkpoint resume); its status has ran=false.
     * @param on_done when non-null, called from the worker thread as
     *        each point finishes (including skipped points). Called
     *        concurrently for distinct points — the callback
     *        synchronises its own shared state.
     */
    template <typename Result>
    std::vector<Result>
    runChecked(
        std::size_t count,
        const std::function<Result(std::size_t)> &body,
        const std::function<std::uint64_t(std::size_t)> &seed_of,
        std::vector<PointStatus> &statuses,
        const std::function<bool(std::size_t)> &skip = nullptr,
        const std::function<void(std::size_t, const Result &,
                                 const PointStatus &)> &on_done =
            nullptr) const
    {
        std::vector<Result> results(count);
        statuses.assign(count, PointStatus{});
        if (count == 0)
            return results;
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs_, count)));
        for (std::size_t i = 0; i < count; i++) {
            pool.submit([&, i] {
                PointStatus status;
                if (skip && skip(i)) {
                    status.ran = false;
                    status.attempts = 0;
                    statuses[i] = status;
                    if (on_done)
                        on_done(i, results[i], status);
                    return;
                }
                for (unsigned attempt = 1;
                     attempt <= params_.retries + 1; attempt++) {
                    status.attempts = attempt;
                    try {
                        fault::FaultScope scope(params_.faults,
                                                seed_of(i), i,
                                                params_.deadlineSeconds);
                        try {
                            results[i] = body(i);
                            status.ok = true;
                            status.errorKind.clear();
                            status.errorMessage.clear();
                            status.faults = scope.firedCounts();
                        } catch (...) {
                            // Unwinding has not left this frame yet,
                            // so the scope's counters are still live.
                            status.faults = scope.firedCounts();
                            throw;
                        }
                        break;
                    } catch (const SimError &error) {
                        status.ok = false;
                        status.errorKind = error.kind();
                        status.errorMessage = error.what();
                    } catch (const std::exception &error) {
                        status.ok = false;
                        status.errorKind = "exception";
                        status.errorMessage = error.what();
                    } catch (...) {
                        status.ok = false;
                        status.errorKind = "unknown";
                        status.errorMessage =
                            "non-standard exception";
                    }
                }
                if (!status.ok)
                    results[i] = Result{};
                statuses[i] = status;
                if (on_done)
                    on_done(i, results[i], status);
            });
        }
        pool.wait();
        return results;
    }

  private:
    SweepParams params_;
    unsigned jobs_;
};

} // namespace mixtlb::sim

#endif // MIXTLB_SIM_SWEEP_HH
