/**
 * @file
 * The sweep runner: the paper's headline figures sweep hundreds of
 * (design x policy x workload x fragmentation) configurations, each an
 * independent simulation. SweepRunner executes a declarative grid of
 * such points on a thread pool and hands results back **in grid
 * order**, so a parallel sweep prints tables bit-identical to the
 * serial run.
 *
 * Determinism contract: every randomised input a point consumes must
 * derive from sweepPointSeed(base seed, point index) — never from the
 * scheduling order, thread ids, or wall-clock time — so `--jobs 1` and
 * `--jobs N` produce identical RunResults.
 */

#ifndef MIXTLB_SIM_SWEEP_HH
#define MIXTLB_SIM_SWEEP_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/thread_pool.hh"

namespace mixtlb::sim
{

/**
 * The deterministic seed for grid point @p index of a sweep seeded
 * with @p base_seed (a splitmix64 mix, so neighbouring points get
 * decorrelated streams).
 */
std::uint64_t sweepPointSeed(std::uint64_t base_seed,
                             std::uint64_t index);

struct SweepParams
{
    /** Concurrent simulation points; 0 = hardware_concurrency. */
    unsigned jobs = 0;
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepParams params = {});

    /** Resolved worker count (never 0). */
    unsigned jobs() const { return jobs_; }

    /**
     * Run @p body for every index in [0, count) concurrently and
     * return the results indexed by grid position. @p body must be
     * safe to call from multiple threads for distinct indices.
     */
    template <typename Result>
    std::vector<Result>
    run(std::size_t count,
        const std::function<Result(std::size_t)> &body) const
    {
        std::vector<Result> results(count);
        if (count == 0)
            return results;
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs_, count)));
        for (std::size_t i = 0; i < count; i++)
            pool.submit([&, i] { results[i] = body(i); });
        pool.wait();
        return results;
    }

  private:
    unsigned jobs_;
};

} // namespace mixtlb::sim

#endif // MIXTLB_SIM_SWEEP_HH
