/**
 * @file
 * Area-equivalent TLB configurations for every design the paper
 * evaluates, at Haswell-class geometry (Sec. 6.1):
 *
 *   Split L1: 64-entry 4-way 4KB + 32-entry 4-way 2MB + 4-entry FA 1GB
 *   Split L2: 512-entry 8-way hash-rehash {4KB,2MB} + 32-entry 4-way 1GB
 *
 * Every alternative gets the same entry budget (L1: 100 entries,
 * L2: 544 entries), with skew-associative designs docked ~15% for
 * their timestamp storage (Sec. 7.2, Figure 16 discussion).
 */

#ifndef MIXTLB_SIM_CONFIGS_HH
#define MIXTLB_SIM_CONFIGS_HH

#include <memory>
#include <string>

#include "pt/page_table.hh"
#include "tlb/base.hh"

namespace mixtlb::sim
{

/** Every TLB organisation the evaluation compares. */
enum class TlbDesign : std::uint8_t
{
    Split,         ///< Haswell-style baseline
    Mix,           ///< the paper's contribution
    MixColt,       ///< MIX + COLT small-page coalescing (Figure 18)
    MixSuperIndex, ///< ablation: superpage index bits (Sec. 3)
    HashRehash,    ///< multi-probe, fixed order
    HashRehashPred,///< multi-probe with a size predictor
    Skew,          ///< skew-associative, per-size ways
    SkewPred,      ///< skew-associative with a size predictor
    Colt,          ///< split TLBs with COLT 4KB coalescing
    ColtPlusPlus,  ///< split TLBs coalescing every page size
    Ideal,         ///< never misses (upper bound)
};

const char *designName(TlbDesign design);

/**
 * PTE cache lines the page-table walker scans per superpage leaf for
 * this design: MIX variants use the 8-line wide scan that feeds their
 * L2 coalescing windows (Sec. 4.2); everything else reads 1 line.
 */
unsigned walkerScanLines(TlbDesign design);

/** Number of L1 TLB sets to build MIX designs with (default 16). */
struct ConfigScale
{
    /** Multiplier on every structure's entry count (set scaling
     *  studies use this; 1 = Haswell-class). */
    unsigned scale = 1;
};

/**
 * Build the CPU L1 TLB for @p design.
 * @param table needed only by TlbDesign::Ideal.
 */
std::unique_ptr<tlb::BaseTlb>
makeCpuL1(TlbDesign design, stats::StatGroup *parent,
          const pt::PageTable *table, ConfigScale scale = {});

/** Build the CPU L2 TLB for @p design. */
std::shared_ptr<tlb::BaseTlb>
makeCpuL2(TlbDesign design, stats::StatGroup *parent,
          const pt::PageTable *table, ConfigScale scale = {});

/**
 * Build one GPU shader core's L1 TLB (128-entry 4-way 4KB splits per
 * Sec. 6.3, with the same area-equivalence rules).
 */
std::unique_ptr<tlb::BaseTlb>
makeGpuCoreL1(TlbDesign design, unsigned core, stats::StatGroup *parent,
              const pt::PageTable *table);

/** Build the GPU's shared L2 TLB. */
std::shared_ptr<tlb::BaseTlb>
makeGpuL2(TlbDesign design, stats::StatGroup *parent,
          const pt::PageTable *table);

} // namespace mixtlb::sim

#endif // MIXTLB_SIM_CONFIGS_HH
