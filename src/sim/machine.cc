#include "machine.hh"

#include <algorithm>

#include "common/contracts.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/simd.hh"

namespace mixtlb::sim
{

/** Mid-run audit cadence at paranoia >= 3 (must be a power of two). */
constexpr std::uint64_t AuditPeriod = 1ULL << 16;

/**
 * Cadence for the cooperative checks inside the reference loops: the
 * per-point deadline poll and the pressure-burst fault draw (must be a
 * power of two).
 */
constexpr std::uint64_t CheckPeriod = 1ULL << 10;

/**
 * Frames reclaimed alongside each injected demote storm: enough to
 * punch refault-able holes into the demoted region without stalling
 * the run on refault service.
 */
constexpr std::uint64_t StormReclaimFrames = 64;

Machine::Machine(const MachineParams &params)
    : params_(params), root_(params.name), mem_(params.memBytes),
      mm_(mem_, &root_,
          [&params] {
              os::CompactionParams compaction;
              compaction.seed = params.seed * 0x9e3779b9ULL + 17;
              return compaction;
          }()),
      memhog_(mm_, params.memhogUnmovableShare),
      caches_(params.caches, &root_)
{
    if (params.memhogFraction > 0.0)
        memhog_.fragment(params.memhogFraction, params.seed);

    proc_ = std::make_unique<os::Process>(mm_, params.proc, &root_);

    source_ = std::make_unique<tlb::NativeWalkSource>(
        proc_->pageTable(), &root_,
        [this](VAddr va, bool store) {
            return proc_->touch(va, store)
                   != os::TouchResult::OutOfMemory;
        },
        walkerScanLines(params.design),
        pt::PwcParams{params.pwcEntries});

    const pt::PageTable *table = &proc_->pageTable();
    hier_ = std::make_unique<tlb::TlbHierarchy>(
        "tlb", &root_,
        makeCpuL1(params.design, &root_, table, params.scale),
        makeCpuL2(params.design, &root_, table, params.scale),
        *source_, caches_, params.tlbLatency);

    proc_->addInvalidateListener([this](VAddr vbase, PageSize size) {
        hier_->invalidatePage(vbase, size);
    });
}

VAddr
Machine::mapArena(std::uint64_t bytes)
{
    return proc_->mmap(bytes);
}

std::uint64_t
Machine::run(workload::TraceGenerator &gen, std::uint64_t refs)
{
    // References are generated and replayed one CheckPeriod-aligned
    // batch at a time: the deadline poll and the pressure-burst fault
    // draw run between batches, at exactly the same points in the
    // reference stream as the old per-reference loop — so fault
    // schedules and every modeled statistic stay bit-identical.
    MemRef batch[CheckPeriod];
    const bool data_through_caches = params_.dataRefsThroughCaches;
    std::uint64_t done = 0;
    bool oom = false;
    while (done < refs && !oom) {
        const auto chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(
                CheckPeriod - (done & (CheckPeriod - 1)), refs - done));
        simd::prefetchWrite(batch);     // next trace chunk
        simd::prefetchWrite(batch + 4);
        gen.nextBatch(batch, chunk);
        auto br = hier_->translateBatch({batch, chunk},
                                        data_through_caches);
        if (!br.ok) {
            warn("machine %s out of memory after %llu refs",
                 params_.name.c_str(),
                 (unsigned long long)(done + br.done));
            oom = true;
        }
        done += br.done;
        dataCycles_ += br.dataCycles;
        if (oom)
            break;
        if ((done & (CheckPeriod - 1)) == 0) {
            if (fault::deadlineExpired()) {
                memhog_.burstRelease();
                MIX_RAISE("deadline",
                          "machine %s exceeded per-point deadline "
                          "after %llu refs",
                          params_.name.c_str(),
                          (unsigned long long)done);
            }
            // Pressure bursts are transient: the previous burst (if
            // any) ends at this boundary, and a new one may begin.
            memhog_.burstRelease();
            if (fault::fire(fault::Site::PressureBurst))
                memhog_.burstAcquire(mem_.buddy().freeFrames() / 2);
            // Injected demotion storms model the OS under memory
            // duress: demote a superpage, then reclaim frames (which
            // drops cold pages from the demoted region). The later
            // refaults scatter the region's frames, so maintain()'s
            // re-promotion must take the khugepaged-style collapse
            // path — the hard shootdown cases, end to end.
            if (fault::fire(fault::Site::DemoteStorm)) {
                proc_->demoteStorm(1);
                mm_.reclaim(StormReclaimFrames);
            }
            proc_->maintain();
        }
        if (contracts::paranoia() >= 3 &&
            (done & (AuditPeriod - 1)) == 0) {
            auditAll();
        }
    }
    memhog_.burstRelease();
    refs_ += done;
    if (contracts::paranoia() >= 1)
        auditAll();
    return done;
}

void
Machine::touchSequential(VAddr base, std::uint64_t bytes,
                         std::uint64_t step)
{
    std::uint64_t steps = 0;
    for (std::uint64_t off = 0; off < bytes; off += step, steps++) {
        if (proc_->touch(base + off) == os::TouchResult::OutOfMemory) {
            MIX_RAISE("oom",
                      "machine %s: touchSequential ran out of memory "
                      "at offset %llu of %llu bytes",
                      params_.name.c_str(), (unsigned long long)off,
                      (unsigned long long)bytes);
        }
        if ((steps & (CheckPeriod - 1)) == CheckPeriod - 1 &&
            fault::deadlineExpired()) {
            MIX_RAISE("deadline",
                      "machine %s exceeded per-point deadline during "
                      "touchSequential",
                      params_.name.c_str());
        }
    }
}

void
Machine::warmup(VAddr base, std::uint64_t bytes, std::uint64_t step)
{
    std::uint64_t steps = 0;
    for (std::uint64_t off = 0; off < bytes; off += step, steps++) {
        auto result = hier_->access(base + off, true);
        if (!result.ok) {
            MIX_RAISE("oom",
                      "machine %s: warmup ran out of memory at offset "
                      "%llu of %llu bytes",
                      params_.name.c_str(), (unsigned long long)off,
                      (unsigned long long)bytes);
        }
        if ((steps & (CheckPeriod - 1)) == CheckPeriod - 1 &&
            fault::deadlineExpired()) {
            MIX_RAISE("deadline",
                      "machine %s exceeded per-point deadline during "
                      "warmup",
                      params_.name.c_str());
        }
    }
    if (contracts::paranoia() >= 1)
        auditAll();
}

void
Machine::auditAll() const
{
    contracts::AuditReport report(params_.name);
    mem_.audit(report);
    proc_->audit(report); // covers the page table's radix invariants
    hier_->l1().audit(report);
    hier_->l2().audit(report);
    contracts::require(report);
}

void
Machine::startMeasurement()
{
    root_.resetStats();
    refs_ = 0;
    dataCycles_ = 0;
}

perf::RunMetrics
Machine::metrics(const perf::PerfParams &params) const
{
    return perf::computeMetrics(refs_, hier_->translationCycleCount(),
                                static_cast<double>(dataCycles_),
                                params);
}

perf::EnergyInputs
Machine::energyInputs() const
{
    auto metrics_now = metrics();
    return harvestEnergyInputs(root_, *hier_, params_.design,
                               metrics_now.totalCycles);
}

os::PageSizeDistribution
Machine::distribution() const
{
    return os::scanDistribution(proc_->pageTable());
}

std::vector<std::uint64_t>
Machine::contiguityRuns(PageSize size) const
{
    return os::contiguityRuns(proc_->pageTable(), size);
}

perf::EnergyInputs
harvestEnergyInputs(const stats::StatGroup &root,
                    const tlb::TlbHierarchy &hier, TlbDesign design,
                    double total_cycles)
{
    (void)root;
    perf::EnergyInputs inputs;
    const auto &l1 = hier.l1();
    const auto &l2 = hier.l2();
    inputs.l1WaysRead = l1.waysReadCount();
    inputs.l2WaysRead = l2.waysReadCount();
    inputs.l1Entries = l1.numEntries();
    inputs.l2Entries = l2.numEntries();
    inputs.l1Fills = l1.fillCount();
    inputs.l2Fills = l2.fillCount();
    inputs.walkAccesses = hier.walkAccessCount();
    inputs.walkDramAccesses = hier.walkDramAccessCount();
    inputs.dirtyOps = hier.dirtyMicroOpCount();
    inputs.invalidations =
        l1.invalidationCount() + l2.invalidationCount();
    const bool mirroring = design == TlbDesign::Mix ||
                           design == TlbDesign::MixColt ||
                           design == TlbDesign::MixSuperIndex;
    inputs.fillBurstFactor = mirroring ? 0.25 : 1.0;
    const bool predictor = design == TlbDesign::HashRehashPred ||
                           design == TlbDesign::SkewPred;
    inputs.predictorLookups =
        predictor ? l1.hits() + l1.misses() + l2.hits() + l2.misses()
                  : 0.0;
    inputs.skewTimestamps = design == TlbDesign::Skew ||
                            design == TlbDesign::SkewPred;
    inputs.totalCycles = total_cycles;
    return inputs;
}

VirtMachine::VirtMachine(const VirtMachineParams &params)
    : params_(params), root_(params.name), hostMem_(params.hostMemBytes),
      hostMm_(hostMem_, &root_), caches_(params.caches, &root_)
{
    fatal_if(params.numVms == 0, "virtual machine count is zero");
    std::uint64_t vm_bytes = params.vmMemBytes
                                 ? params.vmMemBytes
                                 : params.hostMemBytes / params.numVms;

    for (unsigned i = 0; i < params.numVms; i++) {
        virt::VmParams vm_params;
        vm_params.name = "vm" + std::to_string(i);
        vm_params.guestMemBytes = vm_bytes;
        vm_params.hostPolicy = params.hostPolicy;
        vms_.push_back(std::make_unique<virt::Vm>(hostMm_, vm_params,
                                                  &root_));

        if (params.guestMemhogFraction > 0.0) {
            auto hog = std::make_unique<os::Memhog>(vms_[i]->guestMm());
            hog->fragment(params.guestMemhogFraction,
                          params.seed + 100 + i);
            guestMemhogs_.push_back(std::move(hog));
        }

        os::ProcessParams proc_params = params.guestProc;
        proc_params.name = "guest" + std::to_string(i);
        guestProcs_.push_back(std::make_unique<os::Process>(
            vms_[i]->guestMm(), proc_params, &root_));

        sources_.push_back(std::make_unique<virt::NestedWalkSource>(
            *vms_[i], *guestProcs_[i], &vms_[i]->statGroup(),
            walkerScanLines(params.design)));

        const pt::PageTable *table = &guestProcs_[i]->pageTable();
        hiers_.push_back(std::make_unique<tlb::TlbHierarchy>(
            "tlb" + std::to_string(i), &root_,
            makeCpuL1(params.design, &vms_[i]->statGroup(), table,
                      params.scale),
            makeCpuL2(params.design, &vms_[i]->statGroup(), table,
                      params.scale),
            *sources_[i], caches_, params.tlbLatency));

        guestProcs_[i]->addInvalidateListener(
            [this, i](VAddr vbase, PageSize size) {
                hiers_[i]->invalidatePage(vbase, size);
            });
    }
}

VirtMachine::~VirtMachine()
{
    // Guest processes reference their VM's memory manager; destroy the
    // dependents before the VMs (vector order would do the reverse).
    hiers_.clear();
    sources_.clear();
    guestProcs_.clear();
    guestMemhogs_.clear();
    vms_.clear();
}

VAddr
VirtMachine::mapArena(unsigned vm, std::uint64_t bytes)
{
    return guestProcs_.at(vm)->mmap(bytes);
}

std::uint64_t
VirtMachine::run(unsigned vm, workload::TraceGenerator &gen,
                 std::uint64_t refs)
{
    auto &hier = *hiers_.at(vm);
    // Batched like Machine::run: polls land at the same reference-
    // stream positions as the old per-reference loop.
    MemRef batch[CheckPeriod];
    const bool data_through_caches = params_.dataRefsThroughCaches;
    std::uint64_t done = 0;
    bool oom = false;
    while (done < refs && !oom) {
        const auto chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(
                CheckPeriod - (done & (CheckPeriod - 1)), refs - done));
        simd::prefetchWrite(batch);     // next trace chunk
        simd::prefetchWrite(batch + 4);
        gen.nextBatch(batch, chunk);
        auto br = hier.translateBatch({batch, chunk},
                                      data_through_caches);
        if (!br.ok) {
            warn("vm %u out of memory after %llu refs", vm,
                 (unsigned long long)(done + br.done));
            oom = true;
        }
        done += br.done;
        dataCycles_ += br.dataCycles;
        if (oom)
            break;
        if ((done & (CheckPeriod - 1)) == 0 &&
            fault::deadlineExpired()) {
            MIX_RAISE("deadline",
                      "vm %u exceeded per-point deadline after %llu "
                      "refs",
                      vm, (unsigned long long)done);
        }
        if (contracts::paranoia() >= 3 &&
            (done & (AuditPeriod - 1)) == 0) {
            auditAll();
        }
    }
    refs_ += done;
    if (contracts::paranoia() >= 1)
        auditAll();
    return done;
}

void
VirtMachine::warmup(unsigned vm, VAddr base, std::uint64_t bytes)
{
    auto &hier = *hiers_.at(vm);
    std::uint64_t steps = 0;
    for (std::uint64_t off = 0; off < bytes;
         off += PageBytes4K, steps++) {
        auto result = hier.access(base + off, true);
        if (!result.ok) {
            MIX_RAISE("oom",
                      "vm %u warmup ran out of memory at offset %llu "
                      "of %llu bytes",
                      vm, (unsigned long long)off,
                      (unsigned long long)bytes);
        }
        if ((steps & (CheckPeriod - 1)) == CheckPeriod - 1 &&
            fault::deadlineExpired()) {
            MIX_RAISE("deadline",
                      "vm %u exceeded per-point deadline during warmup",
                      vm);
        }
    }
    if (contracts::paranoia() >= 1)
        auditAll();
}

void
VirtMachine::auditAll() const
{
    contracts::AuditReport report(params_.name);
    hostMem_.audit(report);
    for (const auto &vm : vms_)
        vm->audit(report);
    for (const auto &proc : guestProcs_)
        proc->audit(report);
    for (const auto &hier : hiers_) {
        hier->l1().audit(report);
        hier->l2().audit(report);
    }
    contracts::require(report);
}

void
VirtMachine::startMeasurement()
{
    root_.resetStats();
    refs_ = 0;
    dataCycles_ = 0;
}

os::PageSizeDistribution
VirtMachine::guestDistribution(unsigned vm) const
{
    return os::scanDistribution(guestProcs_.at(vm)->pageTable());
}

std::vector<std::uint64_t>
VirtMachine::nestedContiguityRuns(unsigned vm, PageSize size) const
{
    // A nested run extends while guest VA and *system* PA both advance
    // by one superpage; the host must back each guest superpage with a
    // host page at least as large.
    std::vector<std::uint64_t> runs;
    const auto &vmref = *vms_.at(vm);
    bool have_prev = false;
    VAddr prev_vbase = 0;
    PAddr prev_spa = 0;
    std::uint64_t run = 0;

    guestProcs_.at(vm)->pageTable().forEachLeaf(
        [&](const pt::Translation &t) {
            if (t.size != size)
                return;
            auto spa = vmref.hostPhysIfMapped(t.pbase);
            bool backed = spa.has_value();
            if (backed) {
                auto host =
                    vmref.ept().translate(vmref.eptHva(t.pbase));
                backed = host &&
                         pageShift(host->size) >= pageShift(size);
            }
            if (!backed) {
                if (run > 0)
                    runs.push_back(run);
                run = 0;
                have_prev = false;
                return;
            }
            if (have_prev &&
                t.vbase == prev_vbase + pageBytes(size) &&
                *spa == prev_spa + pageBytes(size)) {
                run++;
            } else {
                if (run > 0)
                    runs.push_back(run);
                run = 1;
            }
            prev_vbase = t.vbase;
            prev_spa = *spa;
            have_prev = true;
        });
    if (run > 0)
        runs.push_back(run);
    return runs;
}

perf::RunMetrics
VirtMachine::metrics(const perf::PerfParams &params) const
{
    double cycles = 0;
    for (const auto &hier : hiers_)
        cycles += hier->translationCycleCount();
    return perf::computeMetrics(refs_, cycles,
                                static_cast<double>(dataCycles_),
                                params);
}

perf::EnergyInputs
VirtMachine::energyInputs() const
{
    perf::EnergyInputs total;
    auto metrics_now = metrics();
    for (const auto &hier : hiers_) {
        auto inputs = harvestEnergyInputs(root_, *hier, params_.design,
                                          0.0);
        total.l1WaysRead += inputs.l1WaysRead;
        total.l2WaysRead += inputs.l2WaysRead;
        total.l1Entries = inputs.l1Entries;
        total.l2Entries = inputs.l2Entries;
        total.l1Fills += inputs.l1Fills;
        total.l2Fills += inputs.l2Fills;
        total.walkAccesses += inputs.walkAccesses;
        total.walkDramAccesses += inputs.walkDramAccesses;
        total.dirtyOps += inputs.dirtyOps;
        total.invalidations += inputs.invalidations;
        total.predictorLookups += inputs.predictorLookups;
        total.skewTimestamps = inputs.skewTimestamps;
        // The mirror fill-burst discount is a property of the design,
        // not an additive count; take the min so the MIX discount
        // survives aggregation (dropping it charged virtualized MIX
        // runs full fill energy, 1.0 instead of 0.25).
        total.fillBurstFactor = std::min(total.fillBurstFactor,
                                         inputs.fillBurstFactor);
    }
    total.totalCycles = metrics_now.totalCycles;
    return total;
}

} // namespace mixtlb::sim
