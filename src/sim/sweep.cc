#include "sweep.hh"

#include <algorithm>

namespace mixtlb::sim
{

std::uint64_t
sweepPointSeed(std::uint64_t base_seed, std::uint64_t index)
{
    // splitmix64 over (base, index): the statistically robust way to
    // spawn decorrelated substreams from one user-facing seed.
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    // Seed 0 would degenerate some consumers; remap it.
    return z ? z : 0x9e3779b97f4a7c15ULL;
}

SweepRunner::SweepRunner(SweepParams params)
    : params_(params),
      jobs_(params.jobs ? params.jobs : ThreadPool::defaultThreads())
{
}

} // namespace mixtlb::sim
