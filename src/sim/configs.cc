#include "configs.hh"

#include "common/logging.hh"
#include "tlb/colt.hh"
#include "tlb/hash_rehash.hh"
#include "tlb/ideal.hh"
#include "tlb/mix.hh"
#include "tlb/set_assoc.hh"
#include "tlb/skew.hh"
#include "tlb/split.hh"

namespace mixtlb::sim
{

using namespace tlb;

const char *
designName(TlbDesign design)
{
    switch (design) {
      case TlbDesign::Split: return "split";
      case TlbDesign::Mix: return "mix";
      case TlbDesign::MixColt: return "mix+colt";
      case TlbDesign::MixSuperIndex: return "mix-spidx";
      case TlbDesign::HashRehash: return "hash-rehash";
      case TlbDesign::HashRehashPred: return "hash-rehash+pred";
      case TlbDesign::Skew: return "skew";
      case TlbDesign::SkewPred: return "skew+pred";
      case TlbDesign::Colt: return "colt";
      case TlbDesign::ColtPlusPlus: return "colt++";
      case TlbDesign::Ideal: return "ideal";
    }
    return "?";
}

unsigned
walkerScanLines(TlbDesign design)
{
    switch (design) {
      case TlbDesign::Mix:
      case TlbDesign::MixColt:
      case TlbDesign::MixSuperIndex:
        return 8;
      default:
        return 1;
    }
}

namespace
{

std::unique_ptr<BaseTlb>
makeSplitL1(const std::string &name, stats::StatGroup *parent,
            unsigned scale, bool colt_4k, bool colt_super)
{
    auto split = std::make_unique<SplitTlb>(name, parent);
    auto *group = &split->statGroup();
    if (colt_4k) {
        split->addComponent(std::make_unique<ColtTlb>(
            "t4k", group, 64 * scale, 4, PageSize::Size4K, 4));
    } else {
        split->addComponent(std::make_unique<SetAssocTlb>(
            "t4k", group, 64 * scale, 4, PageSize::Size4K));
    }
    if (colt_super) {
        split->addComponent(std::make_unique<ColtTlb>(
            "t2m", group, 32 * scale, 4, PageSize::Size2M, 4));
    } else {
        split->addComponent(std::make_unique<SetAssocTlb>(
            "t2m", group, 32 * scale, 4, PageSize::Size2M));
    }
    split->addComponent(std::make_unique<FullyAssocTlb>(
        "t1g", group, 4 * scale,
        std::initializer_list<PageSize>{PageSize::Size1G}));
    return split;
}

std::shared_ptr<BaseTlb>
makeSplitL2(const std::string &name, stats::StatGroup *parent,
            unsigned scale, bool colt_4k, bool colt_super)
{
    auto split = std::make_shared<SplitTlb>(name, parent);
    auto *group = &split->statGroup();
    if (!colt_4k && !colt_super) {
        // The actual Haswell organisation: a hash-rehash structure for
        // 4KB+2MB plus a separate 1GB TLB.
        HashRehashParams hr;
        hr.entries = 512ULL * scale;
        hr.assoc = 8;
        hr.sizes = {PageSize::Size4K, PageSize::Size2M};
        split->addComponent(
            std::make_unique<HashRehashTlb>("t4k2m", group, hr));
        split->addComponent(std::make_unique<SetAssocTlb>(
            "t1g", group, 32 * scale, 4, PageSize::Size1G));
        return split;
    }
    // COLT variants need per-size components so each structure can
    // coalesce its own size. The Haswell L2 shares 512 entries between
    // 4KB and 2MB; the per-size stand-in splits that budget evenly so
    // neither size is starved relative to the baseline.
    if (colt_4k) {
        split->addComponent(std::make_unique<ColtTlb>(
            "t4k", group, 256 * scale, 8, PageSize::Size4K, 4));
    } else {
        split->addComponent(std::make_unique<SetAssocTlb>(
            "t4k", group, 256 * scale, 8, PageSize::Size4K));
    }
    if (colt_super) {
        split->addComponent(std::make_unique<ColtTlb>(
            "t2m", group, 256 * scale, 8, PageSize::Size2M, 4));
        split->addComponent(std::make_unique<ColtTlb>(
            "t1g", group, 32 * scale, 4, PageSize::Size1G, 4));
    } else {
        split->addComponent(std::make_unique<SetAssocTlb>(
            "t2m", group, 256 * scale, 8, PageSize::Size2M));
        split->addComponent(std::make_unique<SetAssocTlb>(
            "t1g", group, 32 * scale, 4, PageSize::Size1G));
    }
    return split;
}

MixTlbParams
mixL1Params(unsigned scale, bool colt, bool super_index)
{
    MixTlbParams params;
    params.entries = 96ULL * scale; // area-equivalent to 100 split
    params.assoc = 6;
    params.mode = CoalesceMode::Bitmap;
    params.colt4k = colt ? 4 : 1;
    params.superpageIndexBits = super_index;
    return params;
}

MixTlbParams
mixL2Params(unsigned scale, bool colt, bool super_index)
{
    MixTlbParams params;
    params.entries = 544ULL * scale; // area-equivalent to 512 + 32
    params.assoc = 8;
    params.mode = CoalesceMode::Length;
    // Window matched to the walker's 8-line wide scan (64 PTEs), so a
    // single fill can rebuild a whole bundle.
    params.maxCoalesce = 64;
    params.colt4k = colt ? 4 : 1;
    params.superpageIndexBits = super_index;
    return params;
}

} // anonymous namespace

std::unique_ptr<BaseTlb>
makeCpuL1(TlbDesign design, stats::StatGroup *parent,
          const pt::PageTable *table, ConfigScale scale)
{
    const unsigned s = scale.scale;
    switch (design) {
      case TlbDesign::Split:
        return makeSplitL1("l1", parent, s, false, false);
      case TlbDesign::Colt:
        return makeSplitL1("l1", parent, s, true, false);
      case TlbDesign::ColtPlusPlus:
        return makeSplitL1("l1", parent, s, true, true);
      case TlbDesign::Mix:
        return std::make_unique<MixTlb>("l1", parent,
                                        mixL1Params(s, false, false));
      case TlbDesign::MixColt:
        return std::make_unique<MixTlb>("l1", parent,
                                        mixL1Params(s, true, false));
      case TlbDesign::MixSuperIndex:
        return std::make_unique<MixTlb>("l1", parent,
                                        mixL1Params(s, false, true));
      case TlbDesign::HashRehash:
      case TlbDesign::HashRehashPred: {
        HashRehashParams params;
        params.entries = 96ULL * s;
        params.assoc = 6;
        params.usePredictor = design == TlbDesign::HashRehashPred;
        return std::make_unique<HashRehashTlb>("l1", parent, params);
      }
      case TlbDesign::Skew:
      case TlbDesign::SkewPred: {
        SkewTlbParams params;
        // ~15% area docked for timestamp storage: 84 entries, 6 ways.
        params.setsPerWay = 14ULL * s;
        params.usePredictor = design == TlbDesign::SkewPred;
        return std::make_unique<SkewTlb>("l1", parent, params);
      }
      case TlbDesign::Ideal:
        fatal_if(!table, "ideal TLB needs a page table");
        return std::make_unique<IdealTlb>("l1", parent, *table);
    }
    panic("unreachable");
}

std::shared_ptr<BaseTlb>
makeCpuL2(TlbDesign design, stats::StatGroup *parent,
          const pt::PageTable *table, ConfigScale scale)
{
    const unsigned s = scale.scale;
    switch (design) {
      case TlbDesign::Split:
        return makeSplitL2("l2", parent, s, false, false);
      case TlbDesign::Colt:
        return makeSplitL2("l2", parent, s, true, false);
      case TlbDesign::ColtPlusPlus:
        return makeSplitL2("l2", parent, s, true, true);
      case TlbDesign::Mix:
        return std::make_shared<MixTlb>("l2", parent,
                                        mixL2Params(s, false, false));
      case TlbDesign::MixColt:
        return std::make_shared<MixTlb>("l2", parent,
                                        mixL2Params(s, true, false));
      case TlbDesign::MixSuperIndex:
        return std::make_shared<MixTlb>("l2", parent,
                                        mixL2Params(s, false, true));
      case TlbDesign::HashRehash:
      case TlbDesign::HashRehashPred: {
        HashRehashParams params;
        params.entries = 544ULL * s;
        params.assoc = 8;
        params.usePredictor = design == TlbDesign::HashRehashPred;
        return std::make_shared<HashRehashTlb>("l2", parent, params);
      }
      case TlbDesign::Skew:
      case TlbDesign::SkewPred: {
        SkewTlbParams params;
        params.setsPerWay = 76ULL * s; // 456 entries after the dock
        params.usePredictor = design == TlbDesign::SkewPred;
        return std::make_shared<SkewTlb>("l2", parent, params);
      }
      case TlbDesign::Ideal:
        fatal_if(!table, "ideal TLB needs a page table");
        return std::make_shared<IdealTlb>("l2", parent, *table);
    }
    panic("unreachable");
}

std::unique_ptr<BaseTlb>
makeGpuCoreL1(TlbDesign design, unsigned core, stats::StatGroup *parent,
              const pt::PageTable *table)
{
    const std::string name = "l1c" + std::to_string(core);
    switch (design) {
      case TlbDesign::Split:
      case TlbDesign::Colt:
      case TlbDesign::ColtPlusPlus: {
        auto split = std::make_unique<SplitTlb>(name, parent);
        auto *group = &split->statGroup();
        bool colt_4k = design != TlbDesign::Split;
        bool colt_super = design == TlbDesign::ColtPlusPlus;
        if (colt_4k) {
            split->addComponent(std::make_unique<ColtTlb>(
                "t4k", group, 128, 4, PageSize::Size4K, 4));
        } else {
            split->addComponent(std::make_unique<SetAssocTlb>(
                "t4k", group, 128, 4, PageSize::Size4K));
        }
        if (colt_super) {
            split->addComponent(std::make_unique<ColtTlb>(
                "t2m", group, 32, 4, PageSize::Size2M, 4));
        } else {
            split->addComponent(std::make_unique<SetAssocTlb>(
                "t2m", group, 32, 4, PageSize::Size2M));
        }
        split->addComponent(std::make_unique<FullyAssocTlb>(
            "t1g", group, 4,
            std::initializer_list<PageSize>{PageSize::Size1G}));
        return split;
      }
      case TlbDesign::Mix:
      case TlbDesign::MixColt:
      case TlbDesign::MixSuperIndex: {
        MixTlbParams params;
        params.entries = 160; // area-equivalent to 164
        params.assoc = 4;
        params.mode = CoalesceMode::Bitmap;
        params.colt4k = design == TlbDesign::MixColt ? 4 : 1;
        params.superpageIndexBits = design == TlbDesign::MixSuperIndex;
        return std::make_unique<MixTlb>(name, parent, params);
      }
      case TlbDesign::HashRehash:
      case TlbDesign::HashRehashPred: {
        HashRehashParams params;
        params.entries = 160;
        params.assoc = 4;
        params.usePredictor = design == TlbDesign::HashRehashPred;
        return std::make_unique<HashRehashTlb>(name, parent, params);
      }
      case TlbDesign::Skew:
      case TlbDesign::SkewPred: {
        SkewTlbParams params;
        params.setsPerWay = 23; // 138 entries after the dock
        params.usePredictor = design == TlbDesign::SkewPred;
        return std::make_unique<SkewTlb>(name, parent, params);
      }
      case TlbDesign::Ideal:
        fatal_if(!table, "ideal TLB needs a page table");
        return std::make_unique<IdealTlb>(name, parent, *table);
    }
    panic("unreachable");
}

std::shared_ptr<BaseTlb>
makeGpuL2(TlbDesign design, stats::StatGroup *parent,
          const pt::PageTable *table)
{
    // GPU L2 geometry mirrors the CPU's shared L2.
    return makeCpuL2(design, parent, table, ConfigScale{});
}

} // namespace mixtlb::sim
