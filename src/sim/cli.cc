#include "cli.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace mixtlb::sim
{

CliArgs::CliArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            fatal("unexpected argument '%s' (flags are --key [value])",
                  arg.c_str());
        }
        std::string key = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[key] = argv[++i];
        } else {
            values_[key] = "";
        }
    }
}

std::uint64_t
CliArgs::getU64(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def
                               : std::strtoull(it->second.c_str(),
                                               nullptr, 0);
}

double
CliArgs::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def
                               : std::strtod(it->second.c_str(), nullptr);
}

std::string
CliArgs::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

bool
CliArgs::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "row has %zu cells, table has %zu columns", cells.size(),
             headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

void
Table::print() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); c++)
            std::printf("%-*s  ", static_cast<int>(widths[c]),
                        cells[c].c_str());
        std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace mixtlb::sim
