/**
 * @file
 * Fully wired simulated machines: physical memory, OS, page tables,
 * caches, walker, and a TLB hierarchy of a chosen design. `Machine` is
 * the native-CPU system of Sec. 6.2; `VirtMachine` hosts consolidated
 * VMs with nested translation (Sec. 6.1's KVM setup). These are the
 * objects the examples and benches drive.
 */

#ifndef MIXTLB_SIM_MACHINE_HH
#define MIXTLB_SIM_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "os/memhog.hh"
#include "os/memory_manager.hh"
#include "os/process.hh"
#include "os/scan.hh"
#include "perf/energy_model.hh"
#include "perf/perf_model.hh"
#include "sim/configs.hh"
#include "tlb/hierarchy.hh"
#include "tlb/walk_source.hh"
#include "virt/nested_walk.hh"
#include "virt/vm.hh"
#include "workload/generator.hh"

namespace mixtlb::sim
{

struct MachineParams
{
    std::string name = "machine";
    std::uint64_t memBytes = 8ULL << 30;
    os::ProcessParams proc{};
    TlbDesign design = TlbDesign::Split;
    ConfigScale scale{};
    /** Fraction of memory memhog pins before the workload starts. */
    double memhogFraction = 0.0;
    double memhogUnmovableShare = 0.2;
    std::uint64_t seed = 1;
    /** Also push data references through the cache hierarchy. */
    bool dataRefsThroughCaches = true;
    /** Paging-structure (MMU) cache entries; 0 = disabled (paper). */
    unsigned pwcEntries = 0;
    cache::HierarchyParams caches{};
    tlb::TlbHierarchyParams tlbLatency{};
};

/** A native (non-virtualized) CPU system. */
class Machine
{
  public:
    explicit Machine(const MachineParams &params);

    /** Reserve a virtual arena for the workload. */
    VAddr mapArena(std::uint64_t bytes);

    /**
     * Replay @p refs references from @p gen through the MMU.
     * @return references completed (short only on OOM).
     */
    std::uint64_t run(workload::TraceGenerator &gen, std::uint64_t refs);

    /** Demand-fault [base, base+bytes) in ascending order. */
    void touchSequential(VAddr base, std::uint64_t bytes,
                         std::uint64_t step = PageBytes4K);

    /**
     * The initialization phase of a real program: sweep the arena in
     * ascending order *through the MMU*, one access per 4KB page. This
     * both hands adjacent virtual pages adjacent physical frames
     * (Sec. 7.1) and lets coalescing TLBs accumulate their bundles the
     * way they would under a real first-touch sweep.
     */
    void warmup(VAddr base, std::uint64_t bytes,
                std::uint64_t step = PageBytes4K);

    /** Zero all statistics; metrics cover only what follows. */
    void startMeasurement();

    /**
     * Run every structural auditor (physical memory, OS process, page
     * table, both TLB levels) and exit fatally on any violation. Runs
     * automatically at phase boundaries when paranoia >= 1 and
     * periodically mid-run at paranoia >= 3.
     */
    void auditAll() const;

    perf::RunMetrics metrics(const perf::PerfParams &params = {}) const;
    perf::EnergyInputs energyInputs() const;

    os::PageSizeDistribution distribution() const;
    std::vector<std::uint64_t> contiguityRuns(PageSize size) const;

    os::Process &process() { return *proc_; }
    os::MemoryManager &memoryManager() { return mm_; }
    os::Memhog &memhog() { return memhog_; }
    tlb::TlbHierarchy &tlbs() { return *hier_; }
    stats::StatGroup &root() { return root_; }
    TlbDesign design() const { return params_.design; }

  private:
    MachineParams params_;
    stats::StatGroup root_;
    mem::PhysMem mem_;
    os::MemoryManager mm_;
    os::Memhog memhog_;
    std::unique_ptr<os::Process> proc_;
    cache::CacheHierarchy caches_;
    std::unique_ptr<tlb::NativeWalkSource> source_;
    std::unique_ptr<tlb::TlbHierarchy> hier_;
    std::uint64_t refs_ = 0;
    /** Hot counter: integral cycles, converted to double at report. */
    std::uint64_t dataCycles_ = 0;
};

struct VirtMachineParams
{
    std::string name = "virt";
    std::uint64_t hostMemBytes = 8ULL << 30;
    unsigned numVms = 1;
    std::uint64_t vmMemBytes = 0; ///< 0 = split host memory evenly
    os::ProcessParams guestProc{};
    os::PagePolicy hostPolicy = os::PagePolicy::Thp;
    TlbDesign design = TlbDesign::Split;
    ConfigScale scale{};
    /** memhog running inside each VM (the paper's "N VM : M mh"). */
    double guestMemhogFraction = 0.0;
    std::uint64_t seed = 1;
    bool dataRefsThroughCaches = true;
    cache::HierarchyParams caches{};
    tlb::TlbHierarchyParams tlbLatency{};
};

/** A host running consolidated VMs, one vCPU (TLB hierarchy) each. */
class VirtMachine
{
  public:
    explicit VirtMachine(const VirtMachineParams &params);
    ~VirtMachine();

    unsigned numVms() const { return static_cast<unsigned>(vms_.size()); }

    VAddr mapArena(unsigned vm, std::uint64_t bytes);
    std::uint64_t run(unsigned vm, workload::TraceGenerator &gen,
                      std::uint64_t refs);

    /** Ascending first-touch sweep through VM @p vm's MMU. */
    void warmup(unsigned vm, VAddr base, std::uint64_t bytes);

    /** Zero all statistics; metrics cover only what follows. */
    void startMeasurement();

    /** Audit host memory, every VM (EPT + guest), and every vCPU TLB. */
    void auditAll() const;

    /** Guest-visible page-size distribution of one VM's process. */
    os::PageSizeDistribution guestDistribution(unsigned vm) const;

    /**
     * End-to-end (gVA and sPA both contiguous) superpage runs — what
     * virtualized MIX TLBs can actually coalesce (Figures 11, 13).
     */
    std::vector<std::uint64_t> nestedContiguityRuns(unsigned vm,
                                                    PageSize size) const;

    /** Aggregate metrics over all vCPUs. */
    perf::RunMetrics metrics(const perf::PerfParams &params = {}) const;
    perf::EnergyInputs energyInputs() const;

    os::Process &guestProcess(unsigned vm) { return *guestProcs_[vm]; }
    virt::Vm &vm(unsigned idx) { return *vms_[idx]; }
    stats::StatGroup &root() { return root_; }

  private:
    VirtMachineParams params_;
    stats::StatGroup root_;
    mem::PhysMem hostMem_;
    os::MemoryManager hostMm_;
    cache::CacheHierarchy caches_;
    std::vector<std::unique_ptr<virt::Vm>> vms_;
    std::vector<std::unique_ptr<os::Memhog>> guestMemhogs_;
    std::vector<std::unique_ptr<os::Process>> guestProcs_;
    std::vector<std::unique_ptr<virt::NestedWalkSource>> sources_;
    std::vector<std::unique_ptr<tlb::TlbHierarchy>> hiers_;
    std::uint64_t refs_ = 0;
    /** Hot counter: integral cycles, converted to double at report. */
    std::uint64_t dataCycles_ = 0;
};

/** Harvest energy inputs from any hierarchy's stat tree. */
perf::EnergyInputs harvestEnergyInputs(const stats::StatGroup &root,
                                       const tlb::TlbHierarchy &hier,
                                       TlbDesign design,
                                       double total_cycles);

} // namespace mixtlb::sim

#endif // MIXTLB_SIM_MACHINE_HH
