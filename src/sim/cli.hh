/**
 * @file
 * Tiny command-line and table-printing helpers shared by the examples
 * and the per-figure benchmark binaries.
 */

#ifndef MIXTLB_SIM_CLI_HH
#define MIXTLB_SIM_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mixtlb::sim
{

/** "--key value" and "--flag" parser with typed lookups. */
class CliArgs
{
  public:
    CliArgs(int argc, char **argv);

    std::uint64_t getU64(const std::string &key,
                         std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;
    bool has(const std::string &key) const;

  private:
    std::map<std::string, std::string> values_;
};

/** Fixed-width text table, printed like the paper's result rows. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print() const;

    static std::string fmt(double value, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mixtlb::sim

#endif // MIXTLB_SIM_CLI_HH
