/**
 * @file
 * The two-dimensional (nested) page-table walker for virtualized
 * systems (Sec. 2): guest virtual -> guest physical through the guest
 * page table, with every guest-physical reference translated to system
 * physical through the EPT. A 4KB/4KB nested walk issues the familiar
 * 24 memory accesses (4 guest PTE reads, each preceded by a 4-access
 * host walk, plus a final host walk for the data address); superpages
 * at either level shorten it.
 *
 * TLBs in front of this walker cache end-to-end gVA->sPA translations
 * whose *effective* page size is the smaller of the guest and host
 * page sizes (hypervisor splintering reduces it, exactly the effect
 * the paper's virtualized results discuss).
 */

#ifndef MIXTLB_VIRT_NESTED_WALK_HH
#define MIXTLB_VIRT_NESTED_WALK_HH

#include "os/process.hh"
#include "pt/walker.hh"
#include "tlb/hierarchy.hh"
#include "virt/vm.hh"

namespace mixtlb::virt
{

class NestedWalkSource : public tlb::WalkSource
{
  public:
    /**
     * @param scan_lines guest PTE cache lines decoded per superpage
     *        leaf (wide MIX L2 scans); stays within one guest PT page.
     */
    NestedWalkSource(Vm &vm, os::Process &guest_proc,
                     stats::StatGroup *parent, unsigned scan_lines = 1);

    pt::WalkResult walk(VAddr gva, bool is_store) override;
    bool fault(VAddr gva, bool is_store) override;
    std::optional<PAddr> leafPteAddr(VAddr gva) override;
    void setDirty(VAddr gva) override;

    bool hasRefTranslate() const override { return true; }

    /**
     * Two-dimensional reference translation: the guest page table maps
     * gVA -> gPA functionally, then the EPT maps gPA -> sPA — no TLBs,
     * no walker caches, nothing faulted in.
     */
    std::optional<PAddr> refTranslate(VAddr gva) override;

  private:
    Vm &vm_;
    os::Process &guestProc_;
    unsigned scanLines_;

    stats::StatGroup stats_;
    /** Host walker over the EPT (charged per guest-level reference). */
    pt::Walker eptWalker_;
    stats::Counter &nestedWalks_;
    stats::Counter &guestFaultsSeen_;

    /**
     * Translate a guest-physical address through the EPT, appending the
     * host walk's accesses to @p accesses; faults host memory in on
     * EPT violations.
     */
    std::optional<pt::Translation>
    hostWalk(PAddr gpa, bool is_write,
             InlineVec<PAddr, pt::MaxWalkAccesses> &accesses);

    /** Effective (gva, spa, size) leaf from guest + host leaves. */
    static pt::Translation effectiveLeaf(VAddr gva,
                                         const pt::Translation &guest,
                                         const pt::Translation &host,
                                         VAddr ept_base);
};

} // namespace mixtlb::virt

#endif // MIXTLB_VIRT_NESTED_WALK_HH
