#include "vm.hh"

#include "common/logging.hh"

namespace mixtlb::virt
{

Vm::Vm(os::MemoryManager &host_mm, const VmParams &params,
       stats::StatGroup *parent)
    : params_(params), stats_(params.name, parent),
      eptFaults_(stats_.addScalar("ept_faults",
                                  "EPT violations serviced"))
{
    guestPhys_ = std::make_unique<mem::PhysMem>(params.guestMemBytes);
    guestMm_ = std::make_unique<os::MemoryManager>(*guestPhys_, &stats_);

    os::ProcessParams ept_params;
    ept_params.name = "ept";
    ept_params.policy = params.hostPolicy;
    ept_params.thpDefrag = params.hostDefrag;
    eptProc_ = std::make_unique<os::Process>(host_mm, ept_params, &stats_);
    eptBase_ = eptProc_->mmap(params.guestMemBytes);
}

std::optional<PAddr>
Vm::hostPhys(PAddr gpa, bool is_write)
{
    auto leaf = hostLeaf(gpa, is_write);
    if (!leaf)
        return std::nullopt;
    return leaf->translate(eptBase_ + gpa);
}

std::optional<PAddr>
Vm::hostPhysIfMapped(PAddr gpa) const
{
    auto leaf = eptProc_->pageTable().translate(eptBase_ + gpa);
    if (!leaf)
        return std::nullopt;
    return leaf->translate(eptBase_ + gpa);
}

std::optional<pt::Translation>
Vm::hostLeaf(PAddr gpa, bool is_write)
{
    panic_if(gpa >= params_.guestMemBytes,
             "guest-physical address beyond guest memory");
    VAddr hva = eptBase_ + gpa;
    auto leaf = eptProc_->pageTable().translate(hva);
    if (!leaf) {
        ++eptFaults_;
        if (eptProc_->touch(hva, is_write) == os::TouchResult::OutOfMemory)
            return std::nullopt;
        leaf = eptProc_->pageTable().translate(hva);
        panic_if(!leaf, "EPT still unmapped after fault service");
    }
    return leaf;
}

void
Vm::audit(contracts::AuditReport &report) const
{
    guestPhys_->audit(report);
    eptProc_->audit(report);
}

} // namespace mixtlb::virt
