/**
 * @file
 * Virtualization substrate (Sec. 2 and the virtualized experiments of
 * Sec. 7): a VM owns a guest-physical address space managed by its own
 * guest OS, while the hypervisor lazily backs guest-physical pages
 * with system-physical frames through an EPT-style nested page table.
 *
 * The hypervisor's gPA->sPA mapping is literally an os::Process over
 * the host memory manager: it reuses the THS machinery, so EPT
 * superpages (and their contiguity) emerge from the same mechanism the
 * guest's do — which is what the paper's virtualized contiguity
 * measurements (Figure 10, 13) rely on.
 */

#ifndef MIXTLB_VIRT_VM_HH
#define MIXTLB_VIRT_VM_HH

#include <memory>
#include <optional>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/phys_mem.hh"
#include "os/memory_manager.hh"
#include "os/process.hh"

namespace mixtlb::virt
{

struct VmParams
{
    std::string name = "vm";
    std::uint64_t guestMemBytes = 1ULL << 30;
    /** Hypervisor backing policy for guest-physical memory. */
    os::PagePolicy hostPolicy = os::PagePolicy::Thp;
    bool hostDefrag = true;
};

class Vm
{
  public:
    Vm(os::MemoryManager &host_mm, const VmParams &params,
       stats::StatGroup *parent);

    /** Guest-physical memory: the guest OS allocates from this. */
    mem::PhysMem &guestPhys() { return *guestPhys_; }

    /** Guest OS memory manager (compaction inside the VM). */
    os::MemoryManager &guestMm() { return *guestMm_; }

    /**
     * System-physical address backing @p gpa, faulting host memory in
     * on demand (EPT violation handling).
     * @return nullopt if the host is out of memory.
     */
    std::optional<PAddr> hostPhys(PAddr gpa, bool is_write);

    /** Functional gPA->sPA probe; never faults anything in. */
    std::optional<PAddr> hostPhysIfMapped(PAddr gpa) const;

    /**
     * The host translation covering @p gpa (page size included), for
     * computing effective nested page sizes. Faults the page in.
     */
    std::optional<pt::Translation> hostLeaf(PAddr gpa, bool is_write);

    /** The EPT, walkable like any page table. */
    pt::PageTable &ept() { return eptProc_->pageTable(); }
    const pt::PageTable &ept() const { return eptProc_->pageTable(); }

    /** The host virtual address the EPT uses for @p gpa. */
    VAddr eptHva(PAddr gpa) const { return eptBase_ + gpa; }

    /** The hypervisor-side process (EPT owner). */
    os::Process &eptProcess() { return *eptProc_; }

    std::uint64_t guestMemBytes() const { return params_.guestMemBytes; }

    /** Audit guest-physical memory and the hypervisor's EPT process. */
    void audit(contracts::AuditReport &report) const;

    stats::StatGroup &statGroup() { return stats_; }

  private:
    VmParams params_;
    stats::StatGroup stats_;
    std::unique_ptr<mem::PhysMem> guestPhys_;
    std::unique_ptr<os::MemoryManager> guestMm_;
    std::unique_ptr<os::Process> eptProc_;
    VAddr eptBase_;

    stats::Scalar &eptFaults_;
};

} // namespace mixtlb::virt

#endif // MIXTLB_VIRT_VM_HH
