#include "nested_walk.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mixtlb::virt
{

NestedWalkSource::NestedWalkSource(Vm &vm, os::Process &guest_proc,
                                   stats::StatGroup *parent,
                                   unsigned scan_lines)
    : vm_(vm), guestProc_(guest_proc), scanLines_(scan_lines),
      stats_("nested", parent),
      eptWalker_(vm.ept(), &stats_),
      nestedWalks_(stats_.addCounter("walks", "nested 2-D walks")),
      guestFaultsSeen_(stats_.addCounter("guest_faults",
                                         "guest page faults observed"))
{
}

std::optional<pt::Translation>
NestedWalkSource::hostWalk(PAddr gpa, bool is_write,
                           InlineVec<PAddr, pt::MaxWalkAccesses> &accesses)
{
    VAddr hva = vm_.eptHva(gpa);
    pt::WalkResult host = eptWalker_.walk(hva, is_write);
    if (host.pageFault()) {
        // EPT violation: the hypervisor backs the page, then the
        // hardware re-walks. Both walks' accesses are paid.
        accesses.append(host.accesses.begin(), host.accesses.end());
        if (!vm_.hostLeaf(gpa, is_write))
            return std::nullopt; // host OOM
        host = eptWalker_.walk(hva, is_write);
        panic_if(host.pageFault(), "EPT fault after backing");
    }
    accesses.append(host.accesses.begin(), host.accesses.end());
    return host.leaf;
}

pt::Translation
NestedWalkSource::effectiveLeaf(VAddr gva, const pt::Translation &guest,
                                const pt::Translation &host,
                                VAddr ept_base)
{
    // The TLB-cacheable page size is the smaller of the two levels.
    PageSize eff = guest.size;
    if (pageShift(host.size) < pageShift(eff))
        eff = host.size;

    pt::Translation leaf;
    leaf.size = eff;
    leaf.vbase = pageBase(gva, eff);
    PAddr gpa_base = guest.translate(leaf.vbase);
    leaf.pbase = host.translate(ept_base + gpa_base);
    // End-to-end permissions: the intersection.
    leaf.perms.writable = guest.perms.writable && host.perms.writable;
    leaf.perms.user = guest.perms.user;
    leaf.perms.noExec = guest.perms.noExec || host.perms.noExec;
    leaf.accessed = guest.accessed;
    leaf.dirty = guest.dirty;
    return leaf;
}

pt::WalkResult
NestedWalkSource::walk(VAddr gva, bool is_store)
{
    ++nestedWalks_;
    pt::WalkResult result;
    auto &guest_mem = vm_.guestPhys();
    const pt::PageTable &guest_table = guestProc_.pageTable();

    PAddr table_gpa = guest_table.root();
    for (unsigned level = pt::NumLevels; level-- > 0;) {
        PAddr gpa_pte = table_gpa + 8ULL * pt::levelIndex(gva, level);

        // Host walk to locate the guest PTE in system memory.
        auto host_pte = hostWalk(gpa_pte, false, result.accesses);
        if (!host_pte) {
            ++guestFaultsSeen_;
            return result; // treated as unserviceable fault upstream
        }
        PAddr spa_pte = host_pte->translate(vm_.eptHva(gpa_pte));
        result.accesses.push_back(alignDown(spa_pte, CacheLineBytes));

        std::uint64_t raw = guest_mem.read64(gpa_pte);
        if (!pt::pte::present(raw)) {
            ++guestFaultsSeen_;
            return result; // guest page fault
        }
        if (level == 0 || pt::pte::pageSizeBit(raw)) {
            // Guest leaf: apply the A/D protocol in the guest PTE.
            std::uint64_t updated = raw | pt::pte::A;
            if (is_store)
                updated |= pt::pte::D;
            if (updated != raw)
                guest_mem.write64(gpa_pte, updated);
            raw = updated;

            pt::Translation guest_leaf;
            PageSize gsize = level == 2 ? PageSize::Size1G
                             : level == 1 ? PageSize::Size2M
                                          : PageSize::Size4K;
            guest_leaf.vbase = pageBase(gva, gsize);
            guest_leaf.pbase = pt::pte::frame(raw);
            guest_leaf.size = gsize;
            guest_leaf.perms = pt::pte::perms(raw);
            guest_leaf.accessed = true;
            guest_leaf.dirty = pt::pte::dirty(raw);

            // Final host walk for the data address.
            PAddr data_gpa = guest_leaf.translate(gva);
            auto host_leaf = hostWalk(data_gpa, is_store,
                                      result.accesses);
            if (!host_leaf) {
                ++guestFaultsSeen_;
                return result;
            }
            result.leaf = effectiveLeaf(gva, guest_leaf, *host_leaf,
                                        vm_.eptHva(0) - 0);

            // Build the guest-granularity line for MIX coalescing, but
            // only when no splintering shrank the effective size: a
            // splintered leaf cannot share an entry with its
            // guest-granularity neighbours anyway.
            result.lineGranularity = result.leaf->size;
            if (result.leaf->size == gsize) {
                // Wide scans stay within one guest PT page, so the
                // host translation of the PTE's page is reused and
                // only the extra guest line reads are charged.
                const unsigned lines = level > 0 ? scanLines_ : 1;
                const unsigned slots = lines * PtesPerCacheLine;
                const PAddr line_gpa =
                    alignDown(gpa_pte, lines * CacheLineBytes);
                const PAddr leaf_line_gpa =
                    alignDown(gpa_pte, CacheLineBytes);
                for (unsigned l = 0; l < lines; l++) {
                    PAddr extra_gpa = line_gpa
                                      + static_cast<PAddr>(l)
                                            * CacheLineBytes;
                    if (extra_gpa != leaf_line_gpa) {
                        result.fillAccesses.push_back(alignDown(
                            host_pte->translate(vm_.eptHva(extra_gpa)),
                            CacheLineBytes));
                    }
                }
                const auto slot =
                    static_cast<unsigned>((gpa_pte - line_gpa) / 8);
                result.leafSlot = slot;
                result.line.assign(slots, pt::LinePte{});
                const std::uint64_t span = 1ULL << pt::levelShift(level);
                const VAddr group_base = alignDown(gva, span * slots);
                for (unsigned i = 0; i < slots; i++) {
                    std::uint64_t nraw = guest_mem.read64(line_gpa + 8 * i);
                    bool leaf_slot = pt::pte::present(nraw) &&
                                     (level == 0 ||
                                      pt::pte::pageSizeBit(nraw));
                    if (!leaf_slot)
                        continue;
                    VAddr n_vbase = group_base + i * span;
                    PAddr n_gpa = pt::pte::frame(nraw);
                    // The neighbour is usable only if a single host
                    // page of at least guest size backs it (already
                    // mapped; the coalescing logic never faults memory
                    // in for neighbours).
                    auto n_host =
                        vm_.ept().translate(vm_.eptHva(n_gpa));
                    if (!n_host ||
                        pageShift(n_host->size) < pageShift(gsize)) {
                        continue;
                    }
                    auto &entry = result.line[i];
                    entry.present = true;
                    entry.xlate.vbase = n_vbase;
                    entry.xlate.pbase =
                        n_host->translate(vm_.eptHva(n_gpa));
                    entry.xlate.size = gsize;
                    entry.xlate.perms.writable =
                        pt::pte::perms(nraw).writable &&
                        n_host->perms.writable;
                    entry.xlate.perms.user = pt::pte::perms(nraw).user;
                    entry.xlate.perms.noExec =
                        pt::pte::perms(nraw).noExec || n_host->perms.noExec;
                    entry.xlate.accessed = pt::pte::accessed(nraw);
                    entry.xlate.dirty = pt::pte::dirty(nraw);
                }
                // The demanded slot reflects the effective leaf.
                result.line[slot].present = true;
                result.line[slot].xlate = *result.leaf;
            }
            return result;
        }
        table_gpa = pt::pte::frame(raw);
    }
    panic("nested walk fell off the guest radix tree");
}

bool
NestedWalkSource::fault(VAddr gva, bool is_store)
{
    return guestProc_.touch(gva, is_store)
           != os::TouchResult::OutOfMemory;
}

std::optional<PAddr>
NestedWalkSource::leafPteAddr(VAddr gva)
{
    auto gpa_pte = guestProc_.pageTable().leafPteAddr(gva);
    if (!gpa_pte)
        return std::nullopt;
    return vm_.hostPhysIfMapped(*gpa_pte);
}

void
NestedWalkSource::setDirty(VAddr gva)
{
    guestProc_.pageTable().setDirty(gva);
}

std::optional<PAddr>
NestedWalkSource::refTranslate(VAddr gva)
{
    auto guest = guestProc_.pageTable().translate(gva);
    if (!guest)
        return std::nullopt;
    return vm_.hostPhysIfMapped(guest->translate(gva));
}

} // namespace mixtlb::virt
