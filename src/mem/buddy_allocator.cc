#include "buddy_allocator.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mixtlb::mem
{

BuddyAllocator::BuddyAllocator(std::uint64_t total_frames)
    : totalFrames_(total_frames), freeFrames_(total_frames),
      freeLists_(MaxOrder + 1)
{
    panic_if(total_frames == 0, "empty physical memory");
    // Seed the free lists with maximal naturally aligned blocks, as a
    // real buddy system would after boot.
    Pfn pfn = 0;
    std::uint64_t remaining = total_frames;
    while (remaining > 0) {
        unsigned order = MaxOrder;
        while (order > 0 &&
               ((pfn & (pow2(order) - 1)) != 0 ||
                pow2(order) > remaining)) {
            order--;
        }
        freeLists_[order].insert(pfn);
        pfn += pow2(order);
        remaining -= pow2(order);
    }
}

std::optional<Pfn>
BuddyAllocator::alloc(unsigned order)
{
    panic_if(order > MaxOrder, "alloc order %u too large", order);

    // Find the lowest-address block among all orders >= requested that
    // could satisfy this request; preferring the lowest *address* (not
    // the smallest sufficient order) is what generates physically
    // contiguous consecutive allocations.
    unsigned best_order = 0;
    Pfn best_pfn = 0;
    bool found = false;
    for (unsigned o = order; o <= MaxOrder; o++) {
        if (freeLists_[o].empty())
            continue;
        Pfn candidate = *freeLists_[o].begin();
        if (!found || candidate < best_pfn) {
            found = true;
            best_pfn = candidate;
            best_order = o;
        }
    }
    if (!found)
        return std::nullopt;

    freeLists_[best_order].erase(best_pfn);
    // Split down, keeping the low half each time and freeing the high
    // half, so the returned block sits at the lowest address.
    for (unsigned o = best_order; o > order; o--) {
        Pfn high = best_pfn + pow2(o - 1);
        freeLists_[o - 1].insert(high);
    }
    freeFrames_ -= pow2(order);
    return best_pfn;
}

bool
BuddyAllocator::allocRegion(Pfn pfn, unsigned order)
{
    panic_if(order > MaxOrder, "allocRegion order %u too large", order);
    panic_if((pfn & (pow2(order) - 1)) != 0,
             "allocRegion misaligned pfn");
    if (!isRegionFree(pfn, order))
        return false;

    // Carve the region out of whichever free blocks cover it. Because
    // blocks are naturally aligned, a covering block either contains the
    // whole region or is contained by it.
    std::uint64_t want_lo = pfn;
    std::uint64_t want_hi = pfn + pow2(order);
    for (unsigned o = 0; o <= MaxOrder; o++) {
        auto &list = freeLists_[o];
        auto it = list.lower_bound(
            want_lo >= pow2(o) ? want_lo - pow2(o) + 1 : 0);
        while (it != list.end() && *it < want_hi) {
            Pfn blk = *it;
            std::uint64_t blk_hi = blk + pow2(o);
            if (blk_hi <= want_lo) {
                ++it;
                continue;
            }
            it = list.erase(it);
            if (blk >= want_lo && blk_hi <= want_hi) {
                // fully consumed
                continue;
            }
            // The block contains the region: split off the parts outside.
            // Keep splitting the covering block; re-add children outside
            // the wanted range.
            unsigned co = o;
            Pfn cur = blk;
            while (co > order) {
                co--;
                Pfn low = cur;
                Pfn high = cur + pow2(co);
                if (want_lo >= high) {
                    freeLists_[co].insert(low);
                    cur = high;
                } else {
                    freeLists_[co].insert(high);
                    cur = low;
                }
                // Re-fetch iterator invalidation safety: we only touch
                // freeLists_[co] with co < o here and `it` points into
                // freeLists_[o], which erase() already advanced.
            }
            break;
        }
    }
    freeFrames_ -= pow2(order);
    return true;
}

void
BuddyAllocator::free(Pfn pfn, unsigned order)
{
    panic_if(order > MaxOrder, "free order %u too large", order);
    panic_if((pfn & (pow2(order) - 1)) != 0, "free misaligned pfn");
    insertAndMerge(pfn, order);
    freeFrames_ += pow2(order);
}

void
BuddyAllocator::insertAndMerge(Pfn pfn, unsigned order)
{
    while (order < MaxOrder) {
        Pfn buddy = pfn ^ pow2(order);
        auto it = freeLists_[order].find(buddy);
        if (it == freeLists_[order].end())
            break;
        freeLists_[order].erase(it);
        pfn = pfn & buddy; // the lower of the two
        order++;
    }
    auto [it, inserted] = freeLists_[order].insert(pfn);
    panic_if(!inserted, "double free of pfn 0x%llx",
             (unsigned long long)pfn);
}

bool
BuddyAllocator::isRegionFree(Pfn pfn, unsigned order) const
{
    std::uint64_t want_lo = pfn;
    std::uint64_t want_hi = pfn + pow2(order);
    std::uint64_t covered = 0;
    for (unsigned o = 0; o <= MaxOrder; o++) {
        const auto &list = freeLists_[o];
        auto it = list.lower_bound(
            want_lo >= pow2(o) ? want_lo - pow2(o) + 1 : 0);
        for (; it != list.end() && *it < want_hi; ++it) {
            std::uint64_t blk_lo = *it;
            std::uint64_t blk_hi = blk_lo + pow2(o);
            if (blk_hi <= want_lo)
                continue;
            std::uint64_t lo = blk_lo > want_lo ? blk_lo : want_lo;
            std::uint64_t hi = blk_hi < want_hi ? blk_hi : want_hi;
            covered += hi - lo;
        }
    }
    return covered == want_hi - want_lo;
}

std::optional<unsigned>
BuddyAllocator::largestFreeOrder() const
{
    for (unsigned o = MaxOrder + 1; o-- > 0;) {
        if (!freeLists_[o].empty())
            return o;
    }
    return std::nullopt;
}

std::uint64_t
BuddyAllocator::freeBlocksAt(unsigned order) const
{
    panic_if(order > MaxOrder, "order %u too large", order);
    return freeLists_[order].size();
}

void
BuddyAllocator::forEachFreeBlock(
    const std::function<void(Pfn, unsigned)> &fn) const
{
    for (unsigned o = 0; o <= MaxOrder; o++) {
        for (Pfn pfn : freeLists_[o])
            fn(pfn, o);
    }
}

void
BuddyAllocator::audit(contracts::AuditReport &report) const
{
    // Flatten the per-order lists into [lo, hi) frame intervals.
    std::vector<std::pair<Pfn, std::uint64_t>> blocks; // (pfn, frames)
    std::uint64_t free_sum = 0;
    for (unsigned o = 0; o <= MaxOrder; o++) {
        const std::uint64_t frames = pow2(o);
        for (Pfn pfn : freeLists_[o]) {
            MIX_AUDIT_CHECK(report, (pfn & (frames - 1)) == 0,
                            "order-%u free block at pfn 0x%llx is not "
                            "naturally aligned",
                            o, (unsigned long long)pfn);
            MIX_AUDIT_CHECK(report, pfn + frames <= totalFrames_,
                            "order-%u free block at pfn 0x%llx runs "
                            "past the %llu managed frames",
                            o, (unsigned long long)pfn,
                            (unsigned long long)totalFrames_);
            if (o < MaxOrder &&
                freeLists_[o].count(pfn ^ frames) > 0) {
                // Report each unmerged pair once (from its low half).
                MIX_AUDIT_CHECK(report, (pfn & frames) != 0,
                                "order-%u buddies 0x%llx/0x%llx both "
                                "free but unmerged",
                                o, (unsigned long long)pfn,
                                (unsigned long long)(pfn ^ frames));
            }
            blocks.emplace_back(pfn, frames);
            free_sum += frames;
        }
    }

    MIX_AUDIT_CHECK(report, free_sum == freeFrames_,
                    "free lists hold %llu frames but freeFrames() "
                    "says %llu (split/merge leaked or minted frames)",
                    (unsigned long long)free_sum,
                    (unsigned long long)freeFrames_);
    MIX_AUDIT_CHECK(report, freeFrames_ <= totalFrames_,
                    "freeFrames %llu exceeds totalFrames %llu",
                    (unsigned long long)freeFrames_,
                    (unsigned long long)totalFrames_);

    std::sort(blocks.begin(), blocks.end());
    for (std::size_t i = 1; i < blocks.size(); i++) {
        const auto &[prev, prev_frames] = blocks[i - 1];
        const auto &[cur, cur_frames] = blocks[i];
        (void)cur_frames;
        MIX_AUDIT_CHECK(report, prev + prev_frames <= cur,
                        "free blocks overlap: [0x%llx, 0x%llx) and "
                        "0x%llx",
                        (unsigned long long)prev,
                        (unsigned long long)(prev + prev_frames),
                        (unsigned long long)cur);
    }
}

double
BuddyAllocator::fragmentationIndex(unsigned order) const
{
    if (freeFrames_ == 0)
        return 0.0;
    std::uint64_t usable = 0;
    for (unsigned o = order; o <= MaxOrder; o++)
        usable += shiftLeft(freeLists_[o].size(), o);
    return 1.0 - static_cast<double>(usable)
                 / static_cast<double>(freeFrames_);
}

} // namespace mixtlb::mem
