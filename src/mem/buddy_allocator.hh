/**
 * @file
 * A binary buddy allocator over 4KB physical frames.
 *
 * This is the substrate from which the OS model's page-size distribution
 * emerges: 2MB superpages are order-9 blocks and 1GB superpages are
 * order-18 blocks. Allocation is lowest-address-first, which (like
 * Linux's free-list ordering plus ascending fault order) is the mechanism
 * that makes consecutively allocated superpages physically contiguous —
 * the property MIX TLB coalescing relies on (Sec. 7.1 of the paper).
 */

#ifndef MIXTLB_MEM_BUDDY_ALLOCATOR_HH
#define MIXTLB_MEM_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "common/contracts.hh"
#include "common/types.hh"

namespace mixtlb::mem
{

/** Buddy order of a 2MB block (512 frames). */
constexpr unsigned Order2M = PageShift2M - PageShift4K;
/** Buddy order of a 1GB block (262144 frames). */
constexpr unsigned Order1G = PageShift1G - PageShift4K;

class BuddyAllocator
{
  public:
    /** Highest block order we track (1GB blocks). */
    static constexpr unsigned MaxOrder = Order1G;

    /**
     * Manage @p total_frames 4KB frames, all initially free.
     * The frame count need not be a power of two.
     */
    explicit BuddyAllocator(std::uint64_t total_frames);

    /**
     * Allocate a naturally aligned block of 2^order frames at the lowest
     * available address.
     *
     * @return the first frame number, or nullopt if no block exists.
     */
    std::optional<Pfn> alloc(unsigned order);

    /**
     * Claim the specific (naturally aligned) block starting at @p pfn if
     * every frame in it is currently free.
     *
     * @retval true the block was free and is now allocated.
     */
    bool allocRegion(Pfn pfn, unsigned order);

    /** Return a previously allocated block. */
    void free(Pfn pfn, unsigned order);

    /** True if the aligned block at @p pfn is entirely free. */
    bool isRegionFree(Pfn pfn, unsigned order) const;

    /** Total frames currently free. */
    std::uint64_t freeFrames() const { return freeFrames_; }

    /** Total frames managed. */
    std::uint64_t totalFrames() const { return totalFrames_; }

    /** Largest order with at least one free block, or nullopt if full. */
    std::optional<unsigned> largestFreeOrder() const;

    /** Number of free blocks at exactly @p order. */
    std::uint64_t freeBlocksAt(unsigned order) const;

    /** Visit every free block as (base pfn, order). */
    void forEachFreeBlock(
        const std::function<void(Pfn, unsigned)> &fn) const;

    /**
     * Fraction of free memory unusable for blocks of @p order, i.e. the
     * standard external-fragmentation index for that order.
     */
    double fragmentationIndex(unsigned order) const;

    /**
     * Structural audit: every free block naturally aligned and inside
     * the managed range, free blocks pairwise disjoint, no two buddies
     * left unmerged at the same order, and the free lists conserving
     * freeFrames() exactly (split/merge must neither leak nor mint
     * frames).
     */
    void audit(contracts::AuditReport &report) const;

  private:
    /** Test-only backdoor for the corruption-injection audit tests. */
    friend struct BuddyTestAccess;
    std::uint64_t totalFrames_;
    std::uint64_t freeFrames_;
    /** Per-order ordered free lists (lowest address first). */
    std::vector<std::set<Pfn>> freeLists_;

    /** Insert a free block, merging with its buddy where possible. */
    void insertAndMerge(Pfn pfn, unsigned order);

    /** Split one free block of @p from down to produce one of @p to. */
    void splitTo(unsigned from, unsigned to);
};

} // namespace mixtlb::mem

#endif // MIXTLB_MEM_BUDDY_ALLOCATOR_HH
