#include "phys_mem.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mixtlb::mem
{

PhysMem::PhysMem(std::uint64_t bytes)
    : bytes_(bytes), buddy_(bytes >> PageShift4K),
      frameUse_(bytes >> PageShift4K, FrameUse::Free)
{
    fatal_if(bytes == 0 || (bytes & (PageBytes4K - 1)) != 0,
             "physical memory size must be a nonzero multiple of 4KB");
}

std::optional<Pfn>
PhysMem::allocFrames(unsigned order, FrameUse use)
{
    auto pfn = buddy_.alloc(order);
    if (pfn)
        tagFrames(*pfn, order, use);
    return pfn;
}

bool
PhysMem::allocFramesAt(Pfn pfn, unsigned order, FrameUse use)
{
    if (!buddy_.allocRegion(pfn, order))
        return false;
    tagFrames(pfn, order, use);
    return true;
}

void
PhysMem::freeFrames(Pfn pfn, unsigned order)
{
    tagFrames(pfn, order, FrameUse::Free);
    for (std::uint64_t i = 0; i < pow2(order); i++)
        data_.erase(pfn + i);
    buddy_.free(pfn, order);
}

void
PhysMem::retagFrames(Pfn pfn, unsigned order, FrameUse use)
{
    for (std::uint64_t i = 0; i < pow2(order); i++) {
        panic_if(frameUse_[pfn + i] == FrameUse::Free,
                 "retagFrames over a free frame");
    }
    tagFrames(pfn, order, use);
}

void
PhysMem::tagFrames(Pfn pfn, unsigned order, FrameUse use)
{
    panic_if(pfn + pow2(order) > frameUse_.size(),
             "frame range out of bounds");
    for (std::uint64_t i = 0; i < pow2(order); i++)
        frameUse_[pfn + i] = use;
}

FrameUse
PhysMem::frameUse(Pfn pfn) const
{
    panic_if(pfn >= frameUse_.size(), "pfn out of bounds");
    return frameUse_[pfn];
}

void
PhysMem::audit(contracts::AuditReport &report) const
{
    buddy_.audit(report);

    // Cross-check the usage tags against the free lists: every frame
    // inside a free block must be tagged Free, and the Free tags must
    // cover exactly the free frames (no frame both handed out and on
    // a free list, none leaked as allocated-but-untracked).
    std::vector<bool> in_free_list(frameUse_.size(), false);
    buddy_.forEachFreeBlock([&](Pfn base, unsigned order) {
        for (std::uint64_t i = 0; i < pow2(order); i++) {
            if (base + i < in_free_list.size())
                in_free_list[base + i] = true;
        }
    });
    std::uint64_t mismatches = 0;
    for (Pfn pfn = 0; pfn < frameUse_.size(); pfn++) {
        const bool tagged_free = frameUse_[pfn] == FrameUse::Free;
        if (tagged_free == in_free_list[pfn])
            continue;
        if (mismatches++ < 8) { // a systematic drift floods the report
            MIX_AUDIT_CHECK(report, false,
                            "frame 0x%llx is %s in the buddy but "
                            "tagged %s",
                            (unsigned long long)pfn,
                            in_free_list[pfn] ? "free" : "allocated",
                            tagged_free ? "Free" : "in use");
        }
    }
    MIX_AUDIT_CHECK(report, mismatches <= 8,
                    "%llu further frame tag / free list mismatches",
                    (unsigned long long)(mismatches - 8));
}

std::uint64_t
PhysMem::read64(PAddr paddr) const
{
    panic_if(paddr & 7, "unaligned read64");
    Pfn pfn = paddr >> PageShift4K;
    auto it = data_.find(pfn);
    if (it == data_.end())
        return 0;
    return (*it->second)[(paddr & (PageBytes4K - 1)) >> 3];
}

void
PhysMem::write64(PAddr paddr, std::uint64_t value)
{
    panic_if(paddr & 7, "unaligned write64");
    Pfn pfn = paddr >> PageShift4K;
    panic_if(pfn >= frameUse_.size(), "write64 past end of memory");
    auto it = data_.find(pfn);
    if (it == data_.end()) {
        auto frame = std::make_unique<FrameData>();
        frame->fill(0);
        it = data_.emplace(pfn, std::move(frame)).first;
    }
    (*it->second)[(paddr & (PageBytes4K - 1)) >> 3] = value;
}

} // namespace mixtlb::mem
