/**
 * @file
 * Simulated physical memory: buddy allocation, per-frame metadata, and
 * word-granularity backing store for page-table frames.
 *
 * Only frames that are actually written (page-table frames) allocate
 * host storage, so multi-GB simulated memories stay cheap to model.
 */

#ifndef MIXTLB_MEM_PHYS_MEM_HH
#define MIXTLB_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/buddy_allocator.hh"

namespace mixtlb::mem
{

/** What a physical frame is being used for. */
enum class FrameUse : std::uint8_t
{
    Free = 0,      ///< not allocated
    PageTable,     ///< holds page-table entries (not movable)
    Pinned,        ///< pinned by memhog or the hypervisor (not movable)
    AppSmall,      ///< backs an application 4KB page (movable)
    AppHuge,       ///< part of an application superpage (not split)
};

/**
 * Simulated physical memory for one machine (or one nesting level of a
 * virtualized machine).
 */
class PhysMem
{
  public:
    explicit PhysMem(std::uint64_t bytes);

    BuddyAllocator &buddy() { return buddy_; }
    const BuddyAllocator &buddy() const { return buddy_; }

    std::uint64_t sizeBytes() const { return bytes_; }
    std::uint64_t totalFrames() const { return buddy_.totalFrames(); }

    /**
     * Allocate 2^order frames and tag them with @p use.
     * @return base frame, or nullopt when memory is exhausted.
     */
    std::optional<Pfn> allocFrames(unsigned order, FrameUse use);

    /** Claim a specific free region (used by compaction). */
    bool allocFramesAt(Pfn pfn, unsigned order, FrameUse use);

    /** Free 2^order frames starting at @p pfn. */
    void freeFrames(Pfn pfn, unsigned order);

    /**
     * Change the usage tag of 2^order already-allocated frames. Used by
     * compaction when ownership of frames transfers without a buddy
     * free/alloc round trip.
     */
    void retagFrames(Pfn pfn, unsigned order, FrameUse use);

    /** Per-frame usage tag. */
    FrameUse frameUse(Pfn pfn) const;

    /** Read a 64-bit word at physical address @p paddr (8-aligned). */
    std::uint64_t read64(PAddr paddr) const;

    /** Write a 64-bit word at physical address @p paddr (8-aligned). */
    void write64(PAddr paddr, std::uint64_t value);

    /**
     * Structural audit: the buddy allocator's own invariants, plus the
     * cross-check that frame-usage tags and the free lists agree (a
     * frame on a free list must be tagged Free, and the Free tag count
     * must equal freeFrames()).
     */
    void audit(contracts::AuditReport &report) const;

  private:
    static constexpr unsigned WordsPerFrame = PageBytes4K / 8;
    using FrameData = std::array<std::uint64_t, WordsPerFrame>;

    std::uint64_t bytes_;
    BuddyAllocator buddy_;
    std::vector<FrameUse> frameUse_;
    /** Sparse backing store, indexed by frame number. */
    std::unordered_map<Pfn, std::unique_ptr<FrameData>> data_;

    void tagFrames(Pfn pfn, unsigned order, FrameUse use);
};

} // namespace mixtlb::mem

#endif // MIXTLB_MEM_PHYS_MEM_HH
