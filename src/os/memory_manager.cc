#include "memory_manager.hh"

#include "common/fault.hh"
#include "common/intmath.hh"
#include "common/logging.hh"

namespace mixtlb::os
{

MemoryManager::MemoryManager(mem::PhysMem &mem, stats::StatGroup *parent,
                             CompactionParams params)
    : mem_(mem), params_(params), rng_(params.seed),
      stats_("mm", parent),
      directAllocs_(stats_.addScalar("direct_allocs",
          "contiguous allocations satisfied without compaction")),
      compactionAttempts_(stats_.addScalar("compaction_attempts",
          "compaction scans started")),
      compactionSuccesses_(stats_.addScalar("compaction_successes",
          "compaction scans that produced a free region")),
      compactionDeferred_(stats_.addScalar("compaction_deferred",
          "allocations that skipped compaction due to backoff")),
      pagesMigrated_(stats_.addScalar("pages_migrated",
          "movable pages migrated by compaction")),
      reclaimRequests_(stats_.addScalar("reclaim_requests",
          "failed allocations that invoked the reclaimers")),
      framesReclaimed_(stats_.addScalar("frames_reclaimed",
          "frames freed by the registered reclaimers"))
{
}

void
MemoryManager::addReclaimer(const void *key, Reclaimer fn)
{
    for (const auto &entry : reclaimers_) {
        panic_if(entry.first == key,
                 "reclaimer key registered twice");
    }
    reclaimers_.emplace_back(key, std::move(fn));
}

void
MemoryManager::removeReclaimer(const void *key)
{
    std::erase_if(reclaimers_,
                  [key](const auto &entry) { return entry.first == key; });
}

std::uint64_t
MemoryManager::reclaim(std::uint64_t want)
{
    if (want == 0 || inReclaim_ || reclaimers_.empty())
        return 0;
    inReclaim_ = true;
    ++reclaimRequests_;
    std::uint64_t freed = 0;
    for (auto &[key, fn] : reclaimers_) {
        (void)key;
        if (freed >= want)
            break;
        freed += fn(want - freed);
    }
    framesReclaimed_ += static_cast<double>(freed);
    inReclaim_ = false;
    return freed;
}

void
MemoryManager::registerMovable(Pfn pfn, MovableOwner *owner,
                               std::uint64_t tag)
{
    auto [it, inserted] = movable_.try_emplace(pfn, Movable{owner, tag});
    panic_if(!inserted, "frame 0x%llx already registered movable",
             (unsigned long long)pfn);
}

void
MemoryManager::unregisterMovable(Pfn pfn)
{
    auto erased = movable_.erase(pfn);
    panic_if(erased == 0, "frame 0x%llx was not movable",
             (unsigned long long)pfn);
}

double
MemoryManager::freeFraction() const
{
    return static_cast<double>(mem_.buddy().freeFrames())
           / static_cast<double>(mem_.totalFrames());
}

std::optional<Pfn>
MemoryManager::reclaimAndRetry(unsigned order, mem::FrameUse use,
                               bool allow_reclaim)
{
    if (!allow_reclaim || inReclaim_ || reclaimers_.empty())
        return std::nullopt;
    if (reclaim(pow2(order)) == 0)
        return std::nullopt;
    return mem_.allocFrames(order, use);
}

std::optional<Pfn>
MemoryManager::allocContiguous(unsigned order, mem::FrameUse use,
                               bool allow_compaction, bool allow_reclaim)
{
    // Injected buddy failure for superpage requests: the caller's
    // graceful-degradation path (THS falls back to 4KB and records it)
    // is exactly what the fault soak exercises. Order-0 requests are
    // not failed here — their retry/OOM handling lives at the
    // page-fault layer.
    if (order > 0 && fault::fire(fault::Site::BuddyAlloc))
        return std::nullopt;

    if (order == 0 || mem_.buddy().freeBlocksAt(order) > 0 ||
        (mem_.buddy().largestFreeOrder().value_or(0) >= order)) {
        auto pfn = mem_.allocFrames(order, use);
        if (pfn) {
            ++directAllocs_;
            return pfn;
        }
    }
    if (order == 0 || !allow_compaction)
        return reclaimAndRetry(order, use, allow_reclaim);

    // Watermark check: compaction needs migration destinations, and a
    // nearly full machine should fall back to small pages quickly.
    std::uint64_t region = pow2(order);
    double free_frac = freeFraction();
    if (mem_.buddy().freeFrames() < region ||
        free_frac < params_.minFreeFraction) {
        return reclaimAndRetry(order, use, allow_reclaim);
    }

    // Pressure-gated willingness (Linux skips direct compaction for
    // THP allocations as the watermarks tighten): always compact with
    // plentiful free memory, increasingly fall back to small pages as
    // it shrinks toward the minimum. The gate is *streaky*, like the
    // real deferred-compaction machinery: once compaction is working
    // it keeps working for a stretch, and once deferred it stays
    // deferred for a stretch. Streaks are what keep the superpages
    // that do form contiguous (Sec. 7.1) instead of interleaving 4KB
    // fallbacks through them.
    if (free_frac < params_.fullEffortFreeFraction) {
        double p = (free_frac - params_.minFreeFraction)
                   / (params_.fullEffortFreeFraction
                      - params_.minFreeFraction);
        if (gateStreak_ == 0) {
            gateWilling_ = rng_.chance(p);
            gateStreak_ = 32 + rng_.nextBounded(96);
        }
        gateStreak_--;
        if (!gateWilling_) {
            ++compactionDeferred_;
            return std::nullopt;
        }
    } else {
        gateStreak_ = 0;
    }

    // Deferred compaction: after repeated failures, skip 2^deferShift
    // attempts before trying again (Linux compaction_deferred()).
    if (params_.deferOnFailure && deferCount_ > 0) {
        deferCount_--;
        ++compactionDeferred_;
        return std::nullopt;
    }

    auto pfn = compact(order, use);
    if (pfn) {
        deferShift_ = 0;
        deferCount_ = 0;
        return pfn;
    }
    if (params_.deferOnFailure) {
        if (deferShift_ < 6)
            deferShift_++;
        deferCount_ = 1u << (deferShift_ & 31);
    }
    // Failed even after compaction: demote/reclaim memory from the
    // registered processes and retry once.
    return reclaimAndRetry(order, use, allow_reclaim);
}

bool
MemoryManager::regionMigratable(Pfn base, unsigned order,
                                std::uint64_t *allocated_out) const
{
    std::uint64_t allocated = 0;
    for (std::uint64_t i = 0; i < pow2(order); i++) {
        switch (mem_.frameUse(base + i)) {
          case mem::FrameUse::Free:
            break;
          case mem::FrameUse::AppSmall:
            // Movable iff registered (it always should be).
            if (!movable_.count(base + i))
                return false;
            allocated++;
            break;
          default:
            return false; // page tables, pinned, superpage frames
        }
    }
    *allocated_out = allocated;
    return true;
}

std::optional<Pfn>
MemoryManager::compact(unsigned order, mem::FrameUse use)
{
    ++compactionAttempts_;
    const std::uint64_t region = pow2(order);
    const std::uint64_t num_regions = shiftRight(mem_.totalFrames(), order);
    if (num_regions == 0)
        return std::nullopt;

    std::uint64_t start = shiftRight(scanCursor_, order);
    for (unsigned cand = 0; cand < params_.maxCandidates &&
                            cand < num_regions; cand++) {
        std::uint64_t region_idx = (start + cand) % num_regions;
        Pfn base = shiftLeft(region_idx, order);
        scanCursor_ = shiftLeft((region_idx + 1) % num_regions, order);

        std::uint64_t allocated = 0;
        if (!regionMigratable(base, order, &allocated))
            continue;
        // Migration destinations must exist outside this region. Free
        // frames inside it don't help, so be conservative.
        if (mem_.buddy().freeFrames() < region)
            continue;

        // 1. Claim the free holes so migration destinations can't land
        //    inside the region we're trying to empty.
        for (std::uint64_t i = 0; i < region; i++) {
            if (mem_.frameUse(base + i) == mem::FrameUse::Free) {
                bool ok = mem_.allocFramesAt(base + i, 0,
                                             mem::FrameUse::Pinned);
                panic_if(!ok, "free frame could not be claimed");
            }
        }

        // 2. Migrate each movable frame out; ownership of the old frame
        //    transfers to us without a buddy round-trip. The watermark
        //    check above guarantees destinations exist, but handle
        //    failure defensively anyway.
        bool failed = false;
        for (std::uint64_t i = 0; i < region && !failed; i++) {
            Pfn old_pfn = base + i;
            auto it = movable_.find(old_pfn);
            if (it == movable_.end())
                continue; // was free, already claimed
            auto dest = mem_.allocFrames(0, mem::FrameUse::AppSmall);
            if (!dest) {
                failed = true;
                break;
            }
            panic_if(*dest >= base && *dest < base + region,
                     "migration destination inside the region");
            Movable entry = it->second;
            movable_.erase(it);
            registerMovable(*dest, entry.owner, entry.tag);
            entry.owner->relocate(entry.tag, old_pfn, *dest);
            // The vacated frame is now ours; mark it like the holes.
            mem_.retagFrames(old_pfn, 0, mem::FrameUse::Pinned);
            ++pagesMigrated_;
        }

        if (failed) {
            // Roll back everything we claimed (holes and vacated
            // frames); already-migrated pages stay where they moved.
            for (std::uint64_t i = 0; i < region; i++) {
                if (mem_.frameUse(base + i) == mem::FrameUse::Pinned)
                    mem_.freeFrames(base + i, 0);
            }
            return std::nullopt;
        }

        // 3. The whole region is now ours (claimed holes plus vacated
        //    frames). Retag it as one block and hand it out; the buddy
        //    allocator needs no fixup because every frame is allocated
        //    from its perspective.
        mem_.retagFrames(base, order, use);
        ++compactionSuccesses_;
        return base;
    }
    return std::nullopt;
}

} // namespace mixtlb::os
