#include "scan.hh"

#include <algorithm>
#include <map>

namespace mixtlb::os
{

PageSizeDistribution
scanDistribution(const pt::PageTable &table)
{
    PageSizeDistribution dist;
    table.forEachLeaf([&](const pt::Translation &t) {
        switch (t.size) {
          case PageSize::Size4K: dist.bytes4k += PageBytes4K; break;
          case PageSize::Size2M: dist.bytes2m += PageBytes2M; break;
          case PageSize::Size1G: dist.bytes1g += PageBytes1G; break;
        }
    });
    return dist;
}

std::vector<std::uint64_t>
contiguityRuns(const pt::PageTable &table, PageSize size)
{
    std::vector<std::uint64_t> runs;
    bool have_prev = false;
    pt::Translation prev{};
    std::uint64_t run = 0;

    // forEachLeaf visits in ascending virtual order, so a run extends
    // while both VA and PA advance by exactly one superpage.
    table.forEachLeaf([&](const pt::Translation &t) {
        if (t.size != size)
            return;
        if (have_prev &&
            t.vbase == prev.vbase + pageBytes(size) &&
            t.pbase == prev.pbase + pageBytes(size)) {
            run++;
        } else {
            if (run > 0)
                runs.push_back(run);
            run = 1;
        }
        prev = t;
        have_prev = true;
    });
    if (run > 0)
        runs.push_back(run);
    return runs;
}

double
averageContiguity(const std::vector<std::uint64_t> &runs)
{
    std::uint64_t translations = 0;
    double weighted = 0.0;
    for (auto len : runs) {
        translations += len;
        weighted += static_cast<double>(len) * static_cast<double>(len);
    }
    return translations ? weighted / static_cast<double>(translations)
                        : 0.0;
}

std::vector<std::pair<std::uint64_t, double>>
contiguityCdf(const std::vector<std::uint64_t> &runs)
{
    std::map<std::uint64_t, std::uint64_t> by_len;
    std::uint64_t translations = 0;
    for (auto len : runs) {
        by_len[len] += len; // len translations live in this run
        translations += len;
    }
    std::vector<std::pair<std::uint64_t, double>> cdf;
    std::uint64_t cum = 0;
    for (auto [len, count] : by_len) {
        cum += count;
        cdf.emplace_back(len, static_cast<double>(cum)
                                  / static_cast<double>(translations));
    }
    return cdf;
}

} // namespace mixtlb::os
