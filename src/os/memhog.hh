/**
 * @file
 * The memhog fragmentation driver used throughout Sec. 7 of the paper,
 * at the OS level.
 *
 * Two kinds of pressure are modelled, mirroring a loaded Linux system:
 *
 *  - The bulk of memhog's memory is ordinary *movable* anonymous
 *    memory, scattered as single 4KB frames. It destroys free-list
 *    contiguity but compaction can migrate it.
 *  - A configurable slice is *unmovable* (standing in for kernel slab
 *    and page-table growth under load). Linux's anti-fragmentation
 *    groups unmovable allocations into whole 2MB pageblocks, so the
 *    slice claims whole blocks; those regions can never host a
 *    superpage again.
 */

#ifndef MIXTLB_OS_MEMHOG_HH
#define MIXTLB_OS_MEMHOG_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "os/memory_manager.hh"

namespace mixtlb::os
{

class Memhog : public MovableOwner
{
  public:
    /**
     * @param unmovable_share fraction of the hogged memory claimed as
     *        unmovable whole pageblocks.
     */
    Memhog(MemoryManager &mm, double unmovable_share = 0.2)
        : mm_(mm), unmovableShare_(unmovable_share)
    {}

    ~Memhog() override { release(); }

    Memhog(const Memhog &) = delete;
    Memhog &operator=(const Memhog &) = delete;

    /** Hog @p fraction of total memory; see the file comment. */
    void fragment(double fraction, std::uint64_t seed = 1);

    /** Release everything (including any outstanding burst). */
    void release();

    /**
     * Transiently pin up to @p frames additional single frames (a
     * pressure burst: memhog's working set spiking). Stacks on top of
     * the steady-state fragment() set; undone by burstRelease().
     * @return frames actually claimed (free memory may run short).
     */
    std::uint64_t burstAcquire(std::uint64_t frames);

    /** Release the frames claimed by burstAcquire(). */
    void burstRelease();

    std::uint64_t movableFrames() const { return movable_.size(); }
    std::uint64_t unmovableBlocks() const { return unmovable_.size(); }
    std::uint64_t burstFrames() const { return burst_.size(); }

    // MovableOwner: compaction moved one of our frames.
    void relocate(std::uint64_t tag, Pfn from, Pfn to) override;

  private:
    MemoryManager &mm_;
    double unmovableShare_;

    /** Movable hogged frames: tag -> pfn (tags are dense indices). */
    std::vector<Pfn> movable_;
    /** Unmovable 2MB pageblocks. */
    std::vector<Pfn> unmovable_;
    /** Transient pressure-burst frames (order 0, pinned). */
    std::vector<Pfn> burst_;
};

} // namespace mixtlb::os

#endif // MIXTLB_OS_MEMHOG_HH
