/**
 * @file
 * OS physical-memory management: movable-page tracking and
 * khugepaged-style compaction.
 *
 * Superpage allocation in the paper's experiments (Sec. 7.1) depends on
 * the OS's ability to defragment physical memory. We model the Linux
 * mechanism: movable pages can be migrated to carve out free 2MB/1GB
 * regions, compaction effort is bounded, and repeated failures defer
 * future attempts exponentially (Linux's deferred compaction).
 */

#ifndef MIXTLB_OS_MEMORY_MANAGER_HH
#define MIXTLB_OS_MEMORY_MANAGER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/phys_mem.hh"

namespace mixtlb::os
{

/**
 * Receives relocation callbacks when compaction migrates a movable
 * frame. Implemented by Process (remaps the page, fires TLB shootdown)
 * and Memhog (updates its pin list).
 */
class MovableOwner
{
  public:
    virtual ~MovableOwner() = default;

    /**
     * The frame backing @p tag moved from @p from to @p to. The owner
     * must update its mapping; the physical copy is implicit.
     */
    virtual void relocate(std::uint64_t tag, Pfn from, Pfn to) = 0;
};

struct CompactionParams
{
    /** Candidate regions examined per compaction attempt. */
    unsigned maxCandidates = 64;
    /** Exponential backoff after failed attempts (deferred compaction). */
    bool deferOnFailure = true;
    /** Never compact when free memory falls below this fraction. */
    double minFreeFraction = 0.10;
    /**
     * Free-memory fraction above which compaction is always attempted.
     * Between minFreeFraction and this knee the willingness to do the
     * (expensive) compaction work scales linearly — the analogue of
     * Linux skipping direct compaction for THP allocations as the
     * watermarks come under pressure. This produces the three page-
     * size-distribution regimes of Figure 9.
     */
    double fullEffortFreeFraction = 0.35;
    /** Seed for the (deterministic) willingness draw. */
    std::uint64_t seed = 12345;
};

class MemoryManager
{
  public:
    MemoryManager(mem::PhysMem &mem, stats::StatGroup *parent,
                  CompactionParams params = {});

    mem::PhysMem &phys() { return mem_; }

    /** Register an allocated frame as movable. */
    void registerMovable(Pfn pfn, MovableOwner *owner, std::uint64_t tag);

    /** Remove a frame from the movable registry (before freeing it). */
    void unregisterMovable(Pfn pfn);

    /**
     * A reclaimer frees up to the requested number of frames (by
     * demoting superpages, dropping cold pages, abandoning reservation
     * slack) and returns how many it actually freed. Processes register
     * one at construction so that any allocator's memory pressure can
     * shrink any process's footprint.
     */
    using Reclaimer = std::function<std::uint64_t(std::uint64_t)>;

    /** Register a reclaimer under @p key (used to remove it again). */
    void addReclaimer(const void *key, Reclaimer fn);

    /** Remove the reclaimer registered under @p key, if any. */
    void removeReclaimer(const void *key);

    /**
     * Ask the registered reclaimers (in registration order, so runs are
     * deterministic) to free @p want frames. Re-entrant calls are
     * no-ops: a reclaimer's own allocations never recurse into reclaim.
     *
     * @return frames actually freed.
     */
    std::uint64_t reclaim(std::uint64_t want);

    /**
     * Allocate a naturally aligned block of 2^order frames, migrating
     * movable pages if the buddy allocator cannot satisfy the request
     * directly.
     *
     * @param use tag applied to the frames on success
     * @param allow_compaction permit migration (THS "defrag" setting)
     * @param allow_reclaim on failure, let registered reclaimers free
     *        memory and retry once (off for allocations made *by* the
     *        lifecycle machinery, e.g. re-promotion, so rebuilding one
     *        superpage can never demote another)
     * @return the first frame, or nullopt.
     */
    std::optional<Pfn> allocContiguous(unsigned order, mem::FrameUse use,
                                       bool allow_compaction,
                                       bool allow_reclaim = true);

    /** Free memory as a fraction of total memory. */
    double freeFraction() const;

    /** Running count of successful compaction scans (for rescue stats). */
    std::uint64_t compactionSuccessCount() const
    {
        return static_cast<std::uint64_t>(compactionSuccesses_.value());
    }

    stats::StatGroup &statGroup() { return stats_; }

  private:
    struct Movable
    {
        MovableOwner *owner;
        std::uint64_t tag;
    };

    mem::PhysMem &mem_;
    CompactionParams params_;
    std::unordered_map<Pfn, Movable> movable_;

    /** Reclaimers in registration order (determinism). */
    std::vector<std::pair<const void *, Reclaimer>> reclaimers_;
    /** Guards against reclaim recursing into itself. */
    bool inReclaim_ = false;

    /** Rotating scan cursor so successive compactions sweep memory. */
    Pfn scanCursor_ = 0;
    /** Deterministic willingness draws for pressure-gated compaction. */
    Rng rng_;
    /** Streaky willingness state (bursty deferred compaction). */
    unsigned gateStreak_ = 0;
    bool gateWilling_ = true;
    /** Deferred-compaction state (mirrors Linux's defer counters). */
    unsigned deferShift_ = 0;
    unsigned deferCount_ = 0;

    stats::StatGroup stats_;
    stats::Scalar &directAllocs_;
    stats::Scalar &compactionAttempts_;
    stats::Scalar &compactionSuccesses_;
    stats::Scalar &compactionDeferred_;
    stats::Scalar &pagesMigrated_;
    stats::Scalar &reclaimRequests_;
    stats::Scalar &framesReclaimed_;

    /**
     * Let the reclaimers free pow2(order) frames, then retry the
     * direct allocation once. The last resort of allocContiguous.
     */
    std::optional<Pfn> reclaimAndRetry(unsigned order, mem::FrameUse use,
                                       bool allow_reclaim);

    /**
     * Try to empty one aligned region of 2^order frames by migrating
     * its movable pages, then claim it.
     */
    std::optional<Pfn> compact(unsigned order, mem::FrameUse use);

    /** Can every allocated frame in the region be migrated away? */
    bool regionMigratable(Pfn base, unsigned order,
                          std::uint64_t *allocated_out) const;
};

} // namespace mixtlb::os

#endif // MIXTLB_OS_MEMORY_MANAGER_HH
