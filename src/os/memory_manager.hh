/**
 * @file
 * OS physical-memory management: movable-page tracking and
 * khugepaged-style compaction.
 *
 * Superpage allocation in the paper's experiments (Sec. 7.1) depends on
 * the OS's ability to defragment physical memory. We model the Linux
 * mechanism: movable pages can be migrated to carve out free 2MB/1GB
 * regions, compaction effort is bounded, and repeated failures defer
 * future attempts exponentially (Linux's deferred compaction).
 */

#ifndef MIXTLB_OS_MEMORY_MANAGER_HH
#define MIXTLB_OS_MEMORY_MANAGER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/phys_mem.hh"

namespace mixtlb::os
{

/**
 * Receives relocation callbacks when compaction migrates a movable
 * frame. Implemented by Process (remaps the page, fires TLB shootdown)
 * and Memhog (updates its pin list).
 */
class MovableOwner
{
  public:
    virtual ~MovableOwner() = default;

    /**
     * The frame backing @p tag moved from @p from to @p to. The owner
     * must update its mapping; the physical copy is implicit.
     */
    virtual void relocate(std::uint64_t tag, Pfn from, Pfn to) = 0;
};

struct CompactionParams
{
    /** Candidate regions examined per compaction attempt. */
    unsigned maxCandidates = 64;
    /** Exponential backoff after failed attempts (deferred compaction). */
    bool deferOnFailure = true;
    /** Never compact when free memory falls below this fraction. */
    double minFreeFraction = 0.10;
    /**
     * Free-memory fraction above which compaction is always attempted.
     * Between minFreeFraction and this knee the willingness to do the
     * (expensive) compaction work scales linearly — the analogue of
     * Linux skipping direct compaction for THP allocations as the
     * watermarks come under pressure. This produces the three page-
     * size-distribution regimes of Figure 9.
     */
    double fullEffortFreeFraction = 0.35;
    /** Seed for the (deterministic) willingness draw. */
    std::uint64_t seed = 12345;
};

class MemoryManager
{
  public:
    MemoryManager(mem::PhysMem &mem, stats::StatGroup *parent,
                  CompactionParams params = {});

    mem::PhysMem &phys() { return mem_; }

    /** Register an allocated frame as movable. */
    void registerMovable(Pfn pfn, MovableOwner *owner, std::uint64_t tag);

    /** Remove a frame from the movable registry (before freeing it). */
    void unregisterMovable(Pfn pfn);

    /**
     * Allocate a naturally aligned block of 2^order frames, migrating
     * movable pages if the buddy allocator cannot satisfy the request
     * directly.
     *
     * @param use tag applied to the frames on success
     * @param allow_compaction permit migration (THS "defrag" setting)
     * @return the first frame, or nullopt.
     */
    std::optional<Pfn> allocContiguous(unsigned order, mem::FrameUse use,
                                       bool allow_compaction);

    /** Free memory as a fraction of total memory. */
    double freeFraction() const;

    stats::StatGroup &statGroup() { return stats_; }

  private:
    struct Movable
    {
        MovableOwner *owner;
        std::uint64_t tag;
    };

    mem::PhysMem &mem_;
    CompactionParams params_;
    std::unordered_map<Pfn, Movable> movable_;

    /** Rotating scan cursor so successive compactions sweep memory. */
    Pfn scanCursor_ = 0;
    /** Deterministic willingness draws for pressure-gated compaction. */
    Rng rng_;
    /** Streaky willingness state (bursty deferred compaction). */
    unsigned gateStreak_ = 0;
    bool gateWilling_ = true;
    /** Deferred-compaction state (mirrors Linux's defer counters). */
    unsigned deferShift_ = 0;
    unsigned deferCount_ = 0;

    stats::StatGroup stats_;
    stats::Scalar &directAllocs_;
    stats::Scalar &compactionAttempts_;
    stats::Scalar &compactionSuccesses_;
    stats::Scalar &compactionDeferred_;
    stats::Scalar &pagesMigrated_;

    /**
     * Try to empty one aligned region of 2^order frames by migrating
     * its movable pages, then claim it.
     */
    std::optional<Pfn> compact(unsigned order, mem::FrameUse use);

    /** Can every allocated frame in the region be migrated away? */
    bool regionMigratable(Pfn base, unsigned order,
                          std::uint64_t *allocated_out) const;
};

} // namespace mixtlb::os

#endif // MIXTLB_OS_MEMORY_MANAGER_HH
