/**
 * @file
 * A simulated process: virtual memory areas, lazy page-fault-driven
 * physical allocation, and the page-size policies the paper evaluates
 * (Sec. 7.1) — fixed 4KB, libhugetlbfs 2MB/1GB pools, and transparent
 * hugepage support (THS).
 */

#ifndef MIXTLB_OS_PROCESS_HH
#define MIXTLB_OS_PROCESS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/contracts.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "os/memory_manager.hh"
#include "pt/page_table.hh"

namespace mixtlb::os
{

/** The page-size policies of Sec. 7.1 (plus FreeBSD's reservations). */
enum class PagePolicy : std::uint8_t
{
    SmallOnly,   ///< force 4KB pages everywhere
    Huge2M,      ///< libhugetlbfs with a 2MB page pool
    Huge1G,      ///< libhugetlbfs with a 1GB page pool
    Thp,         ///< transparent hugepage support: 2MB when possible
    Reservation, ///< FreeBSD-style: reserve a 2MB frame on first touch,
                 ///< back 4KB pages from it, promote when fully built
};

const char *pagePolicyName(PagePolicy policy);

struct ProcessParams
{
    std::string name = "proc";
    PagePolicy policy = PagePolicy::Thp;
    /** THS: permit compaction when direct allocation fails. */
    bool thpDefrag = true;
    /** libhugetlbfs pool sizes, in superpages, reserved at "link time". */
    std::uint64_t pool2mPages = 0;
    std::uint64_t pool1gPages = 0;
    /** Bottom of the mmap region. */
    VAddr mmapBase = 1ULL << 32;
};

/** Outcome of touching a virtual address. */
enum class TouchResult : std::uint8_t
{
    Mapped,      ///< already backed; nothing happened
    Faulted,     ///< page fault serviced, now backed
    OutOfMemory, ///< no physical memory left to back the page
};

class Process : public MovableOwner
{
  public:
    Process(MemoryManager &mm, const ProcessParams &params,
            stats::StatGroup *parent);
    ~Process() override;

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    /**
     * Reserve @p bytes of virtual address space (rounded up to 1GB
     * alignment so any page size can back it).
     */
    VAddr mmap(std::uint64_t bytes);

    /** Demand-fault @p vaddr if it is not yet backed. */
    TouchResult touch(VAddr vaddr, bool is_store = false);

    /** True if @p vaddr lies in a reserved VMA. */
    bool inVma(VAddr vaddr) const;

    pt::PageTable &pageTable() { return pageTable_; }
    const pt::PageTable &pageTable() const { return pageTable_; }

    MemoryManager &memoryManager() { return mm_; }

    /**
     * Register a TLB-shootdown callback, fired whenever an existing
     * translation changes (page migration, unmap).
     */
    void addInvalidateListener(
        std::function<void(VAddr, PageSize)> listener);

    /** Bytes currently backed by each page size. */
    std::uint64_t residentBytes(PageSize size) const;
    std::uint64_t residentBytes() const;

    // MovableOwner: compaction moved one of our small pages.
    void relocate(std::uint64_t tag, Pfn from, Pfn to) override;

    /**
     * Free up to @p want frames under memory pressure: abandon unused
     * reservation slots, drop cold 4KB pages from demoted regions,
     * demote resident superpages to unlock more, and release retired
     * page-table frames. Registered with the MemoryManager as this
     * process's reclaimer. Every translation change fires a precise,
     * page-sized shootdown.
     *
     * @return frames actually freed.
     */
    std::uint64_t reclaimMemory(std::uint64_t want);

    /**
     * Demote up to @p max resident superpages back to the next smaller
     * page size (2MB -> 512 x 4KB, 1GB -> 512 x 2MB), lowest virtual
     * address first. The physical frames do not move; each demotion
     * fires one superpage-sized shootdown. Used by the demote-storm
     * fault-injection site to exercise the hard invalidation cases.
     *
     * @return superpages actually demoted.
     */
    std::uint64_t demoteStorm(std::uint64_t max);

    /**
     * Periodic maintenance: when memory pressure has faded, re-promote
     * demoted 2MB regions that are still mostly mapped — in place if
     * all 512 frames are contiguous, else by khugepaged-style collapse
     * into a fresh block (holes allowed, like max_ptes_none). Failed
     * rounds back off exponentially, mirroring deferred compaction.
     */
    void maintain();

    /** 2MB regions currently demoted to 4KB pages. */
    std::uint64_t demotedRegions() const { return demoted2m_.size(); }

    stats::StatGroup &statGroup() { return stats_; }

    /**
     * Structural audit of the VM state: the page table's own radix
     * invariants, every leaf inside a VMA and backed by frames this
     * process owns, the per-size resident-byte counters matching a
     * fresh leaf walk, and the THS/reservation side tables (smallIn2m_,
     * subIn1g_, reservations_) agreeing with what is actually mapped.
     */
    void audit(contracts::AuditReport &report) const;

  private:
    struct Vma
    {
        VAddr base;
        std::uint64_t bytes;
    };

    MemoryManager &mm_;
    ProcessParams params_;
    pt::PageTable pageTable_;

    std::vector<Vma> vmas_;
    VAddr nextMmap_;

    /** hugetlbfs pools reserved at construction. */
    std::deque<Pfn> pool2m_;
    std::deque<Pfn> pool1g_;

    /** Frames we own, so teardown can free them: pfn -> order. */
    std::unordered_map<Pfn, unsigned> ownedFrames_;

    /** 4KB mappings per 2MB-aligned region (blocks THS collapse). */
    std::unordered_map<VAddr, std::uint32_t> smallIn2m_;
    /** Sub-1GB mappings per 1GB-aligned region. */
    std::unordered_map<VAddr, std::uint32_t> subIn1g_;

    /** FreeBSD-style reservation state for one 2MB region. */
    struct Reservation
    {
        Pfn block;              ///< reserved 2MB frame block
        std::uint32_t touched;  ///< 4KB pages mapped so far
    };
    std::unordered_map<VAddr, Reservation> reservations_;

    std::vector<std::function<void(VAddr, PageSize)>> invalidateListeners_;

    /**
     * Resident page counts per size. Deliberately plain integers, not
     * stats: startMeasurement() resets the fault counters to scope
     * them to the measured window, but residency is a property of the
     * address space and must survive the reset (the structural audit
     * cross-checks it against the page-table tree).
     */
    std::uint64_t resident4k_ = 0;
    std::uint64_t resident2m_ = 0;
    std::uint64_t resident1g_ = 0;

    /**
     * Resident superpage leaves (region -> size), ordered so demotion
     * picks victims deterministically. Structural state like the
     * residency counters: survives resetStats().
     */
    std::map<VAddr, PageSize> residentSuper_;
    /** 2MB regions demoted to 4KB, awaiting re-promotion. */
    std::set<VAddr> demoted2m_;
    /** Exponential re-promotion backoff (mirrors deferred compaction). */
    unsigned repromoteDeferShift_ = 0;
    std::uint64_t repromoteDefer_ = 0;

    stats::StatGroup stats_;
    stats::Scalar &faults4k_;
    stats::Scalar &faults2m_;
    stats::Scalar &faults1g_;
    stats::Scalar &thpFallbacks_;
    stats::Scalar &migrations_;
    stats::Counter &demotions_;
    stats::Counter &reclaims_;
    stats::Counter &repromotions_;
    stats::Counter &oomRetries_;
    stats::Counter &demoteRescues_;
    stats::Counter &compactionRescues_;

    TouchResult faultSmall(VAddr vaddr);
    TouchResult faultThp(VAddr vaddr);
    TouchResult faultPool2m(VAddr vaddr);
    TouchResult faultPool1g(VAddr vaddr);
    TouchResult faultReservation(VAddr vaddr);

    /** Replace a fully built reservation's 4KB PTEs with one 2MB PTE. */
    void promoteReservation(VAddr region, const Reservation &res);

    /** Demote the lowest-addressed resident superpage (2MB first). */
    bool demoteOne();
    /** Split the 2MB leaf at @p region into 512 4KB leaves. */
    bool demote2m(VAddr region);
    /** Split the 1GB leaf at @p region into 512 2MB leaves. */
    bool demote1g(VAddr region);
    /** Unmap one 4KB page and free its frame (with shootdown). */
    void dropSmallPage(VAddr vbase, Pfn pfn);
    /** Drop pages from demoted regions: cold, then clean, then any. */
    std::uint64_t reclaimColdPages(std::uint64_t want);
    /**
     * A demoted region whose last 4KB page was reclaimed: retire its
     * (now empty) leaf table and forget it, so the region can fault a
     * fresh superpage later and reclaim stops rescanning it.
     */
    void releaseEmptyRegion(VAddr region);
    /** Free a reservation's untouched slots; keep the mapped ones. */
    std::uint64_t abandonReservation(VAddr region);
    /** Rebuild the 2MB leaf at @p region if enough slots are mapped. */
    bool tryRepromote2m(VAddr region);

    void fireInvalidate(VAddr vbase, PageSize size);
    void reservePools();
};

} // namespace mixtlb::os

#endif // MIXTLB_OS_PROCESS_HH
