#include "memhog.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "mem/buddy_allocator.hh"

namespace mixtlb::os
{

void
Memhog::fragment(double fraction, std::uint64_t seed)
{
    fatal_if(fraction < 0.0 || fraction > 1.0,
             "memhog fraction must be in [0,1]");
    release();
    if (fraction == 0.0)
        return;

    auto &mem = mm_.phys();
    Rng rng(seed);

    const auto want_total = static_cast<std::uint64_t>(
        fraction * static_cast<double>(mem.totalFrames()));

    // Unmovable slice first: whole 2MB pageblocks in *clusters* — the
    // anti-fragmentation subsystem groups unmovable allocations into
    // runs of pageblocks rather than sprinkling them, which is what
    // leaves the long movable stretches whose contiguity Sec. 7.1
    // measures.
    const auto want_unmovable = static_cast<std::uint64_t>(
        unmovableShare_ * static_cast<double>(want_total));
    const std::uint64_t num_blocks = mem.totalFrames() >> mem::Order2M;
    constexpr unsigned ClusterBlocks = 16;
    std::uint64_t unmovable_frames = 0;
    unsigned attempts = 0;
    while (unmovable_frames + (1ULL << mem::Order2M) <= want_unmovable &&
           attempts < 4 * num_blocks) {
        attempts++;
        Pfn start = rng.nextBounded(num_blocks) << mem::Order2M;
        for (unsigned i = 0;
             i < ClusterBlocks &&
             unmovable_frames + (1ULL << mem::Order2M) <= want_unmovable;
             i++) {
            Pfn block = start + (static_cast<Pfn>(i) << mem::Order2M);
            if (block + (1ULL << mem::Order2M) > mem.totalFrames())
                break;
            if (mem.allocFramesAt(block, mem::Order2M,
                                  mem::FrameUse::Pinned)) {
                unmovable_.push_back(block);
                unmovable_frames += 1ULL << mem::Order2M;
            }
        }
    }

    // Movable bulk: claim all free memory, then keep a random subset of
    // single frames pinned, freeing the rest. The survivors are
    // uniformly scattered, which is exactly the free-list shape a
    // random long-running allocation mix produces.
    std::vector<std::pair<Pfn, unsigned>> claimed;
    for (unsigned order = mem::BuddyAllocator::MaxOrder + 1; order-- > 0;) {
        while (auto pfn = mem.allocFrames(order, mem::FrameUse::AppSmall))
            claimed.emplace_back(*pfn, order);
    }
    std::vector<Pfn> frames;
    for (auto [base, order] : claimed) {
        for (std::uint64_t i = 0; i < pow2(order); i++)
            frames.push_back(base + i);
    }
    for (std::uint64_t i = frames.size(); i > 1; i--)
        std::swap(frames[i - 1], frames[rng.nextBounded(i)]);

    std::uint64_t want_movable =
        want_total > unmovable_frames ? want_total - unmovable_frames : 0;
    if (want_movable > frames.size())
        want_movable = frames.size();

    movable_.assign(frames.begin(), frames.begin() + want_movable);
    for (std::uint64_t i = want_movable; i < frames.size(); i++)
        mem.freeFrames(frames[i], 0);
    for (std::uint64_t tag = 0; tag < movable_.size(); tag++)
        mm_.registerMovable(movable_[tag], this, tag);
}

std::uint64_t
Memhog::burstAcquire(std::uint64_t frames)
{
    auto &mem = mm_.phys();
    std::uint64_t got = 0;
    for (; got < frames; got++) {
        auto pfn = mem.allocFrames(0, mem::FrameUse::Pinned);
        if (!pfn)
            break;
        burst_.push_back(*pfn);
    }
    return got;
}

void
Memhog::burstRelease()
{
    auto &mem = mm_.phys();
    for (Pfn pfn : burst_)
        mem.freeFrames(pfn, 0);
    burst_.clear();
}

void
Memhog::release()
{
    burstRelease();
    auto &mem = mm_.phys();
    for (std::uint64_t tag = 0; tag < movable_.size(); tag++) {
        mm_.unregisterMovable(movable_[tag]);
        mem.freeFrames(movable_[tag], 0);
    }
    movable_.clear();
    for (Pfn block : unmovable_)
        mem.freeFrames(block, mem::Order2M);
    unmovable_.clear();
}

void
Memhog::relocate(std::uint64_t tag, Pfn from, Pfn to)
{
    panic_if(tag >= movable_.size() || movable_[tag] != from,
             "memhog relocate tag/pfn mismatch");
    movable_[tag] = to;
}

} // namespace mixtlb::os
