/**
 * @file
 * Page-table scanners reproducing the Sec. 7.1 methodology: page-size
 * distributions (Figures 9-10) and superpage-contiguity statistics
 * (Figures 11-13).
 */

#ifndef MIXTLB_OS_SCAN_HH
#define MIXTLB_OS_SCAN_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "pt/page_table.hh"

namespace mixtlb::os
{

/** Bytes of resident memory backed by each page size. */
struct PageSizeDistribution
{
    std::uint64_t bytes4k = 0;
    std::uint64_t bytes2m = 0;
    std::uint64_t bytes1g = 0;

    std::uint64_t total() const { return bytes4k + bytes2m + bytes1g; }

    /** Fraction of the footprint backed by superpages (Figure 9's y). */
    double
    superpageFraction() const
    {
        auto t = total();
        return t ? static_cast<double>(bytes2m + bytes1g)
                       / static_cast<double>(t)
                 : 0.0;
    }
};

/** Tally resident bytes per page size by walking the page table. */
PageSizeDistribution scanDistribution(const pt::PageTable &table);

/**
 * Find runs of superpages of @p size that are contiguous in BOTH
 * virtual and physical address (the property MIX TLBs coalesce on).
 * Each element is one run's length in superpages; singleton superpages
 * produce runs of length 1.
 */
std::vector<std::uint64_t> contiguityRuns(const pt::PageTable &table,
                                          PageSize size);

/**
 * Average contiguity as defined in Sec. 7.1: each translation counts
 * the length of the run it belongs to, averaged over translations —
 * i.e. sum(len^2) / sum(len). The paper's example: runs {1,1,2} give
 * (1 + 1 + 2*2) / 4 = 1.5.
 */
double averageContiguity(const std::vector<std::uint64_t> &runs);

/**
 * Contiguity CDF over translations (Figures 12-13): point (x, y) means
 * a fraction y of superpage translations live in runs of length <= x.
 * Returned sorted by x.
 */
std::vector<std::pair<std::uint64_t, double>>
contiguityCdf(const std::vector<std::uint64_t> &runs);

} // namespace mixtlb::os

#endif // MIXTLB_OS_SCAN_HH
