#include "process.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/fault.hh"
#include "common/intmath.hh"
#include "common/logging.hh"

namespace mixtlb::os
{

const char *
pagePolicyName(PagePolicy policy)
{
    switch (policy) {
      case PagePolicy::SmallOnly: return "4K";
      case PagePolicy::Huge2M: return "2M";
      case PagePolicy::Huge1G: return "1G";
      case PagePolicy::Thp: return "THS";
      case PagePolicy::Reservation: return "reservation";
    }
    return "?";
}

Process::Process(MemoryManager &mm, const ProcessParams &params,
                 stats::StatGroup *parent)
    : mm_(mm), params_(params), pageTable_(mm.phys()),
      nextMmap_(alignUp(params.mmapBase, PageBytes1G)),
      stats_(params.name, parent),
      faults4k_(stats_.addScalar("faults_4k", "4KB page faults")),
      faults2m_(stats_.addScalar("faults_2m", "2MB page faults")),
      faults1g_(stats_.addScalar("faults_1g", "1GB page faults")),
      thpFallbacks_(stats_.addScalar("thp_fallbacks",
          "THS faults that fell back to 4KB pages")),
      migrations_(stats_.addScalar("migrations",
          "pages migrated away by compaction"))
{
    reservePools();
}

Process::~Process()
{
    // Free every owned frame; unregister movable small pages first.
    for (auto [pfn, order] : ownedFrames_) {
        if (order == 0 &&
            mm_.phys().frameUse(pfn) == mem::FrameUse::AppSmall) {
            mm_.unregisterMovable(pfn);
        }
        mm_.phys().freeFrames(pfn, order);
    }
    for (Pfn pfn : pool2m_)
        mm_.phys().freeFrames(pfn, mem::Order2M);
    for (Pfn pfn : pool1g_)
        mm_.phys().freeFrames(pfn, mem::Order1G);
}

void
Process::reservePools()
{
    // libhugetlbfs reserves its pool up front; superpages come from the
    // pool at fault time and the pool's blocks are not movable.
    for (std::uint64_t i = 0; i < params_.pool2mPages; i++) {
        auto pfn = mm_.allocContiguous(mem::Order2M,
                                       mem::FrameUse::AppHuge, true);
        if (!pfn)
            break;
        pool2m_.push_back(*pfn);
    }
    for (std::uint64_t i = 0; i < params_.pool1gPages; i++) {
        auto pfn = mm_.allocContiguous(mem::Order1G,
                                       mem::FrameUse::AppHuge, true);
        if (!pfn)
            break;
        pool1g_.push_back(*pfn);
    }
}

VAddr
Process::mmap(std::uint64_t bytes)
{
    fatal_if(bytes == 0, "mmap of zero bytes");
    VAddr base = nextMmap_;
    std::uint64_t span = alignUp(bytes, PageBytes1G);
    nextMmap_ += span;
    vmas_.push_back(Vma{base, bytes});
    return base;
}

bool
Process::inVma(VAddr vaddr) const
{
    for (const auto &vma : vmas_) {
        if (vaddr >= vma.base && vaddr < vma.base + vma.bytes)
            return true;
    }
    return false;
}

void
Process::addInvalidateListener(
    std::function<void(VAddr, PageSize)> listener)
{
    invalidateListeners_.push_back(std::move(listener));
}

void
Process::fireInvalidate(VAddr vbase, PageSize size)
{
    for (const auto &listener : invalidateListeners_)
        listener(vbase, size);
}

std::uint64_t
Process::residentBytes(PageSize size) const
{
    switch (size) {
      case PageSize::Size4K:
        return resident4k_ * PageBytes4K;
      case PageSize::Size2M:
        return resident2m_ * PageBytes2M;
      case PageSize::Size1G:
        return resident1g_ * PageBytes1G;
    }
    return 0;
}

std::uint64_t
Process::residentBytes() const
{
    return residentBytes(PageSize::Size4K)
           + residentBytes(PageSize::Size2M)
           + residentBytes(PageSize::Size1G);
}

TouchResult
Process::touch(VAddr vaddr, bool is_store)
{
    (void)is_store; // A/D bits are the walker's job (Sec. 4.4)
    if (pageTable_.translate(vaddr))
        return TouchResult::Mapped;
    panic_if(!inVma(vaddr), "touch outside any VMA: 0x%llx",
             (unsigned long long)vaddr);

    switch (params_.policy) {
      case PagePolicy::SmallOnly:
        return faultSmall(vaddr);
      case PagePolicy::Thp:
        return faultThp(vaddr);
      case PagePolicy::Huge2M:
        return faultPool2m(vaddr);
      case PagePolicy::Huge1G:
        return faultPool1g(vaddr);
      case PagePolicy::Reservation:
        return faultReservation(vaddr);
    }
    panic("unreachable");
}

TouchResult
Process::faultSmall(VAddr vaddr)
{
    // Keep headroom for the page-table frames map() may allocate, so a
    // data-frame success is never followed by a fatal PT-frame OOM.
    if (mm_.phys().buddy().freeFrames() < 8)
        return TouchResult::OutOfMemory;
    // Injected allocation failures here are transient (a loaded kernel
    // retries reclaim), so take a few attempts before reporting OOM; a
    // rate-1.0 injection still starves the fault deterministically.
    std::optional<Pfn> pfn;
    for (unsigned attempt = 0; attempt < 3 && !pfn; attempt++) {
        if (fault::fire(fault::Site::BuddyAlloc))
            continue;
        pfn = mm_.phys().allocFrames(0, mem::FrameUse::AppSmall);
    }
    if (!pfn)
        return TouchResult::OutOfMemory;
    VAddr vbase = pageBase(vaddr, PageSize::Size4K);
    mm_.registerMovable(*pfn, this, vbase);
    ownedFrames_.emplace(*pfn, 0);
    pageTable_.map(vbase, *pfn << PageShift4K, PageSize::Size4K);
    ++faults4k_;
    ++resident4k_;
    return TouchResult::Faulted;
}

TouchResult
Process::faultThp(VAddr vaddr)
{
    // THS maps whole 2MB regions on first touch when the region is
    // fully inside the VMA and no 4KB page in it is already mapped.
    VAddr region = pageBase(vaddr, PageSize::Size2M);
    bool eligible = inVma(region) && inVma(region + PageBytes2M - 1)
                    && smallIn2m_.find(region) == smallIn2m_.end();
    if (eligible) {
        auto pfn = mm_.allocContiguous(mem::Order2M,
                                       mem::FrameUse::AppHuge,
                                       params_.thpDefrag);
        if (pfn) {
            ownedFrames_.emplace(*pfn, mem::Order2M);
            pageTable_.map(region, *pfn << PageShift4K, PageSize::Size2M);
            ++faults2m_;
            ++resident2m_;
            return TouchResult::Faulted;
        }
        ++thpFallbacks_;
    }
    auto result = faultSmall(vaddr);
    if (result == TouchResult::Faulted)
        smallIn2m_[region]++;
    return result;
}

TouchResult
Process::faultPool2m(VAddr vaddr)
{
    VAddr region = pageBase(vaddr, PageSize::Size2M);
    bool eligible = inVma(region) && inVma(region + PageBytes2M - 1)
                    && smallIn2m_.find(region) == smallIn2m_.end();
    if (eligible && !pool2m_.empty()) {
        Pfn pfn = pool2m_.front();
        pool2m_.pop_front();
        ownedFrames_.emplace(pfn, mem::Order2M);
        pageTable_.map(region, pfn << PageShift4K, PageSize::Size2M);
        ++faults2m_;
        ++resident2m_;
        return TouchResult::Faulted;
    }
    auto result = faultSmall(vaddr);
    if (result == TouchResult::Faulted)
        smallIn2m_[region]++;
    return result;
}

TouchResult
Process::faultPool1g(VAddr vaddr)
{
    VAddr region = pageBase(vaddr, PageSize::Size1G);
    bool eligible = inVma(region) && inVma(region + PageBytes1G - 1)
                    && subIn1g_.find(region) == subIn1g_.end();
    if (eligible && !pool1g_.empty()) {
        Pfn pfn = pool1g_.front();
        pool1g_.pop_front();
        ownedFrames_.emplace(pfn, mem::Order1G);
        pageTable_.map(region, pfn << PageShift4K, PageSize::Size1G);
        ++faults1g_;
        ++resident1g_;
        return TouchResult::Faulted;
    }
    auto result = faultSmall(vaddr);
    if (result == TouchResult::Faulted) {
        subIn1g_[region]++;
        smallIn2m_[pageBase(vaddr, PageSize::Size2M)]++;
    }
    return result;
}

TouchResult
Process::faultReservation(VAddr vaddr)
{
    // FreeBSD-style reservations (Navarro et al., OSDI 2002): the
    // first touch of a 2MB region reserves a whole 2MB frame block,
    // 4KB pages are backed from their natural slot within it, and the
    // region is promoted to a superpage once every slot is mapped.
    VAddr region = pageBase(vaddr, PageSize::Size2M);
    VAddr vbase = pageBase(vaddr, PageSize::Size4K);
    auto it = reservations_.find(region);
    if (it == reservations_.end()) {
        bool eligible = inVma(region) && inVma(region + PageBytes2M - 1)
                        && smallIn2m_.find(region) == smallIn2m_.end();
        if (eligible) {
            auto block = mm_.allocContiguous(
                mem::Order2M, mem::FrameUse::AppHuge, params_.thpDefrag);
            if (block) {
                ownedFrames_.emplace(*block, mem::Order2M);
                it = reservations_
                         .emplace(region, Reservation{*block, 0})
                         .first;
            }
        }
        if (it == reservations_.end()) {
            auto result = faultSmall(vaddr);
            if (result == TouchResult::Faulted)
                smallIn2m_[region]++;
            return result;
        }
    }

    auto slot = (vbase - region) >> PageShift4K;
    pageTable_.map(vbase,
                   (it->second.block + slot) << PageShift4K,
                   PageSize::Size4K);
    ++faults4k_;
    ++resident4k_;
    it->second.touched++;
    if (it->second.touched == Frames2M) {
        promoteReservation(region, it->second);
        reservations_.erase(it);
    }
    return TouchResult::Faulted;
}

void
Process::promoteReservation(VAddr region, const Reservation &res)
{
    // Swap 512 4KB PTEs for one 2MB PTE. The 4KB translations change
    // (size-wise), so each must be shot down from the TLBs.
    for (std::uint64_t i = 0; i < Frames2M; i++) {
        VAddr vbase = region + i * PageBytes4K;
        bool removed = pageTable_.unmap(vbase);
        panic_if(!removed, "promotion found an unmapped slot");
        fireInvalidate(vbase, PageSize::Size4K);
    }
    // Retire the (now empty) PT so the PD slot can hold the leaf.
    pageTable_.clearLevelEntry(region, pt::leafLevel(PageSize::Size2M));
    pageTable_.map(region, res.block << PageShift4K, PageSize::Size2M);
    faults4k_ += -static_cast<double>(Frames2M);
    ++faults2m_;
    resident4k_ -= Frames2M;
    ++resident2m_;
}

void
Process::audit(contracts::AuditReport &report) const
{
    pageTable_.audit(report);

    // One leaf walk accumulates everything the fault counters and the
    // THS/reservation side tables claim about the mapped state.
    std::uint64_t bytes4k = 0;
    std::uint64_t bytes2m = 0;
    std::uint64_t bytes1g = 0;
    std::unordered_map<VAddr, std::uint32_t> small_in_2m;
    std::unordered_map<VAddr, std::uint32_t> sub_in_1g;

    std::vector<std::pair<Pfn, std::uint64_t>> owned; // [base, end)
    owned.reserve(ownedFrames_.size());
    for (auto [pfn, order] : ownedFrames_)
        owned.emplace_back(pfn, pfn + pow2(order));
    std::sort(owned.begin(), owned.end());

    std::uint64_t stray_leaves = 0;
    pageTable_.forEachLeaf([&](const pt::Translation &xlate) {
        const std::uint64_t bytes = pageBytes(xlate.size);
        switch (xlate.size) {
          case PageSize::Size4K:
            bytes4k += bytes;
            small_in_2m[pageBase(xlate.vbase, PageSize::Size2M)]++;
            break;
          case PageSize::Size2M: bytes2m += bytes; break;
          case PageSize::Size1G: bytes1g += bytes; break;
        }
        if (xlate.size != PageSize::Size1G)
            sub_in_1g[pageBase(xlate.vbase, PageSize::Size1G)]++;

        const bool in_vma = inVma(xlate.vbase)
                            && inVma(xlate.vbase + bytes - 1);
        const Pfn first = xlate.pbase >> PageShift4K;
        const std::uint64_t frames = bytes >> PageShift4K;
        auto it = std::upper_bound(
            owned.begin(), owned.end(), first,
            [](Pfn v, const auto &iv) { return v < iv.first; });
        const bool backed = it != owned.begin()
                            && ((--it, first >= it->first
                                        && first + frames <= it->second));
        if ((!in_vma || !backed) && stray_leaves++ < 8) {
            MIX_AUDIT_CHECK(report, false,
                            "%s leaf at 0x%llx -> 0x%llx is %s%s%s",
                            pageSizeName(xlate.size),
                            (unsigned long long)xlate.vbase,
                            (unsigned long long)xlate.pbase,
                            in_vma ? "" : "outside every VMA",
                            !in_vma && !backed ? " and " : "",
                            backed ? ""
                                   : "backed by frames this process "
                                     "does not own");
        }
    });
    MIX_AUDIT_CHECK(report, stray_leaves <= 8,
                    "%llu further stray leaves",
                    (unsigned long long)(stray_leaves - 8));

    MIX_AUDIT_CHECK(report, bytes4k == residentBytes(PageSize::Size4K),
                    "tree holds %llu 4KB-mapped bytes but the "
                    "residency counters say %llu",
                    (unsigned long long)bytes4k,
                    (unsigned long long)residentBytes(PageSize::Size4K));
    MIX_AUDIT_CHECK(report, bytes2m == residentBytes(PageSize::Size2M),
                    "tree holds %llu 2MB-mapped bytes but the "
                    "residency counters say %llu",
                    (unsigned long long)bytes2m,
                    (unsigned long long)residentBytes(PageSize::Size2M));
    MIX_AUDIT_CHECK(report, bytes1g == residentBytes(PageSize::Size1G),
                    "tree holds %llu 1GB-mapped bytes but the "
                    "residency counters say %llu",
                    (unsigned long long)bytes1g,
                    (unsigned long long)residentBytes(PageSize::Size1G));

    // The side tables are unordered; walk them in sorted key order so
    // the audit report is byte-identical regardless of insertion order.
    std::vector<VAddr> regions2m;
    regions2m.reserve(smallIn2m_.size());
    for (const auto &kv : smallIn2m_)
        regions2m.push_back(kv.first);
    std::sort(regions2m.begin(), regions2m.end());

    // A smallIn2m_ entry blocks superpage use for its region, and its
    // count is exactly the fallback 4KB pages mapped there (never the
    // reservation-backed ones, which keep their own counter).
    for (VAddr region : regions2m) {
        const std::uint32_t count = smallIn2m_.at(region);
        auto found = small_in_2m.find(region);
        const std::uint32_t actual =
            found == small_in_2m.end() ? 0 : found->second;
        MIX_AUDIT_CHECK(report, actual == count,
                        "2MB region 0x%llx claims %u fallback 4KB "
                        "pages but the tree holds %u",
                        (unsigned long long)region, count, actual);
        MIX_AUDIT_CHECK(report,
                        reservations_.find(region)
                            == reservations_.end(),
                        "2MB region 0x%llx has both fallback 4KB "
                        "pages and an active reservation",
                        (unsigned long long)region);
    }
    std::vector<VAddr> regions1g;
    regions1g.reserve(subIn1g_.size());
    for (const auto &kv : subIn1g_)
        regions1g.push_back(kv.first);
    std::sort(regions1g.begin(), regions1g.end());
    for (VAddr region : regions1g) {
        const std::uint32_t count = subIn1g_.at(region);
        auto found = sub_in_1g.find(region);
        const std::uint32_t actual =
            found == sub_in_1g.end() ? 0 : found->second;
        MIX_AUDIT_CHECK(report, actual == count,
                        "1GB region 0x%llx claims %u sub-1GB pages "
                        "but the tree holds %u",
                        (unsigned long long)region, count, actual);
    }
    std::vector<VAddr> reserved;
    reserved.reserve(reservations_.size());
    for (const auto &kv : reservations_)
        reserved.push_back(kv.first);
    std::sort(reserved.begin(), reserved.end());
    for (VAddr region : reserved) {
        const auto &res = reservations_.at(region);
        MIX_AUDIT_CHECK(report, res.touched < Frames2M,
                        "reservation at 0x%llx is fully built (%u "
                        "slots) but was never promoted",
                        (unsigned long long)region, res.touched);
        auto found = small_in_2m.find(region);
        const std::uint32_t actual =
            found == small_in_2m.end() ? 0 : found->second;
        MIX_AUDIT_CHECK(report, actual == res.touched,
                        "reservation at 0x%llx touched %u slots but "
                        "the tree holds %u 4KB pages there",
                        (unsigned long long)region, res.touched,
                        actual);
        auto own = ownedFrames_.find(res.block);
        MIX_AUDIT_CHECK(report,
                        own != ownedFrames_.end()
                            && own->second == mem::Order2M,
                        "reserved block 0x%llx is not owned as an "
                        "order-%u allocation",
                        (unsigned long long)res.block, mem::Order2M);
    }
}

void
Process::relocate(std::uint64_t tag, Pfn from, Pfn to)
{
    VAddr vbase = tag;
    pageTable_.remap(vbase, to << PageShift4K);
    auto erased = ownedFrames_.erase(from);
    panic_if(erased == 0, "relocate of frame we do not own");
    ownedFrames_.emplace(to, 0);
    ++migrations_;
    fireInvalidate(vbase, PageSize::Size4K);
}

} // namespace mixtlb::os
