#include "process.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/fault.hh"
#include "common/intmath.hh"
#include "common/logging.hh"

namespace mixtlb::os
{

const char *
pagePolicyName(PagePolicy policy)
{
    switch (policy) {
      case PagePolicy::SmallOnly: return "4K";
      case PagePolicy::Huge2M: return "2M";
      case PagePolicy::Huge1G: return "1G";
      case PagePolicy::Thp: return "THS";
      case PagePolicy::Reservation: return "reservation";
    }
    return "?";
}

Process::Process(MemoryManager &mm, const ProcessParams &params,
                 stats::StatGroup *parent)
    : mm_(mm), params_(params), pageTable_(mm.phys()),
      nextMmap_(alignUp(params.mmapBase, PageBytes1G)),
      stats_(params.name, parent),
      faults4k_(stats_.addScalar("faults_4k", "4KB page faults")),
      faults2m_(stats_.addScalar("faults_2m", "2MB page faults")),
      faults1g_(stats_.addScalar("faults_1g", "1GB page faults")),
      thpFallbacks_(stats_.addScalar("thp_fallbacks",
          "THS faults that fell back to 4KB pages")),
      migrations_(stats_.addScalar("migrations",
          "pages migrated away by compaction")),
      demotions_(stats_.addCounter("demotions",
          "superpages demoted to the next smaller page size")),
      reclaims_(stats_.addCounter("reclaims",
          "frames freed by reclaim under memory pressure")),
      repromotions_(stats_.addCounter("repromotions",
          "demoted regions rebuilt into superpages")),
      oomRetries_(stats_.addCounter("oom_retries",
          "4KB fault allocation retries after a failed attempt")),
      demoteRescues_(stats_.addCounter("demote_rescues",
          "4KB faults saved from OOM by demotion/reclaim")),
      compactionRescues_(stats_.addCounter("compaction_rescues",
          "superpage faults satisfied only after compaction"))
{
    reservePools();
    mm_.addReclaimer(this, [this](std::uint64_t want) {
        return reclaimMemory(want);
    });
}

Process::~Process()
{
    mm_.removeReclaimer(this);
    // Free every owned frame; unregister movable small pages first.
    for (auto [pfn, order] : ownedFrames_) {
        if (order == 0 &&
            mm_.phys().frameUse(pfn) == mem::FrameUse::AppSmall) {
            mm_.unregisterMovable(pfn);
        }
        mm_.phys().freeFrames(pfn, order);
    }
    for (Pfn pfn : pool2m_)
        mm_.phys().freeFrames(pfn, mem::Order2M);
    for (Pfn pfn : pool1g_)
        mm_.phys().freeFrames(pfn, mem::Order1G);
}

void
Process::reservePools()
{
    // libhugetlbfs reserves its pool up front; superpages come from the
    // pool at fault time and the pool's blocks are not movable.
    for (std::uint64_t i = 0; i < params_.pool2mPages; i++) {
        auto pfn = mm_.allocContiguous(mem::Order2M,
                                       mem::FrameUse::AppHuge, true);
        if (!pfn)
            break;
        pool2m_.push_back(*pfn);
    }
    for (std::uint64_t i = 0; i < params_.pool1gPages; i++) {
        auto pfn = mm_.allocContiguous(mem::Order1G,
                                       mem::FrameUse::AppHuge, true);
        if (!pfn)
            break;
        pool1g_.push_back(*pfn);
    }
}

VAddr
Process::mmap(std::uint64_t bytes)
{
    fatal_if(bytes == 0, "mmap of zero bytes");
    VAddr base = nextMmap_;
    std::uint64_t span = alignUp(bytes, PageBytes1G);
    nextMmap_ += span;
    vmas_.push_back(Vma{base, bytes});
    return base;
}

bool
Process::inVma(VAddr vaddr) const
{
    for (const auto &vma : vmas_) {
        if (vaddr >= vma.base && vaddr < vma.base + vma.bytes)
            return true;
    }
    return false;
}

void
Process::addInvalidateListener(
    std::function<void(VAddr, PageSize)> listener)
{
    invalidateListeners_.push_back(std::move(listener));
}

void
Process::fireInvalidate(VAddr vbase, PageSize size)
{
    for (const auto &listener : invalidateListeners_)
        listener(vbase, size);
}

std::uint64_t
Process::residentBytes(PageSize size) const
{
    switch (size) {
      case PageSize::Size4K:
        return resident4k_ * PageBytes4K;
      case PageSize::Size2M:
        return resident2m_ * PageBytes2M;
      case PageSize::Size1G:
        return resident1g_ * PageBytes1G;
    }
    return 0;
}

std::uint64_t
Process::residentBytes() const
{
    return residentBytes(PageSize::Size4K)
           + residentBytes(PageSize::Size2M)
           + residentBytes(PageSize::Size1G);
}

TouchResult
Process::touch(VAddr vaddr, bool is_store)
{
    (void)is_store; // A/D bits are the walker's job (Sec. 4.4)
    if (pageTable_.translate(vaddr))
        return TouchResult::Mapped;
    panic_if(!inVma(vaddr), "touch outside any VMA: 0x%llx",
             (unsigned long long)vaddr);

    switch (params_.policy) {
      case PagePolicy::SmallOnly:
        return faultSmall(vaddr);
      case PagePolicy::Thp:
        return faultThp(vaddr);
      case PagePolicy::Huge2M:
        return faultPool2m(vaddr);
      case PagePolicy::Huge1G:
        return faultPool1g(vaddr);
      case PagePolicy::Reservation:
        return faultReservation(vaddr);
    }
    panic("unreachable");
}

/** Free frames map() may need for page tables after a data-frame grab. */
constexpr std::uint64_t HeadroomFrames = 8;

TouchResult
Process::faultSmall(VAddr vaddr)
{
    std::optional<Pfn> pfn;
    bool rescued = false;
    for (unsigned round = 0; round < 2 && !pfn; round++) {
        if (round == 1) {
            // Out of memory (or out of headroom): demote superpages
            // and reclaim cold pages — possibly from other processes
            // sharing this memory manager — before conceding OOM.
            if (mm_.reclaim(4 * HeadroomFrames) == 0)
                break;
            rescued = true;
        }
        // Keep headroom for the page-table frames map() may allocate,
        // so a data-frame success is never followed by a fatal
        // PT-frame OOM.
        if (mm_.phys().buddy().freeFrames() < HeadroomFrames)
            continue;
        // Injected allocation failures here are transient (a loaded
        // kernel retries reclaim), so take a few attempts before
        // escalating; a rate-1.0 injection still starves the fault
        // deterministically — reclaim frees frames but every retry
        // must still win its fault draw.
        for (unsigned attempt = 0; attempt < 3 && !pfn; attempt++) {
            if (attempt > 0)
                ++oomRetries_;
            if (fault::fire(fault::Site::BuddyAlloc))
                continue;
            pfn = mm_.phys().allocFrames(0, mem::FrameUse::AppSmall);
        }
    }
    if (!pfn)
        return TouchResult::OutOfMemory;
    if (rescued)
        ++demoteRescues_;
    VAddr vbase = pageBase(vaddr, PageSize::Size4K);
    mm_.registerMovable(*pfn, this, vbase);
    ownedFrames_.emplace(*pfn, 0);
    pageTable_.map(vbase, *pfn << PageShift4K, PageSize::Size4K);
    ++faults4k_;
    ++resident4k_;
    return TouchResult::Faulted;
}

TouchResult
Process::faultThp(VAddr vaddr)
{
    // THS maps whole 2MB regions on first touch when the region is
    // fully inside the VMA and no 4KB page in it is already mapped.
    VAddr region = pageBase(vaddr, PageSize::Size2M);
    bool eligible = inVma(region) && inVma(region + PageBytes2M - 1)
                    && smallIn2m_.find(region) == smallIn2m_.end();
    if (eligible) {
        const std::uint64_t compactions = mm_.compactionSuccessCount();
        auto pfn = mm_.allocContiguous(mem::Order2M,
                                       mem::FrameUse::AppHuge,
                                       params_.thpDefrag);
        if (pfn) {
            if (mm_.compactionSuccessCount() > compactions)
                ++compactionRescues_;
            ownedFrames_.emplace(*pfn, mem::Order2M);
            pageTable_.map(region, *pfn << PageShift4K, PageSize::Size2M);
            ++faults2m_;
            ++resident2m_;
            residentSuper_.emplace(region, PageSize::Size2M);
            return TouchResult::Faulted;
        }
        ++thpFallbacks_;
    }
    auto result = faultSmall(vaddr);
    if (result == TouchResult::Faulted)
        smallIn2m_[region]++;
    return result;
}

TouchResult
Process::faultPool2m(VAddr vaddr)
{
    VAddr region = pageBase(vaddr, PageSize::Size2M);
    bool eligible = inVma(region) && inVma(region + PageBytes2M - 1)
                    && smallIn2m_.find(region) == smallIn2m_.end();
    if (eligible && !pool2m_.empty()) {
        Pfn pfn = pool2m_.front();
        pool2m_.pop_front();
        ownedFrames_.emplace(pfn, mem::Order2M);
        pageTable_.map(region, pfn << PageShift4K, PageSize::Size2M);
        ++faults2m_;
        ++resident2m_;
        residentSuper_.emplace(region, PageSize::Size2M);
        return TouchResult::Faulted;
    }
    auto result = faultSmall(vaddr);
    if (result == TouchResult::Faulted)
        smallIn2m_[region]++;
    return result;
}

TouchResult
Process::faultPool1g(VAddr vaddr)
{
    VAddr region = pageBase(vaddr, PageSize::Size1G);
    bool eligible = inVma(region) && inVma(region + PageBytes1G - 1)
                    && subIn1g_.find(region) == subIn1g_.end();
    if (eligible && !pool1g_.empty()) {
        Pfn pfn = pool1g_.front();
        pool1g_.pop_front();
        ownedFrames_.emplace(pfn, mem::Order1G);
        pageTable_.map(region, pfn << PageShift4K, PageSize::Size1G);
        ++faults1g_;
        ++resident1g_;
        residentSuper_.emplace(region, PageSize::Size1G);
        return TouchResult::Faulted;
    }
    auto result = faultSmall(vaddr);
    if (result == TouchResult::Faulted) {
        subIn1g_[region]++;
        smallIn2m_[pageBase(vaddr, PageSize::Size2M)]++;
    }
    return result;
}

TouchResult
Process::faultReservation(VAddr vaddr)
{
    // FreeBSD-style reservations (Navarro et al., OSDI 2002): the
    // first touch of a 2MB region reserves a whole 2MB frame block,
    // 4KB pages are backed from their natural slot within it, and the
    // region is promoted to a superpage once every slot is mapped.
    VAddr region = pageBase(vaddr, PageSize::Size2M);
    VAddr vbase = pageBase(vaddr, PageSize::Size4K);
    auto it = reservations_.find(region);
    if (it == reservations_.end()) {
        bool eligible = inVma(region) && inVma(region + PageBytes2M - 1)
                        && smallIn2m_.find(region) == smallIn2m_.end();
        if (eligible) {
            const std::uint64_t compactions = mm_.compactionSuccessCount();
            auto block = mm_.allocContiguous(
                mem::Order2M, mem::FrameUse::AppHuge, params_.thpDefrag);
            if (block) {
                if (mm_.compactionSuccessCount() > compactions)
                    ++compactionRescues_;
                ownedFrames_.emplace(*block, mem::Order2M);
                it = reservations_
                         .emplace(region, Reservation{*block, 0})
                         .first;
            }
        }
        if (it == reservations_.end()) {
            auto result = faultSmall(vaddr);
            if (result == TouchResult::Faulted)
                smallIn2m_[region]++;
            return result;
        }
    }

    auto slot = (vbase - region) >> PageShift4K;
    pageTable_.map(vbase,
                   (it->second.block + slot) << PageShift4K,
                   PageSize::Size4K);
    ++faults4k_;
    ++resident4k_;
    it->second.touched++;
    if (it->second.touched == Frames2M) {
        promoteReservation(region, it->second);
        reservations_.erase(it);
    }
    return TouchResult::Faulted;
}

void
Process::promoteReservation(VAddr region, const Reservation &res)
{
    // Swap 512 4KB PTEs for one 2MB PTE. The 4KB translations change
    // (size-wise), so each must be shot down from the TLBs.
    for (std::uint64_t i = 0; i < Frames2M; i++) {
        VAddr vbase = region + i * PageBytes4K;
        bool removed = pageTable_.unmap(vbase);
        panic_if(!removed, "promotion found an unmapped slot");
        fireInvalidate(vbase, PageSize::Size4K);
    }
    // Retire the (now empty) PT so the PD slot can hold the leaf.
    pageTable_.clearLevelEntry(region, pt::leafLevel(PageSize::Size2M));
    pageTable_.map(region, res.block << PageShift4K, PageSize::Size2M);
    faults4k_ += -static_cast<double>(Frames2M);
    ++faults2m_;
    resident4k_ -= Frames2M;
    ++resident2m_;
    residentSuper_.emplace(region, PageSize::Size2M);
}

bool
Process::demote2m(VAddr region)
{
    auto xlate = pageTable_.translate(region);
    if (!xlate || xlate->size != PageSize::Size2M)
        return false;
    if (!pageTable_.splitLeaf(region))
        return false; // no frame left for the child table
    const Pfn base = static_cast<Pfn>(xlate->pbase >> PageShift4K);
    // The one order-9 block becomes 512 individually owned, movable
    // 4KB frames: cold reclaim and compaction now work per frame.
    auto own = ownedFrames_.find(base);
    panic_if(own == ownedFrames_.end() || own->second != mem::Order2M,
             "demoting a 2MB leaf whose block we do not own");
    ownedFrames_.erase(own);
    mm_.phys().retagFrames(base, mem::Order2M, mem::FrameUse::AppSmall);
    for (std::uint64_t i = 0; i < Frames2M; i++) {
        ownedFrames_.emplace(base + i, 0);
        mm_.registerMovable(base + i, this, region + i * PageBytes4K);
    }
    // One superpage-sized shootdown drops the stale 2MB entry from
    // every TLB level (mirror copies, coalesced runs straddling the
    // window) and the PWC paths through the region.
    fireInvalidate(region, PageSize::Size2M);
    // The region now holds 4KB mappings; the side-table entry also
    // keeps superpage re-faults from colliding with the new mid-level
    // table, so it must outlive the demotion even at count zero.
    smallIn2m_[region] = Frames2M;
    auto sub = subIn1g_.find(pageBase(region, PageSize::Size1G));
    if (sub != subIn1g_.end())
        sub->second += Frames2M - 1; // one 2MB leaf became 512 4KB ones
    resident2m_--;
    resident4k_ += Frames2M;
    residentSuper_.erase(region);
    demoted2m_.insert(region);
    ++demotions_;
    return true;
}

bool
Process::demote1g(VAddr region)
{
    auto xlate = pageTable_.translate(region);
    if (!xlate || xlate->size != PageSize::Size1G)
        return false;
    if (!pageTable_.splitLeaf(region))
        return false;
    const Pfn base = static_cast<Pfn>(xlate->pbase >> PageShift4K);
    auto own = ownedFrames_.find(base);
    panic_if(own == ownedFrames_.end() || own->second != mem::Order1G,
             "demoting a 1GB leaf whose block we do not own");
    ownedFrames_.erase(own);
    for (std::uint64_t i = 0; i < Frames2M; i++)
        ownedFrames_.emplace(base + i * Frames2M, mem::Order2M);
    fireInvalidate(region, PageSize::Size1G);
    // 512 2MB leaves now live under the region (their frames stay
    // AppHuge); the side-table entry blocks a 1GB re-fault over the
    // new mid-level table.
    subIn1g_[region] = Frames2M;
    resident1g_--;
    resident2m_ += Frames2M;
    residentSuper_.erase(region);
    for (std::uint64_t i = 0; i < Frames2M; i++) {
        residentSuper_.emplace(region + i * PageBytes2M,
                               PageSize::Size2M);
    }
    ++demotions_;
    return true;
}

bool
Process::demoteOne()
{
    // Prefer a 2MB leaf: its 4KB children are immediately reclaimable,
    // while a 1GB demotion only yields more 2MB leaves.
    for (const auto &[region, size] : residentSuper_) {
        if (size == PageSize::Size2M)
            return demote2m(region);
    }
    if (!residentSuper_.empty())
        return demote1g(residentSuper_.begin()->first);
    return false;
}

std::uint64_t
Process::demoteStorm(std::uint64_t max)
{
    std::uint64_t done = 0;
    while (done < max && demoteOne())
        done++;
    if (done > 0) {
        // Freshly demoted regions should not bounce straight back.
        if (repromoteDeferShift_ < 6)
            repromoteDeferShift_++;
        repromoteDefer_ = 1ULL << (repromoteDeferShift_ & 63);
    }
    return done;
}

void
Process::dropSmallPage(VAddr vbase, Pfn pfn)
{
    bool removed = pageTable_.unmap(vbase);
    panic_if(!removed, "reclaim of an unmapped page");
    fireInvalidate(vbase, PageSize::Size4K);
    mm_.unregisterMovable(pfn);
    auto erased = ownedFrames_.erase(pfn);
    panic_if(erased == 0, "reclaim of a frame we do not own");
    mm_.phys().freeFrames(pfn, 0);
    auto small = smallIn2m_.find(pageBase(vbase, PageSize::Size2M));
    panic_if(small == smallIn2m_.end() || small->second == 0,
             "reclaimed page missing from the 4KB side table");
    small->second--; // entry stays, even at zero: see demote2m()
    auto sub = subIn1g_.find(pageBase(vbase, PageSize::Size1G));
    if (sub != subIn1g_.end())
        sub->second--;
    resident4k_--;
    ++reclaims_;
}

void
Process::releaseEmptyRegion(VAddr region)
{
    auto small = smallIn2m_.find(region);
    panic_if(small == smallIn2m_.end() || small->second != 0,
             "releasing a region that still has mapped pages");
    pageTable_.clearLevelEntry(region, pt::leafLevel(PageSize::Size2M));
    // The PWC may hold the just-retired leaf table; shoot it down
    // before reclaimRetiredFrames() can free the frame.
    fireInvalidate(region, PageSize::Size2M);
    smallIn2m_.erase(small);
    demoted2m_.erase(region);
}

std::uint64_t
Process::reclaimColdPages(std::uint64_t want)
{
    std::uint64_t freed = 0;
    // Iterate over a snapshot: fully drained regions are released (and
    // erased from demoted2m_) as we go.
    std::vector<VAddr> regions(demoted2m_.begin(), demoted2m_.end());
    // Three escalating passes, like reclaim advancing from the
    // inactive list to the active list: not-accessed pages first, then
    // clean ones, then anything. No swap is modeled, so dropping a hot
    // page is degradation (it will refault), never data loss.
    for (int pass = 0; pass < 3 && freed < want; pass++) {
        for (VAddr region : regions) {
            if (freed >= want)
                break;
            if (demoted2m_.find(region) == demoted2m_.end())
                continue; // released in an earlier pass
            for (std::uint64_t slot = 0;
                 slot < Frames2M && freed < want; slot++) {
                const VAddr vbase = region + slot * PageBytes4K;
                auto x = pageTable_.translate(vbase);
                if (!x)
                    continue;
                if (pass == 0 && x->accessed)
                    continue;
                if (pass == 1 && x->dirty)
                    continue;
                dropSmallPage(vbase,
                              static_cast<Pfn>(x->pbase >> PageShift4K));
                freed++;
            }
            auto small = smallIn2m_.find(region);
            if (small != smallIn2m_.end() && small->second == 0)
                releaseEmptyRegion(region);
        }
    }
    return freed;
}

std::uint64_t
Process::abandonReservation(VAddr region)
{
    auto it = reservations_.find(region);
    panic_if(it == reservations_.end(),
             "abandoning a region with no reservation");
    const Pfn block = it->second.block;
    const std::uint32_t touched = it->second.touched;
    auto erased = ownedFrames_.erase(block);
    panic_if(erased == 0, "reservation block we do not own");
    std::uint64_t freed = 0;
    for (std::uint64_t slot = 0; slot < Frames2M; slot++) {
        const VAddr vbase = region + slot * PageBytes4K;
        const Pfn pfn = block + slot;
        if (pageTable_.translate(vbase)) {
            // A touched slot keeps its frame and its exact translation
            // (so no shootdown); it just becomes an ordinary movable
            // 4KB page.
            mm_.phys().retagFrames(pfn, 0, mem::FrameUse::AppSmall);
            mm_.registerMovable(pfn, this, vbase);
            ownedFrames_.emplace(pfn, 0);
        } else {
            mm_.phys().freeFrames(pfn, 0);
            freed++;
        }
    }
    panic_if(freed != Frames2M - touched,
             "reservation slack disagrees with its touched count");
    // The kept pages now count as fallback 4KB pages; the side-table
    // entry also blocks a fresh reservation from colliding with the
    // live mid-level table.
    smallIn2m_[region] = touched;
    reservations_.erase(it);
    reclaims_ += freed;
    return freed;
}

std::uint64_t
Process::reclaimMemory(std::uint64_t want)
{
    if (want == 0)
        return 0;
    std::uint64_t freed = 0;
    // 1. Reservation slack: real memory freed without one shootdown.
    //    Abandon the reservation with the most untouched slots first.
    while (freed < want && !reservations_.empty()) {
        VAddr victim = 0;
        std::uint32_t victim_touched = 0;
        bool have = false;
        for (const auto &[region, res] : reservations_) {
            if (!have || res.touched < victim_touched ||
                (res.touched == victim_touched && region < victim)) {
                victim = region;
                victim_touched = res.touched;
                have = true;
            }
        }
        freed += abandonReservation(victim);
    }
    // 2. Cold pages from regions demoted earlier.
    if (freed < want)
        freed += reclaimColdPages(want - freed);
    // 3. Demote superpages to expose more reclaimable pages.
    while (freed < want && demoteOne())
        freed += reclaimColdPages(want - freed);
    // 4. Retired page-table frames (their translations were shot down
    //    when the tables were retired).
    if (freed < want) {
        const std::uint64_t released = pageTable_.reclaimRetiredFrames();
        reclaims_ += released;
        freed += released;
    }
    return freed;
}

/**
 * Free-memory fraction below which re-promotion is not attempted. The
 * pressure experiments run with ~12% steady free memory and transient
 * bursts that halve it, so the threshold sits between the two: burst
 * windows read as pressure, burst release reads as pressure fading.
 */
constexpr double RepromoteFreeFraction = 0.08;

/**
 * Minimum mapped slots for a collapse re-promotion — the analogue of
 * khugepaged's max_ptes_none: a region must be at least half populated
 * before it is worth spending a whole 2MB block on it.
 */
constexpr std::uint64_t MinMappedForCollapse = Frames2M / 2;

bool
Process::tryRepromote2m(VAddr region)
{
    // Survey the region: mapped slots must all still be 4KB leaves;
    // reclaimed holes are tolerated (they become backed by the new
    // superpage, as khugepaged's max_ptes_none allows).
    Pfn base = 0;
    bool contiguous = true;
    std::uint64_t mapped = 0;
    for (std::uint64_t i = 0; i < Frames2M; i++) {
        auto x = pageTable_.translate(region + i * PageBytes4K);
        if (!x) {
            contiguous = false;
            continue;
        }
        if (x->size != PageSize::Size4K)
            return false;
        const Pfn pfn = static_cast<Pfn>(x->pbase >> PageShift4K);
        if (mapped == 0 && i == 0) {
            base = pfn;
            contiguous = (base & (Frames2M - 1)) == 0;
        } else if (pfn != base + i) {
            contiguous = false;
        }
        mapped++;
    }
    if (mapped < MinMappedForCollapse)
        return false;
    Pfn dest = base;
    if (!contiguous) {
        // khugepaged-style collapse: migrate the 512 pages into a
        // fresh block. Reclaim is disabled for this allocation so
        // rebuilding one superpage can never demote another.
        auto block = mm_.allocContiguous(mem::Order2M,
                                         mem::FrameUse::AppHuge,
                                         true, false);
        if (!block)
            return false;
        dest = *block;
    }
    for (std::uint64_t i = 0; i < Frames2M; i++) {
        const VAddr vbase = region + i * PageBytes4K;
        // Re-translate: the collapse allocation may have compacted our
        // own movable frames to new homes.
        auto x = pageTable_.translate(vbase);
        if (!x)
            continue; // hole: the new superpage will back it
        const Pfn pfn = static_cast<Pfn>(x->pbase >> PageShift4K);
        bool removed = pageTable_.unmap(vbase);
        panic_if(!removed, "re-promotion lost a mapped slot");
        mm_.unregisterMovable(pfn);
        auto erased = ownedFrames_.erase(pfn);
        panic_if(erased == 0, "re-promotion of a frame we do not own");
        if (!contiguous)
            mm_.phys().freeFrames(pfn, 0); // copied into the new block
    }
    pageTable_.clearLevelEntry(region, pt::leafLevel(PageSize::Size2M));
    pageTable_.map(region, static_cast<PAddr>(dest) << PageShift4K,
                   PageSize::Size2M);
    // One 2MB-sized shootdown drops every stale 4KB entry in the
    // window and the PWC path through the now-retired table.
    fireInvalidate(region, PageSize::Size2M);
    if (contiguous) {
        mm_.phys().retagFrames(dest, mem::Order2M,
                               mem::FrameUse::AppHuge);
    }
    ownedFrames_.emplace(dest, mem::Order2M);
    smallIn2m_.erase(region);
    auto sub = subIn1g_.find(pageBase(region, PageSize::Size1G));
    if (sub != subIn1g_.end())
        sub->second -= mapped - 1; // `mapped` 4KB leaves became one 2MB
    resident4k_ -= mapped;
    resident2m_++;
    demoted2m_.erase(region);
    residentSuper_.emplace(region, PageSize::Size2M);
    ++repromotions_;
    return true;
}

void
Process::maintain()
{
    if (demoted2m_.empty())
        return;
    if (repromoteDefer_ > 0) {
        repromoteDefer_--;
        return;
    }
    if (mm_.freeFraction() < RepromoteFreeFraction) {
        // Still under pressure: check again later, with backoff.
        if (repromoteDeferShift_ < 6)
            repromoteDeferShift_++;
        repromoteDefer_ = 1ULL << (repromoteDeferShift_ & 63);
        return;
    }
    // Bounded work per call: a few candidates, lowest address first.
    unsigned promoted = 0;
    unsigned examined = 0;
    auto it = demoted2m_.begin();
    while (it != demoted2m_.end() && examined < 4) {
        const VAddr region = *it;
        ++it; // advance before tryRepromote2m erases the region
        examined++;
        if (tryRepromote2m(region))
            promoted++;
    }
    if (promoted == 0) {
        if (repromoteDeferShift_ < 6)
            repromoteDeferShift_++;
        repromoteDefer_ = 1ULL << (repromoteDeferShift_ & 63);
    } else {
        repromoteDeferShift_ = 0;
        repromoteDefer_ = 0;
    }
}

void
Process::audit(contracts::AuditReport &report) const
{
    pageTable_.audit(report);

    // One leaf walk accumulates everything the fault counters and the
    // THS/reservation side tables claim about the mapped state.
    std::uint64_t bytes4k = 0;
    std::uint64_t bytes2m = 0;
    std::uint64_t bytes1g = 0;
    std::unordered_map<VAddr, std::uint32_t> small_in_2m;
    std::unordered_map<VAddr, std::uint32_t> sub_in_1g;
    std::map<VAddr, PageSize> super;

    std::vector<std::pair<Pfn, std::uint64_t>> owned; // [base, end)
    owned.reserve(ownedFrames_.size());
    for (auto [pfn, order] : ownedFrames_)
        owned.emplace_back(pfn, pfn + pow2(order));
    std::sort(owned.begin(), owned.end());

    std::uint64_t stray_leaves = 0;
    pageTable_.forEachLeaf([&](const pt::Translation &xlate) {
        const std::uint64_t bytes = pageBytes(xlate.size);
        switch (xlate.size) {
          case PageSize::Size4K:
            bytes4k += bytes;
            small_in_2m[pageBase(xlate.vbase, PageSize::Size2M)]++;
            break;
          case PageSize::Size2M: bytes2m += bytes; break;
          case PageSize::Size1G: bytes1g += bytes; break;
        }
        if (xlate.size != PageSize::Size1G)
            sub_in_1g[pageBase(xlate.vbase, PageSize::Size1G)]++;
        if (xlate.size != PageSize::Size4K)
            super.emplace(xlate.vbase, xlate.size);

        const bool in_vma = inVma(xlate.vbase)
                            && inVma(xlate.vbase + bytes - 1);
        const Pfn first = xlate.pbase >> PageShift4K;
        const std::uint64_t frames = bytes >> PageShift4K;
        auto it = std::upper_bound(
            owned.begin(), owned.end(), first,
            [](Pfn v, const auto &iv) { return v < iv.first; });
        const bool backed = it != owned.begin()
                            && ((--it, first >= it->first
                                        && first + frames <= it->second));
        if ((!in_vma || !backed) && stray_leaves++ < 8) {
            MIX_AUDIT_CHECK(report, false,
                            "%s leaf at 0x%llx -> 0x%llx is %s%s%s",
                            pageSizeName(xlate.size),
                            (unsigned long long)xlate.vbase,
                            (unsigned long long)xlate.pbase,
                            in_vma ? "" : "outside every VMA",
                            !in_vma && !backed ? " and " : "",
                            backed ? ""
                                   : "backed by frames this process "
                                     "does not own");
        }
    });
    MIX_AUDIT_CHECK(report, stray_leaves <= 8,
                    "%llu further stray leaves",
                    (unsigned long long)(stray_leaves - 8));

    MIX_AUDIT_CHECK(report, bytes4k == residentBytes(PageSize::Size4K),
                    "tree holds %llu 4KB-mapped bytes but the "
                    "residency counters say %llu",
                    (unsigned long long)bytes4k,
                    (unsigned long long)residentBytes(PageSize::Size4K));
    MIX_AUDIT_CHECK(report, bytes2m == residentBytes(PageSize::Size2M),
                    "tree holds %llu 2MB-mapped bytes but the "
                    "residency counters say %llu",
                    (unsigned long long)bytes2m,
                    (unsigned long long)residentBytes(PageSize::Size2M));
    MIX_AUDIT_CHECK(report, bytes1g == residentBytes(PageSize::Size1G),
                    "tree holds %llu 1GB-mapped bytes but the "
                    "residency counters say %llu",
                    (unsigned long long)bytes1g,
                    (unsigned long long)residentBytes(PageSize::Size1G));

    // The side tables are unordered; walk them in sorted key order so
    // the audit report is byte-identical regardless of insertion order.
    std::vector<VAddr> regions2m;
    regions2m.reserve(smallIn2m_.size());
    for (const auto &kv : smallIn2m_)
        regions2m.push_back(kv.first);
    std::sort(regions2m.begin(), regions2m.end());

    // A smallIn2m_ entry blocks superpage use for its region, and its
    // count is exactly the fallback 4KB pages mapped there (never the
    // reservation-backed ones, which keep their own counter).
    for (VAddr region : regions2m) {
        const std::uint32_t count = smallIn2m_.at(region);
        auto found = small_in_2m.find(region);
        const std::uint32_t actual =
            found == small_in_2m.end() ? 0 : found->second;
        MIX_AUDIT_CHECK(report, actual == count,
                        "2MB region 0x%llx claims %u fallback 4KB "
                        "pages but the tree holds %u",
                        (unsigned long long)region, count, actual);
        MIX_AUDIT_CHECK(report,
                        reservations_.find(region)
                            == reservations_.end(),
                        "2MB region 0x%llx has both fallback 4KB "
                        "pages and an active reservation",
                        (unsigned long long)region);
    }
    std::vector<VAddr> regions1g;
    regions1g.reserve(subIn1g_.size());
    for (const auto &kv : subIn1g_)
        regions1g.push_back(kv.first);
    std::sort(regions1g.begin(), regions1g.end());
    for (VAddr region : regions1g) {
        const std::uint32_t count = subIn1g_.at(region);
        auto found = sub_in_1g.find(region);
        const std::uint32_t actual =
            found == sub_in_1g.end() ? 0 : found->second;
        MIX_AUDIT_CHECK(report, actual == count,
                        "1GB region 0x%llx claims %u sub-1GB pages "
                        "but the tree holds %u",
                        (unsigned long long)region, count, actual);
    }
    std::vector<VAddr> reserved;
    reserved.reserve(reservations_.size());
    for (const auto &kv : reservations_)
        reserved.push_back(kv.first);
    std::sort(reserved.begin(), reserved.end());
    for (VAddr region : reserved) {
        const auto &res = reservations_.at(region);
        MIX_AUDIT_CHECK(report, res.touched < Frames2M,
                        "reservation at 0x%llx is fully built (%u "
                        "slots) but was never promoted",
                        (unsigned long long)region, res.touched);
        auto found = small_in_2m.find(region);
        const std::uint32_t actual =
            found == small_in_2m.end() ? 0 : found->second;
        MIX_AUDIT_CHECK(report, actual == res.touched,
                        "reservation at 0x%llx touched %u slots but "
                        "the tree holds %u 4KB pages there",
                        (unsigned long long)region, res.touched,
                        actual);
        auto own = ownedFrames_.find(res.block);
        MIX_AUDIT_CHECK(report,
                        own != ownedFrames_.end()
                            && own->second == mem::Order2M,
                        "reserved block 0x%llx is not owned as an "
                        "order-%u allocation",
                        (unsigned long long)res.block, mem::Order2M);
    }

    // Lifecycle side tables: the superpage registry mirrors the tree's
    // superpage leaves exactly, and every demoted region really is
    // split (no leaf at the region, a live 4KB side-table entry, and no
    // reservation squatting on the same mid-level table).
    MIX_AUDIT_CHECK(report, super.size() == residentSuper_.size(),
                    "tree holds %llu superpage leaves but the registry "
                    "tracks %llu",
                    (unsigned long long)super.size(),
                    (unsigned long long)residentSuper_.size());
    for (const auto &[region, size] : residentSuper_) {
        auto found = super.find(region);
        MIX_AUDIT_CHECK(report,
                        found != super.end() && found->second == size,
                        "registry claims a %s leaf at 0x%llx but the "
                        "tree disagrees",
                        pageSizeName(size), (unsigned long long)region);
    }
    for (VAddr region : demoted2m_) {
        MIX_AUDIT_CHECK(report,
                        smallIn2m_.find(region) != smallIn2m_.end(),
                        "demoted region 0x%llx missing from the 4KB "
                        "side table",
                        (unsigned long long)region);
        MIX_AUDIT_CHECK(report,
                        reservations_.find(region)
                            == reservations_.end(),
                        "demoted region 0x%llx still has a reservation",
                        (unsigned long long)region);
        MIX_AUDIT_CHECK(report, super.find(region) == super.end(),
                        "demoted region 0x%llx still has a superpage "
                        "leaf",
                        (unsigned long long)region);
    }
}

void
Process::relocate(std::uint64_t tag, Pfn from, Pfn to)
{
    VAddr vbase = tag;
    pageTable_.remap(vbase, to << PageShift4K);
    auto erased = ownedFrames_.erase(from);
    panic_if(erased == 0, "relocate of frame we do not own");
    ownedFrames_.emplace(to, 0);
    ++migrations_;
    fireInvalidate(vbase, PageSize::Size4K);
}

} // namespace mixtlb::os
