#include "thread_pool.hh"

namespace mixtlb
{

unsigned
ThreadPool::defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock, [this] { return unfinished_ == 0; });
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++unfinished_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return unfinished_ == 0; });
    if (firstError_) {
        auto error = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping, nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error && !firstError_)
                firstError_ = error;
            if (--unfinished_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace mixtlb
