/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components own a StatGroup; they register named Scalar counters,
 * Distributions, and Formulas (derived values computed at dump time).
 * Groups nest, so a TLB hierarchy dumps all its children with dotted
 * names (e.g. "l1.mix.hits").
 */

#ifndef MIXTLB_COMMON_STATS_HH
#define MIXTLB_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mixtlb::stats
{

/** A monotonically updated scalar statistic. */
class Scalar
{
  public:
    Scalar &operator++() { value_ += 1.0; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * An integer event counter. Unlike Scalar (double-backed, which
 * silently loses precision once a count passes 2^53), Counter
 * accumulates in a uint64_t and converts to double only at report
 * time — the right type for hot-path event counts like TLB probes
 * and walk accesses.
 */
class Counter
{
  public:
    Counter &operator++() { value_ += 1; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A simple sampled distribution (min/max/mean plus fixed buckets). */
class Distribution
{
  public:
    /** Buckets are [0,step), [step,2*step), ..., plus an overflow. */
    void init(double step, unsigned nbuckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }
    double min() const { return samples_ ? min_ : 0.0; }
    double max() const { return samples_ ? max_ : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    double bucketStep() const { return step_; }
    void reset();

  private:
    double step_ = 1.0;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A derived statistic evaluated lazily at dump time. */
using Formula = std::function<double()>;

/**
 * A named collection of statistics. Groups form a tree; dumping a group
 * prints every descendant statistic with a dotted path name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a scalar under @p name; returns it for in-place use. */
    Scalar &addScalar(const std::string &name, const std::string &desc);

    /** Register an integer counter under @p name. */
    Counter &addCounter(const std::string &name, const std::string &desc);

    /** Register a distribution under @p name. */
    Distribution &addDistribution(const std::string &name,
                                  const std::string &desc,
                                  double step, unsigned nbuckets);

    /** Register a derived statistic. */
    void addFormula(const std::string &name, const std::string &desc,
                    Formula formula);

    /** Look up a previously registered scalar; panics if missing. */
    const Scalar &scalar(const std::string &name) const;

    /** Look up a previously registered counter; panics if missing. */
    const Counter &counter(const std::string &name) const;

    /**
     * Value of the statistic at dotted path @p name — a Counter
     * (converted to double) or a Scalar. Panics if neither exists, so
     * call sites don't care which concrete type a stat migrated to.
     */
    double value(const std::string &name) const;

    /** Dotted path from the root group. */
    std::string path() const;

    const std::string &name() const { return name_; }

    /** Print all statistics (this group and descendants). */
    void dump(std::ostream &os) const;

    /** Zero all statistics (this group and descendants). */
    void resetStats();

  private:
    struct ScalarEntry { Scalar stat; std::string desc; };
    struct CounterEntry { Counter stat; std::string desc; };
    struct DistEntry { Distribution stat; std::string desc; };
    struct FormulaEntry { Formula formula; std::string desc; };

    std::string name_;
    StatGroup *parent_;
    std::vector<StatGroup *> children_;
    // std::map keeps dump output deterministically sorted.
    std::map<std::string, ScalarEntry> scalars_;
    std::map<std::string, CounterEntry> counters_;
    std::map<std::string, DistEntry> dists_;
    std::map<std::string, FormulaEntry> formulas_;
};

} // namespace mixtlb::stats

#endif // MIXTLB_COMMON_STATS_HH
