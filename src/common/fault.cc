#include "fault.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace mixtlb::fault
{

namespace
{

constexpr const char *SiteNames[SiteCount] = {
    "buddy-alloc",
    "walk-latency",
    "pressure-burst",
    "trace-corrupt",
    "demote-storm",
};

/** Decorrelates the per-site substreams of one point's seed. */
constexpr std::uint64_t SiteSalt[SiteCount] = {
    0x9e3779b97f4a7c15ULL,
    0xbf58476d1ce4e5b9ULL,
    0x94d049bb133111ebULL,
    0xd6e8feb86659fd93ULL,
    0xff51afd7ed558ccdULL,
};

thread_local FaultScope *g_scope = nullptr;

/** splitmix64 finalizer: the schedule's stateless hash. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rateToThreshold(double rate)
{
    if (rate <= 0.0)
        return 0;
    if (rate >= 1.0)
        return ~0ULL;
    // 2^64 * rate, kept below the always-fire sentinel.
    auto threshold = static_cast<std::uint64_t>(
        rate * 18446744073709551616.0);
    return threshold ? threshold : 1;
}

} // anonymous namespace

const char *
siteName(Site site)
{
    return SiteNames[static_cast<std::size_t>(site)];
}

std::optional<Site>
siteFromName(const std::string &name)
{
    for (std::size_t i = 0; i < SiteCount; i++) {
        if (name == SiteNames[i])
            return static_cast<Site>(i);
    }
    return std::nullopt;
}

bool
FaultConfig::any() const
{
    for (const auto &site : sites) {
        if (site.rate > 0.0)
            return true;
    }
    return false;
}

FaultConfig
FaultConfig::parse(const std::string &spec)
{
    FaultConfig config;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;

        std::size_t eq = token.find('=');
        fatal_if(eq == std::string::npos,
                 "--inject token '%s' is not site=rate[@point]",
                 token.c_str());
        std::string name = token.substr(0, eq);
        auto site = siteFromName(name);
        fatal_if(!site, "--inject names unknown fault site '%s'",
                 name.c_str());

        std::string rate_str = token.substr(eq + 1);
        SiteRate entry;
        std::size_t at = rate_str.find('@');
        if (at != std::string::npos) {
            entry.pointLimited = true;
            entry.point = std::strtoull(
                rate_str.c_str() + at + 1, nullptr, 0);
            rate_str.resize(at);
        }
        char *end = nullptr;
        entry.rate = std::strtod(rate_str.c_str(), &end);
        fatal_if(end == rate_str.c_str() || *end != '\0' ||
                     entry.rate < 0.0 || entry.rate > 1.0,
                 "--inject rate '%s' for site '%s' is not a "
                 "probability in [0,1]",
                 rate_str.c_str(), name.c_str());
        config.sites[static_cast<std::size_t>(*site)] = entry;
    }
    return config;
}

FaultScope::FaultScope(const FaultConfig &config, std::uint64_t seed,
                       std::uint64_t point_index,
                       double deadline_seconds)
    : previous_(g_scope)
{
    session_.seed = seed;
    for (std::size_t i = 0; i < SiteCount; i++) {
        const SiteRate &site = config.sites[i];
        if (site.pointLimited && site.point != point_index)
            continue;
        session_.thresholds[i] = rateToThreshold(site.rate);
    }
    if (deadline_seconds > 0.0) {
        session_.deadlineArmed = true;
        session_.deadline =
            std::chrono::steady_clock::now()
            + std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(deadline_seconds));
    }
    g_scope = this;
}

FaultScope::~FaultScope()
{
    g_scope = previous_;
}

std::uint64_t
FaultScope::fired(Site site) const
{
    return session_.fired[static_cast<std::size_t>(site)];
}

std::array<std::uint64_t, SiteCount>
FaultScope::firedCounts() const
{
    return session_.fired;
}

bool
fire(Site site)
{
    FaultScope *scope = g_scope;
    if (!scope)
        return false;
    auto &session = scope->session_;
    auto index = static_cast<std::size_t>(site);
    std::uint64_t threshold = session.thresholds[index];
    if (!threshold)
        return false;
    std::uint64_t draw = session.draws[index]++;
    bool hit = threshold == ~0ULL ||
               mix64(session.seed ^ SiteSalt[index] ^
                     (draw * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL))
                   < threshold;
    if (hit)
        session.fired[index]++;
    return hit;
}

bool
armed(Site site)
{
    FaultScope *scope = g_scope;
    return scope &&
           scope->session_
                   .thresholds[static_cast<std::size_t>(site)] != 0;
}

bool
deadlineExpired()
{
    FaultScope *scope = g_scope;
    if (!scope || !scope->session_.deadlineArmed)
        return false;
    return std::chrono::steady_clock::now() > scope->session_.deadline;
}

bool
active()
{
    return g_scope != nullptr;
}

} // namespace mixtlb::fault
