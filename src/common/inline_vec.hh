/**
 * @file
 * A fixed-capacity, allocation-free vector for the simulation hot
 * path. `pt::WalkResult` carries its memory-access lists and decoded
 * PTE line in these instead of `std::vector`, so a page-table walk
 * (and the nested 2-D walk that composes up to ~44 accesses) performs
 * zero heap allocations.
 *
 * The capacity is an architectural bound, not a heuristic: exceeding
 * it is a modelling bug and traps fatally via MIX_EXPECT even in
 * release builds. Only the first size() elements are ever read,
 * copied, or compared; storage is deliberately left uninitialised so
 * constructing a large-capacity result costs nothing.
 */

#ifndef MIXTLB_COMMON_INLINE_VEC_HH
#define MIXTLB_COMMON_INLINE_VEC_HH

#include <array>
#include <cstddef>

#include "common/contracts.hh"

namespace mixtlb
{

template <typename T, std::size_t N>
class InlineVec
{
  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    InlineVec() = default;

    InlineVec(const InlineVec &other) { assignFrom(other); }

    InlineVec &
    operator=(const InlineVec &other)
    {
        if (this != &other)
            assignFrom(other);
        return *this;
    }

    void
    push_back(const T &value)
    {
        MIX_EXPECT(size_ < N,
                   "InlineVec overflow: capacity %zu exceeded "
                   "(architectural bound violated)",
                   N);
        data_[size_++] = value;
    }

    /** Resize to @p count copies of @p value (std::vector::assign). */
    void
    assign(std::size_t count, const T &value)
    {
        MIX_EXPECT(count <= N,
                   "InlineVec overflow: assign(%zu) exceeds capacity "
                   "%zu",
                   count, N);
        for (std::size_t i = 0; i < count; i++)
            data_[i] = value;
        size_ = count;
    }

    /** Append the range [first, last). */
    void
    append(const T *first, const T *last)
    {
        const auto count = static_cast<std::size_t>(last - first);
        MIX_EXPECT(size_ + count <= N,
                   "InlineVec overflow: appending %zu to %zu exceeds "
                   "capacity %zu",
                   count, size_, N);
        for (std::size_t i = 0; i < count; i++)
            data_[size_ + i] = first[i];
        size_ += count;
    }

    void clear() { size_ = 0; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    iterator begin() { return data_.data(); }
    iterator end() { return data_.data() + size_; }
    const_iterator begin() const { return data_.data(); }
    const_iterator end() const { return data_.data() + size_; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    static constexpr std::size_t capacity() { return N; }

  private:
    void
    assignFrom(const InlineVec &other)
    {
        for (std::size_t i = 0; i < other.size_; i++)
            data_[i] = other.data_[i];
        size_ = other.size_;
    }

    std::array<T, N> data_;
    std::size_t size_ = 0;
};

} // namespace mixtlb

#endif // MIXTLB_COMMON_INLINE_VEC_HH
