/**
 * @file
 * Portable wide-word probe kernels for the hot scan loops.
 *
 * PR 8 turned every TLB/cache probe into a linear scan over a packed
 * `std::uint64_t` tag lane, but left the scan one word per iteration:
 * the autovectorizer cannot prove first-match-index semantics through
 * the early return and mostly emits scalar compare/branch loops. This
 * header widens the scan explicitly — 4 tags per compare on AVX2, 2 on
 * SSE2/NEON — while keeping the result *provably* identical to the
 * scalar loop:
 *
 *   - Each vector compare produces a per-element mask; the mask is
 *     reduced with movemask so that bit k corresponds to element
 *     (i + k) of the lane. Extracting the lowest set bit
 *     (`std::countr_zero`) therefore yields the lowest matching lane
 *     index, i.e. exactly the index the scalar `for` loop would have
 *     returned first.
 *   - Ragged tails (n not a multiple of the vector width) finish with
 *     the scalar loop — no masked over-read of the lane is attempted.
 *   - `firstEqual`/`firstEqualAny` take a start offset so callers that
 *     re-confirm tag hits against a full predicate (TagLaneSet) can
 *     resume the scan mid-lane past a confirm-rejected collision.
 *
 * Kernel selection is compile-time (`__AVX2__` / `__SSE2__` /
 * `__ARM_NEON` from the toolchain, see MIXTLB_AVX2 in CMakeLists.txt)
 * with a process-wide runtime kill switch layered on top: the
 * `MIXTLB_FORCE_SCALAR` environment variable seeds an atomic flag
 * (re-readable via setForceScalar(), mirroring the L0 filter's
 * setL0FilterEnabled() toggle) that routes every kernel through the
 * pure-scalar reference path. Because the kernels are bit-exact, the
 * switch changes wall-clock time only — fig14 golden JSON is asserted
 * byte-identical across SIMD/forced-scalar in CI.
 *
 * This is the only file in the tree allowed to touch raw intrinsics
 * (mixcheck rule `simd`); everything else calls these wrappers.
 */

#ifndef MIXTLB_COMMON_SIMD_HH
#define MIXTLB_COMMON_SIMD_HH

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>

#include "common/types.hh"

#if !defined(MIXTLB_SIMD_DISABLED)
#if defined(__AVX2__)
#define MIXTLB_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define MIXTLB_SIMD_SSE2 1
#include <immintrin.h>
#elif defined(__ARM_NEON) && defined(__aarch64__)
#define MIXTLB_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace mixtlb::simd
{

/** Same sentinel as TagLaneSet::npos. */
inline constexpr std::size_t npos =
    std::numeric_limits<std::size_t>::max();

/** Widest candidate fan-out the vector kernels hoist (designs probe at
 *  most NumPageSizes = 3 windows per lookup). */
inline constexpr unsigned MaxHoistedCands = 4;

namespace detail
{

/** Process-wide kill switch. Seeded once from MIXTLB_FORCE_SCALAR
 *  (unset, empty, or "0" = off); flipped at runtime by tests and
 *  benches via setForceScalar(). Relaxed atomics: the flag only picks
 *  between two bit-exact kernels, so racing readers are harmless. */
inline std::atomic<bool> &
forceScalarFlag()
{
    static std::atomic<bool> flag{[] {
        const char *env = std::getenv("MIXTLB_FORCE_SCALAR");
        return env != nullptr && env[0] != '\0' &&
               !(env[0] == '0' && env[1] == '\0');
    }()};
    return flag;
}

} // namespace detail

inline bool
scalarForced()
{
    return detail::forceScalarFlag().load(std::memory_order_relaxed);
}

inline void
setForceScalar(bool on)
{
    detail::forceScalarFlag().store(on, std::memory_order_relaxed);
}

/** RAII guard: force the scalar kernels within a scope (differential
 *  tests), restoring the previous setting on exit. */
class ForceScalarGuard
{
  public:
    explicit ForceScalarGuard(bool on = true) : prev_(scalarForced())
    {
        setForceScalar(on);
    }
    ~ForceScalarGuard() { setForceScalar(prev_); }
    ForceScalarGuard(const ForceScalarGuard &) = delete;
    ForceScalarGuard &operator=(const ForceScalarGuard &) = delete;

  private:
    bool prev_;
};

/** Name of the kernel the translation unit was compiled with. */
constexpr const char *
compiledKernelName()
{
#if defined(MIXTLB_SIMD_AVX2)
    return "avx2";
#elif defined(MIXTLB_SIMD_SSE2)
    return "sse2";
#elif defined(MIXTLB_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/** Kernel actually dispatched to right now (honours the kill switch). */
inline const char *
activeKernelName()
{
    return scalarForced() ? "scalar" : compiledKernelName();
}

/** Hint loads/stores of the line holding @p p (no-op off GNU/Clang). */
inline void
prefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0, 3);
#else
    (void)p;
#endif
}

inline void
prefetchWrite(void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 1, 3);
#else
    (void)p;
#endif
}

// ---------------------------------------------------------------------
// Scalar reference kernels. These define the semantics; every vector
// kernel below must return bit-identical results (asserted by the
// randomized differential tests in tests/test_properties.cc).
// ---------------------------------------------------------------------

// mixcheck: hot
inline std::size_t
firstEqualScalar(const std::uint64_t *lane, std::size_t n,
                 std::uint64_t tag, std::size_t start)
{
    for (std::size_t i = start; i < n; ++i) {
        if (lane[i] == tag)
            return i;
    }
    return npos;
}

/** Scalar any-of-candidates scan. The candidate values are hoisted
 *  into locals and the comparison short-circuits (the old TagLaneSet
 *  inner loop re-read cands[c] from memory and evaluated all ncands
 *  compares per way). */
// mixcheck: hot
inline std::size_t
firstEqualAnyScalar(const std::uint64_t *lane, std::size_t n,
                    const std::uint64_t *cands, unsigned ncands,
                    std::size_t start)
{
    switch (ncands) {
      case 0:
        return npos;
      case 1:
        return firstEqualScalar(lane, n, cands[0], start);
      case 2: {
        const std::uint64_t c0 = cands[0], c1 = cands[1];
        for (std::size_t i = start; i < n; ++i) {
            const std::uint64_t t = lane[i];
            if (t == c0 || t == c1)
                return i;
        }
        return npos;
      }
      case 3: {
        const std::uint64_t c0 = cands[0], c1 = cands[1];
        const std::uint64_t c2 = cands[2];
        for (std::size_t i = start; i < n; ++i) {
            const std::uint64_t t = lane[i];
            if (t == c0 || t == c1 || t == c2)
                return i;
        }
        return npos;
      }
      default:
        for (std::size_t i = start; i < n; ++i) {
            const std::uint64_t t = lane[i];
            for (unsigned c = 0; c < ncands; ++c) {
                if (t == cands[c])
                    return i;
            }
        }
        return npos;
    }
}

/** Scalar run-length of leading refs the L0 filter can replay: vaddr
 *  inside [lo, lo + 4KB) and, unless @p stores_ok, a load. */
// mixcheck: hot
inline std::size_t
l0RunLengthScalar(const MemRef *refs, std::size_t n, VAddr lo,
                  bool stores_ok, std::size_t start)
{
    std::size_t i = start;
    for (; i < n; ++i) {
        if (refs[i].vaddr - lo >= PageBytes4K)
            break;
        if (!stores_ok && refs[i].type != AccessType::Read)
            break;
    }
    return i;
}

// ---------------------------------------------------------------------
// Vector kernels. Exactness hinges on one property per kernel: the
// movemask reduction maps lane element (i + k) to mask bit f(k) with f
// strictly increasing, so the lowest set bit is the lowest matching
// index and `i + ctz(mask)` equals the scalar loop's first hit.
// ---------------------------------------------------------------------

#if defined(MIXTLB_SIMD_AVX2)

// mixcheck: hot
inline std::size_t
firstEqualVector(const std::uint64_t *lane, std::size_t n,
                 std::uint64_t tag, std::size_t i)
{
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(tag));
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(lane + i));
        // movemask_pd bit k = sign bit of 64-bit element k, and cmpeq
        // writes all-ones per matching element: bit k set <=> lane
        // element (i + k) == tag.
        const unsigned m = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, needle))));
        if (m != 0)
            return i + static_cast<unsigned>(std::countr_zero(m));
    }
    return firstEqualScalar(lane, n, tag, i);
}

// mixcheck: hot
inline std::size_t
firstEqualAnyVector(const std::uint64_t *lane, std::size_t n,
                    const std::uint64_t *cands, unsigned ncands,
                    std::size_t i)
{
    if (ncands == 0)
        return npos;
    if (ncands > MaxHoistedCands)
        return firstEqualAnyScalar(lane, n, cands, ncands, i);
    __m256i needles[MaxHoistedCands];
    for (unsigned c = 0; c < ncands; ++c)
        needles[c] = _mm256_set1_epi64x(
            static_cast<long long>(cands[c]));
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(lane + i));
        __m256i eq = _mm256_cmpeq_epi64(v, needles[0]);
        for (unsigned c = 1; c < ncands; ++c)
            eq = _mm256_or_si256(eq, _mm256_cmpeq_epi64(v, needles[c]));
        const unsigned m = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
        if (m != 0)
            return i + static_cast<unsigned>(std::countr_zero(m));
    }
    return firstEqualAnyScalar(lane, n, cands, ncands, i);
}

// mixcheck: hot
inline std::size_t
l0RunLengthVector(const MemRef *refs, std::size_t n, VAddr lo,
                  bool stores_ok, std::size_t i)
{
    static_assert(sizeof(MemRef) == 16,
                  "l0RunLengthVector assumes {u64 vaddr, u8 type} refs");
    // AVX2 has no unsigned 64-bit compare; biasing both sides by 2^63
    // turns the unsigned `d < 4096` into a signed cmpgt.
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    const __m256i lo_v = _mm256_set1_epi64x(static_cast<long long>(lo));
    const __m256i limit_biased = _mm256_set1_epi64x(
        static_cast<long long>(PageBytes4K ^ 0x8000000000000000ull));
    const __m256i meta_mask = _mm256_set1_epi64x(0xFF);
    for (; i + 4 <= n; i += 4) {
        // Four 16-byte MemRefs = two 32-byte loads of [v, m, v, m];
        // gather the vaddr and meta 64-bit slots into element order
        // [r0, r1, r2, r3] so mask bit k is ref (i + k).
        const __m256i *p = reinterpret_cast<const __m256i *>(refs + i);
        const __m256i ab = _mm256_loadu_si256(p);
        const __m256i cd = _mm256_loadu_si256(p + 1);
        const __m256i va = _mm256_permute4x64_epi64(
            ab, _MM_SHUFFLE(2, 0, 2, 0));
        const __m256i vb = _mm256_permute4x64_epi64(
            cd, _MM_SHUFFLE(2, 0, 2, 0));
        const __m256i vaddrs =
            _mm256_permute2x128_si256(va, vb, 0x20);
        const __m256i d_biased = _mm256_xor_si256(
            _mm256_sub_epi64(vaddrs, lo_v), bias);
        __m256i ok = _mm256_cmpgt_epi64(limit_biased, d_biased);
        if (!stores_ok) {
            const __m256i ma = _mm256_permute4x64_epi64(
                ab, _MM_SHUFFLE(3, 1, 3, 1));
            const __m256i mb = _mm256_permute4x64_epi64(
                cd, _MM_SHUFFLE(3, 1, 3, 1));
            // Only the low byte of the meta slot is AccessType; the
            // rest is struct padding and must be masked off.
            const __m256i metas = _mm256_and_si256(
                _mm256_permute2x128_si256(ma, mb, 0x20), meta_mask);
            ok = _mm256_and_si256(
                ok, _mm256_cmpeq_epi64(metas, _mm256_setzero_si256()));
        }
        const unsigned okm = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(ok)));
        const unsigned stop = ~okm & 0xFu;
        if (stop != 0)
            return i + static_cast<unsigned>(std::countr_zero(stop));
    }
    return l0RunLengthScalar(refs, n, lo, stores_ok, i);
}

#elif defined(MIXTLB_SIMD_SSE2)

// mixcheck: hot
inline std::size_t
firstEqualVector(const std::uint64_t *lane, std::size_t n,
                 std::uint64_t tag, std::size_t i)
{
    // SSE2 has no 64-bit compare (_mm_cmpeq_epi64 is SSE4.1): compare
    // 32-bit halves and require both. movemask_ps bit k = 32-bit
    // element k, so 64-bit element j owns bits (2j, 2j+1) and matches
    // iff both are set: m & (m >> 1) & 0b0101.
    const __m128i needle =
        _mm_set1_epi64x(static_cast<long long>(tag));
    for (; i + 2 <= n; i += 2) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(lane + i));
        const unsigned m = static_cast<unsigned>(_mm_movemask_ps(
            _mm_castsi128_ps(_mm_cmpeq_epi32(v, needle))));
        const unsigned both = m & (m >> 1) & 0x5u;
        if (both != 0)
            return i +
                   (static_cast<unsigned>(std::countr_zero(both)) >> 1);
    }
    return firstEqualScalar(lane, n, tag, i);
}

// mixcheck: hot
inline std::size_t
firstEqualAnyVector(const std::uint64_t *lane, std::size_t n,
                    const std::uint64_t *cands, unsigned ncands,
                    std::size_t i)
{
    if (ncands == 0)
        return npos;
    if (ncands > MaxHoistedCands)
        return firstEqualAnyScalar(lane, n, cands, ncands, i);
    __m128i needles[MaxHoistedCands];
    for (unsigned c = 0; c < ncands; ++c)
        needles[c] = _mm_set1_epi64x(static_cast<long long>(cands[c]));
    for (; i + 2 <= n; i += 2) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(lane + i));
        unsigned both = 0;
        for (unsigned c = 0; c < ncands; ++c) {
            const unsigned m = static_cast<unsigned>(_mm_movemask_ps(
                _mm_castsi128_ps(_mm_cmpeq_epi32(v, needles[c]))));
            both |= m & (m >> 1) & 0x5u;
        }
        if (both != 0)
            return i +
                   (static_cast<unsigned>(std::countr_zero(both)) >> 1);
    }
    return firstEqualAnyScalar(lane, n, cands, ncands, i);
}

inline std::size_t
l0RunLengthVector(const MemRef *refs, std::size_t n, VAddr lo,
                  bool stores_ok, std::size_t i)
{
    // Unsigned 64-bit range checks are not worth emulating pre-AVX2.
    return l0RunLengthScalar(refs, n, lo, stores_ok, i);
}

#elif defined(MIXTLB_SIMD_NEON)

// mixcheck: hot
inline std::size_t
firstEqualVector(const std::uint64_t *lane, std::size_t n,
                 std::uint64_t tag, std::size_t i)
{
    const uint64x2_t needle = vdupq_n_u64(tag);
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t eq = vceqq_u64(vld1q_u64(lane + i), needle);
        // Lane 0 checked before lane 1: lowest index wins.
        if (vgetq_lane_u64(eq, 0) != 0)
            return i;
        if (vgetq_lane_u64(eq, 1) != 0)
            return i + 1;
    }
    return firstEqualScalar(lane, n, tag, i);
}

// mixcheck: hot
inline std::size_t
firstEqualAnyVector(const std::uint64_t *lane, std::size_t n,
                    const std::uint64_t *cands, unsigned ncands,
                    std::size_t i)
{
    if (ncands == 0)
        return npos;
    if (ncands > MaxHoistedCands)
        return firstEqualAnyScalar(lane, n, cands, ncands, i);
    uint64x2_t needles[MaxHoistedCands];
    for (unsigned c = 0; c < ncands; ++c)
        needles[c] = vdupq_n_u64(cands[c]);
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t v = vld1q_u64(lane + i);
        uint64x2_t eq = vceqq_u64(v, needles[0]);
        for (unsigned c = 1; c < ncands; ++c)
            eq = vorrq_u64(eq, vceqq_u64(v, needles[c]));
        if (vgetq_lane_u64(eq, 0) != 0)
            return i;
        if (vgetq_lane_u64(eq, 1) != 0)
            return i + 1;
    }
    return firstEqualAnyScalar(lane, n, cands, ncands, i);
}

inline std::size_t
l0RunLengthVector(const MemRef *refs, std::size_t n, VAddr lo,
                  bool stores_ok, std::size_t i)
{
    return l0RunLengthScalar(refs, n, lo, stores_ok, i);
}

#endif

// ---------------------------------------------------------------------
// Public dispatchers. One relaxed atomic load per call decides between
// the compiled vector kernel and the scalar reference — stricter than
// the "re-read at batch boundaries" contract the L0 filter toggle
// uses, so flipping MIXTLB_FORCE_SCALAR mid-run takes effect on the
// very next probe.
// ---------------------------------------------------------------------

/**
 * Lowest index in [start, n) with lane[i] == tag, else npos.
 */
// mixcheck: hot
inline std::size_t
firstEqual(const std::uint64_t *lane, std::size_t n, std::uint64_t tag,
           std::size_t start = 0)
{
#if defined(MIXTLB_SIMD_AVX2) || defined(MIXTLB_SIMD_SSE2) || \
    defined(MIXTLB_SIMD_NEON)
    if (!scalarForced()) [[likely]]
        return firstEqualVector(lane, n, tag, start);
#endif
    return firstEqualScalar(lane, n, tag, start);
}

/**
 * Lowest index in [start, n) with lane[i] equal to *any* of the
 * @p ncands candidate tags, else npos.
 */
// mixcheck: hot
inline std::size_t
firstEqualAny(const std::uint64_t *lane, std::size_t n,
              const std::uint64_t *cands, unsigned ncands,
              std::size_t start = 0)
{
#if defined(MIXTLB_SIMD_AVX2) || defined(MIXTLB_SIMD_SSE2) || \
    defined(MIXTLB_SIMD_NEON)
    if (!scalarForced()) [[likely]]
        return firstEqualAnyVector(lane, n, cands, ncands, start);
#endif
    return firstEqualAnyScalar(lane, n, cands, ncands, start);
}

/**
 * Number of leading refs in [0, n) the armed L0 filter can replay:
 * vaddr in [lo, lo + 4KB) and (stores_ok || a load). Returns the index
 * of the first ref that breaks the run (n if none does).
 */
// mixcheck: hot
inline std::size_t
l0RunLength(const MemRef *refs, std::size_t n, VAddr lo, bool stores_ok)
{
    // Random-access streams break the run at ref 0 or 1 almost every
    // call, where vector setup (broadcasts + permutes) costs more than
    // it saves; confirm one vector width scalar first so short runs pay
    // exactly the old per-ref filter test, and only sustained runs
    // enter the wide kernel.
    const std::size_t head = n < 4 ? n : 4;
    const std::size_t run = l0RunLengthScalar(refs, head, lo, stores_ok, 0);
    if (run < head || run == n)
        return run;
#if defined(MIXTLB_SIMD_AVX2) || defined(MIXTLB_SIMD_SSE2) || \
    defined(MIXTLB_SIMD_NEON)
    if (!scalarForced()) [[likely]]
        return l0RunLengthVector(refs, n, lo, stores_ok, run);
#endif
    return l0RunLengthScalar(refs, n, lo, stores_ok, run);
}

} // namespace mixtlb::simd

#endif // MIXTLB_COMMON_SIMD_HH
