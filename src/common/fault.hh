/**
 * @file
 * Deterministic fault injection: the controlled way to exercise the
 * simulator's degradation and recovery paths (THS 4KB fallback,
 * reservation abandonment, sweep-point quarantine) instead of waiting
 * for them to fire incidentally.
 *
 * Design rules:
 *  - Faults are *scheduled from the sweep-point seed*, never from
 *    wall-clock time or thread identity. Whether draw number n of site
 *    s fires is a pure function of (seed, s, n), so `--jobs 1` and
 *    `--jobs N` see the identical fault schedule, and a retried point
 *    re-experiences exactly the same faults.
 *  - Injection is scoped: a FaultScope installs a thread-local session
 *    for the duration of one simulation point. Code outside any scope
 *    (unit tests, examples) never faults.
 *  - Sites are enumerated and named; `--inject site=rate,...` enables
 *    them. A rate may be pinned to a single grid point with
 *    `site=rate@point` (e.g. `buddy-alloc=1.0@17` starves exactly
 *    point 17 of the sweep).
 *
 * The scope also carries the per-point deadline for the sweep
 * watchdog: deadlineExpired() is polled from the simulation loops so
 * a wedged point can be abandoned cooperatively (raised as a
 * recoverable SimError, not a process abort).
 */

#ifndef MIXTLB_COMMON_FAULT_HH
#define MIXTLB_COMMON_FAULT_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace mixtlb::fault
{

/** Every named injection point in the simulator. */
enum class Site : std::uint8_t
{
    BuddyAlloc,    ///< physical frame/superpage allocation fails
    WalkLatency,   ///< a page-table walk takes a latency spike
    PressureBurst, ///< memhog transiently hogs a burst of free memory
    TraceCorrupt,  ///< a trace-file record arrives corrupted
    DemoteStorm,   ///< the OS demotes resident superpages under duress
};

/** Number of sites (array extent for per-site state). */
inline constexpr std::size_t SiteCount = 5;

const char *siteName(Site site);
std::optional<Site> siteFromName(const std::string &name);

/** Per-site injection rate, optionally pinned to one sweep point. */
struct SiteRate
{
    double rate = 0.0;        ///< probability per draw, in [0, 1]
    bool pointLimited = false;///< only inject at one grid point
    std::uint64_t point = 0;  ///< that grid point's index
};

/** A full injection configuration (what `--inject` parses into). */
struct FaultConfig
{
    std::array<SiteRate, SiteCount> sites{};

    /** True if any site has a nonzero rate. */
    bool any() const;

    const SiteRate &at(Site site) const
    {
        return sites[static_cast<std::size_t>(site)];
    }

    /**
     * Parse "site=rate[@point][,site=rate[@point]...]" (empty spec =
     * no injection). Unknown site names and malformed rates are
     * configuration errors and exit fatally.
     */
    static FaultConfig parse(const std::string &spec);
};

/**
 * Installs a deterministic fault session for the current thread, for
 * the duration of one simulation point. Nestable (the previous
 * session is restored on destruction); never shared across threads.
 */
class FaultScope
{
  public:
    /**
     * @param config the sites and rates to inject
     * @param seed the sweep point's deterministic seed
     * @param point_index the point's grid index (for @point pinning)
     * @param deadline_seconds cooperative per-point deadline;
     *        0 disables the watchdog
     */
    FaultScope(const FaultConfig &config, std::uint64_t seed,
               std::uint64_t point_index, double deadline_seconds = 0.0);
    ~FaultScope();

    FaultScope(const FaultScope &) = delete;
    FaultScope &operator=(const FaultScope &) = delete;

    /** Faults this scope has injected at @p site so far. */
    std::uint64_t fired(Site site) const;

    /** Per-site fired counts, indexed by Site. */
    std::array<std::uint64_t, SiteCount> firedCounts() const;

  private:
    struct Session
    {
        std::uint64_t seed = 0;
        /** Fire thresholds scaled to 2^64; 0 = site disabled. */
        std::array<std::uint64_t, SiteCount> thresholds{};
        std::array<std::uint64_t, SiteCount> draws{};
        std::array<std::uint64_t, SiteCount> fired{};
        bool deadlineArmed = false;
        std::chrono::steady_clock::time_point deadline{};
    };

    friend bool fire(Site site);
    friend bool armed(Site site);
    friend bool deadlineExpired();

    Session session_;
    FaultScope *previous_;
};

/**
 * Draw the next scheduled fault decision for @p site. Returns false
 * when no FaultScope is active on this thread or the site is off.
 */
bool fire(Site site);

/**
 * True if a FaultScope is active on this thread and @p site has a
 * nonzero rate. fire() on an unarmed site is side-effect-free (it
 * consumes no draw), so hot loops may hoist this check and skip the
 * per-event fire() call entirely without perturbing the schedule.
 */
bool armed(Site site);

/** True if the active scope's deadline is armed and has passed. */
bool deadlineExpired();

/** True if a FaultScope is active on the current thread. */
bool active();

} // namespace mixtlb::fault

#endif // MIXTLB_COMMON_FAULT_HH
