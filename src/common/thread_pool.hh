/**
 * @file
 * A fixed-size worker pool for running independent simulation points
 * concurrently (the sweep runner's engine). Tasks are plain
 * `std::function<void()>`; completion is observed with wait(). The
 * pool makes no fairness or ordering promises — callers that need
 * deterministic output must key results by task index, never by
 * completion order.
 */

#ifndef MIXTLB_COMMON_THREAD_POOL_HH
#define MIXTLB_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mixtlb
{

class ThreadPool
{
  public:
    /** @param threads worker count; 0 = hardware_concurrency. */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; it may start on another thread immediately. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. If any task threw,
     * the first exception (in completion order) is rethrown here.
     */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** hardware_concurrency with a floor of 1 (it may report 0). */
    static unsigned defaultThreads();

  private:
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t unfinished_ = 0; ///< queued + currently running
    std::exception_ptr firstError_;
    bool stopping_ = false;

    void workerLoop();
};

} // namespace mixtlb

#endif // MIXTLB_COMMON_THREAD_POOL_HH
