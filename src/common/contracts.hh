/**
 * @file
 * Checked contracts: the tiered invariant machinery the rest of the
 * simulator builds on.
 *
 * Tiers:
 *  - MIX_EXPECT(cond, fmt...) — an always-on, cheap precondition.
 *    Violations are programming/configuration errors: the message
 *    (with file/line and the failed expression) goes to stderr and the
 *    process exits with code 1, like fatal(). Use it where the old
 *    code reached for a raw assert() or an ad-hoc fatal_if().
 *  - MIX_AUDIT(cond, fmt...) — an expensive structural check. Only
 *    compiled in when the CMake option MIXTLB_AUDITS is ON, and only
 *    evaluated when the global runtime paranoia level is nonzero, so
 *    release builds pay nothing for it.
 *
 * Structural auditors (MixTlb::auditSets, BuddyAllocator::audit,
 * PageTable::audit, ...) are always compiled — they run off the hot
 * path, gated by the paranoia level — and accumulate findings into an
 * AuditReport so a single sweep reports *every* broken invariant, not
 * just the first. contracts::enforce() turns a non-empty report into a
 * fatal exit.
 *
 * Paranoia levels (the `--paranoia=N` bench flag):
 *  - 0: no checking beyond MIX_EXPECT (default).
 *  - 1: structural auditors run at simulation phase boundaries.
 *  - 2: additionally, every translation the TLB hierarchy returns is
 *    cross-checked against the map-based reference translator (the
 *    differential oracle).
 *  - 3: additionally, auditors also run periodically mid-run.
 */

#ifndef MIXTLB_COMMON_CONTRACTS_HH
#define MIXTLB_COMMON_CONTRACTS_HH

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace mixtlb
{

/**
 * The recoverable error tier: a failure of *one simulation point*, not
 * of the program. Raised with MIX_RAISE on per-point paths (warmup
 * OOM, trace corruption, deadline expiry, audit failure under a
 * resilient sweep) and caught by SweepRunner::runChecked, which
 * quarantines the point instead of killing the process. Contrast with
 * MIX_EXPECT / fatal(), which remain process-fatal for programming and
 * configuration errors.
 */
class SimError : public std::runtime_error
{
  public:
    SimError(std::string kind, std::string where, const std::string &msg)
        : std::runtime_error(where.empty() ? kind + ": " + msg
                                           : kind + ": " + where + ": " +
                                                 msg),
          kind_(std::move(kind)), where_(std::move(where))
    {}

    /** Stable machine-readable category ("oom", "deadline", ...). */
    const std::string &kind() const { return kind_; }

    /** Source location ("file.cc:123"), empty if not raised by macro. */
    const std::string &where() const { return where_; }

  private:
    std::string kind_;
    std::string where_;
};

} // namespace mixtlb

namespace mixtlb::contracts
{

/** Current global paranoia level (0 = contracts only, no audits). */
unsigned paranoia();

/** Set the global paranoia level (call before spawning sweep workers). */
void setParanoia(unsigned level);

/** Report a violated contract and exit(1). Used by the macros below. */
[[noreturn]] void violation(const char *file, int line, const char *expr,
                            const std::string &msg);

/**
 * Accumulates invariant violations found by one structural audit pass.
 * Auditors append through check()/fail(); callers decide whether a
 * non-empty report is fatal (enforce) or material for a test assertion.
 */
class AuditReport
{
  public:
    explicit AuditReport(std::string subject = "audit")
        : subject_(std::move(subject))
    {}

    /** Record one violation (prefer the MIX_AUDIT_CHECK macro). */
    void
    fail(const char *file, int line, const std::string &msg)
    {
        violations_.push_back(logging_detail::vformat(
            "%s:%d: %s", file, line, msg.c_str()));
    }

    bool ok() const { return violations_.empty(); }
    std::size_t numViolations() const { return violations_.size(); }
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }
    const std::string &subject() const { return subject_; }

    /** True if any recorded violation message contains @p needle. */
    bool mentions(const std::string &needle) const;

    /** Human-readable digest (at most @p max_shown violations). */
    std::string summary(std::size_t max_shown = 8) const;

  private:
    std::string subject_;
    std::vector<std::string> violations_;
};

/** Exit fatally (code 1) if @p report recorded any violation. */
void enforce(const AuditReport &report);

/**
 * Recoverable sibling of enforce(): throw SimError("audit") if
 * @p report recorded any violation, so a resilient sweep can
 * quarantine the offending point while other points keep running.
 */
void require(const AuditReport &report);

} // namespace mixtlb::contracts

/**
 * Always-on cheap precondition. On failure, prints the failed
 * expression, location, and a printf-formatted context message, then
 * exits with code 1.
 */
#define MIX_EXPECT(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::mixtlb::contracts::violation(                               \
                __FILE__, __LINE__, #cond,                                \
                ::mixtlb::logging_detail::vformat("" __VA_ARGS__));       \
        }                                                                 \
    } while (0)

/**
 * Raise a recoverable SimError of category @p kind (a short stable
 * string like "oom") with a printf-formatted message. Use on
 * per-point simulation paths where failure should quarantine the
 * point, not abort the process.
 */
#define MIX_RAISE(kind, ...)                                              \
    throw ::mixtlb::SimError(                                             \
        (kind),                                                           \
        ::mixtlb::logging_detail::vformat("%s:%d", __FILE__, __LINE__),   \
        ::mixtlb::logging_detail::vformat("" __VA_ARGS__))

/**
 * Record a failed structural invariant into an AuditReport without
 * aborting, so one audit pass surfaces every violation.
 */
#define MIX_AUDIT_CHECK(report, cond, ...)                                \
    do {                                                                  \
        if (!(cond)) {                                                    \
            (report).fail(__FILE__, __LINE__,                             \
                          ::mixtlb::logging_detail::vformat(              \
                              "" __VA_ARGS__));                           \
        }                                                                 \
    } while (0)

/**
 * Expensive inline structural check: compiled in only when the CMake
 * option MIXTLB_AUDITS is ON, evaluated only when paranoia > 0.
 */
#ifdef MIXTLB_AUDITS_ENABLED
#define MIX_AUDIT(cond, ...)                                              \
    do {                                                                  \
        if (::mixtlb::contracts::paranoia() > 0 && !(cond)) {             \
            ::mixtlb::contracts::violation(                               \
                __FILE__, __LINE__, #cond,                                \
                ::mixtlb::logging_detail::vformat("" __VA_ARGS__));       \
        }                                                                 \
    } while (0)
#else
#define MIX_AUDIT(cond, ...)                                              \
    do {                                                                  \
        (void)sizeof(!(cond));                                            \
    } while (0)
#endif // MIXTLB_AUDITS_ENABLED

#endif // MIXTLB_COMMON_CONTRACTS_HH
