/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — a simulator bug; aborts (may dump core).
 * fatal()  — a user/configuration error; exits with code 1.
 * warn()   — something works well enough but deserves attention.
 * inform() — status messages without any connotation of error.
 */

#ifndef MIXTLB_COMMON_LOGGING_HH
#define MIXTLB_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mixtlb
{

namespace logging_detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace logging_detail

} // namespace mixtlb

/** Report an internal simulator bug and abort. */
#define panic(...)                                                        \
    ::mixtlb::logging_detail::panicImpl(                                  \
        __FILE__, __LINE__, ::mixtlb::logging_detail::vformat(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define fatal(...)                                                        \
    ::mixtlb::logging_detail::fatalImpl(                                  \
        __FILE__, __LINE__, ::mixtlb::logging_detail::vformat(__VA_ARGS__))

/** Report a condition if it is false, as a panic. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic(__VA_ARGS__);                                           \
    } while (0)

#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                           \
    } while (0)

/** Warn about questionable but survivable behaviour. */
#define warn(...)                                                         \
    ::mixtlb::logging_detail::warnImpl(                                   \
        ::mixtlb::logging_detail::vformat(__VA_ARGS__))

/** Print an informational status message. */
#define inform(...)                                                       \
    ::mixtlb::logging_detail::informImpl(                                 \
        ::mixtlb::logging_detail::vformat(__VA_ARGS__))

#endif // MIXTLB_COMMON_LOGGING_HH
