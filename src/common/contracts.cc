#include "contracts.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mixtlb::contracts
{

namespace
{

/**
 * Read mostly from sweep worker threads; written once by the driver
 * before workers start. Atomic so concurrent readers are race-free
 * under TSan even if a test flips it mid-process.
 */
std::atomic<unsigned> g_paranoia{0};

} // anonymous namespace

unsigned
paranoia()
{
    return g_paranoia.load(std::memory_order_relaxed);
}

void
setParanoia(unsigned level)
{
    g_paranoia.store(level, std::memory_order_relaxed);
}

void
violation(const char *file, int line, const char *expr,
          const std::string &msg)
{
    std::fprintf(stderr, "contract violation: %s:%d: (%s)%s%s\n", file,
                 line, expr, msg.empty() ? "" : ": ",
                 msg.c_str());
    std::exit(1);
}

bool
AuditReport::mentions(const std::string &needle) const
{
    for (const auto &violation : violations_) {
        if (violation.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

std::string
AuditReport::summary(std::size_t max_shown) const
{
    std::string out = logging_detail::vformat(
        "%s: %zu invariant violation(s)", subject_.c_str(),
        violations_.size());
    std::size_t shown = 0;
    for (const auto &violation : violations_) {
        if (shown++ >= max_shown) {
            out += logging_detail::vformat(
                "\n  ... and %zu more",
                violations_.size() - max_shown);
            break;
        }
        out += "\n  " + violation;
    }
    return out;
}

void
enforce(const AuditReport &report)
{
    if (report.ok())
        return;
    std::fprintf(stderr, "audit failed: %s\n",
                 report.summary().c_str());
    std::exit(1);
}

void
require(const AuditReport &report)
{
    if (report.ok())
        return;
    throw SimError("audit", "", report.summary());
}

} // namespace mixtlb::contracts
