/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A xoshiro256** core plus the distributions the workload generators need
 * (uniform integers, doubles, and a Zipfian sampler for key-value
 * workloads). All generators are seeded explicitly so every experiment is
 * reproducible.
 */

#ifndef MIXTLB_COMMON_RANDOM_HH
#define MIXTLB_COMMON_RANDOM_HH

#include <bit>
#include <cstdint>
#include <vector>

namespace mixtlb
{

/** xoshiro256** pseudo-random generator (public-domain algorithm). */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); @p bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p. */
    bool chance(double p);

  private:
    std::uint64_t s[4];

    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        // std::rotl is defined for every k; the hand-rolled
        // (x << k) | (x >> (64 - k)) is UB at k == 0 or k == 64.
        return std::rotl(x, k);
    }
};

/**
 * Zipfian sampler over [0, n) with skew parameter theta, using the
 * Gray et al. rejection-free method (as popularised by YCSB). Heavier
 * items get lower ranks.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed);

    /** Draw one Zipf-distributed rank in [0, n). */
    std::uint64_t sample();

    std::uint64_t itemCount() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    Rng rng_;

    static double zeta(std::uint64_t n, double theta);
};

} // namespace mixtlb

#endif // MIXTLB_COMMON_RANDOM_HH
