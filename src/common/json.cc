#include "json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace mixtlb::json
{

Value
Value::object()
{
    Value value;
    value.kind_ = Kind::Object;
    return value;
}

Value
Value::array()
{
    Value value;
    value.kind_ = Kind::Array;
    return value;
}

Value &
Value::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    panic_if(kind_ != Kind::Object,
             "json: operator[] on a non-object value");
    for (auto &member : children_) {
        if (member.first == key)
            return member.second;
    }
    children_.emplace_back(key, Value{});
    return children_.back().second;
}

Value &
Value::push(Value element)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    panic_if(kind_ != Kind::Array, "json: push on a non-array value");
    children_.emplace_back(std::string{}, std::move(element));
    return children_.back().second;
}

std::string
Value::escape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (unsigned char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
Value::dumpNumber(std::string &out, double value)
{
    if (!std::isfinite(value)) {
        out += "null"; // JSON has no Inf/NaN; null keeps parsers happy
        return;
    }
    char buf[40];
    // Integers (the common case for counters) print exactly; the rest
    // get enough digits to round-trip a double.
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    }
    out += buf;
}

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent)
                              * (static_cast<std::size_t>(depth) + 1),
                          ' ');
    const std::string close_pad(
        static_cast<std::size_t>(indent)
            * static_cast<std::size_t>(depth),
        ' ');
    const char *newline = indent > 0 ? "\n" : "";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        dumpNumber(out, number_);
        break;
      case Kind::String:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
      case Kind::Array:
      case Kind::Object: {
        const bool is_object = kind_ == Kind::Object;
        out += is_object ? '{' : '[';
        bool first = true;
        for (const auto &child : children_) {
            if (!first)
                out += ',';
            first = false;
            out += newline;
            out += indent > 0 ? pad : "";
            if (is_object) {
                out += '"';
                out += escape(child.first);
                out += indent > 0 ? "\": " : "\":";
            }
            child.second.dumpTo(out, indent, depth + 1);
        }
        if (!children_.empty()) {
            out += newline;
            out += indent > 0 ? close_pad : "";
        }
        out += is_object ? '}' : ']';
        break;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

bool
writeFile(const std::string &path, const Value &value)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    std::string text = value.dump();
    text += '\n';
    bool ok = std::fwrite(text.data(), 1, text.size(), file)
              == text.size();
    ok = std::fclose(file) == 0 && ok;
    return ok;
}

} // namespace mixtlb::json
