#include "json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace mixtlb::json
{

namespace
{

/**
 * Recursive-descent parser over the serialised forms dump() emits
 * (which is standard JSON, so any conforming document parses).
 */
struct Parser
{
    const char *cur;
    const char *end;
    int depth = 0;

    /** Generous for result documents; guards runaway recursion. */
    static constexpr int MaxDepth = 64;

    void
    skipWs()
    {
        while (cur < end && (*cur == ' ' || *cur == '\t' ||
                             *cur == '\n' || *cur == '\r')) {
            cur++;
        }
    }

    bool
    literal(const char *text)
    {
        const char *p = cur;
        while (*text) {
            if (p >= end || *p != *text)
                return false;
            p++;
            text++;
        }
        cur = p;
        return true;
    }

    static void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    hex4(std::uint32_t &out)
    {
        out = 0;
        for (int i = 0; i < 4; i++) {
            if (cur >= end)
                return false;
            char c = *cur++;
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return false;
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (cur >= end || *cur != '"')
            return false;
        cur++;
        while (cur < end && *cur != '"') {
            char c = *cur++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (cur >= end)
                return false;
            char esc = *cur++;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                std::uint32_t cp;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    std::uint32_t lo;
                    if (!literal("\\u") || !hex4(lo) || lo < 0xdc00 ||
                        lo > 0xdfff) {
                        return false;
                    }
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return false;
            }
        }
        if (cur >= end)
            return false;
        cur++; // closing quote
        return true;
    }

    bool
    parseValue(Value &out)
    {
        if (depth >= MaxDepth)
            return false;
        skipWs();
        if (cur >= end)
            return false;
        switch (*cur) {
          case 'n':
            return literal("null");
          case 't':
            if (!literal("true"))
                return false;
            out = Value(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = Value(false);
            return true;
          case '"': {
            std::string text;
            if (!parseString(text))
                return false;
            out = Value(std::move(text));
            return true;
          }
          case '[': {
            cur++;
            out = Value::array();
            depth++;
            skipWs();
            if (cur < end && *cur == ']') {
                cur++;
                depth--;
                return true;
            }
            while (true) {
                Value element;
                if (!parseValue(element))
                    return false;
                out.push(std::move(element));
                skipWs();
                if (cur >= end)
                    return false;
                if (*cur == ',') {
                    cur++;
                    continue;
                }
                if (*cur == ']') {
                    cur++;
                    depth--;
                    return true;
                }
                return false;
            }
          }
          case '{': {
            cur++;
            out = Value::object();
            depth++;
            skipWs();
            if (cur < end && *cur == '}') {
                cur++;
                depth--;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (cur >= end || *cur != ':')
                    return false;
                cur++;
                Value member;
                if (!parseValue(member))
                    return false;
                out[key] = std::move(member);
                skipWs();
                if (cur >= end)
                    return false;
                if (*cur == ',') {
                    cur++;
                    continue;
                }
                if (*cur == '}') {
                    cur++;
                    depth--;
                    return true;
                }
                return false;
            }
          }
          default: {
            char *parsed_end = nullptr;
            double number = std::strtod(cur, &parsed_end);
            if (parsed_end == cur || parsed_end > end)
                return false;
            cur = parsed_end;
            out = Value(number);
            return true;
          }
        }
    }
};

} // anonymous namespace

Value
Value::object()
{
    Value value;
    value.kind_ = Kind::Object;
    return value;
}

Value
Value::array()
{
    Value value;
    value.kind_ = Kind::Array;
    return value;
}

std::optional<Value>
Value::parse(const std::string &text)
{
    Parser parser{text.c_str(), text.c_str() + text.size()};
    Value value;
    if (!parser.parseValue(value))
        return std::nullopt;
    parser.skipWs();
    if (parser.cur != parser.end)
        return std::nullopt; // trailing garbage
    return value;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &member : children_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

Value &
Value::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    panic_if(kind_ != Kind::Object,
             "json: operator[] on a non-object value");
    for (auto &member : children_) {
        if (member.first == key)
            return member.second;
    }
    children_.emplace_back(key, Value{});
    return children_.back().second;
}

Value &
Value::push(Value element)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    panic_if(kind_ != Kind::Array, "json: push on a non-array value");
    children_.emplace_back(std::string{}, std::move(element));
    return children_.back().second;
}

std::string
Value::escape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (unsigned char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
Value::dumpNumber(std::string &out, double value)
{
    if (!std::isfinite(value)) {
        out += "null"; // JSON has no Inf/NaN; null keeps parsers happy
        return;
    }
    char buf[40];
    // Integers (the common case for counters) print exactly; the rest
    // get enough digits to round-trip a double.
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    }
    out += buf;
}

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent)
                              * (static_cast<std::size_t>(depth) + 1),
                          ' ');
    const std::string close_pad(
        static_cast<std::size_t>(indent)
            * static_cast<std::size_t>(depth),
        ' ');
    const char *newline = indent > 0 ? "\n" : "";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        dumpNumber(out, number_);
        break;
      case Kind::String:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
      case Kind::Array:
      case Kind::Object: {
        const bool is_object = kind_ == Kind::Object;
        out += is_object ? '{' : '[';
        bool first = true;
        for (const auto &child : children_) {
            if (!first)
                out += ',';
            first = false;
            out += newline;
            out += indent > 0 ? pad : "";
            if (is_object) {
                out += '"';
                out += escape(child.first);
                out += indent > 0 ? "\": " : "\":";
            }
            child.second.dumpTo(out, indent, depth + 1);
        }
        if (!children_.empty()) {
            out += newline;
            out += indent > 0 ? close_pad : "";
        }
        out += is_object ? '}' : ']';
        break;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

bool
writeFile(const std::string &path, const Value &value)
{
    // Write-then-rename: a crash mid-write leaves only the temp file
    // behind, never a truncated document at the final path.
    const std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "w");
    if (!file)
        return false;
    std::string text = value.dump();
    text += '\n';
    bool ok = std::fwrite(text.data(), 1, text.size(), file)
              == text.size();
    ok = std::fflush(file) == 0 && ok;
    ok = std::fclose(file) == 0 && ok;
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

} // namespace mixtlb::json
