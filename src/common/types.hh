/**
 * @file
 * Fundamental address and page-size types for the mixtlb simulator.
 *
 * All addresses model an x86-64 machine with 48-bit virtual and 48-bit
 * physical addresses and the three architectural page sizes (4KB, 2MB,
 * 1GB). Full 52-bit physical addresses extend identically (Sec. 4.1 of
 * the paper).
 */

#ifndef MIXTLB_COMMON_TYPES_HH
#define MIXTLB_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace mixtlb
{

/** A virtual address (byte granularity). */
using VAddr = std::uint64_t;

/** A physical address (byte granularity). */
using PAddr = std::uint64_t;

/** A virtual page number in 4KB-frame units. */
using Vpn = std::uint64_t;

/** A physical frame number in 4KB-frame units. */
using Pfn = std::uint64_t;

/** Simulation cycle / tick count. */
using Cycles = std::uint64_t;

/**
 * An address-space identifier tagging TLB/PWC entries so translations
 * from different processes can coexist (x86 PCID / ARM ASID). ASID 0 is
 * the single-process default every structure starts in.
 */
using Asid = std::uint16_t;

/** Number of bits in a 4KB page offset. */
constexpr unsigned PageShift4K = 12;
/** Number of bits in a 2MB page offset. */
constexpr unsigned PageShift2M = 21;
/** Number of bits in a 1GB page offset. */
constexpr unsigned PageShift1G = 30;

constexpr std::uint64_t PageBytes4K = 1ULL << PageShift4K;
constexpr std::uint64_t PageBytes2M = 1ULL << PageShift2M;
constexpr std::uint64_t PageBytes1G = 1ULL << PageShift1G;

/** 4KB frames per 2MB superpage. */
constexpr std::uint64_t Frames2M = 1ULL << (PageShift2M - PageShift4K);
/** 4KB frames per 1GB superpage. */
constexpr std::uint64_t Frames1G = 1ULL << (PageShift1G - PageShift4K);

/** Bytes per cache line; a line holds 8 PTEs of 8 bytes each. */
constexpr unsigned CacheLineBytes = 64;
/** Page-table entries that fit in one cache line. */
constexpr unsigned PtesPerCacheLine = 8;

/**
 * The architectural page sizes. The 2-bit encoding matches the page-size
 * field a MIX TLB entry stores (Figure 5 of the paper).
 */
enum class PageSize : std::uint8_t
{
    Size4K = 0,
    Size2M = 1,
    Size1G = 2,
};

/** Number of distinct architectural page sizes. */
constexpr unsigned NumPageSizes = 3;

/** Page-offset bit count for a given page size. */
constexpr unsigned
pageShift(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return PageShift4K;
      case PageSize::Size2M: return PageShift2M;
      case PageSize::Size1G: return PageShift1G;
    }
    return PageShift4K;
}

/** Page size in bytes. */
constexpr std::uint64_t
pageBytes(PageSize size)
{
    return 1ULL << pageShift(size);
}

/** Number of constituent 4KB frames ("N" in Sec. 3 of the paper). */
constexpr std::uint64_t
framesPerPage(PageSize size)
{
    return pageBytes(size) >> PageShift4K;
}

/** Human-readable name ("4K", "2M", "1G"). */
inline const char *
pageSizeName(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return "4K";
      case PageSize::Size2M: return "2M";
      case PageSize::Size1G: return "1G";
    }
    return "?";
}

/** Virtual page number (in that page size's units) of an address. */
constexpr std::uint64_t
vpnOf(VAddr vaddr, PageSize size)
{
    return vaddr >> pageShift(size);
}

/** 4KB-granularity virtual page number of an address. */
constexpr Vpn
vpn4kOf(VAddr vaddr)
{
    return vaddr >> PageShift4K;
}

/** Base virtual address of the page containing @p vaddr. */
constexpr VAddr
pageBase(VAddr vaddr, PageSize size)
{
    return vaddr & ~(pageBytes(size) - 1);
}

/** Offset of @p vaddr within its page. */
constexpr std::uint64_t
pageOffset(VAddr vaddr, PageSize size)
{
    return vaddr & (pageBytes(size) - 1);
}

/** Memory access kinds carried by workload traces. */
enum class AccessType : std::uint8_t
{
    Read = 0,
    Write = 1,
};

/** A single memory reference produced by a workload generator. */
struct MemRef
{
    VAddr vaddr = 0;
    AccessType type = AccessType::Read;
};

} // namespace mixtlb

#endif // MIXTLB_COMMON_TYPES_HH
