#include "stats.hh"

#include <algorithm>
#include <iomanip>

#include "logging.hh"

namespace mixtlb::stats
{

void
Distribution::init(double step, unsigned nbuckets)
{
    panic_if(step <= 0.0 || nbuckets == 0, "bad Distribution geometry");
    step_ = step;
    buckets_.assign(nbuckets + 1, 0); // final bucket is overflow
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (buckets_.empty())
        init(1.0, 32);
    if (samples_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    samples_ += count;
    sum_ += v * count;
    auto idx = static_cast<std::size_t>(v / step_);
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    buckets_[idx] += count;
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    samples_ = 0;
    sum_ = min_ = max_ = 0.0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

StatGroup::~StatGroup()
{
    if (parent_) {
        auto &sibs = parent_->children_;
        sibs.erase(std::remove(sibs.begin(), sibs.end(), this), sibs.end());
    }
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    panic_if(counters_.count(name), "duplicate scalar stat %s",
             name.c_str());
    auto [it, inserted] = scalars_.try_emplace(name);
    panic_if(!inserted, "duplicate scalar stat %s", name.c_str());
    it->second.desc = desc;
    return it->second.stat;
}

Counter &
StatGroup::addCounter(const std::string &name, const std::string &desc)
{
    panic_if(scalars_.count(name), "duplicate counter stat %s",
             name.c_str());
    auto [it, inserted] = counters_.try_emplace(name);
    panic_if(!inserted, "duplicate counter stat %s", name.c_str());
    it->second.desc = desc;
    return it->second.stat;
}

Distribution &
StatGroup::addDistribution(const std::string &name, const std::string &desc,
                           double step, unsigned nbuckets)
{
    auto [it, inserted] = dists_.try_emplace(name);
    panic_if(!inserted, "duplicate distribution stat %s", name.c_str());
    it->second.desc = desc;
    it->second.stat.init(step, nbuckets);
    return it->second.stat;
}

void
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      Formula formula)
{
    auto [it, inserted] = formulas_.try_emplace(name);
    panic_if(!inserted, "duplicate formula stat %s", name.c_str());
    it->second.desc = desc;
    it->second.formula = std::move(formula);
}

const Scalar &
StatGroup::scalar(const std::string &name) const
{
    // Dotted names descend into child groups ("walker.walks").
    auto dot = name.find('.');
    if (dot != std::string::npos) {
        const std::string head = name.substr(0, dot);
        for (const auto *child : children_) {
            if (child->name_ == head)
                return child->scalar(name.substr(dot + 1));
        }
        panic("unknown stat group %s under %s",
              head.c_str(), path().c_str());
    }
    auto it = scalars_.find(name);
    panic_if(it == scalars_.end(), "unknown scalar stat %s.%s",
             path().c_str(), name.c_str());
    return it->second.stat;
}

const Counter &
StatGroup::counter(const std::string &name) const
{
    auto dot = name.find('.');
    if (dot != std::string::npos) {
        const std::string head = name.substr(0, dot);
        for (const auto *child : children_) {
            if (child->name_ == head)
                return child->counter(name.substr(dot + 1));
        }
        panic("unknown stat group %s under %s",
              head.c_str(), path().c_str());
    }
    auto it = counters_.find(name);
    panic_if(it == counters_.end(), "unknown counter stat %s.%s",
             path().c_str(), name.c_str());
    return it->second.stat;
}

double
StatGroup::value(const std::string &name) const
{
    auto dot = name.find('.');
    if (dot != std::string::npos) {
        const std::string head = name.substr(0, dot);
        for (const auto *child : children_) {
            if (child->name_ == head)
                return child->value(name.substr(dot + 1));
        }
        panic("unknown stat group %s under %s",
              head.c_str(), path().c_str());
    }
    if (auto it = counters_.find(name); it != counters_.end())
        return static_cast<double>(it->second.stat.value());
    auto it = scalars_.find(name);
    panic_if(it == scalars_.end(), "unknown stat %s.%s",
             path().c_str(), name.c_str());
    return it->second.stat.value();
}

std::string
StatGroup::path() const
{
    if (!parent_)
        return name_;
    return parent_->path() + "." + name_;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = path();
    for (const auto &[name, entry] : counters_) {
        os << std::left << std::setw(48) << (prefix + "." + name)
           << std::setw(16) << entry.stat.value()
           << "# " << entry.desc << "\n";
    }
    for (const auto &[name, entry] : scalars_) {
        os << std::left << std::setw(48) << (prefix + "." + name)
           << std::setw(16) << entry.stat.value()
           << "# " << entry.desc << "\n";
    }
    for (const auto &[name, entry] : formulas_) {
        os << std::left << std::setw(48) << (prefix + "." + name)
           << std::setw(16) << entry.formula()
           << "# " << entry.desc << "\n";
    }
    for (const auto &[name, entry] : dists_) {
        const auto &d = entry.stat;
        os << std::left << std::setw(48) << (prefix + "." + name)
           << "samples=" << d.samples() << " mean=" << d.mean()
           << " min=" << d.min() << " max=" << d.max()
           << " # " << entry.desc << "\n";
    }
    for (const auto *child : children_)
        child->dump(os);
}

void
StatGroup::resetStats()
{
    for (auto &[name, entry] : scalars_)
        entry.stat.reset();
    for (auto &[name, entry] : counters_)
        entry.stat.reset();
    for (auto &[name, entry] : dists_)
        entry.stat.reset();
    for (auto *child : children_)
        child->resetStats();
}

} // namespace mixtlb::stats
