/**
 * @file
 * Small integer math helpers used throughout the simulator.
 *
 * Every helper states its domain as a MIX_EXPECT contract: passing 0
 * to floorLog2 (countl_zero(0) == 64 underflows the subtraction), a
 * non-power-of-two alignment to alignDown/alignUp, or an inverted bit
 * range to bits()/insertBits() used to silently produce garbage; now
 * it dies with the offending value. The checks are branch-predictable
 * compares on cold paths of already-branchy helpers, cheap enough to
 * keep always-on. A contract reached during constant evaluation is a
 * compile error, which is exactly what a bad constexpr argument
 * deserves.
 */

#ifndef MIXTLB_COMMON_INTMATH_HH
#define MIXTLB_COMMON_INTMATH_HH

#include <bit>
#include <cstdint>

#include "common/contracts.hh"

namespace mixtlb
{

/** True if @p n is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** floor(log2(n)); @p n must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    MIX_EXPECT(n != 0, "floorLog2(0) is undefined");
    return 63u - static_cast<unsigned>(std::countl_zero(n));
}

/** ceil(log2(n)); @p n must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    MIX_EXPECT(n != 0, "ceilLog2(0) is undefined");
    return n == 1 ? 0 : floorLog2(n - 1) + 1;
}

/** ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    MIX_EXPECT(b != 0, "divCeil by zero");
    return (a + b - 1) / b;
}

/**
 * 2^n as a 64-bit value; @p n must be < 64. The sanctioned spelling
 * of `1ULL << n` when n is not a compile-time constant: shifting by
 * the operand width is UB, and both prior shift bugs (COLT colt4k,
 * SkewTlb::rowOf) were exactly that.
 */
constexpr std::uint64_t
pow2(unsigned n)
{
    MIX_EXPECT(n < 64, "pow2(%u) overflows a 64-bit value", n);
    return 1ULL << (n & 63);
}

/** @p val << @p n with a guarded shift amount (n < 64). */
constexpr std::uint64_t
shiftLeft(std::uint64_t val, unsigned n)
{
    MIX_EXPECT(n < 64, "shiftLeft by %u bits is undefined", n);
    return val << (n & 63);
}

/** @p val >> @p n with a guarded shift amount (n < 64). */
constexpr std::uint64_t
shiftRight(std::uint64_t val, unsigned n)
{
    MIX_EXPECT(n < 64, "shiftRight by %u bits is undefined", n);
    return val >> (n & 63);
}

/** Round @p a down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t a, std::uint64_t align)
{
    MIX_EXPECT(isPowerOf2(align),
               "alignDown to non-power-of-two %llu",
               static_cast<unsigned long long>(align));
    return a & ~(align - 1);
}

/** Round @p a up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t a, std::uint64_t align)
{
    MIX_EXPECT(isPowerOf2(align),
               "alignUp to non-power-of-two %llu",
               static_cast<unsigned long long>(align));
    return (a + align - 1) & ~(align - 1);
}

/** Extract bits [hi:lo] (inclusive) of @p val; needs 63 >= hi >= lo. */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned hi, unsigned lo)
{
    MIX_EXPECT(hi >= lo && hi <= 63, "bits[%u:%u] is not a bit range",
               hi, lo);
    return (val >> lo) & ((hi - lo >= 63) ? ~0ULL
                                          : ((1ULL << (hi - lo + 1)) - 1));
}

/** Insert @p src into bits [hi:lo] of @p dst; needs 63 >= hi >= lo. */
constexpr std::uint64_t
insertBits(std::uint64_t dst, unsigned hi, unsigned lo, std::uint64_t src)
{
    MIX_EXPECT(hi >= lo && hi <= 63,
               "insertBits[%u:%u] is not a bit range", hi, lo);
    std::uint64_t mask = ((hi - lo >= 63) ? ~0ULL
                                          : ((1ULL << (hi - lo + 1)) - 1))
                         << lo;
    return (dst & ~mask) | ((src << lo) & mask);
}

} // namespace mixtlb

#endif // MIXTLB_COMMON_INTMATH_HH
