/**
 * @file
 * Small integer math helpers used throughout the simulator.
 */

#ifndef MIXTLB_COMMON_INTMATH_HH
#define MIXTLB_COMMON_INTMATH_HH

#include <bit>
#include <cstdint>

namespace mixtlb
{

/** True if @p n is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** floor(log2(n)); @p n must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    return 63u - static_cast<unsigned>(std::countl_zero(n));
}

/** ceil(log2(n)); @p n must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return n <= 1 ? 0 : floorLog2(n - 1) + 1;
}

/** ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Round @p a up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Extract bits [hi:lo] (inclusive) of @p val. */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned hi, unsigned lo)
{
    return (val >> lo) & ((hi - lo >= 63) ? ~0ULL
                                          : ((1ULL << (hi - lo + 1)) - 1));
}

/** Insert @p src into bits [hi:lo] of @p dst. */
constexpr std::uint64_t
insertBits(std::uint64_t dst, unsigned hi, unsigned lo, std::uint64_t src)
{
    std::uint64_t mask = ((hi - lo >= 63) ? ~0ULL
                                          : ((1ULL << (hi - lo + 1)) - 1))
                         << lo;
    return (dst & ~mask) | ((src << lo) & mask);
}

} // namespace mixtlb

#endif // MIXTLB_COMMON_INTMATH_HH
