#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace mixtlb
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    panic_if(bound == 0, "nextBounded(0)");
    // Multiply-shift bounded generation; bias is negligible for our use.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    panic_if(lo > hi, "nextRange(%llu, %llu)",
             (unsigned long long)lo, (unsigned long long)hi);
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return nextDouble() < p;
}

double
ZipfSampler::zeta(std::uint64_t n, double theta)
{
    // Direct sum for small n; two-point interpolation keeps construction
    // cheap for big item counts while preserving the distribution shape.
    double sum = 0.0;
    if (n <= 1'000'000) {
        for (std::uint64_t i = 1; i <= n; i++)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        return sum;
    }
    for (std::uint64_t i = 1; i <= 1'000'000; i++)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    // Integral tail approximation of sum_{1e6+1}^{n} x^-theta.
    double a = 1e6, b = static_cast<double>(n);
    if (theta == 1.0)
        sum += std::log(b / a);
    else
        sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta))
               / (1.0 - theta);
    return sum;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed)
{
    panic_if(n == 0, "ZipfSampler over empty domain");
    zetan_ = zeta(n, theta);
    const double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta))
           / (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfSampler::sample()
{
    const double u = rng_.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_)
        * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

} // namespace mixtlb
