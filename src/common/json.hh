/**
 * @file
 * A minimal JSON document builder (no third-party dependencies) for
 * the benches' machine-readable result files. Supports exactly what
 * result emission needs: objects (insertion-ordered), arrays, strings,
 * numbers, booleans, and null, serialised with proper escaping so any
 * standard parser can ingest the output.
 *
 * Also a matching reader: Value::parse() plus the const accessors,
 * enough for the sweep harness to reload its own checkpoint files on
 * `--resume` (and for tests to round-trip documents). Numbers are
 * stored as double — exactly what the writer emits — so a parse of our
 * own output is lossless.
 */

#ifndef MIXTLB_COMMON_JSON_HH
#define MIXTLB_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mixtlb::json
{

class Value
{
  public:
    /** Default-constructed values serialise as null. */
    Value() : kind_(Kind::Null) {}
    Value(bool value) : kind_(Kind::Bool), bool_(value) {}
    Value(double value) : kind_(Kind::Number), number_(value) {}
    Value(std::int64_t value)
        : kind_(Kind::Number), number_(static_cast<double>(value)) {}
    Value(std::uint64_t value)
        : kind_(Kind::Number), number_(static_cast<double>(value)) {}
    Value(int value) : Value(static_cast<std::int64_t>(value)) {}
    Value(unsigned value) : Value(static_cast<std::uint64_t>(value)) {}
    Value(const char *value) : kind_(Kind::String), string_(value) {}
    Value(std::string value)
        : kind_(Kind::String), string_(std::move(value)) {}

    static Value object();
    static Value array();

    /**
     * Parse one JSON document (trailing whitespace allowed, trailing
     * garbage is an error). @return nullopt on malformed input.
     */
    static std::optional<Value> parse(const std::string &text);

    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isBool() const { return kind_ == Kind::Bool; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** The numeric payload (0.0 unless isNumber()). */
    double number() const { return number_; }
    /** The string payload (empty unless isString()). */
    const std::string &str() const { return string_; }
    /** The boolean payload (false unless isBool()). */
    bool boolean() const { return bool_; }

    /**
     * Children, in insertion order: object members keyed by name,
     * array elements with empty keys.
     */
    const std::vector<std::pair<std::string, Value>> &members() const
    {
        return children_;
    }

    /**
     * Member access on an object, creating the member (as null) when
     * absent. The value must be an object (or null, which promotes).
     */
    Value &operator[](const std::string &key);

    /** Append to an array (the value must be an array, or null). */
    Value &push(Value element);

    std::size_t size() const { return children_.size(); }

    /**
     * Serialise. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 emits the compact single-line form.
     */
    std::string dump(int indent = 2) const;

    /** RFC 8259 string escaping (quotes not included). */
    static std::string escape(const std::string &raw);

  private:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    /** Array elements (empty key) or object members, insertion order. */
    std::vector<std::pair<std::string, Value>> children_;

    void dumpTo(std::string &out, int indent, int depth) const;
    static void dumpNumber(std::string &out, double value);
};

/**
 * Serialise @p value to @p path atomically: the text is written to
 * `path + ".tmp"` and renamed into place, so readers never observe a
 * truncated document even if the writer is killed mid-write.
 * @return false on I/O failure (the temp file is cleaned up).
 */
bool writeFile(const std::string &path, const Value &value);

} // namespace mixtlb::json

#endif // MIXTLB_COMMON_JSON_HH
