/**
 * @file
 * Synthetic memory-reference generators standing in for the paper's
 * Pin-traced workloads (Sec. 6.4).
 *
 * The paper traces SPEC/PARSEC plus big-memory workloads (gups, graph
 * processing, memcached, CloudSuite) and Rodinia GPU kernels. Traces
 * are unavailable, so each generator reproduces the *access pattern
 * family* that drives a workload's TLB behaviour: footprint, spatial
 * locality, reuse distance, and read/write mix. Every named workload
 * in the benches maps to a parameterisation of one of these families.
 */

#ifndef MIXTLB_WORKLOAD_GENERATOR_HH
#define MIXTLB_WORKLOAD_GENERATOR_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/intmath.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace mixtlb::workload
{

/** A source of memory references over one virtual arena. */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Produce the next reference. */
    virtual MemRef next() = 0;

    /**
     * Produce the next @p n references into @p out — the same stream
     * next() would yield, with one virtual dispatch per batch instead
     * of per reference. Hot families override this; the default just
     * loops next().
     */
    virtual void
    nextBatch(MemRef *out, std::size_t n)
    {
        for (std::size_t i = 0; i < n; i++)
            out[i] = next();
    }

    /** Human-readable generator family name. */
    virtual const char *family() const = 0;
};

/**
 * gups: uniformly random read-modify-writes over the whole footprint.
 * Worst-case TLB behaviour; essentially no spatial locality.
 */
class GupsGen : public TraceGenerator
{
  public:
    GupsGen(VAddr base, std::uint64_t bytes, std::uint64_t seed);
    MemRef next() override;
    void nextBatch(MemRef *out, std::size_t n) override;
    const char *family() const override { return "gups"; }

  private:
    VAddr base_;
    std::uint64_t bytes_;
    Rng rng_;
    MemRef pending_{};
    bool havePending_ = false;
};

/**
 * stream: long unit-stride sweeps with a configurable write share.
 * High spatial locality; TLB misses only at page boundaries.
 */
class StreamGen : public TraceGenerator
{
  public:
    StreamGen(VAddr base, std::uint64_t bytes, std::uint64_t seed,
              unsigned stride = 64, double write_ratio = 0.3);
    MemRef next() override;
    void nextBatch(MemRef *out, std::size_t n) override;
    const char *family() const override { return "stream"; }

  private:
    VAddr base_;
    std::uint64_t bytes_;
    unsigned stride_;
    double writeRatio_;
    std::uint64_t cursor_ = 0;
    Rng rng_;
};

/**
 * pointer-chase: dependent loads jumping pseudo-randomly, but over a
 * *working set* that slowly drifts across the footprint — the mcf-like
 * pattern: poor locality inside a window, window reuse over time.
 */
class PointerChaseGen : public TraceGenerator
{
  public:
    PointerChaseGen(VAddr base, std::uint64_t bytes, std::uint64_t seed,
                    std::uint64_t window_bytes, double drift_prob = 1e-4);
    MemRef next() override;
    const char *family() const override { return "chase"; }

  private:
    VAddr base_;
    std::uint64_t bytes_;
    std::uint64_t windowBytes_;
    double driftProb_;
    std::uint64_t windowBase_ = 0;
    Rng rng_;
};

/**
 * graph: CSR-style traversal — runs of sequential reads (edge lists)
 * interleaved with Zipf-distributed random jumps (vertex data), the
 * graph500/BFS shape.
 */
class GraphWalkGen : public TraceGenerator
{
  public:
    GraphWalkGen(VAddr base, std::uint64_t bytes, std::uint64_t seed,
                 unsigned avg_run = 16, double zipf_theta = 0.8);
    MemRef next() override;
    const char *family() const override { return "graph"; }

  private:
    VAddr base_;
    std::uint64_t bytes_;
    unsigned avgRun_;
    Rng rng_;
    ZipfSampler zipf_;
    VAddr cursor_ = 0;
    unsigned remainingRun_ = 0;
};

/**
 * key-value: memcached-style — Zipf-popular objects; each operation
 * reads a hash bucket (random page) then the object's bytes
 * (sequential within one page or two).
 */
class KeyValueGen : public TraceGenerator
{
  public:
    KeyValueGen(VAddr base, std::uint64_t bytes, std::uint64_t seed,
                std::uint64_t num_keys = pow2(20),
                unsigned value_bytes = 512, double zipf_theta = 0.99,
                double write_ratio = 0.1);
    MemRef next() override;
    void nextBatch(MemRef *out, std::size_t n) override;
    const char *family() const override { return "kv"; }

  private:
    VAddr base_;
    std::uint64_t bytes_;
    std::uint64_t numKeys_;
    unsigned valueBytes_;
    double writeRatio_;
    Rng rng_;
    ZipfSampler zipf_;
    /** In-flight operation state. */
    VAddr objCursor_ = 0;
    unsigned objRemaining_ = 0;
    bool objWrite_ = false;

    MemRef produce();
};

/**
 * spec-like: several arrays swept with different strides plus a
 * pointer-chasing component — the cache-resident-but-TLB-straining
 * shape of many SPEC workloads.
 */
class SpecLikeGen : public TraceGenerator
{
  public:
    SpecLikeGen(VAddr base, std::uint64_t bytes, std::uint64_t seed,
                unsigned num_arrays = 4, double chase_ratio = 0.2);
    MemRef next() override;
    const char *family() const override { return "spec"; }

  private:
    struct ArrayState
    {
        VAddr base;
        std::uint64_t bytes;
        std::uint64_t cursor;
        unsigned stride;
    };

    std::vector<ArrayState> arrays_;
    double chaseRatio_;
    VAddr chaseBase_;
    std::uint64_t chaseBytes_;
    Rng rng_;
};

/** The workload classes of Sec. 6.4. */
enum class WorkloadClass : std::uint8_t
{
    SpecParsec, ///< SPEC + PARSEC scaled to big footprints
    BigMemory,  ///< gups, graph processing, memcached, CloudSuite
    Gpu,        ///< Rodinia-style GPU kernels
};

/** One named workload with its generator parameterisation. */
struct WorkloadSpec
{
    std::string name;
    WorkloadClass klass;
};

/** The named CPU workloads the benches report (paper Sec. 6.4). */
const std::vector<WorkloadSpec> &cpuWorkloads();

/** The named GPU workloads (Rodinia-style). */
const std::vector<WorkloadSpec> &gpuWorkloads();

/**
 * Instantiate the generator for a named workload over [base,
 * base+bytes). Unknown names fatal().
 */
std::unique_ptr<TraceGenerator> makeGenerator(const std::string &name,
                                              VAddr base,
                                              std::uint64_t bytes,
                                              std::uint64_t seed);

} // namespace mixtlb::workload

#endif // MIXTLB_WORKLOAD_GENERATOR_HH
