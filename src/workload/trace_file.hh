/**
 * @file
 * Memory-trace recording and replay — the Pin-style workflow of the
 * paper's methodology (Sec. 6.2): capture a reference stream once,
 * replay it identically against every TLB configuration.
 *
 * Format: a small binary header ("MXTL", version, count) followed by
 * packed records of {48-bit virtual address page + offset, 1-byte
 * access type} — 9 bytes per reference.
 */

#ifndef MIXTLB_WORKLOAD_TRACE_FILE_HH
#define MIXTLB_WORKLOAD_TRACE_FILE_HH

#include <cstdio>
#include <string>

#include "workload/generator.hh"

namespace mixtlb::workload
{

/** Streams references into a trace file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void write(const MemRef &ref);

    /** Finalize the header; called automatically on destruction. */
    void close();

    std::uint64_t count() const { return count_; }

  private:
    std::FILE *file_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/** Replays a trace file as a TraceGenerator (loops at end-of-file). */
class TraceFileGen : public TraceGenerator
{
  public:
    explicit TraceFileGen(const std::string &path);
    ~TraceFileGen() override;

    TraceFileGen(const TraceFileGen &) = delete;
    TraceFileGen &operator=(const TraceFileGen &) = delete;

    MemRef next() override;
    const char *family() const override { return "trace"; }

    std::uint64_t count() const { return count_; }

  private:
    std::FILE *file_;
    std::string path_;
    std::uint64_t count_ = 0;
    std::uint64_t cursor_ = 0;

    void rewindToData();
};

/** Record @p refs references from @p gen into @p path. */
std::uint64_t recordTrace(TraceGenerator &gen, std::uint64_t refs,
                          const std::string &path);

} // namespace mixtlb::workload

#endif // MIXTLB_WORKLOAD_TRACE_FILE_HH
