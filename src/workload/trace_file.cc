#include "trace_file.hh"

#include <cstring>

#include "common/contracts.hh"
#include "common/fault.hh"
#include "common/logging.hh"

namespace mixtlb::workload
{

namespace
{

constexpr char Magic[4] = {'M', 'X', 'T', 'L'};
constexpr std::uint32_t Version = 1;

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t count;
};

#pragma pack(push, 1)
struct Record
{
    std::uint64_t vaddr;
    std::uint8_t type;
};
#pragma pack(pop)
static_assert(sizeof(Record) == 9, "trace record must pack to 9 bytes");

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    fatal_if(!file_, "cannot open trace file '%s' for writing",
             path.c_str());
    Header header{};
    std::memcpy(header.magic, Magic, 4);
    header.version = Version;
    header.count = 0; // patched in close()
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "trace header write failed");
}

void
TraceWriter::write(const MemRef &ref)
{
    panic_if(closed_, "write to a closed trace");
    Record record{ref.vaddr, static_cast<std::uint8_t>(ref.type)};
    fatal_if(std::fwrite(&record, sizeof(record), 1, file_) != 1,
             "trace record write failed");
    count_++;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    Header header{};
    std::memcpy(header.magic, Magic, 4);
    header.version = Version;
    header.count = count_;
    std::fseek(file_, 0, SEEK_SET);
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "trace header patch failed");
    std::fclose(file_);
    file_ = nullptr;
}

TraceWriter::~TraceWriter()
{
    close();
}

TraceFileGen::TraceFileGen(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb")), path_(path)
{
    // Validation failures raise recoverable SimErrors: a corrupt trace
    // fails the point that replays it, not the whole sweep. A throwing
    // constructor skips the destructor, so close file_ by hand first.
    if (!file_)
        MIX_RAISE("io", "cannot open trace file '%s'", path.c_str());

    Header header{};
    bool header_ok =
        std::fread(&header, sizeof(header), 1, file_) == 1;
    const char *problem = nullptr;
    if (!header_ok)
        problem = "truncated header";
    else if (std::memcmp(header.magic, Magic, 4) != 0)
        problem = "bad magic (not a mixtlb trace)";
    else if (header.version != Version)
        problem = "unsupported version";
    else if (header.count == 0)
        problem = "empty trace (zero records)";

    if (!problem) {
        // The payload must hold exactly header.count records; a short
        // file means the writer was killed mid-record or the file was
        // truncated in transit.
        std::fseek(file_, 0, SEEK_END);
        long size = std::ftell(file_);
        std::fseek(file_, sizeof(Header), SEEK_SET);
        auto expected = static_cast<std::uint64_t>(sizeof(Header))
                        + header.count * sizeof(Record);
        if (size < 0 ||
            static_cast<std::uint64_t>(size) != expected) {
            problem = "size does not match record count (truncated?)";
        }
    }

    if (problem) {
        std::fclose(file_);
        file_ = nullptr;
        MIX_RAISE("trace-corrupt", "trace '%s': %s", path.c_str(),
                  problem);
    }
    count_ = header.count;
}

TraceFileGen::~TraceFileGen()
{
    if (file_)
        std::fclose(file_);
}

void
TraceFileGen::rewindToData()
{
    std::fseek(file_, sizeof(Header), SEEK_SET);
    cursor_ = 0;
}

MemRef
TraceFileGen::next()
{
    if (cursor_ >= count_)
        rewindToData();
    Record record{};
    if (std::fread(&record, sizeof(record), 1, file_) != 1) {
        MIX_RAISE("trace-corrupt",
                  "trace '%s': record %llu read failed", path_.c_str(),
                  (unsigned long long)cursor_);
    }
    cursor_++;
    // The trace-corruption fault site models a record damaged on disk
    // or in transit; it must trip the same validation a genuinely
    // corrupt file would.
    if (fault::fire(fault::Site::TraceCorrupt))
        record.type = 0xff;
    if (record.type > static_cast<std::uint8_t>(AccessType::Write)) {
        MIX_RAISE("trace-corrupt",
                  "trace '%s': record %llu has invalid access type %u",
                  path_.c_str(), (unsigned long long)(cursor_ - 1),
                  record.type);
    }
    if (record.vaddr >= (1ULL << 48)) {
        MIX_RAISE("trace-corrupt",
                  "trace '%s': record %llu address 0x%llx exceeds the "
                  "48-bit virtual address space",
                  path_.c_str(), (unsigned long long)(cursor_ - 1),
                  (unsigned long long)record.vaddr);
    }
    MemRef ref;
    ref.vaddr = record.vaddr;
    ref.type = static_cast<AccessType>(record.type);
    return ref;
}

std::uint64_t
recordTrace(TraceGenerator &gen, std::uint64_t refs,
            const std::string &path)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < refs; i++)
        writer.write(gen.next());
    writer.close();
    return refs;
}

} // namespace mixtlb::workload
