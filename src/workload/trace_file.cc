#include "trace_file.hh"

#include <cstring>

#include "common/logging.hh"

namespace mixtlb::workload
{

namespace
{

constexpr char Magic[4] = {'M', 'X', 'T', 'L'};
constexpr std::uint32_t Version = 1;

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t count;
};

#pragma pack(push, 1)
struct Record
{
    std::uint64_t vaddr;
    std::uint8_t type;
};
#pragma pack(pop)
static_assert(sizeof(Record) == 9, "trace record must pack to 9 bytes");

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    fatal_if(!file_, "cannot open trace file '%s' for writing",
             path.c_str());
    Header header{};
    std::memcpy(header.magic, Magic, 4);
    header.version = Version;
    header.count = 0; // patched in close()
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "trace header write failed");
}

void
TraceWriter::write(const MemRef &ref)
{
    panic_if(closed_, "write to a closed trace");
    Record record{ref.vaddr, static_cast<std::uint8_t>(ref.type)};
    fatal_if(std::fwrite(&record, sizeof(record), 1, file_) != 1,
             "trace record write failed");
    count_++;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    Header header{};
    std::memcpy(header.magic, Magic, 4);
    header.version = Version;
    header.count = count_;
    std::fseek(file_, 0, SEEK_SET);
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "trace header patch failed");
    std::fclose(file_);
    file_ = nullptr;
}

TraceWriter::~TraceWriter()
{
    close();
}

TraceFileGen::TraceFileGen(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    fatal_if(!file_, "cannot open trace file '%s'", path.c_str());
    Header header{};
    fatal_if(std::fread(&header, sizeof(header), 1, file_) != 1,
             "trace header read failed");
    fatal_if(std::memcmp(header.magic, Magic, 4) != 0,
             "'%s' is not a mixtlb trace", path.c_str());
    fatal_if(header.version != Version, "unsupported trace version %u",
             header.version);
    fatal_if(header.count == 0, "empty trace '%s'", path.c_str());
    count_ = header.count;
}

TraceFileGen::~TraceFileGen()
{
    if (file_)
        std::fclose(file_);
}

void
TraceFileGen::rewindToData()
{
    std::fseek(file_, sizeof(Header), SEEK_SET);
    cursor_ = 0;
}

MemRef
TraceFileGen::next()
{
    if (cursor_ >= count_)
        rewindToData();
    Record record{};
    fatal_if(std::fread(&record, sizeof(record), 1, file_) != 1,
             "trace record read failed");
    cursor_++;
    MemRef ref;
    ref.vaddr = record.vaddr;
    ref.type = static_cast<AccessType>(record.type);
    return ref;
}

std::uint64_t
recordTrace(TraceGenerator &gen, std::uint64_t refs,
            const std::string &path)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < refs; i++)
        writer.write(gen.next());
    writer.close();
    return refs;
}

} // namespace mixtlb::workload
