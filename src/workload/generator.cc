#include "generator.hh"

#include "common/logging.hh"

namespace mixtlb::workload
{

GupsGen::GupsGen(VAddr base, std::uint64_t bytes, std::uint64_t seed)
    : base_(base), bytes_(bytes), rng_(seed)
{
    fatal_if(bytes == 0, "empty gups footprint");
}

MemRef
GupsGen::next()
{
    if (havePending_) {
        havePending_ = false;
        MemRef store = pending_;
        store.type = AccessType::Write;
        return store;
    }
    MemRef ref;
    ref.vaddr = base_ + (rng_.nextBounded(bytes_ / 8) * 8);
    ref.type = AccessType::Read;
    pending_ = ref;
    havePending_ = true; // read-modify-write pair
    return ref;
}

// mixcheck: hot
void
GupsGen::nextBatch(MemRef *out, std::size_t n)
{
    std::size_t i = 0;
    if (i < n && havePending_) {
        havePending_ = false;
        out[i] = pending_;
        out[i].type = AccessType::Write;
        i++;
    }
    while (i < n) {
        MemRef ref;
        ref.vaddr = base_ + (rng_.nextBounded(bytes_ / 8) * 8);
        ref.type = AccessType::Read;
        out[i++] = ref;
        if (i < n) {
            out[i] = ref;
            out[i].type = AccessType::Write;
            i++;
        } else {
            // The write half of the pair lands in the next batch.
            pending_ = ref;
            havePending_ = true;
        }
    }
}

StreamGen::StreamGen(VAddr base, std::uint64_t bytes, std::uint64_t seed,
                     unsigned stride, double write_ratio)
    : base_(base), bytes_(bytes), stride_(stride),
      writeRatio_(write_ratio), rng_(seed)
{
    fatal_if(bytes == 0 || stride == 0, "bad stream parameters");
}

MemRef
StreamGen::next()
{
    MemRef ref;
    ref.vaddr = base_ + cursor_;
    ref.type = rng_.chance(writeRatio_) ? AccessType::Write
                                        : AccessType::Read;
    cursor_ += stride_;
    if (cursor_ >= bytes_)
        cursor_ = 0;
    return ref;
}

// mixcheck: hot
void
StreamGen::nextBatch(MemRef *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; i++) {
        out[i].vaddr = base_ + cursor_;
        out[i].type = rng_.chance(writeRatio_) ? AccessType::Write
                                               : AccessType::Read;
        cursor_ += stride_;
        if (cursor_ >= bytes_)
            cursor_ = 0;
    }
}

PointerChaseGen::PointerChaseGen(VAddr base, std::uint64_t bytes,
                                 std::uint64_t seed,
                                 std::uint64_t window_bytes,
                                 double drift_prob)
    : base_(base), bytes_(bytes),
      windowBytes_(window_bytes > bytes ? bytes : window_bytes),
      driftProb_(drift_prob), rng_(seed)
{
    fatal_if(bytes == 0, "empty chase footprint");
}

MemRef
PointerChaseGen::next()
{
    if (rng_.chance(driftProb_)) {
        // Working set drifts to a new region of the footprint.
        if (bytes_ > windowBytes_)
            windowBase_ = rng_.nextBounded(bytes_ - windowBytes_);
    }
    MemRef ref;
    ref.vaddr = base_ + windowBase_
                + (rng_.nextBounded(windowBytes_ / 8) * 8);
    ref.type = AccessType::Read;
    return ref;
}

GraphWalkGen::GraphWalkGen(VAddr base, std::uint64_t bytes,
                           std::uint64_t seed, unsigned avg_run,
                           double zipf_theta)
    : base_(base), bytes_(bytes), avgRun_(avg_run), rng_(seed),
      zipf_(bytes / 64, zipf_theta, seed ^ 0xabcdef)
{
    fatal_if(bytes < 64, "graph footprint too small");
}

MemRef
GraphWalkGen::next()
{
    MemRef ref;
    if (remainingRun_ == 0) {
        // Jump to a Zipf-popular vertex's edge list.
        cursor_ = zipf_.sample() * 64;
        remainingRun_ = 1 + static_cast<unsigned>(
            rng_.nextBounded(2 * avgRun_));
    }
    ref.vaddr = base_ + (cursor_ % bytes_);
    ref.type = AccessType::Read;
    cursor_ += 8;
    remainingRun_--;
    return ref;
}

KeyValueGen::KeyValueGen(VAddr base, std::uint64_t bytes,
                         std::uint64_t seed, std::uint64_t num_keys,
                         unsigned value_bytes, double zipf_theta,
                         double write_ratio)
    : base_(base), bytes_(bytes), numKeys_(num_keys),
      valueBytes_(value_bytes), writeRatio_(write_ratio), rng_(seed),
      zipf_(num_keys, zipf_theta, seed ^ 0x55aa55)
{
    fatal_if(bytes == 0 || num_keys == 0, "bad key-value parameters");
}

MemRef
KeyValueGen::next()
{
    return produce();
}

// mixcheck: hot
void
KeyValueGen::nextBatch(MemRef *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; i++)
        out[i] = produce();
}

MemRef
KeyValueGen::produce()
{
    MemRef ref;
    if (objRemaining_ > 0) {
        ref.vaddr = base_ + (objCursor_ % bytes_);
        ref.type = objWrite_ ? AccessType::Write : AccessType::Read;
        objCursor_ += 64;
        objRemaining_--;
        return ref;
    }
    // New operation: probe the hash-bucket array — a *contiguous*
    // structure of 8 bytes per key at the start of the arena, like a
    // real store's table — then read the value.
    std::uint64_t key = zipf_.sample();
    std::uint64_t bucket_bytes = numKeys_ * 8;
    if (bucket_bytes > bytes_ / 4)
        bucket_bytes = bytes_ / 4;
    std::uint64_t bucket_hash = key * 0x9e3779b97f4a7c15ULL;
    ref.vaddr = base_ + (bucket_hash % bucket_bytes / 8 * 8);
    ref.type = AccessType::Read;

    // Objects live in slabs. Popular items are long-lived and were
    // allocated early, so object position correlates with popularity
    // rank — hot data clusters in the early slabs (dense rank-order
    // packing) rather than scattering across the footprint.
    std::uint64_t slab_base = bucket_bytes;
    std::uint64_t slab_bytes = bytes_ - slab_base - valueBytes_;
    objCursor_ = slab_base
                 + (key * static_cast<std::uint64_t>(valueBytes_))
                       % slab_bytes;
    objRemaining_ = valueBytes_ / 64;
    objWrite_ = rng_.chance(writeRatio_);
    return ref;
}

SpecLikeGen::SpecLikeGen(VAddr base, std::uint64_t bytes,
                         std::uint64_t seed, unsigned num_arrays,
                         double chase_ratio)
    : chaseRatio_(chase_ratio), rng_(seed)
{
    fatal_if(num_arrays == 0 || bytes / (num_arrays + 1) == 0,
             "bad spec-like parameters");
    // Half the footprint is strided arrays, half is a chase arena.
    std::uint64_t array_bytes = bytes / 2 / num_arrays;
    for (unsigned i = 0; i < num_arrays; i++) {
        ArrayState st;
        st.base = base + i * array_bytes;
        st.bytes = array_bytes;
        st.cursor = 0;
        static constexpr unsigned Strides[3] = {8, 32, 128}; // bytes
        st.stride = Strides[i % 3];
        arrays_.push_back(st);
    }
    chaseBase_ = base + bytes / 2;
    chaseBytes_ = bytes - bytes / 2;
}

MemRef
SpecLikeGen::next()
{
    MemRef ref;
    if (rng_.chance(chaseRatio_)) {
        ref.vaddr = chaseBase_ + (rng_.nextBounded(chaseBytes_ / 8) * 8);
        ref.type = AccessType::Read;
        return ref;
    }
    auto &arr = arrays_[rng_.nextBounded(arrays_.size())];
    ref.vaddr = arr.base + arr.cursor;
    ref.type = rng_.chance(0.2) ? AccessType::Write : AccessType::Read;
    arr.cursor += arr.stride;
    if (arr.cursor >= arr.bytes)
        arr.cursor = 0;
    return ref;
}

const std::vector<WorkloadSpec> &
cpuWorkloads()
{
    static const std::vector<WorkloadSpec> workloads = {
        {"mcf",           WorkloadClass::SpecParsec},
        {"omnetpp",       WorkloadClass::SpecParsec},
        {"xalancbmk",     WorkloadClass::SpecParsec},
        {"milc",          WorkloadClass::SpecParsec},
        {"canneal",       WorkloadClass::SpecParsec},
        {"streamcluster", WorkloadClass::SpecParsec},
        {"gups",          WorkloadClass::BigMemory},
        {"graph500",      WorkloadClass::BigMemory},
        {"memcached",     WorkloadClass::BigMemory},
        {"dataserving",   WorkloadClass::BigMemory},
        {"btree",         WorkloadClass::BigMemory},
    };
    return workloads;
}

const std::vector<WorkloadSpec> &
gpuWorkloads()
{
    static const std::vector<WorkloadSpec> workloads = {
        {"bfs",        WorkloadClass::Gpu},
        {"backprop",   WorkloadClass::Gpu},
        {"kmeans",     WorkloadClass::Gpu},
        {"pathfinder", WorkloadClass::Gpu},
        {"hotspot",    WorkloadClass::Gpu},
        {"srad",       WorkloadClass::Gpu},
    };
    return workloads;
}

std::unique_ptr<TraceGenerator>
makeGenerator(const std::string &name, VAddr base, std::uint64_t bytes,
              std::uint64_t seed)
{
    // CPU workloads.
    if (name == "mcf") {
        return std::make_unique<PointerChaseGen>(base, bytes, seed,
                                                 bytes / 4, 3e-5);
    }
    if (name == "omnetpp") {
        return std::make_unique<SpecLikeGen>(base, bytes, seed, 6, 0.35);
    }
    if (name == "xalancbmk") {
        return std::make_unique<SpecLikeGen>(base, bytes, seed, 4, 0.25);
    }
    if (name == "milc") {
        return std::make_unique<StreamGen>(base, bytes, seed, 128, 0.4);
    }
    if (name == "canneal") {
        return std::make_unique<PointerChaseGen>(base, bytes, seed,
                                                 bytes / 2, 1e-4);
    }
    if (name == "streamcluster") {
        return std::make_unique<StreamGen>(base, bytes, seed, 64, 0.1);
    }
    if (name == "gups") {
        return std::make_unique<GupsGen>(base, bytes, seed);
    }
    if (name == "btree") {
        // Index-structure lookups: a small hot set of interleaved
        // pages (the upper tree levels, ~384KB) probed dependently —
        // the access shape that punishes superpage-index-bit TLBs
        // (Sec. 3): ~96 hot pages share one 2MB region's set.
        return std::make_unique<PointerChaseGen>(base, bytes, seed,
                                                 384 * 1024, 1e-5);
    }
    if (name == "graph500") {
        return std::make_unique<GraphWalkGen>(base, bytes, seed, 16, 0.8);
    }
    if (name == "memcached") {
        return std::make_unique<KeyValueGen>(base, bytes, seed);
    }
    if (name == "dataserving") {
        return std::make_unique<KeyValueGen>(base, bytes, seed,
                                             pow2(22),
                                             1024, 0.9, 0.25);
    }

    // GPU workloads (per-core streams are seeded differently by the
    // GPU module; patterns mirror Rodinia kernels).
    if (name == "bfs") {
        return std::make_unique<GraphWalkGen>(base, bytes, seed, 8, 0.9);
    }
    if (name == "backprop") {
        return std::make_unique<StreamGen>(base, bytes, seed, 256, 0.3);
    }
    if (name == "kmeans") {
        return std::make_unique<SpecLikeGen>(base, bytes, seed, 3, 0.1);
    }
    if (name == "pathfinder") {
        return std::make_unique<StreamGen>(base, bytes, seed, 64, 0.2);
    }
    if (name == "hotspot") {
        return std::make_unique<SpecLikeGen>(base, bytes, seed, 5, 0.05);
    }
    if (name == "srad") {
        return std::make_unique<StreamGen>(base, bytes, seed, 128, 0.35);
    }

    fatal("unknown workload '%s'", name.c_str());
}

} // namespace mixtlb::workload
