/**
 * @file
 * x86-64-style page-table entry encoding and the Translation struct that
 * is the common currency between the page-table walker and the TLBs.
 */

#ifndef MIXTLB_PT_PTE_HH
#define MIXTLB_PT_PTE_HH

#include <cstdint>

#include "common/types.hh"

namespace mixtlb::pt
{

/** Access permission / attribute flags carried by a translation. */
struct Perms
{
    bool writable = true;
    bool user = true;
    bool noExec = false;

    bool operator==(const Perms &) const = default;
};

/**
 * A decoded leaf translation. @c vbase / @c pbase are the page-aligned
 * virtual/physical base addresses.
 */
struct Translation
{
    VAddr vbase = 0;
    PAddr pbase = 0;
    PageSize size = PageSize::Size4K;
    Perms perms{};
    bool accessed = false;
    bool dirty = false;

    /** 4KB-granularity physical frame number of the page base. */
    Pfn pfn4k() const { return pbase >> PageShift4K; }

    /** Page number in this page size's own units. */
    std::uint64_t vpn() const { return vbase >> pageShift(size); }
    std::uint64_t ppn() const { return pbase >> pageShift(size); }

    /** Translate an address inside this page. */
    PAddr
    translate(VAddr vaddr) const
    {
        return pbase | (vaddr & (pageBytes(size) - 1));
    }

    /** True if @p vaddr lies inside this page. */
    bool
    covers(VAddr vaddr) const
    {
        return (vaddr & ~(pageBytes(size) - 1)) == vbase;
    }
};

/**
 * Raw 64-bit PTE encode/decode. Bit layout follows the Intel SDM:
 * P(0) W(1) U(2) A(5) D(6) PS(7) frame(47:12) NX(63).
 */
namespace pte
{

constexpr std::uint64_t P = 1ULL << 0;
constexpr std::uint64_t W = 1ULL << 1;
constexpr std::uint64_t U = 1ULL << 2;
constexpr std::uint64_t A = 1ULL << 5;
constexpr std::uint64_t D = 1ULL << 6;
constexpr std::uint64_t PS = 1ULL << 7;
constexpr std::uint64_t NX = 1ULL << 63;
constexpr std::uint64_t FrameMask = ((1ULL << 48) - 1) & ~(PageBytes4K - 1);

/** Encode a leaf or intermediate entry pointing at @p pbase. */
constexpr std::uint64_t
make(PAddr pbase, Perms perms, bool page_size_bit,
     bool accessed = false, bool dirty = false)
{
    std::uint64_t raw = P | (pbase & FrameMask);
    if (perms.writable)
        raw |= W;
    if (perms.user)
        raw |= U;
    if (perms.noExec)
        raw |= NX;
    if (page_size_bit)
        raw |= PS;
    if (accessed)
        raw |= A;
    if (dirty)
        raw |= D;
    return raw;
}

constexpr bool present(std::uint64_t raw) { return raw & P; }
constexpr bool pageSizeBit(std::uint64_t raw) { return raw & PS; }
constexpr bool accessed(std::uint64_t raw) { return raw & A; }
constexpr bool dirty(std::uint64_t raw) { return raw & D; }
constexpr PAddr frame(std::uint64_t raw) { return raw & FrameMask; }

constexpr Perms
perms(std::uint64_t raw)
{
    return Perms{(raw & W) != 0, (raw & U) != 0, (raw & NX) != 0};
}

} // namespace pte

} // namespace mixtlb::pt

#endif // MIXTLB_PT_PTE_HH
