#include "pwc.hh"

#include <algorithm>

#include "pt/page_table.hh"

namespace mixtlb::pt
{

PagingStructureCache::PagingStructureCache(const PwcParams &params,
                                           stats::StatGroup *parent)
    : params_(params), stats_("pwc", parent),
      hits_(stats_.addCounter("hits", "paging-structure cache hits")),
      misses_(stats_.addCounter("misses",
                                "walks that started at the root"))
{
}

std::optional<std::pair<unsigned, PAddr>>
PagingStructureCache::probe(VAddr vaddr)
{
    if (!enabled())
        return std::nullopt;
    // Prefer the deepest (lowest-level) shortcut.
    auto best = lru_.end();
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        if (it->asid != asid_)
            continue;
        if ((vaddr >> levelShift(it->level + 1)) != it->prefix)
            continue;
        if (best == lru_.end() || it->level < best->level)
            best = it;
    }
    if (best == lru_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, best);
    return std::make_pair(best->level, best->tableBase);
}

void
PagingStructureCache::insert(unsigned level, VAddr vaddr,
                             PAddr table_base)
{
    if (!enabled() || level >= NumLevels - 1)
        return; // never cache the root itself
    std::uint64_t prefix = vaddr >> levelShift(level + 1);
    auto it = std::find_if(lru_.begin(), lru_.end(), [&](const Entry &e) {
        return e.level == level && e.prefix == prefix &&
               e.asid == asid_;
    });
    if (it != lru_.end()) {
        it->tableBase = table_base;
        lru_.splice(lru_.begin(), lru_, it);
        return;
    }
    lru_.push_front(Entry{level, prefix, asid_, table_base});
    if (lru_.size() > params_.entries)
        lru_.pop_back();
}

void
PagingStructureCache::invalidate(VAddr vbase, PageSize size)
{
    // Conservative: drop any entry whose covered VA range intersects
    // the invalidated page (shootdowns also flush paging-structure
    // caches on real hardware).
    std::uint64_t span = pageBytes(size);
    lru_.remove_if([&](const Entry &e) {
        VAddr lo = e.prefix << levelShift(e.level + 1);
        VAddr hi = lo + (1ULL << levelShift(e.level + 1));
        return vbase < hi && vbase + span > lo;
    });
}

void
PagingStructureCache::invalidateAll()
{
    lru_.clear();
}

void
PagingStructureCache::invalidateAsid(Asid asid)
{
    lru_.remove_if([&](const Entry &e) { return e.asid == asid; });
}

} // namespace mixtlb::pt
