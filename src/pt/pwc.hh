/**
 * @file
 * A paging-structure cache (MMU cache), as in Intel's PML4E/PDPTE/PDE
 * caches and the large-reach MMU cache literature the paper cites
 * [19]. Caches intermediate page-table entries by virtual-address
 * prefix so a walk can start below the root, shortening 4-level walks
 * to as little as one leaf access.
 *
 * Disabled by default in the benches (the paper's walker model does
 * not include one); provided as the natural extension and exercised
 * by its own tests/ablation.
 */

#ifndef MIXTLB_PT_PWC_HH
#define MIXTLB_PT_PWC_HH

#include <cstdint>
#include <list>
#include <optional>

#include "common/stats.hh"
#include "common/types.hh"

namespace mixtlb::pt
{

struct PwcParams
{
    /** Entries shared by all cached levels; 0 disables the cache. */
    unsigned entries = 0;
};

/**
 * Fully-associative LRU cache of intermediate paging-structure
 * entries: key = (level, VA prefix at that level), value = physical
 * base of the *next lower* table.
 */
class PagingStructureCache
{
  public:
    PagingStructureCache(const PwcParams &params,
                         stats::StatGroup *parent);

    bool enabled() const { return params_.entries > 0; }

    /**
     * Deepest cached starting point for a walk to @p vaddr.
     * @return (level to continue from, physical table base), where the
     *         returned level is the level whose entry should be read
     *         next; nullopt = start from the root.
     */
    std::optional<std::pair<unsigned, PAddr>> probe(VAddr vaddr);

    /**
     * Record that the table for @p level's lookup (i.e. the table
     * containing the level-@p level entry of @p vaddr) lives at
     * @p table_base.
     */
    void insert(unsigned level, VAddr vaddr, PAddr table_base);

    /**
     * Invalidate every entry overlapping the page at @p vbase,
     * regardless of ASID (a conservative model: the shootdown source
     * address space is not known at this layer, and real hardware
     * flushes paging-structure caches broadly on shootdowns).
     */
    void invalidate(VAddr vbase, PageSize size);

    void invalidateAll();

    /** Drop every entry tagged @p asid, leaving others resident. */
    void invalidateAsid(Asid asid);

    /**
     * Switch the active address space: probes only match and inserts
     * tag entries with @p asid (Intel's PCID-tagged paging-structure
     * caches). The single-process default is ASID 0.
     */
    void setAsid(Asid asid) { asid_ = asid; }

    Asid asid() const { return asid_; }

  private:
    struct Entry
    {
        unsigned level;       ///< table level this entry shortcuts to
        std::uint64_t prefix; ///< VA >> levelShift(level + 1)
        Asid asid;
        PAddr tableBase;
    };

    PwcParams params_;
    Asid asid_ = 0;
    std::list<Entry> lru_; ///< front = MRU

    stats::StatGroup stats_;
    stats::Counter &hits_;
    stats::Counter &misses_;
};

} // namespace mixtlb::pt

#endif // MIXTLB_PT_PWC_HH
