/**
 * @file
 * A real 4-level x86-64 radix page table whose entries live in simulated
 * physical frames.
 *
 * Because PTEs occupy genuine (simulated) physical addresses, a walk
 * produces the exact cacheline addresses a hardware walker would touch —
 * including the cache line of 8 leaf PTEs that MIX TLB coalescing logic
 * scans on a miss (Sec. 3, step 2 of the paper).
 */

#ifndef MIXTLB_PT_PAGE_TABLE_HH
#define MIXTLB_PT_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/contracts.hh"
#include "common/types.hh"
#include "mem/phys_mem.hh"
#include "pt/pte.hh"

namespace mixtlb::pt
{

/** Radix levels, leaf-to-root. Level 0 = PT, 1 = PD, 2 = PDPT, 3 = PML4. */
constexpr unsigned NumLevels = 4;

/** Virtual-address shift of the index for each level. */
constexpr unsigned
levelShift(unsigned level)
{
    return PageShift4K + 9 * level;
}

/** 9-bit table index of @p vaddr at @p level. */
constexpr unsigned
levelIndex(VAddr vaddr, unsigned level)
{
    return (vaddr >> levelShift(level)) & 0x1ff;
}

/** The radix level at which a page of @p size has its leaf PTE. */
constexpr unsigned
leafLevel(PageSize size)
{
    switch (size) {
      case PageSize::Size4K: return 0;
      case PageSize::Size2M: return 1;
      case PageSize::Size1G: return 2;
    }
    return 0;
}

class PageTable
{
  public:
    /** Build an empty table; the root frame comes from @p mem. */
    explicit PageTable(mem::PhysMem &mem);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** Physical address of the root (PML4) table. */
    PAddr root() const { return root_; }

    /** The physical memory the table entries live in. */
    mem::PhysMem &mem() const { return mem_; }

    /**
     * Install a leaf mapping. @p vaddr and @p paddr must be aligned to
     * @p size. Intermediate tables are created on demand. A and D start
     * clear, as after a fresh OS mapping.
     */
    void map(VAddr vaddr, PAddr paddr, PageSize size, Perms perms = {});

    /**
     * Remove the leaf mapping covering @p vaddr.
     * @retval true a mapping was present and removed.
     */
    bool unmap(VAddr vaddr);

    /**
     * Point the existing leaf covering @p vaddr at @p new_paddr,
     * preserving permissions and A/D bits (page migration).
     */
    void remap(VAddr vaddr, PAddr new_paddr);

    /**
     * Zero the intermediate entry at @p level covering @p vaddr —
     * used when promoting a fully populated PT into a superpage leaf
     * (the orphaned table's frame is reclaimed at destruction).
     */
    void clearLevelEntry(VAddr vaddr, unsigned level);

    /**
     * Splinter the superpage leaf covering @p vaddr into 512 next-
     * smaller leaves by rebuilding the lower radix level (a 2M leaf
     * becomes a PT of 4K leaves; a 1G leaf a PD of 2M leaves),
     * preserving permissions and A/D bits. Runs under memory pressure,
     * so the one child table frame is allocated non-fatally.
     * @retval false no superpage leaf covers @p vaddr, or no frame was
     *         available for the child table (nothing is modified).
     */
    bool splitLeaf(VAddr vaddr);

    /**
     * Free the frames of tables orphaned by clearLevelEntry back to
     * physical memory (they are otherwise held until destruction).
     * After this, any stale cached paging-structure entry (PWC) into
     * one of these tables points at a freed — possibly reused — frame,
     * so callers must flush translation caches first.
     * @return number of frames released.
     */
    std::size_t reclaimRetiredFrames();

    /** Frames currently parked on the retired list. */
    std::size_t retiredFrameCount() const { return retiredFrames_.size(); }

    /** Functional lookup with no side effects (testing/validation). */
    std::optional<Translation> translate(VAddr vaddr) const;

    /** Physical address of the leaf PTE covering @p vaddr, if mapped. */
    std::optional<PAddr> leafPteAddr(VAddr vaddr) const;

    /** Set the Accessed bit of the leaf PTE covering @p vaddr. */
    void setAccessed(VAddr vaddr);

    /** Set the Dirty bit of the leaf PTE covering @p vaddr. */
    void setDirty(VAddr vaddr);

    /** Number of leaf mappings currently installed. */
    std::uint64_t numMappings() const { return numMappings_; }

    /**
     * Visit every leaf translation in ascending virtual-address order.
     * Used by the page-size-distribution and contiguity scanners
     * (Sec. 7.1 methodology).
     */
    void forEachLeaf(const std::function<void(const Translation &)> &fn)
        const;

    /**
     * Structural audit of the radix tree: every table frame reachable
     * from the root was allocated by this table and is tagged
     * FrameUse::PageTable, no frame appears twice (no aliased
     * subtrees), every allocated frame is either reachable or was
     * legally retired by clearLevelEntry, leaf PTEs are aligned to
     * their page size, and the leaf count matches numMappings().
     */
    void audit(contracts::AuditReport &report) const;

  private:
    mem::PhysMem &mem_;
    PAddr root_;
    std::vector<Pfn> tableFrames_; ///< every frame we allocated
    /** Frames orphaned by clearLevelEntry (superpage promotion). */
    std::unordered_set<Pfn> retiredFrames_;
    std::uint64_t numMappings_ = 0;

    /** Allocate one zeroed page-table frame. */
    PAddr allocTable();

    /**
     * Walk from the root toward @p target_level, optionally creating
     * missing intermediate tables.
     * @return physical address of the entry at @p target_level, or
     *         nullopt if a level is missing (and @p create is false) or
     *         a superpage leaf is found above the target (returned via
     *         @p leaf_level_out).
     */
    std::optional<PAddr> walkToLevel(VAddr vaddr, unsigned target_level,
                                     bool create,
                                     unsigned *leaf_level_out = nullptr)
        const;

    void forEachLeafRec(PAddr table, unsigned level, VAddr vbase,
                        const std::function<void(const Translation &)> &fn)
        const;

    /** Record every table frame under @p table as legally orphaned. */
    void retireSubtree(PAddr table, unsigned level);

    void auditTable(PAddr table, unsigned level,
                    std::unordered_set<Pfn> &reachable,
                    std::uint64_t &leaves,
                    contracts::AuditReport &report) const;
};

} // namespace mixtlb::pt

#endif // MIXTLB_PT_PAGE_TABLE_HH
