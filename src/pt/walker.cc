#include "walker.hh"

#include "common/contracts.hh"
#include "common/intmath.hh"
#include "common/logging.hh"

namespace mixtlb::pt
{

Walker::Walker(const PageTable &table, stats::StatGroup *parent,
               unsigned scan_lines, PwcParams pwc)
    : table_(&table), scanLines_(scan_lines), stats_("walker", parent),
      pwc_(pwc, &stats_),
      walks_(stats_.addCounter("walks", "page table walks performed")),
      pageFaults_(stats_.addCounter("page_faults",
                                    "walks that found no mapping")),
      memAccesses_(stats_.addCounter("mem_accesses",
                                     "memory accesses issued by walks")),
      dirtyUpdates_(stats_.addCounter("dirty_updates",
                                      "dirty-bit update micro-ops"))
{
    MIX_EXPECT(scan_lines >= 1 && scan_lines <= MaxLineSlots
                                                    / PtesPerCacheLine,
               "walker scan_lines %u outside [1, %zu]", scan_lines,
               MaxLineSlots / PtesPerCacheLine);
}

// mixcheck: hot
WalkResult
Walker::walk(VAddr vaddr, bool is_store)
{
    ++walks_;
    WalkResult result;
    auto &mem = table_->mem();

    PAddr table = table_->root();
    unsigned start_level = NumLevels - 1;
    if (auto shortcut = pwc_.probe(vaddr)) {
        start_level = shortcut->first;
        table = shortcut->second;
    }
    for (unsigned level = start_level + 1; level-- > 0;) {
        PAddr pte_addr = table + 8ULL * levelIndex(vaddr, level);
        result.accesses.push_back(alignDown(pte_addr, CacheLineBytes));
        ++memAccesses_;
        std::uint64_t raw = mem.read64(pte_addr);
        if (!pte::present(raw)) {
            ++pageFaults_;
            return result;
        }
        if (level == 0 || pte::pageSizeBit(raw)) {
            // Leaf: apply the A/D protocol, then decode the line.
            std::uint64_t updated = raw | pte::A;
            if (is_store) {
                updated |= pte::D;
                if (!pte::dirty(raw))
                    ++dirtyUpdates_;
            }
            if (updated != raw)
                mem.write64(pte_addr, updated);
            fillLine(vaddr, pte_addr, level, result);
            return result;
        }
        table = pte::frame(raw);
        // Remember this intermediate table for future walks.
        pwc_.insert(level - 1, vaddr, table);
    }
    panic("walk fell off the radix tree");
}

std::optional<WalkResult>
Walker::readLeafLine(VAddr vaddr, bool is_store)
{
    // A functional probe to find the leaf, then one line read. The MMU
    // charges only the single line access this returns.
    auto pte_addr = table_->leafPteAddr(vaddr);
    if (!pte_addr)
        return std::nullopt;

    auto &mem = table_->mem();
    std::uint64_t raw = mem.read64(*pte_addr);
    std::uint64_t updated = raw | pte::A;
    if (is_store) {
        updated |= pte::D;
        if (!pte::dirty(raw))
            ++dirtyUpdates_;
    }
    if (updated != raw)
        mem.write64(*pte_addr, updated);

    auto xlate = table_->translate(vaddr);
    panic_if(!xlate, "leafPteAddr/translate disagree");
    WalkResult result;
    result.accesses.push_back(alignDown(*pte_addr, CacheLineBytes));
    ++memAccesses_;
    fillLine(vaddr, *pte_addr, leafLevel(xlate->size), result);
    return result;
}

void
Walker::fillLine(VAddr vaddr, PAddr pte_addr, unsigned level,
                 WalkResult &result)
{
    auto &mem = table_->mem();
    // Superpage leaves may use the wide scan; 4KB fills never do (the
    // TLB windows for small pages are at most a few entries).
    const unsigned lines = level > 0 ? scanLines_ : 1;
    const unsigned slots = lines * PtesPerCacheLine;
    const PAddr scan_base =
        alignDown(pte_addr, lines * CacheLineBytes);
    const auto slot =
        static_cast<unsigned>((pte_addr - scan_base) / 8);
    result.leafSlot = slot;
    result.lineGranularity = level == 2 ? PageSize::Size1G
                             : level == 1 ? PageSize::Size2M
                                          : PageSize::Size4K;
    result.line.assign(slots, LinePte{});

    // The extra cache lines are read by the (off-critical-path)
    // coalescing logic; the leaf's own line was already charged by the
    // walk itself.
    const PAddr leaf_line = alignDown(pte_addr, CacheLineBytes);
    for (unsigned l = 0; l < lines; l++) {
        PAddr line_addr = scan_base + static_cast<PAddr>(l)
                                          * CacheLineBytes;
        if (line_addr != leaf_line) {
            result.fillAccesses.push_back(line_addr);
            ++memAccesses_;
        }
    }

    // Virtual base covered by slot 0 of the scan group: the entries
    // span an aligned group of `slots` pages at this level's
    // granularity.
    const std::uint64_t entry_span = 1ULL << levelShift(level);
    const VAddr group_base = alignDown(vaddr, entry_span * slots);

    for (unsigned i = 0; i < slots; i++) {
        std::uint64_t raw = mem.read64(scan_base + 8ULL * i);
        LinePte &entry = result.line[i];
        // An entry only describes a leaf at this granularity if it is
        // present and is a page (not a pointer to a lower-level table).
        bool is_leaf = pte::present(raw)
                       && (level == 0 || pte::pageSizeBit(raw));
        if (!is_leaf)
            continue;
        entry.present = true;
        entry.xlate.vbase = group_base + i * entry_span;
        entry.xlate.pbase = pte::frame(raw);
        entry.xlate.size = result.lineGranularity;
        entry.xlate.perms = pte::perms(raw);
        entry.xlate.accessed = pte::accessed(raw);
        entry.xlate.dirty = pte::dirty(raw);
    }

    result.leaf = result.line[slot].xlate;
}

} // namespace mixtlb::pt
