#include "page_table.hh"

#include <algorithm>
#include <vector>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mixtlb::pt
{

PageTable::PageTable(mem::PhysMem &mem) : mem_(mem)
{
    root_ = allocTable();
}

PageTable::~PageTable()
{
    for (Pfn pfn : tableFrames_)
        mem_.freeFrames(pfn, 0);
}

PAddr
PageTable::allocTable()
{
    auto pfn = mem_.allocFrames(0, mem::FrameUse::PageTable);
    fatal_if(!pfn, "out of physical memory allocating a page table");
    tableFrames_.push_back(*pfn);
    return *pfn << PageShift4K;
}

namespace
{

/** Physical address of entry @p index in the table at @p table. */
PAddr
entryAddr(PAddr table, unsigned index)
{
    return table + 8ULL * index;
}

} // anonymous namespace

std::optional<PAddr>
PageTable::walkToLevel(VAddr vaddr, unsigned target_level, bool create,
                       unsigned *leaf_level_out) const
{
    PAddr table = root_;
    for (unsigned level = NumLevels - 1; level > target_level; level--) {
        PAddr pte_addr = entryAddr(table, levelIndex(vaddr, level));
        std::uint64_t raw = mem_.read64(pte_addr);
        if (pte::present(raw) && pte::pageSizeBit(raw)) {
            // Hit a superpage leaf above the target level.
            if (leaf_level_out)
                *leaf_level_out = level;
            return pte_addr;
        }
        if (!pte::present(raw)) {
            if (!create)
                return std::nullopt;
            // Creating intermediate levels mutates the backing store but
            // not this object's logical constness guarantees; only the
            // non-const map() path passes create = true.
            PAddr next = const_cast<PageTable *>(this)->allocTable();
            mem_.write64(pte_addr, pte::make(next, Perms{}, false));
            table = next;
        } else {
            table = pte::frame(raw);
        }
    }
    if (leaf_level_out)
        *leaf_level_out = target_level;
    return entryAddr(table, levelIndex(vaddr, target_level));
}

void
PageTable::map(VAddr vaddr, PAddr paddr, PageSize size, Perms perms)
{
    const std::uint64_t bytes = pageBytes(size);
    panic_if(vaddr & (bytes - 1), "map: vaddr misaligned for %s page",
             pageSizeName(size));
    panic_if(paddr & (bytes - 1), "map: paddr misaligned for %s page",
             pageSizeName(size));

    unsigned level = leafLevel(size);
    unsigned found_level = 0;
    auto pte_addr = walkToLevel(vaddr, level, true, &found_level);
    panic_if(!pte_addr, "walkToLevel(create) failed");
    panic_if(found_level != level,
             "map: conflicting superpage leaf at level %u", found_level);
    std::uint64_t old = mem_.read64(*pte_addr);
    panic_if(pte::present(old), "map: vaddr 0x%llx already mapped",
             (unsigned long long)vaddr);
    mem_.write64(*pte_addr, pte::make(paddr, perms, level > 0));
    numMappings_++;
}

bool
PageTable::unmap(VAddr vaddr)
{
    unsigned found_level = 0;
    auto pte_addr = walkToLevel(vaddr, 0, false, &found_level);
    if (!pte_addr)
        return false;
    std::uint64_t raw = mem_.read64(*pte_addr);
    if (!pte::present(raw))
        return false;
    mem_.write64(*pte_addr, 0);
    numMappings_--;
    return true;
}

void
PageTable::remap(VAddr vaddr, PAddr new_paddr)
{
    auto pte_addr = leafPteAddr(vaddr);
    panic_if(!pte_addr, "remap of unmapped vaddr 0x%llx",
             (unsigned long long)vaddr);
    std::uint64_t raw = mem_.read64(*pte_addr);
    mem_.write64(*pte_addr,
                 (raw & ~pte::FrameMask) | (new_paddr & pte::FrameMask));
}

void
PageTable::clearLevelEntry(VAddr vaddr, unsigned level)
{
    unsigned found_level = 0;
    auto pte_addr = walkToLevel(vaddr, level, false, &found_level);
    panic_if(!pte_addr || found_level != level,
             "clearLevelEntry: no entry at level %u", level);
    std::uint64_t raw = mem_.read64(*pte_addr);
    if (pte::present(raw) && !pte::pageSizeBit(raw) && level > 0)
        retireSubtree(pte::frame(raw), level - 1);
    mem_.write64(*pte_addr, 0);
}

bool
PageTable::splitLeaf(VAddr vaddr)
{
    unsigned found_level = 0;
    auto pte_addr = walkToLevel(vaddr, 0, false, &found_level);
    if (!pte_addr || found_level == 0)
        return false;
    std::uint64_t raw = mem_.read64(*pte_addr);
    if (!pte::present(raw) || !pte::pageSizeBit(raw))
        return false;

    // Demotion runs when allocation is already failing, so the child
    // table frame must be allocated non-fatally (allocTable aborts).
    auto pfn = mem_.allocFrames(0, mem::FrameUse::PageTable);
    if (!pfn)
        return false;
    tableFrames_.push_back(*pfn);
    const PAddr child = static_cast<PAddr>(*pfn) << PageShift4K;

    const unsigned child_level = found_level - 1;
    const std::uint64_t child_bytes = 1ULL << levelShift(child_level);
    const PAddr pbase = pte::frame(raw);
    const Perms perms = pte::perms(raw);
    std::uint64_t ad_bits = 0;
    if (pte::accessed(raw))
        ad_bits |= pte::A;
    if (pte::dirty(raw))
        ad_bits |= pte::A | pte::D;
    for (unsigned idx = 0; idx < 512; idx++) {
        std::uint64_t child_raw =
            pte::make(pbase + idx * child_bytes, perms, child_level > 0)
            | ad_bits;
        mem_.write64(entryAddr(child, idx), child_raw);
    }
    mem_.write64(*pte_addr, pte::make(child, Perms{}, false));
    numMappings_ += 511;
    return true;
}

std::size_t
PageTable::reclaimRetiredFrames()
{
    if (retiredFrames_.empty())
        return 0;
    // Sorted release so the buddy free lists end up byte-identical no
    // matter what order the hash set iterates in.
    std::vector<Pfn> retired(retiredFrames_.begin(),
                             retiredFrames_.end());
    std::sort(retired.begin(), retired.end());
    for (Pfn pfn : retired)
        mem_.freeFrames(pfn, 0);
    std::erase_if(tableFrames_, [this](Pfn pfn) {
        return retiredFrames_.count(pfn) > 0;
    });
    const std::size_t released = retiredFrames_.size();
    retiredFrames_.clear();
    return released;
}

void
PageTable::retireSubtree(PAddr table, unsigned level)
{
    retiredFrames_.insert(table >> PageShift4K);
    if (level == 0)
        return;
    for (unsigned idx = 0; idx < 512; idx++) {
        std::uint64_t raw = mem_.read64(entryAddr(table, idx));
        if (pte::present(raw) && !pte::pageSizeBit(raw))
            retireSubtree(pte::frame(raw), level - 1);
    }
}

std::optional<Translation>
PageTable::translate(VAddr vaddr) const
{
    unsigned found_level = 0;
    auto pte_addr = walkToLevel(vaddr, 0, false, &found_level);
    if (!pte_addr)
        return std::nullopt;
    std::uint64_t raw = mem_.read64(*pte_addr);
    if (!pte::present(raw))
        return std::nullopt;

    PageSize size = found_level == 2 ? PageSize::Size1G
                    : found_level == 1 ? PageSize::Size2M
                                       : PageSize::Size4K;
    Translation xlate;
    xlate.vbase = pageBase(vaddr, size);
    xlate.pbase = pte::frame(raw);
    xlate.size = size;
    xlate.perms = pte::perms(raw);
    xlate.accessed = pte::accessed(raw);
    xlate.dirty = pte::dirty(raw);
    return xlate;
}

std::optional<PAddr>
PageTable::leafPteAddr(VAddr vaddr) const
{
    unsigned found_level = 0;
    auto pte_addr = walkToLevel(vaddr, 0, false, &found_level);
    if (!pte_addr)
        return std::nullopt;
    if (!pte::present(mem_.read64(*pte_addr)))
        return std::nullopt;
    return pte_addr;
}

void
PageTable::setAccessed(VAddr vaddr)
{
    auto pte_addr = leafPteAddr(vaddr);
    panic_if(!pte_addr, "setAccessed on unmapped vaddr");
    mem_.write64(*pte_addr, mem_.read64(*pte_addr) | pte::A);
}

void
PageTable::setDirty(VAddr vaddr)
{
    auto pte_addr = leafPteAddr(vaddr);
    panic_if(!pte_addr, "setDirty on unmapped vaddr");
    mem_.write64(*pte_addr, mem_.read64(*pte_addr) | pte::A | pte::D);
}

void
PageTable::forEachLeaf(
    const std::function<void(const Translation &)> &fn) const
{
    forEachLeafRec(root_, NumLevels - 1, 0, fn);
}

void
PageTable::forEachLeafRec(
    PAddr table, unsigned level, VAddr vbase,
    const std::function<void(const Translation &)> &fn) const
{
    for (unsigned idx = 0; idx < 512; idx++) {
        std::uint64_t raw = mem_.read64(entryAddr(table, idx));
        if (!pte::present(raw))
            continue;
        VAddr entry_vbase = vbase + (static_cast<VAddr>(idx)
                                     << levelShift(level));
        if (level == 0 || pte::pageSizeBit(raw)) {
            PageSize size = level == 2 ? PageSize::Size1G
                            : level == 1 ? PageSize::Size2M
                                         : PageSize::Size4K;
            Translation xlate;
            xlate.vbase = entry_vbase;
            xlate.pbase = pte::frame(raw);
            xlate.size = size;
            xlate.perms = pte::perms(raw);
            xlate.accessed = pte::accessed(raw);
            xlate.dirty = pte::dirty(raw);
            fn(xlate);
        } else {
            forEachLeafRec(pte::frame(raw), level - 1, entry_vbase, fn);
        }
    }
}

void
PageTable::auditTable(PAddr table, unsigned level,
                      std::unordered_set<Pfn> &reachable,
                      std::uint64_t &leaves,
                      contracts::AuditReport &report) const
{
    const Pfn pfn = table >> PageShift4K;
    if (!reachable.insert(pfn).second) {
        MIX_AUDIT_CHECK(report, false,
                        "table frame 0x%llx reachable twice from the "
                        "root (aliased subtree)",
                        (unsigned long long)pfn);
        return; // don't recurse into the alias and double-count leaves
    }
    MIX_AUDIT_CHECK(report,
                    mem_.frameUse(pfn) == mem::FrameUse::PageTable,
                    "reachable table frame 0x%llx is not tagged "
                    "PageTable",
                    (unsigned long long)pfn);

    for (unsigned idx = 0; idx < 512; idx++) {
        std::uint64_t raw = mem_.read64(entryAddr(table, idx));
        if (!pte::present(raw))
            continue;
        if (level == 0 || pte::pageSizeBit(raw)) {
            MIX_AUDIT_CHECK(report, level <= 2,
                            "superpage leaf at radix level %u", level);
            const PageSize size = level == 2 ? PageSize::Size1G
                                  : level == 1 ? PageSize::Size2M
                                               : PageSize::Size4K;
            MIX_AUDIT_CHECK(report,
                            (pte::frame(raw) & (pageBytes(size) - 1))
                                == 0,
                            "leaf PTE points at 0x%llx, misaligned "
                            "for a %s page",
                            (unsigned long long)pte::frame(raw),
                            pageSizeName(size));
            leaves++;
        } else {
            auditTable(pte::frame(raw), level - 1, reachable, leaves,
                       report);
        }
    }
}

void
PageTable::audit(contracts::AuditReport &report) const
{
    std::unordered_set<Pfn> reachable;
    std::uint64_t leaves = 0;
    auditTable(root_, NumLevels - 1, reachable, leaves, report);

    MIX_AUDIT_CHECK(report, leaves == numMappings_,
                    "tree holds %llu leaf PTEs but numMappings() "
                    "says %llu",
                    (unsigned long long)leaves,
                    (unsigned long long)numMappings_);

    // Every frame we ever allocated must be reachable from the root or
    // on the retired list (orphaned by a superpage promotion), and
    // nothing reachable may be a frame we never allocated.
    std::unordered_set<Pfn> owned(tableFrames_.begin(),
                                  tableFrames_.end());
    std::uint64_t orphans = 0;
    for (Pfn pfn : tableFrames_) {
        if (reachable.count(pfn) > 0 || retiredFrames_.count(pfn) > 0)
            continue;
        if (orphans++ < 8) {
            MIX_AUDIT_CHECK(report, false,
                            "allocated table frame 0x%llx is neither "
                            "reachable from the root nor retired",
                            (unsigned long long)pfn);
        }
    }
    MIX_AUDIT_CHECK(report, orphans <= 8,
                    "%llu further orphaned table frames",
                    (unsigned long long)(orphans - 8));
    // Sort the reachable set so the report text is byte-identical no
    // matter what order the hash table happens to iterate in.
    std::vector<Pfn> reached(reachable.begin(), reachable.end());
    std::sort(reached.begin(), reached.end());
    for (Pfn pfn : reached) {
        MIX_AUDIT_CHECK(report, owned.count(pfn) > 0,
                        "reachable table frame 0x%llx was never "
                        "allocated by this page table",
                        (unsigned long long)pfn);
    }
}

} // namespace mixtlb::pt
