/**
 * @file
 * Hardware page-table walker model.
 *
 * A walk returns (a) the leaf translation, (b) the physical addresses
 * touched at each radix level — which the MMU pushes through the cache
 * hierarchy to cost the walk — and (c) the decoded contents of the leaf
 * PTE's whole cache line (8 entries), which is exactly what the MIX TLB
 * coalescing logic scans for contiguous superpages on a fill (Sec. 3).
 *
 * The walker implements the x86 A/D-bit protocol: it sets the Accessed
 * bit of the leaf on every successful walk and sets the Dirty bit when
 * the walk was triggered by a store (Sec. 4.4).
 */

#ifndef MIXTLB_PT_WALKER_HH
#define MIXTLB_PT_WALKER_HH

#include <array>
#include <cstdint>
#include <optional>

#include "common/inline_vec.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "pt/page_table.hh"
#include "pt/pte.hh"
#include "pt/pwc.hh"

namespace mixtlb::pt
{

/** One decoded slot of the leaf PTE's cache line. */
struct LinePte
{
    bool present = false;
    Translation xlate{};
};

/**
 * Architectural bounds on WalkResult's lists, so walks never heap
 * allocate. A native walk touches <= 4 levels plus up to scanLines-1
 * extra leaf lines; the 2-D nested walk composes a <= 4-access host
 * walk per guest level (appended twice when the first attempt EPT
 * faults), one guest PTE line per level, and a final host walk for the
 * data GPA: 4 * (2 * 4 + 1) + 8 = 44 accesses worst case.
 */
constexpr std::size_t MaxWalkAccesses = 48;
/** fillAccesses holds at most scanLines - 1 <= 7 extra lines. */
constexpr std::size_t MaxFillAccesses = 8;
/** The decoded leaf group: at most 8 lines x 8 PTEs per line. */
constexpr std::size_t MaxLineSlots = 64;

/** Everything a TLB fill needs to know about one walk. */
struct WalkResult
{
    /** The leaf translation; empty on a page fault. */
    std::optional<Translation> leaf;

    /** Cacheline-aligned physical addresses touched, root first. */
    InlineVec<PAddr, MaxWalkAccesses> accesses;

    /**
     * Additional accesses issued by the fill/coalescing logic off the
     * walk's critical path (wide PTE scans). They consume bandwidth
     * and energy and perturb the caches, but add no translation
     * latency (Sec. 4.5).
     */
    InlineVec<PAddr, MaxFillAccesses> fillAccesses;

    /**
     * The PTE slots around the leaf, in ascending virtual-address
     * order, and the slot index of the requested leaf. A plain walker
     * scans the leaf's own cache line (8 slots); a wide-scanning
     * walker (used in front of L2 MIX TLBs, Sec. 4.2's "scan
     * additional cache lines" option) returns an aligned group of
     * several lines, each extra line charged as a memory access.
     * Only populated on a successful walk.
     */
    InlineVec<LinePte, MaxLineSlots> line;
    unsigned leafSlot = 0;

    /** Page size of each slot's granularity (all slots share a level). */
    PageSize lineGranularity = PageSize::Size4K;

    bool pageFault() const { return !leaf.has_value(); }
};

class Walker
{
  public:
    /**
     * @param table the page table to walk
     * @param parent stat group to hang walker statistics off
     * @param scan_lines PTE cache lines decoded per leaf (power of
     *        two): 1 models the paper's base design; 8 models the
     *        wide-scanning fill used in front of L2 MIX TLBs. Lines
     *        beyond the first are charged as memory accesses but only
     *        for superpage leaves (small-page fills never benefit).
     */
    Walker(const PageTable &table, stats::StatGroup *parent,
           unsigned scan_lines = 1, PwcParams pwc = {});

    /**
     * Perform a full walk for @p vaddr.
     * @param is_store sets the dirty bit on the leaf (x86 micro-op).
     */
    WalkResult walk(VAddr vaddr, bool is_store);

    /**
     * Re-read the cache line holding the leaf PTE of @p vaddr without a
     * full walk. Used when a MIX TLB extends an existing coalesced
     * bundle with newly demanded neighbours (Sec. 4.2, "capacity
     * strategies"). Returns nullopt if @p vaddr is unmapped.
     */
    std::optional<WalkResult> readLeafLine(VAddr vaddr, bool is_store);

    stats::StatGroup &statGroup() { return stats_; }

    /** The MMU's paging-structure cache (may be disabled). */
    PagingStructureCache &pwc() { return pwc_; }

    /**
     * Point subsequent walks at a different page table — the CR3 write
     * of a context switch. The PWC is deliberately left alone: its
     * entries are ASID-tagged, so the caller pairs this with
     * pwc().setAsid() (tagged switch) or pwc().invalidateAll() (flush).
     */
    void retarget(const PageTable &table) { table_ = &table; }

  private:
    const PageTable *table_;
    unsigned scanLines_;

    stats::StatGroup stats_;
    PagingStructureCache pwc_;
    stats::Counter &walks_;
    stats::Counter &pageFaults_;
    stats::Counter &memAccesses_;
    stats::Counter &dirtyUpdates_;

    /** Decode the leaf line(s) around @p pte_addr into @p result. */
    void fillLine(VAddr vaddr, PAddr pte_addr, unsigned level,
                  WalkResult &result);
};

} // namespace mixtlb::pt

#endif // MIXTLB_PT_WALKER_HH
