/**
 * @file
 * A skew-associative TLB supporting multiple page sizes concurrently
 * (Seznec, IEEE ToC 2004; discussed in Sec. 5.1 of the paper).
 *
 * Each way is dedicated to one page size and indexed by its own
 * skewing hash. All ways are probed in parallel, which is what makes
 * lookups energy-hungry (energy ~ sum of per-size associativities).
 * Replacement needs timestamps because skewing breaks set identity —
 * the area those timestamps cost is charged by the energy model when
 * building "area-equivalent" configurations (Figure 16).
 */

#ifndef MIXTLB_TLB_SKEW_HH
#define MIXTLB_TLB_SKEW_HH

#include <vector>

#include "tlb/base.hh"
#include "tlb/predictor.hh"

namespace mixtlb::tlb
{

struct SkewTlbParams
{
    /** Entries per way (number of rows). */
    std::uint64_t setsPerWay = 16;
    /** Ways dedicated to each page size, in PageSize order. */
    unsigned waysPerSize[NumPageSizes] = {2, 2, 2};
    /** Probe only the predicted size's ways first. */
    bool usePredictor = false;
    unsigned predictorEntries = 512;
};

class SkewTlb : public BaseTlb
{
  public:
    SkewTlb(const std::string &name, stats::StatGroup *parent,
            const SkewTlbParams &params);

    using BaseTlb::invalidate;

    TlbLookup lookup(VAddr vaddr, bool is_store) override;
    void fill(const FillInfo &fill) override;
    void invalidate(VAddr vbase, PageSize size, Asid asid) override;
    void invalidateAll() override;
    void invalidateAsid(Asid asid) override;
    void markDirty(VAddr vaddr) override;

    bool supports(PageSize size) const override;
    std::uint64_t numEntries() const override;
    unsigned numWays() const override { return totalWays_; }

    const SizePredictor *predictor() const { return predictor_.get(); }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t vpn = 0;
        Asid asid = 0;
        pt::Translation xlate{};
        bool dirty = false;
        std::uint64_t timestamp = 0;
    };

    SkewTlbParams params_;
    unsigned totalWays_;
    /** way -> page size handled by that way. */
    std::vector<PageSize> waySize_;
    /** [way][row] storage. */
    std::vector<std::vector<Entry>> ways_;
    std::uint64_t clock_ = 0;
    std::unique_ptr<SizePredictor> predictor_;

    /** The skewing hash of way @p way for @p vpn. */
    std::uint64_t rowOf(unsigned way, std::uint64_t vpn) const;

    /** Probe the ways of one size; returns hit way or -1. */
    int probeSize(VAddr vaddr, PageSize size, unsigned *ways_read);
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_SKEW_HH
