#include "hierarchy.hh"

#include "common/fault.hh"
#include "common/intmath.hh"
#include "common/logging.hh"

namespace mixtlb::tlb
{

/**
 * Injected walk-latency spike (fault::Site::WalkLatency): the extra
 * cycles a walk pays when its PTE fetches collide with DRAM traffic —
 * roughly two additional memory round trips.
 */
constexpr Cycles WalkLatencySpikeCycles = 200;

TlbHierarchy::TlbHierarchy(const std::string &name,
                           stats::StatGroup *parent,
                           std::unique_ptr<BaseTlb> l1,
                           std::shared_ptr<BaseTlb> l2,
                           WalkSource &source,
                           cache::CacheHierarchy &caches,
                           TlbHierarchyParams params)
    : stats_(name, parent), l1_(std::move(l1)), l2_(std::move(l2)),
      source_(source), caches_(caches), params_(params),
      accesses_(stats_.addCounter("accesses", "translated references")),
      l1Hits_(stats_.addCounter("l1_hits", "L1 TLB hits")),
      l2Hits_(stats_.addCounter("l2_hits", "L2 TLB hits")),
      walks_(stats_.addCounter("walks", "page table walks")),
      walkCycles_(stats_.addCounter("walk_cycles",
                                    "cycles spent in walks")),
      walkAccesses_(stats_.addCounter("walk_accesses",
          "memory references issued by walks")),
      walkDramAccesses_(stats_.addCounter("walk_dram_accesses",
          "walk references that reached DRAM")),
      pageFaults_(stats_.addCounter("page_faults",
                                    "demand page faults")),
      dirtyMicroOps_(stats_.addCounter("dirty_micro_ops",
          "dirty-bit update micro-ops injected")),
      translationCycles_(stats_.addCounter("translation_cycles",
          "total address translation cycles")),
      oracleChecks_(stats_.addCounter("oracle_checks",
          "translations cross-checked against the reference walk"))
{
    stats_.addFormula("l1_miss_rate", "L1 TLB miss fraction", [this] {
        double total = double(accesses_.value());
        return total > 0 ? 1.0 - double(l1Hits_.value()) / total : 0.0;
    });
}

Cycles
TlbHierarchy::chargeAccesses(std::span<const PAddr> accesses,
                             bool charge_latency)
{
    Cycles cycles = 0;
    for (PAddr paddr : accesses) {
        auto level = caches_.accessLevel(paddr, false);
        if (charge_latency)
            cycles += caches_.levelLatency(level);
        ++walkAccesses_;
        if (level == cache::HitLevel::Memory)
            ++walkDramAccesses_;
    }
    return cycles;
}

Cycles
TlbHierarchy::chargeWalk(const pt::WalkResult &walk)
{
    Cycles cycles = chargeAccesses(
        {walk.accesses.data(), walk.accesses.size()}, true);
    // Fill-logic accesses (wide PTE scans) run off the critical path:
    // they perturb the caches and cost energy but add no latency.
    chargeAccesses({walk.fillAccesses.data(), walk.fillAccesses.size()},
                   false);
    return cycles;
}

Cycles
TlbHierarchy::dirtyMicroOp(VAddr vaddr)
{
    ++dirtyMicroOps_;
    Cycles cycles = 0;
    if (auto pte_addr = source_.leafPteAddr(vaddr)) {
        cycles += caches_.access(alignDown(*pte_addr, CacheLineBytes),
                                 true);
    }
    source_.setDirty(vaddr);
    l1_->markDirty(vaddr);
    l2_->markDirty(vaddr);
    return cycles;
}

void
TlbHierarchy::oracleCheck(VAddr vaddr, PAddr paddr)
{
    if (!source_.hasRefTranslate())
        return;
    auto ref = source_.refTranslate(vaddr);
    ++oracleChecks_;
    MIX_EXPECT(ref && *ref == paddr,
               "differential oracle: TLB translated 0x%llx to 0x%llx "
               "but the reference walk says %s0x%llx",
               (unsigned long long)vaddr, (unsigned long long)paddr,
               ref ? "" : "unmapped ",
               (unsigned long long)(ref ? *ref : 0));
}

// mixcheck: hot
TlbHierarchy::AccessResult
TlbHierarchy::access(VAddr vaddr, bool is_store)
{
    ++accesses_;
    AccessResult result;

    TlbLookup l1_result = l1_->lookup(vaddr, is_store);
    if (l1_result.hit) {
        ++l1Hits_;
        result.l1Hit = true;
        result.paddr = l1_result.xlate.translate(vaddr);
        result.cycles = params_.l1HitLatency;
        if (is_store && !l1_result.entryDirty)
            result.cycles += dirtyMicroOp(vaddr);
        if (contracts::paranoia() >= 2)
            oracleCheck(vaddr, result.paddr);
        translationCycles_ += result.cycles;
        return result;
    }

    TlbLookup l2_result = l2_->lookup(vaddr, is_store);
    if (l2_result.hit) {
        ++l2Hits_;
        result.l2Hit = true;
        result.paddr = l2_result.xlate.translate(vaddr);
        result.cycles = params_.l1HitLatency + params_.l2HitLatency;
        // Refill L1, handing any L2 coalescing bundle down so an L2 MIX
        // hit preserves L1 MIX coalescing without a walk.
        FillInfo refill;
        refill.leaf = l2_result.xlate;
        refill.vaddr = vaddr;
        refill.bundle = l2_result.bundle;
        if (l1_->supports(refill.leaf.size))
            l1_->fill(refill);
        if (is_store && !l2_result.entryDirty)
            result.cycles += dirtyMicroOp(vaddr);
        if (contracts::paranoia() >= 2)
            oracleCheck(vaddr, result.paddr);
        translationCycles_ += result.cycles;
        return result;
    }

    // Full miss: walk, servicing at most one page fault.
    result.walked = true;
    result.cycles = params_.l1HitLatency + params_.l2HitLatency;
    ++walks_;
    pt::WalkResult walk = source_.walk(vaddr, is_store);
    result.cycles += chargeWalk(walk);
    if (fault::fire(fault::Site::WalkLatency))
        result.cycles += WalkLatencySpikeCycles;
    if (walk.pageFault()) {
        ++pageFaults_;
        result.faulted = true;
        if (!source_.fault(vaddr, is_store)) {
            result.ok = false;
            translationCycles_ += result.cycles;
            return result;
        }
        ++walks_;
        walk = source_.walk(vaddr, is_store);
        result.cycles += chargeWalk(walk);
        panic_if(walk.pageFault(), "walk faulted after fault service");
    }
    walkCycles_ += result.cycles;

    FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.vaddr = vaddr;
    fill.walk = &walk;
    if (l2_->supports(fill.leaf.size))
        l2_->fill(fill);
    if (l1_->supports(fill.leaf.size))
        l1_->fill(fill);

    result.paddr = walk.leaf->translate(vaddr);
    // The walker set the dirty bit on a store (x86 protocol), so no
    // separate micro-op is needed on this path.
    if (contracts::paranoia() >= 2)
        oracleCheck(vaddr, result.paddr);
    translationCycles_ += result.cycles;
    return result;
}

void
TlbHierarchy::invalidatePage(VAddr vbase, PageSize size)
{
    l1_->invalidate(vbase, size);
    l2_->invalidate(vbase, size);
    source_.invalidate(vbase, size);
}

void
TlbHierarchy::invalidatePage(VAddr vbase, PageSize size, Asid asid)
{
    l1_->invalidate(vbase, size, asid);
    l2_->invalidate(vbase, size, asid);
    source_.invalidate(vbase, size);
}

void
TlbHierarchy::invalidateAll()
{
    l1_->invalidateAll();
    l2_->invalidateAll();
}

void
TlbHierarchy::invalidateAsid(Asid asid)
{
    l1_->invalidateAsid(asid);
    l2_->invalidateAsid(asid);
    source_.invalidateAsid(asid);
}

void
TlbHierarchy::setAsid(Asid asid)
{
    l1_->setAsid(asid);
    l2_->setAsid(asid);
}

} // namespace mixtlb::tlb
