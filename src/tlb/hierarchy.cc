#include "hierarchy.hh"

#include <atomic>

#include "common/fault.hh"
#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/simd.hh"

namespace mixtlb::tlb
{

namespace
{
std::atomic<bool> g_l0_filter_enabled{true};
} // namespace

void
setL0FilterEnabled(bool enabled)
{
    g_l0_filter_enabled.store(enabled, std::memory_order_relaxed);
}

bool
l0FilterEnabled()
{
    return g_l0_filter_enabled.load(std::memory_order_relaxed);
}

/**
 * Injected walk-latency spike (fault::Site::WalkLatency): the extra
 * cycles a walk pays when its PTE fetches collide with DRAM traffic —
 * roughly two additional memory round trips.
 */
constexpr Cycles WalkLatencySpikeCycles = 200;

TlbHierarchy::TlbHierarchy(const std::string &name,
                           stats::StatGroup *parent,
                           std::unique_ptr<BaseTlb> l1,
                           std::shared_ptr<BaseTlb> l2,
                           WalkSource &source,
                           cache::CacheHierarchy &caches,
                           TlbHierarchyParams params)
    : stats_(name, parent), l1_(std::move(l1)), l2_(std::move(l2)),
      source_(source), caches_(caches), params_(params),
      accesses_(stats_.addCounter("accesses", "translated references")),
      l1Hits_(stats_.addCounter("l1_hits", "L1 TLB hits")),
      l2Hits_(stats_.addCounter("l2_hits", "L2 TLB hits")),
      walks_(stats_.addCounter("walks", "page table walks")),
      walkCycles_(stats_.addCounter("walk_cycles",
                                    "cycles spent in walks")),
      walkAccesses_(stats_.addCounter("walk_accesses",
          "memory references issued by walks")),
      walkDramAccesses_(stats_.addCounter("walk_dram_accesses",
          "walk references that reached DRAM")),
      pageFaults_(stats_.addCounter("page_faults",
                                    "demand page faults")),
      dirtyMicroOps_(stats_.addCounter("dirty_micro_ops",
          "dirty-bit update micro-ops injected")),
      translationCycles_(stats_.addCounter("translation_cycles",
          "total address translation cycles")),
      oracleChecks_(stats_.addCounter("oracle_checks",
          "translations cross-checked against the reference walk"))
{
    stats_.addFormula("l1_miss_rate", "L1 TLB miss fraction", [this] {
        double total = double(accesses_.value());
        return total > 0 ? 1.0 - double(l1Hits_.value()) / total : 0.0;
    });
}

Cycles
TlbHierarchy::chargeAccesses(std::span<const PAddr> accesses,
                             bool charge_latency)
{
    Cycles cycles = 0;
    for (PAddr paddr : accesses) {
        auto level = caches_.accessLevel(paddr, false);
        if (charge_latency)
            cycles += caches_.levelLatency(level);
        ++walkAccesses_;
        if (level == cache::HitLevel::Memory)
            ++walkDramAccesses_;
    }
    return cycles;
}

Cycles
TlbHierarchy::chargeWalk(const pt::WalkResult &walk)
{
    Cycles cycles = chargeAccesses(
        {walk.accesses.data(), walk.accesses.size()}, true);
    // Fill-logic accesses (wide PTE scans) run off the critical path:
    // they perturb the caches and cost energy but add no latency.
    chargeAccesses({walk.fillAccesses.data(), walk.fillAccesses.size()},
                   false);
    return cycles;
}

Cycles
TlbHierarchy::dirtyMicroOp(VAddr vaddr)
{
    ++dirtyMicroOps_;
    Cycles cycles = 0;
    if (auto pte_addr = source_.leafPteAddr(vaddr)) {
        cycles += caches_.access(alignDown(*pte_addr, CacheLineBytes),
                                 true);
    }
    source_.setDirty(vaddr);
    l1_->markDirty(vaddr);
    l2_->markDirty(vaddr);
    return cycles;
}

void
TlbHierarchy::oracleCheck(VAddr vaddr, PAddr paddr)
{
    if (!source_.hasRefTranslate())
        return;
    auto ref = source_.refTranslate(vaddr);
    ++oracleChecks_;
    MIX_EXPECT(ref && *ref == paddr,
               "differential oracle: TLB translated 0x%llx to 0x%llx "
               "but the reference walk says %s0x%llx",
               (unsigned long long)vaddr, (unsigned long long)paddr,
               ref ? "" : "unmapped ",
               (unsigned long long)(ref ? *ref : 0));
}

void
TlbHierarchy::refreshHotState()
{
    paranoia_ = contracts::paranoia();
    walkSpikeArmed_ = fault::armed(fault::Site::WalkLatency);
    filterOn_ = l0FilterEnabled();
    if (!filterOn_)
        filter_.valid = false;
}

TlbHierarchy::AccessResult
TlbHierarchy::access(VAddr vaddr, bool is_store)
{
    refreshHotState();
    return accessImpl(vaddr, is_store);
}

// mixcheck: hot
TlbHierarchy::AccessResult
TlbHierarchy::accessImpl(VAddr vaddr, bool is_store)
{
    // L0 MRU filter: a repeat reference into the armed 4KB page
    // replays the cached hit. The hit design certified (replayable())
    // that the same lookup repeats bit-identically with a no-op MRU
    // rotate, so only the counters the full path would bump are
    // bumped. Stores require the cached entry to already be dirty —
    // a clean entry means the full path would inject a dirty micro-op,
    // which mutates TLB and cache state and must really run.
    if (filter_.valid && vaddr - filter_.lo < PageBytes4K) {
        const TlbLookup &hit =
            filter_.l2Path ? filter_.l2Result : filter_.l1Result;
        if (!is_store || hit.entryDirty) {
            ++accesses_;
            AccessResult result;
            result.paddr = hit.xlate.translate(vaddr);
            result.cycles = filter_.cycles;
            l1_->replayLookup(filter_.l1Result);
            if (filter_.l2Path) {
                l2_->replayLookup(filter_.l2Result);
                ++l2Hits_;
                result.l2Hit = true;
            } else {
                ++l1Hits_;
                result.l1Hit = true;
            }
            if (paranoia_ >= 2)
                oracleCheck(vaddr, result.paddr);
            translationCycles_ += result.cycles;
            return result;
        }
    }
    filter_.valid = false;

    ++accesses_;
    AccessResult result;

    TlbLookup l1_result = l1_->lookup(vaddr, is_store);
    if (l1_result.hit) {
        ++l1Hits_;
        result.l1Hit = true;
        result.paddr = l1_result.xlate.translate(vaddr);
        result.cycles = params_.l1HitLatency;
        const bool micro_op = is_store && !l1_result.entryDirty;
        if (micro_op)
            result.cycles += dirtyMicroOp(vaddr);
        if (paranoia_ >= 2)
            oracleCheck(vaddr, result.paddr);
        translationCycles_ += result.cycles;
        if (filterOn_ && !micro_op &&
            l1_->replayable(l1_result, vaddr)) {
            filter_.valid = true;
            filter_.l2Path = false;
            filter_.lo = pageBase(vaddr, PageSize::Size4K);
            filter_.cycles = result.cycles;
            filter_.l1Result = l1_result;
        }
        return result;
    }

    TlbLookup l2_result = l2_->lookup(vaddr, is_store);
    if (l2_result.hit) {
        ++l2Hits_;
        result.l2Hit = true;
        result.paddr = l2_result.xlate.translate(vaddr);
        result.cycles = params_.l1HitLatency + params_.l2HitLatency;
        // Refill L1, handing any L2 coalescing bundle down so an L2 MIX
        // hit preserves L1 MIX coalescing without a walk.
        FillInfo refill;
        refill.leaf = l2_result.xlate;
        refill.vaddr = vaddr;
        refill.bundle = l2_result.bundle;
        const bool refilled = l1_->supports(refill.leaf.size);
        if (refilled)
            l1_->fill(refill);
        const bool micro_op = is_store && !l2_result.entryDirty;
        if (micro_op)
            result.cycles += dirtyMicroOp(vaddr);
        if (paranoia_ >= 2)
            oracleCheck(vaddr, result.paddr);
        translationCycles_ += result.cycles;
        // Arm only when a replay would repeat both levels exactly: no
        // L1 refill (it mutated L1), no micro-op, and an L2 exclusive
        // to this hierarchy (GPU cores share the L2; another core's
        // traffic would move its LRU under the filter).
        if (filterOn_ && !refilled && !micro_op &&
            l2_.use_count() == 1 &&
            l1_->replayable(l1_result, vaddr) &&
            l2_->replayable(l2_result, vaddr)) {
            filter_.valid = true;
            filter_.l2Path = true;
            filter_.lo = pageBase(vaddr, PageSize::Size4K);
            filter_.cycles = result.cycles;
            filter_.l1Result = l1_result;
            filter_.l2Result = l2_result;
        }
        return result;
    }

    // Full miss: walk, servicing at most one page fault.
    result.walked = true;
    result.cycles = params_.l1HitLatency + params_.l2HitLatency;
    ++walks_;
    pt::WalkResult walk = source_.walk(vaddr, is_store);
    result.cycles += chargeWalk(walk);
    if (walkSpikeArmed_ && fault::fire(fault::Site::WalkLatency))
        result.cycles += WalkLatencySpikeCycles;
    if (walk.pageFault()) {
        ++pageFaults_;
        result.faulted = true;
        if (!source_.fault(vaddr, is_store)) {
            result.ok = false;
            translationCycles_ += result.cycles;
            return result;
        }
        ++walks_;
        walk = source_.walk(vaddr, is_store);
        result.cycles += chargeWalk(walk);
        panic_if(walk.pageFault(), "walk faulted after fault service");
    }
    walkCycles_ += result.cycles;

    FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.vaddr = vaddr;
    fill.walk = &walk;
    if (l2_->supports(fill.leaf.size))
        l2_->fill(fill);
    if (l1_->supports(fill.leaf.size))
        l1_->fill(fill);

    result.paddr = walk.leaf->translate(vaddr);
    // The walker set the dirty bit on a store (x86 protocol), so no
    // separate micro-op is needed on this path.
    if (contracts::paranoia() >= 2)
        oracleCheck(vaddr, result.paddr);
    translationCycles_ += result.cycles;
    return result;
}

// mixcheck: hot
TlbHierarchy::BatchResult
TlbHierarchy::translateBatch(std::span<const MemRef> refs,
                             bool charge_data)
{
    refreshHotState();
    BatchResult out;
    out.done = refs.size();

    // Consecutive L0-filter replays accumulate here and flush as one
    // bulk replayLookup(n) — the designs' counters advance by the same
    // totals as n individual replays. The flush must precede any full
    // accessImpl (its lookups overwrite per-component replay state,
    // e.g. SplitTlb::lastSub_) and the batch's return (callers read
    // stats between batches).
    std::uint64_t pending = 0;
    Cycles fast_cycles = 0;
    const auto flush = [&] {
        if (!pending)
            return;
        accesses_ += pending;
        l1_->replayLookup(filter_.l1Result, pending);
        if (filter_.l2Path) {
            l2_->replayLookup(filter_.l2Result, pending);
            l2Hits_ += pending;
        } else {
            l1Hits_ += pending;
        }
        translationCycles_ += fast_cycles;
        out.cycles += fast_cycles;
        pending = 0;
        fast_cycles = 0;
    };

    for (std::size_t i = 0; i < refs.size(); ++i) {
        if (filter_.valid) {
            // Wide run-scan: count the leading refs the armed filter
            // replays (in-page, and loads-only unless the cached entry
            // is dirty) in one go instead of re-testing the filter per
            // reference. The run is charged in bulk; per-ref work
            // survives only where it has side effects (oracle checks,
            // data-cache charging) and runs in the original order.
            const TlbLookup &hit =
                filter_.l2Path ? filter_.l2Result : filter_.l1Result;
            const std::size_t run_end = simd::l0RunLength(
                refs.data() + i, refs.size() - i, filter_.lo,
                hit.entryDirty) + i;
            if (run_end != i) {
                if (charge_data || paranoia_ >= 2) {
                    for (std::size_t j = i; j < run_end; ++j) {
                        const VAddr vaddr = refs[j].vaddr;
                        const PAddr paddr = hit.xlate.translate(vaddr);
                        if (paranoia_ >= 2)
                            oracleCheck(vaddr, paddr);
                        if (charge_data) {
                            const bool is_store =
                                refs[j].type == AccessType::Write;
                            out.dataCycles +=
                                caches_.access(paddr, is_store);
                        }
                    }
                }
                pending += run_end - i;
                fast_cycles += (run_end - i) * filter_.cycles;
                if (run_end == refs.size())
                    break;
                i = run_end;
            }
        }
        const VAddr vaddr = refs[i].vaddr;
        const bool is_store = refs[i].type == AccessType::Write;
        flush();
        AccessResult result = accessImpl(vaddr, is_store);
        out.cycles += result.cycles;
        if (!result.ok) {
            out.ok = false;
            out.done = i;
            return out;
        }
        if (charge_data)
            out.dataCycles += caches_.access(result.paddr, is_store);
    }
    flush();
    return out;
}

void
TlbHierarchy::invalidatePage(VAddr vbase, PageSize size)
{
    filter_.valid = false;
    l1_->invalidate(vbase, size);
    l2_->invalidate(vbase, size);
    source_.invalidate(vbase, size);
}

void
TlbHierarchy::invalidatePage(VAddr vbase, PageSize size, Asid asid)
{
    filter_.valid = false;
    l1_->invalidate(vbase, size, asid);
    l2_->invalidate(vbase, size, asid);
    source_.invalidate(vbase, size);
}

void
TlbHierarchy::invalidateAll()
{
    filter_.valid = false;
    l1_->invalidateAll();
    l2_->invalidateAll();
}

void
TlbHierarchy::invalidateAsid(Asid asid)
{
    filter_.valid = false;
    l1_->invalidateAsid(asid);
    l2_->invalidateAsid(asid);
    source_.invalidateAsid(asid);
}

void
TlbHierarchy::setAsid(Asid asid)
{
    filter_.valid = false;
    l1_->setAsid(asid);
    l2_->setAsid(asid);
}

} // namespace mixtlb::tlb
