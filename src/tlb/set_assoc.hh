/**
 * @file
 * Classic single-page-size TLBs: set-associative (the building block of
 * commercial split TLBs) and fully-associative (used for the tiny 1GB
 * L1 TLBs in Haswell-class parts).
 */

#ifndef MIXTLB_TLB_SET_ASSOC_HH
#define MIXTLB_TLB_SET_ASSOC_HH

#include <vector>

#include "tlb/base.hh"
#include "tlb/tag_lane.hh"

namespace mixtlb::tlb
{

/**
 * A conventional set-associative TLB caching exactly one page size.
 * Index bits come from the low bits of that size's VPN; LRU within a
 * set. Lookups for other page sizes always miss (they belong in a
 * different split component).
 */
class SetAssocTlb : public BaseTlb
{
  public:
    /**
     * @param entries total entries; must divide evenly by @p assoc.
     * Sets need not be a power of two (the simulator indexes modulo
     * the set count).
     */
    SetAssocTlb(const std::string &name, stats::StatGroup *parent,
                std::uint64_t entries, unsigned assoc, PageSize size);

    using BaseTlb::invalidate;

    TlbLookup lookup(VAddr vaddr, bool is_store) override;
    void fill(const FillInfo &fill) override;
    void invalidate(VAddr vbase, PageSize size, Asid asid) override;
    void invalidateAll() override;
    void invalidateAsid(Asid asid) override;
    void markDirty(VAddr vaddr) override;

    bool supports(PageSize size) const override { return size == size_; }
    std::uint64_t numEntries() const override { return entries_; }
    unsigned numWays() const override { return assoc_; }

    /**
     * Lookups only rotate the hit entry to the MRU front: within one
     * 4KB page the VPN — hence the set, the match, and the (no-op)
     * rotate — cannot change, for hits and misses alike.
     */
    bool
    replayable(const TlbLookup &result, VAddr vaddr) const override
    {
        (void)result;
        (void)vaddr;
        return true;
    }

  private:
    struct Entry
    {
        std::uint64_t vpn; ///< in this page size's units
        Asid asid;
        pt::Translation xlate;
        bool dirty;
    };

    std::uint64_t entries_;
    unsigned assoc_;
    PageSize size_;
    std::uint64_t numSets_;
    /** Mask for power-of-two set counts; 0 selects the modulo path. */
    std::uint64_t setMask_;
    /** Ctor-latched referenceScanEnabled(): full-predicate scans. */
    bool referenceScan_;
    /** Per-set SoA ways, front = MRU (small, so shifts are cheap). */
    std::vector<TagLaneSet<Entry>> sets_;

    std::uint64_t
    setOf(std::uint64_t vpn) const
    {
        return setMask_ ? (vpn & setMask_) : vpn % numSets_;
    }

    /** Tag lane packing: collisions confirmed against the payload. */
    static std::uint64_t
    tagOf(std::uint64_t vpn, Asid asid)
    {
        return (vpn << 16) | asid;
    }

    /** First way matching (vpn, asid), or npos. */
    std::size_t find(TagLaneSet<Entry> &set, std::uint64_t vpn) const;
};

/**
 * A fully-associative TLB. It may be restricted to a subset of page
 * sizes (e.g. the 4-entry 1GB L1 TLB) — full associativity sidesteps
 * the set-index chicken-and-egg problem, at high lookup energy.
 */
class FullyAssocTlb : public BaseTlb
{
  public:
    FullyAssocTlb(const std::string &name, stats::StatGroup *parent,
                  std::uint64_t entries,
                  std::initializer_list<PageSize> sizes);

    using BaseTlb::invalidate;

    TlbLookup lookup(VAddr vaddr, bool is_store) override;
    void fill(const FillInfo &fill) override;
    void invalidate(VAddr vbase, PageSize size, Asid asid) override;
    void invalidateAll() override;
    void invalidateAsid(Asid asid) override;
    void markDirty(VAddr vaddr) override;

    bool supports(PageSize size) const override;
    std::uint64_t numEntries() const override { return entries_; }
    unsigned numWays() const override
    {
        return static_cast<unsigned>(entries_);
    }

    /**
     * Page coverage is constant across a 4KB page (every cached page
     * is at least 4KB and aligned), and a hit leaves its entry at the
     * MRU front, so any outcome replays within the page.
     */
    bool
    replayable(const TlbLookup &result, VAddr vaddr) const override
    {
        (void)result;
        (void)vaddr;
        return true;
    }

  private:
    struct Entry
    {
        Asid asid;
        pt::Translation xlate;
        bool dirty;
    };

    std::uint64_t entries_;
    bool sizeMask_[NumPageSizes] = {};
    /** Ctor-latched referenceScanEnabled(): full-predicate scans. */
    bool referenceScan_;
    TagLaneSet<Entry> lru_; ///< front = MRU

    /** Tag lane packing: collisions confirmed against the payload. */
    static std::uint64_t
    tagOf(VAddr vbase, PageSize size, Asid asid)
    {
        return ((vbase >> PageShift4K) << 20) |
               (std::uint64_t(static_cast<unsigned>(size)) << 16) |
               asid;
    }
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_SET_ASSOC_HH
