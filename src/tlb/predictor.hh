/**
 * @file
 * A page-size predictor in the spirit of Papadopoulou et al. (HPCA
 * 2014), used to enhance the hash-rehash and skew-associative TLBs the
 * paper compares against (Sec. 5.1).
 *
 * The predictor is a small untagged table indexed by a hash of the
 * virtual address's 2MB-region bits; each entry holds the last
 * resolved page size for addresses falling in that region. Accurate
 * prediction lets a multi-index TLB probe the right size first.
 */

#ifndef MIXTLB_TLB_PREDICTOR_HH
#define MIXTLB_TLB_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mixtlb::tlb
{

class SizePredictor
{
  public:
    SizePredictor(const std::string &name, stats::StatGroup *parent,
                  unsigned entries = 512);

    /** Predicted page size for @p vaddr. */
    PageSize predict(VAddr vaddr) const;

    /** Train with the resolved size. */
    void update(VAddr vaddr, PageSize actual);

    /** Record whether the earlier prediction turned out right. */
    void recordOutcome(bool correct);

    double accuracy() const;

    std::uint64_t numEntries() const { return table_.size(); }

  private:
    std::vector<PageSize> table_;

    stats::StatGroup stats_;
    stats::Scalar &correct_;
    stats::Scalar &wrong_;

    std::size_t indexOf(VAddr vaddr) const;
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_PREDICTOR_HH
