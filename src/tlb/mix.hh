/**
 * @file
 * The MIX TLB (Sections 3-4 of the paper): a single set-associative
 * structure that concurrently caches every page size.
 *
 * Design recap:
 *  - All lookups use the *small-page* index bits, so superpages do not
 *    map to a unique set; fills place a **mirror** copy in every set.
 *  - Fills scan the leaf PTE's cache line and **coalesce** runs of
 *    contiguous (VA and PA), same-permission, accessed superpages into
 *    one entry, counteracting the capacity the mirrors cost.
 *  - L1 entries track coalesced superpages with a **bitmap** (holes
 *    allowed, per-superpage invalidation); L2 entries use a **length**
 *    field (longer runs, whole-bundle invalidation) — Sec. 4.1.
 *  - Only runs within an aligned window of maxCoalesce superpages may
 *    coalesce (the paper's alignment restriction).
 *  - Later misses to superpages adjacent to an existing bundle (in
 *    other page-table cache lines) merge into it (Sec. 4.2).
 *  - Mirrors evolve independently under per-set LRU; duplicate copies
 *    that arise are detected and collapsed on probe (Sec. 4.3).
 *  - Bundle permission/dirty protocol follows Sec. 4.4: equal
 *    permissions required; bundle dirty bit = AND of members. Dirty
 *    micro-ops update singleton superpage entries in *every* set (the
 *    update rides the fill path's burst write), so stale mirrors do
 *    not trigger repeat micro-ops when probed through another set.
 *
 * The class also implements two evaluated variants:
 *  - colt4k > 1 adds COLT-style coalescing of contiguous small pages
 *    (the "MIX + COLT" design of Figure 18).
 *  - superpageIndexBits = true switches the index to the 2MB page's
 *    bits (the rejected design discussed in Sec. 3).
 */

#ifndef MIXTLB_TLB_MIX_HH
#define MIXTLB_TLB_MIX_HH

#include <vector>

#include "tlb/base.hh"
#include "tlb/tag_lane.hh"

namespace mixtlb::tlb
{

/** How a MIX entry records its coalesced superpages (Sec. 4.1). */
enum class CoalesceMode : std::uint8_t
{
    Bitmap, ///< L1 style: one valid bit per window slot
    Length, ///< L2 style: contiguous run [runStart, runStart+length)
};

struct MixTlbParams
{
    std::uint64_t entries = 96;
    unsigned assoc = 6;
    CoalesceMode mode = CoalesceMode::Bitmap;
    /**
     * Superpages coalescible per entry; 0 means "one per set", the
     * natural choice since that offsets mirroring exactly. Bitmap mode
     * caps at 64 (a 64-bit map repurposed from spare tag bits).
     */
    unsigned maxCoalesce = 0;
    /**
     * Contiguous small pages coalescible per entry (1 = off,
     * 4 = COLT). Capped at 64: membership lives in the 64-bit bitmap.
     */
    unsigned colt4k = 1;
    /** Ablation: index with 2MB-page bits instead of 4KB bits (Sec. 3). */
    bool superpageIndexBits = false;
    /** Ablation: drop the alignment restriction of Sec. 4.1. */
    bool alignmentRestricted = true;
};

class MixTlb : public BaseTlb
{
  public:
    MixTlb(const std::string &name, stats::StatGroup *parent,
           const MixTlbParams &params);

    using BaseTlb::invalidate;

    TlbLookup lookup(VAddr vaddr, bool is_store) override;
    void fill(const FillInfo &fill) override;
    void invalidate(VAddr vbase, PageSize size, Asid asid) override;
    void invalidateAll() override;
    void invalidateAsid(Asid asid) override;
    void markDirty(VAddr vaddr) override;

    bool supports(PageSize) const override { return true; }
    std::uint64_t numEntries() const override { return params_.entries; }
    unsigned numWays() const override { return params_.assoc; }

    /**
     * A hit replays only when its duplicate-collapse pass merged
     * nothing: with the set unchanged, a repeat probe within the same
     * 4KB page (same index, same covering front entry, same bundle)
     * again merges nothing. A hit that did collapse mirrors mutated
     * the set; in Length mode the merge can even extend the run and
     * enable further merges, so it must not be short-circuited.
     * Misses scan without mutating and always replay.
     */
    bool
    replayable(const TlbLookup &result, VAddr vaddr) const override
    {
        (void)vaddr;
        return !(result.hit && lastLookupMerged_);
    }

    unsigned numSets() const { return numSets_; }
    unsigned maxCoalesce() const { return maxCoalesce_; }

    /** Mirror copies written per superpage fill (for energy studies). */
    double mirrorWrites() const { return double(mirrorWrites_.value()); }

    /**
     * Structural audit of every set (Sec. 4.1/4.3/4.4 invariants):
     * mirror copies of one superpage window must agree on physical
     * anchor and permissions across sets, singleton mirrors must agree
     * on the dirty bit, membership must stay inside the aligned
     * maxCoalesce (or colt4k) window, and small-page entries must live
     * in the one set their index selects.
     */
    void auditSets(contracts::AuditReport &report) const;

    void
    audit(contracts::AuditReport &report) const override
    {
        auditSets(report);
    }

  private:
    /**
     * One MIX TLB entry. The entry covers an aligned *window* of
     * `groupSlots(size)` pages of its size, anchored at wbase; slot i
     * is present iff the membership test passes AND that page's
     * physical address equals wpbase + i * pageBytes(size) (coalescing
     * requires both VA and PA contiguity).
     */
    struct Entry
    {
        PageSize size;
        Asid asid;
        VAddr wbase;          ///< window base virtual address
        PAddr wpbase;         ///< physical address window anchor
        std::uint64_t bitmap; ///< Bitmap mode (and all 4K entries)
        std::uint32_t runStart; ///< Length mode: first present slot
        std::uint32_t length;   ///< Length mode: present slot count
        pt::Perms perms;
        bool dirty;

        bool slotPresent(unsigned slot, CoalesceMode mode) const;
    };

    MixTlbParams params_;
    unsigned numSets_;
    unsigned maxCoalesce_;
    /** Mask for power-of-two set counts; 0 selects the modulo path. */
    std::uint64_t setMask_;
    /** log2(colt4k); colt4k is enforced to be a power of two. */
    unsigned colt4kShift_;

    /**
     * Ctor-latched referenceScanEnabled(), forced on when the
     * alignment-restriction ablation is active: a floating window
     * anchor makes candidate window bases uncomputable at probe time,
     * so that configuration always scans with the full predicate.
     */
    bool referenceScan_;
    /** Flat per-set SoA arrays, front = MRU. */
    std::vector<TagLaneSet<Entry>> sets_;

    /** Did the most recent lookup() collapse any duplicate mirrors? */
    bool lastLookupMerged_ = false;

    stats::Counter &mirrorWrites_;
    stats::Counter &duplicatesRemoved_;
    stats::Counter &extensions_;

    /**
     * Tag lane packing: the window base is at least 4KB aligned (even
     * the floating-anchor ablation anchors on a page base), leaving
     * the low bits free for the size index and ASID. A covering entry
     * of size s must have wbase == windowBase(vaddr, s) when windows
     * are aligned, so a probe needs one candidate tag per page size.
     * Entries sharing (wbase, size, asid) but differing in anchor,
     * perms, or membership share a tag; confirm predicates
     * (entryCovers / compatible) disambiguate.
     */
    static std::uint64_t
    tagOf(VAddr wbase, PageSize size, Asid asid)
    {
        return ((wbase >> PageShift4K) << 18) |
               (std::uint64_t(static_cast<unsigned>(size)) << 16) |
               asid;
    }

    /** The set probed for @p vaddr (small-page or ablation indexing). */
    unsigned indexOf(VAddr vaddr) const;

    /** Pages per coalescing window for a given page size. */
    unsigned groupSlots(PageSize size) const;

    /** Window base covering @p vbase for a page of @p size. */
    VAddr windowBase(VAddr vbase, PageSize size) const;

    /** Does @p entry cover @p vaddr (present slot)? */
    bool entryCovers(const Entry &entry, VAddr vaddr) const;

    /**
     * Build the entry for a fill: the window around @p leaf populated
     * with every compatible coalescing candidate from the walk line or
     * an upper-level bundle.
     */
    Entry buildEntry(const FillInfo &fill) const;

    /** Merge @p incoming into @p existing (requires compatible()). */
    void merge(Entry &existing, const Entry &incoming);

    /** Same window/anchor/perms and (length mode) unionable runs. */
    bool compatible(const Entry &a, const Entry &b) const;

    /** Insert @p entry into set @p set, merging or evicting LRU. */
    void insertIntoSet(unsigned set, const Entry &entry);

    /** Insert without a merge check (non-probed mirror sets). */
    void blindInsert(unsigned set, const Entry &entry);

    /** Synthesize the bundle around the slot covering @p vaddr. */
    BundleInfo bundleAround(const Entry &entry, VAddr vaddr) const;

    /** Number of present pages in @p entry. */
    unsigned population(const Entry &entry) const;

    /** Test-only backdoor for the corruption-injection audit tests. */
    friend struct MixTlbTestAccess;
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_MIX_HH
