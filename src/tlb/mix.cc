#include "mix.hh"

#include <algorithm>
#include <bit>
#include <map>
#include <tuple>
#include <utility>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mixtlb::tlb
{

MixTlb::MixTlb(const std::string &name, stats::StatGroup *parent,
               const MixTlbParams &params)
    : BaseTlb(name, parent), params_(params),
      referenceScan_(referenceScanEnabled() || !params.alignmentRestricted),
      mirrorWrites_(stats_.addCounter("mirror_writes",
          "superpage mirror copies written on fills")),
      duplicatesRemoved_(stats_.addCounter("duplicates_removed",
          "duplicate mirrors collapsed on probe (Sec. 4.3)")),
      extensions_(stats_.addCounter("extensions",
          "existing bundles extended by later fills (Sec. 4.2)"))
{
    MIX_EXPECT(params.assoc > 0 && params.entries > 0 &&
               params.entries % params.assoc == 0,
               "MIX TLB geometry does not divide evenly");
    MIX_EXPECT(params.colt4k != 0 && isPowerOf2(params.colt4k),
               "colt4k must be a nonzero power of two");
    // Small-page entries always track membership with the 64-bit
    // bitmap; a wider window would shift past it (undefined behaviour
    // in buildEntry/invalidate).
    MIX_EXPECT(params.colt4k <= 64,
               "colt4k exceeds the 64-slot bitmap (got %u)",
               params.colt4k);
    numSets_ = static_cast<unsigned>(params.entries / params.assoc);
    maxCoalesce_ = params.maxCoalesce ? params.maxCoalesce : numSets_;
    if (params.mode == CoalesceMode::Bitmap && maxCoalesce_ > 64)
        maxCoalesce_ = 64; // a 64-bit map is the storage ceiling
    setMask_ = (numSets_ & (numSets_ - 1)) == 0 ? numSets_ - 1 : 0;
    colt4kShift_ =
        static_cast<unsigned>(std::countr_zero(params.colt4k));
    sets_.resize(numSets_);
    for (auto &set : sets_)
        set.reserve(params_.assoc + 1);
}

bool
MixTlb::Entry::slotPresent(unsigned slot, CoalesceMode mode) const
{
    if (size == PageSize::Size4K || mode == CoalesceMode::Bitmap)
        return (bitmap >> (slot & 63)) & 1; // bitmap windows have <= 64 slots
    return slot >= runStart && slot < runStart + length;
}

unsigned
MixTlb::indexOf(VAddr vaddr) const
{
    const std::uint64_t index =
        params_.superpageIndexBits
            ? vaddr >> PageShift2M
            : vaddr >> ((PageShift4K + colt4kShift_) & 63);
    if (setMask_)
        return static_cast<unsigned>(index & setMask_);
    return static_cast<unsigned>(index % numSets_);
}

unsigned
MixTlb::groupSlots(PageSize size) const
{
    return size == PageSize::Size4K ? params_.colt4k : maxCoalesce_;
}

VAddr
MixTlb::windowBase(VAddr vbase, PageSize size) const
{
    std::uint64_t span =
        static_cast<std::uint64_t>(groupSlots(size)) * pageBytes(size);
    return vbase - (vbase % span);
}

bool
MixTlb::entryCovers(const Entry &entry, VAddr vaddr) const
{
    if (entry.asid != asid_)
        return false;
    std::uint64_t span =
        static_cast<std::uint64_t>(groupSlots(entry.size))
        * pageBytes(entry.size);
    if (vaddr < entry.wbase || vaddr >= entry.wbase + span)
        return false;
    auto slot = static_cast<unsigned>((vaddr - entry.wbase)
                                      / pageBytes(entry.size));
    return entry.slotPresent(slot, params_.mode);
}

unsigned
MixTlb::population(const Entry &entry) const
{
    if (entry.size == PageSize::Size4K ||
        params_.mode == CoalesceMode::Bitmap) {
        return static_cast<unsigned>(std::popcount(entry.bitmap));
    }
    return entry.length;
}

bool
MixTlb::compatible(const Entry &a, const Entry &b) const
{
    if (a.size != b.size || a.asid != b.asid || a.wbase != b.wbase ||
        a.wpbase != b.wpbase || !(a.perms == b.perms)) {
        return false;
    }
    if (a.size == PageSize::Size4K ||
        params_.mode == CoalesceMode::Bitmap) {
        return true; // bitmaps always union
    }
    // Length mode: only runs that overlap or touch can share an entry;
    // disjoint runs of the same window coexist as separate entries.
    std::uint32_t a1 = a.runStart, a2 = a1 + a.length;
    std::uint32_t b1 = b.runStart, b2 = b1 + b.length;
    return b1 <= a2 && a1 <= b2;
}

void
MixTlb::merge(Entry &existing, const Entry &incoming)
{
    if (existing.size == PageSize::Size4K ||
        params_.mode == CoalesceMode::Bitmap) {
        existing.bitmap |= incoming.bitmap;
    } else {
        std::uint32_t a1 = existing.runStart;
        std::uint32_t a2 = a1 + existing.length;
        std::uint32_t b1 = incoming.runStart;
        std::uint32_t b2 = b1 + incoming.length;
        existing.runStart = std::min(a1, b1);
        existing.length = std::max(a2, b2) - existing.runStart;
    }
    existing.dirty = existing.dirty && incoming.dirty;
}

// mixcheck: hot
TlbLookup
MixTlb::lookup(VAddr vaddr, bool is_store)
{
    (void)is_store;
    lastLookupMerged_ = false;
    TlbLookup result;
    result.waysRead = params_.assoc;
    auto &set = sets_[indexOf(vaddr)];

    const auto covers = [&](const Entry &e) {
        return entryCovers(e, vaddr);
    };
    std::size_t hit;
    if (referenceScan_) {
        hit = set.findIf(covers);
    } else {
        // Windows are aligned, so a covering entry of size s anchors
        // at that size's window around vaddr: one candidate per size.
        std::uint64_t cands[NumPageSizes];
        for (unsigned s = 0; s < NumPageSizes; ++s) {
            const auto size = static_cast<PageSize>(s);
            cands[s] = tagOf(windowBase(vaddr, size), size, asid_);
        }
        hit = set.findTagAny(cands, NumPageSizes, covers);
    }
    if (hit != TagLaneSet<Entry>::npos) {
        // Sec. 4.3: the probe tag-compares the whole set, so duplicate
        // mirrors of the matched bundle are visible; collapse them.
        // merge() never touches (wbase, size, asid), so the survivor's
        // lane tag stays valid.
        for (std::size_t i = 0; i < set.size();) {
            if (i != hit && compatible(set.payload(hit),
                                       set.payload(i))) {
                merge(set.payload(hit), set.payload(i));
                set.eraseAt(i);
                if (i < hit)
                    hit--;
                ++duplicatesRemoved_;
                lastLookupMerged_ = true;
            } else {
                i++;
            }
        }
        set.rotateToFront(hit); // move to MRU
        const Entry &entry = set.payload(0);
        result.hit = true;
        result.xlate.size = entry.size;
        result.xlate.vbase = pageBase(vaddr, entry.size);
        result.xlate.pbase =
            entry.wpbase + (result.xlate.vbase - entry.wbase);
        result.xlate.perms = entry.perms;
        result.xlate.accessed = true;
        result.xlate.dirty = entry.dirty;
        result.entryDirty = entry.dirty;
        result.bundle = bundleAround(entry, vaddr);
    }
    recordLookup(result);
    return result;
}

MixTlb::Entry
MixTlb::buildEntry(const FillInfo &fill) const
{
    const pt::Translation &leaf = fill.leaf;
    const unsigned group = groupSlots(leaf.size);
    const std::uint64_t page = pageBytes(leaf.size);

    Entry entry{};
    entry.size = leaf.size;
    entry.asid = asid_;
    entry.perms = leaf.perms;
    entry.wbase = params_.alignmentRestricted
                      ? windowBase(leaf.vbase, leaf.size)
                      : leaf.vbase; // floating anchor (ablation)
    const auto leaf_slot =
        static_cast<unsigned>((leaf.vbase - entry.wbase) / page);
    entry.wpbase = leaf.pbase - static_cast<std::uint64_t>(leaf_slot)
                                * page;
    entry.dirty = leaf.dirty;

    // Candidate membership per window slot, from the walk line and/or
    // an upper-level bundle. Slot 'leaf_slot' is always present.
    // The scratchpad is a 64-bit map: in length mode a window can hold
    // more than 64 slots, and anything past the map simply cannot be
    // coalesced by this fill (shifting past it used to be undefined).
    const bool leaf_tracked = leaf_slot < 64;
    std::uint64_t present = leaf_tracked ? pow2(leaf_slot) : 0;
    std::uint64_t all_dirty =
        leaf.dirty || !leaf_tracked ? ~0ULL : ~pow2(leaf_slot);

    auto consider = [&](VAddr vbase, PAddr pbase, pt::Perms perms,
                        bool dirty) {
        if (perms != leaf.perms)
            return; // Sec. 4.4: equal permissions only
        if (vbase < entry.wbase)
            return;
        std::uint64_t slot64 = (vbase - entry.wbase) / page;
        if (slot64 >= group || slot64 >= 64)
            return; // outside the window or past the scratchpad
        auto slot = static_cast<unsigned>(slot64);
        // PA must sit exactly where window-affine contiguity demands.
        if (pbase != entry.wpbase + slot64 * page)
            return;
        present |= pow2(slot);
        if (!dirty)
            all_dirty &= ~pow2(slot);
    };

    if (fill.walk && !fill.walk->pageFault() &&
        fill.walk->lineGranularity == leaf.size) {
        for (const auto &slot : fill.walk->line) {
            // Sec. 4.4: only translations with the accessed bit set may
            // be coalesced at fill time.
            if (slot.present && slot.xlate.accessed) {
                consider(slot.xlate.vbase, slot.xlate.pbase,
                         slot.xlate.perms, slot.xlate.dirty);
            }
        }
    }
    if (fill.bundle && fill.bundle->size == leaf.size) {
        const BundleInfo &bundle = *fill.bundle;
        for (std::uint64_t i = 0; i < bundle.count; i++) {
            consider(bundle.vbase + i * page, bundle.pbase + i * page,
                     bundle.perms, bundle.dirty);
        }
    }

    if (leaf.size != PageSize::Size4K &&
        params_.mode == CoalesceMode::Length) {
        // Contiguous run through the leaf slot, holes excluded.
        auto tracked = [&](unsigned slot) {
            return slot < 64 && ((present >> (slot & 63)) & 1) != 0;
        };
        unsigned lo = leaf_slot;
        while (lo > 0 && tracked(lo - 1))
            lo--;
        unsigned hi = leaf_slot;
        while (hi + 1 < group && tracked(hi + 1))
            hi++;
        entry.runStart = lo;
        entry.length = hi - lo + 1;
        if (lo >= 64) {
            // The run sits entirely past the scratchpad; only the
            // demanded leaf is known.
            entry.dirty = leaf.dirty;
        } else {
            const std::uint64_t run_mask =
                entry.length >= 64 ? ~0ULL
                                   : shiftLeft(pow2(entry.length) - 1, lo);
            entry.dirty = (all_dirty & run_mask) == run_mask;
        }
        entry.bitmap = 0;
    } else {
        entry.bitmap = present;
        entry.dirty = (all_dirty & present) == present;
    }
    return entry;
}

void
MixTlb::insertIntoSet(unsigned set_idx, const Entry &entry)
{
    auto &set = sets_[set_idx];
    // compatible() requires equal (wbase, size, asid), so a true match
    // shares the incoming entry's tag.
    const std::uint64_t tag = tagOf(entry.wbase, entry.size, entry.asid);
    const auto matches = [&](const Entry &e) {
        return compatible(e, entry);
    };
    std::size_t i = referenceScan_ ? set.findIf(matches)
                                   : set.findTag(tag, matches);
    if (i != TagLaneSet<Entry>::npos) {
        Entry &existing = set.payload(i);
        unsigned before = population(existing);
        merge(existing, entry);
        set.rotateToFront(i); // move to MRU
        if (population(set.payload(0)) > before)
            ++extensions_;
        ++coalesces_;
        return;
    }
    set.insertFront(tag, entry);
    if (set.size() > params_.assoc)
        set.popBack();
    ++fills_;
    if (entry.size != PageSize::Size4K)
        ++mirrorWrites_;
}

void
MixTlb::blindInsert(unsigned set_idx, const Entry &entry)
{
    // Sec. 4.3: non-probed sets are filled without checking for an
    // existing copy (scanning every set on fill would cost too much
    // energy); duplicates this creates collapse on a later probe.
    auto &set = sets_[set_idx];
    set.insertFront(tagOf(entry.wbase, entry.size, entry.asid), entry);
    if (set.size() > params_.assoc)
        set.popBack();
    ++fills_;
    if (entry.size != PageSize::Size4K)
        ++mirrorWrites_;
}

// mixcheck: hot
void
MixTlb::fill(const FillInfo &fill)
{
    Entry entry = buildEntry(fill);
    MIX_AUDIT(groupSlots(entry.size) >= 64 ||
              (entry.bitmap >> groupSlots(entry.size)) == 0,
              "fill built membership outside the %u-slot window",
              groupSlots(entry.size));
    const VAddr demanded = fill.vaddr ? fill.vaddr : fill.leaf.vbase;
    const unsigned probed = indexOf(demanded);

    if (entry.size == PageSize::Size4K) {
        // Small pages map to exactly one set (the window's pages share
        // the index because the index drops log2(colt4k) bits).
        insertIntoSet(probed, entry);
        return;
    }

    if (!params_.superpageIndexBits) {
        // Small-page index bits: each superpage spans at least
        // 512 index values, so the bundle mirrors into every set.
        //
        // L1 (bitmap) fills follow Sec. 4.3 exactly: only the probed
        // set merges into an existing bundle; the others are mirrored
        // blindly and duplicates collapse on later probes. L2 (length)
        // fills extend a matching bundle in every set — the "slightly
        // more complex hardware" Sec. 4 grants the L2 level, and what
        // lets coalescing grow to offset the full mirror count at L2
        // reach (Sec. 4.2's extension of bundles across cache lines).
        const bool merge_everywhere = params_.mode == CoalesceMode::Length;
        for (unsigned s = 0; s < numSets_; s++) {
            if (s == probed || merge_everywhere)
                insertIntoSet(s, entry);
            else
                blindInsert(s, entry);
        }
        return;
    }

    // Ablation (Sec. 3): superpage index bits. A 2MB page maps to one
    // set; a 1GB page still spans 512 2MB indices.
    if (entry.size == PageSize::Size2M) {
        insertIntoSet(indexOf(fill.leaf.vbase), entry);
    } else {
        for (unsigned s = 0; s < numSets_; s++) {
            if (s == probed)
                insertIntoSet(s, entry);
            else
                blindInsert(s, entry);
        }
    }
}

BundleInfo
MixTlb::bundleAround(const Entry &entry, VAddr vaddr) const
{
    const std::uint64_t page = pageBytes(entry.size);
    auto slot = static_cast<unsigned>((vaddr - entry.wbase) / page);
    unsigned lo = slot, hi = slot;
    if (entry.size == PageSize::Size4K ||
        params_.mode == CoalesceMode::Bitmap) {
        while (lo > 0 && ((entry.bitmap >> ((lo - 1) & 63)) & 1))
            lo--;
        while (hi + 1 < groupSlots(entry.size) &&
               ((entry.bitmap >> ((hi + 1) & 63)) & 1)) {
            hi++;
        }
    } else {
        lo = entry.runStart;
        hi = entry.runStart + entry.length - 1;
    }
    BundleInfo bundle;
    bundle.vbase = entry.wbase + static_cast<std::uint64_t>(lo) * page;
    bundle.pbase = entry.wpbase + static_cast<std::uint64_t>(lo) * page;
    bundle.size = entry.size;
    bundle.count = hi - lo + 1;
    bundle.perms = entry.perms;
    bundle.dirty = entry.dirty;
    return bundle;
}

void
MixTlb::invalidate(VAddr vbase, PageSize size, Asid asid)
{
    ++invalidations_;
    const VAddr lo = vbase;
    const VAddr hi = vbase + pageBytes(size);

    // Range semantics: an entry is stale when any present slot's page
    // overlaps [lo, hi), whatever the entry's own page size. A
    // demotion's superpage-sized shootdown must clear the 4K and
    // coalesced entries under its window, and a 4K shootdown inside a
    // stale superpage must kill that superpage's mirrors — which live
    // in *every* set and evolve independently under per-set LRU, so
    // all sets are swept (shootdowns are off the hot lookup path).
    for (auto &set : sets_) {
        set.eraseIf([&](Entry &entry) {
            const std::uint64_t epage = pageBytes(entry.size);
            const unsigned slots = groupSlots(entry.size);
            const std::uint64_t span = epage * slots;
            if (entry.asid != asid || entry.wbase >= hi ||
                entry.wbase + span <= lo) {
                return false;
            }
            // Slots of the entry's window overlapped by [lo, hi).
            const auto s0 = lo > entry.wbase
                ? static_cast<unsigned>((lo - entry.wbase) / epage)
                : 0u;
            const auto s1 = static_cast<unsigned>(
                std::min<std::uint64_t>(slots - 1,
                                        (hi - 1 - entry.wbase) / epage));
            if (entry.size == PageSize::Size4K ||
                params_.mode == CoalesceMode::Bitmap) {
                // Sec. 4.4: clear just the covered bits; neighbours
                // outside the window stay cached (partial trim).
                for (unsigned s = s0; s <= s1; s++)
                    entry.bitmap &= ~(1ULL << (s & 63));
                return entry.bitmap == 0;
            }
            // Length mode: drop the whole bundle if any covered slot
            // is present (the paper's simple approach).
            bool present = false;
            for (unsigned s = s0; s <= s1 && !present; s++)
                present = entry.slotPresent(s, params_.mode);
            return present;
        });
    }
}

void
MixTlb::invalidateAll()
{
    ++invalidations_;
    for (auto &set : sets_)
        set.clear();
}

void
MixTlb::invalidateAsid(Asid asid)
{
    ++invalidations_;
    for (auto &set : sets_)
        set.eraseIf([&](const Entry &e) { return e.asid == asid; });
}

void
MixTlb::markDirty(VAddr vaddr)
{
    // Sec. 4.4: the bundle dirty bit may only be set when every
    // member is dirty; hardware only knows that for singletons.
    bool superpage_covered = false;
    bool small_covered = false;
    auto mark = [&](TagLaneSet<Entry> &set) {
        for (std::size_t i = 0; i < set.size(); ++i) {
            Entry &entry = set.payload(i);
            if (!entryCovers(entry, vaddr))
                continue;
            (entry.size == PageSize::Size4K ? small_covered
                                            : superpage_covered) = true;
            if (population(entry) == 1)
                entry.dirty = true;
        }
    };
    const unsigned probed = indexOf(vaddr);
    mark(sets_[probed]);

    // Superpage entries are mirrored into every set; the dirty update
    // rides the same burst-write path as the fill, so stale mirrors in
    // non-probed sets are updated too. Otherwise a later probe of the
    // same superpage through another set hits a clean mirror and
    // re-issues the dirty micro-op. Small pages live in exactly one
    // set, so a pure small-page cover stops at the probed set.
    if (small_covered && !superpage_covered)
        return;
    for (unsigned s = 0; s < numSets_; s++) {
        if (s != probed)
            mark(sets_[s]);
    }
}

void
MixTlb::auditSets(contracts::AuditReport &report) const
{
    // Mirror agreement (Sec. 4.3/4.4): every entry covering one
    // superpage, in whichever set it landed, must translate it to the
    // same physical page with the same permissions. Keyed per *slot*,
    // not per window: one window legally holds several coalesced runs
    // whose extrapolated anchors differ (the member pages are not
    // physically contiguous across runs). Singleton copies of one
    // superpage must also agree on the dirty bit (stale clean mirrors
    // re-issue dirty micro-ops — the PR 1 bug class).
    // Keys carry the ASID: identical windows of different address
    // spaces are distinct translations, not mirrors of each other.
    std::map<std::tuple<Asid, std::uint8_t, VAddr, unsigned>,
             std::pair<PAddr, pt::Perms>> covered;
    std::map<std::tuple<Asid, std::uint8_t, VAddr, unsigned>, bool>
        singletons;

    for (unsigned s = 0; s < numSets_; s++) {
        const auto &set = sets_[s];
        MIX_AUDIT_CHECK(report, set.size() <= params_.assoc,
                        "set %u holds %zu entries but has %u ways", s,
                        set.size(), params_.assoc);
        for (const Entry &entry : set.payloads()) {
            const unsigned group = groupSlots(entry.size);
            const std::uint64_t page = pageBytes(entry.size);
            const std::uint64_t span = group * page;
            const bool bitmap_mode =
                entry.size == PageSize::Size4K ||
                params_.mode == CoalesceMode::Bitmap;

            MIX_AUDIT_CHECK(report, population(entry) > 0,
                            "set %u: empty entry for window 0x%llx", s,
                            (unsigned long long)entry.wbase);
            if (bitmap_mode) {
                // Membership must stay inside the aligned window: for
                // 4K entries that is the colt4k slots of the 64-bit
                // bitmap (a bit past colt4k means an out-of-window
                // shift corrupted it), for superpages the maxCoalesce
                // window.
                MIX_AUDIT_CHECK(
                    report,
                    group >= 64 || (entry.bitmap >> group) == 0,
                    "set %u: %s window 0x%llx has membership bits "
                    "outside its %u slots (bitmap 0x%llx)",
                    s, pageSizeName(entry.size),
                    (unsigned long long)entry.wbase, group,
                    (unsigned long long)entry.bitmap);
            } else {
                MIX_AUDIT_CHECK(
                    report,
                    entry.length >= 1 &&
                        entry.runStart + entry.length <= group,
                    "set %u: run [%u, %u) exceeds the %u-slot window",
                    s, entry.runStart, entry.runStart + entry.length,
                    group);
            }
            if (params_.alignmentRestricted) {
                MIX_AUDIT_CHECK(
                    report, entry.wbase % span == 0,
                    "set %u: window base 0x%llx not aligned to 0x%llx",
                    s, (unsigned long long)entry.wbase,
                    (unsigned long long)span);
            }
            MIX_AUDIT_CHECK(report, entry.wpbase % page == 0,
                            "set %u: physical anchor 0x%llx not %s "
                            "page aligned",
                            s, (unsigned long long)entry.wpbase,
                            pageSizeName(entry.size));

            // Small pages are never mirrored: the entry must sit in
            // the one set its (window) index selects.
            if (entry.size == PageSize::Size4K) {
                MIX_AUDIT_CHECK(
                    report, indexOf(entry.wbase) == s,
                    "set %u: 4K window 0x%llx indexed to set %u", s,
                    (unsigned long long)entry.wbase,
                    indexOf(entry.wbase));
                continue;
            }

            for (unsigned slot = 0; slot < group; slot++) {
                if (!entry.slotPresent(slot, params_.mode))
                    continue;
                const PAddr slot_pa =
                    entry.wpbase
                    + static_cast<std::uint64_t>(slot) * page;
                auto key = std::make_tuple(
                    entry.asid, static_cast<std::uint8_t>(entry.size),
                    entry.wbase, slot);
                auto [it, inserted] = covered.emplace(
                    key, std::make_pair(slot_pa, entry.perms));
                if (inserted)
                    continue;
                MIX_AUDIT_CHECK(
                    report, it->second.first == slot_pa,
                    "mirror disagreement: %s page 0x%llx maps to "
                    "PA 0x%llx in one set, 0x%llx in set %u",
                    pageSizeName(entry.size),
                    (unsigned long long)(entry.wbase + slot * page),
                    (unsigned long long)it->second.first,
                    (unsigned long long)slot_pa, s);
                MIX_AUDIT_CHECK(
                    report, it->second.second == entry.perms,
                    "mirror disagreement: %s page 0x%llx carries "
                    "different permissions in set %u",
                    pageSizeName(entry.size),
                    (unsigned long long)(entry.wbase + slot * page),
                    s);
            }

            if (population(entry) == 1) {
                unsigned slot = 0;
                if (bitmap_mode) {
                    slot = static_cast<unsigned>(
                        std::countr_zero(entry.bitmap));
                } else {
                    slot = entry.runStart;
                }
                auto dirty_key = std::make_tuple(
                    entry.asid, static_cast<std::uint8_t>(entry.size),
                    entry.wbase, slot);
                auto [dit, dinserted] =
                    singletons.emplace(dirty_key, entry.dirty);
                if (!dinserted) {
                    MIX_AUDIT_CHECK(
                        report, dit->second == entry.dirty,
                        "stale dirty mirror: singleton %s page "
                        "0x%llx is dirty in one set, clean in set %u "
                        "(Sec. 4.4 protocol)",
                        pageSizeName(entry.size),
                        (unsigned long long)(entry.wbase + slot * page),
                        s);
                }
            }
        }
    }
}

} // namespace mixtlb::tlb
