/**
 * @file
 * The native (non-virtualized) WalkSource: a hardware walker over one
 * process's page table, with page faults delegated to a handler (the
 * OS's Process::touch in practice) — plus the multiprogrammed variant
 * sharing one walker/PWC across several processes.
 */

#ifndef MIXTLB_TLB_WALK_SOURCE_HH
#define MIXTLB_TLB_WALK_SOURCE_HH

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "pt/page_table.hh"
#include "pt/walker.hh"
#include "tlb/hierarchy.hh"

namespace mixtlb::tlb
{

class NativeWalkSource : public WalkSource
{
  public:
    /** Fault handler returns false when the fault cannot be serviced. */
    using FaultHandler = std::function<bool(VAddr, bool)>;

    NativeWalkSource(pt::PageTable &table, stats::StatGroup *parent,
                     FaultHandler fault_handler, unsigned scan_lines = 1,
                     pt::PwcParams pwc = {})
        : table_(table), walker_(table, parent, scan_lines, pwc),
          faultHandler_(std::move(fault_handler))
    {}

    pt::WalkResult
    walk(VAddr vaddr, bool is_store) override
    {
        return walker_.walk(vaddr, is_store);
    }

    bool
    fault(VAddr vaddr, bool is_store) override
    {
        return faultHandler_ && faultHandler_(vaddr, is_store);
    }

    std::optional<PAddr>
    leafPteAddr(VAddr vaddr) override
    {
        return table_.leafPteAddr(vaddr);
    }

    void
    setDirty(VAddr vaddr) override
    {
        table_.setDirty(vaddr);
    }

    void
    invalidate(VAddr vbase, PageSize size) override
    {
        walker_.pwc().invalidate(vbase, size);
    }

    bool hasRefTranslate() const override { return true; }

    std::optional<PAddr>
    refTranslate(VAddr vaddr) override
    {
        auto xlate = table_.translate(vaddr);
        if (!xlate)
            return std::nullopt;
        return xlate->translate(vaddr);
    }

    pt::Walker &walker() { return walker_; }

  private:
    pt::PageTable &table_;
    pt::Walker walker_;
    FaultHandler faultHandler_;
};

/**
 * A WalkSource multiplexing one hardware walker (and its ASID-tagged
 * PWC) across several processes, each with its own page table and
 * fault handler — the MMU of a multiprogrammed machine. switchTo() is
 * the CR3 write of a context switch: it retargets the walker and sets
 * the PWC's active ASID without flushing anything; callers modelling
 * an untagged baseline flush explicitly via flushTranslationCaches().
 */
class MultiWalkSource : public WalkSource
{
  public:
    using FaultHandler = std::function<bool(VAddr, bool)>;

    MultiWalkSource(stats::StatGroup *parent, unsigned scan_lines = 1,
                    pt::PwcParams pwc = {})
        : parent_(parent), scanLines_(scan_lines), pwcParams_(pwc)
    {}

    /** Register a process; returns its index for switchTo(). */
    unsigned
    addProcess(pt::PageTable &table, FaultHandler fault_handler)
    {
        procs_.push_back({&table, std::move(fault_handler)});
        if (!walker_) {
            walker_ = std::make_unique<pt::Walker>(
                table, parent_, scanLines_, pwcParams_);
        }
        return static_cast<unsigned>(procs_.size() - 1);
    }

    /** Context-switch the walker to process @p idx under @p asid. */
    void
    switchTo(unsigned idx, Asid asid)
    {
        panic_if(idx >= procs_.size(), "switch to unknown process %u",
                 idx);
        current_ = idx;
        walker_->retarget(*procs_[idx].table);
        walker_->pwc().setAsid(asid);
    }

    /** Flush the PWC (the untagged full-flush switch policy). */
    void flushTranslationCaches() { walker_->pwc().invalidateAll(); }

    pt::WalkResult
    walk(VAddr vaddr, bool is_store) override
    {
        return walker_->walk(vaddr, is_store);
    }

    bool
    fault(VAddr vaddr, bool is_store) override
    {
        const auto &handler = procs_[current_].faultHandler;
        return handler && handler(vaddr, is_store);
    }

    std::optional<PAddr>
    leafPteAddr(VAddr vaddr) override
    {
        return procs_[current_].table->leafPteAddr(vaddr);
    }

    void
    setDirty(VAddr vaddr) override
    {
        procs_[current_].table->setDirty(vaddr);
    }

    void
    invalidate(VAddr vbase, PageSize size) override
    {
        // Conservative across ASIDs: PWC entries carry no per-page
        // reach, so a shootdown drops every overlapping prefix.
        walker_->pwc().invalidate(vbase, size);
    }

    void
    invalidateAsid(Asid asid) override
    {
        walker_->pwc().invalidateAsid(asid);
    }

    bool hasRefTranslate() const override { return true; }

    std::optional<PAddr>
    refTranslate(VAddr vaddr) override
    {
        auto xlate = procs_[current_].table->translate(vaddr);
        if (!xlate)
            return std::nullopt;
        return xlate->translate(vaddr);
    }

    pt::Walker &walker() { return *walker_; }
    unsigned currentProcess() const { return current_; }

  private:
    struct Proc
    {
        pt::PageTable *table;
        FaultHandler faultHandler;
    };

    stats::StatGroup *parent_;
    unsigned scanLines_;
    pt::PwcParams pwcParams_;
    std::vector<Proc> procs_;
    std::unique_ptr<pt::Walker> walker_;
    unsigned current_ = 0;
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_WALK_SOURCE_HH
