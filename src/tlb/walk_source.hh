/**
 * @file
 * The native (non-virtualized) WalkSource: a hardware walker over one
 * process's page table, with page faults delegated to a handler (the
 * OS's Process::touch in practice).
 */

#ifndef MIXTLB_TLB_WALK_SOURCE_HH
#define MIXTLB_TLB_WALK_SOURCE_HH

#include <functional>

#include "pt/page_table.hh"
#include "pt/walker.hh"
#include "tlb/hierarchy.hh"

namespace mixtlb::tlb
{

class NativeWalkSource : public WalkSource
{
  public:
    /** Fault handler returns false when the fault cannot be serviced. */
    using FaultHandler = std::function<bool(VAddr, bool)>;

    NativeWalkSource(pt::PageTable &table, stats::StatGroup *parent,
                     FaultHandler fault_handler, unsigned scan_lines = 1,
                     pt::PwcParams pwc = {})
        : table_(table), walker_(table, parent, scan_lines, pwc),
          faultHandler_(std::move(fault_handler))
    {}

    pt::WalkResult
    walk(VAddr vaddr, bool is_store) override
    {
        return walker_.walk(vaddr, is_store);
    }

    bool
    fault(VAddr vaddr, bool is_store) override
    {
        return faultHandler_ && faultHandler_(vaddr, is_store);
    }

    std::optional<PAddr>
    leafPteAddr(VAddr vaddr) override
    {
        return table_.leafPteAddr(vaddr);
    }

    void
    setDirty(VAddr vaddr) override
    {
        table_.setDirty(vaddr);
    }

    void
    invalidate(VAddr vbase, PageSize size) override
    {
        walker_.pwc().invalidate(vbase, size);
    }

    bool hasRefTranslate() const override { return true; }

    std::optional<PAddr>
    refTranslate(VAddr vaddr) override
    {
        auto xlate = table_.translate(vaddr);
        if (!xlate)
            return std::nullopt;
        return xlate->translate(vaddr);
    }

    pt::Walker &walker() { return walker_; }

  private:
    pt::PageTable &table_;
    pt::Walker walker_;
    FaultHandler faultHandler_;
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_WALK_SOURCE_HH
