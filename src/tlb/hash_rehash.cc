#include "hash_rehash.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mixtlb::tlb
{

HashRehashTlb::HashRehashTlb(const std::string &name,
                             stats::StatGroup *parent,
                             const HashRehashParams &params)
    : BaseTlb(name, parent), params_(params),
      referenceScan_(referenceScanEnabled())
{
    fatal_if(params.assoc == 0 || params.entries == 0 ||
             params.entries % params.assoc != 0,
             "hash-rehash TLB geometry does not divide evenly");
    fatal_if(params.sizes.empty(), "hash-rehash TLB with no page sizes");
    numSets_ = params.entries / params.assoc;
    sets_.resize(numSets_);
    for (auto &set : sets_)
        set.reserve(params_.assoc + 1);
    probeOrder_ = params_.sizes;
    if (params.usePredictor) {
        predictor_ = std::make_unique<SizePredictor>(
            "predictor", &stats_, params.predictorEntries);
    }
}

bool
HashRehashTlb::supports(PageSize size) const
{
    return std::find(params_.sizes.begin(), params_.sizes.end(), size)
           != params_.sizes.end();
}

std::size_t
HashRehashTlb::find(TagLaneSet<Entry> &set, std::uint64_t vpn,
                    PageSize size) const
{
    const auto confirm = [&](const Entry &e) {
        return e.size == size && e.vpn == vpn && e.asid == asid_;
    };
    if (referenceScan_)
        return set.findIf(confirm);
    return set.findTag(tagOf(vpn, size, asid_), confirm);
}

HashRehashTlb::Entry *
HashRehashTlb::probe(VAddr vaddr, PageSize size)
{
    auto &set = sets_[setOf(vaddr, size)];
    std::uint64_t vpn = vpnOf(vaddr, size);
    std::size_t i = find(set, vpn, size);
    if (i == TagLaneSet<Entry>::npos)
        return nullptr;
    set.rotateToFront(i); // move to MRU
    return &set.payload(0);
}

// mixcheck: hot
TlbLookup
HashRehashTlb::lookup(VAddr vaddr, bool is_store)
{
    (void)is_store;
    TlbLookup result;
    result.probes = 0;
    result.waysRead = 0;

    // Build the probe order in preallocated scratch (allocation-free
    // hot path): predicted size first, then the rest.
    std::copy(params_.sizes.begin(), params_.sizes.end(),
              probeOrder_.begin());
    if (predictor_) {
        PageSize predicted = predictor_->predict(vaddr);
        auto it = std::find(probeOrder_.begin(), probeOrder_.end(),
                            predicted);
        if (it != probeOrder_.end())
            std::rotate(probeOrder_.begin(), it, it + 1);
    }

    for (PageSize size : probeOrder_) {
        result.probes++;
        result.waysRead += params_.assoc;
        Entry *entry = probe(vaddr, size);
        if (!entry)
            continue;
        result.hit = true;
        result.xlate = entry->xlate;
        result.entryDirty = entry->dirty;
        if (predictor_) {
            predictor_->recordOutcome(result.probes == 1);
            predictor_->update(vaddr, size);
        }
        break;
    }
    // A miss after exhausting all sizes resolves only via the walker;
    // the predictor trains in fill().
    recordLookup(result);
    return result;
}

// mixcheck: hot
void
HashRehashTlb::fill(const FillInfo &fill)
{
    panic_if(!supports(fill.leaf.size),
             "hash-rehash TLB does not cache %s pages",
             pageSizeName(fill.leaf.size));
    std::uint64_t vpn = fill.leaf.vpn();
    auto &set = sets_[setOf(fill.leaf.vbase, fill.leaf.size)];
    std::size_t i = find(set, vpn, fill.leaf.size);
    if (i != TagLaneSet<Entry>::npos) {
        Entry &e = set.payload(i);
        e.xlate = fill.leaf;
        e.dirty = fill.leaf.dirty;
        set.rotateToFront(i); // move to MRU
    } else {
        set.insertFront(tagOf(vpn, fill.leaf.size, asid_),
                        Entry{fill.leaf.size, vpn, asid_, fill.leaf,
                              fill.leaf.dirty});
        if (set.size() > params_.assoc)
            set.popBack();
        ++fills_;
    }
    if (predictor_) {
        // Train on the demanded address (predictor is 2MB-region
        // indexed; a superpage base can hash to a different slot).
        predictor_->update(fill.vaddr ? fill.vaddr : fill.leaf.vbase,
                           fill.leaf.size);
    }
}

void
HashRehashTlb::invalidate(VAddr vbase, PageSize size, Asid asid)
{
    ++invalidations_;
    if (supports(size)) {
        // An entry of the shot-down size hashes to one known set.
        std::uint64_t vpn = vpnOf(vbase, size);
        auto &set = sets_[setOf(vbase, size)];
        set.eraseIf([&](const Entry &e) {
            return e.size == size && e.vpn == vpn && e.asid == asid;
        });
    }
    // Entries of *other* sizes overlapping [vbase, vbase + bytes) —
    // 4K children of a demoted superpage, or a stale superpage over a
    // 4K shootdown — rehash to unpredictable sets, so scan them all
    // (shootdowns are off the hot lookup path).
    const VAddr lo = vbase;
    const VAddr hi = vbase + pageBytes(size);
    for (auto &set : sets_) {
        set.eraseIf([&](const Entry &e) {
            if (e.size == size || e.asid != asid)
                return false;
            const VAddr ebase = e.xlate.vbase;
            return ebase < hi && ebase + pageBytes(e.size) > lo;
        });
    }
}

void
HashRehashTlb::invalidateAll()
{
    ++invalidations_;
    for (auto &set : sets_)
        set.clear();
}

void
HashRehashTlb::invalidateAsid(Asid asid)
{
    ++invalidations_;
    for (auto &set : sets_)
        set.eraseIf([&](const Entry &e) { return e.asid == asid; });
}

void
HashRehashTlb::markDirty(VAddr vaddr)
{
    for (PageSize size : params_.sizes) {
        auto &set = sets_[setOf(vaddr, size)];
        std::uint64_t vpn = vpnOf(vaddr, size);
        for (std::size_t i = 0; i < set.size(); ++i) {
            Entry &entry = set.payload(i);
            if (entry.size == size && entry.vpn == vpn &&
                entry.asid == asid_)
                entry.dirty = true;
        }
    }
}

} // namespace mixtlb::tlb
