/**
 * @file
 * A structure-of-arrays MRU set: a packed 64-bit tag lane scanned on
 * lookup, with the full entry payloads in a parallel array touched
 * only on a tag match.
 *
 * Every TLB design in this simulator keeps its ways as a small vector
 * in MRU order (front = MRU) and probes with a linear `std::find_if`
 * over full entries. That scan loads each entry's whole struct (40-80
 * bytes) to evaluate a predicate that almost always fails on the
 * first compared field. TagLaneSet splits the match-relevant bits
 * into a contiguous `std::uint64_t` lane: the probe compares 2-4 ways
 * per instruction (simd::firstEqual, DESIGN.md section 13) and only
 * dereferences the payload to *confirm* a candidate.
 *
 * Exactness contract: the tag is a pure function of the fields the
 * design's match predicate reads, so a true match always has equal
 * tags (no false negatives). Tags may collide (packing wraps), so
 * every tag hit is re-checked with the design's full predicate and
 * the scan continues past failed confirms — the first confirmed index
 * is therefore identical to the first `std::find_if` match, and all
 * mutators keep the two arrays in lockstep, making the SoA layout
 * bit-exact with the reference scan.
 */

#ifndef MIXTLB_TLB_TAG_LANE_HH
#define MIXTLB_TLB_TAG_LANE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/simd.hh"

namespace mixtlb::tlb
{

template <typename Payload>
class TagLaneSet
{
  public:
    static constexpr std::size_t npos =
        std::numeric_limits<std::size_t>::max();

    void
    reserve(std::size_t n)
    {
        tags_.reserve(n);
        payloads_.reserve(n);
    }

    std::size_t size() const { return tags_.size(); }
    bool empty() const { return tags_.empty(); }

    std::uint64_t tag(std::size_t i) const { return tags_[i]; }
    Payload &payload(std::size_t i) { return payloads_[i]; }
    const Payload &payload(std::size_t i) const { return payloads_[i]; }

    /** Whole payload array (cold paths: audits, debug dumps). */
    const std::vector<Payload> &payloads() const { return payloads_; }

    /** Retag entry @p i (when a mutation changes its match key). */
    void setTag(std::size_t i, std::uint64_t tag) { tags_[i] = tag; }

    /**
     * First index whose tag equals @p tag and whose payload passes
     * @p confirm; scans on past tag collisions that fail confirm.
     *
     * The wide scan (simd::firstEqual) returns the *lowest* matching
     * index and resumes from i + 1 after a failed confirm, so the
     * first confirmed index is identical to the scalar
     * tag-compare-then-confirm loop's.
     */
    // mixcheck: soa-scan
    template <typename Confirm>
    std::size_t
    findTag(std::uint64_t tag, Confirm &&confirm) const
    {
        const std::uint64_t *lane = tags_.data();
        const std::size_t n = tags_.size();
        simd::prefetchRead(payloads_.data());
        for (std::size_t i = simd::firstEqual(lane, n, tag); i != npos;
             i = simd::firstEqual(lane, n, tag, i + 1)) {
            if (confirm(payloads_[i]))
                return i;
        }
        return npos;
    }

    /**
     * findTag against @p ncands candidate tags at once (designs whose
     * probe can match one window per page size). First index in MRU
     * order matching *any* candidate and confirming wins — the same
     * order a full-predicate scan yields.
     */
    // mixcheck: soa-scan
    template <typename Confirm>
    std::size_t
    findTagAny(const std::uint64_t *cands, unsigned ncands,
               Confirm &&confirm) const
    {
        const std::uint64_t *lane = tags_.data();
        const std::size_t n = tags_.size();
        simd::prefetchRead(payloads_.data());
        for (std::size_t i = simd::firstEqualAny(lane, n, cands, ncands);
             i != npos;
             i = simd::firstEqualAny(lane, n, cands, ncands, i + 1)) {
            if (confirm(payloads_[i]))
                return i;
        }
        return npos;
    }

    /** Reference scan: first index whose payload satisfies @p pred. */
    template <typename Pred>
    std::size_t
    findIf(Pred &&pred) const
    {
        for (std::size_t i = 0; i < payloads_.size(); ++i) {
            if (pred(payloads_[i]))
                return i;
        }
        return npos;
    }

    /** `std::rotate(begin, it, it + 1)`: move entry @p i to MRU. */
    void
    rotateToFront(std::size_t i)
    {
        std::rotate(tags_.begin(), tags_.begin() + i,
                    tags_.begin() + i + 1);
        std::rotate(payloads_.begin(), payloads_.begin() + i,
                    payloads_.begin() + i + 1);
    }

    void
    insertFront(std::uint64_t tag, Payload payload)
    {
        tags_.insert(tags_.begin(), tag);
        payloads_.insert(payloads_.begin(), std::move(payload));
    }

    void
    popBack()
    {
        tags_.pop_back();
        payloads_.pop_back();
    }

    void
    eraseAt(std::size_t i)
    {
        tags_.erase(tags_.begin() + i);
        payloads_.erase(payloads_.begin() + i);
    }

    /** Stable `std::erase_if` on payloads; returns entries removed. */
    template <typename Pred>
    std::size_t
    eraseIf(Pred &&pred)
    {
        std::size_t out = 0;
        for (std::size_t i = 0; i < payloads_.size(); ++i) {
            if (!pred(payloads_[i])) {
                if (out != i) {
                    tags_[out] = tags_[i];
                    payloads_[out] = std::move(payloads_[i]);
                }
                ++out;
            }
        }
        const std::size_t removed = payloads_.size() - out;
        tags_.resize(out);
        payloads_.resize(out);
        return removed;
    }

    void
    clear()
    {
        tags_.clear();
        payloads_.clear();
    }

  private:
    std::vector<std::uint64_t> tags_;
    std::vector<Payload> payloads_;
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_TAG_LANE_HH
