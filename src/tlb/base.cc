#include "base.hh"

namespace mixtlb::tlb
{

BaseTlb::BaseTlb(const std::string &name, stats::StatGroup *parent)
    : stats_(name, parent),
      hits_(stats_.addScalar("hits", "TLB hits")),
      misses_(stats_.addScalar("misses", "TLB misses")),
      fills_(stats_.addScalar("fills",
                              "entry writes including mirror copies")),
      coalesces_(stats_.addScalar("coalesces",
                                  "fills merged into existing entries")),
      invalidations_(stats_.addScalar("invalidations",
                                      "invalidation operations")),
      probesTotal_(stats_.addScalar("probes",
                                    "probe rounds over all lookups")),
      waysReadTotal_(stats_.addScalar("ways_read",
                                      "entries read over all lookups"))
{
    stats_.addFormula("miss_rate", "miss fraction", [this] {
        double total = hits_.value() + misses_.value();
        return total > 0 ? misses_.value() / total : 0.0;
    });
}

} // namespace mixtlb::tlb
