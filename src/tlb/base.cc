#include "base.hh"

#include <atomic>

namespace mixtlb::tlb
{

namespace
{
std::atomic<bool> g_reference_scan{false};
} // namespace

void
setReferenceScanEnabled(bool enabled)
{
    g_reference_scan.store(enabled, std::memory_order_relaxed);
}

bool
referenceScanEnabled()
{
    return g_reference_scan.load(std::memory_order_relaxed);
}

BaseTlb::BaseTlb(const std::string &name, stats::StatGroup *parent)
    : stats_(name, parent),
      hits_(stats_.addCounter("hits", "TLB hits")),
      misses_(stats_.addCounter("misses", "TLB misses")),
      fills_(stats_.addCounter("fills",
                               "entry writes including mirror copies")),
      coalesces_(stats_.addCounter(
          "coalesces", "fills merged into existing entries")),
      invalidations_(stats_.addCounter("invalidations",
                                       "invalidation operations")),
      probesTotal_(stats_.addCounter("probes",
                                     "probe rounds over all lookups")),
      waysReadTotal_(stats_.addCounter("ways_read",
                                       "entries read over all lookups"))
{
    stats_.addFormula("miss_rate", "miss fraction", [this] {
        double total = double(hits_.value() + misses_.value());
        return total > 0 ? double(misses_.value()) / total : 0.0;
    });
}

} // namespace mixtlb::tlb
