/**
 * @file
 * The hypothetical ideal TLB of Figures 1 and 15: it hits on every
 * mapped translation with no capacity, conflict, or page-size
 * constraints. Unrealizable in hardware; used as the upper bound.
 */

#ifndef MIXTLB_TLB_IDEAL_HH
#define MIXTLB_TLB_IDEAL_HH

#include "pt/page_table.hh"
#include "tlb/base.hh"

namespace mixtlb::tlb
{

class IdealTlb : public BaseTlb
{
  public:
    IdealTlb(const std::string &name, stats::StatGroup *parent,
             const pt::PageTable &table)
        : BaseTlb(name, parent), table_(table)
    {}

    TlbLookup
    lookup(VAddr vaddr, bool is_store) override
    {
        (void)is_store;
        TlbLookup result;
        result.waysRead = 1;
        auto xlate = table_.translate(vaddr);
        if (xlate) {
            result.hit = true;
            result.xlate = *xlate;
            // Never pay dirty micro-ops: this is the no-overhead bound.
            result.entryDirty = true;
        }
        recordLookup(result);
        return result;
    }

    void fill(const FillInfo &) override {}
    void invalidate(VAddr, PageSize) override { ++invalidations_; }
    void invalidateAll() override { ++invalidations_; }
    void markDirty(VAddr) override {}

    bool supports(PageSize) const override { return true; }
    std::uint64_t numEntries() const override { return 0; }
    unsigned numWays() const override { return 1; }

  private:
    const pt::PageTable &table_;
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_IDEAL_HH
