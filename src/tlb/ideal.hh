/**
 * @file
 * The hypothetical ideal TLB of Figures 1 and 15: it hits on every
 * mapped translation with no capacity, conflict, or page-size
 * constraints. Unrealizable in hardware; used as the upper bound.
 */

#ifndef MIXTLB_TLB_IDEAL_HH
#define MIXTLB_TLB_IDEAL_HH

#include <utility>
#include <vector>

#include "pt/page_table.hh"
#include "tlb/base.hh"

namespace mixtlb::tlb
{

class IdealTlb : public BaseTlb
{
  public:
    IdealTlb(const std::string &name, stats::StatGroup *parent,
             const pt::PageTable &table)
        : BaseTlb(name, parent)
    {
        tables_.emplace_back(Asid{0}, &table);
    }

    /**
     * Make @p table the oracle for lookups performed under @p asid
     * (multiprogrammed machines register one table per process).
     */
    void
    registerTable(Asid asid, const pt::PageTable &table)
    {
        for (auto &[registered, ptr] : tables_) {
            if (registered == asid) {
                ptr = &table;
                return;
            }
        }
        tables_.emplace_back(asid, &table);
    }

    using BaseTlb::invalidate;

    // mixcheck: hot
    TlbLookup
    lookup(VAddr vaddr, bool is_store) override
    {
        (void)is_store;
        TlbLookup result;
        result.waysRead = 1;
        if (const pt::PageTable *table = tableFor(asid_)) {
            auto xlate = table->translate(vaddr);
            if (xlate) {
                result.hit = true;
                result.xlate = *xlate;
                // Never pay dirty micro-ops: the no-overhead bound.
                result.entryDirty = true;
            }
        }
        recordLookup(result);
        return result;
    }

    void fill(const FillInfo &) override {}
    void invalidate(VAddr, PageSize, Asid) override { ++invalidations_; }
    void invalidateAll() override { ++invalidations_; }
    void invalidateAsid(Asid) override { ++invalidations_; }
    void markDirty(VAddr) override {}

    bool supports(PageSize) const override { return true; }
    std::uint64_t numEntries() const override { return 0; }
    unsigned numWays() const override { return 1; }

  private:
    const pt::PageTable *
    tableFor(Asid asid) const
    {
        for (const auto &[registered, table] : tables_) {
            if (registered == asid)
                return table;
        }
        return nullptr;
    }

    /** (asid, page table) pairs; single-process machines hold one. */
    std::vector<std::pair<Asid, const pt::PageTable *>> tables_;
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_IDEAL_HH
