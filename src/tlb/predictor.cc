#include "predictor.hh"

namespace mixtlb::tlb
{

SizePredictor::SizePredictor(const std::string &name,
                             stats::StatGroup *parent, unsigned entries)
    : table_(entries, PageSize::Size4K),
      stats_(name, parent),
      correct_(stats_.addScalar("correct", "correct size predictions")),
      wrong_(stats_.addScalar("wrong", "wrong size predictions"))
{
    stats_.addFormula("accuracy", "prediction accuracy", [this] {
        return accuracy();
    });
}

std::size_t
SizePredictor::indexOf(VAddr vaddr) const
{
    // Mix the 2MB-region number so nearby regions spread over the table.
    std::uint64_t region = vaddr >> PageShift2M;
    region ^= region >> 17;
    region *= 0x9e3779b97f4a7c15ULL;
    region ^= region >> 29;
    return static_cast<std::size_t>(region % table_.size());
}

PageSize
SizePredictor::predict(VAddr vaddr) const
{
    return table_[indexOf(vaddr)];
}

void
SizePredictor::update(VAddr vaddr, PageSize actual)
{
    table_[indexOf(vaddr)] = actual;
}

void
SizePredictor::recordOutcome(bool correct)
{
    if (correct)
        ++correct_;
    else
        ++wrong_;
}

double
SizePredictor::accuracy() const
{
    double total = correct_.value() + wrong_.value();
    return total > 0 ? correct_.value() / total : 0.0;
}

} // namespace mixtlb::tlb
