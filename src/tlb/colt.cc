#include "colt.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mixtlb::tlb
{

ColtTlb::ColtTlb(const std::string &name, stats::StatGroup *parent,
                 std::uint64_t entries, unsigned assoc, PageSize size,
                 unsigned group)
    : BaseTlb(name, parent), entries_(entries), assoc_(assoc),
      size_(size), group_(group), referenceScan_(referenceScanEnabled())
{
    fatal_if(assoc == 0 || entries == 0 || entries % assoc != 0,
             "COLT TLB geometry does not divide evenly");
    fatal_if(group == 0 || group > 32 || !isPowerOf2(group),
             "COLT group must be a power of two <= 32");
    numSets_ = entries / assoc;
    sets_.resize(numSets_);
    for (auto &set : sets_)
        set.reserve(assoc_ + 1);
}

// mixcheck: hot
TlbLookup
ColtTlb::lookup(VAddr vaddr, bool is_store)
{
    (void)is_store;
    TlbLookup result;
    result.waysRead = assoc_;
    const std::uint64_t page = pageBytes(size_);
    VAddr wbase = windowBase(pageBase(vaddr, size_));
    auto slot = static_cast<unsigned>((pageBase(vaddr, size_) - wbase)
                                      / page);
    auto &set = sets_[setOf(vaddr)];
    const auto confirm = [&](const Entry &e) {
        return e.wbase == wbase && e.asid == asid_ &&
               ((e.bitmap >> (slot & 31)) & 1);
    };
    std::size_t i = referenceScan_
                        ? set.findIf(confirm)
                        : set.findTag(tagOf(wbase, asid_), confirm);
    if (i != TagLaneSet<Entry>::npos) {
        set.rotateToFront(i); // move to MRU
        const Entry &entry = set.payload(0);
        result.hit = true;
        result.xlate.size = size_;
        result.xlate.vbase = pageBase(vaddr, size_);
        result.xlate.pbase =
            entry.wpbase + (result.xlate.vbase - entry.wbase);
        result.xlate.perms = entry.perms;
        result.xlate.accessed = true;
        result.xlate.dirty = entry.dirty;
        result.entryDirty = entry.dirty;
        // Synthesize the contiguous run around the slot for lower fills.
        unsigned lo = slot, hi = slot;
        while (lo > 0 && ((entry.bitmap >> ((lo - 1) & 31)) & 1))
            lo--;
        while (hi + 1 < group_ && ((entry.bitmap >> ((hi + 1) & 31)) & 1))
            hi++;
        BundleInfo bundle;
        bundle.vbase = entry.wbase + static_cast<std::uint64_t>(lo) * page;
        bundle.pbase = entry.wpbase + static_cast<std::uint64_t>(lo) * page;
        bundle.size = size_;
        bundle.count = hi - lo + 1;
        bundle.perms = entry.perms;
        bundle.dirty = entry.dirty;
        result.bundle = bundle;
    }
    recordLookup(result);
    return result;
}

// mixcheck: hot
void
ColtTlb::fill(const FillInfo &fill)
{
    panic_if(fill.leaf.size != size_,
             "filling a %s translation into a %s COLT TLB",
             pageSizeName(fill.leaf.size), pageSizeName(size_));
    const std::uint64_t page = pageBytes(size_);
    const pt::Translation &leaf = fill.leaf;

    Entry entry{};
    entry.wbase = windowBase(leaf.vbase);
    entry.asid = asid_;
    auto leaf_slot =
        static_cast<unsigned>((leaf.vbase - entry.wbase) / page);
    entry.wpbase = leaf.pbase
                   - static_cast<std::uint64_t>(leaf_slot) * page;
    entry.perms = leaf.perms;
    entry.bitmap = 1u << (leaf_slot & 31);
    bool all_dirty = leaf.dirty;

    auto consider = [&](VAddr vbase, PAddr pbase, pt::Perms perms,
                        bool dirty) {
        if (perms != leaf.perms || vbase < entry.wbase)
            return;
        std::uint64_t slot64 = (vbase - entry.wbase) / page;
        if (slot64 >= group_)
            return;
        if (pbase != entry.wpbase + slot64 * page)
            return;
        entry.bitmap |= 1u << (static_cast<unsigned>(slot64) & 31);
        all_dirty = all_dirty && dirty;
    };

    if (fill.walk && !fill.walk->pageFault() &&
        fill.walk->lineGranularity == size_) {
        for (const auto &slot : fill.walk->line) {
            if (slot.present && slot.xlate.accessed) {
                consider(slot.xlate.vbase, slot.xlate.pbase,
                         slot.xlate.perms, slot.xlate.dirty);
            }
        }
    }
    if (fill.bundle && fill.bundle->size == size_) {
        for (std::uint64_t i = 0; i < fill.bundle->count; i++) {
            consider(fill.bundle->vbase + i * page,
                     fill.bundle->pbase + i * page,
                     fill.bundle->perms, fill.bundle->dirty);
        }
    }
    entry.dirty = all_dirty;

    auto &set = sets_[setOf(leaf.vbase)];
    const auto confirm = [&](const Entry &e) {
        return e.wbase == entry.wbase && e.wpbase == entry.wpbase &&
               e.asid == entry.asid && e.perms == entry.perms;
    };
    const std::uint64_t tag = tagOf(entry.wbase, entry.asid);
    std::size_t i = referenceScan_ ? set.findIf(confirm)
                                   : set.findTag(tag, confirm);
    if (i != TagLaneSet<Entry>::npos) {
        Entry &e = set.payload(i);
        e.bitmap |= entry.bitmap;
        e.dirty = e.dirty && entry.dirty;
        set.rotateToFront(i); // move to MRU
        ++coalesces_;
        return;
    }
    set.insertFront(tag, entry);
    if (set.size() > assoc_)
        set.popBack();
    ++fills_;
}

void
ColtTlb::invalidate(VAddr vbase, PageSize size, Asid asid)
{
    ++invalidations_;
    const std::uint64_t page = pageBytes(size_);
    if (size == size_) {
        VAddr wbase = windowBase(vbase);
        auto slot = static_cast<unsigned>((vbase - wbase) / page);
        auto &set = sets_[setOf(vbase)];
        set.eraseIf([&](Entry &e) {
            if (e.wbase != wbase || e.asid != asid)
                return false;
            e.bitmap &= ~(1u << (slot & 31));
            return e.bitmap == 0;
        });
        return;
    }
    // Cross-size shootdown (superpage demotion/re-promotion): drop
    // every coalesced slot whose page overlaps [vbase, vbase + bytes).
    // The window can straddle group windows — and therefore sets — so
    // a coalesced run partially inside the window is trimmed, not
    // dropped whole, and every set must be scanned.
    const VAddr lo = vbase;
    const VAddr hi = vbase + pageBytes(size);
    for (auto &set : sets_) {
        set.eraseIf([&](Entry &e) {
            const std::uint64_t span =
                static_cast<std::uint64_t>(group_) * page;
            if (e.asid != asid || e.wbase >= hi || e.wbase + span <= lo)
                return false;
            for (unsigned slot = 0; slot < group_; slot++) {
                VAddr sbase =
                    e.wbase + static_cast<std::uint64_t>(slot) * page;
                if (sbase < hi && sbase + page > lo)
                    e.bitmap &= ~(1u << (slot & 31));
            }
            return e.bitmap == 0;
        });
    }
}

void
ColtTlb::invalidateAll()
{
    ++invalidations_;
    for (auto &set : sets_)
        set.clear();
}

void
ColtTlb::invalidateAsid(Asid asid)
{
    ++invalidations_;
    for (auto &set : sets_)
        set.eraseIf([&](const Entry &e) { return e.asid == asid; });
}

void
ColtTlb::markDirty(VAddr vaddr)
{
    VAddr wbase = windowBase(pageBase(vaddr, size_));
    auto &set = sets_[setOf(vaddr)];
    for (std::size_t i = 0; i < set.size(); ++i) {
        Entry &entry = set.payload(i);
        if (entry.wbase != wbase || entry.asid != asid_)
            continue;
        if (std::popcount(entry.bitmap) == 1)
            entry.dirty = true;
    }
}

} // namespace mixtlb::tlb
