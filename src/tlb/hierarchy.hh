/**
 * @file
 * A two-level TLB hierarchy in front of a page-table walker and the
 * cache hierarchy — the structure of the paper's functional simulator
 * (Sec. 6.2). Handles lookup, fill (propagating coalescing bundles
 * from L2 hits into L1 fills), page faults via the OS, the x86 dirty-
 * bit micro-op protocol, and TLB shootdowns.
 */

#ifndef MIXTLB_TLB_HIERARCHY_HH
#define MIXTLB_TLB_HIERARCHY_HH

#include <functional>
#include <memory>
#include <span>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "tlb/base.hh"

namespace mixtlb::tlb
{

/**
 * Where walks come from. Native systems wrap a Walker + Process; the
 * virtualization module provides a nested (2-D) implementation.
 */
class WalkSource
{
  public:
    virtual ~WalkSource() = default;

    /** Full hardware walk (memory accesses in the result). */
    virtual pt::WalkResult walk(VAddr vaddr, bool is_store) = 0;

    /**
     * Service a page fault for @p vaddr (OS/hypervisor work).
     * @retval false the fault cannot be serviced (OOM / bad address).
     */
    virtual bool fault(VAddr vaddr, bool is_store) = 0;

    /** Physical address of the leaf PTE (dirty micro-op target). */
    virtual std::optional<PAddr> leafPteAddr(VAddr vaddr) = 0;

    /** Set the leaf PTE's dirty (and accessed) bits. */
    virtual void setDirty(VAddr vaddr) = 0;

    /** A shootdown hit @p vbase: flush any walker-side caches. */
    virtual void invalidate(VAddr vbase, PageSize size)
    {
        (void)vbase;
        (void)size;
    }

    /** Drop walker-side cache state tagged @p asid (process exit). */
    virtual void invalidateAsid(Asid asid) { (void)asid; }

    /** True when refTranslate() is implemented (oracle available). */
    virtual bool hasRefTranslate() const { return false; }

    /**
     * Reference translation for the differential oracle: a functional,
     * side-effect-free map walk that bypasses every TLB and walker
     * cache. At paranoia >= 2 the hierarchy cross-checks each
     * successful access() against this.
     * @return the full physical byte address, or nullopt if unmapped.
     */
    virtual std::optional<PAddr> refTranslate(VAddr vaddr)
    {
        (void)vaddr;
        return std::nullopt;
    }
};

struct TlbHierarchyParams
{
    Cycles l1HitLatency = 1;
    Cycles l2HitLatency = 7;
};

class TlbHierarchy
{
  public:
    /**
     * @param l2 may be shared between hierarchies (GPU shader cores
     *           share an L2 TLB).
     */
    TlbHierarchy(const std::string &name, stats::StatGroup *parent,
                 std::unique_ptr<BaseTlb> l1, std::shared_ptr<BaseTlb> l2,
                 WalkSource &source, cache::CacheHierarchy &caches,
                 TlbHierarchyParams params = {});

    struct AccessResult
    {
        bool ok = true;       ///< false on unserviceable fault
        PAddr paddr = 0;
        Cycles cycles = 0;    ///< total address-translation cycles
        bool l1Hit = false;
        bool l2Hit = false;
        bool walked = false;
        bool faulted = false;
    };

    /** Translate one reference, modelling all side effects. */
    AccessResult access(VAddr vaddr, bool is_store);

    /** Shoot down a page (wire to Process::addInvalidateListener). */
    void invalidatePage(VAddr vbase, PageSize size);

    /**
     * Shoot down a page of a specific address space. Multiprogrammed
     * machines broadcast each process's shootdowns with its ASID so
     * only that process's entries are dropped.
     */
    void invalidatePage(VAddr vbase, PageSize size, Asid asid);

    /** Full flush. */
    void invalidateAll();

    /** Drop both levels' entries for one ASID (others stay resident). */
    void invalidateAsid(Asid asid);

    /**
     * Switch the active address space at both TLB levels. The walk
     * source is not switched here — a shared-walker source (e.g.
     * MultiWalkSource) retargets its walker/PWC itself.
     */
    void setAsid(Asid asid);

    BaseTlb &l1() { return *l1_; }
    BaseTlb &l2() { return *l2_; }
    const BaseTlb &l1() const { return *l1_; }
    const BaseTlb &l2() const { return *l2_; }

    double accessCount() const { return double(accesses_.value()); }
    double l1HitCount() const { return double(l1Hits_.value()); }
    double l2HitCount() const { return double(l2Hits_.value()); }
    double walkCount() const { return double(walks_.value()); }
    double walkCycleCount() const { return double(walkCycles_.value()); }
    double translationCycleCount() const
    {
        return double(translationCycles_.value());
    }
    double
    walkAccessCount() const
    {
        return double(walkAccesses_.value());
    }
    double walkDramAccessCount() const
    {
        return double(walkDramAccesses_.value());
    }
    double
    dirtyMicroOpCount() const
    {
        return double(dirtyMicroOps_.value());
    }
    double
    oracleCheckCount() const
    {
        return double(oracleChecks_.value());
    }

    stats::StatGroup &statGroup() { return stats_; }

  private:
    stats::StatGroup stats_;
    std::unique_ptr<BaseTlb> l1_;
    std::shared_ptr<BaseTlb> l2_;
    WalkSource &source_;
    cache::CacheHierarchy &caches_;
    TlbHierarchyParams params_;

    stats::Counter &accesses_;
    stats::Counter &l1Hits_;
    stats::Counter &l2Hits_;
    stats::Counter &walks_;
    stats::Counter &walkCycles_;
    stats::Counter &walkAccesses_;
    stats::Counter &walkDramAccesses_;
    stats::Counter &pageFaults_;
    stats::Counter &dirtyMicroOps_;
    stats::Counter &translationCycles_;
    stats::Counter &oracleChecks_;

    /** Charge a walk's memory accesses through the caches. */
    Cycles chargeWalk(const pt::WalkResult &walk);

    /**
     * Push one access list through the caches. Critical-path accesses
     * (@p charge_latency) add each hit level's latency to the returned
     * cycles; off-path fill scans cost bandwidth/energy only.
     */
    Cycles chargeAccesses(std::span<const PAddr> accesses,
                          bool charge_latency);

    /** Issue the dirty-bit micro-op for a store to a clean entry. */
    Cycles dirtyMicroOp(VAddr vaddr);

    /** Differential oracle: compare @p paddr against refTranslate(). */
    void oracleCheck(VAddr vaddr, PAddr paddr);
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_HIERARCHY_HH
