/**
 * @file
 * A two-level TLB hierarchy in front of a page-table walker and the
 * cache hierarchy — the structure of the paper's functional simulator
 * (Sec. 6.2). Handles lookup, fill (propagating coalescing bundles
 * from L2 hits into L1 fills), page faults via the OS, the x86 dirty-
 * bit micro-op protocol, and TLB shootdowns.
 */

#ifndef MIXTLB_TLB_HIERARCHY_HH
#define MIXTLB_TLB_HIERARCHY_HH

#include <functional>
#include <memory>
#include <span>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "tlb/base.hh"

namespace mixtlb::tlb
{

/**
 * Where walks come from. Native systems wrap a Walker + Process; the
 * virtualization module provides a nested (2-D) implementation.
 */
class WalkSource
{
  public:
    virtual ~WalkSource() = default;

    /** Full hardware walk (memory accesses in the result). */
    virtual pt::WalkResult walk(VAddr vaddr, bool is_store) = 0;

    /**
     * Service a page fault for @p vaddr (OS/hypervisor work).
     * @retval false the fault cannot be serviced (OOM / bad address).
     */
    virtual bool fault(VAddr vaddr, bool is_store) = 0;

    /** Physical address of the leaf PTE (dirty micro-op target). */
    virtual std::optional<PAddr> leafPteAddr(VAddr vaddr) = 0;

    /** Set the leaf PTE's dirty (and accessed) bits. */
    virtual void setDirty(VAddr vaddr) = 0;

    /** A shootdown hit @p vbase: flush any walker-side caches. */
    virtual void invalidate(VAddr vbase, PageSize size)
    {
        (void)vbase;
        (void)size;
    }

    /** Drop walker-side cache state tagged @p asid (process exit). */
    virtual void invalidateAsid(Asid asid) { (void)asid; }

    /** True when refTranslate() is implemented (oracle available). */
    virtual bool hasRefTranslate() const { return false; }

    /**
     * Reference translation for the differential oracle: a functional,
     * side-effect-free map walk that bypasses every TLB and walker
     * cache. At paranoia >= 2 the hierarchy cross-checks each
     * successful access() against this.
     * @return the full physical byte address, or nullopt if unmapped.
     */
    virtual std::optional<PAddr> refTranslate(VAddr vaddr)
    {
        (void)vaddr;
        return std::nullopt;
    }
};

struct TlbHierarchyParams
{
    Cycles l1HitLatency = 1;
    Cycles l2HitLatency = 7;
};

/**
 * Process-wide switch for the L0 MRU translation filter (on by
 * default). The filter is semantically lossless — every modeled
 * statistic and all TLB state evolve bit-identically with it on or
 * off — so the switch exists only for the differential tests that
 * prove exactly that, and for debugging.
 */
void setL0FilterEnabled(bool enabled);
bool l0FilterEnabled();

class TlbHierarchy
{
  public:
    /**
     * @param l2 may be shared between hierarchies (GPU shader cores
     *           share an L2 TLB).
     */
    TlbHierarchy(const std::string &name, stats::StatGroup *parent,
                 std::unique_ptr<BaseTlb> l1, std::shared_ptr<BaseTlb> l2,
                 WalkSource &source, cache::CacheHierarchy &caches,
                 TlbHierarchyParams params = {});

    struct AccessResult
    {
        bool ok = true;       ///< false on unserviceable fault
        PAddr paddr = 0;
        Cycles cycles = 0;    ///< total address-translation cycles
        bool l1Hit = false;
        bool l2Hit = false;
        bool walked = false;
        bool faulted = false;
    };

    /** Translate one reference, modelling all side effects. */
    AccessResult access(VAddr vaddr, bool is_store);

    /** Outcome of translateBatch(). */
    struct BatchResult
    {
        /** References fully processed (== refs.size() unless !ok). */
        std::size_t done = 0;
        /** False: the ref at index `done` hit an unserviceable fault. */
        bool ok = true;
        /** Translation cycles of all processed refs (incl. a failed
         *  ref's walk cycles, matching access()). */
        Cycles cycles = 0;
        /** Data-side cache cycles (only when @p charge_data). */
        Cycles dataCycles = 0;
    };

    /**
     * Translate a batch of references — the fused hot loop of every
     * run loop. Bit-identical to calling access() per reference (and
     * caches_.access(paddr, is_store) per reference when
     * @p charge_data): the per-reference paranoia and fault-site
     * checks are hoisted to the batch boundary (legal because
     * contracts::paranoia() and FaultScope arming are fixed while a
     * run is in flight), and consecutive L0-filter replays batch
     * their stat updates into one bulk flush per run of repeats.
     */
    BatchResult translateBatch(std::span<const MemRef> refs,
                               bool charge_data);

    /**
     * Drop the L0 MRU translation filter. The hierarchy invalidates
     * it on every fill, invalidation, ASID operation, and dirty
     * micro-op it performs itself; callers that mutate l1()/l2()
     * directly (tests, mostly) must call this before the next
     * access() or the filter may replay stale state.
     */
    void invalidateFilter() { filter_.valid = false; }

    /** Shoot down a page (wire to Process::addInvalidateListener). */
    void invalidatePage(VAddr vbase, PageSize size);

    /**
     * Shoot down a page of a specific address space. Multiprogrammed
     * machines broadcast each process's shootdowns with its ASID so
     * only that process's entries are dropped.
     */
    void invalidatePage(VAddr vbase, PageSize size, Asid asid);

    /** Full flush. */
    void invalidateAll();

    /** Drop both levels' entries for one ASID (others stay resident). */
    void invalidateAsid(Asid asid);

    /**
     * Switch the active address space at both TLB levels. The walk
     * source is not switched here — a shared-walker source (e.g.
     * MultiWalkSource) retargets its walker/PWC itself.
     */
    void setAsid(Asid asid);

    BaseTlb &l1() { return *l1_; }
    BaseTlb &l2() { return *l2_; }
    const BaseTlb &l1() const { return *l1_; }
    const BaseTlb &l2() const { return *l2_; }

    double accessCount() const { return double(accesses_.value()); }
    double l1HitCount() const { return double(l1Hits_.value()); }
    double l2HitCount() const { return double(l2Hits_.value()); }
    double walkCount() const { return double(walks_.value()); }
    double walkCycleCount() const { return double(walkCycles_.value()); }
    double translationCycleCount() const
    {
        return double(translationCycles_.value());
    }
    double
    walkAccessCount() const
    {
        return double(walkAccesses_.value());
    }
    double walkDramAccessCount() const
    {
        return double(walkDramAccesses_.value());
    }
    double
    dirtyMicroOpCount() const
    {
        return double(dirtyMicroOps_.value());
    }
    double
    oracleCheckCount() const
    {
        return double(oracleChecks_.value());
    }

    stats::StatGroup &statGroup() { return stats_; }

  private:
    stats::StatGroup stats_;
    std::unique_ptr<BaseTlb> l1_;
    std::shared_ptr<BaseTlb> l2_;
    WalkSource &source_;
    cache::CacheHierarchy &caches_;
    TlbHierarchyParams params_;

    /**
     * The L0 MRU translation filter: a one-entry cache of the last
     * hit's 4KB page and replay state. While armed, a repeat
     * reference to the same page short-circuits the TLB probes — the
     * hit design promised (via BaseTlb::replayable) that replaying
     * the lookup is a no-op on its state, so the filter only bumps
     * the same counters the full path would have and re-translates
     * through the cached entry. Invalidated on every fill,
     * invalidation, ASID switch, and dirty micro-op.
     */
    struct L0Filter
    {
        bool valid = false;
        /** Replays an L1-miss + L2-hit (else an L1 hit). */
        bool l2Path = false;
        VAddr lo = 0;      ///< 4KB page base the filter covers
        Cycles cycles = 0; ///< translation latency per replay
        TlbLookup l1Result;
        TlbLookup l2Result;
    };
    L0Filter filter_;

    /** Hot-path state cached at batch/call boundaries. */
    int paranoia_ = 0;
    bool walkSpikeArmed_ = false;
    bool filterOn_ = true;

    /** Refresh paranoia_/walkSpikeArmed_/filterOn_ (cheap, cold). */
    void refreshHotState();

    /** access() body, relying on refreshHotState() having run. */
    AccessResult accessImpl(VAddr vaddr, bool is_store);

    stats::Counter &accesses_;
    stats::Counter &l1Hits_;
    stats::Counter &l2Hits_;
    stats::Counter &walks_;
    stats::Counter &walkCycles_;
    stats::Counter &walkAccesses_;
    stats::Counter &walkDramAccesses_;
    stats::Counter &pageFaults_;
    stats::Counter &dirtyMicroOps_;
    stats::Counter &translationCycles_;
    stats::Counter &oracleChecks_;

    /** Charge a walk's memory accesses through the caches. */
    Cycles chargeWalk(const pt::WalkResult &walk);

    /**
     * Push one access list through the caches. Critical-path accesses
     * (@p charge_latency) add each hit level's latency to the returned
     * cycles; off-path fill scans cost bandwidth/energy only.
     */
    Cycles chargeAccesses(std::span<const PAddr> accesses,
                          bool charge_latency);

    /** Issue the dirty-bit micro-op for a store to a clean entry. */
    Cycles dirtyMicroOp(VAddr vaddr);

    /** Differential oracle: compare @p paddr against refTranslate(). */
    void oracleCheck(VAddr vaddr, PAddr paddr);
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_HIERARCHY_HH
