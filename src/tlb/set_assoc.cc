#include "set_assoc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mixtlb::tlb
{

SetAssocTlb::SetAssocTlb(const std::string &name, stats::StatGroup *parent,
                         std::uint64_t entries, unsigned assoc,
                         PageSize size)
    : BaseTlb(name, parent), entries_(entries), assoc_(assoc), size_(size),
      referenceScan_(referenceScanEnabled())
{
    fatal_if(assoc == 0 || entries == 0 || entries % assoc != 0,
             "TLB geometry does not divide evenly");
    numSets_ = entries / assoc;
    setMask_ = (numSets_ & (numSets_ - 1)) == 0 ? numSets_ - 1 : 0;
    sets_.resize(numSets_);
    for (auto &set : sets_)
        set.reserve(assoc_ + 1);
}

std::size_t
SetAssocTlb::find(TagLaneSet<Entry> &set, std::uint64_t vpn) const
{
    const auto confirm = [&](const Entry &e) {
        return e.vpn == vpn && e.asid == asid_;
    };
    if (referenceScan_)
        return set.findIf(confirm);
    return set.findTag(tagOf(vpn, asid_), confirm);
}

// mixcheck: hot
TlbLookup
SetAssocTlb::lookup(VAddr vaddr, bool is_store)
{
    (void)is_store;
    TlbLookup result;
    result.waysRead = assoc_;
    std::uint64_t vpn = vpnOf(vaddr, size_);
    auto &set = sets_[setOf(vpn)];
    std::size_t i = find(set, vpn);
    if (i != TagLaneSet<Entry>::npos) {
        const Entry &e = set.payload(i);
        result.hit = true;
        result.xlate = e.xlate;
        result.entryDirty = e.dirty;
        set.rotateToFront(i); // move to MRU
    }
    recordLookup(result);
    return result;
}

// mixcheck: hot
void
SetAssocTlb::fill(const FillInfo &fill)
{
    panic_if(fill.leaf.size != size_,
             "filling a %s translation into a %s-only TLB",
             pageSizeName(fill.leaf.size), pageSizeName(size_));
    std::uint64_t vpn = fill.leaf.vpn();
    auto &set = sets_[setOf(vpn)];
    std::size_t i = find(set, vpn);
    if (i != TagLaneSet<Entry>::npos) {
        Entry &e = set.payload(i);
        e.xlate = fill.leaf;
        e.dirty = fill.leaf.dirty;
        set.rotateToFront(i);
        return;
    }
    set.insertFront(tagOf(vpn, asid_),
                    Entry{vpn, asid_, fill.leaf, fill.leaf.dirty});
    if (set.size() > assoc_)
        set.popBack();
    ++fills_;
}

void
SetAssocTlb::invalidate(VAddr vbase, PageSize size, Asid asid)
{
    ++invalidations_;
    if (size == size_) {
        std::uint64_t vpn = vpnOf(vbase, size_);
        auto &set = sets_[setOf(vpn)];
        set.eraseIf([&](const Entry &e) {
            return e.vpn == vpn && e.asid == asid;
        });
        return;
    }
    // Cross-size shootdown (superpage demotion/re-promotion): drop any
    // entry whose page overlaps [vbase, vbase + bytes). A superpage
    // window covers many of this size's VPNs — and therefore many
    // sets — so scan them all; this is never on the hot lookup path.
    const std::uint64_t page = pageBytes(size_);
    const VAddr lo = vbase;
    const VAddr hi = vbase + pageBytes(size);
    for (auto &set : sets_) {
        set.eraseIf([&](const Entry &e) {
            const VAddr ebase = e.vpn * page;
            return e.asid == asid && ebase < hi && ebase + page > lo;
        });
    }
}

void
SetAssocTlb::invalidateAll()
{
    ++invalidations_;
    for (auto &set : sets_)
        set.clear();
}

void
SetAssocTlb::invalidateAsid(Asid asid)
{
    ++invalidations_;
    for (auto &set : sets_)
        set.eraseIf([&](const Entry &e) { return e.asid == asid; });
}

void
SetAssocTlb::markDirty(VAddr vaddr)
{
    std::uint64_t vpn = vpnOf(vaddr, size_);
    auto &set = sets_[setOf(vpn)];
    for (std::size_t i = 0; i < set.size(); ++i) {
        Entry &entry = set.payload(i);
        if (entry.vpn == vpn && entry.asid == asid_)
            entry.dirty = true;
    }
}

FullyAssocTlb::FullyAssocTlb(const std::string &name,
                             stats::StatGroup *parent,
                             std::uint64_t entries,
                             std::initializer_list<PageSize> sizes)
    : BaseTlb(name, parent), entries_(entries),
      referenceScan_(referenceScanEnabled())
{
    fatal_if(entries == 0, "empty fully-associative TLB");
    lru_.reserve(entries_ + 1);
    for (PageSize size : sizes)
        sizeMask_[static_cast<unsigned>(size)] = true;
}

bool
FullyAssocTlb::supports(PageSize size) const
{
    return sizeMask_[static_cast<unsigned>(size)];
}

// mixcheck: hot
TlbLookup
FullyAssocTlb::lookup(VAddr vaddr, bool is_store)
{
    (void)is_store;
    TlbLookup result;
    result.waysRead = static_cast<unsigned>(entries_);
    const auto confirm = [&](const Entry &e) {
        return e.xlate.covers(vaddr) && e.asid == asid_;
    };
    std::size_t i;
    if (referenceScan_) {
        i = lru_.findIf(confirm);
    } else {
        // One candidate tag per supported page size: a covering entry
        // of size s is based at pageBase(vaddr, s), so its tag must
        // equal that size's candidate.
        std::uint64_t cands[NumPageSizes];
        unsigned ncands = 0;
        for (unsigned s = 0; s < NumPageSizes; ++s) {
            if (sizeMask_[s]) {
                const auto size = static_cast<PageSize>(s);
                cands[ncands++] =
                    tagOf(pageBase(vaddr, size), size, asid_);
            }
        }
        i = lru_.findTagAny(cands, ncands, confirm);
    }
    if (i != TagLaneSet<Entry>::npos) {
        const Entry &e = lru_.payload(i);
        result.hit = true;
        result.xlate = e.xlate;
        result.entryDirty = e.dirty;
        lru_.rotateToFront(i); // move to MRU
    }
    recordLookup(result);
    return result;
}

// mixcheck: hot
void
FullyAssocTlb::fill(const FillInfo &fill)
{
    panic_if(!supports(fill.leaf.size),
             "filling unsupported page size %s",
             pageSizeName(fill.leaf.size));
    const auto confirm = [&](const Entry &e) {
        return e.xlate.vbase == fill.leaf.vbase &&
               e.xlate.size == fill.leaf.size && e.asid == asid_;
    };
    const std::uint64_t tag =
        tagOf(fill.leaf.vbase, fill.leaf.size, asid_);
    std::size_t i = referenceScan_ ? lru_.findIf(confirm)
                                   : lru_.findTag(tag, confirm);
    if (i != TagLaneSet<Entry>::npos) {
        Entry &e = lru_.payload(i);
        e.xlate = fill.leaf;
        e.dirty = fill.leaf.dirty;
        lru_.rotateToFront(i);
        return;
    }
    lru_.insertFront(tag, Entry{asid_, fill.leaf, fill.leaf.dirty});
    if (lru_.size() > entries_)
        lru_.popBack();
    ++fills_;
}

void
FullyAssocTlb::invalidate(VAddr vbase, PageSize size, Asid asid)
{
    ++invalidations_;
    // Range semantics: any entry overlapping [vbase, vbase + bytes)
    // is stale, whatever its own page size (a demoted superpage's
    // entry must die on a 4K shootdown inside it, and vice versa).
    const VAddr lo = vbase;
    const VAddr hi = vbase + pageBytes(size);
    lru_.eraseIf([&](const Entry &e) {
        const VAddr ebase = e.xlate.vbase;
        return e.asid == asid && ebase < hi &&
               ebase + pageBytes(e.xlate.size) > lo;
    });
}

void
FullyAssocTlb::invalidateAll()
{
    ++invalidations_;
    lru_.clear();
}

void
FullyAssocTlb::invalidateAsid(Asid asid)
{
    ++invalidations_;
    lru_.eraseIf([&](const Entry &e) { return e.asid == asid; });
}

void
FullyAssocTlb::markDirty(VAddr vaddr)
{
    for (std::size_t i = 0; i < lru_.size(); ++i) {
        Entry &entry = lru_.payload(i);
        if (entry.xlate.covers(vaddr) && entry.asid == asid_)
            entry.dirty = true;
    }
}

} // namespace mixtlb::tlb
