#include "set_assoc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mixtlb::tlb
{

SetAssocTlb::SetAssocTlb(const std::string &name, stats::StatGroup *parent,
                         std::uint64_t entries, unsigned assoc,
                         PageSize size)
    : BaseTlb(name, parent), entries_(entries), assoc_(assoc), size_(size)
{
    fatal_if(assoc == 0 || entries == 0 || entries % assoc != 0,
             "TLB geometry does not divide evenly");
    numSets_ = entries / assoc;
    setMask_ = (numSets_ & (numSets_ - 1)) == 0 ? numSets_ - 1 : 0;
    sets_.resize(numSets_);
    for (auto &set : sets_)
        set.reserve(assoc_ + 1);
}

// mixcheck: hot
TlbLookup
SetAssocTlb::lookup(VAddr vaddr, bool is_store)
{
    (void)is_store;
    TlbLookup result;
    result.waysRead = assoc_;
    std::uint64_t vpn = vpnOf(vaddr, size_);
    auto &set = sets_[setOf(vpn)];
    auto it = std::find_if(set.begin(), set.end(), [&](const Entry &e) {
        return e.vpn == vpn && e.asid == asid_;
    });
    if (it != set.end()) {
        result.hit = true;
        result.xlate = it->xlate;
        result.entryDirty = it->dirty;
        std::rotate(set.begin(), it, it + 1); // move to MRU
    }
    recordLookup(result);
    return result;
}

// mixcheck: hot
void
SetAssocTlb::fill(const FillInfo &fill)
{
    panic_if(fill.leaf.size != size_,
             "filling a %s translation into a %s-only TLB",
             pageSizeName(fill.leaf.size), pageSizeName(size_));
    std::uint64_t vpn = fill.leaf.vpn();
    auto &set = sets_[setOf(vpn)];
    auto it = std::find_if(set.begin(), set.end(), [&](const Entry &e) {
        return e.vpn == vpn && e.asid == asid_;
    });
    if (it != set.end()) {
        it->xlate = fill.leaf;
        it->dirty = fill.leaf.dirty;
        std::rotate(set.begin(), it, it + 1);
        return;
    }
    set.insert(set.begin(), Entry{vpn, asid_, fill.leaf, fill.leaf.dirty});
    if (set.size() > assoc_)
        set.pop_back();
    ++fills_;
}

void
SetAssocTlb::invalidate(VAddr vbase, PageSize size, Asid asid)
{
    ++invalidations_;
    if (size == size_) {
        std::uint64_t vpn = vpnOf(vbase, size_);
        auto &set = sets_[setOf(vpn)];
        std::erase_if(set, [&](const Entry &e) {
            return e.vpn == vpn && e.asid == asid;
        });
        return;
    }
    // Cross-size shootdown (superpage demotion/re-promotion): drop any
    // entry whose page overlaps [vbase, vbase + bytes). A superpage
    // window covers many of this size's VPNs — and therefore many
    // sets — so scan them all; this is never on the hot lookup path.
    const std::uint64_t page = pageBytes(size_);
    const VAddr lo = vbase;
    const VAddr hi = vbase + pageBytes(size);
    for (auto &set : sets_) {
        std::erase_if(set, [&](const Entry &e) {
            const VAddr ebase = e.vpn * page;
            return e.asid == asid && ebase < hi && ebase + page > lo;
        });
    }
}

void
SetAssocTlb::invalidateAll()
{
    ++invalidations_;
    for (auto &set : sets_)
        set.clear();
}

void
SetAssocTlb::invalidateAsid(Asid asid)
{
    ++invalidations_;
    for (auto &set : sets_)
        std::erase_if(set, [&](const Entry &e) { return e.asid == asid; });
}

void
SetAssocTlb::markDirty(VAddr vaddr)
{
    std::uint64_t vpn = vpnOf(vaddr, size_);
    auto &set = sets_[setOf(vpn)];
    for (auto &entry : set) {
        if (entry.vpn == vpn && entry.asid == asid_)
            entry.dirty = true;
    }
}

FullyAssocTlb::FullyAssocTlb(const std::string &name,
                             stats::StatGroup *parent,
                             std::uint64_t entries,
                             std::initializer_list<PageSize> sizes)
    : BaseTlb(name, parent), entries_(entries)
{
    fatal_if(entries == 0, "empty fully-associative TLB");
    lru_.reserve(entries_ + 1);
    for (PageSize size : sizes)
        sizeMask_[static_cast<unsigned>(size)] = true;
}

bool
FullyAssocTlb::supports(PageSize size) const
{
    return sizeMask_[static_cast<unsigned>(size)];
}

// mixcheck: hot
TlbLookup
FullyAssocTlb::lookup(VAddr vaddr, bool is_store)
{
    (void)is_store;
    TlbLookup result;
    result.waysRead = static_cast<unsigned>(entries_);
    auto it = std::find_if(lru_.begin(), lru_.end(), [&](const Entry &e) {
        return e.xlate.covers(vaddr) && e.asid == asid_;
    });
    if (it != lru_.end()) {
        result.hit = true;
        result.xlate = it->xlate;
        result.entryDirty = it->dirty;
        std::rotate(lru_.begin(), it, it + 1); // move to MRU
    }
    recordLookup(result);
    return result;
}

// mixcheck: hot
void
FullyAssocTlb::fill(const FillInfo &fill)
{
    panic_if(!supports(fill.leaf.size),
             "filling unsupported page size %s",
             pageSizeName(fill.leaf.size));
    auto it = std::find_if(lru_.begin(), lru_.end(), [&](const Entry &e) {
        return e.xlate.vbase == fill.leaf.vbase &&
               e.xlate.size == fill.leaf.size && e.asid == asid_;
    });
    if (it != lru_.end()) {
        it->xlate = fill.leaf;
        it->dirty = fill.leaf.dirty;
        std::rotate(lru_.begin(), it, it + 1);
        return;
    }
    lru_.insert(lru_.begin(), Entry{asid_, fill.leaf, fill.leaf.dirty});
    if (lru_.size() > entries_)
        lru_.pop_back();
    ++fills_;
}

void
FullyAssocTlb::invalidate(VAddr vbase, PageSize size, Asid asid)
{
    ++invalidations_;
    // Range semantics: any entry overlapping [vbase, vbase + bytes)
    // is stale, whatever its own page size (a demoted superpage's
    // entry must die on a 4K shootdown inside it, and vice versa).
    const VAddr lo = vbase;
    const VAddr hi = vbase + pageBytes(size);
    std::erase_if(lru_, [&](const Entry &e) {
        const VAddr ebase = e.xlate.vbase;
        return e.asid == asid && ebase < hi &&
               ebase + pageBytes(e.xlate.size) > lo;
    });
}

void
FullyAssocTlb::invalidateAll()
{
    ++invalidations_;
    lru_.clear();
}

void
FullyAssocTlb::invalidateAsid(Asid asid)
{
    ++invalidations_;
    std::erase_if(lru_, [&](const Entry &e) { return e.asid == asid; });
}

void
FullyAssocTlb::markDirty(VAddr vaddr)
{
    for (auto &entry : lru_) {
        if (entry.xlate.covers(vaddr) && entry.asid == asid_)
            entry.dirty = true;
    }
}

} // namespace mixtlb::tlb
