#include "skew.hh"

#include <array>

#include "common/logging.hh"

namespace mixtlb::tlb
{

SkewTlb::SkewTlb(const std::string &name, stats::StatGroup *parent,
                 const SkewTlbParams &params)
    : BaseTlb(name, parent), params_(params)
{
    fatal_if(params.setsPerWay == 0, "skew TLB with zero rows");
    totalWays_ = 0;
    for (unsigned s = 0; s < NumPageSizes; s++) {
        for (unsigned w = 0; w < params.waysPerSize[s]; w++)
            waySize_.push_back(static_cast<PageSize>(s));
        totalWays_ += params.waysPerSize[s];
    }
    fatal_if(totalWays_ == 0, "skew TLB with zero ways");
    ways_.assign(totalWays_, std::vector<Entry>(params.setsPerWay));
    if (params.usePredictor) {
        predictor_ = std::make_unique<SizePredictor>(
            "predictor", &stats_, params.predictorEntries);
    }
}

bool
SkewTlb::supports(PageSize size) const
{
    return params_.waysPerSize[static_cast<unsigned>(size)] > 0;
}

std::uint64_t
SkewTlb::numEntries() const
{
    return static_cast<std::uint64_t>(totalWays_) * params_.setsPerWay;
}

std::uint64_t
SkewTlb::rowOf(unsigned way, std::uint64_t vpn) const
{
    // A different xor-fold per way gives the inter-way skew Seznec's
    // design relies on: conflicts in one way do not conflict in others.
    // The fold distance is masked to 63: shifting a 64-bit value by
    // >= 64 is UB, and 4 + 3*way reaches 64 once way >= 20.
    std::uint64_t h = vpn ^ (vpn >> ((4 + 3 * way) & 63));
    h *= 0x9e3779b97f4a7c15ULL + 2 * way;
    h ^= h >> 31;
    return h % params_.setsPerWay;
}

int
SkewTlb::probeSize(VAddr vaddr, PageSize size, unsigned *ways_read)
{
    std::uint64_t vpn = vpnOf(vaddr, size);
    for (unsigned way = 0; way < totalWays_; way++) {
        if (waySize_[way] != size)
            continue;
        (*ways_read)++;
        Entry &entry = ways_[way][rowOf(way, vpn)];
        if (entry.valid && entry.vpn == vpn && entry.asid == asid_)
            return static_cast<int>(way);
    }
    return -1;
}

// mixcheck: hot
TlbLookup
SkewTlb::lookup(VAddr vaddr, bool is_store)
{
    (void)is_store;
    TlbLookup result;
    result.probes = 0;
    result.waysRead = 0;

    // Fixed-size probe order: a heap-allocated vector here would break
    // the allocation-free hot-path contract.
    std::array<PageSize, NumPageSizes> order{
        PageSize::Size4K, PageSize::Size2M, PageSize::Size1G};
    if (predictor_) {
        PageSize predicted = predictor_->predict(vaddr);
        unsigned n = 0;
        order[n++] = predicted;
        for (unsigned s = 0; s < NumPageSizes; s++) {
            auto size = static_cast<PageSize>(s);
            if (size != predicted)
                order[n++] = size;
        }
    }
    // Plain skew TLBs probe every way in one parallel round, so the
    // enum-order initializer above is already the right order.

    int hit_way = -1;
    PageSize hit_size = PageSize::Size4K;
    if (predictor_) {
        for (PageSize size : order) {
            if (!supports(size))
                continue;
            result.probes++;
            hit_way = probeSize(vaddr, size, &result.waysRead);
            if (hit_way >= 0) {
                hit_size = size;
                break;
            }
        }
        if (result.probes > 0) {
            // Outcome known after the first probe round.
            predictor_->recordOutcome(hit_way >= 0 && result.probes == 1);
        }
    } else {
        result.probes = 1;
        for (PageSize size : order) {
            if (!supports(size))
                continue;
            int way = probeSize(vaddr, size, &result.waysRead);
            if (way >= 0 && hit_way < 0) {
                hit_way = way;
                hit_size = size;
            }
        }
    }
    if (result.probes == 0)
        result.probes = 1;

    if (hit_way >= 0) {
        std::uint64_t vpn = vpnOf(vaddr, hit_size);
        Entry &entry = ways_[hit_way][rowOf(hit_way, vpn)];
        entry.timestamp = ++clock_;
        result.hit = true;
        result.xlate = entry.xlate;
        result.entryDirty = entry.dirty;
        if (predictor_)
            predictor_->update(vaddr, hit_size);
    }
    recordLookup(result);
    return result;
}

// mixcheck: hot
void
SkewTlb::fill(const FillInfo &fill)
{
    panic_if(!supports(fill.leaf.size),
             "skew TLB does not cache %s pages",
             pageSizeName(fill.leaf.size));
    std::uint64_t vpn = fill.leaf.vpn();

    // Candidate slot per way of this size; prefer invalid, else the
    // oldest timestamp across candidate slots.
    int victim_way = -1;
    std::uint64_t victim_ts = ~0ULL;
    for (unsigned way = 0; way < totalWays_; way++) {
        if (waySize_[way] != fill.leaf.size)
            continue;
        Entry &entry = ways_[way][rowOf(way, vpn)];
        if (entry.valid && entry.vpn == vpn && entry.asid == asid_) {
            victim_way = static_cast<int>(way); // refresh in place
            break;
        }
        if (!entry.valid) {
            victim_way = static_cast<int>(way);
            victim_ts = 0;
        } else if (entry.timestamp < victim_ts) {
            victim_way = static_cast<int>(way);
            victim_ts = entry.timestamp;
        }
    }
    panic_if(victim_way < 0, "no way available for fill");
    Entry &entry = ways_[victim_way][rowOf(victim_way, vpn)];
    entry.valid = true;
    entry.vpn = vpn;
    entry.asid = asid_;
    entry.xlate = fill.leaf;
    entry.dirty = fill.leaf.dirty;
    entry.timestamp = ++clock_;
    ++fills_;
    if (predictor_) {
        // Train on the *demanded* address, not the page base: the
        // predictor is indexed by 2MB region, so for a superpage the
        // base can land in a different predictor slot than the address
        // that actually missed, leaving that region's prediction stale.
        predictor_->update(fill.vaddr ? fill.vaddr : fill.leaf.vbase,
                           fill.leaf.size);
    }
}

void
SkewTlb::invalidate(VAddr vbase, PageSize size, Asid asid)
{
    ++invalidations_;
    if (supports(size)) {
        // Same-size entries index to one known row per way.
        std::uint64_t vpn = vpnOf(vbase, size);
        for (unsigned way = 0; way < totalWays_; way++) {
            if (waySize_[way] != size)
                continue;
            Entry &entry = ways_[way][rowOf(way, vpn)];
            if (entry.valid && entry.vpn == vpn && entry.asid == asid)
                entry.valid = false;
        }
    }
    // Other-size entries overlapping [vbase, vbase + bytes) skew to
    // per-way rows that cannot be derived from the window, so scan the
    // ways of every other size (off the hot lookup path).
    const VAddr lo = vbase;
    const VAddr hi = vbase + pageBytes(size);
    for (unsigned way = 0; way < totalWays_; way++) {
        const PageSize way_size = waySize_[way];
        if (way_size == size)
            continue;
        const std::uint64_t page = pageBytes(way_size);
        for (Entry &entry : ways_[way]) {
            if (!entry.valid || entry.asid != asid)
                continue;
            const VAddr ebase = entry.xlate.vbase;
            if (ebase < hi && ebase + page > lo)
                entry.valid = false;
        }
    }
}

void
SkewTlb::invalidateAsid(Asid asid)
{
    ++invalidations_;
    for (auto &way : ways_) {
        for (auto &entry : way) {
            if (entry.asid == asid)
                entry.valid = false;
        }
    }
}

void
SkewTlb::invalidateAll()
{
    ++invalidations_;
    for (auto &way : ways_) {
        for (auto &entry : way)
            entry.valid = false;
    }
}

void
SkewTlb::markDirty(VAddr vaddr)
{
    for (unsigned way = 0; way < totalWays_; way++) {
        std::uint64_t vpn = vpnOf(vaddr, waySize_[way]);
        Entry &entry = ways_[way][rowOf(way, vpn)];
        if (entry.valid && entry.vpn == vpn && entry.asid == asid_)
            entry.dirty = true;
    }
}

} // namespace mixtlb::tlb
