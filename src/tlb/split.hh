/**
 * @file
 * A split (partitioned) TLB: one component structure per page size (or
 * group of page sizes), all probed in parallel — the organisation used
 * by essentially all commercial processors and the paper's baseline.
 */

#ifndef MIXTLB_TLB_SPLIT_HH
#define MIXTLB_TLB_SPLIT_HH

#include <memory>
#include <vector>

#include "tlb/base.hh"

namespace mixtlb::tlb
{

class SplitTlb : public BaseTlb
{
  public:
    SplitTlb(const std::string &name, stats::StatGroup *parent);

    /** Add a component; fills route to the first that supports a size. */
    BaseTlb &addComponent(std::unique_ptr<BaseTlb> component);

    using BaseTlb::invalidate;

    TlbLookup lookup(VAddr vaddr, bool is_store) override;
    void fill(const FillInfo &fill) override;
    void invalidate(VAddr vbase, PageSize size, Asid asid) override;
    void invalidateAll() override;
    void invalidateAsid(Asid asid) override;
    void setAsid(Asid asid) override;
    void markDirty(VAddr vaddr) override;

    bool supports(PageSize size) const override;
    std::uint64_t numEntries() const override;
    unsigned numWays() const override;

    /**
     * Replayable iff every component's most recent sub-lookup is: a
     * split lookup probes all components, so a replay must replay each
     * of them. Valid only immediately after lookup() (lastSub_ holds
     * that lookup's per-component results).
     */
    bool replayable(const TlbLookup &result, VAddr vaddr) const override;

    /** Replays the last lookup into every component, then self. */
    void replayLookup(const TlbLookup &result, std::uint64_t n = 1) override;

  private:
    std::vector<std::unique_ptr<BaseTlb>> components_;
    /** Per-component results of the most recent lookup(). */
    std::vector<TlbLookup> lastSub_;
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_SPLIT_HH
