/**
 * @file
 * The common TLB interface shared by every design the paper evaluates:
 * classic split set-associative TLBs, MIX TLBs, hash-rehash and
 * skew-associative multi-indexing TLBs, COLT variants, and the
 * never-miss ideal TLB.
 */

#ifndef MIXTLB_TLB_BASE_HH
#define MIXTLB_TLB_BASE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/contracts.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "pt/pte.hh"
#include "pt/walker.hh"

namespace mixtlb::tlb
{

/**
 * A run of coalesced, contiguous translations, as carried by a MIX or
 * COLT entry. Lower TLB levels can fill from a bundle directly when an
 * upper level hits, preserving coalescing without a page-table walk.
 */
struct BundleInfo
{
    VAddr vbase = 0;  ///< base of the first page in the run
    PAddr pbase = 0;  ///< physical base of the first page
    PageSize size = PageSize::Size4K;
    std::uint64_t count = 1; ///< contiguous pages in the run
    pt::Perms perms{};
    bool dirty = false;

    bool
    covers(VAddr vaddr) const
    {
        return vaddr >= vbase && vaddr < vbase + count * pageBytes(size);
    }

    PAddr translate(VAddr vaddr) const { return pbase + (vaddr - vbase); }
};

/** Outcome of a TLB lookup. */
struct TlbLookup
{
    bool hit = false;
    /** Synthesized translation for the probed address (valid on hit). */
    pt::Translation xlate{};
    /** Sequential probe rounds performed (1 for single-index designs). */
    unsigned probes = 1;
    /** Entries read across all probes (dynamic lookup energy). */
    unsigned waysRead = 0;
    /** Dirty bit of the hit entry/bundle (drives the store micro-op). */
    bool entryDirty = false;
    /** Coalescing info of the hit entry, for lower-level fills. */
    std::optional<BundleInfo> bundle;
};

/** Everything a fill might use. */
struct FillInfo
{
    /** The demanded leaf translation. */
    pt::Translation leaf{};
    /**
     * The address whose miss triggered this fill (0 = use leaf.vbase).
     * MIX TLBs merge into existing bundles only in the set this address
     * probes; other sets are blindly mirrored (Sec. 4.3).
     */
    VAddr vaddr = 0;
    /**
     * The walker result (leaf PTE cache line) when the fill follows a
     * walk; nullptr when filling from an upper-level TLB hit.
     */
    const pt::WalkResult *walk = nullptr;
    /** Bundle from an upper-level coalesced hit. */
    std::optional<BundleInfo> bundle;
};

/**
 * Process-wide switch selecting the reference full-predicate entry
 * scan instead of the SoA tag-lane scan in the designs that support
 * both. Latched by each TLB at construction (a ctor flag, not a
 * per-lookup branch); the two scans are bit-exact by construction, so
 * this exists for the differential property tests and debugging only.
 * Flip it before building the machine under test.
 */
void setReferenceScanEnabled(bool enabled);
bool referenceScanEnabled();

/** Abstract TLB. */
class BaseTlb
{
  public:
    BaseTlb(const std::string &name, stats::StatGroup *parent);
    virtual ~BaseTlb() = default;

    BaseTlb(const BaseTlb &) = delete;
    BaseTlb &operator=(const BaseTlb &) = delete;

    /** Probe for @p vaddr. Never fills. */
    virtual TlbLookup lookup(VAddr vaddr, bool is_store) = 0;

    /** Install (and possibly coalesce) a translation. */
    virtual void fill(const FillInfo &fill) = 0;

    /**
     * Invalidate any entry of @p asid covering the page at @p vbase.
     * Shootdowns broadcast from another process carry that process's
     * ASID, which need not be the one currently active here.
     */
    virtual void invalidate(VAddr vbase, PageSize size, Asid asid) = 0;

    /** Invalidate the page for the currently active ASID. */
    void invalidate(VAddr vbase, PageSize size)
    {
        invalidate(vbase, size, asid_);
    }

    /** Invalidate everything (context switch / full shootdown). */
    virtual void invalidateAll() = 0;

    /** Invalidate every entry tagged @p asid, leaving others resident. */
    virtual void invalidateAsid(Asid asid) = 0;

    /**
     * Switch the active address space: subsequent lookups, fills and
     * markDirty calls match/tag entries with @p asid. Entries of other
     * ASIDs stay resident and keep competing for capacity.
     */
    virtual void setAsid(Asid asid) { asid_ = asid; }

    /** The currently active ASID. */
    Asid asid() const { return asid_; }

    /**
     * A store hit a clean entry and the dirty micro-op completed: set
     * the entry's dirty bit where the design allows it (Sec. 4.4).
     */
    virtual void markDirty(VAddr vaddr) = 0;

    /**
     * Replay contract for the hierarchy's L0 MRU translation filter.
     * Must be called immediately after lookup() returned @p result for
     * @p vaddr, before any other operation on this structure. A true
     * return promises that — absent intervening mutation (fill /
     * invalidate / invalidateAll / invalidateAsid / setAsid /
     * markDirty / another lookup) — repeating the lookup with ANY
     * address in the 4KB page containing @p vaddr would (a) return a
     * TlbLookup identical in every field except the translated offset
     * and (b) leave the structure bit-identical: on a hit the matched
     * entry is already at the MRU front, so the LRU rotate is a no-op,
     * and on a miss nothing moves. Designs whose lookups mutate state
     * beyond the MRU rotation (skew clocks/timestamps, size-predictor
     * training, duplicate-mirror collapse) must return false for the
     * affected outcomes. The default is conservatively ineligible.
     */
    virtual bool
    replayable(const TlbLookup &result, VAddr vaddr) const
    {
        (void)result;
        (void)vaddr;
        return false;
    }

    /**
     * Account @p n replayed lookups of @p result without probing: the
     * exact stat evolution n repeat lookup() calls would have had,
     * with no array scan and no state change. Composite structures
     * override this to replay their components' sub-lookups too.
     */
    virtual void
    replayLookup(const TlbLookup &result, std::uint64_t n = 1)
    {
        if (result.hit)
            hits_ += n;
        else
            misses_ += n;
        probesTotal_ += result.probes * n;
        waysReadTotal_ += result.waysRead * n;
    }

    /** Can this structure hold pages of @p size? */
    virtual bool supports(PageSize size) const = 0;

    /** Total entry capacity (area/energy model input). */
    virtual std::uint64_t numEntries() const = 0;

    /** Ways read by one parallel probe (lookup energy model input). */
    virtual unsigned numWays() const = 0;

    /**
     * Append violations of this design's structural invariants to
     * @p report (see src/common/contracts.hh). Run under --paranoia;
     * the default has nothing to check.
     */
    virtual void audit(contracts::AuditReport &report) const
    {
        (void)report;
    }

    stats::StatGroup &statGroup() { return stats_; }

    double hits() const { return double(hits_.value()); }
    double misses() const { return double(misses_.value()); }
    double fillCount() const { return double(fills_.value()); }
    double coalesceCount() const { return double(coalesces_.value()); }
    double
    invalidationCount() const
    {
        return double(invalidations_.value());
    }
    double probeCount() const { return double(probesTotal_.value()); }
    double
    waysReadCount() const
    {
        return double(waysReadTotal_.value());
    }

  protected:
    stats::StatGroup stats_;
    Asid asid_ = 0; ///< active address space; entries are tagged at fill
    stats::Counter &hits_;
    stats::Counter &misses_;
    stats::Counter &fills_;       ///< entry writes, incl. every mirror
    stats::Counter &coalesces_;   ///< fills merged into existing entries
    stats::Counter &invalidations_;
    stats::Counter &probesTotal_; ///< probe rounds summed over lookups
    stats::Counter &waysReadTotal_;///< entries read summed over lookups

    void
    recordLookup(const TlbLookup &result)
    {
        if (result.hit)
            ++hits_;
        else
            ++misses_;
        probesTotal_ += result.probes;
        waysReadTotal_ += result.waysRead;
    }
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_BASE_HH
