/**
 * @file
 * COLT-style coalescing set-associative TLB (Pham et al., MICRO 2012;
 * Sec. 5.2 of the paper).
 *
 * A single-page-size TLB whose entries cover an aligned group of
 * `group` pages; contiguous (VA and PA) translations found in the leaf
 * PTE cache line coalesce into one entry via a per-slot bitmap. The
 * index drops log2(group) VPN bits so the whole group maps to one set.
 *
 * COLT   = this structure with 4KB pages, group 4 (the original work).
 * COLT++ = split TLBs where every per-size component coalesces its own
 *          page size (the extension evaluated in Figure 18).
 */

#ifndef MIXTLB_TLB_COLT_HH
#define MIXTLB_TLB_COLT_HH

#include <vector>

#include "tlb/base.hh"
#include "tlb/tag_lane.hh"

namespace mixtlb::tlb
{

class ColtTlb : public BaseTlb
{
  public:
    ColtTlb(const std::string &name, stats::StatGroup *parent,
            std::uint64_t entries, unsigned assoc, PageSize size,
            unsigned group = 4);

    using BaseTlb::invalidate;

    TlbLookup lookup(VAddr vaddr, bool is_store) override;
    void fill(const FillInfo &fill) override;
    void invalidate(VAddr vbase, PageSize size, Asid asid) override;
    void invalidateAll() override;
    void invalidateAsid(Asid asid) override;
    void markDirty(VAddr vaddr) override;

    bool supports(PageSize size) const override { return size == size_; }
    std::uint64_t numEntries() const override { return entries_; }
    unsigned numWays() const override { return assoc_; }

    /**
     * Within one 4KB page the probed window, slot, and synthesized
     * bundle are all constant (size_ >= 4KB), and a hit leaves its
     * entry at the MRU front — both outcomes replay.
     */
    bool
    replayable(const TlbLookup &result, VAddr vaddr) const override
    {
        (void)result;
        (void)vaddr;
        return true;
    }

  private:
    struct Entry
    {
        VAddr wbase;   ///< group window base VA
        PAddr wpbase;  ///< physical anchor (slot 0's would-be PA)
        Asid asid;
        std::uint32_t bitmap;
        pt::Perms perms;
        bool dirty;
    };

    std::uint64_t entries_;
    unsigned assoc_;
    PageSize size_;
    unsigned group_;
    std::uint64_t numSets_;
    /** Ctor-latched referenceScanEnabled(): full-predicate scans. */
    bool referenceScan_;
    /** Per-set SoA ways in LRU order (front = MRU); each lane is
     *  reserved to assoc_ + 1 at construction so the hot path never
     *  reallocates. */
    std::vector<TagLaneSet<Entry>> sets_;

    /**
     * Tag lane packing: wbase is window-aligned (>= 4KB), so the low
     * 12 bits are free for the ASID. Entries sharing (wbase, asid)
     * but differing in anchor/perms/bitmap share a tag; the confirm
     * predicates disambiguate.
     */
    static std::uint64_t
    tagOf(VAddr wbase, Asid asid)
    {
        return ((wbase >> PageShift4K) << 16) | asid;
    }

    std::uint64_t
    setOf(VAddr vaddr) const
    {
        return (vpnOf(vaddr, size_) / group_) % numSets_;
    }

    VAddr
    windowBase(VAddr vbase) const
    {
        std::uint64_t span =
            static_cast<std::uint64_t>(group_) * pageBytes(size_);
        return vbase - (vbase % span);
    }
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_COLT_HH
