/**
 * @file
 * A hash-rehash TLB (Sec. 5.1): one set-associative array caching all
 * page sizes, probed repeatedly — once per candidate page size — until
 * a hit or all sizes are exhausted. An optional size predictor chooses
 * the first probe (the "prediction-based enhancement" of [10]).
 *
 * This is the organisation Intel uses for its unified 4KB+2MB L2 TLBs.
 * Its cost is variable hit latency and extra probe energy, which the
 * evaluation (Figure 16) quantifies against MIX TLBs.
 */

#ifndef MIXTLB_TLB_HASH_REHASH_HH
#define MIXTLB_TLB_HASH_REHASH_HH

#include <vector>

#include "tlb/base.hh"
#include "tlb/predictor.hh"
#include "tlb/tag_lane.hh"

namespace mixtlb::tlb
{

struct HashRehashParams
{
    std::uint64_t entries = 512;
    unsigned assoc = 8;
    /** Page sizes this structure caches, in default probe order. */
    std::vector<PageSize> sizes{PageSize::Size4K, PageSize::Size2M,
                                PageSize::Size1G};
    /** Probe first with a size predictor instead of fixed order. */
    bool usePredictor = false;
    unsigned predictorEntries = 512;
};

class HashRehashTlb : public BaseTlb
{
  public:
    HashRehashTlb(const std::string &name, stats::StatGroup *parent,
                  const HashRehashParams &params);

    using BaseTlb::invalidate;

    TlbLookup lookup(VAddr vaddr, bool is_store) override;
    void fill(const FillInfo &fill) override;
    void invalidate(VAddr vbase, PageSize size, Asid asid) override;
    void invalidateAll() override;
    void invalidateAsid(Asid asid) override;
    void markDirty(VAddr vaddr) override;

    bool supports(PageSize size) const override;
    std::uint64_t numEntries() const override { return params_.entries; }
    unsigned numWays() const override { return params_.assoc; }

    /**
     * Without a predictor the probe order is fixed and every probed
     * VPN is constant across a 4KB page, so the probe sequence, the
     * outcome, and the (no-op) MRU rotate all repeat. Predictor
     * lookups train on every hit — never replayable.
     */
    bool
    replayable(const TlbLookup &result, VAddr vaddr) const override
    {
        (void)result;
        (void)vaddr;
        return !predictor_;
    }

    const SizePredictor *predictor() const { return predictor_.get(); }

  private:
    struct Entry
    {
        PageSize size;
        std::uint64_t vpn; ///< in the entry's own page-size units
        Asid asid;
        pt::Translation xlate;
        bool dirty;
    };

    HashRehashParams params_;
    std::uint64_t numSets_;
    /** Ctor-latched referenceScanEnabled(): full-predicate scans. */
    bool referenceScan_;
    /** Per-set SoA ways in LRU order (front = MRU); each lane is
     *  reserved to assoc + 1 at construction so the hot path never
     *  reallocates. */
    std::vector<TagLaneSet<Entry>> sets_;
    std::unique_ptr<SizePredictor> predictor_;
    /** Reusable probe-order scratch (no per-lookup heap allocation). */
    std::vector<PageSize> probeOrder_;

    std::uint64_t
    setOf(VAddr vaddr, PageSize size) const
    {
        return vpnOf(vaddr, size) % numSets_;
    }

    /** Tag lane packing: collisions confirmed against the payload. */
    static std::uint64_t
    tagOf(std::uint64_t vpn, PageSize size, Asid asid)
    {
        return (vpn << 20) |
               (std::uint64_t(static_cast<unsigned>(size)) << 16) |
               asid;
    }

    /** First way matching (size, vpn, asid) in @p set, or npos. */
    std::size_t find(TagLaneSet<Entry> &set, std::uint64_t vpn,
                     PageSize size) const;

    /** Probe one set for one assumed size; returns the entry or null. */
    Entry *probe(VAddr vaddr, PageSize size);
};

} // namespace mixtlb::tlb

#endif // MIXTLB_TLB_HASH_REHASH_HH
