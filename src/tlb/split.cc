#include "split.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mixtlb::tlb
{

SplitTlb::SplitTlb(const std::string &name, stats::StatGroup *parent)
    : BaseTlb(name, parent)
{
}

BaseTlb &
SplitTlb::addComponent(std::unique_ptr<BaseTlb> component)
{
    components_.push_back(std::move(component));
    components_.back()->setAsid(asid_);
    lastSub_.resize(components_.size());
    return *components_.back();
}

// mixcheck: hot
TlbLookup
SplitTlb::lookup(VAddr vaddr, bool is_store)
{
    // All components are probed in parallel; at most one can hit (a
    // page is cached only in the component owning its size).
    TlbLookup result;
    result.probes = 0;
    result.waysRead = 0;
    for (std::size_t c = 0; c < components_.size(); ++c) {
        TlbLookup sub = components_[c]->lookup(vaddr, is_store);
        lastSub_[c] = sub;
        result.probes = std::max(result.probes, sub.probes);
        result.waysRead += sub.waysRead;
        if (sub.hit) {
            result.hit = true;
            result.xlate = sub.xlate;
            result.entryDirty = sub.entryDirty;
            result.bundle = sub.bundle;
        }
    }
    if (result.probes == 0)
        result.probes = 1;
    recordLookup(result);
    return result;
}

// mixcheck: hot
void
SplitTlb::fill(const FillInfo &fill)
{
    for (auto &component : components_) {
        if (component->supports(fill.leaf.size)) {
            component->fill(fill);
            ++fills_;
            return;
        }
    }
    panic("no split component supports %s pages",
          pageSizeName(fill.leaf.size));
}

void
SplitTlb::invalidate(VAddr vbase, PageSize size, Asid asid)
{
    ++invalidations_;
    for (auto &component : components_)
        component->invalidate(vbase, size, asid);
}

void
SplitTlb::invalidateAll()
{
    ++invalidations_;
    for (auto &component : components_)
        component->invalidateAll();
}

void
SplitTlb::invalidateAsid(Asid asid)
{
    ++invalidations_;
    for (auto &component : components_)
        component->invalidateAsid(asid);
}

void
SplitTlb::setAsid(Asid asid)
{
    BaseTlb::setAsid(asid);
    for (auto &component : components_)
        component->setAsid(asid);
}

void
SplitTlb::markDirty(VAddr vaddr)
{
    for (auto &component : components_)
        component->markDirty(vaddr);
}

bool
SplitTlb::replayable(const TlbLookup &result, VAddr vaddr) const
{
    (void)result;
    for (std::size_t c = 0; c < components_.size(); ++c)
        if (!components_[c]->replayable(lastSub_[c], vaddr))
            return false;
    return true;
}

void
SplitTlb::replayLookup(const TlbLookup &result, std::uint64_t n)
{
    for (std::size_t c = 0; c < components_.size(); ++c)
        components_[c]->replayLookup(lastSub_[c], n);
    BaseTlb::replayLookup(result, n);
}

bool
SplitTlb::supports(PageSize size) const
{
    return std::any_of(components_.begin(), components_.end(),
                       [&](const auto &c) { return c->supports(size); });
}

std::uint64_t
SplitTlb::numEntries() const
{
    std::uint64_t total = 0;
    for (const auto &component : components_)
        total += component->numEntries();
    return total;
}

unsigned
SplitTlb::numWays() const
{
    unsigned total = 0;
    for (const auto &component : components_)
        total += component->numWays();
    return total;
}

} // namespace mixtlb::tlb
