#include "gpu_system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/simd.hh"

namespace mixtlb::gpu
{

GpuSystem::GpuSystem(const GpuParams &params, stats::StatGroup *parent,
                     const L1TlbFactory &l1_factory,
                     std::shared_ptr<tlb::BaseTlb> l2,
                     tlb::WalkSource &source,
                     cache::CacheHierarchy &caches)
    : params_(params), stats_("gpu", parent),
      totalRefs_(stats_.addCounter("refs", "references issued")),
      translationCycles_(stats_.addCounter("translation_cycles",
          "translation cycles across all cores"))
{
    fatal_if(params.numCores == 0, "GPU with zero shader cores");
    for (unsigned core = 0; core < params.numCores; core++) {
        cores_.push_back(std::make_unique<tlb::TlbHierarchy>(
            "core" + std::to_string(core), &stats_,
            l1_factory(core, &stats_), l2, source, caches,
            params.tlbLatency));
    }
}

Cycles
GpuSystem::run(
    std::vector<std::unique_ptr<workload::TraceGenerator>> &per_core,
    std::uint64_t total_refs)
{
    fatal_if(per_core.size() != cores_.size(),
             "one generator per shader core required");
    Cycles cycles = 0;
    std::uint64_t issued = 0;
    // One warp's worth of references, generated in a batch per
    // scheduling turn (the buffer is reused across all turns).
    std::vector<MemRef> warp(params_.warpRefs);
    while (issued < total_refs) {
        for (unsigned core = 0; core < cores_.size() &&
                                issued < total_refs; core++) {
            const auto turn = static_cast<std::size_t>(
                std::min<std::uint64_t>(params_.warpRefs,
                                        total_refs - issued));
            simd::prefetchWrite(warp.data()); // next trace chunk
            simd::prefetchWrite(warp.data() + 4);
            per_core[core]->nextBatch(warp.data(), turn);
            auto br = cores_[core]->translateBatch(
                {warp.data(), turn}, false);
            fatal_if(!br.ok, "GPU access failed (host OOM?)");
            cycles += br.cycles;
            issued += turn;
        }
    }
    totalRefs_ += issued;
    translationCycles_ += cycles;
    return cycles;
}

void
GpuSystem::invalidatePage(VAddr vbase, PageSize size)
{
    for (auto &core : cores_)
        core->invalidatePage(vbase, size);
}

} // namespace mixtlb::gpu
