#include "gpu_system.hh"

#include "common/logging.hh"

namespace mixtlb::gpu
{

GpuSystem::GpuSystem(const GpuParams &params, stats::StatGroup *parent,
                     const L1TlbFactory &l1_factory,
                     std::shared_ptr<tlb::BaseTlb> l2,
                     tlb::WalkSource &source,
                     cache::CacheHierarchy &caches)
    : params_(params), stats_("gpu", parent),
      totalRefs_(stats_.addScalar("refs", "references issued")),
      translationCycles_(stats_.addScalar("translation_cycles",
          "translation cycles across all cores"))
{
    fatal_if(params.numCores == 0, "GPU with zero shader cores");
    for (unsigned core = 0; core < params.numCores; core++) {
        cores_.push_back(std::make_unique<tlb::TlbHierarchy>(
            "core" + std::to_string(core), &stats_,
            l1_factory(core, &stats_), l2, source, caches,
            params.tlbLatency));
    }
}

Cycles
GpuSystem::run(
    std::vector<std::unique_ptr<workload::TraceGenerator>> &per_core,
    std::uint64_t total_refs)
{
    fatal_if(per_core.size() != cores_.size(),
             "one generator per shader core required");
    Cycles cycles = 0;
    std::uint64_t issued = 0;
    while (issued < total_refs) {
        for (unsigned core = 0; core < cores_.size() &&
                                issued < total_refs; core++) {
            for (unsigned i = 0; i < params_.warpRefs &&
                                 issued < total_refs; i++) {
                MemRef ref = per_core[core]->next();
                auto result = cores_[core]->access(
                    ref.vaddr, ref.type == AccessType::Write);
                fatal_if(!result.ok, "GPU access failed (host OOM?)");
                cycles += result.cycles;
                issued++;
            }
        }
    }
    totalRefs_ += static_cast<double>(issued);
    translationCycles_ += static_cast<double>(cycles);
    return cycles;
}

void
GpuSystem::invalidatePage(VAddr vbase, PageSize size)
{
    for (auto &core : cores_)
        core->invalidatePage(vbase, size);
}

} // namespace mixtlb::gpu
