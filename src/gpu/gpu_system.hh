/**
 * @file
 * The CPU-GPU shared-virtual-memory substrate of Sec. 6.3: a GPU with
 * N shader cores, a per-core L1 TLB, a shared L2 TLB, and a shared
 * page-table walker — the gem5-gpu-style organisation the paper uses.
 * Warps from all cores interleave, producing the bursty, high-MLP TLB
 * traffic that makes GPU TLBs performance-critical (Sec. 2).
 */

#ifndef MIXTLB_GPU_GPU_SYSTEM_HH
#define MIXTLB_GPU_GPU_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "tlb/hierarchy.hh"
#include "workload/generator.hh"

namespace mixtlb::gpu
{

struct GpuParams
{
    unsigned numCores = 16;
    /** References each core issues per scheduling turn (a warp). */
    unsigned warpRefs = 32;
    tlb::TlbHierarchyParams tlbLatency{};
};

/** Builds one core's L1 TLB (so benches can vary the design). */
using L1TlbFactory = std::function<std::unique_ptr<tlb::BaseTlb>(
    unsigned core, stats::StatGroup *parent)>;

class GpuSystem
{
  public:
    /**
     * @param l2 shared by all shader cores.
     * @param source the shared walk source (native or nested).
     */
    GpuSystem(const GpuParams &params, stats::StatGroup *parent,
              const L1TlbFactory &l1_factory,
              std::shared_ptr<tlb::BaseTlb> l2,
              tlb::WalkSource &source, cache::CacheHierarchy &caches);

    /**
     * Run per-core generators round-robin, @p warpRefs references per
     * core per turn, for @p total_refs references overall.
     * @return total translation cycles across all cores.
     */
    Cycles run(std::vector<std::unique_ptr<workload::TraceGenerator>>
                   &per_core,
               std::uint64_t total_refs);

    tlb::TlbHierarchy &core(unsigned idx) { return *cores_[idx]; }
    unsigned numCores() const { return params_.numCores; }

    /** Invalidate a page in every core (GPU-wide shootdown). */
    void invalidatePage(VAddr vbase, PageSize size);

    stats::StatGroup &statGroup() { return stats_; }

  private:
    GpuParams params_;
    stats::StatGroup stats_;
    std::vector<std::unique_ptr<tlb::TlbHierarchy>> cores_;
    stats::Counter &totalRefs_;
    stats::Counter &translationCycles_;
};

} // namespace mixtlb::gpu

#endif // MIXTLB_GPU_GPU_SYSTEM_HH
