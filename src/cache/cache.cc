#include "cache.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/simd.hh"

namespace mixtlb::cache
{

Cache::Cache(const CacheParams &params, stats::StatGroup *parent)
    : params_(params),
      stats_(params.name, parent),
      hits_(stats_.addScalar("hits", "cache hits")),
      misses_(stats_.addScalar("misses", "cache misses"))
{
    fatal_if(!isPowerOf2(params.lineBytes), "line size not a power of 2");
    fatal_if(params.assoc == 0, "zero associativity");
    std::uint64_t lines = params.sizeBytes / params.lineBytes;
    fatal_if(lines == 0 || lines % params.assoc != 0,
             "cache geometry does not divide evenly");
    numSets_ = lines / params.assoc;
    setsPow2_ = isPowerOf2(numSets_);
    setMask_ = setsPow2_ ? numSets_ - 1 : 0;
    lineShift_ = floorLog2(params.lineBytes);
    tags_.resize(numSets_ * params.assoc);
    fill_.assign(numSets_, 0);
    stats_.addFormula("miss_rate", "miss fraction", [this] {
        double total = hits_.value() + misses_.value();
        return total > 0 ? misses_.value() / total : 0.0;
    });
}

// mixcheck: hot
bool
Cache::access(PAddr paddr, bool write)
{
    (void)write; // functional model: reads and writes behave alike
    const std::uint64_t tag = tagOf(paddr);
    const std::uint64_t set = setOf(tag);
    std::uint64_t *w = tags_.data() + set * params_.assoc;
    const std::uint32_t n = fill_[set];
    // Installed tags within a set are unique, so the lowest matching
    // index simd::firstEqual returns is *the* matching way.
    const std::size_t i = simd::firstEqual(w, n, tag);
    if (i != simd::npos) {
        for (std::size_t j = i; j > 0; --j) // move to MRU
            w[j] = w[j - 1];
        w[0] = tag;
        ++hits_;
        return true;
    }
    ++misses_;
    // Install at MRU, shifting the window right (the LRU tag in a full
    // set falls off the end — identical to push_front + pop_back).
    const std::uint32_t grown = n < params_.assoc ? n + 1 : n;
    for (std::uint32_t j = grown - 1; j > 0; --j)
        w[j] = w[j - 1];
    w[0] = tag;
    fill_[set] = grown;
    return false;
}

bool
Cache::contains(PAddr paddr) const
{
    const std::uint64_t tag = tagOf(paddr);
    const std::uint64_t set = setOf(tag);
    const std::uint64_t *w = tags_.data() + set * params_.assoc;
    return simd::firstEqual(w, fill_[set], tag) != simd::npos;
}

void
Cache::flush()
{
    std::fill(fill_.begin(), fill_.end(), 0u);
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               stats::StatGroup *parent)
    : params_(params),
      stats_("caches", parent),
      l1_(params.l1, &stats_),
      l2_(params.l2, &stats_),
      llc_(params.llc, &stats_),
      latency_{params.l1.hitLatency, params.l2.hitLatency,
               params.llc.hitLatency, params.memLatency},
      memAccesses_(stats_.addScalar("mem_accesses",
                                    "accesses that reached memory"))
{
}

// mixcheck: hot
HitLevel
CacheHierarchy::accessLevel(PAddr paddr, bool write)
{
    // Start the outer levels' tag-window loads before the L1 probe so
    // a full miss chain pays one host memory round-trip, not three.
    l2_.prefetchSet(paddr);
    llc_.prefetchSet(paddr);
    if (l1_.access(paddr, write))
        return HitLevel::L1;
    if (l2_.access(paddr, write))
        return HitLevel::L2;
    if (llc_.access(paddr, write))
        return HitLevel::LLC;
    ++memAccesses_;
    return HitLevel::Memory;
}

// mixcheck: hot
Cycles
CacheHierarchy::access(PAddr paddr, bool write)
{
    return levelLatency(accessLevel(paddr, write));
}

void
CacheHierarchy::flush()
{
    l1_.flush();
    l2_.flush();
    llc_.flush();
}

} // namespace mixtlb::cache
