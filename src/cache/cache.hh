/**
 * @file
 * A functional set-associative cache with LRU replacement.
 *
 * Used to cost page-table-walk memory references (and, optionally, data
 * references) the way the paper's functional simulator does (Sec. 6.2).
 * Only tags are modelled; data never moves.
 */

#ifndef MIXTLB_CACHE_CACHE_HH
#define MIXTLB_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mixtlb::cache
{

struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = CacheLineBytes;
    Cycles hitLatency = 4;
};

class Cache
{
  public:
    Cache(const CacheParams &params, stats::StatGroup *parent);

    /**
     * Look up @p paddr; on a miss the line is installed (evicting LRU).
     * @retval true on hit.
     */
    bool access(PAddr paddr, bool write);

    /** Probe without updating state or statistics. */
    bool contains(PAddr paddr) const;

    /**
     * Hint the host to pull this address's set window into its own
     * cache. Issued for the outer levels before the L1 probe starts,
     * it overlaps the three otherwise-serial tag-window loads of an
     * L1→L2→LLC miss chain. No modeled effect.
     */
    void
    prefetchSet(PAddr paddr) const
    {
        const std::uint64_t set = setOf(tagOf(paddr));
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(tags_.data() + set * params_.assoc, 1, 3);
#endif
    }

    /** Drop every cached line. */
    void flush();

    Cycles hitLatency() const { return params_.hitLatency; }
    const CacheParams &params() const { return params_; }

    std::uint64_t numSets() const { return numSets_; }

  private:
    CacheParams params_;
    std::uint64_t numSets_;
    /** numSets_ - 1 when numSets_ is a power of two, else 0. */
    std::uint64_t setMask_;
    unsigned lineShift_;
    bool setsPow2_;

    /**
     * Flat tag store: set s owns the window
     * tags_[s * assoc, s * assoc + fill_[s]) in LRU order (front =
     * MRU). Same ordering semantics as a per-set list, laid out
     * contiguously so the probe scan and MRU shift stay within one or
     * two cache lines (assoc <= 16) instead of chasing list nodes —
     * and within one region, so random streams touch half the host
     * lines a tags-plus-recency-stamps split would.
     */
    std::vector<std::uint64_t> tags_;
    /** Live entries per set. */
    std::vector<std::uint32_t> fill_;

    stats::StatGroup stats_;
    stats::Scalar &hits_;
    stats::Scalar &misses_;

    std::uint64_t
    tagOf(PAddr paddr) const
    {
        // lineShift_ = floorLog2(lineBytes) <= 63; mask keeps the
        // shift defined even if a bad config slips through.
        return paddr >> (lineShift_ & 63);
    }
    std::uint64_t
    setOf(std::uint64_t tag) const
    {
        // Every standard geometry has a power-of-two set count; the
        // modulo fall-back keeps odd configs (e.g. 24 MiB LLCs) exact.
        return setsPow2_ ? (tag & setMask_) : (tag % numSets_);
    }
};

/** Which level of the hierarchy serviced an access. */
enum class HitLevel : std::uint8_t { L1 = 0, L2, LLC, Memory };

struct HierarchyParams
{
    CacheParams l1{"l1d", 32 * 1024, 8, CacheLineBytes, 4};
    CacheParams l2{"l2", 256 * 1024, 8, CacheLineBytes, 12};
    CacheParams llc{"llc", 24ULL * 1024 * 1024, 16, CacheLineBytes, 40};
    Cycles memLatency = 200;
};

/**
 * A three-level inclusive hierarchy. An access probes L1→L2→LLC and on
 * a full miss installs the line at every level.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const HierarchyParams &params, stats::StatGroup *parent);

    /** Access @p paddr, returning the total latency. */
    Cycles access(PAddr paddr, bool write);

    /** Which level would service @p paddr, also performing the access. */
    HitLevel accessLevel(PAddr paddr, bool write);

    /** Latency of a hit at @p level. */
    Cycles
    levelLatency(HitLevel level) const
    {
        return latency_[static_cast<unsigned>(level) & 3];
    }

    void flush();

    stats::StatGroup &statGroup() { return stats_; }

  private:
    HierarchyParams params_;
    stats::StatGroup stats_;
    Cache l1_;
    Cache l2_;
    Cache llc_;
    /** Per-level hit latency indexed by HitLevel, so the hot path maps
     *  level to cycles with one load instead of a switch. */
    Cycles latency_[4];
    stats::Scalar &memAccesses_;
};

} // namespace mixtlb::cache

#endif // MIXTLB_CACHE_CACHE_HH
