#include "energy_model.hh"

#include <cmath>

namespace mixtlb::perf
{

double
EnergyModel::perRead(std::uint64_t entries) const
{
    // CACTI first-order: access energy ~ sqrt(capacity), normalised so
    // a 64-entry structure reads at tlbReadUnit.
    if (entries == 0)
        return 0.0;
    return params_.tlbReadUnit
           * std::sqrt(static_cast<double>(entries) / 64.0);
}

double
EnergyModel::perWrite(std::uint64_t entries) const
{
    return perRead(entries) * params_.writeFactor;
}

EnergyBreakdown
EnergyModel::compute(const EnergyInputs &inputs) const
{
    EnergyBreakdown out;

    double l1_read = perRead(inputs.l1Entries);
    double l2_read = perRead(inputs.l2Entries);
    out.lookup = inputs.l1WaysRead * l1_read
                 + inputs.l2WaysRead * l2_read;
    if (inputs.skewTimestamps) {
        out.lookup += (inputs.l1WaysRead * l1_read
                       + inputs.l2WaysRead * l2_read)
                      * params_.timestampFactor;
    }

    out.fill = (inputs.l1Fills * perWrite(inputs.l1Entries)
                + inputs.l2Fills * perWrite(inputs.l2Entries))
               * inputs.fillBurstFactor;

    out.walk = inputs.walkAccesses * params_.cacheAccess
               + inputs.walkDramAccesses * params_.dramAccess;

    out.other = inputs.dirtyOps * params_.cacheAccess
                + inputs.invalidations * perWrite(inputs.l1Entries)
                + inputs.predictorLookups * params_.predictorRead;

    out.leakage = inputs.totalCycles
                  * static_cast<double>(inputs.l1Entries
                                        + inputs.l2Entries)
                  * params_.leakPerCyclePerEntry;
    return out;
}

} // namespace mixtlb::perf
