#include "perf_model.hh"

namespace mixtlb::perf
{

RunMetrics
computeMetrics(std::uint64_t refs, double translation_cycles,
               double data_cycles, const PerfParams &params)
{
    RunMetrics metrics;
    metrics.refs = refs;
    metrics.translationCycles = translation_cycles;
    metrics.baseCycles = static_cast<double>(refs)
                             * params.baseCyclesPerRef
                         + data_cycles;
    double free_cycles = static_cast<double>(refs)
                         * static_cast<double>(params.freeL1HitLatency);
    metrics.overheadCycles = translation_cycles > free_cycles
                                 ? translation_cycles - free_cycles
                                 : 0.0;
    metrics.totalCycles = metrics.baseCycles + metrics.overheadCycles;
    return metrics;
}

double
improvementPercent(const RunMetrics &baseline, const RunMetrics &faster)
{
    if (faster.totalCycles <= 0)
        return 0.0;
    return 100.0 * (baseline.totalCycles / faster.totalCycles - 1.0);
}

} // namespace mixtlb::perf
