/**
 * @file
 * The analytical performance model of Sec. 6.2: functional-simulation
 * hit rates are combined with per-event costs to estimate runtime and
 * the share of it spent on address translation.
 *
 * runtime = refs * base_cpr + translation overhead, where base_cpr is
 * the non-translation work per memory reference and the overhead is
 * every translation cycle beyond the pipelined L1 TLB hit.
 */

#ifndef MIXTLB_PERF_PERF_MODEL_HH
#define MIXTLB_PERF_PERF_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace mixtlb::perf
{

struct PerfParams
{
    /**
     * Core (non-memory) cycles per memory reference. Data-cache time
     * is measured by the functional cache simulation and passed in
     * separately, so this covers only the instruction-execution share.
     */
    double baseCyclesPerRef = 1.0;
    /** The pipelined L1 TLB hit latency that costs nothing extra. */
    Cycles freeL1HitLatency = 1;
};

struct RunMetrics
{
    std::uint64_t refs = 0;
    double translationCycles = 0; ///< total, incl. pipelined L1 hits
    double baseCycles = 0;
    double overheadCycles = 0;    ///< translation beyond free L1 hits
    double totalCycles = 0;

    /** Fraction of runtime devoted to translation (Figures 1, 15R). */
    double
    overheadFraction() const
    {
        return totalCycles > 0 ? overheadCycles / totalCycles : 0.0;
    }
};

/**
 * Build metrics from a run's counts.
 * @param data_cycles measured data-access cycles (cache simulation);
 *        becomes part of the translation-independent base time.
 */
RunMetrics computeMetrics(std::uint64_t refs, double translation_cycles,
                          double data_cycles = 0.0,
                          const PerfParams &params = {});

/**
 * Percent performance improvement of @p faster over @p baseline
 * (Figure 14's metric): 100 * (T_baseline / T_faster - 1).
 */
double improvementPercent(const RunMetrics &baseline,
                          const RunMetrics &faster);

} // namespace mixtlb::perf

#endif // MIXTLB_PERF_PERF_MODEL_HH
