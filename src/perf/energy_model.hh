/**
 * @file
 * A CACTI-flavoured analytic energy model (Sec. 4.5 and Figures 16-17).
 *
 * Absolute joules are not the point — the paper argues *relative*
 * energy between designs of known relative geometry. Per-access energy
 * scales with the square root of structure capacity (wordline/bitline
 * scaling, the standard CACTI first-order result); walks cost cache-
 * and DRAM-level access energies; skew TLBs pay a timestamp overhead
 * on every probe and predictor designs pay a predictor read.
 */

#ifndef MIXTLB_PERF_ENERGY_MODEL_HH
#define MIXTLB_PERF_ENERGY_MODEL_HH

#include <cstdint>

namespace mixtlb::perf
{

struct EnergyParams
{
    /** Energy per way-read of a 64-entry structure (arbitrary units). */
    double tlbReadUnit = 1.0;
    /** Entry writes cost this multiple of a read. */
    double writeFactor = 1.2;
    /** Cache access energy per page-walk reference (avg across levels). */
    double cacheAccess = 4.0;
    /** DRAM access energy (per walk reference that misses the LLC). */
    double dramAccess = 60.0;
    /** Predictor read energy (per lookup of predictor designs). */
    double predictorRead = 0.5;
    /** Extra per-probe energy for skew timestamp maintenance. */
    double timestampFactor = 0.2;
    /** Static leakage per cycle per entry (ties energy to runtime). */
    double leakPerCyclePerEntry = 2e-5;
};

/** Raw event counts harvested from a run's statistics. */
struct EnergyInputs
{
    // Lookup path.
    double l1WaysRead = 0;   ///< entries read over all L1 lookups
    double l2WaysRead = 0;
    std::uint64_t l1Entries = 0;
    std::uint64_t l2Entries = 0;
    // Fill path (mirror copies included by the TLB's own accounting).
    double l1Fills = 0;
    double l2Fills = 0;
    /**
     * Energy discount on entry writes for designs that burst-write the
     * same content into many sets (MIX mirroring): row decode and data
     * drive amortise across the burst. 1.0 for conventional fills.
     */
    double fillBurstFactor = 1.0;
    // Walks.
    double walkAccesses = 0;    ///< cacheline refs issued by walks
    double walkDramAccesses = 0;///< of those, how many reached DRAM
    // Misc.
    double dirtyOps = 0;
    double invalidations = 0;
    double predictorLookups = 0; ///< 0 for designs without predictors
    bool skewTimestamps = false;
    double totalCycles = 0;      ///< for leakage
};

/** Figure 17's categories. */
struct EnergyBreakdown
{
    double lookup = 0;
    double walk = 0;
    double fill = 0;
    double other = 0; ///< dirty micro-ops, invalidations, predictor
    double leakage = 0;

    double
    total() const
    {
        return lookup + walk + fill + other + leakage;
    }
};

class EnergyModel
{
  public:
    explicit EnergyModel(EnergyParams params = {}) : params_(params) {}

    /** Per way-read energy of a structure with @p entries entries. */
    double perRead(std::uint64_t entries) const;

    /** Per entry-write energy. */
    double perWrite(std::uint64_t entries) const;

    /** Full dynamic + leakage breakdown for one run. */
    EnergyBreakdown compute(const EnergyInputs &inputs) const;

  private:
    EnergyParams params_;
};

} // namespace mixtlb::perf

#endif // MIXTLB_PERF_ENERGY_MODEL_HH
