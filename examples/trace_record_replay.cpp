/**
 * @file
 * The paper's trace-driven methodology (Sec. 6.2) end to end: record a
 * workload's reference stream once (the Pin step), then replay the
 * *identical* stream against several TLB designs so every difference
 * in the results comes from the hardware, not workload noise.
 *
 * Run: ./trace_record_replay [--refs 100000] [--workload graph500]
 *                            [--trace /tmp/mixtlb.trace]
 */

#include <cstdio>

#include "sim/cli.hh"
#include "sim/machine.hh"
#include "workload/trace_file.hh"

using namespace mixtlb;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);
    const std::string workload = args.getString("workload", "graph500");
    const std::string path =
        args.getString("trace", "/tmp/mixtlb_example.trace");
    const std::uint64_t footprint = args.getU64("footprint-mb", 1024)
                                    << 20;
    const VAddr base = 1ULL << 32; // matches Process's first arena

    // Step 1: record (Pin would do this on real hardware).
    auto gen = workload::makeGenerator(workload, base, footprint, 21);
    workload::recordTrace(*gen, refs, path);
    std::printf("recorded %llu %s references to %s\n\n",
                (unsigned long long)refs, workload.c_str(),
                path.c_str());

    // Step 2: replay the same trace against each design.
    Table table({"design", "l1 miss%", "walks/kref",
                 "translation cycles"});
    for (TlbDesign design :
         {TlbDesign::Split, TlbDesign::Mix, TlbDesign::Ideal}) {
        MachineParams params;
        params.name = designName(design);
        params.memBytes = 4ULL << 30;
        params.design = design;
        params.proc.policy = os::PagePolicy::Thp;
        Machine machine(params);
        VAddr arena = machine.mapArena(footprint);
        if (arena != base) {
            std::fprintf(stderr, "unexpected arena base\n");
            return 1;
        }
        machine.warmup(arena, footprint);
        machine.startMeasurement();

        workload::TraceFileGen replay(path);
        machine.run(replay, refs);

        auto &hier = machine.tlbs();
        table.addRow(
            {designName(design),
             Table::fmt(100 * (1 - hier.l1HitCount()
                                       / hier.accessCount())),
             Table::fmt(1000 * hier.walkCount() / hier.accessCount()),
             Table::fmt(hier.translationCycleCount(), 0)});
    }
    table.print();
    std::printf("\nidentical input stream, hardware-only differences — "
                "the property the paper's\ntrace-driven evaluation "
                "depends on.\n");
    std::remove(path.c_str());
    return 0;
}
