/**
 * @file
 * Quickstart: the paper's running example (Figure 2-4) on the public
 * API. Builds a tiny 2-set MIX TLB over a real x86-64 page table,
 * walks superpage B, watches contiguous superpage C coalesce into the
 * same (mirrored) entry, and translates addresses through both.
 *
 * Run: ./quickstart
 */

#include <cstdio>

#include "mem/phys_mem.hh"
#include "pt/page_table.hh"
#include "pt/walker.hh"
#include "tlb/mix.hh"

using namespace mixtlb;

int
main()
{
    // A 8GB simulated machine with an empty 4-level page table.
    mem::PhysMem mem(8ULL << 30);
    pt::PageTable table(mem);
    stats::StatGroup stats("quickstart");
    pt::Walker walker(table, &stats);

    // Figure 2's address space: 4KB page A, then 2MB superpages B and
    // C, contiguous in BOTH virtual and physical address.
    const VAddr A = 0x00000000, B = 0x00400000, C = 0x00600000;
    table.map(A, 0x00400000, PageSize::Size4K);
    table.map(B, 0x00000000, PageSize::Size2M);
    table.map(C, 0x00200000, PageSize::Size2M);
    std::printf("mapped A (4KB), B and C (contiguous 2MB superpages)\n");

    // A 2-set, 2-way MIX TLB — small enough to watch every mechanism.
    tlb::MixTlbParams params;
    params.entries = 4;
    params.assoc = 2;
    params.mode = tlb::CoalesceMode::Bitmap; // L1-style entries
    tlb::MixTlb mix("mix", &stats, params);

    // Touch C once so its accessed bit allows coalescing (Sec. 4.4),
    // then miss on B: the walker returns the whole PTE cache line and
    // the fill coalesces B+C and mirrors the bundle into both sets.
    walker.walk(C, false);
    auto walk = walker.walk(B, false);
    tlb::FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.vaddr = B;
    fill.walk = &walk;
    mix.fill(fill);
    std::printf("filled B; the walk's cache line carried C too\n\n");

    // Both superpages (and every 4KB region inside them) now hit.
    for (VAddr va : {B + 0x1234, B + 0x3000 + 0x234, C + 0x4321}) {
        auto result = mix.lookup(va, false);
        std::printf("lookup 0x%08llx -> %s, paddr 0x%08llx (%s page)\n",
                    (unsigned long long)va, result.hit ? "HIT" : "MISS",
                    (unsigned long long)result.xlate.translate(va),
                    pageSizeName(result.xlate.size));
    }

    // Per-superpage invalidation: B goes, C survives (bitmap entries).
    mix.invalidate(B, PageSize::Size2M);
    std::printf("\nafter invalidating B: B %s, C %s\n",
                mix.lookup(B, false).hit ? "hits" : "misses",
                mix.lookup(C, false).hit ? "hits" : "misses");

    std::printf("\nstatistics:\n");
    std::printf("  mirror writes: %.0f (one per set)\n",
                mix.mirrorWrites());
    std::printf("  hits: %.0f  misses: %.0f\n", mix.hits(),
                mix.misses());
    return 0;
}
