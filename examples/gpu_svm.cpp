/**
 * @file
 * CPU-GPU shared virtual memory scenario (Sec. 2 and 6.3): a GPU with
 * per-shader-core L1 TLBs and a shared L2 runs Rodinia-style kernels
 * over a THS-paged address space, comparing split and MIX TLB designs
 * under varying memory fragmentation.
 *
 * Run: ./gpu_svm [--cores 16] [--refs 200000] [--memhog 0.2]
 *                [--kernel bfs]
 */

#include <cstdio>

#include "gpu/gpu_system.hh"
#include "os/memhog.hh"
#include "sim/cli.hh"
#include "sim/configs.hh"
#include "sim/machine.hh"
#include "tlb/walk_source.hh"

using namespace mixtlb;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const unsigned cores = static_cast<unsigned>(args.getU64("cores", 16));
    const std::uint64_t refs = args.getU64("refs", 200000);
    const double memhog_frac = args.getDouble("memhog", 0.2);
    const std::string kernel = args.getString("kernel", "bfs");
    const std::uint64_t footprint = args.getU64("footprint-mb", 256)
                                    << 20;

    std::printf("GPU: %u shader cores, kernel=%s, footprint=%lluMB, "
                "memhog=%.0f%%\n\n",
                cores, kernel.c_str(),
                (unsigned long long)(footprint >> 20),
                memhog_frac * 100);

    Table table({"design", "L1 miss%", "L2 miss%", "cycles/ref",
                 "improvement vs split%"});
    double split_cycles = 0;

    for (TlbDesign design : {TlbDesign::Split, TlbDesign::Mix}) {
        stats::StatGroup root(designName(design));
        mem::PhysMem mem(2ULL << 30);
        os::MemoryManager mm(mem, &root);
        os::Memhog hog(mm);
        if (memhog_frac > 0)
            hog.fragment(memhog_frac, 5);

        os::ProcessParams proc_params;
        proc_params.policy = os::PagePolicy::Thp;
        os::Process proc(mm, proc_params, &root);
        cache::CacheHierarchy caches(cache::HierarchyParams{}, &root);
        tlb::NativeWalkSource source(
            proc.pageTable(), &root, [&](VAddr va, bool st) {
                return proc.touch(va, st)
                       != os::TouchResult::OutOfMemory;
            });

        gpu::GpuParams gpu_params;
        gpu_params.numCores = cores;
        auto l2 = makeGpuL2(design, &root, &proc.pageTable());
        gpu::GpuSystem gpu_system(
            gpu_params, &root,
            [&](unsigned core, stats::StatGroup *parent) {
                return makeGpuCoreL1(design, core, parent,
                                     &proc.pageTable());
            },
            l2, source, caches);

        // Input upload: ascending first-touch through rotating cores.
        VAddr base = proc.mmap(footprint);
        for (VAddr va = base; va < base + footprint; va += PageBytes4K)
            gpu_system.core((va >> PageShift4K) % cores).access(va, true);
        root.resetStats();

        std::vector<std::unique_ptr<workload::TraceGenerator>> gens;
        for (unsigned core = 0; core < cores; core++) {
            gens.push_back(workload::makeGenerator(
                kernel, base, footprint, 500 + core));
        }
        Cycles cycles = gpu_system.run(gens, refs);

        double l1_hits = 0, l2_hits = 0, accesses = 0;
        for (unsigned core = 0; core < cores; core++) {
            l1_hits += gpu_system.core(core).l1HitCount();
            l2_hits += gpu_system.core(core).l2HitCount();
            accesses += gpu_system.core(core).accessCount();
        }
        double l1_miss = 100.0 * (1.0 - l1_hits / accesses);
        double l2_miss_pct =
            100.0 * (1.0 - (l1_hits + l2_hits) / accesses);

        double improvement = 0;
        if (design == TlbDesign::Split)
            split_cycles = static_cast<double>(cycles);
        else
            improvement =
                100.0 * (split_cycles / static_cast<double>(cycles)
                         - 1.0);
        table.addRow({designName(design), Table::fmt(l1_miss),
                      Table::fmt(l2_miss_pct),
                      Table::fmt(static_cast<double>(cycles) / refs),
                      Table::fmt(improvement)});
    }
    table.print();

    std::printf("\nGPU TLBs service hundreds of concurrent warps; the "
                "shared-L2 reach MIX\nrecovers is what drives the "
                "paper's large GPU gains (Figure 14).\n");
    return 0;
}
