/**
 * @file
 * Big-memory native-CPU scenario (the paper's Sec. 2 motivation):
 * graph processing and a key-value store on one machine, run over
 * every TLB design under transparent hugepage support, with memhog
 * fragmenting memory in the background.
 *
 * Run: ./bigmem_native [--footprint-mb 512] [--refs 200000]
 *                      [--memhog 0.4] [--workload graph500]
 */

#include <cstdio>

#include "sim/cli.hh"
#include "sim/machine.hh"

using namespace mixtlb;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    // Defaults put real pressure on a 544-entry L2 TLB (the paper's
    // regime: footprints far beyond TLB reach): 1.5GB = 768 potential
    // 2MB superpages.
    const std::uint64_t footprint =
        args.getU64("footprint-mb", 1536) << 20;
    const std::uint64_t refs = args.getU64("refs", 200000);
    const double memhog = args.getDouble("memhog", 0.3);
    const std::string workload = args.getString("workload", "graph500");

    std::printf("workload=%s footprint=%lluMB refs=%llu memhog=%.0f%%\n\n",
                workload.c_str(), (unsigned long long)(footprint >> 20),
                (unsigned long long)refs, memhog * 100);

    Table table({"design", "l1 miss%", "walks/kref", "xlat overhead%",
                 "improvement vs split%"});

    double split_cycles = 0;
    for (TlbDesign design :
         {TlbDesign::Split, TlbDesign::Mix, TlbDesign::MixColt,
          TlbDesign::HashRehashPred, TlbDesign::SkewPred,
          TlbDesign::Colt, TlbDesign::Ideal}) {
        MachineParams params;
        params.name = designName(design);
        params.memBytes = 6ULL << 30;
        params.design = design;
        params.proc.policy = os::PagePolicy::Thp;
        params.memhogFraction = memhog;
        Machine machine(params);

        VAddr base = machine.mapArena(footprint);
        machine.warmup(base, footprint); // program init sweep
        machine.startMeasurement();
        auto gen = workload::makeGenerator(workload, base, footprint, 7);
        machine.run(*gen, refs);

        auto metrics = machine.metrics();
        auto &hier = machine.tlbs();
        double l1_miss = 100.0 * (1.0 - hier.l1HitCount()
                                            / hier.accessCount());
        double walks_per_kref =
            1000.0 * hier.walkCount() / hier.accessCount();
        double improvement = 0;
        if (design == TlbDesign::Split)
            split_cycles = metrics.totalCycles;
        else
            improvement = 100.0 * (split_cycles / metrics.totalCycles
                                   - 1.0);
        table.addRow({designName(design), Table::fmt(l1_miss),
                      Table::fmt(walks_per_kref),
                      Table::fmt(100 * metrics.overheadFraction()),
                      Table::fmt(improvement)});
    }
    table.print();

    std::printf("\nNote: the MIX rows should sit between split and "
                "ideal, approaching ideal\nwhen superpages dominate "
                "(low memhog) — the paper's Figure 14/15 behaviour.\n");
    return 0;
}
