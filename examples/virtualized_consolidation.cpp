/**
 * @file
 * Virtualized-consolidation scenario (Sec. 6.1's KVM setup): several
 * VMs share one host, each running memhog inside plus a big-memory
 * workload; translations are gVA -> sPA through 2-D nested walks.
 * Compares split and MIX TLBs and reports end-to-end superpage
 * contiguity, the quantity virtualized MIX coalescing depends on.
 *
 * Run: ./virtualized_consolidation [--vms 4] [--guest-memhog 0.4]
 *                                  [--refs 100000]
 */

#include <cstdio>

#include "os/scan.hh"
#include "sim/cli.hh"
#include "sim/machine.hh"

using namespace mixtlb;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const unsigned vms = static_cast<unsigned>(args.getU64("vms", 4));
    const double guest_memhog = args.getDouble("guest-memhog", 0.4);
    const std::uint64_t refs = args.getU64("refs", 100000);
    const std::uint64_t footprint = args.getU64("footprint-mb", 768)
                                    << 20;

    std::printf("%u VMs, memhog %.0f%% inside each, %s workload\n\n",
                vms, guest_memhog * 100, "memcached");

    Table table({"design", "walks/kref", "accesses/walk",
                 "xlat overhead%", "improvement vs split%"});
    double split_cycles = 0;

    for (TlbDesign design : {TlbDesign::Split, TlbDesign::Mix}) {
        VirtMachineParams params;
        params.name = designName(design);
        params.hostMemBytes = 4ULL << 30;
        params.numVms = vms;
        params.design = design;
        params.guestProc.policy = os::PagePolicy::Thp;
        params.guestMemhogFraction = guest_memhog;
        VirtMachine machine(params);

        double walks = 0, walk_accesses = 0, accesses = 0;
        for (unsigned vm = 0; vm < vms; vm++) {
            VAddr base = machine.mapArena(vm, footprint);
            machine.warmup(vm, base, footprint);
        }
        machine.startMeasurement();
        for (unsigned vm = 0; vm < vms; vm++) {
            VAddr base = 1ULL << 32; // first arena in each guest
            auto gen = workload::makeGenerator("memcached", base,
                                               footprint, 11 + vm);
            machine.run(vm, *gen, refs);
        }

        auto metrics = machine.metrics();
        // Aggregate hierarchy counters across vCPUs.
        for (unsigned vm = 0; vm < vms; vm++) {
            const auto &scalars = machine.root();
            walks += scalars.value("tlb" + std::to_string(vm)
                                  + ".walks");
            walk_accesses +=
                scalars.value("tlb" + std::to_string(vm)
                             + ".walk_accesses");
            accesses += scalars.value("tlb" + std::to_string(vm)
                                     + ".accesses");
        }

        double improvement = 0;
        if (design == TlbDesign::Split)
            split_cycles = metrics.totalCycles;
        else
            improvement = 100.0 * (split_cycles / metrics.totalCycles
                                   - 1.0);
        table.addRow({designName(design),
                      Table::fmt(1000.0 * walks / accesses),
                      Table::fmt(walks ? walk_accesses / walks : 0.0),
                      Table::fmt(100 * metrics.overheadFraction()),
                      Table::fmt(improvement)});
    }
    table.print();

    // End-to-end contiguity, the enabler for virtualized coalescing.
    VirtMachineParams scan_params;
    scan_params.hostMemBytes = 4ULL << 30;
    scan_params.numVms = vms;
    scan_params.guestProc.policy = os::PagePolicy::Thp;
    scan_params.guestMemhogFraction = guest_memhog;
    VirtMachine scan_machine(scan_params);
    VAddr base = scan_machine.mapArena(0, footprint);
    scan_machine.warmup(0, base, footprint);
    auto runs = scan_machine.nestedContiguityRuns(0, PageSize::Size2M);
    std::printf("\nVM0 end-to-end (gVA+sPA) 2MB contiguity: avg %.1f "
                "superpages over %zu runs\n",
                os::averageContiguity(runs), runs.size());
    std::printf("nested walks need ~24 accesses at 4KB/4KB; superpages "
                "shorten them —\nthe 'accesses/walk' column shows the "
                "achieved depth.\n");
    return 0;
}
