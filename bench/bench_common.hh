/**
 * @file
 * Shared plumbing for the per-figure benchmark binaries: the scaled
 * cache hierarchy (caches shrink with the footprint scaling so
 * page-table walks keep their real relative cost — see DESIGN.md §5),
 * canonical run helpers, and result records.
 *
 * Every bench prints the same rows/series the corresponding paper
 * figure reports; absolute numbers differ from the paper (simulated
 * substrate, scaled footprints) but the shapes are the deliverable.
 */

#ifndef MIXTLB_BENCH_COMMON_HH
#define MIXTLB_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "common/json.hh"
#include "os/scan.hh"
#include "perf/energy_model.hh"
#include "sim/cli.hh"
#include "sim/machine.hh"
#include "sim/multi_machine.hh"
#include "sim/sweep.hh"

namespace mixtlb::bench
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

/**
 * Cache hierarchy scaled to our default footprints: the paper's 80GB
 * footprints put page tables (160MB+) far beyond a 24MB LLC; our
 * multi-GB footprints need a 2MB LLC for walks to cost the same
 * *relative* amount.
 */
inline cache::HierarchyParams
scaledCaches()
{
    cache::HierarchyParams params;
    params.llc = {"llc", 2ULL * MiB, 16, CacheLineBytes, 40};
    return params;
}

/** Everything a figure needs from one native-CPU run. */
struct RunResult
{
    perf::RunMetrics metrics{};
    perf::EnergyInputs energy{};
    double l1MissRate = 0;
    double walksPerKref = 0;
    double accessesPerWalk = 0;
    /**
     * THS superpage requests that fell back to 4KB pages, summed over
     * the whole run including warmup (warmup is where allocation
     * happens, and the stat reset at startMeasurement() would
     * otherwise discard it). The fault soak asserts this goes nonzero
     * under injected buddy failure.
     */
    double thpFallbacks = 0;
    /**
     * Memory-pressure lifecycle activity, summed over the whole run
     * including warmup (like thpFallbacks): superpage demotions, frames
     * freed by reclaim, demoted regions re-promoted, and the OOM-path
     * observability counters. The pressure soak asserts these go
     * nonzero under injected demote storms and pressure bursts.
     */
    double demotions = 0;
    double reclaims = 0;
    double repromotions = 0;
    double oomRetries = 0;
    double demoteRescues = 0;
    double compactionRescues = 0;
    os::PageSizeDistribution distribution{};
    /**
     * Per-process L1 TLB miss rates, context switches, and policy
     * flushes — populated by multiprogrammed runs only (the vector
     * stays empty elsewhere, and the JSON "multi" block is omitted).
     */
    std::vector<double> procL1MissRates;
    double contextSwitches = 0;
    double fullFlushes = 0;
};

/**
 * Accumulate the per-process lifecycle counters of stat group
 * @p prefix into @p result. Called once before startMeasurement() (the
 * reset would discard warmup-phase demotions) and once after the run.
 */
inline void
addLifecycleStats(stats::StatGroup &root, const std::string &prefix,
                  RunResult &result)
{
    result.demotions += root.value(prefix + ".demotions");
    result.reclaims += root.value(prefix + ".reclaims");
    result.repromotions += root.value(prefix + ".repromotions");
    result.oomRetries += root.value(prefix + ".oom_retries");
    result.demoteRescues += root.value(prefix + ".demote_rescues");
    result.compactionRescues +=
        root.value(prefix + ".compaction_rescues");
}

struct NativeRunConfig
{
    sim::TlbDesign design = sim::TlbDesign::Split;
    os::PagePolicy policy = os::PagePolicy::Thp;
    std::string workload = "graph500";
    std::uint64_t memBytes = 8 * GiB;
    std::uint64_t footprintBytes = 6 * GiB;
    std::uint64_t refs = 150000;
    double memhog = 0.0;
    std::uint64_t seed = 3;
    std::uint64_t pool2m = 0;
    std::uint64_t pool1g = 0;
    sim::ConfigScale scale{};
    /** Warm-sweep stride (coarser for 1GB-page footprints). */
    std::uint64_t warmStep = PageBytes4K;
};

/** Build, warm (init sweep), measure, and summarise one machine. */
inline RunResult
runNative(const NativeRunConfig &config)
{
    sim::MachineParams params;
    params.name = sim::designName(config.design);
    params.memBytes = config.memBytes;
    params.design = config.design;
    params.scale = config.scale;
    params.proc.policy = config.policy;
    params.proc.pool2mPages = config.pool2m;
    params.proc.pool1gPages = config.pool1g;
    params.memhogFraction = config.memhog;
    params.seed = config.seed;
    params.caches = scaledCaches();
    sim::Machine machine(params);

    VAddr base = machine.mapArena(config.footprintBytes);
    machine.warmup(base, config.footprintBytes, config.warmStep);
    double warm_fallbacks =
        machine.root().scalar("proc.thp_fallbacks").value();
    RunResult result;
    addLifecycleStats(machine.root(), "proc", result);
    machine.startMeasurement();
    auto gen = workload::makeGenerator(config.workload, base,
                                       config.footprintBytes,
                                       config.seed);
    machine.run(*gen, config.refs);

    addLifecycleStats(machine.root(), "proc", result);
    result.thpFallbacks =
        warm_fallbacks
        + machine.root().scalar("proc.thp_fallbacks").value();
    result.metrics = machine.metrics();
    result.energy = machine.energyInputs();
    auto &hier = machine.tlbs();
    result.l1MissRate = 1.0 - hier.l1HitCount() / hier.accessCount();
    result.walksPerKref = 1000.0 * hier.walkCount() / hier.accessCount();
    result.accessesPerWalk =
        hier.walkCount() > 0
            ? hier.walkAccessCount() / hier.walkCount()
            : 0.0;
    result.distribution = machine.distribution();
    return result;
}

/**
 * Footprint the paper's memhog experiments would use: the workload
 * grabs (almost) everything memhog left free, driving memory pressure
 * the way an 80GB workload on an 80GB box does.
 */
inline std::uint64_t
pressureFootprint(std::uint64_t mem_bytes, double memhog_fraction)
{
    auto bytes = static_cast<std::uint64_t>(
        static_cast<double>(mem_bytes)
        * (1.0 - memhog_fraction - 0.12));
    return bytes & ~(PageBytes2M - 1);
}

/** % improvement of b over a (Figure 14's metric). */
inline double
improvement(const RunResult &baseline, const RunResult &other)
{
    return perf::improvementPercent(baseline.metrics, other.metrics);
}

struct VirtRunConfig
{
    sim::TlbDesign design = sim::TlbDesign::Split;
    unsigned numVms = 1;
    std::string workload = "memcached";
    std::uint64_t hostMemBytes = 8 * GiB;
    std::uint64_t footprintBytes = 0; ///< 0 = pressure-sized per VM
    std::uint64_t refsPerVm = 60000;
    double guestMemhog = 0.2;
    std::uint64_t seed = 7;
};

/** One consolidated-VM run; metrics aggregate across vCPUs. */
inline RunResult
runVirt(const VirtRunConfig &config)
{
    sim::VirtMachineParams params;
    params.name = sim::designName(config.design);
    params.hostMemBytes = config.hostMemBytes;
    params.numVms = config.numVms;
    params.design = config.design;
    params.guestProc.policy = os::PagePolicy::Thp;
    params.guestMemhogFraction = config.guestMemhog;
    params.seed = config.seed;
    params.caches = scaledCaches();
    sim::VirtMachine machine(params);

    std::uint64_t guest_mem = config.hostMemBytes / config.numVms;
    std::uint64_t footprint =
        config.footprintBytes
            ? config.footprintBytes
            : pressureFootprint(guest_mem, config.guestMemhog);
    std::vector<VAddr> bases;
    for (unsigned vm = 0; vm < config.numVms; vm++) {
        bases.push_back(machine.mapArena(vm, footprint));
        machine.warmup(vm, bases[vm], footprint);
    }
    double warm_fallbacks = 0;
    RunResult result;
    for (unsigned vm = 0; vm < config.numVms; vm++) {
        warm_fallbacks += machine.root()
                              .scalar("guest" + std::to_string(vm)
                                      + ".thp_fallbacks")
                              .value();
        addLifecycleStats(machine.root(),
                          "guest" + std::to_string(vm), result);
    }
    machine.startMeasurement();
    for (unsigned vm = 0; vm < config.numVms; vm++) {
        auto gen = workload::makeGenerator(config.workload, bases[vm],
                                           footprint,
                                           config.seed + vm);
        machine.run(vm, *gen, config.refsPerVm);
    }

    result.metrics = machine.metrics();
    result.energy = machine.energyInputs();
    result.thpFallbacks = warm_fallbacks;
    double walks = 0, accesses = 0, walk_accesses = 0, l1_hits = 0;
    for (unsigned vm = 0; vm < config.numVms; vm++) {
        auto prefix = "tlb" + std::to_string(vm) + ".";
        walks += machine.root().value(prefix + "walks");
        accesses += machine.root().value(prefix + "accesses");
        walk_accesses +=
            machine.root().value(prefix + "walk_accesses");
        l1_hits += machine.root().value(prefix + "l1_hits");
        result.thpFallbacks +=
            machine.root()
                .scalar("guest" + std::to_string(vm)
                        + ".thp_fallbacks")
                .value();
        addLifecycleStats(machine.root(),
                          "guest" + std::to_string(vm), result);
    }
    result.l1MissRate = 1.0 - l1_hits / accesses;
    result.walksPerKref = 1000.0 * walks / accesses;
    result.accessesPerWalk = walks > 0 ? walk_accesses / walks : 0.0;
    result.distribution = machine.guestDistribution(0);
    return result;
}

struct GpuRunConfig
{
    sim::TlbDesign design = sim::TlbDesign::Split;
    std::string kernel = "bfs";
    unsigned cores = 16;
    std::uint64_t memBytes = 4 * GiB;
    std::uint64_t footprintBytes = 1 * GiB;
    std::uint64_t refs = 200000;
    double memhog = 0.0;
    std::uint64_t seed = 500;
};

/** One GPU run; translation cycles summed over shader cores. */
RunResult runGpu(const GpuRunConfig &config);

struct MultiRunConfig
{
    sim::TlbDesign design = sim::TlbDesign::Split;
    sim::SwitchPolicy policy = sim::SwitchPolicy::AsidTagged;
    unsigned numProcs = 2;
    /** Translated references per scheduling slice. */
    std::uint64_t quantum = 1024;
    /** Comma-separated workload names, cycled across processes. */
    std::string mix = "gups,stream";
    os::PagePolicy procPolicy = os::PagePolicy::Thp;
    std::uint64_t memBytes = 8 * GiB;
    std::uint64_t footprintPerProc = 256 * MiB;
    std::uint64_t refsPerProc = 60000;
    std::uint64_t seed = 11;
};

/**
 * One multiprogrammed run: N processes round-robin over a shared TLB
 * hierarchy. Per-process workload seeds derive from the point seed via
 * sweepPointSeed(seed, proc), so full-flush vs ASID-tagged pairs see
 * identical reference streams.
 */
RunResult runMulti(const MultiRunConfig &config);

/** Any configuration a sweep point can carry. */
using BenchConfig = std::variant<NativeRunConfig, VirtRunConfig,
                                 GpuRunConfig, MultiRunConfig>;

/**
 * One entry of a sweep grid: a labelled configuration plus the
 * *configuration point* it belongs to. Jobs sharing a point (e.g. the
 * split and MIX runs of one table cell) get the same derived seed, so
 * design comparisons see identical workload streams.
 */
struct SweepJob
{
    std::string section; ///< table grouping ("native", "virt", "gpu")
    std::string label;   ///< human-readable config id for the JSON
    BenchConfig config;
    std::size_t point = 0; ///< seed-sharing configuration point
};

/**
 * A declarative grid of runs. Build it up front, hand it to a
 * BenchSweep, and index the returned RunResults with the values add()
 * gave back — results always land in grid order regardless of how many
 * worker threads executed them.
 */
class SweepGrid
{
  public:
    /** Append a job opening a new configuration point. */
    std::size_t add(std::string section, std::string label,
                    BenchConfig config);

    /**
     * Append a job sharing the configuration point (and therefore the
     * derived seed) of job @p paired_with.
     */
    std::size_t addPaired(std::size_t paired_with, std::string section,
                          std::string label, BenchConfig config);

    const std::vector<SweepJob> &jobs() const { return jobs_; }
    std::size_t size() const { return jobs_.size(); }

  private:
    std::vector<SweepJob> jobs_;
    std::size_t nextPoint_ = 0;
};

/**
 * Seed job @p job will actually run with: derived from (the config's
 * own base seed, the job's configuration point), never from thread
 * scheduling — `--jobs 1` and `--jobs N` are bit-identical.
 */
std::uint64_t effectiveSeed(const SweepJob &job);

/** Run one job (seed already derived) on the current thread. */
RunResult runJob(const SweepJob &job);

/**
 * The per-bench sweep harness. Parsed flags:
 *  - `--jobs N` worker threads (default hardware_concurrency)
 *  - `--json <path>` machine-readable report, written atomically
 *  - `--paranoia N` global invariant-checking level (1 = audits at
 *    phase boundaries, 2 = + differential translation oracle, 3 = +
 *    periodic mid-run audits)
 *  - `--inject site=rate[@point],...` deterministic fault injection
 *  - `--demote-storm R` shorthand merging a demote-storm rate into the
 *    injection config (the memory-pressure lifecycle soak)
 *  - `--retries N` extra attempts for a failing point (default 1)
 *  - `--deadline S` cooperative per-point deadline in seconds
 *  - `--checkpoint <path>` completed-point journal (default
 *    `<json>.ckpt` when `--json` is given)
 *  - `--resume <checkpoint>` reuse completed points from a previous
 *    (killed) run of the *same* sweep; the final JSON is bit-identical
 *    to an uninterrupted run
 *  - `--allow-failures` exit 0 even when points were quarantined
 *  - `--no-timing` omit the per-point "timing" block (wall_seconds,
 *    refs_per_sec) — for byte-stable golden comparisons across runs
 *
 * Failing points no longer kill the process: they are retried with
 * the same deterministic seed, then quarantined into the report's
 * "failures" block while every other point completes.
 */
class BenchSweep
{
  public:
    BenchSweep(const sim::CliArgs &args, std::string benchmark);
    ~BenchSweep();

    BenchSweep(const BenchSweep &) = delete;
    BenchSweep &operator=(const BenchSweep &) = delete;

    /** Run @p grid; results are indexed exactly like grid.jobs(). */
    std::vector<RunResult> run(const SweepGrid &grid);

    /**
     * Write the JSON report if `--json` was given and report the
     * process exit code: 0 when every point succeeded (or
     * `--allow-failures` was given), 1 otherwise. Call once at end;
     * benches `return sweep.finish();`.
     */
    int finish();

    unsigned jobs() const { return runner_.jobs(); }
    std::size_t failures() const { return failures_; }

    /** The accumulated report document (tests inspect this). */
    const json::Value &doc() const { return doc_; }

  private:
    sim::SweepRunner runner_;
    std::string jsonPath_;
    std::string checkpointPath_;
    bool allowFailures_ = false;
    bool injecting_ = false;
    bool timing_ = true;
    std::size_t failures_ = 0;
    /** Jobs across all run() calls so far (checkpoint indexing). */
    std::size_t globalIndex_ = 0;
    /** Completed-point records loaded from `--resume`. */
    std::map<std::size_t, json::Value> resumed_;
    std::FILE *checkpoint_ = nullptr;
    std::mutex checkpointMutex_;
    json::Value doc_;

    void loadCheckpoint(const std::string &path);
    void appendCheckpoint(std::size_t global_index,
                          const json::Value &record);
};

/** The "metrics" + "energy" + "distribution" JSON blocks for one run. */
json::Value resultJson(const RunResult &result);

/** The "config" JSON block for one job. */
json::Value configJson(const SweepJob &job);

/**
 * Rebuild a RunResult from a record produced by resultJson() (used on
 * `--resume` so figure tables can still print restored points).
 */
RunResult resultFromJson(const json::Value &record);

} // namespace mixtlb::bench

#endif // MIXTLB_BENCH_COMMON_HH
