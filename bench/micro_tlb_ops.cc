/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot operations:
 * TLB lookups/fills for each design and full MMU accesses. These guard
 * the simulator's own performance (host ns/op), not the modelled
 * cycles.
 */

#include <benchmark/benchmark.h>

#include "mem/phys_mem.hh"
#include "pt/page_table.hh"
#include "pt/walker.hh"
#include "sim/configs.hh"
#include "sim/machine.hh"
#include "tlb/mix.hh"

using namespace mixtlb;

namespace
{

constexpr std::uint64_t GiB = 1024ULL * 1024 * 1024;

void
BM_MixTlbLookupHit(benchmark::State &state)
{
    mem::PhysMem mem(1 * GiB);
    pt::PageTable table(mem);
    stats::StatGroup root("bm");
    pt::Walker walker(table, &root);
    table.map(0x00400000, 0, PageSize::Size2M);
    tlb::MixTlbParams params;
    params.entries = 96;
    params.assoc = 6;
    tlb::MixTlb tlb("mix", &root, params);
    auto walk = walker.walk(0x00400000, false);
    tlb::FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.walk = &walk;
    tlb.fill(fill);
    VAddr va = 0x00400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(va, false));
        va = 0x00400000 + ((va + 4096) & 0x1fffff);
    }
}
BENCHMARK(BM_MixTlbLookupHit);

void
BM_MixTlbSuperpageFill(benchmark::State &state)
{
    mem::PhysMem mem(1 * GiB);
    pt::PageTable table(mem);
    stats::StatGroup root("bm");
    pt::Walker walker(table, &root);
    for (int i = 0; i < 8; i++)
        table.map(0x00400000 + i * PageBytes2M, i * PageBytes2M,
                  PageSize::Size2M);
    tlb::MixTlbParams params;
    params.entries = 544;
    params.assoc = 8;
    params.mode = tlb::CoalesceMode::Length;
    tlb::MixTlb tlb("mix", &root, params);
    auto walk = walker.walk(0x00400000, false);
    tlb::FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.walk = &walk;
    for (auto _ : state)
        tlb.fill(fill); // all-set mirroring, the costliest fill path
}
BENCHMARK(BM_MixTlbSuperpageFill);

void
BM_PageTableWalk(benchmark::State &state)
{
    mem::PhysMem mem(1 * GiB);
    pt::PageTable table(mem);
    stats::StatGroup root("bm");
    pt::Walker walker(table, &root);
    for (VAddr va = 0; va < 64 * PageBytes4K; va += PageBytes4K)
        table.map(va, 0x10000000 + va, PageSize::Size4K);
    VAddr va = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(walker.walk(va, false));
        va = (va + PageBytes4K) % (64 * PageBytes4K);
    }
}
BENCHMARK(BM_PageTableWalk);

void
BM_MachineAccess(benchmark::State &state)
{
    auto design = static_cast<sim::TlbDesign>(state.range(0));
    sim::MachineParams params;
    params.name = "bm";
    params.memBytes = 2 * GiB;
    params.design = design;
    params.proc.policy = os::PagePolicy::Thp;
    sim::Machine machine(params);
    VAddr base = machine.mapArena(256ULL << 20);
    machine.warmup(base, 256ULL << 20);
    Rng rng(1);
    for (auto _ : state) {
        VAddr va = base + rng.nextBounded(256ULL << 20);
        benchmark::DoNotOptimize(machine.tlbs().access(va, false));
    }
}
BENCHMARK(BM_MachineAccess)
    ->Arg(static_cast<int>(sim::TlbDesign::Split))
    ->Arg(static_cast<int>(sim::TlbDesign::Mix));

} // anonymous namespace

BENCHMARK_MAIN();
