/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot operations:
 * TLB lookups/fills for each design and full MMU accesses. These guard
 * the simulator's own performance (host ns/op), not the modelled
 * cycles.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/simd.hh"
#include "mem/phys_mem.hh"
#include "pt/page_table.hh"
#include "pt/walker.hh"
#include "sim/configs.hh"
#include "sim/machine.hh"
#include "tlb/mix.hh"

using namespace mixtlb;

namespace
{

constexpr std::uint64_t GiB = 1024ULL * 1024 * 1024;

/** Label a scalar-vs-SIMD benchmark leg with the kernel it ran. */
void
setKernelLabel(benchmark::State &state)
{
    state.SetLabel(simd::activeKernelName());
}

/**
 * Per-kernel probe microbenchmarks: firstEqual/firstEqualAny over lane
 * sizes spanning the TLB/cache geometries (8-way cache set, 16-way
 * LLC, 64-entry fully-assoc sweep), with the needle at the lane's end
 * — a full-length scan, the probe's worst case. range(1) selects the
 * scalar (1) or compiled SIMD (0) kernel, so one run reports both
 * sides of the comparison.
 */
void
BM_SimdFirstEqual(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    simd::ForceScalarGuard guard(state.range(1) != 0);
    setKernelLabel(state);
    std::vector<std::uint64_t> lane(n);
    for (std::size_t i = 0; i < n; ++i)
        lane[i] = 0x9e3779b97f4a7c15ULL * (i + 1);
    const std::uint64_t needle = n > 0 ? lane[n - 1] : 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            simd::firstEqual(lane.data(), n, needle));
}
BENCHMARK(BM_SimdFirstEqual)
    ->Args({8, 0})->Args({8, 1})
    ->Args({16, 0})->Args({16, 1})
    ->Args({64, 0})->Args({64, 1});

void
BM_SimdFirstEqualAny(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    simd::ForceScalarGuard guard(state.range(1) != 0);
    setKernelLabel(state);
    std::vector<std::uint64_t> lane(n);
    for (std::size_t i = 0; i < n; ++i)
        lane[i] = 0x9e3779b97f4a7c15ULL * (i + 1);
    // NumPageSizes candidates, the MIX/fully-assoc probe shape; only
    // the last candidate hits, at the end of the lane.
    const std::uint64_t cands[3] = {1, 2, n > 0 ? lane[n - 1] : 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            simd::firstEqualAny(lane.data(), n, cands, 3));
}
BENCHMARK(BM_SimdFirstEqualAny)
    ->Args({8, 0})->Args({8, 1})
    ->Args({16, 0})->Args({16, 1})
    ->Args({64, 0})->Args({64, 1});

void
BM_SimdL0RunLength(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    simd::ForceScalarGuard guard(state.range(1) != 0);
    setKernelLabel(state);
    constexpr VAddr lo = 0x00400000;
    std::vector<MemRef> refs(n);
    for (std::size_t i = 0; i < n; ++i) {
        refs[i].vaddr = lo + (i * 64) % PageBytes4K;
        refs[i].type = AccessType::Read;
    }
    if (n > 0)
        refs[n - 1].vaddr = lo + PageBytes4K; // run breaks at the tail
    for (auto _ : state)
        benchmark::DoNotOptimize(
            simd::l0RunLength(refs.data(), n, lo, false));
}
BENCHMARK(BM_SimdL0RunLength)
    ->Args({64, 0})->Args({64, 1})
    ->Args({1024, 0})->Args({1024, 1});

void
BM_MixTlbLookupHit(benchmark::State &state)
{
    mem::PhysMem mem(1 * GiB);
    pt::PageTable table(mem);
    stats::StatGroup root("bm");
    pt::Walker walker(table, &root);
    table.map(0x00400000, 0, PageSize::Size2M);
    tlb::MixTlbParams params;
    params.entries = 96;
    params.assoc = 6;
    tlb::MixTlb tlb("mix", &root, params);
    auto walk = walker.walk(0x00400000, false);
    tlb::FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.walk = &walk;
    tlb.fill(fill);
    VAddr va = 0x00400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(va, false));
        va = 0x00400000 + ((va + 4096) & 0x1fffff);
    }
}
BENCHMARK(BM_MixTlbLookupHit);

void
BM_MixTlbSuperpageFill(benchmark::State &state)
{
    mem::PhysMem mem(1 * GiB);
    pt::PageTable table(mem);
    stats::StatGroup root("bm");
    pt::Walker walker(table, &root);
    for (int i = 0; i < 8; i++)
        table.map(0x00400000 + i * PageBytes2M, i * PageBytes2M,
                  PageSize::Size2M);
    tlb::MixTlbParams params;
    params.entries = 544;
    params.assoc = 8;
    params.mode = tlb::CoalesceMode::Length;
    tlb::MixTlb tlb("mix", &root, params);
    auto walk = walker.walk(0x00400000, false);
    tlb::FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.walk = &walk;
    for (auto _ : state)
        tlb.fill(fill); // all-set mirroring, the costliest fill path
}
BENCHMARK(BM_MixTlbSuperpageFill);

void
BM_PageTableWalk(benchmark::State &state)
{
    mem::PhysMem mem(1 * GiB);
    pt::PageTable table(mem);
    stats::StatGroup root("bm");
    pt::Walker walker(table, &root);
    for (VAddr va = 0; va < 64 * PageBytes4K; va += PageBytes4K)
        table.map(va, 0x10000000 + va, PageSize::Size4K);
    VAddr va = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(walker.walk(va, false));
        va = (va + PageBytes4K) % (64 * PageBytes4K);
    }
}
BENCHMARK(BM_PageTableWalk);

void
BM_MachineAccess(benchmark::State &state)
{
    auto design = static_cast<sim::TlbDesign>(state.range(0));
    simd::ForceScalarGuard guard(state.range(1) != 0);
    setKernelLabel(state);
    sim::MachineParams params;
    params.name = "bm";
    params.memBytes = 2 * GiB;
    params.design = design;
    params.proc.policy = os::PagePolicy::Thp;
    sim::Machine machine(params);
    VAddr base = machine.mapArena(256ULL << 20);
    machine.warmup(base, 256ULL << 20);
    Rng rng(1);
    for (auto _ : state) {
        VAddr va = base + rng.nextBounded(256ULL << 20);
        benchmark::DoNotOptimize(machine.tlbs().access(va, false));
    }
}
BENCHMARK(BM_MachineAccess)
    ->Args({static_cast<int>(sim::TlbDesign::Split), 0})
    ->Args({static_cast<int>(sim::TlbDesign::Split), 1})
    ->Args({static_cast<int>(sim::TlbDesign::Mix), 0})
    ->Args({static_cast<int>(sim::TlbDesign::Mix), 1});

} // anonymous namespace

BENCHMARK_MAIN();
