/**
 * @file
 * Multiprogramming sweep: N processes round-robin over one shared TLB
 * hierarchy, full-flush vs ASID-tagged context switches, across the
 * five headline designs × process count × switch quantum × workload
 * mix. Each full-flush/ASID pair shares a sweep point (and therefore
 * a derived seed), so both policies replay byte-identical reference
 * streams and the miss-rate delta is purely the flush policy.
 *
 * `--json` (default BENCH_multiprog.json) emits the report that
 * tools/check_perf.py validates in CI.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

namespace
{

constexpr TlbDesign Designs[] = {
    TlbDesign::Split,      TlbDesign::Mix,  TlbDesign::MixColt,
    TlbDesign::HashRehash, TlbDesign::Skew,
};

struct Mix
{
    const char *label;
    const char *workloads;
};

/** Random RMWs vs streaming, and a key-value vs graph pairing. */
constexpr Mix Mixes[] = {
    {"gups+stream", "gups,streamcluster"},
    {"kv+graph", "memcached,graph500"},
};

struct PairRef
{
    std::size_t flush = 0;
    std::size_t asid = 0;
    TlbDesign design{};
    unsigned procs = 0;
    std::uint64_t quantum = 0;
    const char *mix = "";
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs_per_proc = args.getU64("refs", 30000);
    const std::uint64_t footprint =
        args.getU64("footprint-mb", 48) * MiB;
    const std::uint64_t mem = args.getU64("mem-mb", 2048) * MiB;
    const std::uint64_t seed = args.getU64("seed", 11);

    SweepGrid grid;
    std::vector<PairRef> pairs;
    for (TlbDesign design : Designs) {
        for (unsigned procs : {2u, 4u}) {
            for (std::uint64_t quantum : {512ull, 4096ull}) {
                for (const Mix &mix : Mixes) {
                    MultiRunConfig config;
                    config.design = design;
                    config.numProcs = procs;
                    config.quantum = quantum;
                    config.mix = mix.workloads;
                    config.memBytes = mem;
                    config.footprintPerProc = footprint;
                    config.refsPerProc = refs_per_proc;
                    config.seed = seed;

                    const std::string label =
                        std::string(designName(design)) + "/p"
                        + std::to_string(procs) + "/q"
                        + std::to_string(quantum) + "/" + mix.label;
                    PairRef pair;
                    pair.design = design;
                    pair.procs = procs;
                    pair.quantum = quantum;
                    pair.mix = mix.label;

                    config.policy = SwitchPolicy::FullFlush;
                    pair.flush = grid.add("multiprog",
                                          label + "/flush", config);
                    config.policy = SwitchPolicy::AsidTagged;
                    pair.asid = grid.addPaired(
                        pair.flush, "multiprog", label + "/asid",
                        config);
                    pairs.push_back(pair);
                }
            }
        }
    }

    BenchSweep sweep(args, "multiprog");
    auto results = sweep.run(grid);

    std::printf("=== Multiprogrammed L1 miss rate: full-flush vs "
                "ASID-tagged ===\n\n");
    Table table({"design", "procs", "quantum", "mix", "flush miss%",
                 "asid miss%", "improv%"});
    for (const PairRef &pair : pairs) {
        const RunResult &flush = results[pair.flush];
        const RunResult &asid = results[pair.asid];
        table.addRow({designName(pair.design),
                      std::to_string(pair.procs),
                      std::to_string(pair.quantum), pair.mix,
                      Table::fmt(100.0 * flush.l1MissRate, 2),
                      Table::fmt(100.0 * asid.l1MissRate, 2),
                      Table::fmt(improvement(flush, asid), 2)});
    }
    table.print();

    return sweep.finish();
}
