/**
 * @file
 * Figure 16: performance-energy scatter of multi-indexing TLBs
 * (skew-associative + prediction, hash-rehash + prediction) and MIX
 * TLBs, both axes relative to the split baseline. Desirable points sit
 * top-right (faster AND more energy-frugal).
 *
 * Shapes to reproduce: MIX dominates; skew pays parallel-probe energy
 * and timestamp area; hash-rehash sits between; multi-indexing points
 * can fall below zero on either axis.
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);

    std::printf("=== Figure 16: performance vs energy, relative to "
                "split TLBs ===\n\n");

    perf::EnergyModel energy_model;
    const std::vector<std::string> workloads = {"btree", "graph500",
                                                "memcached", "mcf"};

    Table table({"workload", "design", "perf improvement%",
                 "energy saved%"});
    for (const auto &workload : workloads) {
        NativeRunConfig config;
        config.workload = workload;
        config.policy = os::PagePolicy::Thp;
        config.refs = refs;

        config.design = TlbDesign::Split;
        auto split = runNative(config);
        double split_energy = energy_model.compute(split.energy).total();

        for (TlbDesign design :
             {TlbDesign::SkewPred, TlbDesign::HashRehashPred,
              TlbDesign::Mix}) {
            config.design = design;
            auto run = runNative(config);
            double energy = energy_model.compute(run.energy).total();
            table.addRow({workload, designName(design),
                          Table::fmt(improvement(split, run)),
                          Table::fmt(100 * (1 - energy / split_energy))});
        }
    }
    table.print();
    std::printf("\nPaper shape: MIX points sit top-right; "
                "skew-associative points pay lookup\nenergy (negative "
                "y); hash-rehash is energy-closer but probe-latency "
                "bound.\n");
    return 0;
}
