/**
 * @file
 * Figure 17: breakdown of address-translation dynamic energy into
 * lookup, page-walk, fill, and other (invalidations, dirty micro-ops,
 * predictor) components, for GPU workloads, normalised to the total
 * energy of the Haswell-style split TLBs.
 *
 * Shapes to reproduce: lookups and walks dominate; fill energy — the
 * component mirroring inflates — stays a small slice, which is why
 * MIX's mirror writes do not hurt overall energy.
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 150000);

    std::printf("=== Figure 17: dynamic translation energy breakdown "
                "(GPU), normalised to split total ===\n\n");

    perf::EnergyModel model;
    Table table({"kernel", "design", "lookup", "walk", "fill", "other",
                 "total"});
    for (const auto &kernel :
         std::vector<std::string>{"bfs", "backprop", "kmeans"}) {
        GpuRunConfig config;
        config.kernel = kernel;
        config.refs = refs;

        config.design = TlbDesign::Split;
        auto split = runGpu(config);
        auto split_energy = model.compute(split.energy);
        double norm = split_energy.total() - split_energy.leakage;

        for (TlbDesign design : {TlbDesign::Split, TlbDesign::Mix}) {
            config.design = design;
            auto run = design == TlbDesign::Split ? split
                                                  : runGpu(config);
            auto breakdown = model.compute(run.energy);
            table.addRow(
                {kernel, designName(design),
                 Table::fmt(breakdown.lookup / norm),
                 Table::fmt(breakdown.walk / norm),
                 Table::fmt(breakdown.fill / norm),
                 Table::fmt(breakdown.other / norm),
                 Table::fmt((breakdown.total() - breakdown.leakage)
                            / norm)});
        }
    }
    table.print();
    std::printf("\nPaper shape: lookup + walk dominate; the fill "
                "column (where mirroring lives)\nis small for both "
                "designs, so MIX's extra fills barely move the "
                "total.\n");
    return 0;
}
