/**
 * @file
 * Figure 18: average performance improvement over split TLBs for
 * COLT (small-page coalescing in splits), COLT++ (every split
 * component coalesces its own size), MIX, and MIX combined with COLT
 * small-page coalescing, as memhog varies.
 *
 * Shapes to reproduce: COLT helps mostly when small pages dominate
 * (high fragmentation); COLT++ adds superpage coalescing; MIX beats
 * both by pooling all hardware; MIX+COLT is the best of all.
 *
 * Runs as one sweep grid: `--jobs N` parallelises, `--json <path>`
 * dumps per-configuration metrics + energy.
 */

#include <array>

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);
    const std::uint64_t mem = args.getU64("mem-mb", 8192) << 20;

    const std::vector<std::string> workloads = {"mcf", "graph500",
                                                "memcached"};
    const TlbDesign designs[4] = {TlbDesign::Colt,
                                  TlbDesign::ColtPlusPlus,
                                  TlbDesign::Mix, TlbDesign::MixColt};
    const char *design_labels[4] = {"colt", "colt++", "mix",
                                    "mix+colt"};
    const double memhogs[2] = {0.2, 0.6};

    // One configuration point per (memhog, workload); the split
    // baseline and all four contenders share its seed so every design
    // sees the same fragmentation and workload stream.
    SweepGrid grid;
    struct Cell
    {
        std::size_t split = 0;
        std::array<std::size_t, 4> designs{};
    };
    std::vector<std::vector<Cell>> cells; // [memhog][workload]
    for (double memhog : memhogs) {
        std::vector<Cell> row;
        for (const auto &workload : workloads) {
            NativeRunConfig config;
            config.workload = workload;
            config.memBytes = mem;
            config.footprintBytes = pressureFootprint(mem, memhog);
            config.refs = refs;
            config.memhog = memhog;

            const std::string label =
                workload + "/mh" + Table::fmt(memhog * 100, 0) + "/";
            Cell cell;
            config.design = TlbDesign::Split;
            cell.split = grid.add("colt", label + "split", config);
            for (unsigned d = 0; d < 4; d++) {
                config.design = designs[d];
                cell.designs[d] = grid.addPaired(
                    cell.split, "colt", label + design_labels[d],
                    config);
            }
            row.push_back(cell);
        }
        cells.push_back(row);
    }

    BenchSweep sweep(args, "fig18_colt");
    auto results = sweep.run(grid);

    std::printf("=== Figure 18: COLT / COLT++ / MIX / MIX+COLT vs "
                "split ===\n\n");
    Table table({"memhog%", "colt", "colt++", "mix", "mix+colt"});
    for (std::size_t m = 0; m < 2; m++) {
        double sums[4] = {0, 0, 0, 0};
        for (std::size_t w = 0; w < workloads.size(); w++) {
            const Cell &cell = cells[m][w];
            for (unsigned d = 0; d < 4; d++) {
                sums[d] += improvement(results[cell.split],
                                       results[cell.designs[d]])
                           / static_cast<double>(workloads.size());
            }
        }
        table.addRow({Table::fmt(memhogs[m] * 100, 0),
                      Table::fmt(sums[0]), Table::fmt(sums[1]),
                      Table::fmt(sums[2]), Table::fmt(sums[3])});
    }
    table.print();
    std::printf("\nPaper shape: COLT gains concentrate at high "
                "fragmentation (small pages);\nCOLT++ adds ~a few %% "
                "where superpages abound; MIX exceeds both and "
                "MIX+COLT\nis highest everywhere.\n");
    return sweep.finish();
}
