/**
 * @file
 * Figure 18: average performance improvement over split TLBs for
 * COLT (small-page coalescing in splits), COLT++ (every split
 * component coalesces its own size), MIX, and MIX combined with COLT
 * small-page coalescing, as memhog varies.
 *
 * Shapes to reproduce: COLT helps mostly when small pages dominate
 * (high fragmentation); COLT++ adds superpage coalescing; MIX beats
 * both by pooling all hardware; MIX+COLT is the best of all.
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);
    const std::uint64_t mem = args.getU64("mem-mb", 8192) << 20;

    std::printf("=== Figure 18: COLT / COLT++ / MIX / MIX+COLT vs "
                "split ===\n\n");

    const std::vector<std::string> workloads = {"mcf", "graph500",
                                                "memcached"};
    Table table({"memhog%", "colt", "colt++", "mix", "mix+colt"});

    for (double memhog : {0.2, 0.6}) {
        double sums[4] = {0, 0, 0, 0};
        for (const auto &workload : workloads) {
            NativeRunConfig config;
            config.workload = workload;
            config.memBytes = mem;
            config.footprintBytes = pressureFootprint(mem, memhog);
            config.refs = refs;
            config.memhog = memhog;

            config.design = TlbDesign::Split;
            auto split = runNative(config);

            const TlbDesign designs[4] = {
                TlbDesign::Colt, TlbDesign::ColtPlusPlus,
                TlbDesign::Mix, TlbDesign::MixColt};
            for (unsigned d = 0; d < 4; d++) {
                config.design = designs[d];
                auto run = runNative(config);
                sums[d] += improvement(split, run) / workloads.size();
            }
        }
        table.addRow({Table::fmt(memhog * 100, 0), Table::fmt(sums[0]),
                      Table::fmt(sums[1]), Table::fmt(sums[2]),
                      Table::fmt(sums[3])});
    }
    table.print();
    std::printf("\nPaper shape: COLT gains concentrate at high "
                "fragmentation (small pages);\nCOLT++ adds ~a few %% "
                "where superpages abound; MIX exceeds both and "
                "MIX+COLT\nis highest everywhere.\n");
    return 0;
}
