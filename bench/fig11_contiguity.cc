/**
 * @file
 * Figure 11: average superpage contiguity (Sec. 7.1's definition:
 * sum(len^2)/sum(len) over contiguity runs) for native workloads as
 * memhog varies, separately for 2MB and 1GB superpages.
 *
 * Shape to reproduce: with memhog 20%, most workloads see 80+
 * contiguous 2MB superpages (enough to offset 16-128 mirrors);
 * contiguity drops with fragmentation but remains usable; 1GB pages
 * show smaller but sufficient contiguity (tens of pages).
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

namespace
{

struct ContigResult
{
    double avg2m = 0;
    double avg1g = 0;
};

ContigResult
measure(double memhog, std::uint64_t mem, std::uint64_t seed,
        bool with_1g_pool)
{
    MachineParams params;
    params.name = "contig";
    params.memBytes = mem;
    params.design = TlbDesign::Split;
    params.proc.policy = with_1g_pool ? os::PagePolicy::Huge1G
                                      : os::PagePolicy::Thp;
    params.memhogFraction = memhog;
    params.seed = seed;
    Machine machine(params);
    std::uint64_t footprint = pressureFootprint(mem, memhog);
    if (with_1g_pool) {
        // libhugetlbfs pool: as many 1GB pages as can be defragmented.
        params.proc.pool1gPages = footprint >> PageShift1G;
    }
    VAddr base = machine.mapArena(footprint);
    machine.touchSequential(base, footprint);

    ContigResult result;
    result.avg2m = os::averageContiguity(
        machine.contiguityRuns(PageSize::Size2M));
    result.avg1g = os::averageContiguity(
        machine.contiguityRuns(PageSize::Size1G));
    return result;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t mem = args.getU64("mem-mb", 8192) << 20;

    std::printf("=== Figure 11: average superpage contiguity vs "
                "memhog ===\n\n");

    Table table({"workload#", "memhog%", "avg 2MB contiguity"});
    // The paper numbers workloads in ascending order of contiguity;
    // we show several allocation sessions (seeds) per memhog level.
    for (double memhog : {0.2, 0.4, 0.6}) {
        std::vector<double> values;
        for (std::uint64_t seed = 1; seed <= 6; seed++)
            values.push_back(measure(memhog, mem, seed, false).avg2m);
        std::sort(values.begin(), values.end());
        for (std::size_t i = 0; i < values.size(); i++) {
            table.addRow({std::to_string(i + 1),
                          Table::fmt(memhog * 100, 0),
                          Table::fmt(values[i], 1)});
        }
    }
    table.print();

    std::printf("\n--- 1GB superpages (libhugetlbfs pools) ---\n");
    Table table1g({"memhog%", "avg 1GB contiguity"});
    for (double memhog : {0.0, 0.2}) {
        sim::MachineParams params;
        params.name = "contig1g";
        params.memBytes = mem;
        params.proc.policy = os::PagePolicy::Huge1G;
        params.memhogFraction = memhog;
        std::uint64_t footprint = pressureFootprint(mem, memhog)
                                  & ~(PageBytes1G - 1);
        params.proc.pool1gPages = footprint >> PageShift1G;
        sim::Machine machine(params);
        VAddr base = machine.mapArena(footprint);
        machine.touchSequential(base, footprint, PageBytes2M);
        table1g.addRow({Table::fmt(memhog * 100, 0),
                        Table::fmt(os::averageContiguity(
                            machine.contiguityRuns(PageSize::Size1G)),
                            1)});
    }
    table1g.print();

    std::printf("\nPaper shape: 2MB contiguity 80+ at low memhog, "
                "declining but usable at 60%%;\n1GB contiguity smaller "
                "(tens) but enough for coalescing.\n");
    return 0;
}
