/**
 * @file
 * Sec. 4.4's dirty-bit protocol: a coalesced bundle's dirty bit is the
 * AND of its members, so stores to clean bundles inject extra dirty-
 * update micro-ops (cache traffic) compared to a per-entry dirty bit.
 * The paper asserts the added traffic is tolerable; this ablation
 * quantifies micro-ops and their runtime cost for split (per-entry
 * dirty bits) versus MIX (conservative bundle bit) on store-heavy
 * runs.
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

namespace
{

struct DirtyResult
{
    double microOpsPerKref = 0;
    double overheadPct = 0;
};

DirtyResult
measure(TlbDesign design, const std::string &workload,
        std::uint64_t refs)
{
    MachineParams params;
    params.name = designName(design);
    params.memBytes = 8 * GiB;
    params.design = design;
    params.proc.policy = os::PagePolicy::Thp;
    params.caches = scaledCaches();
    Machine machine(params);
    const std::uint64_t footprint = 4 * GiB;
    VAddr base = machine.mapArena(footprint);
    // Read-only warm sweep: walker leaves every page CLEAN, so the
    // measured phase's stores exercise the dirty protocol.
    for (VAddr va = base; va < base + footprint; va += PageBytes4K)
        machine.tlbs().access(va, false);
    machine.startMeasurement();
    auto gen = workload::makeGenerator(workload, base, footprint, 3);
    machine.run(*gen, refs);

    DirtyResult result;
    result.microOpsPerKref = 1000.0 * machine.tlbs().dirtyMicroOpCount()
                             / machine.tlbs().accessCount();
    result.overheadPct = 100 * machine.metrics().overheadFraction();
    return result;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);

    std::printf("=== Ablation: bundle dirty-bit protocol cost "
                "(Sec. 4.4) ===\n\n");
    Table table({"workload", "split uops/kref", "mix uops/kref",
                 "split overhead%", "mix overhead%"});
    for (const auto &workload :
         std::vector<std::string>{"gups", "milc", "memcached"}) {
        auto split = measure(TlbDesign::Split, workload, refs);
        auto mix = measure(TlbDesign::Mix, workload, refs);
        table.addRow({workload, Table::fmt(split.microOpsPerKref),
                      Table::fmt(mix.microOpsPerKref),
                      Table::fmt(split.overheadPct),
                      Table::fmt(mix.overheadPct)});
    }
    table.print();
    std::printf("\nPaper claim: the conservative bundle dirty bit adds "
                "cache traffic (more\nmicro-ops than per-entry dirty "
                "bits) but performance remains good.\n");
    return 0;
}
