/**
 * @file
 * Figure 13: superpage contiguity CDFs for virtualized CPU workloads
 * (end-to-end gVA+sPA contiguity under VM consolidation + guest
 * memhog) and GPU workloads.
 *
 * The virtualized curves are the key novelty: contiguity must survive
 * BOTH the guest's and the hypervisor's allocators for virtualized
 * MIX TLBs to coalesce.
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

namespace
{

void
cdfRow(Table &table, const std::string &label,
       const std::vector<std::uint64_t> &runs)
{
    auto cdf = os::contiguityCdf(runs);
    auto at = [&](std::uint64_t x) {
        double y = 0;
        for (auto [len, frac] : cdf) {
            if (len <= x)
                y = frac;
        }
        return y;
    };
    table.addRow({label, Table::fmt(at(1)), Table::fmt(at(8)),
                  Table::fmt(at(16)), Table::fmt(at(32)),
                  Table::fmt(at(64))});
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t host_mem = args.getU64("mem-mb", 8192) << 20;

    std::printf("=== Figure 13: contiguity CDFs, virtualized CPU and "
                "GPU ===\n\n");

    Table table({"config", "x=1", "x=8", "x=16", "x=32", "x=64"});

    // Virtualized: end-to-end nested contiguity.
    for (auto [vms, memhog] : {std::pair<unsigned, double>{1, 0.2},
                               {2, 0.4}, {4, 0.4}}) {
        VirtMachineParams params;
        params.name = "cdf";
        params.hostMemBytes = host_mem;
        params.numVms = vms;
        params.guestProc.policy = os::PagePolicy::Thp;
        params.guestMemhogFraction = memhog;
        VirtMachine machine(params);
        std::uint64_t guest_mem = host_mem / vms;
        std::uint64_t footprint = pressureFootprint(guest_mem, memhog);
        VAddr base = machine.mapArena(0, footprint);
        machine.warmup(0, base, footprint);
        std::string label = std::to_string(vms) + "VM:"
                            + Table::fmt(memhog * 100, 0) + "mh";
        cdfRow(table, label,
               machine.nestedContiguityRuns(0, PageSize::Size2M));
    }

    // GPU (native paging, GPU-class footprints).
    for (double memhog : {0.2, 0.6}) {
        MachineParams params;
        params.name = "gpucdf";
        params.memBytes = host_mem / 2;
        params.proc.policy = os::PagePolicy::Thp;
        params.memhogFraction = memhog;
        Machine machine(params);
        std::uint64_t footprint =
            pressureFootprint(host_mem / 2, memhog);
        VAddr base = machine.mapArena(footprint);
        machine.touchSequential(base, footprint);
        cdfRow(table, "GPU:" + Table::fmt(memhog * 100, 0) + "mh",
               machine.contiguityRuns(PageSize::Size2M));
    }
    table.print();
    std::printf("\nPaper shape: all configurations retain considerable "
                "contiguity even when\nfragmentation is high.\n");
    return 0;
}
