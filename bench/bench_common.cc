#include "bench_common.hh"

#include "gpu/gpu_system.hh"
#include "os/memhog.hh"
#include "tlb/walk_source.hh"

namespace mixtlb::bench
{

RunResult
runGpu(const GpuRunConfig &config)
{
    stats::StatGroup root(sim::designName(config.design));
    mem::PhysMem mem(config.memBytes);
    os::MemoryManager mm(mem, &root);
    os::Memhog hog(mm);
    if (config.memhog > 0)
        hog.fragment(config.memhog, config.seed);

    os::ProcessParams proc_params;
    proc_params.policy = os::PagePolicy::Thp;
    os::Process proc(mm, proc_params, &root);
    cache::CacheHierarchy caches(scaledCaches(), &root);
    tlb::NativeWalkSource source(
        proc.pageTable(), &root,
        [&](VAddr va, bool store) {
            return proc.touch(va, store) != os::TouchResult::OutOfMemory;
        },
        sim::walkerScanLines(config.design));

    gpu::GpuParams gpu_params;
    gpu_params.numCores = config.cores;
    auto l2 = sim::makeGpuL2(config.design, &root, &proc.pageTable());
    gpu::GpuSystem gpu_system(
        gpu_params, &root,
        [&](unsigned core, stats::StatGroup *parent) {
            return sim::makeGpuCoreL1(config.design, core, parent,
                                      &proc.pageTable());
        },
        l2, source, caches);

    // Input upload: ascending first-touch through rotating cores.
    VAddr base = proc.mmap(config.footprintBytes);
    for (VAddr va = base; va < base + config.footprintBytes;
         va += PageBytes4K) {
        gpu_system.core((va >> PageShift4K) % config.cores)
            .access(va, true);
    }
    root.resetStats();

    std::vector<std::unique_ptr<workload::TraceGenerator>> gens;
    for (unsigned core = 0; core < config.cores; core++) {
        gens.push_back(workload::makeGenerator(config.kernel, base,
                                               config.footprintBytes,
                                               config.seed + core));
    }
    gpu_system.run(gens, config.refs);

    RunResult result;
    double translation_cycles = 0, l1_hits = 0, accesses = 0;
    double walks = 0, walk_accesses = 0, data_cycles = 0;
    perf::EnergyInputs energy;
    for (unsigned core = 0; core < config.cores; core++) {
        auto &hier = gpu_system.core(core);
        translation_cycles += hier.translationCycleCount();
        l1_hits += hier.l1HitCount();
        accesses += hier.accessCount();
        walks += hier.walkCount();
        walk_accesses += hier.walkAccessCount();
        auto inputs = sim::harvestEnergyInputs(root, hier,
                                               config.design, 0.0);
        energy.l1WaysRead += inputs.l1WaysRead;
        energy.l2WaysRead = inputs.l2WaysRead; // shared L2: same object
        energy.l1Entries = inputs.l1Entries;
        energy.l2Entries = inputs.l2Entries;
        energy.l1Fills += inputs.l1Fills;
        energy.l2Fills = inputs.l2Fills;
        energy.walkAccesses += inputs.walkAccesses;
        energy.walkDramAccesses += inputs.walkDramAccesses;
        energy.dirtyOps += inputs.dirtyOps;
        energy.invalidations += inputs.invalidations;
        energy.predictorLookups += inputs.predictorLookups;
        energy.skewTimestamps = inputs.skewTimestamps;
    }
    result.metrics = perf::computeMetrics(
        static_cast<std::uint64_t>(accesses), translation_cycles,
        data_cycles);
    energy.totalCycles = result.metrics.totalCycles;
    result.energy = energy;
    result.l1MissRate = 1.0 - l1_hits / accesses;
    result.walksPerKref = 1000.0 * walks / accesses;
    result.accessesPerWalk = walks > 0 ? walk_accesses / walks : 0.0;
    result.distribution = os::scanDistribution(proc.pageTable());
    return result;
}

} // namespace mixtlb::bench
