#include "bench_common.hh"

#include <algorithm>

#include "common/contracts.hh"
#include "common/logging.hh"
#include "gpu/gpu_system.hh"
#include "os/memhog.hh"
#include "tlb/walk_source.hh"

namespace mixtlb::bench
{

RunResult
runGpu(const GpuRunConfig &config)
{
    stats::StatGroup root(sim::designName(config.design));
    mem::PhysMem mem(config.memBytes);
    os::MemoryManager mm(mem, &root);
    os::Memhog hog(mm);
    if (config.memhog > 0)
        hog.fragment(config.memhog, config.seed);

    os::ProcessParams proc_params;
    proc_params.policy = os::PagePolicy::Thp;
    os::Process proc(mm, proc_params, &root);
    cache::CacheHierarchy caches(scaledCaches(), &root);
    tlb::NativeWalkSource source(
        proc.pageTable(), &root,
        [&](VAddr va, bool store) {
            return proc.touch(va, store) != os::TouchResult::OutOfMemory;
        },
        sim::walkerScanLines(config.design));

    gpu::GpuParams gpu_params;
    gpu_params.numCores = config.cores;
    auto l2 = sim::makeGpuL2(config.design, &root, &proc.pageTable());
    gpu::GpuSystem gpu_system(
        gpu_params, &root,
        [&](unsigned core, stats::StatGroup *parent) {
            return sim::makeGpuCoreL1(config.design, core, parent,
                                      &proc.pageTable());
        },
        l2, source, caches);

    // Input upload: ascending first-touch through rotating cores.
    VAddr base = proc.mmap(config.footprintBytes);
    for (VAddr va = base; va < base + config.footprintBytes;
         va += PageBytes4K) {
        gpu_system.core((va >> PageShift4K) % config.cores)
            .access(va, true);
    }
    root.resetStats();

    std::vector<std::unique_ptr<workload::TraceGenerator>> gens;
    for (unsigned core = 0; core < config.cores; core++) {
        gens.push_back(workload::makeGenerator(config.kernel, base,
                                               config.footprintBytes,
                                               config.seed + core));
    }
    gpu_system.run(gens, config.refs);

    if (contracts::paranoia() >= 1) {
        contracts::AuditReport report("gpu");
        mem.audit(report);
        proc.audit(report);
        l2->audit(report);
        for (unsigned core = 0; core < config.cores; core++)
            gpu_system.core(core).l1().audit(report);
        contracts::enforce(report);
    }

    RunResult result;
    double translation_cycles = 0, l1_hits = 0, accesses = 0;
    double walks = 0, walk_accesses = 0, data_cycles = 0;
    perf::EnergyInputs energy;
    for (unsigned core = 0; core < config.cores; core++) {
        auto &hier = gpu_system.core(core);
        translation_cycles += hier.translationCycleCount();
        l1_hits += hier.l1HitCount();
        accesses += hier.accessCount();
        walks += hier.walkCount();
        walk_accesses += hier.walkAccessCount();
        auto inputs = sim::harvestEnergyInputs(root, hier,
                                               config.design, 0.0);
        energy.l1WaysRead += inputs.l1WaysRead;
        energy.l2WaysRead = inputs.l2WaysRead; // shared L2: same object
        energy.l1Entries = inputs.l1Entries;
        energy.l2Entries = inputs.l2Entries;
        energy.l1Fills += inputs.l1Fills;
        energy.l2Fills = inputs.l2Fills;
        energy.walkAccesses += inputs.walkAccesses;
        energy.walkDramAccesses += inputs.walkDramAccesses;
        energy.dirtyOps += inputs.dirtyOps;
        energy.invalidations += inputs.invalidations;
        energy.predictorLookups += inputs.predictorLookups;
        energy.skewTimestamps = inputs.skewTimestamps;
        energy.fillBurstFactor = std::min(energy.fillBurstFactor,
                                          inputs.fillBurstFactor);
    }
    result.metrics = perf::computeMetrics(
        static_cast<std::uint64_t>(accesses), translation_cycles,
        data_cycles);
    energy.totalCycles = result.metrics.totalCycles;
    result.energy = energy;
    result.l1MissRate = 1.0 - l1_hits / accesses;
    result.walksPerKref = 1000.0 * walks / accesses;
    result.accessesPerWalk = walks > 0 ? walk_accesses / walks : 0.0;
    result.distribution = os::scanDistribution(proc.pageTable());
    return result;
}

std::size_t
SweepGrid::add(std::string section, std::string label,
               BenchConfig config)
{
    jobs_.push_back(SweepJob{std::move(section), std::move(label),
                             std::move(config), nextPoint_++});
    return jobs_.size() - 1;
}

std::size_t
SweepGrid::addPaired(std::size_t paired_with, std::string section,
                     std::string label, BenchConfig config)
{
    panic_if(paired_with >= jobs_.size(),
             "addPaired references job %zu of %zu", paired_with,
             jobs_.size());
    jobs_.push_back(SweepJob{std::move(section), std::move(label),
                             std::move(config),
                             jobs_[paired_with].point});
    return jobs_.size() - 1;
}

std::uint64_t
effectiveSeed(const SweepJob &job)
{
    std::uint64_t base = std::visit(
        [](const auto &config) { return config.seed; }, job.config);
    return sim::sweepPointSeed(base, job.point);
}

RunResult
runJob(const SweepJob &job)
{
    SweepJob seeded = job;
    std::uint64_t seed = effectiveSeed(job);
    std::visit([seed](auto &config) { config.seed = seed; },
               seeded.config);
    return std::visit(
        [](const auto &config) -> RunResult {
            using Config = std::decay_t<decltype(config)>;
            if constexpr (std::is_same_v<Config, NativeRunConfig>)
                return runNative(config);
            else if constexpr (std::is_same_v<Config, VirtRunConfig>)
                return runVirt(config);
            else
                return runGpu(config);
        },
        seeded.config);
}

json::Value
configJson(const SweepJob &job)
{
    auto out = json::Value::object();
    std::visit(
        [&out](const auto &config) {
            using Config = std::decay_t<decltype(config)>;
            out["design"] = sim::designName(config.design);
            if constexpr (std::is_same_v<Config, NativeRunConfig>) {
                out["kind"] = "native";
                out["workload"] = config.workload;
                out["policy"] = os::pagePolicyName(config.policy);
                out["mem_bytes"] = config.memBytes;
                out["footprint_bytes"] = config.footprintBytes;
                out["refs"] = config.refs;
                out["memhog"] = config.memhog;
            } else if constexpr (std::is_same_v<Config,
                                                VirtRunConfig>) {
                out["kind"] = "virt";
                out["workload"] = config.workload;
                out["num_vms"] = config.numVms;
                out["host_mem_bytes"] = config.hostMemBytes;
                out["refs_per_vm"] = config.refsPerVm;
                out["guest_memhog"] = config.guestMemhog;
            } else {
                out["kind"] = "gpu";
                out["kernel"] = config.kernel;
                out["cores"] = config.cores;
                out["mem_bytes"] = config.memBytes;
                out["footprint_bytes"] = config.footprintBytes;
                out["refs"] = config.refs;
                out["memhog"] = config.memhog;
            }
        },
        job.config);
    // As a decimal string: 64-bit seeds do not survive the round trip
    // through a JSON (double) number.
    out["seed"] = std::to_string(effectiveSeed(job));
    return out;
}

json::Value
resultJson(const RunResult &result)
{
    auto out = json::Value::object();

    auto &metrics = out["metrics"];
    metrics["refs"] = result.metrics.refs;
    metrics["translation_cycles"] = result.metrics.translationCycles;
    metrics["base_cycles"] = result.metrics.baseCycles;
    metrics["overhead_cycles"] = result.metrics.overheadCycles;
    metrics["total_cycles"] = result.metrics.totalCycles;
    metrics["overhead_fraction"] = result.metrics.overheadFraction();
    metrics["l1_hit_rate"] = 1.0 - result.l1MissRate;
    metrics["l1_miss_rate"] = result.l1MissRate;
    metrics["walks_per_kref"] = result.walksPerKref;
    metrics["accesses_per_walk"] = result.accessesPerWalk;
    metrics["superpage_fraction"] =
        result.distribution.superpageFraction();

    auto &energy = out["energy"];
    energy["l1_ways_read"] = result.energy.l1WaysRead;
    energy["l2_ways_read"] = result.energy.l2WaysRead;
    energy["l1_fills"] = result.energy.l1Fills;
    energy["l2_fills"] = result.energy.l2Fills;
    energy["fill_burst_factor"] = result.energy.fillBurstFactor;
    energy["walk_accesses"] = result.energy.walkAccesses;
    energy["walk_dram_accesses"] = result.energy.walkDramAccesses;
    energy["dirty_ops"] = result.energy.dirtyOps;
    energy["invalidations"] = result.energy.invalidations;
    energy["predictor_lookups"] = result.energy.predictorLookups;
    auto breakdown = perf::EnergyModel{}.compute(result.energy);
    energy["lookup_pj"] = breakdown.lookup;
    energy["walk_pj"] = breakdown.walk;
    energy["fill_pj"] = breakdown.fill;
    energy["other_pj"] = breakdown.other;
    energy["leakage_pj"] = breakdown.leakage;
    energy["total_pj"] = breakdown.total();
    energy["pj_per_access"] =
        result.metrics.refs
            ? breakdown.total()
                  / static_cast<double>(result.metrics.refs)
            : 0.0;
    return out;
}

BenchSweep::BenchSweep(const sim::CliArgs &args, std::string benchmark)
    : runner_(sim::SweepParams{
          static_cast<unsigned>(args.getU64("jobs", 0))}),
      jsonPath_(args.getString("json", "")),
      doc_(json::Value::object())
{
    contracts::setParanoia(
        static_cast<unsigned>(args.getU64("paranoia", 0)));
    doc_["benchmark"] = std::move(benchmark);
    doc_["jobs"] = runner_.jobs();
    doc_["paranoia"] = contracts::paranoia();
    doc_["results"] = json::Value::array();
}

std::vector<RunResult>
BenchSweep::run(const SweepGrid &grid)
{
    const auto &jobs = grid.jobs();
    auto results = runner_.run<RunResult>(
        jobs.size(),
        [&jobs](std::size_t index) { return runJob(jobs[index]); });
    for (std::size_t i = 0; i < jobs.size(); i++) {
        auto record = json::Value::object();
        record["section"] = jobs[i].section;
        record["label"] = jobs[i].label;
        record["config"] = configJson(jobs[i]);
        auto blocks = resultJson(results[i]);
        record["metrics"] = blocks["metrics"];
        record["energy"] = blocks["energy"];
        doc_["results"].push(std::move(record));
    }
    return results;
}

void
BenchSweep::finish()
{
    if (jsonPath_.empty())
        return;
    if (!json::writeFile(jsonPath_, doc_))
        fatal("cannot write JSON results to %s", jsonPath_.c_str());
    inform("wrote %zu results to %s", doc_["results"].size(),
           jsonPath_.c_str());
}

} // namespace mixtlb::bench
