#include "bench_common.hh"

#include <algorithm>
#include <chrono>

#include "common/contracts.hh"
#include "common/logging.hh"
#include "gpu/gpu_system.hh"
#include "os/memhog.hh"
#include "tlb/walk_source.hh"

namespace mixtlb::bench
{

RunResult
runGpu(const GpuRunConfig &config)
{
    stats::StatGroup root(sim::designName(config.design));
    mem::PhysMem mem(config.memBytes);
    os::MemoryManager mm(mem, &root);
    os::Memhog hog(mm);
    if (config.memhog > 0)
        hog.fragment(config.memhog, config.seed);

    os::ProcessParams proc_params;
    proc_params.policy = os::PagePolicy::Thp;
    os::Process proc(mm, proc_params, &root);
    cache::CacheHierarchy caches(scaledCaches(), &root);
    tlb::NativeWalkSource source(
        proc.pageTable(), &root,
        [&](VAddr va, bool store) {
            return proc.touch(va, store) != os::TouchResult::OutOfMemory;
        },
        sim::walkerScanLines(config.design));

    gpu::GpuParams gpu_params;
    gpu_params.numCores = config.cores;
    auto l2 = sim::makeGpuL2(config.design, &root, &proc.pageTable());
    gpu::GpuSystem gpu_system(
        gpu_params, &root,
        [&](unsigned core, stats::StatGroup *parent) {
            return sim::makeGpuCoreL1(config.design, core, parent,
                                      &proc.pageTable());
        },
        l2, source, caches);

    // OS translation changes (migration, demotion, reclaim) must shoot
    // down every shader core's TLBs, or stale entries survive into the
    // differential oracle.
    proc.addInvalidateListener([&](VAddr vbase, PageSize size) {
        gpu_system.invalidatePage(vbase, size);
    });

    // Input upload: ascending first-touch through rotating cores.
    VAddr base = proc.mmap(config.footprintBytes);
    for (VAddr va = base; va < base + config.footprintBytes;
         va += PageBytes4K) {
        gpu_system.core((va >> PageShift4K) % config.cores)
            .access(va, true);
    }
    double warm_fallbacks =
        root.scalar("proc.thp_fallbacks").value();
    RunResult result;
    addLifecycleStats(root, "proc", result);
    root.resetStats();

    std::vector<std::unique_ptr<workload::TraceGenerator>> gens;
    for (unsigned core = 0; core < config.cores; core++) {
        gens.push_back(workload::makeGenerator(config.kernel, base,
                                               config.footprintBytes,
                                               config.seed + core));
    }
    gpu_system.run(gens, config.refs);

    if (contracts::paranoia() >= 1) {
        contracts::AuditReport report("gpu");
        mem.audit(report);
        proc.audit(report);
        l2->audit(report);
        for (unsigned core = 0; core < config.cores; core++)
            gpu_system.core(core).l1().audit(report);
        contracts::require(report);
    }

    result.thpFallbacks =
        warm_fallbacks + root.scalar("proc.thp_fallbacks").value();
    addLifecycleStats(root, "proc", result);
    double translation_cycles = 0, l1_hits = 0, accesses = 0;
    double walks = 0, walk_accesses = 0, data_cycles = 0;
    perf::EnergyInputs energy;
    for (unsigned core = 0; core < config.cores; core++) {
        auto &hier = gpu_system.core(core);
        translation_cycles += hier.translationCycleCount();
        l1_hits += hier.l1HitCount();
        accesses += hier.accessCount();
        walks += hier.walkCount();
        walk_accesses += hier.walkAccessCount();
        auto inputs = sim::harvestEnergyInputs(root, hier,
                                               config.design, 0.0);
        energy.l1WaysRead += inputs.l1WaysRead;
        energy.l2WaysRead = inputs.l2WaysRead; // shared L2: same object
        energy.l1Entries = inputs.l1Entries;
        energy.l2Entries = inputs.l2Entries;
        energy.l1Fills += inputs.l1Fills;
        energy.l2Fills = inputs.l2Fills;
        energy.walkAccesses += inputs.walkAccesses;
        energy.walkDramAccesses += inputs.walkDramAccesses;
        energy.dirtyOps += inputs.dirtyOps;
        energy.invalidations += inputs.invalidations;
        energy.predictorLookups += inputs.predictorLookups;
        energy.skewTimestamps = inputs.skewTimestamps;
        energy.fillBurstFactor = std::min(energy.fillBurstFactor,
                                          inputs.fillBurstFactor);
    }
    result.metrics = perf::computeMetrics(
        static_cast<std::uint64_t>(accesses), translation_cycles,
        data_cycles);
    energy.totalCycles = result.metrics.totalCycles;
    result.energy = energy;
    result.l1MissRate = 1.0 - l1_hits / accesses;
    result.walksPerKref = 1000.0 * walks / accesses;
    result.accessesPerWalk = walks > 0 ? walk_accesses / walks : 0.0;
    result.distribution = os::scanDistribution(proc.pageTable());
    return result;
}

RunResult
runMulti(const MultiRunConfig &config)
{
    sim::MultiMachineParams params;
    params.name = sim::designName(config.design);
    params.memBytes = config.memBytes;
    params.quantum = config.quantum;
    params.policy = config.policy;
    params.design = config.design;
    params.seed = config.seed;
    params.caches = scaledCaches();
    for (unsigned i = 0; i < config.numProcs; i++) {
        os::ProcessParams pp;
        pp.policy = config.procPolicy;
        params.procs.push_back(pp);
    }
    sim::MultiMachine machine(params);

    // "gups,stream" with 4 processes runs gups, stream, gups, stream.
    std::vector<std::string> workloads;
    for (std::size_t pos = 0; pos <= config.mix.size();) {
        std::size_t comma = config.mix.find(',', pos);
        if (comma == std::string::npos)
            comma = config.mix.size();
        if (comma > pos)
            workloads.push_back(config.mix.substr(pos, comma - pos));
        pos = comma + 1;
    }
    fatal_if(workloads.empty(), "empty workload mix '%s'",
             config.mix.c_str());

    std::vector<VAddr> bases;
    for (unsigned i = 0; i < config.numProcs; i++) {
        bases.push_back(
            machine.mapArena(i, config.footprintPerProc));
        machine.warmup(i, bases[i], config.footprintPerProc);
    }
    double warm_fallbacks = 0;
    RunResult result;
    for (unsigned i = 0; i < config.numProcs; i++) {
        warm_fallbacks += machine.root()
                              .scalar("proc" + std::to_string(i)
                                      + ".thp_fallbacks")
                              .value();
        addLifecycleStats(machine.root(),
                          "proc" + std::to_string(i), result);
    }
    machine.startMeasurement();
    for (unsigned i = 0; i < config.numProcs; i++) {
        machine.attachWorkload(
            i, workload::makeGenerator(
                   workloads[i % workloads.size()], bases[i],
                   config.footprintPerProc,
                   sim::sweepPointSeed(config.seed, i)));
    }
    machine.run(config.refsPerProc);

    result.thpFallbacks = warm_fallbacks;
    for (unsigned i = 0; i < config.numProcs; i++) {
        result.thpFallbacks +=
            machine.root()
                .scalar("proc" + std::to_string(i)
                        + ".thp_fallbacks")
                .value();
        addLifecycleStats(machine.root(),
                          "proc" + std::to_string(i), result);
    }
    result.metrics = machine.metrics();
    result.energy = machine.energyInputs();
    auto &hier = machine.tlbs();
    result.l1MissRate = 1.0 - hier.l1HitCount() / hier.accessCount();
    result.walksPerKref =
        1000.0 * hier.walkCount() / hier.accessCount();
    result.accessesPerWalk =
        hier.walkCount() > 0
            ? hier.walkAccessCount() / hier.walkCount()
            : 0.0;
    result.distribution = machine.distribution(0);
    for (unsigned i = 0; i < config.numProcs; i++)
        result.procL1MissRates.push_back(machine.procL1MissRate(i));
    result.contextSwitches = machine.contextSwitches();
    result.fullFlushes = machine.fullFlushes();
    return result;
}

std::size_t
SweepGrid::add(std::string section, std::string label,
               BenchConfig config)
{
    jobs_.push_back(SweepJob{std::move(section), std::move(label),
                             std::move(config), nextPoint_++});
    return jobs_.size() - 1;
}

std::size_t
SweepGrid::addPaired(std::size_t paired_with, std::string section,
                     std::string label, BenchConfig config)
{
    panic_if(paired_with >= jobs_.size(),
             "addPaired references job %zu of %zu", paired_with,
             jobs_.size());
    jobs_.push_back(SweepJob{std::move(section), std::move(label),
                             std::move(config),
                             jobs_[paired_with].point});
    return jobs_.size() - 1;
}

std::uint64_t
effectiveSeed(const SweepJob &job)
{
    std::uint64_t base = std::visit(
        [](const auto &config) { return config.seed; }, job.config);
    return sim::sweepPointSeed(base, job.point);
}

RunResult
runJob(const SweepJob &job)
{
    SweepJob seeded = job;
    std::uint64_t seed = effectiveSeed(job);
    std::visit([seed](auto &config) { config.seed = seed; },
               seeded.config);
    return std::visit(
        [](const auto &config) -> RunResult {
            using Config = std::decay_t<decltype(config)>;
            if constexpr (std::is_same_v<Config, NativeRunConfig>)
                return runNative(config);
            else if constexpr (std::is_same_v<Config, VirtRunConfig>)
                return runVirt(config);
            else if constexpr (std::is_same_v<Config, MultiRunConfig>)
                return runMulti(config);
            else
                return runGpu(config);
        },
        seeded.config);
}

json::Value
configJson(const SweepJob &job)
{
    auto out = json::Value::object();
    std::visit(
        [&out](const auto &config) {
            using Config = std::decay_t<decltype(config)>;
            out["design"] = sim::designName(config.design);
            if constexpr (std::is_same_v<Config, NativeRunConfig>) {
                out["kind"] = "native";
                out["workload"] = config.workload;
                out["policy"] = os::pagePolicyName(config.policy);
                out["mem_bytes"] = config.memBytes;
                out["footprint_bytes"] = config.footprintBytes;
                out["refs"] = config.refs;
                out["memhog"] = config.memhog;
            } else if constexpr (std::is_same_v<Config,
                                                VirtRunConfig>) {
                out["kind"] = "virt";
                out["workload"] = config.workload;
                out["num_vms"] = config.numVms;
                out["host_mem_bytes"] = config.hostMemBytes;
                out["refs_per_vm"] = config.refsPerVm;
                out["guest_memhog"] = config.guestMemhog;
            } else if constexpr (std::is_same_v<Config,
                                                MultiRunConfig>) {
                out["kind"] = "multi";
                out["policy"] = sim::switchPolicyName(config.policy);
                out["num_procs"] = config.numProcs;
                out["quantum"] = config.quantum;
                out["mix"] = config.mix;
                out["mem_bytes"] = config.memBytes;
                out["footprint_per_proc"] = config.footprintPerProc;
                out["refs_per_proc"] = config.refsPerProc;
            } else {
                out["kind"] = "gpu";
                out["kernel"] = config.kernel;
                out["cores"] = config.cores;
                out["mem_bytes"] = config.memBytes;
                out["footprint_bytes"] = config.footprintBytes;
                out["refs"] = config.refs;
                out["memhog"] = config.memhog;
            }
        },
        job.config);
    // As a decimal string: 64-bit seeds do not survive the round trip
    // through a JSON (double) number.
    out["seed"] = std::to_string(effectiveSeed(job));
    return out;
}

json::Value
resultJson(const RunResult &result)
{
    auto out = json::Value::object();

    auto &metrics = out["metrics"];
    metrics["refs"] = result.metrics.refs;
    metrics["translation_cycles"] = result.metrics.translationCycles;
    metrics["base_cycles"] = result.metrics.baseCycles;
    metrics["overhead_cycles"] = result.metrics.overheadCycles;
    metrics["total_cycles"] = result.metrics.totalCycles;
    metrics["overhead_fraction"] = result.metrics.overheadFraction();
    metrics["l1_hit_rate"] = 1.0 - result.l1MissRate;
    metrics["l1_miss_rate"] = result.l1MissRate;
    metrics["walks_per_kref"] = result.walksPerKref;
    metrics["accesses_per_walk"] = result.accessesPerWalk;
    metrics["superpage_fraction"] =
        result.distribution.superpageFraction();
    metrics["thp_fallbacks"] = result.thpFallbacks;
    metrics["demotions"] = result.demotions;
    metrics["reclaims"] = result.reclaims;
    metrics["repromotions"] = result.repromotions;
    metrics["oom_retries"] = result.oomRetries;
    metrics["demote_rescues"] = result.demoteRescues;
    metrics["compaction_rescues"] = result.compactionRescues;

    auto &energy = out["energy"];
    energy["l1_ways_read"] = result.energy.l1WaysRead;
    energy["l2_ways_read"] = result.energy.l2WaysRead;
    energy["l1_entries"] = result.energy.l1Entries;
    energy["l2_entries"] = result.energy.l2Entries;
    energy["l1_fills"] = result.energy.l1Fills;
    energy["l2_fills"] = result.energy.l2Fills;
    energy["fill_burst_factor"] = result.energy.fillBurstFactor;
    energy["walk_accesses"] = result.energy.walkAccesses;
    energy["walk_dram_accesses"] = result.energy.walkDramAccesses;
    energy["dirty_ops"] = result.energy.dirtyOps;
    energy["invalidations"] = result.energy.invalidations;
    energy["predictor_lookups"] = result.energy.predictorLookups;
    energy["skew_timestamps"] = result.energy.skewTimestamps;
    energy["total_cycles"] = result.energy.totalCycles;
    auto breakdown = perf::EnergyModel{}.compute(result.energy);
    energy["lookup_pj"] = breakdown.lookup;
    energy["walk_pj"] = breakdown.walk;
    energy["fill_pj"] = breakdown.fill;
    energy["other_pj"] = breakdown.other;
    energy["leakage_pj"] = breakdown.leakage;
    energy["total_pj"] = breakdown.total();
    energy["pj_per_access"] =
        result.metrics.refs
            ? breakdown.total()
                  / static_cast<double>(result.metrics.refs)
            : 0.0;

    auto &distribution = out["distribution"];
    distribution["bytes_4k"] = result.distribution.bytes4k;
    distribution["bytes_2m"] = result.distribution.bytes2m;
    distribution["bytes_1g"] = result.distribution.bytes1g;

    if (!result.procL1MissRates.empty()) {
        auto &multi = out["multi"];
        multi["context_switches"] = result.contextSwitches;
        multi["full_flushes"] = result.fullFlushes;
        auto rates = json::Value::array();
        for (double rate : result.procL1MissRates)
            rates.push(rate);
        multi["proc_l1_miss_rates"] = std::move(rates);
    }
    return out;
}

namespace
{

double
numberAt(const json::Value &object, const char *key)
{
    const json::Value *value = object.find(key);
    return value ? value->number() : 0.0;
}

} // anonymous namespace

RunResult
resultFromJson(const json::Value &record)
{
    RunResult result;
    const json::Value *metrics = record.find("metrics");
    if (metrics) {
        result.metrics.refs = static_cast<std::uint64_t>(
            numberAt(*metrics, "refs"));
        result.metrics.translationCycles =
            numberAt(*metrics, "translation_cycles");
        result.metrics.baseCycles = numberAt(*metrics, "base_cycles");
        result.metrics.overheadCycles =
            numberAt(*metrics, "overhead_cycles");
        result.metrics.totalCycles = numberAt(*metrics, "total_cycles");
        result.l1MissRate = numberAt(*metrics, "l1_miss_rate");
        result.walksPerKref = numberAt(*metrics, "walks_per_kref");
        result.accessesPerWalk =
            numberAt(*metrics, "accesses_per_walk");
        result.thpFallbacks = numberAt(*metrics, "thp_fallbacks");
        result.demotions = numberAt(*metrics, "demotions");
        result.reclaims = numberAt(*metrics, "reclaims");
        result.repromotions = numberAt(*metrics, "repromotions");
        result.oomRetries = numberAt(*metrics, "oom_retries");
        result.demoteRescues = numberAt(*metrics, "demote_rescues");
        result.compactionRescues =
            numberAt(*metrics, "compaction_rescues");
    }
    const json::Value *energy = record.find("energy");
    if (energy) {
        result.energy.l1WaysRead = numberAt(*energy, "l1_ways_read");
        result.energy.l2WaysRead = numberAt(*energy, "l2_ways_read");
        result.energy.l1Entries = static_cast<std::uint64_t>(
            numberAt(*energy, "l1_entries"));
        result.energy.l2Entries = static_cast<std::uint64_t>(
            numberAt(*energy, "l2_entries"));
        result.energy.l1Fills = numberAt(*energy, "l1_fills");
        result.energy.l2Fills = numberAt(*energy, "l2_fills");
        result.energy.fillBurstFactor =
            numberAt(*energy, "fill_burst_factor");
        result.energy.walkAccesses = numberAt(*energy, "walk_accesses");
        result.energy.walkDramAccesses =
            numberAt(*energy, "walk_dram_accesses");
        result.energy.dirtyOps = numberAt(*energy, "dirty_ops");
        result.energy.invalidations =
            numberAt(*energy, "invalidations");
        result.energy.predictorLookups =
            numberAt(*energy, "predictor_lookups");
        const json::Value *skew = energy->find("skew_timestamps");
        result.energy.skewTimestamps = skew && skew->boolean();
        result.energy.totalCycles = numberAt(*energy, "total_cycles");
    }
    const json::Value *multi = record.find("multi");
    if (multi) {
        result.contextSwitches = numberAt(*multi, "context_switches");
        result.fullFlushes = numberAt(*multi, "full_flushes");
        if (const json::Value *rates =
                multi->find("proc_l1_miss_rates")) {
            for (const auto &[key, rate] : rates->members()) {
                (void)key;
                result.procL1MissRates.push_back(rate.number());
            }
        }
    }
    const json::Value *distribution = record.find("distribution");
    if (distribution) {
        result.distribution.bytes4k = static_cast<std::uint64_t>(
            numberAt(*distribution, "bytes_4k"));
        result.distribution.bytes2m = static_cast<std::uint64_t>(
            numberAt(*distribution, "bytes_2m"));
        result.distribution.bytes1g = static_cast<std::uint64_t>(
            numberAt(*distribution, "bytes_1g"));
    }
    return result;
}

namespace
{

sim::SweepParams
sweepParamsFromArgs(const sim::CliArgs &args)
{
    sim::SweepParams params;
    params.jobs = static_cast<unsigned>(args.getU64("jobs", 0));
    params.retries = static_cast<unsigned>(args.getU64("retries", 1));
    params.deadlineSeconds = args.getDouble("deadline", 0.0);
    params.faults =
        fault::FaultConfig::parse(args.getString("inject", ""));
    // Sugar for the pressure-lifecycle soak: `--demote-storm R` merges
    // a demote-storm rate into the injection config without the full
    // `--inject` syntax (and composes with it; the explicit flag wins).
    double storm = args.getDouble("demote-storm", 0.0);
    if (storm > 0.0) {
        auto &site = params.faults
                         .sites[static_cast<std::size_t>(
                             fault::Site::DemoteStorm)];
        site.rate = storm;
        site.pointLimited = false;
    }
    return params;
}

/** The full per-point record stored in the report and checkpoint. */
json::Value
makeRecord(const SweepJob &job, const RunResult &result,
           const sim::PointStatus &status, bool injecting)
{
    auto record = json::Value::object();
    record["section"] = job.section;
    record["label"] = job.label;
    record["config"] = configJson(job);
    record["status"] = status.ok ? "ok" : "failed";
    record["attempts"] = status.attempts;
    if (status.ok) {
        auto blocks = resultJson(result);
        record["metrics"] = blocks["metrics"];
        record["energy"] = blocks["energy"];
        record["distribution"] = blocks["distribution"];
        if (const json::Value *multi = blocks.find("multi"))
            record["multi"] = *multi;
    } else {
        auto &error = record["error"];
        error["kind"] = status.errorKind;
        error["message"] = status.errorMessage;
    }
    if (injecting) {
        auto &faults = record["faults"];
        for (std::size_t s = 0; s < fault::SiteCount; s++) {
            faults[fault::siteName(static_cast<fault::Site>(s))] =
                status.faults[s];
        }
    }
    return record;
}

} // anonymous namespace

BenchSweep::BenchSweep(const sim::CliArgs &args, std::string benchmark)
    : runner_(sweepParamsFromArgs(args)),
      jsonPath_(args.getString("json", "")),
      allowFailures_(args.has("allow-failures")),
      timing_(!args.has("no-timing")),
      doc_(json::Value::object())
{
    contracts::setParanoia(
        static_cast<unsigned>(args.getU64("paranoia", 0)));

    std::string inject = args.getString("inject", "");
    double storm = args.getDouble("demote-storm", 0.0);
    injecting_ = !inject.empty() || storm > 0.0;

    doc_["benchmark"] = std::move(benchmark);
    doc_["jobs"] = runner_.jobs();
    doc_["paranoia"] = contracts::paranoia();
    doc_["retries"] = args.getU64("retries", 1);
    if (!inject.empty())
        doc_["inject"] = inject;
    if (storm > 0.0)
        doc_["demote_storm"] = storm;
    doc_["results"] = json::Value::array();
    doc_["failures"] = json::Value::array();

    // Checkpointing: on by default whenever a JSON report is requested
    // (the journal rides alongside it); `--resume` points at a prior
    // run's journal and keeps appending to it.
    std::string resume = args.getString("resume", "");
    checkpointPath_ = args.getString(
        "checkpoint", jsonPath_.empty() ? "" : jsonPath_ + ".ckpt");
    if (!resume.empty()) {
        loadCheckpoint(resume);
        checkpointPath_ = resume;
    }
    if (!checkpointPath_.empty()) {
        checkpoint_ = std::fopen(checkpointPath_.c_str(),
                                 resume.empty() ? "w" : "a");
        fatal_if(!checkpoint_, "cannot open checkpoint '%s'",
                 checkpointPath_.c_str());
    }
}

BenchSweep::~BenchSweep()
{
    if (checkpoint_)
        std::fclose(checkpoint_);
}

void
BenchSweep::loadCheckpoint(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    fatal_if(!file, "cannot read resume checkpoint '%s'", path.c_str());
    std::string content;
    char buffer[4096];
    std::size_t got;
    while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
        content.append(buffer, got);
    std::fclose(file);

    std::size_t pos = 0;
    while (pos < content.size()) {
        std::size_t newline = content.find('\n', pos);
        std::string line =
            newline == std::string::npos
                ? content.substr(pos)
                : content.substr(pos, newline - pos);
        pos = newline == std::string::npos ? content.size()
                                           : newline + 1;
        if (line.empty())
            continue;
        auto parsed = json::Value::parse(line);
        if (!parsed) {
            // A SIGKILL mid-append leaves a truncated final line; the
            // undamaged prefix is still a valid resume point.
            warn("checkpoint '%s': discarding a truncated trailing "
                 "line",
                 path.c_str());
            break;
        }
        const json::Value *index = parsed->find("i");
        const json::Value *record = parsed->find("record");
        fatal_if(!index || !index->isNumber() || !record,
                 "checkpoint '%s' is not a mixtlb sweep journal",
                 path.c_str());
        resumed_[static_cast<std::size_t>(index->number())] = *record;
    }
    inform("resume: %zu completed points loaded from %s",
           resumed_.size(), path.c_str());
}

void
BenchSweep::appendCheckpoint(std::size_t global_index,
                             const json::Value &record)
{
    if (!checkpoint_)
        return;
    auto line = json::Value::object();
    line["i"] = static_cast<std::uint64_t>(global_index);
    line["record"] = record;
    std::string text = line.dump(0);
    text += '\n';
    std::lock_guard<std::mutex> lock(checkpointMutex_);
    std::fwrite(text.data(), 1, text.size(), checkpoint_);
    // One flushed line per completed point: a kill at any moment
    // loses at most the in-flight point.
    std::fflush(checkpoint_);
}

std::vector<RunResult>
BenchSweep::run(const SweepGrid &grid)
{
    const auto &jobs = grid.jobs();
    const std::size_t base = globalIndex_;
    globalIndex_ += jobs.size();

    std::vector<json::Value> records(jobs.size());
    std::vector<sim::PointStatus> statuses;
    // Wall-clock per point (the final attempt when retried). Kept out
    // of the modeled statistics: it annotates the report only, and
    // `--no-timing` drops it for byte-stable golden comparisons.
    std::vector<double> wallSeconds(jobs.size(), 0.0);
    auto results = runner_.runChecked<RunResult>(
        jobs.size(),
        [&jobs, &wallSeconds](std::size_t i) {
            auto start = std::chrono::steady_clock::now();
            RunResult result = runJob(jobs[i]);
            wallSeconds[i] =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            return result;
        },
        [&jobs](std::size_t i) { return effectiveSeed(jobs[i]); },
        statuses,
        [this, base](std::size_t i) {
            return resumed_.count(base + i) != 0;
        },
        [&](std::size_t i, const RunResult &result,
            const sim::PointStatus &status) {
            if (!status.ran)
                return;
            records[i] = makeRecord(jobs[i], result, status,
                                    injecting_);
            if (timing_ && status.ok) {
                auto &timing = records[i]["timing"];
                timing["wall_seconds"] = wallSeconds[i];
                timing["refs_per_sec"] =
                    wallSeconds[i] > 0
                        ? static_cast<double>(result.metrics.refs)
                              / wallSeconds[i]
                        : 0.0;
            }
            appendCheckpoint(base + i, records[i]);
        });

    for (std::size_t i = 0; i < jobs.size(); i++) {
        if (!statuses[i].ran) {
            // Restored from the checkpoint: the stored record is
            // reused verbatim, so a resumed report is bit-identical
            // to an uninterrupted one — but first prove the journal
            // belongs to *this* sweep.
            const json::Value &stored = resumed_.at(base + i);
            const json::Value *label = stored.find("label");
            fatal_if(!label || label->str() != jobs[i].label,
                     "resume checkpoint does not match this sweep "
                     "(point %zu is '%s', expected '%s')",
                     base + i,
                     label ? label->str().c_str() : "<missing>",
                     jobs[i].label.c_str());
            const json::Value *config = stored.find("config");
            fatal_if(!config || config->dump(0)
                                    != configJson(jobs[i]).dump(0),
                     "resume checkpoint config mismatch at point %zu "
                     "('%s')",
                     base + i, jobs[i].label.c_str());
            records[i] = stored;
            results[i] = resultFromJson(stored);
        }

        const json::Value *state = records[i].find("status");
        const bool ok = state && state->str() == "ok";
        if (!ok) {
            failures_++;
            auto failure = json::Value::object();
            failure["index"] = static_cast<std::uint64_t>(base + i);
            failure["section"] = jobs[i].section;
            failure["label"] = jobs[i].label;
            const json::Value *error = records[i].find("error");
            if (error)
                failure["error"] = *error;
            const json::Value *attempts = records[i].find("attempts");
            if (attempts)
                failure["attempts"] = *attempts;
            doc_["failures"].push(std::move(failure));

            const json::Value *kind =
                error ? error->find("kind") : nullptr;
            warn("sweep point %zu (%s/%s) quarantined: %s",
                 base + i, jobs[i].section.c_str(),
                 jobs[i].label.c_str(),
                 kind ? kind->str().c_str() : "unknown");
        }
        doc_["results"].push(records[i]);
    }
    return results;
}

int
BenchSweep::finish()
{
    if (checkpoint_) {
        std::fclose(checkpoint_);
        checkpoint_ = nullptr;
    }
    if (failures_ > 0) {
        warn("%zu of %zu sweep points quarantined (see the report's "
             "\"failures\" block)",
             failures_, globalIndex_);
    }
    if (!jsonPath_.empty()) {
        if (!json::writeFile(jsonPath_, doc_))
            fatal("cannot write JSON results to %s", jsonPath_.c_str());
        inform("wrote %zu results to %s", doc_["results"].size(),
               jsonPath_.c_str());
    }
    return failures_ == 0 || allowFailures_ ? 0 : 1;
}

} // namespace mixtlb::bench
