/**
 * @file
 * Figure 9: fraction of the memory footprint backed by superpages as
 * memhog fragments a growing share of physical memory, for the
 * Spec+Parsec class, the big-memory class, and GPU workloads.
 *
 * The paper's three regimes to reproduce:
 *  - moderate fragmentation (<=40%): superpages dominate (80%+);
 *  - heavy fragmentation (~60%): neither size dominates;
 *  - severe fragmentation (80%+): small pages dominate.
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

namespace
{

/** Distribution after a first-touch sweep under memhog pressure. */
double
superpageFraction(double memhog, std::uint64_t mem_bytes,
                  std::uint64_t seed)
{
    MachineParams params;
    params.name = "dist";
    params.memBytes = mem_bytes;
    params.design = TlbDesign::Split; // irrelevant: no TLB replay
    params.proc.policy = os::PagePolicy::Thp;
    params.memhogFraction = memhog;
    params.seed = seed;
    Machine machine(params);
    std::uint64_t footprint = pressureFootprint(mem_bytes, memhog);
    VAddr base = machine.mapArena(footprint);
    machine.touchSequential(base, footprint);
    return machine.distribution().superpageFraction();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t mem = args.getU64("mem-mb", 4096) << 20;

    std::printf("=== Figure 9: fraction of footprint backed by "
                "superpages vs memhog ===\n\n");

    Table table({"memhog%", "Spec+Parsec", "big-memory", "GPU"});
    for (double memhog : {0.0, 0.2, 0.4, 0.6, 0.8}) {
        // The classes differ in allocation seed/session, standing in
        // for the per-class averages of the paper (each class shows
        // the same three regimes).
        double spec = superpageFraction(memhog, mem, 11);
        double bigmem = superpageFraction(memhog, mem, 23);
        double gpu = superpageFraction(memhog, mem, 37);
        table.addRow({Table::fmt(memhog * 100, 0), Table::fmt(spec),
                      Table::fmt(bigmem), Table::fmt(gpu)});
    }
    table.print();
    std::printf("\nPaper shape: >0.8 up to memhog 40%%, roughly even "
                "at 60%%, small pages\ndominate at 80%%+.\n");
    return 0;
}
