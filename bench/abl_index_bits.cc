/**
 * @file
 * Sec. 3's design question: why index with the *small-page* bits?
 * The alternative — superpage index bits — eliminates mirrors but
 * makes groups of 512 adjacent 4KB pages collide in one set. The
 * paper measured 4-8x more TLB misses on average; this ablation
 * reproduces the comparison on 4KB-heavy runs.
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);

    std::printf("=== Ablation: small-page vs superpage index bits "
                "===\n\n");

    Table table({"workload", "small-idx L1 miss%", "super-idx L1 miss%",
                 "miss ratio"});
    double ratio_sum = 0;
    unsigned count = 0;
    for (const auto &workload : std::vector<std::string>{
             "btree", "memcached", "graph500", "xalancbmk"}) {
        NativeRunConfig config;
        config.workload = workload;
        config.policy = os::PagePolicy::SmallOnly;
        config.footprintBytes = 1 * GiB;
        config.refs = refs;

        config.design = TlbDesign::Mix;
        auto normal = runNative(config);
        config.design = TlbDesign::MixSuperIndex;
        auto ablated = runNative(config);

        double ratio = normal.l1MissRate > 0
                           ? ablated.l1MissRate / normal.l1MissRate
                           : 0.0;
        ratio_sum += ratio;
        count++;
        table.addRow({workload, Table::fmt(100 * normal.l1MissRate),
                      Table::fmt(100 * ablated.l1MissRate),
                      Table::fmt(ratio, 1)});
    }
    table.print();
    std::printf("\naverage miss ratio: %.1fx (paper: 4-8x on average; "
                "the ratio is extremely\nworkload-dependent — "
                "interleaved hot pages within one 2MB region explode, "
                "\nfootprints beyond both designs' reach are "
                "insensitive)\n",
                ratio_sum / count);
    return 0;
}
