/**
 * @file
 * Figure 1: percentage of runtime devoted to address translation for
 * mcf, graph500, and memcached when the OS allocates only 4KB, only
 * 2MB, only 1GB, or mixed (THS) pages — on the commercial split-TLB
 * configuration (green bars) versus the hypothetical ideal
 * set-associative TLB that supports all page sizes (blue bars).
 *
 * The paper's headline observations to reproduce:
 *  - 4KB-only translation overhead is large (tens of percent);
 *  - superpages help but overhead remains visible on split TLBs;
 *  - the gap to the ideal TLB is the opportunity MIX TLBs target.
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 120000);
    const std::uint64_t fp4k = args.getU64("footprint-4k-mb", 2048)
                               << 20;
    const std::uint64_t fp = args.getU64("footprint-mb", 4096) << 20;

    std::printf("=== Figure 1: %% runtime in address translation, "
                "split TLB (vs ideal) ===\n\n");

    Table table({"workload", "policy", "split overhead%",
                 "ideal overhead%", "gap (potential)%"});

    for (const char *workload : {"mcf", "graph500", "memcached"}) {
        struct PolicyCase
        {
            const char *name;
            os::PagePolicy policy;
            std::uint64_t footprint;
        };
        const PolicyCase cases[] = {
            {"4KB", os::PagePolicy::SmallOnly, fp4k},
            {"2MB", os::PagePolicy::Huge2M, fp},
            // Paper-scale 1GB run: more 1GB pages than split's 4+32
            // dedicated entries.
            {"1GB", os::PagePolicy::Huge1G, 48ULL << 30},
            {"mixed (THS)", os::PagePolicy::Thp, fp},
        };
        for (const auto &policy_case : cases) {
            NativeRunConfig config;
            config.workload = workload;
            config.policy = policy_case.policy;
            config.footprintBytes = policy_case.footprint;
            config.refs = refs;
            config.pool2m = policy_case.policy == os::PagePolicy::Huge2M
                                ? policy_case.footprint / PageBytes2M
                                : 0;
            if (policy_case.policy == os::PagePolicy::Huge1G) {
                config.pool1g = policy_case.footprint / PageBytes1G;
                config.memBytes = 64ULL << 30;
                config.warmStep = PageBytes2M;
            }

            config.design = TlbDesign::Split;
            auto split = runNative(config);
            config.design = TlbDesign::Ideal;
            auto ideal = runNative(config);

            double split_pct = 100 * split.metrics.overheadFraction();
            double ideal_pct = 100 * ideal.metrics.overheadFraction();
            table.addRow({workload, policy_case.name,
                          Table::fmt(split_pct), Table::fmt(ideal_pct),
                          Table::fmt(split_pct - ideal_pct)});
        }
    }
    table.print();
    std::printf("\nPaper shape: tall green (split) bars even with "
                "superpages; blue (ideal) near\nzero — the gap is the "
                "utilization loss of split TLBs.\n");
    return 0;
}
