/**
 * @file
 * Figure 12: CDF of superpage contiguity for native CPU workloads as
 * memhog varies. Point (x, y): fraction y of superpage translations
 * live in runs of length <= x.
 *
 * Shape to reproduce: low fragmentation pushes mass far right (most
 * translations in long runs); higher memhog moves the curve left but
 * considerable contiguity remains.
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t mem = args.getU64("mem-mb", 8192) << 20;

    std::printf("=== Figure 12: superpage contiguity CDF, native CPU "
                "===\n\n");

    Table table({"memhog%", "x=1", "x=8", "x=16", "x=32", "x=64",
                 "x=128"});
    for (double memhog : {0.2, 0.4, 0.6}) {
        MachineParams params;
        params.name = "cdf";
        params.memBytes = mem;
        params.proc.policy = os::PagePolicy::Thp;
        params.memhogFraction = memhog;
        Machine machine(params);
        std::uint64_t footprint = pressureFootprint(mem, memhog);
        VAddr base = machine.mapArena(footprint);
        machine.touchSequential(base, footprint);

        auto runs = machine.contiguityRuns(PageSize::Size2M);
        auto cdf = os::contiguityCdf(runs);
        auto at = [&](std::uint64_t x) {
            double y = 0;
            for (auto [len, frac] : cdf) {
                if (len <= x)
                    y = frac;
            }
            return y;
        };
        table.addRow({Table::fmt(memhog * 100, 0), Table::fmt(at(1)),
                      Table::fmt(at(8)), Table::fmt(at(16)),
                      Table::fmt(at(32)), Table::fmt(at(64)),
                      Table::fmt(at(128))});
    }
    table.print();
    std::printf("\nPaper shape: curves rise late (most translations in "
                "long runs) at low memhog;\nfragmentation shifts mass "
                "toward shorter runs.\n");
    return 0;
}
