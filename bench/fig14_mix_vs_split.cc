/**
 * @file
 * Figure 14: percent performance improvement of area-equivalent MIX
 * TLBs over Haswell-style split TLBs, across:
 *  - native CPU with 4KB-only, 2MB (libhugetlbfs), 1GB (libhugetlbfs),
 *    and THS page-size policies;
 *  - virtualized CPU with 1 VM and with 4 consolidated VMs;
 *  - GPU workloads.
 *
 * Shape to reproduce: MIX never loses; gains grow when superpages are
 * prevalent, and are largest where misses are most expensive
 * (virtualized 2-D walks, GPU miss storms).
 *
 * The whole figure is one declarative grid executed by the sweep
 * runner: pass `--jobs N` to run configurations concurrently (the
 * table is identical for every N) and `--json <path>` to dump
 * per-configuration metrics + energy for the perf trajectory.
 */

#include <array>

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);
    const std::uint64_t fp = args.getU64("footprint-mb", 4096) << 20;
    const std::uint64_t fp4k = args.getU64("footprint-4k-mb", 2048)
                               << 20;

    struct Pair
    {
        std::size_t split = 0;
        std::size_t mix = 0;
    };

    SweepGrid grid;
    auto add_pair = [&grid](const std::string &section,
                            const std::string &label,
                            BenchConfig config) {
        Pair pair;
        std::visit([](auto &c) { c.design = TlbDesign::Split; },
                   config);
        pair.split = grid.add(section, label + "/split", config);
        std::visit([](auto &c) { c.design = TlbDesign::Mix; }, config);
        pair.mix = grid.addPaired(pair.split, section, label + "/mix",
                                  config);
        return pair;
    };

    // --- native CPU: workloads x page-size policies ---
    const std::vector<std::string> workloads = {"mcf", "graph500",
                                                "memcached", "gups"};
    struct PolicyCase
    {
        const char *name;
        os::PagePolicy policy;
        std::uint64_t footprint;
    };
    // The 1GB policy needs a paper-scale footprint: more 1GB
    // pages (48) than the split design's 4+32 dedicated entries.
    const std::uint64_t fp1g = 48 * GiB;
    const PolicyCase cases[] = {
        {"4KB", os::PagePolicy::SmallOnly, fp4k},
        {"2MB", os::PagePolicy::Huge2M, fp},
        {"1GB", os::PagePolicy::Huge1G, fp1g},
        {"THS", os::PagePolicy::Thp, fp},
    };
    std::vector<std::array<Pair, 4>> native_cells;
    for (const auto &workload : workloads) {
        std::array<Pair, 4> row;
        for (unsigned c = 0; c < 4; c++) {
            NativeRunConfig config;
            config.workload = workload;
            config.policy = cases[c].policy;
            config.footprintBytes = cases[c].footprint;
            config.refs = refs;
            config.pool2m = cases[c].policy == os::PagePolicy::Huge2M
                                ? cases[c].footprint / PageBytes2M
                                : 0;
            if (cases[c].policy == os::PagePolicy::Huge1G) {
                config.pool1g = cases[c].footprint / PageBytes1G;
                config.memBytes = 64 * GiB;
                config.warmStep = PageBytes2M;
            }
            row[c] = add_pair("native",
                              workload + "/" + cases[c].name, config);
        }
        native_cells.push_back(row);
    }

    // --- virtualized CPU: workloads x consolidation levels ---
    const std::vector<std::string> virt_workloads = {"memcached",
                                                     "graph500"};
    std::vector<std::array<Pair, 2>> virt_cells;
    for (const auto &workload : virt_workloads) {
        std::array<Pair, 2> row;
        unsigned c = 0;
        for (unsigned vms : {1u, 4u}) {
            VirtRunConfig config;
            config.workload = workload;
            config.numVms = vms;
            config.refsPerVm = refs / vms;
            row[c++] = add_pair("virt",
                                workload + "/" + std::to_string(vms)
                                    + "vm",
                                config);
        }
        virt_cells.push_back(row);
    }

    // --- GPU kernels ---
    const std::vector<std::string> kernels = {"bfs", "backprop",
                                              "kmeans"};
    std::vector<Pair> gpu_cells;
    for (const auto &kernel : kernels) {
        GpuRunConfig config;
        config.kernel = kernel;
        config.refs = refs;
        gpu_cells.push_back(add_pair("gpu", kernel, config));
    }

    BenchSweep sweep(args, "fig14_mix_vs_split");
    auto results = sweep.run(grid);

    std::printf("=== Figure 14: %% performance improvement, MIX vs "
                "split ===\n\n--- native CPU ---\n");
    Table native({"workload", "4KB", "2MB", "1GB", "THS"});
    std::vector<double> avgs(4, 0.0);
    for (std::size_t w = 0; w < workloads.size(); w++) {
        std::vector<std::string> row{workloads[w]};
        for (unsigned c = 0; c < 4; c++) {
            const Pair &pair = native_cells[w][c];
            double imp = improvement(results[pair.split],
                                     results[pair.mix]);
            avgs[c] += imp / static_cast<double>(workloads.size());
            row.push_back(Table::fmt(imp));
        }
        native.addRow(row);
    }
    native.addRow({"average", Table::fmt(avgs[0]), Table::fmt(avgs[1]),
                   Table::fmt(avgs[2]), Table::fmt(avgs[3])});
    native.print();

    std::printf("\n--- virtualized CPU (gVA->sPA via 2-D walks) "
                "---\n");
    Table virt({"workload", "1 VM", "4 VMs"});
    for (std::size_t w = 0; w < virt_workloads.size(); w++) {
        std::vector<std::string> row{virt_workloads[w]};
        for (unsigned c = 0; c < 2; c++) {
            const Pair &pair = virt_cells[w][c];
            row.push_back(Table::fmt(improvement(results[pair.split],
                                                 results[pair.mix])));
        }
        virt.addRow(row);
    }
    virt.print();

    std::printf("\n--- GPU (16 shader cores, shared L2 TLB) ---\n");
    Table gpu({"kernel", "improvement%", "split L1 miss%",
               "mix L1 miss%"});
    for (std::size_t k = 0; k < kernels.size(); k++) {
        const Pair &pair = gpu_cells[k];
        gpu.addRow({kernels[k],
                    Table::fmt(improvement(results[pair.split],
                                           results[pair.mix])),
                    Table::fmt(100 * results[pair.split].l1MissRate),
                    Table::fmt(100 * results[pair.mix].l1MissRate)});
    }
    gpu.print();

    std::printf("\nPaper shape: MIX wins everywhere; virtualized and "
                "GPU columns show the\nlargest factors because each "
                "avoided miss saves the most cycles there.\n");
    return sweep.finish();
}
