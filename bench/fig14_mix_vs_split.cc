/**
 * @file
 * Figure 14: percent performance improvement of area-equivalent MIX
 * TLBs over Haswell-style split TLBs, across:
 *  - native CPU with 4KB-only, 2MB (libhugetlbfs), 1GB (libhugetlbfs),
 *    and THS page-size policies;
 *  - virtualized CPU with 1 VM and with 4 consolidated VMs;
 *  - GPU workloads.
 *
 * Shape to reproduce: MIX never loses; gains grow when superpages are
 * prevalent, and are largest where misses are most expensive
 * (virtualized 2-D walks, GPU miss storms).
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);
    const std::uint64_t fp = args.getU64("footprint-mb", 4096) << 20;
    const std::uint64_t fp4k = args.getU64("footprint-4k-mb", 2048)
                               << 20;

    std::printf("=== Figure 14: %% performance improvement, MIX vs "
                "split ===\n\n--- native CPU ---\n");

    const std::vector<std::string> workloads = {"mcf", "graph500",
                                                "memcached", "gups"};
    Table native({"workload", "4KB", "2MB", "1GB", "THS"});
    std::vector<double> avgs(4, 0.0);
    for (const auto &workload : workloads) {
        std::vector<std::string> row{workload};
        struct PolicyCase
        {
            os::PagePolicy policy;
            std::uint64_t footprint;
        };
        // The 1GB policy needs a paper-scale footprint: more 1GB
        // pages (48) than the split design's 4+32 dedicated entries.
        const std::uint64_t fp1g = 48 * GiB;
        const PolicyCase cases[] = {
            {os::PagePolicy::SmallOnly, fp4k},
            {os::PagePolicy::Huge2M, fp},
            {os::PagePolicy::Huge1G, fp1g},
            {os::PagePolicy::Thp, fp},
        };
        for (unsigned c = 0; c < 4; c++) {
            NativeRunConfig config;
            config.workload = workload;
            config.policy = cases[c].policy;
            config.footprintBytes = cases[c].footprint;
            config.refs = refs;
            config.pool2m = cases[c].policy == os::PagePolicy::Huge2M
                                ? cases[c].footprint / PageBytes2M
                                : 0;
            if (cases[c].policy == os::PagePolicy::Huge1G) {
                config.pool1g = cases[c].footprint / PageBytes1G;
                config.memBytes = 64 * GiB;
                config.warmStep = PageBytes2M;
            }
            config.design = TlbDesign::Split;
            auto split = runNative(config);
            config.design = TlbDesign::Mix;
            auto mix = runNative(config);
            double imp = improvement(split, mix);
            avgs[c] += imp / workloads.size();
            row.push_back(Table::fmt(imp));
        }
        native.addRow(row);
    }
    native.addRow({"average", Table::fmt(avgs[0]), Table::fmt(avgs[1]),
                   Table::fmt(avgs[2]), Table::fmt(avgs[3])});
    native.print();

    std::printf("\n--- virtualized CPU (gVA->sPA via 2-D walks) "
                "---\n");
    Table virt({"workload", "1 VM", "4 VMs"});
    for (const auto &workload :
         std::vector<std::string>{"memcached", "graph500"}) {
        std::vector<std::string> row{workload};
        for (unsigned vms : {1u, 4u}) {
            VirtRunConfig config;
            config.workload = workload;
            config.numVms = vms;
            config.refsPerVm = refs / vms;
            config.design = TlbDesign::Split;
            auto split = runVirt(config);
            config.design = TlbDesign::Mix;
            auto mix = runVirt(config);
            row.push_back(Table::fmt(improvement(split, mix)));
        }
        virt.addRow(row);
    }
    virt.print();

    std::printf("\n--- GPU (16 shader cores, shared L2 TLB) ---\n");
    Table gpu({"kernel", "improvement%", "split L1 miss%",
               "mix L1 miss%"});
    for (const auto &kernel :
         std::vector<std::string>{"bfs", "backprop", "kmeans"}) {
        GpuRunConfig config;
        config.kernel = kernel;
        config.refs = refs;
        config.design = TlbDesign::Split;
        auto split = runGpu(config);
        config.design = TlbDesign::Mix;
        auto mix = runGpu(config);
        gpu.addRow({kernel, Table::fmt(improvement(split, mix)),
                    Table::fmt(100 * split.l1MissRate),
                    Table::fmt(100 * mix.l1MissRate)});
    }
    gpu.print();

    std::printf("\nPaper shape: MIX wins everywhere; virtualized and "
                "GPU columns show the\nlargest factors because each "
                "avoided miss saves the most cycles there.\n");
    return 0;
}
