/**
 * @file
 * Figure 10: fraction of the (guest) memory footprint backed by
 * superpages under VM consolidation — N consolidated VMs, each running
 * memhog at M% of its memory ("N VM : M mh" on the paper's x-axis).
 *
 * Shape to reproduce: even consolidated VMs with moderate memhog keep
 * most memory in superpages (e.g., 4VM:40mh above 70%); as VM count
 * and memhog rise, small pages take over.
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

namespace
{

double
guestSuperpageFraction(unsigned vms, double memhog,
                       std::uint64_t host_mem)
{
    VirtMachineParams params;
    params.name = "dist";
    params.hostMemBytes = host_mem;
    params.numVms = vms;
    params.design = TlbDesign::Split;
    params.guestProc.policy = os::PagePolicy::Thp;
    params.guestMemhogFraction = memhog;
    VirtMachine machine(params);

    double total = 0;
    for (unsigned vm = 0; vm < vms; vm++) {
        std::uint64_t guest_mem = host_mem / vms;
        std::uint64_t footprint = pressureFootprint(guest_mem, memhog);
        VAddr base = machine.mapArena(vm, footprint);
        auto &proc = machine.guestProcess(vm);
        for (VAddr va = base; va < base + footprint; va += PageBytes4K)
            proc.touch(va);
        total += machine.guestDistribution(vm).superpageFraction();
    }
    return total / vms;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t host_mem = args.getU64("mem-mb", 8192) << 20;

    std::printf("=== Figure 10: guest superpage fraction vs VM "
                "consolidation x memhog ===\n\n");

    Table table({"config", "superpage fraction"});
    for (unsigned vms : {1u, 2u, 4u, 8u}) {
        for (double memhog : {0.2, 0.4, 0.6}) {
            std::string label = std::to_string(vms) + "VM:"
                                + Table::fmt(memhog * 100, 0) + "mh";
            table.addRow({label,
                          Table::fmt(guestSuperpageFraction(
                              vms, memhog, host_mem))});
        }
    }
    table.print();
    std::printf("\nPaper shape: 4VM:40mh still above ~0.7; high "
                "consolidation + heavy memhog\npushes toward small "
                "pages.\n");
    return 0;
}
