/**
 * @file
 * Sec. 4.1's alignment restriction: coalescing only runs that start at
 * N-superpage-aligned boundaries simplifies the tag hardware but loses
 * a little coalescing opportunity. The paper asserts the loss is
 * slight; this ablation measures restricted vs unrestricted windows on
 * a purpose-built hierarchy (the restriction flag is a MixTlb
 * parameter, not a TlbDesign).
 */

#include "bench_common.hh"
#include "tlb/mix.hh"
#include "tlb/walk_source.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

namespace
{

double
runWithAlignment(bool restricted, const std::string &workload,
                 std::uint64_t refs)
{
    stats::StatGroup root(restricted ? "aligned" : "unaligned");
    mem::PhysMem mem(8 * GiB);
    os::MemoryManager mm(mem, &root);
    os::ProcessParams proc_params;
    proc_params.policy = os::PagePolicy::Thp;
    os::Process proc(mm, proc_params, &root);
    cache::CacheHierarchy caches(scaledCaches(), &root);
    tlb::NativeWalkSource source(
        proc.pageTable(), &root,
        [&](VAddr va, bool store) {
            return proc.touch(va, store) != os::TouchResult::OutOfMemory;
        },
        8);

    tlb::MixTlbParams l1_params;
    l1_params.entries = 96;
    l1_params.assoc = 6;
    l1_params.alignmentRestricted = restricted;
    tlb::MixTlbParams l2_params;
    l2_params.entries = 544;
    l2_params.assoc = 8;
    l2_params.mode = tlb::CoalesceMode::Length;
    l2_params.maxCoalesce = 64;
    l2_params.alignmentRestricted = restricted;

    tlb::TlbHierarchy hier(
        "tlb", &root,
        std::make_unique<tlb::MixTlb>("l1", &root, l1_params),
        std::make_shared<tlb::MixTlb>("l2", &root, l2_params), source,
        caches);
    proc.addInvalidateListener([&](VAddr va, PageSize size) {
        hier.invalidatePage(va, size);
    });

    const std::uint64_t footprint = 4 * GiB;
    VAddr base = proc.mmap(footprint);
    for (VAddr va = base; va < base + footprint; va += PageBytes4K)
        hier.access(va, true);
    root.resetStats();

    auto gen = workload::makeGenerator(workload, base, footprint, 3);
    for (std::uint64_t i = 0; i < refs; i++) {
        MemRef ref = gen->next();
        hier.access(ref.vaddr, ref.type == AccessType::Write);
    }
    return hier.translationCycleCount();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);

    std::printf("=== Ablation: alignment-restricted coalescing "
                "windows ===\n\n");
    Table table({"workload", "restricted xlat cycles",
                 "unrestricted xlat cycles", "restriction cost%"});
    for (const auto &workload :
         std::vector<std::string>{"graph500", "gups", "memcached"}) {
        double restricted = runWithAlignment(true, workload, refs);
        double unrestricted = runWithAlignment(false, workload, refs);
        double cost = unrestricted > 0
                          ? 100.0 * (restricted / unrestricted - 1.0)
                          : 0.0;
        table.addRow({workload, Table::fmt(restricted, 0),
                      Table::fmt(unrestricted, 0), Table::fmt(cost)});
    }
    table.print();
    std::printf("\nPaper claim: the alignment restriction costs only a "
                "little coalescing\nopportunity. In this implementation "
                "restricted windows can even win:\nfixed window anchors "
                "let mirror copies merge reliably, while floating\n"
                "(unrestricted) anchors often cannot — evidence for why "
                "the paper keeps\nthe restriction.\n");
    return 0;
}
