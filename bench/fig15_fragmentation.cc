/**
 * @file
 * Figure 15: (left) MIX-vs-split improvement as memhog fragments
 * memory (20%/80% for CPU workloads, 20%/60% for GPU), workloads
 * sorted ascending; (right) translation overhead versus a never-miss
 * ideal TLB for split and MIX.
 *
 * Shapes to reproduce: fragmentation shrinks but does not erase MIX's
 * advantage (left); split TLBs stray far from ideal on many workloads
 * while MIX tracks ideal closely (right).
 */

#include <algorithm>

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);
    const std::uint64_t mem = args.getU64("mem-mb", 8192) << 20;

    const std::vector<std::string> workloads = {"mcf", "graph500",
                                                "memcached", "gups"};

    std::printf("=== Figure 15 (left): MIX improvement under "
                "fragmentation ===\n\n");
    Table left({"rank", "CPU mh20%", "CPU mh80%", "GPU mh20%",
                "GPU mh60%"});
    std::vector<double> cpu20, cpu80, gpu20, gpu60;
    for (const auto &workload : workloads) {
        for (double memhog : {0.2, 0.8}) {
            NativeRunConfig config;
            config.workload = workload;
            config.memBytes = mem;
            config.footprintBytes = pressureFootprint(mem, memhog);
            config.refs = refs;
            config.memhog = memhog;
            config.design = TlbDesign::Split;
            auto split = runNative(config);
            config.design = TlbDesign::Mix;
            auto mix = runNative(config);
            (memhog < 0.5 ? cpu20 : cpu80)
                .push_back(improvement(split, mix));
        }
    }
    for (const auto &kernel :
         std::vector<std::string>{"bfs", "backprop", "kmeans",
                                  "pathfinder"}) {
        for (double memhog : {0.2, 0.6}) {
            GpuRunConfig config;
            config.kernel = kernel;
            config.refs = refs;
            config.memhog = memhog;
            config.design = TlbDesign::Split;
            auto split = runGpu(config);
            config.design = TlbDesign::Mix;
            auto mix = runGpu(config);
            (memhog < 0.5 ? gpu20 : gpu60)
                .push_back(improvement(split, mix));
        }
    }
    for (auto *vec : {&cpu20, &cpu80, &gpu20, &gpu60})
        std::sort(vec->begin(), vec->end());
    for (std::size_t i = 0; i < workloads.size(); i++) {
        left.addRow({std::to_string(i + 1), Table::fmt(cpu20[i]),
                     Table::fmt(cpu80[i]), Table::fmt(gpu20[i]),
                     Table::fmt(gpu60[i])});
    }
    left.print();

    std::printf("\n=== Figure 15 (right): overhead vs never-miss "
                "ideal ===\n\n");
    Table right({"workload", "split overhead%", "mix overhead%"});
    double split_above_10 = 0, mix_above_10 = 0;
    for (const auto &workload : workloads) {
        // Mixed page sizes under moderate fragmentation — where split
        // TLBs underutilise their partitions and MIX does not.
        NativeRunConfig config;
        config.workload = workload;
        config.policy = os::PagePolicy::Thp;
        config.memBytes = mem;
        config.memhog = 0.4;
        config.footprintBytes = pressureFootprint(mem, 0.4);
        config.refs = refs;
        config.design = TlbDesign::Split;
        auto split = runNative(config);
        config.design = TlbDesign::Mix;
        auto mix = runNative(config);
        double split_pct = 100 * split.metrics.overheadFraction();
        double mix_pct = 100 * mix.metrics.overheadFraction();
        split_above_10 += split_pct > 10 ? 1 : 0;
        mix_above_10 += mix_pct > 10 ? 1 : 0;
        right.addRow({workload, Table::fmt(split_pct),
                      Table::fmt(mix_pct)});
    }
    right.print();
    std::printf("\n%0.f/%zu split configs above 10%% overhead vs "
                "%0.f/%zu for MIX.\nPaper shape: ~1/3 of split "
                "configurations deviate 10%%+ from ideal; MIX stays "
                "closer.\n",
                split_above_10, workloads.size(), mix_above_10,
                workloads.size());
    return 0;
}
