/**
 * @file
 * Figure 15: (left) MIX-vs-split improvement as memhog fragments
 * memory (20%/80% for CPU workloads, 20%/60% for GPU), workloads
 * sorted ascending; (right) translation overhead versus a never-miss
 * ideal TLB for split and MIX.
 *
 * Shapes to reproduce: fragmentation shrinks but does not erase MIX's
 * advantage (left); split TLBs stray far from ideal on many workloads
 * while MIX tracks ideal closely (right).
 *
 * Runs as one sweep grid: `--jobs N` parallelises, `--json <path>`
 * dumps per-configuration metrics + energy.
 */

#include <algorithm>

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

namespace
{

struct Pair
{
    std::size_t split = 0;
    std::size_t mix = 0;
};

Pair
addPair(SweepGrid &grid, const std::string &section,
        const std::string &label, BenchConfig config)
{
    Pair pair;
    std::visit([](auto &c) { c.design = TlbDesign::Split; }, config);
    pair.split = grid.add(section, label + "/split", config);
    std::visit([](auto &c) { c.design = TlbDesign::Mix; }, config);
    pair.mix = grid.addPaired(pair.split, section, label + "/mix",
                              config);
    return pair;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);
    const std::uint64_t mem = args.getU64("mem-mb", 8192) << 20;

    const std::vector<std::string> workloads = {"mcf", "graph500",
                                                "memcached", "gups"};
    const std::vector<std::string> kernels = {"bfs", "backprop",
                                              "kmeans", "pathfinder"};

    SweepGrid grid;

    // Left: CPU and GPU improvement under light/heavy fragmentation.
    std::vector<Pair> cpu_pairs, gpu_pairs; // [workload][low, high]
    for (const auto &workload : workloads) {
        for (double memhog : {0.2, 0.8}) {
            NativeRunConfig config;
            config.workload = workload;
            config.memBytes = mem;
            config.footprintBytes = pressureFootprint(mem, memhog);
            config.refs = refs;
            config.memhog = memhog;
            cpu_pairs.push_back(addPair(
                grid, "cpu_frag",
                workload + "/mh" + Table::fmt(memhog * 100, 0),
                config));
        }
    }
    for (const auto &kernel : kernels) {
        for (double memhog : {0.2, 0.6}) {
            GpuRunConfig config;
            config.kernel = kernel;
            config.refs = refs;
            config.memhog = memhog;
            gpu_pairs.push_back(addPair(
                grid, "gpu_frag",
                kernel + "/mh" + Table::fmt(memhog * 100, 0), config));
        }
    }

    // Right: overhead vs the never-miss ideal under moderate
    // fragmentation — where split TLBs underutilise their partitions
    // and MIX does not.
    std::vector<Pair> ideal_pairs;
    for (const auto &workload : workloads) {
        NativeRunConfig config;
        config.workload = workload;
        config.policy = os::PagePolicy::Thp;
        config.memBytes = mem;
        config.memhog = 0.4;
        config.footprintBytes = pressureFootprint(mem, 0.4);
        config.refs = refs;
        ideal_pairs.push_back(
            addPair(grid, "vs_ideal", workload + "/mh40", config));
    }

    BenchSweep sweep(args, "fig15_fragmentation");
    auto results = sweep.run(grid);

    auto imp = [&results](const Pair &pair) {
        return improvement(results[pair.split], results[pair.mix]);
    };

    std::printf("=== Figure 15 (left): MIX improvement under "
                "fragmentation ===\n\n");
    Table left({"rank", "CPU mh20%", "CPU mh80%", "GPU mh20%",
                "GPU mh60%"});
    std::vector<double> cpu20, cpu80, gpu20, gpu60;
    for (std::size_t w = 0; w < workloads.size(); w++) {
        cpu20.push_back(imp(cpu_pairs[2 * w]));
        cpu80.push_back(imp(cpu_pairs[2 * w + 1]));
    }
    for (std::size_t k = 0; k < kernels.size(); k++) {
        gpu20.push_back(imp(gpu_pairs[2 * k]));
        gpu60.push_back(imp(gpu_pairs[2 * k + 1]));
    }
    for (auto *vec : {&cpu20, &cpu80, &gpu20, &gpu60})
        std::sort(vec->begin(), vec->end());
    for (std::size_t i = 0; i < workloads.size(); i++) {
        left.addRow({std::to_string(i + 1), Table::fmt(cpu20[i]),
                     Table::fmt(cpu80[i]), Table::fmt(gpu20[i]),
                     Table::fmt(gpu60[i])});
    }
    left.print();

    std::printf("\n=== Figure 15 (right): overhead vs never-miss "
                "ideal ===\n\n");
    Table right({"workload", "split overhead%", "mix overhead%"});
    double split_above_10 = 0, mix_above_10 = 0;
    for (std::size_t w = 0; w < workloads.size(); w++) {
        const Pair &pair = ideal_pairs[w];
        double split_pct =
            100 * results[pair.split].metrics.overheadFraction();
        double mix_pct =
            100 * results[pair.mix].metrics.overheadFraction();
        split_above_10 += split_pct > 10 ? 1 : 0;
        mix_above_10 += mix_pct > 10 ? 1 : 0;
        right.addRow({workloads[w], Table::fmt(split_pct),
                      Table::fmt(mix_pct)});
    }
    right.print();
    std::printf("\n%0.f/%zu split configs above 10%% overhead vs "
                "%0.f/%zu for MIX.\nPaper shape: ~1/3 of split "
                "configurations deviate 10%%+ from ideal; MIX stays "
                "closer.\n",
                split_above_10, workloads.size(), mix_above_10,
                workloads.size());
    return sweep.finish();
}
