/**
 * @file
 * Sec. 7.2 "Scaling TLBs": how MIX TLB performance scales with set
 * count. The paper reports that even hypothetical 512-set MIX TLBs —
 * which need more contiguity than workloads always have to fully
 * offset mirrors — stay within 13% of the never-miss ideal TLB.
 */

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 100000);

    std::printf("=== Ablation: MIX TLB set-count scaling (vs ideal) "
                "===\n\n");

    Table table({"workload", "L1 sets", "L2 sets", "overhead%",
                 "gap to ideal%"});
    for (const auto &workload :
         std::vector<std::string>{"graph500", "gups"}) {
        NativeRunConfig config;
        config.workload = workload;
        config.policy = os::PagePolicy::Thp;
        config.refs = refs;

        config.design = TlbDesign::Ideal;
        auto ideal = runNative(config);

        for (unsigned scale : {1u, 2u, 8u}) {
            config.design = TlbDesign::Mix;
            config.scale = ConfigScale{scale};
            auto mix = runNative(config);
            double gap = 100.0
                         * (mix.metrics.totalCycles
                                / ideal.metrics.totalCycles
                            - 1.0);
            table.addRow({workload, std::to_string(16 * scale),
                          std::to_string(68 * scale),
                          Table::fmt(100
                                     * mix.metrics.overheadFraction()),
                          Table::fmt(gap)});
        }
        config.scale = ConfigScale{1};
    }
    table.print();
    std::printf("\nPaper claim: even 512-set MIX TLBs stay within 13%% "
                "of the ideal TLB; the\ngap should stay bounded as "
                "sets grow (more sets need more contiguity to\noffset "
                "their mirrors, but capacity grows too).\n");
    return 0;
}
