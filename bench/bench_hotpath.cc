/**
 * @file
 * Self-measuring throughput harness for the per-reference hot path:
 * replays a fixed gups + stream reference mix through each TLB design
 * on a native machine and reports simulator throughput (refs/sec and
 * ns per simulated lookup) per design.
 *
 * Unlike the figure benches, the numbers here are *host* wall-clock
 * measurements of the simulator itself — the repo's perf trajectory
 * baseline. `--json` (default BENCH_hotpath.json) emits the report
 * that tools/check_perf.py validates in CI.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/json.hh"
#include "workload/generator.hh"

using namespace mixtlb;
using namespace mixtlb::bench;

namespace
{

struct MixPoint
{
    /** JSON label for the reference family. */
    const char *label;
    /** Workload name handed to makeGenerator(). */
    const char *workload;
};

/** The fixed mix: worst-case random RMWs plus a unit-stride sweep. */
constexpr MixPoint ReferenceMix[] = {
    {"gups", "gups"},
    {"stream", "streamcluster"},
};

constexpr sim::TlbDesign Designs[] = {
    sim::TlbDesign::Split,     sim::TlbDesign::Mix,
    sim::TlbDesign::MixColt,   sim::TlbDesign::HashRehash,
    sim::TlbDesign::Skew,
};

double
seconds(std::chrono::steady_clock::time_point start,
        std::chrono::steady_clock::time_point stop)
{
    return std::chrono::duration<double>(stop - start).count();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 1000000);
    const std::uint64_t footprint =
        args.getU64("footprint-mb", 64) * MiB;
    const std::uint64_t mem = args.getU64("mem-mb", 512) * MiB;
    const std::uint64_t seed = args.getU64("seed", 3);
    const std::string json_path =
        args.getString("json", "BENCH_hotpath.json");

    auto doc = json::Value::object();
    doc["benchmark"] = "hotpath";
    doc["refs_per_workload"] = refs;
    doc["footprint_bytes"] = footprint;
    doc["designs"] = json::Value::array();

    sim::Table table({"design", "workload", "refs/sec", "ns/lookup"});

    for (sim::TlbDesign design : Designs) {
        sim::MachineParams params;
        params.name = sim::designName(design);
        params.memBytes = mem;
        params.design = design;
        params.seed = seed;
        params.caches = scaledCaches();
        sim::Machine machine(params);

        VAddr base = machine.mapArena(footprint);
        machine.warmup(base, footprint);
        machine.startMeasurement();

        auto entry = json::Value::object();
        entry["design"] = sim::designName(design);
        auto workloads = json::Value::object();
        double total_refs = 0, total_seconds = 0;

        for (const MixPoint &point : ReferenceMix) {
            auto gen = workload::makeGenerator(point.workload, base,
                                               footprint, seed);
            auto start = std::chrono::steady_clock::now();
            std::uint64_t done = machine.run(*gen, refs);
            auto stop = std::chrono::steady_clock::now();

            const double wall = seconds(start, stop);
            const double rate = wall > 0 ? done / wall : 0.0;
            const double ns = done > 0 ? 1e9 * wall / done : 0.0;
            total_refs += static_cast<double>(done);
            total_seconds += wall;

            auto sample = json::Value::object();
            sample["refs"] = done;
            sample["wall_seconds"] = wall;
            sample["refs_per_sec"] = rate;
            sample["ns_per_ref"] = ns;
            workloads[point.label] = std::move(sample);

            table.addRow({sim::designName(design), point.label,
                          sim::Table::fmt(rate, 0),
                          sim::Table::fmt(ns, 1)});
        }

        entry["workloads"] = std::move(workloads);
        entry["refs_per_sec"] =
            total_seconds > 0 ? total_refs / total_seconds : 0.0;
        entry["ns_per_ref"] =
            total_refs > 0 ? 1e9 * total_seconds / total_refs : 0.0;
        doc["designs"].push(std::move(entry));
    }

    table.print();
    if (!json::writeFile(json_path, doc)) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
}
