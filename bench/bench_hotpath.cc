/**
 * @file
 * Self-measuring throughput harness for the per-reference hot path:
 * replays a fixed gups + stream reference mix through each TLB design
 * on a native machine and reports simulator throughput (refs/sec and
 * ns per simulated lookup) per design.
 *
 * Unlike the figure benches, the numbers here are *host* wall-clock
 * measurements of the simulator itself — the repo's perf trajectory
 * baseline. `--json` (default BENCH_hotpath.json) emits the report
 * that tools/check_perf.py validates in CI.
 *
 * Each design is measured twice by default: once with the compiled
 * SIMD probe kernels (src/common/simd.hh) and once with the kernels
 * forced scalar, giving an end-to-end scalar-vs-SIMD comparison in the
 * same report (`--scalar-compare 0` skips the scalar pass; it is also
 * skipped when MIXTLB_FORCE_SCALAR already pins the run to scalar).
 * The modeled results are bit-identical either way — only wall time
 * moves — so the primary samples stay comparable across reports
 * regardless of kernel.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/json.hh"
#include "common/simd.hh"
#include "workload/generator.hh"

using namespace mixtlb;
using namespace mixtlb::bench;

namespace
{

struct MixPoint
{
    /** JSON label for the reference family. */
    const char *label;
    /** Workload name handed to makeGenerator(). */
    const char *workload;
};

/** The fixed mix: worst-case random RMWs plus a unit-stride sweep. */
constexpr MixPoint ReferenceMix[] = {
    {"gups", "gups"},
    {"stream", "streamcluster"},
};

constexpr sim::TlbDesign Designs[] = {
    sim::TlbDesign::Split,     sim::TlbDesign::Mix,
    sim::TlbDesign::MixColt,   sim::TlbDesign::HashRehash,
    sim::TlbDesign::Skew,
};

constexpr std::size_t NumMixPoints =
    sizeof(ReferenceMix) / sizeof(ReferenceMix[0]);

struct Sample
{
    std::uint64_t refs = 0;
    double wallSeconds = 0;
    double refsPerSec = 0;
    double nsPerRef = 0;
};

struct DesignRun
{
    Sample workloads[NumMixPoints];
    double refsPerSec = 0;
    double nsPerRef = 0;
};

double
seconds(std::chrono::steady_clock::time_point start,
        std::chrono::steady_clock::time_point stop)
{
    return std::chrono::duration<double>(stop - start).count();
}

/** One full measurement of a design under the current kernel mode. */
DesignRun
measureDesign(sim::TlbDesign design, std::uint64_t refs,
              std::uint64_t footprint, std::uint64_t mem,
              std::uint64_t seed)
{
    sim::MachineParams params;
    params.name = sim::designName(design);
    params.memBytes = mem;
    params.design = design;
    params.seed = seed;
    params.caches = scaledCaches();
    sim::Machine machine(params);

    VAddr base = machine.mapArena(footprint);
    machine.warmup(base, footprint);
    machine.startMeasurement();

    DesignRun run;
    double total_refs = 0, total_seconds = 0;
    for (std::size_t p = 0; p < NumMixPoints; ++p) {
        auto gen = workload::makeGenerator(ReferenceMix[p].workload,
                                           base, footprint, seed);
        auto start = std::chrono::steady_clock::now();
        std::uint64_t done = machine.run(*gen, refs);
        auto stop = std::chrono::steady_clock::now();

        Sample &sample = run.workloads[p];
        sample.refs = done;
        sample.wallSeconds = seconds(start, stop);
        sample.refsPerSec = sample.wallSeconds > 0
                                ? done / sample.wallSeconds
                                : 0.0;
        sample.nsPerRef =
            done > 0 ? 1e9 * sample.wallSeconds / done : 0.0;
        total_refs += static_cast<double>(done);
        total_seconds += sample.wallSeconds;
    }
    run.refsPerSec = total_seconds > 0 ? total_refs / total_seconds : 0.0;
    run.nsPerRef = total_refs > 0 ? 1e9 * total_seconds / total_refs : 0.0;
    return run;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::CliArgs args(argc, argv);
    const std::uint64_t refs = args.getU64("refs", 1000000);
    const std::uint64_t footprint =
        args.getU64("footprint-mb", 64) * MiB;
    const std::uint64_t mem = args.getU64("mem-mb", 512) * MiB;
    const std::uint64_t seed = args.getU64("seed", 3);
    const bool scalar_compare =
        args.getU64("scalar-compare", 1) != 0 && !simd::scalarForced();
    const std::string json_path =
        args.getString("json", "BENCH_hotpath.json");

    auto doc = json::Value::object();
    doc["benchmark"] = "hotpath";
    doc["refs_per_workload"] = refs;
    doc["footprint_bytes"] = footprint;
    doc["simd_kernel"] = simd::activeKernelName();
    doc["designs"] = json::Value::array();

    sim::Table table({"design", "workload", "refs/sec", "ns/lookup",
                      "scalar refs/sec", "simd x"});

    double log_rate_sum = 0, log_speedup_sum = 0;
    std::size_t rate_count = 0;

    // Discarded warm pass: the first timed sample of the process
    // otherwise absorbs one-time host costs (lazy binding, page-cache
    // and predictor warm-up) and skews whichever design runs first.
    measureDesign(Designs[0], std::min<std::uint64_t>(refs / 10, 100000),
                  footprint, mem, seed);

    for (sim::TlbDesign design : Designs) {
        const DesignRun run =
            measureDesign(design, refs, footprint, mem, seed);
        DesignRun scalar_run;
        if (scalar_compare) {
            simd::ForceScalarGuard guard;
            scalar_run = measureDesign(design, refs, footprint, mem,
                                       seed);
        }

        auto entry = json::Value::object();
        entry["design"] = sim::designName(design);
        auto workloads = json::Value::object();

        for (std::size_t p = 0; p < NumMixPoints; ++p) {
            const Sample &s = run.workloads[p];
            auto sample = json::Value::object();
            sample["refs"] = s.refs;
            sample["wall_seconds"] = s.wallSeconds;
            sample["refs_per_sec"] = s.refsPerSec;
            sample["ns_per_ref"] = s.nsPerRef;
            std::string scalar_cell = "-";
            std::string speedup_cell = "-";
            if (scalar_compare) {
                const Sample &sc = scalar_run.workloads[p];
                const double speedup = sc.refsPerSec > 0
                                           ? s.refsPerSec / sc.refsPerSec
                                           : 0.0;
                sample["scalar_refs_per_sec"] = sc.refsPerSec;
                sample["simd_speedup"] = speedup;
                scalar_cell = sim::Table::fmt(sc.refsPerSec, 0);
                speedup_cell = sim::Table::fmt(speedup, 2);
                if (speedup > 0)
                    log_speedup_sum += std::log(speedup);
            }
            if (s.refsPerSec > 0) {
                log_rate_sum += std::log(s.refsPerSec);
                ++rate_count;
            }
            workloads[ReferenceMix[p].label] = std::move(sample);
            table.addRow({sim::designName(design), ReferenceMix[p].label,
                          sim::Table::fmt(s.refsPerSec, 0),
                          sim::Table::fmt(s.nsPerRef, 1), scalar_cell,
                          speedup_cell});
        }

        entry["workloads"] = std::move(workloads);
        entry["refs_per_sec"] = run.refsPerSec;
        entry["ns_per_ref"] = run.nsPerRef;
        if (scalar_compare) {
            entry["scalar_refs_per_sec"] = scalar_run.refsPerSec;
            entry["simd_speedup"] = scalar_run.refsPerSec > 0
                                        ? run.refsPerSec /
                                              scalar_run.refsPerSec
                                        : 0.0;
        }
        doc["designs"].push(std::move(entry));
    }

    if (rate_count > 0)
        doc["geomean_refs_per_sec"] = std::exp(log_rate_sum / rate_count);
    if (scalar_compare && rate_count > 0)
        doc["geomean_simd_speedup"] =
            std::exp(log_speedup_sum / rate_count);

    table.print();
    std::printf("kernel: %s", simd::activeKernelName());
    if (rate_count > 0)
        std::printf("  geomean %.0f refs/sec",
                    std::exp(log_rate_sum / rate_count));
    if (scalar_compare && rate_count > 0)
        std::printf("  simd speedup %.2fx",
                    std::exp(log_speedup_sum / rate_count));
    std::printf("\n");
    if (!json::writeFile(json_path, doc)) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
}
