/**
 * @file
 * Tests for the virtualization substrate: EPT backing, nested walks
 * (the 24-access 2-D walk), effective page sizes under splintering,
 * and nested coalescing candidates for MIX TLBs.
 */

#include <gtest/gtest.h>

#include "os/memhog.hh"
#include "os/scan.hh"
#include "sim/machine.hh"
#include "virt/nested_walk.hh"
#include "virt/vm.hh"

using namespace mixtlb;
using namespace mixtlb::virt;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

struct VirtFixture : ::testing::Test
{
    mem::PhysMem hostMem{4 * GiB};
    stats::StatGroup root{"test"};
    os::MemoryManager hostMm{hostMem, &root};

    VmParams
    vmParams(std::uint64_t guest_bytes = 1 * GiB)
    {
        VmParams params;
        params.guestMemBytes = guest_bytes;
        return params;
    }

    os::ProcessParams
    guestThp()
    {
        os::ProcessParams params;
        params.name = "guest";
        params.policy = os::PagePolicy::Thp;
        return params;
    }
};

} // anonymous namespace

TEST_F(VirtFixture, EptBacksGuestPhysicalLazily)
{
    Vm vm(hostMm, vmParams(), &root);
    EXPECT_FALSE(vm.hostPhysIfMapped(0x1000).has_value());
    auto spa = vm.hostPhys(0x1000, false);
    ASSERT_TRUE(spa.has_value());
    EXPECT_TRUE(vm.hostPhysIfMapped(0x1000).has_value());
    EXPECT_EQ(*vm.hostPhysIfMapped(0x1000), *spa);
    EXPECT_GT(root.scalar("vm.ept_faults").value(), 0.0);
}

TEST_F(VirtFixture, HostThpBacksGuestWithSuperpages)
{
    Vm vm(hostMm, vmParams(), &root);
    auto leaf = vm.hostLeaf(64 * MiB, false);
    ASSERT_TRUE(leaf.has_value());
    EXPECT_EQ(leaf->size, PageSize::Size2M);
}

TEST_F(VirtFixture, NestedWalkIssues24AccessesFor4KOn4K)
{
    // Force 4KB pages at both levels.
    VmParams vp = vmParams();
    vp.hostPolicy = os::PagePolicy::SmallOnly;
    Vm vm(hostMm, vp, &root);
    os::ProcessParams gp = guestThp();
    gp.policy = os::PagePolicy::SmallOnly;
    os::Process guest(vm.guestMm(), gp, &root);
    NestedWalkSource source(vm, guest, &root);

    VAddr va = guest.mmap(16 * MiB);
    guest.touch(va);
    // Warm the EPT so no EPT violations inflate the count.
    source.walk(va, false);
    auto walk = source.walk(va, false);
    ASSERT_FALSE(walk.pageFault());
    // 4 guest levels x (4-level host walk + guest PTE read) + final
    // 4-level host walk = 24.
    EXPECT_EQ(walk.accesses.size(), 24u);
}

TEST_F(VirtFixture, NestedWalkShortensWithSuperpages)
{
    // Guest 2MB page over host THS (2MB EPT pages): guest walk is 3
    // levels, each host walk is 3 accesses, plus a 3-access final walk:
    // 3*(3+1) + 3 = 15.
    Vm vm(hostMm, vmParams(), &root);
    os::Process guest(vm.guestMm(), guestThp(), &root);
    NestedWalkSource source(vm, guest, &root);

    VAddr va = guest.mmap(64 * MiB);
    guest.touch(va);
    ASSERT_EQ(guest.pageTable().translate(va)->size, PageSize::Size2M);
    source.walk(va, false);
    auto walk = source.walk(va, false);
    ASSERT_FALSE(walk.pageFault());
    EXPECT_LT(walk.accesses.size(), 24u);
    EXPECT_GE(walk.accesses.size(), 12u);
}

TEST_F(VirtFixture, EffectivePageSizeIsMinOfLevels)
{
    // Guest 2MB page, host 4KB backing: the effective (TLB-cacheable)
    // page size must splinter to 4KB.
    VmParams vp = vmParams();
    vp.hostPolicy = os::PagePolicy::SmallOnly;
    Vm vm(hostMm, vp, &root);
    os::Process guest(vm.guestMm(), guestThp(), &root);
    NestedWalkSource source(vm, guest, &root);

    VAddr va = guest.mmap(64 * MiB);
    guest.touch(va);
    ASSERT_EQ(guest.pageTable().translate(va)->size, PageSize::Size2M);
    auto walk = source.walk(va, false);
    ASSERT_FALSE(walk.pageFault());
    EXPECT_EQ(walk.leaf->size, PageSize::Size4K);
}

TEST_F(VirtFixture, NestedTranslationIsCorrect)
{
    Vm vm(hostMm, vmParams(), &root);
    os::Process guest(vm.guestMm(), guestThp(), &root);
    NestedWalkSource source(vm, guest, &root);
    VAddr base = guest.mmap(64 * MiB);
    for (VAddr va = base; va < base + 16 * MiB; va += 3 * PageBytes4K) {
        guest.touch(va);
        auto walk = source.walk(va, false);
        ASSERT_FALSE(walk.pageFault());
        // Compose the two levels functionally and compare.
        auto gleaf = guest.pageTable().translate(va);
        PAddr gpa = gleaf->translate(va);
        auto spa = vm.hostPhysIfMapped(gpa);
        ASSERT_TRUE(spa.has_value());
        EXPECT_EQ(walk.leaf->translate(va), *spa);
    }
}

TEST_F(VirtFixture, NestedLineEnablesEndToEndCoalescing)
{
    // Guest allocates contiguous 2MB pages; the host backs them with
    // THS 2MB pages allocated contiguously too. The nested walk's line
    // must expose neighbours with *system* physical contiguity.
    Vm vm(hostMm, vmParams(), &root);
    os::Process guest(vm.guestMm(), guestThp(), &root);
    NestedWalkSource source(vm, guest, &root);
    VAddr base = guest.mmap(64 * MiB);
    for (VAddr va = base; va < base + 16 * MiB; va += PageBytes2M) {
        guest.touch(va);
        source.walk(va, false); // sets guest A bits, backs the EPT
    }

    auto walk = source.walk(base, false);
    ASSERT_FALSE(walk.pageFault());
    ASSERT_EQ(walk.lineGranularity, PageSize::Size2M);
    unsigned present = 0, contiguous = 0;
    PAddr anchor = walk.leaf->pbase;
    VAddr vanchor = walk.leaf->vbase;
    for (const auto &slot : walk.line) {
        if (!slot.present)
            continue;
        present++;
        if (slot.xlate.pbase - anchor == slot.xlate.vbase - vanchor)
            contiguous++;
    }
    EXPECT_GE(present, 2u);
    EXPECT_GE(contiguous, 2u);
}

TEST(VirtMachine, ConsolidatedVmsRunAndScan)
{
    sim::VirtMachineParams params;
    params.hostMemBytes = 4 * GiB;
    params.numVms = 2;
    params.design = sim::TlbDesign::Mix;
    params.guestProc.policy = os::PagePolicy::Thp;
    sim::VirtMachine machine(params);

    for (unsigned vm = 0; vm < 2; vm++) {
        VAddr base = machine.mapArena(vm, 64 * MiB);
        auto gen = workload::makeGenerator("gups", base, 32 * MiB,
                                           7 + vm);
        auto done = machine.run(vm, *gen, 20000);
        EXPECT_EQ(done, 20000u);
        auto dist = machine.guestDistribution(vm);
        EXPECT_GT(dist.total(), 0u);
        EXPECT_GT(dist.superpageFraction(), 0.5);
        auto runs = machine.nestedContiguityRuns(vm, PageSize::Size2M);
        EXPECT_FALSE(runs.empty());
    }
    auto metrics = machine.metrics();
    EXPECT_GT(metrics.totalCycles, 0.0);
}

TEST(VirtMachine, GuestMemhogReducesGuestSuperpages)
{
    sim::VirtMachineParams frag;
    frag.hostMemBytes = 4 * GiB;
    frag.numVms = 1;
    // 85% hogged: free memory sits below the compaction-willingness
    // knee, so a visible share of THS faults falls back to 4KB.
    frag.guestMemhogFraction = 0.85;
    frag.guestProc.policy = os::PagePolicy::Thp;
    sim::VirtMachine fragged(frag);

    sim::VirtMachineParams clean = frag;
    clean.guestMemhogFraction = 0.0;
    sim::VirtMachine pristine(clean);

    for (auto *machine : {&fragged, &pristine}) {
        VAddr base = machine->mapArena(0, 64 * MiB);
        auto &proc = machine->guestProcess(0);
        for (VAddr va = base; va < base + 64 * MiB; va += PageBytes4K)
            proc.touch(va);
    }
    EXPECT_LT(fragged.guestDistribution(0).superpageFraction(),
              pristine.guestDistribution(0).superpageFraction());
}
