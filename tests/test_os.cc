/**
 * @file
 * Unit and behavioural tests for src/os: the memory manager with
 * compaction, memhog, process page-size policies, and the Sec. 7.1
 * scanners. These tests pin down the *emergent* properties the paper
 * depends on: superpage formation under fragmentation, and virtual+
 * physical superpage contiguity.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "os/memhog.hh"
#include "os/memory_manager.hh"
#include "os/process.hh"
#include "os/scan.hh"

using namespace mixtlb;
using namespace mixtlb::os;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

struct OsFixture : ::testing::Test
{
    mem::PhysMem mem{1 * GiB};
    stats::StatGroup root{"test"};
    MemoryManager mm{mem, &root};
};

ProcessParams
thpParams()
{
    ProcessParams params;
    params.policy = PagePolicy::Thp;
    return params;
}

} // anonymous namespace

TEST_F(OsFixture, DirectContiguousAllocation)
{
    auto pfn = mm.allocContiguous(mem::Order2M, mem::FrameUse::AppHuge,
                                  false);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_EQ(*pfn % 512, 0u);
    EXPECT_EQ(root.scalar("mm.direct_allocs").value(), 1.0);
}

TEST_F(OsFixture, CompactionRescuesFragmentedMemory)
{
    // Scatter movable single-frame allocations over the whole memory so
    // no free 2MB block survives, then ask for a 2MB block.
    Memhog hog(mm, 0.0);
    hog.fragment(0.5, 7);
    ASSERT_EQ(mem.buddy().freeBlocksAt(mem::Order2M), 0u);
    std::uint64_t big_free = 0;
    for (unsigned o = mem::Order2M; o <= mem::BuddyAllocator::MaxOrder; o++)
        big_free += mem.buddy().freeBlocksAt(o);
    ASSERT_EQ(big_free, 0u);

    auto without = mm.allocContiguous(mem::Order2M,
                                      mem::FrameUse::AppHuge, false);
    EXPECT_FALSE(without.has_value());

    auto with = mm.allocContiguous(mem::Order2M,
                                   mem::FrameUse::AppHuge, true);
    ASSERT_TRUE(with.has_value());
    EXPECT_GT(root.scalar("mm.pages_migrated").value(), 0.0);
    for (int i = 0; i < 512; i++)
        EXPECT_EQ(mem.frameUse(*with + i), mem::FrameUse::AppHuge);
}

TEST_F(OsFixture, CompactionRespectsUnmovableFrames)
{
    // Pin one unmovable frame in every 2MB region: compaction must fail.
    std::uint64_t regions = mem.totalFrames() >> mem::Order2M;
    for (std::uint64_t r = 0; r < regions; r++) {
        ASSERT_TRUE(mem.allocFramesAt((r << mem::Order2M) + 7, 0,
                                      mem::FrameUse::Pinned));
    }
    auto pfn = mm.allocContiguous(mem::Order2M, mem::FrameUse::AppHuge,
                                  true);
    EXPECT_FALSE(pfn.has_value());
    EXPECT_EQ(root.scalar("mm.compaction_successes").value(), 0.0);
}

TEST_F(OsFixture, DeferredCompactionBacksOff)
{
    std::uint64_t regions = mem.totalFrames() >> mem::Order2M;
    for (std::uint64_t r = 0; r < regions; r++) {
        ASSERT_TRUE(mem.allocFramesAt((r << mem::Order2M) + 7, 0,
                                      mem::FrameUse::Pinned));
    }
    for (int i = 0; i < 10; i++)
        mm.allocContiguous(mem::Order2M, mem::FrameUse::AppHuge, true);
    // Backoff means far fewer scans than requests.
    EXPECT_LT(root.scalar("mm.compaction_attempts").value(), 6.0);
    EXPECT_GT(root.scalar("mm.compaction_deferred").value(), 4.0);
}

TEST_F(OsFixture, SuccessiveCompactionsYieldAdjacentRegions)
{
    // The compaction cursor makes consecutive successes adjacent — the
    // physical-contiguity mechanism behind Figure 11.
    Memhog hog(mm, 0.0);
    hog.fragment(0.3, 11);
    std::optional<Pfn> prev;
    int adjacent = 0, total = 0;
    for (int i = 0; i < 16; i++) {
        auto pfn = mm.allocContiguous(mem::Order2M,
                                      mem::FrameUse::AppHuge, true);
        ASSERT_TRUE(pfn.has_value());
        if (prev) {
            total++;
            if (*pfn == *prev + 512)
                adjacent++;
        }
        prev = pfn;
    }
    EXPECT_GT(adjacent, total / 2);
}

TEST_F(OsFixture, MemhogRelocateKeepsRegistryConsistent)
{
    Memhog hog(mm, 0.0);
    hog.fragment(0.5, 3);
    auto moved_before = root.scalar("mm.pages_migrated").value();
    auto pfn = mm.allocContiguous(mem::Order2M, mem::FrameUse::AppHuge,
                                  true);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_GT(root.scalar("mm.pages_migrated").value(), moved_before);
    // Releasing after migration must not panic or double free.
    hog.release();
    mem.freeFrames(*pfn, mem::Order2M);
    EXPECT_EQ(mem.buddy().freeFrames(), mem.totalFrames());
}

TEST_F(OsFixture, MemhogUnmovableShareClaimsPageblocks)
{
    Memhog hog(mm, 0.5);
    hog.fragment(0.4, 9);
    EXPECT_GT(hog.unmovableBlocks(), 0u);
    EXPECT_GT(hog.movableFrames(), 0u);
    // Unmovable blocks are whole 2MB regions.
    std::uint64_t unmovable_frames = hog.unmovableBlocks() * 512;
    double share = static_cast<double>(unmovable_frames)
                   / (unmovable_frames + hog.movableFrames());
    EXPECT_NEAR(share, 0.5, 0.1);
}

TEST_F(OsFixture, ProcessSmallOnlyPolicy)
{
    ProcessParams params;
    params.policy = PagePolicy::SmallOnly;
    Process proc(mm, params, &root);
    VAddr base = proc.mmap(16 * MiB);

    EXPECT_EQ(proc.touch(base), TouchResult::Faulted);
    EXPECT_EQ(proc.touch(base), TouchResult::Mapped);
    EXPECT_EQ(proc.touch(base + 5), TouchResult::Mapped);
    EXPECT_EQ(proc.touch(base + PageBytes4K), TouchResult::Faulted);

    auto dist = scanDistribution(proc.pageTable());
    EXPECT_EQ(dist.bytes4k, 2 * PageBytes4K);
    EXPECT_EQ(dist.bytes2m, 0u);
}

TEST_F(OsFixture, ProcessThpMapsWholeRegions)
{
    Process proc(mm, thpParams(), &root);
    VAddr base = proc.mmap(16 * MiB);
    EXPECT_EQ(proc.touch(base + 12345), TouchResult::Faulted);
    // The whole 2MB region is now backed.
    EXPECT_EQ(proc.touch(base + PageBytes2M - 1), TouchResult::Mapped);
    auto dist = scanDistribution(proc.pageTable());
    EXPECT_EQ(dist.bytes2m, PageBytes2M);
    EXPECT_EQ(dist.bytes4k, 0u);
}

TEST_F(OsFixture, ProcessThpFallsBackWhenMemoryFragmented)
{
    // Scattered movable pins leave no free 2MB block; with defrag
    // disabled (a real THS configuration) every fault takes 4KB pages.
    Memhog hog(mm, 0.0);
    hog.fragment(0.5, 5);
    ProcessParams params = thpParams();
    params.thpDefrag = false;
    Process proc(mm, params, &root);
    VAddr base = proc.mmap(8 * MiB);
    for (VAddr va = base; va < base + 4 * MiB; va += PageBytes4K) {
        auto result = proc.touch(va);
        ASSERT_NE(result, TouchResult::OutOfMemory);
    }
    auto dist = scanDistribution(proc.pageTable());
    EXPECT_EQ(dist.bytes2m, 0u);
    EXPECT_EQ(dist.bytes4k, 4 * MiB);
    EXPECT_GT(root.scalar("proc.thp_fallbacks").value(), 0.0);
}

TEST_F(OsFixture, ProcessHuge2MPoolPolicy)
{
    ProcessParams params;
    params.policy = PagePolicy::Huge2M;
    params.pool2mPages = 4;
    Process proc(mm, params, &root);
    VAddr base = proc.mmap(16 * MiB);
    // First 4 regions come from the pool; the rest fall back to 4KB.
    for (VAddr va = base; va < base + 16 * MiB; va += PageBytes2M)
        proc.touch(va);
    auto dist = scanDistribution(proc.pageTable());
    EXPECT_EQ(dist.bytes2m, 4 * PageBytes2M);
    EXPECT_EQ(dist.bytes4k, 4 * PageBytes4K);
}

TEST_F(OsFixture, ProcessHuge1GPoolPolicy)
{
    // 1GB of memory can't fit a 1GB page plus page tables; use a
    // bigger machine for this test.
    mem::PhysMem big_mem{4 * GiB};
    MemoryManager big_mm{big_mem, &root};
    ProcessParams params;
    params.policy = PagePolicy::Huge1G;
    params.pool1gPages = 2;
    Process proc(big_mm, params, &root);
    VAddr base = proc.mmap(2 * GiB);
    proc.touch(base);
    proc.touch(base + 1 * GiB);
    auto dist = scanDistribution(proc.pageTable());
    EXPECT_EQ(dist.bytes1g, 2 * GiB);
}

TEST_F(OsFixture, ThpSuperpagesAreContiguous)
{
    // Ascending faults + lowest-address-first buddy = long runs of
    // virtually and physically contiguous superpages (Figure 11).
    Process proc(mm, thpParams(), &root);
    VAddr base = proc.mmap(256 * MiB);
    for (VAddr va = base; va < base + 128 * MiB; va += PageBytes2M)
        proc.touch(va);
    auto runs = contiguityRuns(proc.pageTable(), PageSize::Size2M);
    ASSERT_FALSE(runs.empty());
    EXPECT_GE(averageContiguity(runs), 32.0);
}

TEST_F(OsFixture, MigrationInvalidatesAndRemaps)
{
    // memhog scatters movable pins everywhere, so the process's pages
    // land interleaved with them and no free 2MB block survives.
    Memhog hog(mm, 0.0);
    hog.fragment(0.5, 21);
    ProcessParams params;
    params.policy = PagePolicy::SmallOnly;
    Process proc(mm, params, &root);
    VAddr base = proc.mmap(64 * MiB);
    for (VAddr va = base; va < base + 32 * MiB; va += PageBytes4K)
        proc.touch(va);

    unsigned invalidations = 0;
    proc.addInvalidateListener([&](VAddr, PageSize) { invalidations++; });

    auto before = scanDistribution(proc.pageTable());
    auto pfn = mm.allocContiguous(mem::Order2M, mem::FrameUse::AppHuge,
                                  true);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_GT(invalidations, 0u);
    // Translation count unchanged; every page still translates.
    auto after = scanDistribution(proc.pageTable());
    EXPECT_EQ(before.bytes4k, after.bytes4k);
    for (VAddr va = base; va < base + 32 * MiB; va += PageBytes4K)
        EXPECT_EQ(proc.touch(va), TouchResult::Mapped);
}

TEST_F(OsFixture, OutOfMemoryIsReported)
{
    ProcessParams params;
    params.policy = PagePolicy::SmallOnly;
    Process proc(mm, params, &root);
    // 1GB machine: touching >1GB of pages must eventually OOM.
    VAddr base = proc.mmap(2 * GiB);
    TouchResult last = TouchResult::Faulted;
    for (VAddr va = base; va < base + 2 * GiB; va += PageBytes4K) {
        last = proc.touch(va);
        if (last == TouchResult::OutOfMemory)
            break;
    }
    EXPECT_EQ(last, TouchResult::OutOfMemory);
}

TEST_F(OsFixture, ProcessTeardownFreesEverything)
{
    auto free_before = mem.buddy().freeFrames();
    {
        Process proc(mm, thpParams(), &root);
        VAddr base = proc.mmap(64 * MiB);
        for (VAddr va = base; va < base + 32 * MiB; va += PageBytes4K)
            proc.touch(va);
        EXPECT_LT(mem.buddy().freeFrames(), free_before);
    }
    EXPECT_EQ(mem.buddy().freeFrames(), free_before);
}

TEST(Scan, AverageContiguityPaperExample)
{
    // Sec. 7.1: runs {1, 1, 2} over 4 translations -> 1.5.
    EXPECT_DOUBLE_EQ(averageContiguity({1, 1, 2}), 1.5);
    EXPECT_DOUBLE_EQ(averageContiguity({}), 0.0);
    EXPECT_DOUBLE_EQ(averageContiguity({5}), 5.0);
}

TEST(Scan, ContiguityCdf)
{
    auto cdf = contiguityCdf({1, 1, 2});
    ASSERT_EQ(cdf.size(), 2u);
    EXPECT_EQ(cdf[0].first, 1u);
    EXPECT_DOUBLE_EQ(cdf[0].second, 0.5);
    EXPECT_EQ(cdf[1].first, 2u);
    EXPECT_DOUBLE_EQ(cdf[1].second, 1.0);
}

TEST(Scan, ContiguityRunsSplitOnPhysicalGaps)
{
    mem::PhysMem mem{1 * GiB};
    pt::PageTable table{mem};
    // VA-contiguous but PA-gap between the 2nd and 3rd superpage.
    table.map(0x40000000, 0x00000000, PageSize::Size2M);
    table.map(0x40200000, 0x00200000, PageSize::Size2M);
    table.map(0x40400000, 0x00800000, PageSize::Size2M); // PA jump
    table.map(0x40600000, 0x00a00000, PageSize::Size2M);
    auto runs = contiguityRuns(table, PageSize::Size2M);
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0], 2u);
    EXPECT_EQ(runs[1], 2u);
}

TEST(Scan, ContiguityRunsIgnoreOtherSizes)
{
    mem::PhysMem mem{1 * GiB};
    pt::PageTable table{mem};
    table.map(0x40000000, 0x00000000, PageSize::Size2M);
    table.map(0x40200000 + 0x1000, 0, PageSize::Size4K); // unrelated
    auto runs2m = contiguityRuns(table, PageSize::Size2M);
    ASSERT_EQ(runs2m.size(), 1u);
    EXPECT_EQ(runs2m[0], 1u);
}

// --- Memory-pressure lifecycle: demotion, reclaim, re-promotion -----

TEST_F(OsFixture, DemoteStormSplitsInPlaceWithOneShootdown)
{
    Process proc(mm, thpParams(), &root);
    VAddr base = proc.mmap(16 * MiB);
    for (VAddr va = base; va < base + 8 * MiB; va += PageBytes2M)
        proc.touch(va);
    auto before = scanDistribution(proc.pageTable());
    ASSERT_EQ(before.bytes2m, 8 * MiB);
    auto x0 = proc.pageTable().translate(base + 0x3456);
    ASSERT_TRUE(x0.has_value());
    const PAddr pa0 = x0->translate(base + 0x3456);

    std::vector<std::pair<VAddr, PageSize>> shots;
    proc.addInvalidateListener([&](VAddr va, PageSize s) {
        shots.emplace_back(va, s);
    });

    EXPECT_EQ(proc.demoteStorm(1), 1u);

    // One precise superpage-sized shootdown, lowest region first.
    ASSERT_EQ(shots.size(), 1u);
    EXPECT_EQ(shots[0].first, base);
    EXPECT_EQ(shots[0].second, PageSize::Size2M);
    EXPECT_EQ(proc.demotedRegions(), 1u);
    EXPECT_EQ(root.value("proc.demotions"), 1.0);

    // In-place split: same bytes resident, same physical frames.
    auto after = scanDistribution(proc.pageTable());
    EXPECT_EQ(after.bytes2m, 6 * MiB);
    EXPECT_EQ(after.bytes4k, 2 * MiB);
    auto x1 = proc.pageTable().translate(base + 0x3456);
    ASSERT_TRUE(x1.has_value());
    EXPECT_EQ(x1->size, PageSize::Size4K);
    EXPECT_EQ(x1->translate(base + 0x3456), pa0);

    contracts::AuditReport report;
    proc.audit(report);
    EXPECT_TRUE(report.violations().empty());
}

TEST_F(OsFixture, DemoteStorm1gSplitsInto2mChildren)
{
    mem::PhysMem big_mem{4 * GiB};
    MemoryManager big_mm{big_mem, &root};
    ProcessParams params;
    params.policy = PagePolicy::Huge1G;
    params.pool1gPages = 1;
    Process proc(big_mm, params, &root);
    VAddr base = proc.mmap(1 * GiB);
    ASSERT_EQ(proc.touch(base), TouchResult::Faulted);
    auto x0 = proc.pageTable().translate(base + 123 * MiB);
    ASSERT_TRUE(x0.has_value());
    const PAddr pa0 = x0->translate(base + 123 * MiB);

    std::vector<std::pair<VAddr, PageSize>> shots;
    proc.addInvalidateListener([&](VAddr va, PageSize s) {
        shots.emplace_back(va, s);
    });

    // 1GB -> 512 x 2MB, one 1GB-sized shootdown.
    EXPECT_EQ(proc.demoteStorm(1), 1u);
    ASSERT_EQ(shots.size(), 1u);
    EXPECT_EQ(shots[0], (std::pair<VAddr, PageSize>{
                            base, PageSize::Size1G}));
    auto dist = scanDistribution(proc.pageTable());
    EXPECT_EQ(dist.bytes1g, 0u);
    EXPECT_EQ(dist.bytes2m, 1 * GiB);
    auto x1 = proc.pageTable().translate(base + 123 * MiB);
    ASSERT_TRUE(x1.has_value());
    EXPECT_EQ(x1->translate(base + 123 * MiB), pa0);

    // A second storm picks the lowest 2MB child next.
    EXPECT_EQ(proc.demoteStorm(1), 1u);
    ASSERT_EQ(shots.size(), 2u);
    EXPECT_EQ(shots[1], (std::pair<VAddr, PageSize>{
                            base, PageSize::Size2M}));
    EXPECT_EQ(proc.demotedRegions(), 1u);

    contracts::AuditReport report;
    proc.audit(report);
    EXPECT_TRUE(report.violations().empty());
}

TEST_F(OsFixture, MaintainRepromotesInPlaceWhenPressureFades)
{
    Process proc(mm, thpParams(), &root);
    VAddr base = proc.mmap(16 * MiB);
    proc.touch(base);
    auto x0 = proc.pageTable().translate(base + 0x1000);
    ASSERT_TRUE(x0.has_value());
    const PAddr pa0 = x0->translate(base + 0x1000);

    ASSERT_EQ(proc.demoteStorm(1), 1u);
    ASSERT_EQ(proc.demotedRegions(), 1u);

    // Memory is nearly all free, so the pressure gate passes; the
    // storm armed an exponential deferral, so a few idle maintenance
    // ticks pass first.
    for (int i = 0; i < 20 && proc.demotedRegions() > 0; i++)
        proc.maintain();

    EXPECT_EQ(proc.demotedRegions(), 0u);
    EXPECT_EQ(root.value("proc.repromotions"), 1.0);
    // The frames never moved, so the rebuilt 2MB leaf translates
    // bit-identically.
    auto x1 = proc.pageTable().translate(base + 0x1000);
    ASSERT_TRUE(x1.has_value());
    EXPECT_EQ(x1->size, PageSize::Size2M);
    EXPECT_EQ(x1->translate(base + 0x1000), pa0);

    contracts::AuditReport report;
    proc.audit(report);
    EXPECT_TRUE(report.violations().empty());
}

TEST_F(OsFixture, ReclaimAbandonsReservationSlackWithoutShootdowns)
{
    ProcessParams params;
    params.policy = PagePolicy::Reservation;
    Process proc(mm, params, &root);
    VAddr base = proc.mmap(16 * MiB);
    // Two partially built reservations, each pinning a full 2MB block:
    // one page in the first region, three in the second.
    proc.touch(base);
    for (int i = 0; i < 3; i++)
        proc.touch(base + PageBytes2M + i * PageBytes4K);
    auto x0 = proc.pageTable().translate(base);
    ASSERT_TRUE(x0.has_value());
    const PAddr pa0 = x0->translate(base);

    unsigned shots = 0;
    proc.addInvalidateListener([&](VAddr, PageSize) { shots++; });
    const auto free_before = mem.buddy().freeFrames();

    // Asking for less than one reservation's slack abandons exactly
    // the most-untouched one (511 free slots beat 509).
    const std::uint64_t freed = proc.reclaimMemory(100);
    EXPECT_EQ(freed, 511u);
    EXPECT_EQ(mem.buddy().freeFrames(), free_before + 511);
    // Touched slots keep their exact translation: no shootdown fires.
    EXPECT_EQ(shots, 0u);
    auto x1 = proc.pageTable().translate(base);
    ASSERT_TRUE(x1.has_value());
    EXPECT_EQ(x1->translate(base), pa0);
    EXPECT_EQ(proc.touch(base), TouchResult::Mapped);
    EXPECT_EQ(root.value("proc.reclaims"), 511.0);

    contracts::AuditReport report;
    proc.audit(report);
    EXPECT_TRUE(report.violations().empty());
}

TEST(OsLifecycle, TouchNeverOomsWhileSuperpagesAreDemotable)
{
    // The tentpole property: on a 256MB machine, sequentially touching
    // far more VA than physical memory must degrade (demote, reclaim
    // cold pages, refault) but never report OutOfMemory — demotable
    // superpages and cold demoted pages are always reclaimable slack.
    mem::PhysMem mem{256 * MiB};
    stats::StatGroup root{"test"};
    MemoryManager mm{mem, &root};
    ProcessParams params;
    params.policy = PagePolicy::Thp;
    Process proc(mm, params, &root);
    VAddr base = proc.mmap(1 * GiB);
    for (VAddr va = base; va < base + 384 * MiB; va += PageBytes4K) {
        ASSERT_NE(proc.touch(va), TouchResult::OutOfMemory)
            << "OOM at offset " << (va - base);
    }
    // The run overcommitted memory 1.5x, so the lifecycle must have
    // both demoted superpages and reclaimed cold pages.
    EXPECT_GT(root.value("proc.demotions"), 0.0);
    EXPECT_GT(root.value("proc.reclaims"), 0.0);

    contracts::AuditReport report;
    proc.audit(report);
    EXPECT_TRUE(report.violations().empty());
}
