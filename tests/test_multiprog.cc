/**
 * @file
 * Tests for the multiprogrammed machine: ASID-tagged vs full-flush
 * context switching over one shared TLB hierarchy, per-process stat
 * attribution, scheduler accounting, the differential oracle under
 * deliberately overlapping virtual address spaces, and the sweep
 * determinism contract (`--jobs 1` == `--jobs 8`, byte-identical).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/contracts.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

namespace
{

constexpr TlbDesign Headline[] = {
    TlbDesign::Split,      TlbDesign::Mix,  TlbDesign::MixColt,
    TlbDesign::HashRehash, TlbDesign::Skew,
};

MultiRunConfig
smallMultiConfig(TlbDesign design, SwitchPolicy policy)
{
    MultiRunConfig config;
    config.design = design;
    config.policy = policy;
    config.numProcs = 2;
    config.quantum = 512;
    config.mix = "gups,streamcluster";
    config.memBytes = 512 * MiB;
    config.footprintPerProc = 16 * MiB;
    config.refsPerProc = 6000;
    config.seed = 11;
    return config;
}

MultiMachineParams
smallMachineParams(SwitchPolicy policy)
{
    MultiMachineParams params;
    params.name = "multi_test";
    params.memBytes = 512 * MiB;
    params.quantum = 256;
    params.policy = policy;
    params.design = TlbDesign::Split;
    params.procs.resize(2);
    return params;
}

/** Map, warm, and attach a gups stream for every process. */
void
wireWorkloads(MultiMachine &machine, std::uint64_t footprint,
              std::uint64_t seed)
{
    std::vector<VAddr> bases;
    for (unsigned i = 0; i < machine.numProcs(); i++) {
        bases.push_back(machine.mapArena(i, footprint));
        machine.warmup(i, bases[i], footprint);
    }
    machine.startMeasurement();
    for (unsigned i = 0; i < machine.numProcs(); i++) {
        machine.attachWorkload(
            i, workload::makeGenerator("gups", bases[i], footprint,
                                       sweepPointSeed(seed, i)));
    }
}

/** Build CliArgs from a flag list (argv[0] is prepended). */
CliArgs
makeSweepArgs(std::vector<std::string> flags)
{
    flags.insert(flags.begin(), "test");
    std::vector<char *> argv;
    argv.reserve(flags.size());
    for (auto &flag : flags)
        argv.push_back(flag.data());
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

/** A small multiprog grid: two designs, both policies paired. */
SweepGrid
multiGrid()
{
    SweepGrid grid;
    for (TlbDesign design : {TlbDesign::Split, TlbDesign::Skew}) {
        MultiRunConfig config =
            smallMultiConfig(design, SwitchPolicy::FullFlush);
        config.refsPerProc = 3000;
        auto flush =
            grid.add("multiprog",
                     std::string(designName(design)) + "/flush",
                     config);
        config.policy = SwitchPolicy::AsidTagged;
        grid.addPaired(flush, "multiprog",
                       std::string(designName(design)) + "/asid",
                       config);
    }
    return grid;
}

json::Value
goldenMultiDoc(const char *jobs)
{
    auto args = makeSweepArgs({"--jobs", jobs, "--no-timing"});
    BenchSweep sweep(args, "multiprog");
    sweep.run(multiGrid());
    EXPECT_EQ(sweep.finish(), 0);
    return sweep.doc();
}

} // anonymous namespace

TEST(MultiMachine, SwitchAccountingUnderFullFlush)
{
    MultiMachine machine(smallMachineParams(SwitchPolicy::FullFlush));
    wireWorkloads(machine, 8 * MiB, 3);
    machine.run(4000);

    // 2 procs x ceil(4000/256) slices round-robin: switches happen.
    EXPECT_GT(machine.contextSwitches(), 0.0);
    // Every real switch under the untagged policy flushes.
    EXPECT_EQ(machine.fullFlushes(), machine.contextSwitches());
}

TEST(MultiMachine, AsidTaggedNeverFlushes)
{
    MultiMachine machine(smallMachineParams(SwitchPolicy::AsidTagged));
    wireWorkloads(machine, 8 * MiB, 3);
    machine.run(4000);

    EXPECT_GT(machine.contextSwitches(), 0.0);
    EXPECT_EQ(machine.fullFlushes(), 0.0);
}

TEST(MultiMachine, PerProcessStatsSumToHierarchyTotals)
{
    MultiMachine machine(smallMachineParams(SwitchPolicy::AsidTagged));
    wireWorkloads(machine, 8 * MiB, 3);
    const std::uint64_t done = machine.run(4000);
    EXPECT_EQ(done, 2u * 4000u);

    double accesses = 0, l1_hits = 0, walks = 0;
    for (unsigned i = 0; i < machine.numProcs(); i++) {
        accesses += machine.procStat(i, "accesses");
        l1_hits += machine.procStat(i, "l1_hits");
        walks += machine.procStat(i, "walks");
        EXPECT_GT(machine.procStat(i, "accesses"), 0.0);
    }
    EXPECT_DOUBLE_EQ(accesses, machine.tlbs().accessCount());
    EXPECT_DOUBLE_EQ(l1_hits, machine.tlbs().l1HitCount());
    EXPECT_DOUBLE_EQ(walks, machine.tlbs().walkCount());
}

TEST(MultiMachine, OracleCleanWithOverlappingAddressSpaces)
{
    // Every process mmaps at the same default base, so all address
    // spaces overlap — the strongest ASID-correctness stress. At
    // paranoia 2 each translation is cross-checked against the
    // current process's page table; a cross-ASID hit would be caught.
    contracts::setParanoia(2);
    for (SwitchPolicy policy :
         {SwitchPolicy::FullFlush, SwitchPolicy::AsidTagged}) {
        MultiMachine machine(smallMachineParams(policy));
        ASSERT_EQ(machine.process(0).pageTable().translate(0).has_value(),
                  machine.process(1).pageTable().translate(0).has_value());
        wireWorkloads(machine, 8 * MiB, 5);
        machine.run(3000);
        EXPECT_GT(machine.tlbs().oracleCheckCount(), 0.0);
    }
    contracts::setParanoia(0);
}

TEST(MultiProg, AsidTaggingBeatsFullFlushAcrossHeadlineDesigns)
{
    for (TlbDesign design : Headline) {
        SCOPED_TRACE(designName(design));
        RunResult flush = runMulti(
            smallMultiConfig(design, SwitchPolicy::FullFlush));
        RunResult asid = runMulti(
            smallMultiConfig(design, SwitchPolicy::AsidTagged));
        // Same seed, same streams: the only difference is the flush.
        EXPECT_LE(asid.l1MissRate, flush.l1MissRate);
        ASSERT_EQ(asid.procL1MissRates.size(), 2u);
        EXPECT_GT(flush.fullFlushes, 0.0);
        EXPECT_EQ(asid.fullFlushes, 0.0);
    }
    // At least the split baseline must show a strict win.
    RunResult flush = runMulti(
        smallMultiConfig(TlbDesign::Split, SwitchPolicy::FullFlush));
    RunResult asid = runMulti(
        smallMultiConfig(TlbDesign::Split, SwitchPolicy::AsidTagged));
    EXPECT_LT(asid.l1MissRate, flush.l1MissRate);
}

TEST(MultiProg, GoldenReportBytesIdenticalAcrossJobCounts)
{
    auto serial = goldenMultiDoc("1");
    auto parallel = goldenMultiDoc("8");
    const json::Value *serial_results = serial.find("results");
    const json::Value *parallel_results = parallel.find("results");
    ASSERT_NE(serial_results, nullptr);
    ASSERT_NE(parallel_results, nullptr);
    EXPECT_EQ(serial_results->dump(2), parallel_results->dump(2));
    EXPECT_EQ(serial.find("failures")->dump(2),
              parallel.find("failures")->dump(2));
    EXPECT_EQ(serial_results->size(), multiGrid().size());

    // The multi block must round-trip through a record.
    const json::Value &record =
        serial_results->members().at(0).second;
    const json::Value *multi = record.find("multi");
    ASSERT_NE(multi, nullptr);
    RunResult restored = resultFromJson(record);
    EXPECT_EQ(restored.procL1MissRates.size(), 2u);
    EXPECT_GT(restored.contextSwitches, 0.0);
}
