/**
 * @file
 * Tests for the GPU system: per-core L1 TLBs over a shared L2 and a
 * shared walker, warp-interleaved execution, and GPU-wide shootdowns.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_system.hh"
#include "os/memory_manager.hh"
#include "os/process.hh"
#include "sim/configs.hh"
#include "tlb/walk_source.hh"

using namespace mixtlb;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

struct GpuFixture : ::testing::Test
{
    mem::PhysMem mem{4 * GiB};
    stats::StatGroup root{"test"};
    os::MemoryManager mm{mem, &root};
    os::Process proc;
    cache::CacheHierarchy caches{cache::HierarchyParams{}, &root};
    tlb::NativeWalkSource source;

    GpuFixture()
        : proc(mm, []{
              os::ProcessParams params;
              params.policy = os::PagePolicy::Thp;
              return params;
          }(), &root),
          source(proc.pageTable(), &root, [this](VAddr va, bool st) {
              return proc.touch(va, st) != os::TouchResult::OutOfMemory;
          })
    {}

    std::unique_ptr<gpu::GpuSystem>
    makeGpu(sim::TlbDesign design, unsigned cores = 4)
    {
        gpu::GpuParams params;
        params.numCores = cores;
        auto l2 = sim::makeGpuL2(design, &root, &proc.pageTable());
        return std::make_unique<gpu::GpuSystem>(
            params, &root,
            [&, design](unsigned core, stats::StatGroup *parent) {
                return sim::makeGpuCoreL1(design, core, parent,
                                          &proc.pageTable());
            },
            l2, source, caches);
    }

    std::vector<std::unique_ptr<workload::TraceGenerator>>
    makeGenerators(const std::string &name, VAddr base,
                   std::uint64_t bytes, unsigned cores)
    {
        std::vector<std::unique_ptr<workload::TraceGenerator>> gens;
        for (unsigned core = 0; core < cores; core++)
            gens.push_back(workload::makeGenerator(name, base, bytes,
                                                   1000 + core));
        return gens;
    }
};

} // anonymous namespace

TEST_F(GpuFixture, RunsWarpInterleavedAcrossCores)
{
    auto gpu_system = makeGpu(sim::TlbDesign::Mix);
    VAddr base = proc.mmap(128 * MiB);
    auto gens = makeGenerators("bfs", base, 64 * MiB, 4);
    Cycles cycles = gpu_system->run(gens, 40000);
    EXPECT_GT(cycles, 0u);
    // Every core saw roughly total/4 references.
    for (unsigned core = 0; core < 4; core++) {
        EXPECT_NEAR(gpu_system->core(core).accessCount(), 10000.0, 64.0)
            << core;
    }
}

TEST_F(GpuFixture, SharedL2ServesAllCores)
{
    auto gpu_system = makeGpu(sim::TlbDesign::Mix);
    VAddr base = proc.mmap(128 * MiB);
    // Core 0 warms the shared L2; later cores reuse its fills.
    auto gens = makeGenerators("pathfinder", base, 8 * MiB, 4);
    gpu_system->run(gens, 80000);
    double l2_hits = 0;
    for (unsigned core = 1; core < 4; core++)
        l2_hits += gpu_system->core(core).l2HitCount();
    EXPECT_GT(l2_hits, 0.0);
}

TEST_F(GpuFixture, ShootdownHitsEveryCore)
{
    auto gpu_system = makeGpu(sim::TlbDesign::Mix);
    VAddr base = proc.mmap(128 * MiB);
    auto gens = makeGenerators("pathfinder", base, 8 * MiB, 4);
    gpu_system->run(gens, 20000);
    auto leaf = proc.pageTable().translate(base);
    ASSERT_TRUE(leaf.has_value());
    gpu_system->invalidatePage(leaf->vbase, leaf->size);
    for (unsigned core = 0; core < 4; core++) {
        auto result = gpu_system->core(core).l1().lookup(base, false);
        EXPECT_FALSE(result.hit) << core;
    }
}

TEST_F(GpuFixture, MixBeatsSplitOnGpuWorkloads)
{
    // The headline GPU claim, in miniature: identical footprints and
    // reference streams, THS paging; MIX should miss less than split.
    VAddr base = proc.mmap(512 * MiB);

    // Initialization sweep (the kernel's input upload): ascending
    // first-touch hands contiguous frames and warms the TLB state.
    auto warm = [&](gpu::GpuSystem &system) {
        for (VAddr va = base; va < base + 256 * MiB; va += PageBytes4K)
            system.core((va >> PageShift4K) % 4).access(va, true);
    };

    auto split_gpu = makeGpu(sim::TlbDesign::Split);
    warm(*split_gpu);
    auto gens_a = makeGenerators("bfs", base, 256 * MiB, 4);
    Cycles split_cycles = split_gpu->run(gens_a, 100000);

    auto mix_gpu = makeGpu(sim::TlbDesign::Mix);
    warm(*mix_gpu);
    auto gens_b = makeGenerators("bfs", base, 256 * MiB, 4);
    Cycles mix_cycles = mix_gpu->run(gens_b, 100000);

    EXPECT_LT(mix_cycles, split_cycles);
}
