/**
 * @file
 * Tests for the sweep runner: grid-order result collection, per-point
 * seed derivation, and the headline determinism contract — a sweep
 * run with `--jobs 1` and `--jobs 8` must produce bit-identical
 * RunResults, because seeds derive from (base seed, point index) and
 * never from thread scheduling.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

namespace
{

/** A small but heterogeneous grid: native pairs plus a 2-VM point. */
SweepGrid
smallGrid()
{
    SweepGrid grid;
    for (const char *workload : {"gups", "graph500"}) {
        NativeRunConfig config;
        config.workload = workload;
        config.memBytes = 512 * MiB;
        config.footprintBytes = 32 * MiB;
        config.refs = 4000;
        config.design = TlbDesign::Split;
        auto split = grid.add("native",
                              std::string(workload) + "/split",
                              config);
        config.design = TlbDesign::Mix;
        grid.addPaired(split, "native",
                       std::string(workload) + "/mix", config);
    }
    VirtRunConfig virt_config;
    virt_config.numVms = 2;
    virt_config.hostMemBytes = 512 * MiB;
    virt_config.footprintBytes = 16 * MiB;
    virt_config.refsPerVm = 2000;
    grid.add("virt", "memcached/2vm", virt_config);
    return grid;
}

void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.metrics.refs, b.metrics.refs);
    EXPECT_DOUBLE_EQ(a.metrics.translationCycles,
                     b.metrics.translationCycles);
    EXPECT_DOUBLE_EQ(a.metrics.baseCycles, b.metrics.baseCycles);
    EXPECT_DOUBLE_EQ(a.metrics.totalCycles, b.metrics.totalCycles);
    EXPECT_DOUBLE_EQ(a.l1MissRate, b.l1MissRate);
    EXPECT_DOUBLE_EQ(a.walksPerKref, b.walksPerKref);
    EXPECT_DOUBLE_EQ(a.accessesPerWalk, b.accessesPerWalk);
    EXPECT_DOUBLE_EQ(a.energy.l1WaysRead, b.energy.l1WaysRead);
    EXPECT_DOUBLE_EQ(a.energy.l1Fills, b.energy.l1Fills);
    EXPECT_DOUBLE_EQ(a.energy.l2Fills, b.energy.l2Fills);
    EXPECT_DOUBLE_EQ(a.energy.walkAccesses, b.energy.walkAccesses);
    EXPECT_DOUBLE_EQ(a.energy.fillBurstFactor,
                     b.energy.fillBurstFactor);
    EXPECT_EQ(a.distribution.bytes4k, b.distribution.bytes4k);
    EXPECT_EQ(a.distribution.bytes2m, b.distribution.bytes2m);
    EXPECT_EQ(a.distribution.bytes1g, b.distribution.bytes1g);
}

} // anonymous namespace

TEST(SweepRunner, ResultsLandInGridOrder)
{
    SweepRunner runner(SweepParams{8});
    auto results = runner.run<std::size_t>(
        100, [](std::size_t index) { return index * index; });
    ASSERT_EQ(results.size(), 100u);
    for (std::size_t i = 0; i < results.size(); i++)
        EXPECT_EQ(results[i], i * i);
}

TEST(SweepRunner, PointSeedsDeterministicAndDecorrelated)
{
    EXPECT_EQ(sweepPointSeed(3, 0), sweepPointSeed(3, 0));
    std::set<std::uint64_t> seeds;
    for (std::uint64_t index = 0; index < 1000; index++)
        seeds.insert(sweepPointSeed(3, index));
    EXPECT_EQ(seeds.size(), 1000u); // no collisions on a real grid
    EXPECT_NE(sweepPointSeed(3, 0), sweepPointSeed(4, 0));
    EXPECT_NE(sweepPointSeed(0, 0), 0u); // never the degenerate seed
}

TEST(SweepRunner, PairedJobsShareSeeds)
{
    auto grid = smallGrid();
    // split/mix of one cell share a point; separate cells do not.
    EXPECT_EQ(effectiveSeed(grid.jobs()[0]),
              effectiveSeed(grid.jobs()[1]));
    EXPECT_NE(effectiveSeed(grid.jobs()[0]),
              effectiveSeed(grid.jobs()[2]));
}

TEST(SweepRunner, RunPropagatesBodyExceptions)
{
    // The plain (non-checked) runner must surface a worker exception
    // through wait() as a rethrow, not a std::terminate.
    SweepRunner runner(SweepParams{4});
    EXPECT_THROW(
        runner.run<int>(16,
                        [](std::size_t index) -> int {
                            if (index == 7)
                                throw std::runtime_error("boom");
                            return static_cast<int>(index);
                        }),
        std::runtime_error);
}

TEST(SweepRunner, ParallelSweepIsBitIdenticalToSerial)
{
    auto grid = smallGrid();
    const auto &jobs = grid.jobs();
    auto run_with = [&jobs](unsigned n) {
        SweepRunner runner(SweepParams{n});
        return runner.run<RunResult>(
            jobs.size(),
            [&jobs](std::size_t index) { return runJob(jobs[index]); });
    };
    auto serial = run_with(1);
    auto parallel = run_with(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); i++)
        expectIdentical(serial[i], parallel[i], jobs[i].label);
    // And a second parallel run reproduces the first exactly.
    auto again = run_with(8);
    for (std::size_t i = 0; i < serial.size(); i++)
        expectIdentical(parallel[i], again[i], jobs[i].label);
}

namespace
{

/** Build CliArgs from a flag list (argv[0] is prepended). */
CliArgs
makeSweepArgs(std::vector<std::string> flags)
{
    flags.insert(flags.begin(), "test");
    std::vector<char *> argv;
    argv.reserve(flags.size());
    for (auto &flag : flags)
        argv.push_back(flag.data());
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

/** The full report produced by one BenchSweep over smallGrid(). */
json::Value
goldenSweepDoc(const char *jobs)
{
    auto args = makeSweepArgs({"--jobs", jobs, "--no-timing"});
    BenchSweep sweep(args, "golden");
    sweep.run(smallGrid());
    EXPECT_EQ(sweep.finish(), 0);
    return sweep.doc();
}

} // anonymous namespace

TEST(SweepRunner, GoldenReportBytesIdenticalAcrossJobCounts)
{
    // The headline determinism contract at the JSON layer: the full
    // per-point records a --jobs 1 and a --jobs 8 sweep emit (with
    // wall-clock timing suppressed) must serialize to the same bytes.
    auto serial = goldenSweepDoc("1");
    auto parallel = goldenSweepDoc("8");
    const json::Value *serial_results = serial.find("results");
    const json::Value *parallel_results = parallel.find("results");
    ASSERT_NE(serial_results, nullptr);
    ASSERT_NE(parallel_results, nullptr);
    EXPECT_EQ(serial_results->dump(2), parallel_results->dump(2));
    EXPECT_EQ(serial.find("failures")->dump(2),
              parallel.find("failures")->dump(2));
    EXPECT_EQ(serial_results->size(), smallGrid().size());
}

TEST(SweepRunner, TimingBlockPresentByDefaultAndSuppressible)
{
    SweepGrid grid;
    NativeRunConfig config;
    config.workload = "gups";
    config.memBytes = 256 * MiB;
    config.footprintBytes = 16 * MiB;
    config.refs = 2000;
    grid.add("native", "gups/split", config);

    {
        auto args = makeSweepArgs({"--jobs", "1"});
        BenchSweep sweep(args, "timing");
        sweep.run(grid);
        EXPECT_EQ(sweep.finish(), 0);
        const json::Value &record =
            sweep.doc().find("results")->members().at(0).second;
        const json::Value *timing = record.find("timing");
        ASSERT_NE(timing, nullptr);
        const json::Value *wall = timing->find("wall_seconds");
        const json::Value *rate = timing->find("refs_per_sec");
        ASSERT_NE(wall, nullptr);
        ASSERT_NE(rate, nullptr);
        EXPECT_GT(wall->number(), 0.0);
        EXPECT_GT(rate->number(), 0.0);
    }
    {
        auto args = makeSweepArgs({"--jobs", "1", "--no-timing"});
        BenchSweep sweep(args, "timing");
        sweep.run(grid);
        EXPECT_EQ(sweep.finish(), 0);
        const json::Value &record =
            sweep.doc().find("results")->members().at(0).second;
        EXPECT_EQ(record.find("timing"), nullptr);
    }
}
