#ifndef MIXTLB_COMMON_OPS_HH
#define MIXTLB_COMMON_OPS_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fx
{

constexpr unsigned WordBits = 64;

template <typename T, unsigned N>
struct InlineVec
{
    void push_back(const T &value);
};

struct Stats
{
    double scalar(const char *name) const;
    void addScalar(const char *name, double value);
};

inline std::uint64_t
maskedShift(std::uint64_t value, unsigned n)
{
    return value << (n & 63);
}

inline std::uint64_t
constShift(std::uint64_t value)
{
    return value >> (WordBits - 32);
}

struct Ledger
{
    std::unordered_map<int, int> cells_;
    InlineVec<int, 4> scratch_;

    // mixcheck: hot
    void record(int value)
    {
        scratch_.push_back(value);
    }

    void report(Stats &stats)
    {
        std::vector<int> keys;
        keys.reserve(cells_.size());
        for (const auto &kv : cells_)
            keys.push_back(kv.first);
        std::sort(keys.begin(), keys.end());
        for (int key : keys)
            stats.addScalar("cells", cells_.at(key));
    }

    double readBack(const Stats &stats) const
    {
        return stats.scalar("cells");
    }
};

} // namespace fx

#endif // MIXTLB_COMMON_OPS_HH
