#ifndef MIXTLB_COMMON_SIMD_HH
#define MIXTLB_COMMON_SIMD_HH

#include <immintrin.h>

namespace fx
{

// The sanctioned kernel home: raw intrinsics in src/common/simd.hh
// must NOT fire the simd rule.
inline unsigned
firstEqualMask(const long long *lane)
{
    __m128i v = _mm_loadu_si128((const __m128i *)lane);
    return (unsigned)_mm_movemask_epi8(v);
}

} // namespace fx

#endif // MIXTLB_COMMON_SIMD_HH
