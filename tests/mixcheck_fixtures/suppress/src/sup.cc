#include <cstdint>

namespace fx
{

std::uint64_t
reasoned(unsigned n)
{
    // mixcheck: allow(shift-width) -- fixture: exercises a reasoned suppression
    return 1 << n;
}

std::uint64_t
reasonless(unsigned n)
{
    // mixcheck: allow(shift-width)
    return 2 << n;
}

} // namespace fx
