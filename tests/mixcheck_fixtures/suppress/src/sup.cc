#include <cstdint>

namespace fx
{

std::uint64_t
reasoned(unsigned n)
{
    // mixcheck: allow(shift-width) -- fixture: exercises a reasoned suppression
    return 1 << n;
}

std::uint64_t
reasonless(unsigned n)
{
    // mixcheck: allow(shift-width)
    return 2 << n;
}

unsigned
vecok(const long long *lane)
{
    // mixcheck: allow(simd) -- fixture: reasoned intrinsic escape
    return (unsigned)_mm_movemask_epi8(*(const __m128i *)lane);
}

} // namespace fx
