namespace fx
{

struct Stats
{
    double scalar(const char *name) const;
    void addScalar(const char *name, double value);
};

void
registerAll(Stats &stats)
{
    stats.addScalar("l1_miss_rate", 0.0);
}

double
readBack(const Stats &stats)
{
    return stats.scalar("l1_miss_rate");
}

double
readMissing(const Stats &stats)
{
    return stats.scalar("renamed_metric");
}

} // namespace fx
