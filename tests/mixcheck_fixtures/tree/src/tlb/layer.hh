#ifndef MIXTLB_TLB_LAYER_HH
#define MIXTLB_TLB_LAYER_HH

#include "workload/gen.hh"

#endif // MIXTLB_TLB_LAYER_HH
