namespace fx
{

template <typename T, unsigned N>
struct InlineVec
{
    void push_back(const T &value);
};

struct Batcher
{
    InlineVec<int, 8> pending_;

    // mixcheck: hot
    void enqueue(int value)
    {
        pending_.push_back(value);
    }
};

} // namespace fx
