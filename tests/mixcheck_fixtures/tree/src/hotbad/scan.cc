#include <algorithm>
#include <vector>

namespace fx
{

struct Entry
{
    unsigned long vbase;
    int payload;
};

struct Probe
{
    std::vector<Entry> entries_;

    // mixcheck: hot
    int lookup(unsigned long vbase)
    {
        auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry &e) {
                                   return e.vbase == vbase;
                               });
        return it == entries_.end() ? -1 : it->payload;
    }

    // mixcheck: hot
    int lookupReference(unsigned long vbase)
    {
        // mixcheck: soa-scan
        auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry &e) {
                                   return e.vbase == vbase;
                               });
        return it == entries_.end() ? -1 : it->payload;
    }
};

} // namespace fx
