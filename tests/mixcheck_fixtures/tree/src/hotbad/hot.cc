#include <vector>

namespace fx
{

struct Worker
{
    std::vector<int> queue_;

    // mixcheck: hot
    void push(int value)
    {
        queue_.push_back(value);
        int *leak = new int(value);
        (void)leak;
    }
};

} // namespace fx
