#ifndef MIXTLB_COMMON_CYC_A_HH
#define MIXTLB_COMMON_CYC_A_HH

#include "common/cyc_b.hh"

#endif // MIXTLB_COMMON_CYC_A_HH
