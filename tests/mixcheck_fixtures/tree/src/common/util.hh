#ifndef MIXTLB_COMMON_UTIL_HH
#define MIXTLB_COMMON_UTIL_HH

#include <cstdint>

namespace fx
{

constexpr unsigned Shift = 12;

}

#endif // MIXTLB_COMMON_UTIL_HH
