#ifndef MIXTLB_COMMON_CYC_B_HH
#define MIXTLB_COMMON_CYC_B_HH

#include "common/cyc_a.hh"

#endif // MIXTLB_COMMON_CYC_B_HH
