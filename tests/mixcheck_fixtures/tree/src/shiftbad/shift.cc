#include "common/util.hh"

#include <cstdint>

namespace fx
{

std::uint64_t
intLiteral()
{
    return 1 << 22;
}

std::uint64_t
unproven(std::uint64_t value, unsigned n)
{
    return value << n;
}

std::uint64_t
masked(std::uint64_t value, unsigned n)
{
    return value << (n & 63);
}

std::uint64_t
constantAmount(std::uint64_t value)
{
    return value >> Shift;
}

} // namespace fx
