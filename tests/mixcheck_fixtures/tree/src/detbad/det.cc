#include <ctime>
#include <map>
#include <random>
#include <unordered_map>

namespace fx
{

struct Stats
{
    void addScalar(const char *name, double value);
};

struct Hist
{
    std::unordered_map<int, int> counts_;
    std::map<Stats *, int> byOwner_;

    void report(Stats &stats)
    {
        for (auto [key, value] : counts_) {
            stats.addScalar("bucket", static_cast<double>(value));
        }
    }

    long stamp() const
    {
        return time(nullptr);
    }

    int entropy()
    {
        std::random_device rd;
        return static_cast<int>(rd());
    }
};

} // namespace fx
