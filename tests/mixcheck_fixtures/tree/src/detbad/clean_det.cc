#include <algorithm>
#include <unordered_map>
#include <vector>

namespace fx
{

struct Stats
{
    void addScalar(const char *name, double value);
};

struct SortedHist
{
    std::unordered_map<int, int> sortedCounts_;

    void report(Stats &stats)
    {
        std::vector<int> keys;
        keys.reserve(sortedCounts_.size());
        for (const auto &kv : sortedCounts_)
            keys.push_back(kv.first);
        std::sort(keys.begin(), keys.end());
        for (int key : keys) {
            stats.addScalar("bucket", sortedCounts_.at(key));
        }
    }
};

} // namespace fx
