namespace fx
{

struct Stats
{
    double value(const char *name) const;
    void addCounter(const char *name);
};

void
registerLifecycle(Stats &stats)
{
    stats.addCounter("demotions");
    stats.addCounter("reclaims");
    stats.addCounter("repromotions");
}

double
readDemotions(const Stats &stats)
{
    return stats.value("demotions");
}

double
readRenamed(const Stats &stats)
{
    // Consumer kept the old name after the producer was renamed.
    return stats.value("superpage_demotions");
}

} // namespace fx
