#include <immintrin.h>

namespace fx
{

unsigned
probe(const long long *lane)
{
    __m128i v = _mm_loadu_si128((const __m128i *)lane);
    return (unsigned)_mm_movemask_epi8(v);
}

unsigned long long
probe_neon(const unsigned long long *lane)
{
    return vld1q_u64(lane)[0];
}

} // namespace fx
