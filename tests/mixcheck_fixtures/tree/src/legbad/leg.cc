#include <cassert>
#include <cstdlib>

void
check(int value)
{
    assert(value > 0);
    int noise = rand();
    (void)noise;
}
