"""Fixture validator: consumes one registered and one ghost metric."""
import json
import sys


def main(path):
    data = json.loads(open(path).read())
    ok = data["metrics"]["l1_miss_rate"] <= 1.0
    bad = data["metrics"]["ghost_metric"] > 0
    return 0 if ok and not bad else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1]))
