"""Fixture validator: lifecycle metrics, one ghost key."""
import json
import sys


def main(path):
    data = json.loads(open(path).read())
    demotions = data["metrics"]["demotions"]
    storms = data.get("metrics", {}).get("demotion_storms", 0)
    return 0 if demotions >= 0 and not storms else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1]))
