/**
 * @file
 * Tests for the resilience layer: deterministic fault injection
 * (schedule determinism, point pinning, scoping), the recoverable
 * error tier under injected faults, the resilient sweep runner
 * (quarantine, retries, deadlines), and the BenchSweep harness's
 * checkpoint/resume bit-identity contract.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/contracts.hh"
#include "common/fault.hh"

using namespace mixtlb;
using namespace mixtlb::bench;
using namespace mixtlb::sim;

namespace
{

/** Scoped paranoia level: the global is reset on test exit. */
struct ParanoiaGuard
{
    explicit ParanoiaGuard(unsigned level)
    {
        contracts::setParanoia(level);
    }
    ~ParanoiaGuard() { contracts::setParanoia(0); }
};

/** Build CliArgs from a flag list (argv[0] is prepended). */
CliArgs
makeArgs(std::vector<std::string> flags)
{
    flags.insert(flags.begin(), "test");
    std::vector<char *> argv;
    argv.reserve(flags.size());
    for (auto &flag : flags)
        argv.push_back(flag.data());
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

/** A cheap 4-job native grid (two split/mix cells). */
SweepGrid
cheapGrid()
{
    SweepGrid grid;
    for (const char *workload : {"gups", "graph500"}) {
        NativeRunConfig config;
        config.workload = workload;
        config.memBytes = 256 * MiB;
        config.footprintBytes = 16 * MiB;
        config.refs = 2000;
        config.design = TlbDesign::Split;
        auto split = grid.add("native",
                              std::string(workload) + "/split",
                              config);
        config.design = TlbDesign::Mix;
        grid.addPaired(split, "native",
                       std::string(workload) + "/mix", config);
    }
    return grid;
}

std::string
readAll(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    EXPECT_NE(file, nullptr) << path;
    std::string content;
    if (file) {
        char buffer[4096];
        std::size_t got;
        while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
            content.append(buffer, got);
        std::fclose(file);
    }
    return content;
}

void
writeAll(const std::string &path, const std::string &content)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr) << path;
    std::fwrite(content.data(), 1, content.size(), file);
    std::fclose(file);
}

} // anonymous namespace

// ---------------------------------------------------------------------
// FaultConfig parsing.

TEST(FaultConfig, ParsesSpecsAndDefaults)
{
    auto empty = fault::FaultConfig::parse("");
    EXPECT_FALSE(empty.any());

    auto config = fault::FaultConfig::parse(
        "buddy-alloc=0.25,walk-latency=1.0@17");
    EXPECT_TRUE(config.any());
    const auto &buddy = config.at(fault::Site::BuddyAlloc);
    EXPECT_DOUBLE_EQ(buddy.rate, 0.25);
    EXPECT_FALSE(buddy.pointLimited);
    const auto &walk = config.at(fault::Site::WalkLatency);
    EXPECT_DOUBLE_EQ(walk.rate, 1.0);
    EXPECT_TRUE(walk.pointLimited);
    EXPECT_EQ(walk.point, 17u);
    EXPECT_DOUBLE_EQ(config.at(fault::Site::PressureBurst).rate, 0.0);
    EXPECT_DOUBLE_EQ(config.at(fault::Site::TraceCorrupt).rate, 0.0);
}

TEST(FaultConfigDeathTest, RejectsBadSpecs)
{
    EXPECT_EXIT(fault::FaultConfig::parse("bogus-site=0.5"),
                ::testing::ExitedWithCode(1), "unknown fault site");
    EXPECT_EXIT(fault::FaultConfig::parse("buddy-alloc=2.5"),
                ::testing::ExitedWithCode(1), "not a probability");
    EXPECT_EXIT(fault::FaultConfig::parse("buddy-alloc"),
                ::testing::ExitedWithCode(1), "site=rate");
}

TEST(FaultConfig, SiteNamesRoundTrip)
{
    for (std::size_t i = 0; i < fault::SiteCount; i++) {
        auto site = static_cast<fault::Site>(i);
        auto back = fault::siteFromName(fault::siteName(site));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(static_cast<std::size_t>(*back), i);
    }
    EXPECT_FALSE(fault::siteFromName("nonsense").has_value());
}

// ---------------------------------------------------------------------
// Fault scheduling: scoped, deterministic, rate-faithful.

TEST(FaultScope, InertOutsideAnyScope)
{
    EXPECT_FALSE(fault::active());
    for (std::size_t i = 0; i < fault::SiteCount; i++)
        EXPECT_FALSE(fault::fire(static_cast<fault::Site>(i)));
    EXPECT_FALSE(fault::deadlineExpired());
}

TEST(FaultScope, ScheduleIsAPureFunctionOfTheSeed)
{
    auto config = fault::FaultConfig::parse("buddy-alloc=0.3");
    auto draw_pattern = [&config](std::uint64_t seed) {
        fault::FaultScope scope(config, seed, 0);
        std::vector<bool> pattern;
        for (int draw = 0; draw < 200; draw++)
            pattern.push_back(fault::fire(fault::Site::BuddyAlloc));
        return pattern;
    };
    EXPECT_EQ(draw_pattern(42), draw_pattern(42));
    EXPECT_NE(draw_pattern(42), draw_pattern(43));
}

TEST(FaultScope, RateMatchesFiringFrequency)
{
    auto config = fault::FaultConfig::parse("walk-latency=0.25");
    fault::FaultScope scope(config, 7, 0);
    const int draws = 20000;
    for (int draw = 0; draw < draws; draw++)
        fault::fire(fault::Site::WalkLatency);
    double frequency =
        static_cast<double>(scope.fired(fault::Site::WalkLatency))
        / draws;
    EXPECT_NEAR(frequency, 0.25, 0.02);
    EXPECT_EQ(scope.fired(fault::Site::BuddyAlloc), 0u);

    auto counts = scope.firedCounts();
    EXPECT_EQ(counts[static_cast<std::size_t>(
                  fault::Site::WalkLatency)],
              scope.fired(fault::Site::WalkLatency));
}

TEST(FaultScope, RateExtremesNeverAndAlwaysFire)
{
    auto config = fault::FaultConfig::parse("buddy-alloc=1.0");
    fault::FaultScope scope(config, 11, 0);
    for (int draw = 0; draw < 100; draw++) {
        EXPECT_TRUE(fault::fire(fault::Site::BuddyAlloc));
        EXPECT_FALSE(fault::fire(fault::Site::PressureBurst));
    }
}

TEST(FaultScope, PointPinningLimitsInjection)
{
    auto config = fault::FaultConfig::parse("buddy-alloc=1.0@5");
    {
        fault::FaultScope scope(config, 3, 5);
        EXPECT_TRUE(fault::fire(fault::Site::BuddyAlloc));
    }
    {
        fault::FaultScope scope(config, 3, 4);
        for (int draw = 0; draw < 50; draw++)
            EXPECT_FALSE(fault::fire(fault::Site::BuddyAlloc));
    }
}

TEST(FaultScope, ScopesNestAndRestore)
{
    auto outer_config = fault::FaultConfig::parse("buddy-alloc=1.0");
    fault::FaultScope outer(outer_config, 1, 0);
    EXPECT_TRUE(fault::fire(fault::Site::BuddyAlloc));
    {
        fault::FaultScope inner(fault::FaultConfig{}, 2, 0);
        // The inner scope has no sites enabled.
        EXPECT_FALSE(fault::fire(fault::Site::BuddyAlloc));
    }
    // Outer session restored, counters intact.
    EXPECT_TRUE(fault::fire(fault::Site::BuddyAlloc));
    EXPECT_EQ(outer.fired(fault::Site::BuddyAlloc), 2u);
}

TEST(FaultScope, DeadlineArmsOnlyWhenRequested)
{
    {
        fault::FaultScope scope(fault::FaultConfig{}, 1, 0, 0.0);
        EXPECT_FALSE(fault::deadlineExpired());
    }
    {
        fault::FaultScope scope(fault::FaultConfig{}, 1, 0, 1e-6);
        while (!fault::deadlineExpired()) {
            // A microsecond deadline expires almost immediately.
        }
        EXPECT_TRUE(fault::deadlineExpired());
    }
}

// ---------------------------------------------------------------------
// The simulator under injection: degradation is graceful, failures
// surface as recoverable SimErrors, and audits stay clean.

TEST(FaultInjection, BuddyStarvationRaisesRecoverableOom)
{
    NativeRunConfig config;
    config.memBytes = 256 * MiB;
    config.footprintBytes = 16 * MiB;
    config.refs = 1000;
    auto faults = fault::FaultConfig::parse("buddy-alloc=1.0");
    fault::FaultScope scope(faults, 21, 0);
    try {
        runNative(config);
        FAIL() << "total allocation failure produced a result";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), "oom");
    }
    EXPECT_GT(scope.fired(fault::Site::BuddyAlloc), 0u);
}

TEST(FaultInjection, PartialBuddyFailureDegradesToSmallPages)
{
    // THS superpage allocations fail sometimes; the OS falls back to
    // 4KB pages, records the fallback, and the run completes with
    // audits enabled. A seed whose schedule also starves the 4KB
    // retry path raises a recoverable "oom" instead — the two
    // outcomes the resilient sweep is built around. The seed loop is
    // deterministic, so the found seed never changes.
    ParanoiaGuard guard(1);
    NativeRunConfig config;
    config.memBytes = 256 * MiB;
    config.footprintBytes = 64 * MiB;
    config.refs = 2000;
    auto faults = fault::FaultConfig::parse("buddy-alloc=0.05");
    bool degraded_gracefully = false;
    for (std::uint64_t seed = 23; seed < 23 + 8; seed++) {
        fault::FaultScope scope(faults, seed, 0);
        try {
            RunResult result = runNative(config);
            if (scope.fired(fault::Site::BuddyAlloc) > 0
                && result.thpFallbacks > 0.0) {
                EXPECT_GT(result.distribution.bytes4k, 0u);
                degraded_gracefully = true;
                break;
            }
        } catch (const SimError &error) {
            EXPECT_EQ(error.kind(), "oom");
        }
    }
    EXPECT_TRUE(degraded_gracefully);
}

TEST(FaultInjection, WalkLatencySpikesSlowTheRun)
{
    NativeRunConfig config;
    config.policy = os::PagePolicy::SmallOnly;
    config.memBytes = 256 * MiB;
    config.footprintBytes = 64 * MiB;
    config.refs = 20000;
    RunResult clean = runNative(config);

    auto faults = fault::FaultConfig::parse("walk-latency=1.0");
    fault::FaultScope scope(faults, 27, 0);
    RunResult spiked = runNative(config);
    EXPECT_GT(scope.fired(fault::Site::WalkLatency), 0u);
    EXPECT_GT(spiked.metrics.translationCycles,
              clean.metrics.translationCycles);
}

TEST(FaultInjection, PressureBurstsDegradeButComplete)
{
    ParanoiaGuard guard(1);
    NativeRunConfig config;
    config.memBytes = 256 * MiB;
    config.footprintBytes = 16 * MiB;
    config.refs = 20000; // many watchdog periods => many burst draws
    auto faults = fault::FaultConfig::parse("pressure-burst=0.5");
    fault::FaultScope scope(faults, 29, 0);
    RunResult result = runNative(config);
    EXPECT_GT(scope.fired(fault::Site::PressureBurst), 0u);
    EXPECT_EQ(result.metrics.refs, config.refs);
}

// ---------------------------------------------------------------------
// The resilient sweep runner.

TEST(SweepChecked, DeterministicFailureIsQuarantinedAfterRetries)
{
    SweepParams params;
    params.jobs = 4;
    params.retries = 2;
    SweepRunner runner(params);
    std::vector<PointStatus> statuses;
    auto results = runner.runChecked<int>(
        6,
        [](std::size_t i) -> int {
            if (i == 3)
                MIX_RAISE("oom", "synthetic failure at point %zu", i);
            return static_cast<int>(i) + 100;
        },
        [](std::size_t i) { return sweepPointSeed(5, i); }, statuses);

    ASSERT_EQ(statuses.size(), 6u);
    for (std::size_t i = 0; i < statuses.size(); i++) {
        if (i == 3)
            continue;
        EXPECT_TRUE(statuses[i].ok) << i;
        EXPECT_EQ(statuses[i].attempts, 1u) << i;
        EXPECT_EQ(results[i], static_cast<int>(i) + 100);
    }
    EXPECT_FALSE(statuses[3].ok);
    EXPECT_EQ(statuses[3].attempts, 3u); // 1 try + 2 retries
    EXPECT_EQ(statuses[3].errorKind, "oom");
    EXPECT_NE(statuses[3].errorMessage.find("synthetic failure"),
              std::string::npos);
    EXPECT_EQ(results[3], 0); // quarantined points get Result{}
}

TEST(SweepChecked, TransientFailureSucceedsOnRetry)
{
    SweepParams params;
    params.jobs = 2;
    params.retries = 1;
    SweepRunner runner(params);
    std::array<std::atomic<int>, 4> tries{};
    std::vector<PointStatus> statuses;
    auto results = runner.runChecked<int>(
        4,
        [&tries](std::size_t i) -> int {
            if (tries[i]++ == 0 && i == 2)
                MIX_RAISE("io", "transient blip");
            return 1;
        },
        [](std::size_t i) { return sweepPointSeed(9, i); }, statuses);

    EXPECT_TRUE(statuses[2].ok);
    EXPECT_EQ(statuses[2].attempts, 2u);
    EXPECT_TRUE(statuses[2].errorKind.empty());
    EXPECT_EQ(results[2], 1);
}

TEST(SweepChecked, NonSimErrorsAreClassifiedAsExceptions)
{
    SweepParams params;
    params.jobs = 1;
    params.retries = 0;
    SweepRunner runner(params);
    std::vector<PointStatus> statuses;
    runner.runChecked<int>(
        1,
        [](std::size_t) -> int {
            throw std::runtime_error("plain stdlib failure");
        },
        [](std::size_t i) { return sweepPointSeed(1, i); }, statuses);
    EXPECT_FALSE(statuses[0].ok);
    EXPECT_EQ(statuses[0].errorKind, "exception");
}

TEST(SweepChecked, DeadlineQuarantinesWedgedPoints)
{
    SweepParams params;
    params.jobs = 2;
    params.retries = 0;
    params.deadlineSeconds = 1e-6;
    SweepRunner runner(params);
    std::vector<PointStatus> statuses;
    runner.runChecked<int>(
        3,
        [](std::size_t) -> int {
            // A cooperative simulation loop: poll the watchdog and
            // raise, exactly like Machine::run does.
            while (!fault::deadlineExpired()) {
            }
            MIX_RAISE("deadline", "point exceeded its deadline");
        },
        [](std::size_t i) { return sweepPointSeed(2, i); }, statuses);
    for (const auto &status : statuses) {
        EXPECT_FALSE(status.ok);
        EXPECT_EQ(status.errorKind, "deadline");
    }
}

// ---------------------------------------------------------------------
// The BenchSweep harness: quarantine parity across job counts, exit
// codes, and checkpoint/resume bit-identity.

TEST(BenchSweepFault, QuarantineIsIdenticalAcrossJobCounts)
{
    auto run_with = [](const char *jobs) {
        auto args = makeArgs({"--jobs", jobs, "--retries", "1",
                              "--inject", "buddy-alloc=1.0@2",
                              "--allow-failures", "--no-timing"});
        auto sweep = std::make_unique<BenchSweep>(args, "parity");
        sweep->run(cheapGrid());
        return sweep;
    };
    auto serial = run_with("1");
    auto parallel = run_with("8");

    EXPECT_EQ(serial->failures(), 1u);
    EXPECT_EQ(parallel->failures(), 1u);
    const json::Value *results = serial->doc().find("results");
    ASSERT_NE(results, nullptr);
    EXPECT_EQ(results->dump(2),
              parallel->doc().find("results")->dump(2));
    EXPECT_EQ(serial->doc().find("failures")->dump(2),
              parallel->doc().find("failures")->dump(2));

    // The starved point is quarantined with its fault counts; every
    // other point is intact.
    ASSERT_EQ(results->size(), 4u);
    const json::Value &bad = results->members()[2].second;
    EXPECT_EQ(bad.find("status")->str(), "failed");
    EXPECT_EQ(bad.find("error")->find("kind")->str(), "oom");
    EXPECT_EQ(bad.find("attempts")->number(), 2.0);
    EXPECT_GE(bad.find("faults")->find("buddy-alloc")->number(), 1.0);
    for (std::size_t i : {0u, 1u, 3u}) {
        EXPECT_EQ(results->members()[i].second.find("status")->str(),
                  "ok")
            << i;
    }
}

TEST(BenchSweepFault, ExitCodeReflectsFailurePolicy)
{
    {
        auto args = makeArgs({"--jobs", "4", "--retries", "0",
                              "--inject", "buddy-alloc=1.0@0"});
        BenchSweep sweep(args, "exitcode");
        sweep.run(cheapGrid());
        EXPECT_EQ(sweep.failures(), 1u);
        EXPECT_EQ(sweep.finish(), 1);
    }
    {
        auto args = makeArgs({"--jobs", "4", "--retries", "0",
                              "--inject", "buddy-alloc=1.0@0",
                              "--allow-failures"});
        BenchSweep sweep(args, "exitcode");
        sweep.run(cheapGrid());
        EXPECT_EQ(sweep.failures(), 1u);
        EXPECT_EQ(sweep.finish(), 0);
    }
}

TEST(BenchSweepFault, ResumeReproducesTheUninterruptedJson)
{
    const std::string base = "/tmp/mixtlb_test_fault_resume";
    const std::string json_a = base + "_a.json";
    const std::string json_b = base + "_b.json";
    const std::string json_c = base + "_c.json";

    // Reference: one uninterrupted serial run.
    {
        auto args = makeArgs({"--jobs", "1", "--no-timing",
                              "--json", json_a});
        BenchSweep sweep(args, "resume");
        sweep.run(cheapGrid());
        EXPECT_EQ(sweep.finish(), 0);
    }

    // A second run leaves a checkpoint journal; truncate it to the
    // first record plus a torn half-line, as a SIGKILL mid-append
    // would.
    {
        auto args = makeArgs({"--jobs", "1", "--no-timing",
                              "--json", json_b});
        BenchSweep sweep(args, "resume");
        sweep.run(cheapGrid());
        EXPECT_EQ(sweep.finish(), 0);
    }
    const std::string journal = json_b + ".ckpt";
    std::string lines = readAll(journal);
    std::size_t first_newline = lines.find('\n');
    ASSERT_NE(first_newline, std::string::npos);
    writeAll(journal,
             lines.substr(0, first_newline + 1)
                 + lines.substr(first_newline + 1, 20));

    // Resume: point 0 restored from the journal, the rest re-run; the
    // final report must be byte-identical to the uninterrupted one.
    {
        auto args = makeArgs({"--jobs", "1", "--no-timing",
                              "--json", json_c, "--resume",
                              journal});
        BenchSweep sweep(args, "resume");
        sweep.run(cheapGrid());
        EXPECT_EQ(sweep.finish(), 0);
    }
    EXPECT_EQ(readAll(json_a), readAll(json_c));

    for (const auto &path :
         {json_a, json_b, json_c, json_a + ".ckpt", journal}) {
        std::remove(path.c_str());
    }
}

TEST(BenchSweepFaultDeathTest, ResumeRejectsAForeignJournal)
{
    const std::string journal = "/tmp/mixtlb_test_fault_foreign.ckpt";
    writeAll(journal,
             "{\"i\": 0, \"record\": {\"label\": \"someone/else\", "
             "\"config\": {}}}\n");
    auto run = [&journal] {
        auto args = makeArgs({"--jobs", "1", "--resume", journal});
        BenchSweep sweep(args, "foreign");
        sweep.run(cheapGrid());
    };
    EXPECT_EXIT(run(), ::testing::ExitedWithCode(1),
                "does not match this sweep");
    std::remove(journal.c_str());
}
