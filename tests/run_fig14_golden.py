#!/usr/bin/env python3
"""Golden determinism check for the fig14 sweep (ctest: fig14_golden).

Runs the fixed-seed fig14 mini-grid once per worker count and asserts
the emitted JSON reports are identical apart from the recorded "jobs"
field. The hot path carries several bit-exactness fast paths (L0 MRU
filter, SoA tag lanes, fused batch translation); any of them leaking
into modeled results — or any cross-thread nondeterminism in the sweep
runner — shows up here as a report mismatch.

Usage: run_fig14_golden.py <fig14_mix_vs_split binary> [jobs...]
"""

import json
import os
import subprocess
import sys
import tempfile

MINI_GRID = [
    "--refs", "4000",
    "--footprint-mb", "192",
    "--footprint-4k-mb", "96",
    "--no-timing",
]


def fail(message: str) -> None:
    print(f"fig14_golden: FAIL: {message}")
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: run_fig14_golden.py <binary> [jobs...]")
    binary = sys.argv[1]
    jobs = sys.argv[2:] or ["1", "8"]

    reports = {}
    with tempfile.TemporaryDirectory() as tmpdir:
        for n in jobs:
            path = os.path.join(tmpdir, f"fig14_j{n}.json")
            cmd = [binary, *MINI_GRID, "--jobs", n, "--json", path]
            result = subprocess.run(
                cmd, stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE, text=True
            )
            if result.returncode != 0:
                fail(
                    f"--jobs {n} exited {result.returncode}:\n"
                    f"{result.stderr}"
                )
            with open(path, encoding="utf-8") as handle:
                report = json.load(handle)
            report.pop("jobs", None)
            reports[n] = json.dumps(report, sort_keys=True)

    golden = reports[jobs[0]]
    for n in jobs[1:]:
        if reports[n] != golden:
            fail(
                f"report with --jobs {n} differs from --jobs {jobs[0]} "
                "(beyond the 'jobs' field)"
            )
    print(
        f"fig14_golden: OK: {len(jobs)} worker counts "
        f"({', '.join(jobs)}) produced identical reports"
    )


if __name__ == "__main__":
    main()
