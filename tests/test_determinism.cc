/**
 * @file
 * Regression tests for audit-report determinism: the structural
 * auditors iterate unordered containers (PageTable's reachable set,
 * Process's THS side tables), and their reports must be byte-identical
 * no matter what order the underlying hash tables were populated in.
 * libstdc++ iterates its hash tables in reverse insertion order, so
 * building the same logical state through two different operation
 * orders exercises exactly the nondeterminism the sorted-key walks in
 * PageTable::audit and Process::audit exist to remove.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/contracts.hh"
#include "mem/phys_mem.hh"
#include "os/memory_manager.hh"
#include "os/process.hh"
#include "pt/page_table.hh"
#include "pt/pte.hh"

using namespace mixtlb;
using namespace mixtlb::os;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

std::string
reportText(const contracts::AuditReport &report)
{
    std::string out;
    for (const auto &violation : report.violations()) {
        out += violation;
        out += '\n';
    }
    return out;
}

/**
 * Audit a table whose root points at two foreign (never-allocated-by-
 * this-table) page-table frames. @p swap_slots controls which foreign
 * root lands in which radix slot, flipping the DFS insertion order of
 * the two frames into the audit's `reachable` hash set without
 * changing its final contents.
 */
std::string
foreignFrameReport(bool swap_slots, std::size_t &num_violations)
{
    mem::PhysMem pm(64 * MiB);
    pt::PageTable table(pm);
    table.map(0x1000, 0x1000, PageSize::Size4K);
    table.map(0x200000, 0x200000, PageSize::Size2M);

    // Foreign tables on the same PhysMem: their root frames carry the
    // PageTable tag, so only the ownership invariant trips.
    pt::PageTable foreign_a(pm);
    pt::PageTable foreign_b(pm);
    const PAddr first = swap_slots ? foreign_b.root() : foreign_a.root();
    const PAddr second = swap_slots ? foreign_a.root() : foreign_b.root();
    pm.write64(table.root() + 8 * 400, pt::pte::make(first, {}, false));
    pm.write64(table.root() + 8 * 401, pt::pte::make(second, {}, false));

    contracts::AuditReport report;
    table.audit(report);
    num_violations = report.numViolations();
    return reportText(report);
}

/**
 * Build a Process whose smallIn2m_ side table disagrees with the tree
 * for several 2MB regions, touching the regions in ascending or
 * descending order. The corruption (an extra 4KB leaf mapped behind
 * the process's back) is identical either way; only the hash-table
 * insertion order differs.
 */
std::string
processAuditReport(bool descending, std::size_t &num_violations)
{
    mem::PhysMem pm(1 * GiB);
    stats::StatGroup root("test");
    MemoryManager mm(pm, &root);
    ProcessParams params;
    params.policy = PagePolicy::Thp;
    Process proc(mm, params, &root);

    // Four 1MB VMAs: half a 2MB region each, so every THS touch falls
    // back to 4KB pages and records its region in smallIn2m_.
    std::vector<VAddr> bases;
    for (int i = 0; i < 4; i++)
        bases.push_back(proc.mmap(1 * MiB));
    if (descending)
        std::reverse(bases.begin(), bases.end());
    for (VAddr base : bases) {
        EXPECT_EQ(proc.touch(base), TouchResult::Faulted);
        EXPECT_EQ(proc.touch(base + PageBytes4K), TouchResult::Faulted);
    }
    for (VAddr base : bases)
        proc.pageTable().map(base + 2 * PageBytes4K, 0,
                             PageSize::Size4K);

    contracts::AuditReport report;
    proc.audit(report);
    num_violations = report.numViolations();
    return reportText(report);
}

TEST(AuditDeterminism, PageTableReportIsSlotOrderInvariant)
{
    std::size_t violations_a = 0;
    std::size_t violations_b = 0;
    const std::string a = foreignFrameReport(false, violations_a);
    const std::string b = foreignFrameReport(true, violations_b);
    // Both foreign frames must be flagged, in the same (sorted) order.
    EXPECT_EQ(violations_a, 2u) << a;
    EXPECT_EQ(violations_b, 2u) << b;
    EXPECT_EQ(a, b);
}

TEST(AuditDeterminism, ProcessReportIsTouchOrderInvariant)
{
    std::size_t violations_a = 0;
    std::size_t violations_b = 0;
    const std::string a = processAuditReport(false, violations_a);
    const std::string b = processAuditReport(true, violations_b);
    // Four per-region count mismatches plus the 4KB residency-byte
    // mismatch, at minimum; the exact set must not depend on order.
    EXPECT_GE(violations_a, 5u) << a;
    EXPECT_EQ(violations_a, violations_b);
    EXPECT_EQ(a, b);
}

} // namespace
