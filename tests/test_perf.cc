/**
 * @file
 * Tests for the analytical performance and energy models.
 */

#include <gtest/gtest.h>

#include "perf/energy_model.hh"
#include "perf/perf_model.hh"

using namespace mixtlb;
using namespace mixtlb::perf;

TEST(PerfModel, OverheadExcludesFreeL1Hits)
{
    PerfParams params;
    params.baseCyclesPerRef = 3.0;
    params.freeL1HitLatency = 1;
    // 100 refs, all L1 hits at 1 cycle: zero overhead.
    auto all_hits = computeMetrics(100, 100.0, 0.0, params);
    EXPECT_DOUBLE_EQ(all_hits.overheadCycles, 0.0);
    EXPECT_DOUBLE_EQ(all_hits.totalCycles, 300.0);
    EXPECT_DOUBLE_EQ(all_hits.overheadFraction(), 0.0);
}

TEST(PerfModel, OverheadFractionMatchesHandComputation)
{
    PerfParams params;
    params.baseCyclesPerRef = 3.0;
    // 100 refs costing 400 translation cycles: 300 overhead over the
    // free 100; runtime = 300 base + 300 overhead.
    auto metrics = computeMetrics(100, 400.0, 0.0, params);
    EXPECT_DOUBLE_EQ(metrics.overheadCycles, 300.0);
    EXPECT_DOUBLE_EQ(metrics.overheadFraction(), 0.5);
}

TEST(PerfModel, ImprovementPercent)
{
    // 100 refs at 1 core cycle each; slow pays 300 overhead cycles.
    auto slow = computeMetrics(100, 400.0);
    auto fast = computeMetrics(100, 100.0);
    EXPECT_DOUBLE_EQ(slow.totalCycles, 400.0);
    EXPECT_DOUBLE_EQ(fast.totalCycles, 100.0);
    EXPECT_DOUBLE_EQ(improvementPercent(slow, fast), 300.0);
    EXPECT_DOUBLE_EQ(improvementPercent(fast, fast), 0.0);
    EXPECT_LT(improvementPercent(fast, slow), 0.0);
}

TEST(PerfModel, MeasuredDataCyclesJoinTheBase)
{
    auto metrics = computeMetrics(100, 100.0, 900.0);
    EXPECT_DOUBLE_EQ(metrics.baseCycles, 1000.0);
    EXPECT_DOUBLE_EQ(metrics.overheadCycles, 0.0);
}

TEST(EnergyModel, ReadEnergyScalesWithCapacity)
{
    EnergyModel model;
    EXPECT_DOUBLE_EQ(model.perRead(64), 1.0);
    EXPECT_DOUBLE_EQ(model.perRead(256), 2.0);   // sqrt scaling
    EXPECT_GT(model.perWrite(64), model.perRead(64));
    EXPECT_DOUBLE_EQ(model.perRead(0), 0.0);
}

TEST(EnergyModel, BreakdownCategoriesAdditive)
{
    EnergyModel model;
    EnergyInputs inputs;
    inputs.l1WaysRead = 1000;
    inputs.l2WaysRead = 100;
    inputs.l1Entries = 96;
    inputs.l2Entries = 544;
    inputs.l1Fills = 50;
    inputs.l2Fills = 20;
    inputs.walkAccesses = 200;
    inputs.walkDramAccesses = 10;
    inputs.dirtyOps = 5;
    inputs.totalCycles = 1e6;
    auto breakdown = model.compute(inputs);
    EXPECT_GT(breakdown.lookup, 0.0);
    EXPECT_GT(breakdown.walk, 0.0);
    EXPECT_GT(breakdown.fill, 0.0);
    EXPECT_GT(breakdown.other, 0.0);
    EXPECT_GT(breakdown.leakage, 0.0);
    EXPECT_DOUBLE_EQ(breakdown.total(),
                     breakdown.lookup + breakdown.walk + breakdown.fill
                         + breakdown.other + breakdown.leakage);
}

TEST(EnergyModel, SkewTimestampsCostExtraLookupEnergy)
{
    EnergyModel model;
    EnergyInputs inputs;
    inputs.l1WaysRead = 1000;
    inputs.l1Entries = 96;
    auto plain = model.compute(inputs);
    inputs.skewTimestamps = true;
    auto skewed = model.compute(inputs);
    EXPECT_GT(skewed.lookup, plain.lookup);
}

TEST(EnergyModel, PredictorAddsOtherEnergy)
{
    EnergyModel model;
    EnergyInputs inputs;
    inputs.predictorLookups = 1000;
    auto breakdown = model.compute(inputs);
    EXPECT_GT(breakdown.other, 0.0);
}

TEST(EnergyModel, MirroringShowsUpInFillEnergyOnly)
{
    // The Figure 17 argument: mirrors multiply fill writes, not lookup
    // reads. A MIX-like input with 16x the fills must cost more fill
    // energy but identical lookup energy.
    EnergyModel model;
    EnergyInputs split;
    split.l1WaysRead = 10000;
    split.l1Entries = 100;
    split.l1Fills = 100;
    EnergyInputs mix = split;
    mix.l1Entries = 96;
    mix.l1Fills = 1600; // mirrored fills
    auto split_energy = model.compute(split);
    auto mix_energy = model.compute(mix);
    EXPECT_GT(mix_energy.fill, 10.0 * split_energy.fill);
    EXPECT_NEAR(mix_energy.lookup, split_energy.lookup,
                0.05 * split_energy.lookup);
}
