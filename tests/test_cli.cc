/**
 * @file
 * Tests for the bench/example plumbing: the flag parser and the table
 * printer the figure binaries rely on.
 */

#include <gtest/gtest.h>

#include "sim/cli.hh"

using namespace mixtlb::sim;

namespace
{

CliArgs
parse(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return CliArgs(static_cast<int>(argv.size()),
                   const_cast<char **>(argv.data()));
}

} // anonymous namespace

TEST(Cli, TypedLookups)
{
    auto args = parse({"--refs", "5000", "--memhog", "0.4",
                       "--workload", "gups", "--flag"});
    EXPECT_EQ(args.getU64("refs", 1), 5000u);
    EXPECT_DOUBLE_EQ(args.getDouble("memhog", 0.0), 0.4);
    EXPECT_EQ(args.getString("workload", "x"), "gups");
    EXPECT_TRUE(args.has("flag"));
    EXPECT_FALSE(args.has("absent"));
}

TEST(Cli, DefaultsWhenMissing)
{
    auto args = parse({});
    EXPECT_EQ(args.getU64("refs", 123), 123u);
    EXPECT_DOUBLE_EQ(args.getDouble("x", 2.5), 2.5);
    EXPECT_EQ(args.getString("name", "fallback"), "fallback");
}

TEST(Cli, HexValuesParse)
{
    auto args = parse({"--addr", "0x1000"});
    EXPECT_EQ(args.getU64("addr", 0), 0x1000u);
}

TEST(CliDeathTest, PositionalArgumentsRejected)
{
    EXPECT_DEATH({ parse({"positional"}); }, "unexpected argument");
}

TEST(Table, FormatsNumbers)
{
    EXPECT_EQ(Table::fmt(3.14159), "3.14");
    EXPECT_EQ(Table::fmt(3.14159, 0), "3");
    EXPECT_EQ(Table::fmt(42.0, 1), "42.0");
}

TEST(Table, PrintsAlignedColumns)
{
    Table table({"a", "long-header"});
    table.addRow({"value-longer-than-header", "x"});
    // Printing must not crash; content correctness is visual, but the
    // row/column contract is enforced:
    table.print();
}

TEST(TableDeathTest, RowArityEnforced)
{
    Table table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "row has");
}
