#!/usr/bin/env python3
"""Acceptance test for tools/mixcheck.

Runs the analyzer over the fake repos in tests/mixcheck_fixtures/ and
asserts the exact (file, line, rule) finding set and exit code for
each, plus suppression semantics, baseline round-trip, and version
pinning. Every rule the analyzer implements must fire at a known
location, so a checker that silently stops matching (e.g. a regex that
no longer survives comment stripping) fails here, not in the field.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
MIXCHECK = REPO / "tools" / "mixcheck"
FIXTURES = REPO / "tests" / "mixcheck_fixtures"

TREE_EXPECTED = {
    ("src/common/cyc_b.hh", 1, "layering"),
    ("src/detbad/det.cc", 17, "determinism"),   # pointer-keyed std::map
    ("src/detbad/det.cc", 21, "determinism"),   # unordered range-for -> addScalar
    ("src/detbad/det.cc", 28, "determinism"),   # time()
    ("src/detbad/det.cc", 33, "determinism"),   # std::random_device
    ("src/hotbad/hot.cc", 13, "hot-path-alloc"),  # push_back on std::vector
    ("src/hotbad/hot.cc", 14, "hot-path-alloc"),  # new
    ("src/hotbad/scan.cc", 20, "hot-path-scan"),  # unannotated find_if
    # (scan.cc line 30 carries the soa-scan annotation and must NOT fire)
    ("src/legbad/guard.hh", 1, "include-guard"),
    ("src/legbad/leg.cc", 1, "raw-assert"),     # #include <cassert>
    ("src/legbad/leg.cc", 7, "raw-assert"),     # assert(
    ("src/legbad/leg.cc", 8, "banned-random"),  # rand()
    ("src/os/lifecycle.cc", 28, "stat-drift"),  # renamed demotion stat
    ("src/shiftbad/shift.cc", 11, "shift-width"),  # 1 << 22 int literal
    ("src/shiftbad/shift.cc", 17, "shift-width"),  # unproven amount
    ("src/simdbad/vec.cc", 1, "simd"),    # #include <immintrin.h>
    ("src/simdbad/vec.cc", 9, "simd"),    # raw _mm_loadu_si128
    ("src/simdbad/vec.cc", 10, "simd"),   # raw _mm_movemask_epi8
    ("src/simdbad/vec.cc", 16, "simd"),   # raw NEON vld1q_u64
    ("src/stats/reg.cc", 25, "stat-drift"),     # .scalar("renamed_metric")
    ("src/tlb/layer.hh", 4, "layering"),        # tlb/ includes workload/
    ("tools/check_perf.py", 9, "stat-drift"),   # ghost metrics key
    ("tools/check_soak.py", 9, "stat-drift"),   # ghost lifecycle key
}

SUPPRESS_EXPECTED = {
    ("src/sup.cc", 16, "suppression"),   # allow() with no reason
    ("src/sup.cc", 17, "shift-width"),   # the finding it failed to cover
}
SUPPRESS_SUPPRESSED = {
    ("src/sup.cc", 10, "shift-width"),   # reasoned allow() one line above
    ("src/sup.cc", 24, "simd"),          # reasoned allow() one line above
}

ALL_RULES = {"shift-width", "determinism", "hot-path-alloc",
             "hot-path-scan", "layering", "stat-drift", "raw-assert",
             "include-guard", "banned-random", "suppression", "simd"}

failures = []


def fail(msg):
    failures.append(msg)
    print(f"FAIL: {msg}")


def run(*extra, root=None):
    cmd = [sys.executable, str(MIXCHECK)]
    if root is not None:
        cmd += ["--root", str(root)]
    cmd += list(extra)
    return subprocess.run(cmd, capture_output=True, text=True)


def run_json(root, *extra):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out = Path(tmp.name)
    try:
        proc = run("--json", str(out), *extra, root=root)
        payload = json.loads(out.read_text(encoding="utf-8"))
    finally:
        out.unlink(missing_ok=True)
    return proc, payload


def triples(entries):
    return {(e["file"], e["line"], e["rule"]) for e in entries}


def check_fixture(name, expected, expected_suppressed, expected_exit):
    proc, payload = run_json(FIXTURES / name)
    got = triples(payload["findings"])
    if got != expected:
        for extra in sorted(got - expected):
            fail(f"{name}: unexpected finding {extra}")
        for missing in sorted(expected - got):
            fail(f"{name}: missing finding {missing}")
    got_supp = triples(payload["suppressed"])
    if got_supp != expected_suppressed:
        fail(f"{name}: suppressed set {sorted(got_supp)} != "
             f"{sorted(expected_suppressed)}")
    if proc.returncode != expected_exit:
        fail(f"{name}: exit {proc.returncode}, expected {expected_exit}\n"
             f"{proc.stdout}{proc.stderr}")
    if len(payload["findings"]) != len(expected):
        fail(f"{name}: {len(payload['findings'])} finding entries for "
             f"{len(expected)} distinct (file, line, rule) triples")


def check_baseline_roundtrip():
    """--write-baseline then --baseline must accept all known findings."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        base = Path(tmp.name)
    try:
        proc = run("--write-baseline", str(base), root=FIXTURES / "tree")
        if proc.returncode != 0:
            fail(f"--write-baseline exited {proc.returncode}")
        written = json.loads(base.read_text(encoding="utf-8"))
        if triples(written["findings"]) != TREE_EXPECTED:
            fail("--write-baseline payload does not match the tree "
                 "finding set")
        proc, payload = run_json(FIXTURES / "tree", "--baseline", str(base))
        if proc.returncode != 0:
            fail(f"--baseline run exited {proc.returncode}, expected 0")
        if payload["findings"]:
            fail(f"--baseline run still reports "
                 f"{len(payload['findings'])} finding(s)")
        if payload["baselined"] != len(TREE_EXPECTED):
            fail(f"--baseline run baselined {payload['baselined']}, "
                 f"expected {len(TREE_EXPECTED)}")
    finally:
        base.unlink(missing_ok=True)


def check_version_pinning():
    proc = run("--version", root=FIXTURES / "clean")
    version = proc.stdout.strip()
    if proc.returncode != 0 or not version:
        fail("--version did not print a version")
    proc = run("--require-version", "0.0.0-never", root=FIXTURES / "clean")
    if proc.returncode != 2:
        fail(f"--require-version mismatch exited {proc.returncode}, "
             "expected 2")
    proc = run("--require-version", version, root=FIXTURES / "clean")
    if proc.returncode != 0:
        fail(f"--require-version {version} exited {proc.returncode}, "
             "expected 0")


def main():
    check_fixture("tree", TREE_EXPECTED, set(), 1)
    check_fixture("suppress", SUPPRESS_EXPECTED, SUPPRESS_SUPPRESSED, 1)
    check_fixture("clean", set(), set(), 0)
    check_baseline_roundtrip()
    check_version_pinning()

    covered = {rule for _, _, rule in TREE_EXPECTED | SUPPRESS_EXPECTED}
    if covered != ALL_RULES:
        fail(f"rules without fixture coverage: "
             f"{sorted(ALL_RULES - covered)}")

    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("mixcheck fixtures: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
