/**
 * @file
 * Tests for the sim layer: every TLB design builds at area-equivalent
 * geometry, machines run end-to-end, and the headline behavioural
 * claims hold in miniature (MIX >= split under every page policy).
 */

#include <gtest/gtest.h>

#include "sim/configs.hh"
#include "sim/machine.hh"

using namespace mixtlb;
using namespace mixtlb::sim;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

const TlbDesign AllDesigns[] = {
    TlbDesign::Split,       TlbDesign::Mix,
    TlbDesign::MixColt,     TlbDesign::MixSuperIndex,
    TlbDesign::HashRehash,  TlbDesign::HashRehashPred,
    TlbDesign::Skew,        TlbDesign::SkewPred,
    TlbDesign::Colt,        TlbDesign::ColtPlusPlus,
    TlbDesign::Ideal,
};

MachineParams
smallMachine(TlbDesign design, os::PagePolicy policy,
             double memhog = 0.0)
{
    MachineParams params;
    params.name = std::string("m_") + designName(design);
    params.memBytes = 2 * GiB;
    params.design = design;
    params.proc.policy = policy;
    params.memhogFraction = memhog;
    params.seed = 11;
    return params;
}

/** Run a named workload and return total-cycle metrics. */
perf::RunMetrics
runOne(TlbDesign design, os::PagePolicy policy, const std::string &name,
       std::uint64_t footprint, std::uint64_t refs, double memhog = 0.0)
{
    Machine machine(smallMachine(design, policy, memhog));
    VAddr base = machine.mapArena(footprint);
    // Initialization phase: real programs fault their arena in roughly
    // ascending order (allocate + memset), which is what hands adjacent
    // virtual pages adjacent physical frames (Sec. 7.1) and lets
    // coalescing TLBs assemble their bundles.
    machine.warmup(base, footprint);
    machine.startMeasurement();
    auto gen = workload::makeGenerator(name, base, footprint, 3);
    EXPECT_EQ(machine.run(*gen, refs), refs);
    return machine.metrics();
}

} // anonymous namespace

TEST(Configs, EveryDesignBuildsBothLevels)
{
    mem::PhysMem mem{256 * MiB};
    pt::PageTable table{mem};
    for (TlbDesign design : AllDesigns) {
        stats::StatGroup root(designName(design));
        auto l1 = makeCpuL1(design, &root, &table);
        auto l2 = makeCpuL2(design, &root, &table);
        ASSERT_NE(l1, nullptr) << designName(design);
        ASSERT_NE(l2, nullptr) << designName(design);
        // Every design must accept all page sizes somewhere.
        for (auto size : {PageSize::Size4K, PageSize::Size2M,
                          PageSize::Size1G}) {
            EXPECT_TRUE(l1->supports(size))
                << designName(design) << " L1 " << pageSizeName(size);
            EXPECT_TRUE(l2->supports(size))
                << designName(design) << " L2 " << pageSizeName(size);
        }
    }
}

TEST(Configs, AreaEquivalence)
{
    mem::PhysMem mem{256 * MiB};
    pt::PageTable table{mem};
    stats::StatGroup root("cfg");
    auto split_l1 = makeCpuL1(TlbDesign::Split, &root, &table);
    auto mix_l1 = makeCpuL1(TlbDesign::Mix, &root, &table);
    auto skew_l1 = makeCpuL1(TlbDesign::Skew, &root, &table);
    // MIX fits within the split budget; skew is docked for timestamps.
    EXPECT_LE(mix_l1->numEntries(), split_l1->numEntries());
    EXPECT_GE(mix_l1->numEntries(), split_l1->numEntries() * 9 / 10);
    EXPECT_LT(skew_l1->numEntries(), mix_l1->numEntries());
}

TEST(Configs, GpuVariantsBuild)
{
    mem::PhysMem mem{256 * MiB};
    pt::PageTable table{mem};
    for (TlbDesign design : AllDesigns) {
        stats::StatGroup root(designName(design));
        auto l1 = makeGpuCoreL1(design, 0, &root, &table);
        auto l2 = makeGpuL2(design, &root, &table);
        ASSERT_NE(l1, nullptr) << designName(design);
        ASSERT_NE(l2, nullptr) << designName(design);
    }
}

TEST(Machine, EveryDesignRunsEndToEnd)
{
    for (TlbDesign design : AllDesigns) {
        auto metrics = runOne(design, os::PagePolicy::Thp, "gups",
                              64 * MiB, 20000);
        EXPECT_EQ(metrics.refs, 20000u) << designName(design);
        EXPECT_GT(metrics.totalCycles, 0.0) << designName(design);
    }
}

TEST(Machine, IdealLowerBoundsEveryone)
{
    auto ideal = runOne(TlbDesign::Ideal, os::PagePolicy::Thp, "gups",
                        128 * MiB, 50000);
    for (TlbDesign design :
         {TlbDesign::Split, TlbDesign::Mix, TlbDesign::HashRehash}) {
        auto metrics = runOne(design, os::PagePolicy::Thp, "gups",
                              128 * MiB, 50000);
        EXPECT_GE(metrics.totalCycles, ideal.totalCycles)
            << designName(design);
    }
}

TEST(Machine, MixAtLeastMatchesSplitAcrossPolicies)
{
    // The paper's core claim (Figure 14): under 4KB-only, 2MB pool,
    // 1GB pool, and THS policies alike, MIX never loses to split.
    for (auto policy :
         {os::PagePolicy::SmallOnly, os::PagePolicy::Thp}) {
        auto split = runOne(TlbDesign::Split, policy, "graph500",
                            256 * MiB, 100000);
        auto mix = runOne(TlbDesign::Mix, policy, "graph500",
                          256 * MiB, 100000);
        EXPECT_LE(mix.totalCycles, split.totalCycles * 1.01)
            << pagePolicyName(policy);
    }
}

TEST(Machine, MixBeatsSplitClearlyOnSuperpageHeavyGups)
{
    // gups over THS superpages: split thrashes its 32-entry 2MB TLB;
    // MIX uses the whole array. Translation time (total runtime is
    // dominated by the workload's own DRAM traffic) must drop sharply.
    auto split = runOne(TlbDesign::Split, os::PagePolicy::Thp, "gups",
                        512 * MiB, 100000);
    auto mix = runOne(TlbDesign::Mix, os::PagePolicy::Thp, "gups",
                      512 * MiB, 100000);
    EXPECT_LT(mix.translationCycles, 0.85 * split.translationCycles);
    EXPECT_LE(mix.totalCycles, split.totalCycles);
}

TEST(Machine, SuperpageIndexAblationLosesBadly)
{
    // Sec. 3: superpage index bits raise misses ~4-8x on 4KB-heavy
    // runs; just assert it clearly loses to normal MIX.
    auto normal = runOne(TlbDesign::Mix, os::PagePolicy::SmallOnly,
                         "graph500", 128 * MiB, 100000);
    auto ablated = runOne(TlbDesign::MixSuperIndex,
                          os::PagePolicy::SmallOnly, "graph500",
                          128 * MiB, 100000);
    EXPECT_GT(ablated.totalCycles, normal.totalCycles);
}

TEST(Machine, MemhogReducesSuperpageFraction)
{
    Machine clean(smallMachine(TlbDesign::Split, os::PagePolicy::Thp));
    Machine fragged(
        smallMachine(TlbDesign::Split, os::PagePolicy::Thp, 0.85));
    for (Machine *machine : {&clean, &fragged}) {
        VAddr base = machine->mapArena(128 * MiB);
        machine->touchSequential(base, 128 * MiB);
    }
    EXPECT_GT(clean.distribution().superpageFraction(), 0.9);
    EXPECT_LT(fragged.distribution().superpageFraction(),
              clean.distribution().superpageFraction());
}

TEST(Machine, ContiguityScannerSeesThsRuns)
{
    Machine machine(smallMachine(TlbDesign::Split, os::PagePolicy::Thp));
    VAddr base = machine.mapArena(256 * MiB);
    machine.touchSequential(base, 256 * MiB);
    auto runs = machine.contiguityRuns(PageSize::Size2M);
    ASSERT_FALSE(runs.empty());
    EXPECT_GE(os::averageContiguity(runs), 16.0);
}

TEST(Machine, EnergyInputsHarvestCorrectly)
{
    Machine machine(smallMachine(TlbDesign::Mix, os::PagePolicy::Thp));
    VAddr base = machine.mapArena(64 * MiB);
    auto gen = workload::makeGenerator("gups", base, 64 * MiB, 3);
    machine.run(*gen, 20000);
    auto inputs = machine.energyInputs();
    EXPECT_GT(inputs.l1WaysRead, 0.0);
    EXPECT_GT(inputs.walkAccesses, 0.0);
    EXPECT_EQ(inputs.l1Entries, 96u);
    EXPECT_EQ(inputs.l2Entries, 544u);
    EXPECT_EQ(inputs.predictorLookups, 0.0);
    auto pred = smallMachine(TlbDesign::HashRehashPred,
                             os::PagePolicy::Thp);
    Machine pred_machine(pred);
    VAddr base2 = pred_machine.mapArena(64 * MiB);
    auto gen2 = workload::makeGenerator("gups", base2, 64 * MiB, 3);
    pred_machine.run(*gen2, 1000);
    EXPECT_GT(pred_machine.energyInputs().predictorLookups, 0.0);
}

TEST(VirtMachine, MixFillBurstDiscountSurvivesAggregation)
{
    // Regression: VirtMachine::energyInputs() used to drop
    // fillBurstFactor when summing per-vCPU inputs, charging
    // virtualized MIX runs full fill-burst energy (1.0 instead of
    // 0.25) — exactly the consolidation configurations the paper's
    // dynamic-energy argument rests on.
    auto virtInputs = [](TlbDesign design) {
        VirtMachineParams params;
        params.name = std::string("v_") + designName(design);
        params.hostMemBytes = 1 * GiB;
        params.numVms = 2;
        params.design = design;
        params.seed = 11;
        VirtMachine machine(params);
        for (unsigned vm = 0; vm < machine.numVms(); vm++) {
            VAddr base = machine.mapArena(vm, 32 * MiB);
            machine.warmup(vm, base, 32 * MiB);
            auto gen = workload::makeGenerator("gups", base, 32 * MiB,
                                               3 + vm);
            EXPECT_EQ(machine.run(vm, *gen, 5000), 5000u);
        }
        return machine.energyInputs();
    };

    Machine native(smallMachine(TlbDesign::Mix, os::PagePolicy::Thp));
    VAddr base = native.mapArena(32 * MiB);
    native.warmup(base, 32 * MiB);
    auto gen = workload::makeGenerator("gups", base, 32 * MiB, 3);
    EXPECT_EQ(native.run(*gen, 5000), 5000u);
    auto native_inputs = native.energyInputs();

    auto mix_inputs = virtInputs(TlbDesign::Mix);
    EXPECT_DOUBLE_EQ(native_inputs.fillBurstFactor, 0.25);
    EXPECT_DOUBLE_EQ(mix_inputs.fillBurstFactor,
                     native_inputs.fillBurstFactor);
    EXPECT_GT(mix_inputs.l1Fills, 0.0);

    // Non-mirroring designs keep the conventional full-cost fills.
    EXPECT_DOUBLE_EQ(virtInputs(TlbDesign::Split).fillBurstFactor,
                     1.0);
}
