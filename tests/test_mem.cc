/**
 * @file
 * Unit and property tests for src/mem: buddy allocator, physical memory,
 *
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.hh"
#include "mem/buddy_allocator.hh"
#include "mem/phys_mem.hh"

using namespace mixtlb;
using namespace mixtlb::mem;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

} // anonymous namespace

TEST(Buddy, FreshAllocatorIsFullyFree)
{
    BuddyAllocator buddy(1 << 20);
    EXPECT_EQ(buddy.freeFrames(), 1u << 20);
    EXPECT_EQ(buddy.totalFrames(), 1u << 20);
    ASSERT_TRUE(buddy.largestFreeOrder().has_value());
    EXPECT_EQ(*buddy.largestFreeOrder(), BuddyAllocator::MaxOrder);
}

TEST(Buddy, LowestAddressFirst)
{
    BuddyAllocator buddy(1 << 20);
    auto a = buddy.alloc(0);
    auto b = buddy.alloc(0);
    auto c = buddy.alloc(Order2M);
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(*a, 0u);
    EXPECT_EQ(*b, 1u);
    // The order-9 block skips to the next aligned free region.
    EXPECT_EQ(*c % (1u << Order2M), 0u);
    EXPECT_GT(*c, *b);
}

TEST(Buddy, ConsecutiveSuperpageAllocationsAreContiguous)
{
    // This is the allocator property the whole paper leans on.
    BuddyAllocator buddy(4 * GiB >> PageShift4K);
    std::optional<Pfn> prev;
    for (int i = 0; i < 64; i++) {
        auto pfn = buddy.alloc(Order2M);
        ASSERT_TRUE(pfn.has_value());
        if (prev) {
            EXPECT_EQ(*pfn, *prev + (1u << Order2M));
        }
        prev = pfn;
    }
}

TEST(Buddy, AlignmentInvariant)
{
    BuddyAllocator buddy(1 << 20);
    buddy.alloc(0); // misalign the low region
    for (unsigned order : {3u, 9u, 12u}) {
        auto pfn = buddy.alloc(order);
        ASSERT_TRUE(pfn.has_value());
        EXPECT_EQ(*pfn & ((1ULL << order) - 1), 0u) << "order " << order;
    }
}

TEST(Buddy, FreeAndMergeRestoresLargestOrder)
{
    BuddyAllocator buddy(1 << 18); // exactly one 1GB block
    std::vector<Pfn> frames;
    for (int i = 0; i < 1024; i++) {
        auto pfn = buddy.alloc(0);
        ASSERT_TRUE(pfn.has_value());
        frames.push_back(*pfn);
    }
    EXPECT_LT(*buddy.largestFreeOrder(), BuddyAllocator::MaxOrder);
    for (Pfn pfn : frames)
        buddy.free(pfn, 0);
    EXPECT_EQ(buddy.freeFrames(), 1u << 18);
    EXPECT_EQ(*buddy.largestFreeOrder(), BuddyAllocator::MaxOrder);
}

TEST(Buddy, ExhaustionReturnsNullopt)
{
    BuddyAllocator buddy(16);
    for (int i = 0; i < 16; i++)
        ASSERT_TRUE(buddy.alloc(0).has_value());
    EXPECT_FALSE(buddy.alloc(0).has_value());
    EXPECT_EQ(buddy.freeFrames(), 0u);
    EXPECT_FALSE(buddy.largestFreeOrder().has_value());
}

TEST(Buddy, NoOverlappingAllocations)
{
    BuddyAllocator buddy(1 << 16);
    Rng rng(99);
    std::set<Pfn> owned;
    std::vector<std::pair<Pfn, unsigned>> blocks;
    for (int iter = 0; iter < 2000; iter++) {
        if (blocks.empty() || rng.chance(0.6)) {
            unsigned order = rng.nextBounded(6);
            auto pfn = buddy.alloc(order);
            if (!pfn)
                continue;
            for (std::uint64_t i = 0; i < (1ULL << order); i++) {
                auto [it, ins] = owned.insert(*pfn + i);
                ASSERT_TRUE(ins) << "frame allocated twice";
            }
            blocks.emplace_back(*pfn, order);
        } else {
            auto idx = rng.nextBounded(blocks.size());
            auto [pfn, order] = blocks[idx];
            blocks.erase(blocks.begin() + idx);
            for (std::uint64_t i = 0; i < (1ULL << order); i++)
                owned.erase(pfn + i);
            buddy.free(pfn, order);
        }
        ASSERT_EQ(buddy.freeFrames(), (1u << 16) - owned.size());
    }
}

TEST(Buddy, AllocRegionClaimsExactBlock)
{
    BuddyAllocator buddy(1 << 12);
    EXPECT_TRUE(buddy.isRegionFree(512, Order2M));
    EXPECT_TRUE(buddy.allocRegion(512, Order2M));
    EXPECT_FALSE(buddy.isRegionFree(512, Order2M));
    EXPECT_FALSE(buddy.allocRegion(512, Order2M));
    // Frames outside the claimed block still allocatable.
    auto pfn = buddy.alloc(0);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_EQ(*pfn, 0u);
    buddy.free(512, Order2M);
    EXPECT_TRUE(buddy.isRegionFree(512, Order2M));
}

TEST(Buddy, AllocRegionFailsWhenPartiallyUsed)
{
    BuddyAllocator buddy(1 << 12);
    auto pfn = buddy.alloc(0); // frame 0
    ASSERT_TRUE(pfn.has_value());
    EXPECT_FALSE(buddy.allocRegion(0, Order2M));
    EXPECT_TRUE(buddy.allocRegion(512, Order2M));
}

TEST(Buddy, AllocRegionMidSplitPreservesAccounting)
{
    BuddyAllocator buddy(1 << 14);
    std::uint64_t before = buddy.freeFrames();
    ASSERT_TRUE(buddy.allocRegion(1024, Order2M));
    EXPECT_EQ(buddy.freeFrames(), before - 512);
    // Everything around the claimed block is still allocatable frame by
    // frame.
    for (int i = 0; i < 1024; i++) {
        auto pfn = buddy.alloc(0);
        ASSERT_TRUE(pfn.has_value());
        EXPECT_LT(*pfn, 1024u);
    }
    auto next = buddy.alloc(0);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, 1536u);
}

TEST(Buddy, FragmentationIndex)
{
    BuddyAllocator buddy(1 << 12);
    EXPECT_DOUBLE_EQ(buddy.fragmentationIndex(Order2M), 0.0);
    // Pin every even 4KB frame of the first 2MB: free memory in that
    // region is unusable for 2MB blocks.
    for (int i = 0; i < 1024; i += 2)
        ASSERT_TRUE(buddy.allocRegion(i, 0));
    double frag = buddy.fragmentationIndex(Order2M);
    EXPECT_GT(frag, 0.0);
    EXPECT_LE(frag, 1.0);
}

TEST(BuddyDeathTest, MisalignedFreePanics)
{
    BuddyAllocator buddy(1 << 12);
    EXPECT_DEATH(buddy.free(1, Order2M), "misaligned");
}

TEST(PhysMem, AllocTagAndFree)
{
    PhysMem mem(64 * MiB);
    auto pfn = mem.allocFrames(Order2M, FrameUse::AppHuge);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_EQ(mem.frameUse(*pfn), FrameUse::AppHuge);
    EXPECT_EQ(mem.frameUse(*pfn + 511), FrameUse::AppHuge);
    mem.freeFrames(*pfn, Order2M);
    EXPECT_EQ(mem.frameUse(*pfn), FrameUse::Free);
}

TEST(PhysMem, ReadWriteWords)
{
    PhysMem mem(16 * MiB);
    auto pfn = mem.allocFrames(0, FrameUse::PageTable);
    ASSERT_TRUE(pfn.has_value());
    PAddr base = *pfn << PageShift4K;
    EXPECT_EQ(mem.read64(base), 0u);
    mem.write64(base + 8, 0xdeadbeefcafeULL);
    EXPECT_EQ(mem.read64(base + 8), 0xdeadbeefcafeULL);
    EXPECT_EQ(mem.read64(base), 0u);
    // Freeing wipes backing data.
    mem.freeFrames(*pfn, 0);
    EXPECT_EQ(mem.read64(base + 8), 0u);
}

TEST(PhysMemDeathTest, UnalignedAccessPanics)
{
    PhysMem mem(16 * MiB);
    EXPECT_DEATH(mem.read64(3), "unaligned");
}
