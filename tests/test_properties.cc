/**
 * @file
 * Property-based tests (parameterized sweeps) over the TLB design
 * space. The central invariant for every design and geometry: a TLB
 * hit must return EXACTLY the page table's translation — regardless of
 * page-size mix, coalescing, mirroring, duplication, invalidation, or
 * migration history.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "cache/cache.hh"
#include "common/random.hh"
#include "common/simd.hh"
#include "tlb/tag_lane.hh"
#include "mem/phys_mem.hh"
#include "os/memhog.hh"
#include "os/memory_manager.hh"
#include "os/process.hh"
#include "pt/page_table.hh"
#include "pt/walker.hh"
#include "sim/machine.hh"
#include "tlb/colt.hh"
#include "tlb/hash_rehash.hh"
#include "tlb/hierarchy.hh"
#include "tlb/mix.hh"
#include "tlb/set_assoc.hh"
#include "tlb/skew.hh"
#include "tlb/split.hh"
#include "workload/generator.hh"

using namespace mixtlb;
using namespace mixtlb::tlb;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

/** A mapped mixed-page-size address space to fuzz against. */
struct Arena
{
    mem::PhysMem mem{8 * GiB};
    pt::PageTable table{mem};
    stats::StatGroup root{"prop"};
    pt::Walker walker{table, &root, 8};
    std::vector<VAddr> pages; ///< one representative VA per page

    explicit Arena(std::uint64_t seed)
    {
        Rng rng(seed);
        // 4KB pages, some contiguous.
        PAddr pa = 0x10000000;
        for (int i = 0; i < 64; i++) {
            VAddr va = 0x00010000 + i * PageBytes4K;
            table.map(va, pa, PageSize::Size4K);
            pa += rng.chance(0.7) ? PageBytes4K : 3 * PageBytes4K;
            pages.push_back(va);
        }
        // 2MB superpages: one long contiguous run plus scattered ones.
        pa = 0x40000000;
        for (int i = 0; i < 24; i++) {
            VAddr va = 0x40000000 + static_cast<VAddr>(i) * PageBytes2M;
            table.map(va, pa, PageSize::Size2M);
            pa += rng.chance(0.8) ? PageBytes2M : 5 * PageBytes2M;
            pages.push_back(va);
        }
        // 1GB pages.
        table.map(8 * GiB, 1 * GiB, PageSize::Size1G);
        table.map(9 * GiB, 2 * GiB, PageSize::Size1G);
        pages.push_back(8 * GiB);
        pages.push_back(9 * GiB);
    }

    VAddr
    randomAddr(Rng &rng)
    {
        VAddr page = pages[rng.nextBounded(pages.size())];
        auto size = table.translate(page)->size;
        return page + rng.nextBounded(pageBytes(size));
    }
};

/**
 * Fuzz one TLB: random lookups; misses are walked and filled; every
 * hit must agree with the page table; random invalidations and
 * re-maps are thrown in.
 */
void
fuzzAgainstPageTable(BaseTlb &tlb, Arena &arena, std::uint64_t seed,
                     int iterations = 20000)
{
    Rng rng(seed);
    for (int i = 0; i < iterations; i++) {
        VAddr va = arena.randomAddr(rng);
        bool store = rng.chance(0.3);
        auto result = tlb.lookup(va, store);
        auto truth = arena.table.translate(va);
        ASSERT_TRUE(truth.has_value());
        if (result.hit) {
            ASSERT_EQ(result.xlate.translate(va), truth->translate(va))
                << std::hex << "va=0x" << va;
        } else if (tlb.supports(truth->size)) {
            auto walk = arena.walker.walk(va, store);
            ASSERT_FALSE(walk.pageFault());
            FillInfo fill;
            fill.leaf = *walk.leaf;
            fill.vaddr = va;
            fill.walk = &walk;
            tlb.fill(fill);
            auto again = tlb.lookup(va, store);
            ASSERT_TRUE(again.hit) << std::hex << "va=0x" << va;
            ASSERT_EQ(again.xlate.translate(va), truth->translate(va));
        }
        // Occasional shootdowns keep the invalidation paths honest.
        if (rng.chance(0.002)) {
            VAddr page = arena.pages[rng.nextBounded(
                arena.pages.size())];
            auto size = arena.table.translate(page)->size;
            tlb.invalidate(page, size);
            ASSERT_FALSE(tlb.lookup(page, false).hit);
        }
    }
}

struct MixGeometry
{
    std::uint64_t entries;
    unsigned assoc;
    CoalesceMode mode;
    unsigned colt4k;
    bool alignment;
};

class MixProperty : public ::testing::TestWithParam<MixGeometry>
{
};

} // anonymous namespace

TEST_P(MixProperty, HitsAlwaysAgreeWithPageTable)
{
    const auto &geometry = GetParam();
    Arena arena(42);
    MixTlbParams params;
    params.entries = geometry.entries;
    params.assoc = geometry.assoc;
    params.mode = geometry.mode;
    params.colt4k = geometry.colt4k;
    params.alignmentRestricted = geometry.alignment;
    MixTlb tlb("mix", &arena.root, params);
    fuzzAgainstPageTable(tlb, arena, 7);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MixProperty,
    ::testing::Values(
        MixGeometry{4, 2, CoalesceMode::Bitmap, 1, true},
        MixGeometry{4, 2, CoalesceMode::Length, 1, true},
        MixGeometry{96, 6, CoalesceMode::Bitmap, 1, true},
        MixGeometry{96, 6, CoalesceMode::Bitmap, 4, true},
        MixGeometry{544, 8, CoalesceMode::Length, 1, true},
        MixGeometry{544, 8, CoalesceMode::Length, 4, true},
        MixGeometry{544, 8, CoalesceMode::Length, 1, false},
        MixGeometry{96, 6, CoalesceMode::Bitmap, 1, false},
        MixGeometry{128, 2, CoalesceMode::Bitmap, 1, true},
        MixGeometry{64, 64, CoalesceMode::Length, 1, true}));

namespace
{

class MixSuperIndexProperty : public ::testing::TestWithParam<unsigned>
{
};

} // anonymous namespace

TEST_P(MixSuperIndexProperty, AblationModeStaysCorrect)
{
    Arena arena(43);
    MixTlbParams params;
    params.entries = 96;
    params.assoc = GetParam();
    params.superpageIndexBits = true;
    MixTlb tlb("mixsp", &arena.root, params);
    fuzzAgainstPageTable(tlb, arena, 11);
}

INSTANTIATE_TEST_SUITE_P(Assocs, MixSuperIndexProperty,
                         ::testing::Values(2u, 4u, 6u));

namespace
{

/** All non-MIX designs behind the same fuzz. */
enum class Family
{
    Split,
    HashRehash,
    HashRehashPred,
    Skew,
    SkewPred,
    Colt4K,
};

class FamilyProperty : public ::testing::TestWithParam<Family>
{
  public:
    static std::unique_ptr<BaseTlb>
    build(Family family, stats::StatGroup *root)
    {
        switch (family) {
          case Family::Split: {
            auto split = std::make_unique<SplitTlb>("t", root);
            split->addComponent(std::make_unique<SetAssocTlb>(
                "t4k", root, 64, 4, PageSize::Size4K));
            split->addComponent(std::make_unique<SetAssocTlb>(
                "t2m", root, 32, 4, PageSize::Size2M));
            split->addComponent(std::make_unique<FullyAssocTlb>(
                "t1g", root, 4,
                std::initializer_list<PageSize>{PageSize::Size1G}));
            return split;
          }
          case Family::HashRehash:
          case Family::HashRehashPred: {
            HashRehashParams params;
            params.entries = 96;
            params.assoc = 6;
            params.usePredictor = family == Family::HashRehashPred;
            return std::make_unique<HashRehashTlb>("t", root, params);
          }
          case Family::Skew:
          case Family::SkewPred: {
            SkewTlbParams params;
            params.setsPerWay = 16;
            params.usePredictor = family == Family::SkewPred;
            return std::make_unique<SkewTlb>("t", root, params);
          }
          case Family::Colt4K:
            return std::make_unique<ColtTlb>("t", root, 64, 4,
                                             PageSize::Size4K, 4);
        }
        return nullptr;
    }
};

} // anonymous namespace

TEST_P(FamilyProperty, HitsAlwaysAgreeWithPageTable)
{
    Arena arena(44);
    auto tlb = build(GetParam(), &arena.root);
    fuzzAgainstPageTable(*tlb, arena, 13);
}

INSTANTIATE_TEST_SUITE_P(Designs, FamilyProperty,
                         ::testing::Values(Family::Split,
                                           Family::HashRehash,
                                           Family::HashRehashPred,
                                           Family::Skew,
                                           Family::SkewPred,
                                           Family::Colt4K));

namespace
{

/** End-to-end invariant under OS churn: migration + shootdowns. */
class MigrationProperty : public ::testing::TestWithParam<int>
{
};

} // anonymous namespace

TEST_P(MigrationProperty, TranslationsSurviveCompactionChurn)
{
    // A THS process under heavy fragmentation; compaction migrates
    // pages mid-run while we fuzz translations through a MIX
    // hierarchy-like flow at the page-table level.
    mem::PhysMem mem(1 * GiB);
    stats::StatGroup root("prop");
    os::MemoryManager mm(mem, &root,
                         os::CompactionParams{
                             .maxCandidates = 64,
                             .deferOnFailure = true,
                             .minFreeFraction = 0.02,
                             .fullEffortFreeFraction = 0.05,
                             .seed = static_cast<std::uint64_t>(
                                 GetParam())});
    os::Memhog hog(mm, 0.0);
    hog.fragment(0.4, GetParam());
    os::ProcessParams proc_params;
    proc_params.policy = os::PagePolicy::SmallOnly;
    os::Process proc(mm, proc_params, &root);
    VAddr base = proc.mmap(128 * MiB);
    for (VAddr va = base; va < base + 64 * MiB; va += PageBytes4K)
        proc.touch(va);

    Rng rng(GetParam());
    for (int i = 0; i < 200; i++) {
        // Force compaction (migrates process pages).
        mm.allocContiguous(mem::Order2M, mem::FrameUse::AppHuge, true);
        // Every page must still translate, and A/D state is preserved.
        for (int j = 0; j < 50; j++) {
            VAddr va = base + rng.nextBounded(64 * MiB);
            auto xlate = proc.pageTable().translate(va);
            ASSERT_TRUE(xlate.has_value());
            ASSERT_EQ(mem.frameUse(xlate->pfn4k()),
                      mem::FrameUse::AppSmall);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationProperty,
                         ::testing::Values(1, 2, 3));

namespace
{

/**
 * Bit-exactness of the SoA tag-lane fast path: every design driven
 * through an identical interleaved op stream with the packed tag scan
 * on and off must produce identical lookup results, identical
 * statistics, and identical post-state. Two arenas are built from the
 * same seed (so they are equal) and each TLB gets its own — the
 * walkers' stats then also evolve in lockstep, letting the final check
 * compare the full stat dumps byte for byte.
 */
struct ReferenceScanGuard
{
    bool prev = referenceScanEnabled();
    ~ReferenceScanGuard() { setReferenceScanEnabled(prev); }
};

void
expectLookupEq(const TlbLookup &a, const TlbLookup &b, VAddr va)
{
    ASSERT_EQ(a.hit, b.hit) << std::hex << "va=0x" << va;
    EXPECT_EQ(a.probes, b.probes) << std::hex << "va=0x" << va;
    EXPECT_EQ(a.waysRead, b.waysRead) << std::hex << "va=0x" << va;
    EXPECT_EQ(a.entryDirty, b.entryDirty) << std::hex << "va=0x" << va;
    if (a.hit) {
        EXPECT_EQ(a.xlate.vbase, b.xlate.vbase);
        EXPECT_EQ(a.xlate.pbase, b.xlate.pbase);
        EXPECT_EQ(a.xlate.size, b.xlate.size);
        EXPECT_TRUE(a.xlate.perms == b.xlate.perms);
        EXPECT_EQ(a.xlate.accessed, b.xlate.accessed);
        EXPECT_EQ(a.xlate.dirty, b.xlate.dirty);
    }
    ASSERT_EQ(a.bundle.has_value(), b.bundle.has_value())
        << std::hex << "va=0x" << va;
    if (a.bundle) {
        EXPECT_EQ(a.bundle->vbase, b.bundle->vbase);
        EXPECT_EQ(a.bundle->pbase, b.bundle->pbase);
        EXPECT_EQ(a.bundle->size, b.bundle->size);
        EXPECT_EQ(a.bundle->count, b.bundle->count);
        EXPECT_TRUE(a.bundle->perms == b.bundle->perms);
        EXPECT_EQ(a.bundle->dirty, b.bundle->dirty);
    }
}

std::string
statDump(stats::StatGroup &group)
{
    std::ostringstream os;
    group.dump(os);
    return os.str();
}

template <typename Build>
void
compareScanModes(Build &&build, std::uint64_t seed)
{
    ReferenceScanGuard guard;
    setReferenceScanEnabled(true);
    Arena ref_arena(seed);
    auto ref = build(&ref_arena.root);
    setReferenceScanEnabled(false);
    Arena soa_arena(seed);
    auto soa = build(&soa_arena.root);

    const auto fillBoth = [&](VAddr va, bool store) {
        auto ref_walk = ref_arena.walker.walk(va, store);
        auto soa_walk = soa_arena.walker.walk(va, store);
        ASSERT_FALSE(ref_walk.pageFault());
        ASSERT_FALSE(soa_walk.pageFault());
        FillInfo ref_fill;
        ref_fill.leaf = *ref_walk.leaf;
        ref_fill.vaddr = va;
        ref_fill.walk = &ref_walk;
        ref->fill(ref_fill);
        FillInfo soa_fill;
        soa_fill.leaf = *soa_walk.leaf;
        soa_fill.vaddr = va;
        soa_fill.walk = &soa_walk;
        soa->fill(soa_fill);
    };

    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    const Asid asids[] = {0, 1, 2};
    for (int i = 0; i < 20000; i++) {
        if (rng.chance(0.001)) {
            Asid asid = asids[rng.nextBounded(3)];
            ref->setAsid(asid);
            soa->setAsid(asid);
        }
        VAddr va = ref_arena.randomAddr(rng);
        bool store = rng.chance(0.3);
        auto ref_result = ref->lookup(va, store);
        auto soa_result = soa->lookup(va, store);
        expectLookupEq(ref_result, soa_result, va);
        auto truth = ref_arena.table.translate(va);
        ASSERT_TRUE(truth.has_value());
        if (!ref_result.hit && ref->supports(truth->size))
            fillBoth(va, store);
        if (rng.chance(0.05)) {
            ref->markDirty(va);
            soa->markDirty(va);
        }
        if (rng.chance(0.004)) {
            VAddr page =
                ref_arena.pages[rng.nextBounded(ref_arena.pages.size())];
            auto size = ref_arena.table.translate(page)->size;
            ref->invalidate(page, size);
            soa->invalidate(page, size);
        }
        if (rng.chance(0.001)) {
            Asid asid = asids[rng.nextBounded(3)];
            ref->invalidateAsid(asid);
            soa->invalidateAsid(asid);
        }
    }

    // Post-state: a full deterministic sweep (lookups mutate MRU
    // order, but both sides see the same sweep, so they stay in
    // lockstep) followed by a byte-for-byte stat comparison.
    ref->setAsid(0);
    soa->setAsid(0);
    for (VAddr page : ref_arena.pages) {
        auto size = ref_arena.table.translate(page)->size;
        for (VAddr off : {VAddr(0), VAddr(0x40),
                          VAddr(pageBytes(size) - 1)}) {
            expectLookupEq(ref->lookup(page + off, false),
                           soa->lookup(page + off, false), page + off);
        }
    }
    EXPECT_EQ(statDump(ref_arena.root), statDump(soa_arena.root));
}

} // anonymous namespace

TEST_P(FamilyProperty, SoaTagLanesMatchReferenceScan)
{
    const Family family = GetParam();
    compareScanModes(
        [&](stats::StatGroup *root) {
            return FamilyProperty::build(family, root);
        },
        17);
}

TEST_P(MixProperty, SoaTagLanesMatchReferenceScan)
{
    const auto &geometry = GetParam();
    compareScanModes(
        [&](stats::StatGroup *root) {
            MixTlbParams params;
            params.entries = geometry.entries;
            params.assoc = geometry.assoc;
            params.mode = geometry.mode;
            params.colt4k = geometry.colt4k;
            params.alignmentRestricted = geometry.alignment;
            return std::make_unique<MixTlb>("mix", root, params);
        },
        19);
}

namespace
{

/**
 * Bit-exactness of the L0 MRU translation filter: a full machine run
 * with the filter on must leave every modeled statistic identical to
 * the same run with it off. The dump covers both TLB levels, the
 * walker, the caches, and the OS, so any replay that diverged from
 * the full path — a missed counter, a stale latency, a skipped dirty
 * micro-op — shows up as a dump mismatch.
 */
class L0FilterProperty
    : public ::testing::TestWithParam<sim::TlbDesign>
{
  public:
    static std::string
    runOnce(sim::TlbDesign design, bool filter_on)
    {
        tlb::setL0FilterEnabled(filter_on);
        sim::MachineParams params;
        params.name = "m";
        params.memBytes = 512 * MiB;
        params.design = design;
        params.seed = 5;
        sim::Machine machine(params);
        VAddr base = machine.mapArena(32 * MiB);
        machine.warmup(base, 32 * MiB);
        machine.startMeasurement();
        for (const char *workload : {"gups", "streamcluster"}) {
            auto gen = workload::makeGenerator(workload, base,
                                               32 * MiB, 7);
            machine.run(*gen, 100000);
        }
        std::string dump = statDump(machine.root());
        tlb::setL0FilterEnabled(true);
        return dump;
    }
};

} // anonymous namespace

TEST_P(L0FilterProperty, FilterOnOffStatsIdentical)
{
    const sim::TlbDesign design = GetParam();
    EXPECT_EQ(runOnce(design, true), runOnce(design, false));
}

INSTANTIATE_TEST_SUITE_P(Designs, L0FilterProperty,
                         ::testing::Values(sim::TlbDesign::Split,
                                           sim::TlbDesign::Mix,
                                           sim::TlbDesign::MixColt,
                                           sim::TlbDesign::HashRehash,
                                           sim::TlbDesign::Skew));

namespace
{

/**
 * Bit-exactness of the SIMD probe kernels (src/common/simd.hh,
 * DESIGN.md section 13). Three layers of differential coverage, all
 * against the pure-scalar reference kernels:
 *
 *   1. the raw kernels, on adversarial collision-heavy lanes of every
 *      ragged size 0..65 with random start offsets;
 *   2. TagLaneSet::findTag/findTagAny, where tag collisions force the
 *      continue-past-failed-confirm resumption mid-lane;
 *   3. whole op streams — every SoA design, the cache hierarchy, and
 *      full machine runs — asserting identical per-lookup results and
 *      byte-identical stat dumps with the kill switch on vs off.
 */
TEST(SimdKernels, FirstEqualMatchesScalarOnAdversarialLanes)
{
    Rng rng(0x51D0);
    for (int iter = 0; iter < 4000; ++iter) {
        const std::size_t n = rng.nextBounded(66);
        // A 4-value tag pool makes duplicates (and thus non-first
        // matches the kernel must NOT return) the common case.
        std::uint64_t pool[4];
        for (auto &p : pool)
            p = rng.next();
        std::vector<std::uint64_t> lane(n);
        for (auto &t : lane)
            t = pool[rng.nextBounded(4)];
        const std::uint64_t needle =
            rng.chance(0.8) ? pool[rng.nextBounded(4)] : rng.next();
        const std::size_t start = rng.nextBounded(n + 2);
        const std::size_t want =
            simd::firstEqualScalar(lane.data(), n, needle, start);
        ASSERT_EQ(simd::firstEqual(lane.data(), n, needle, start), want)
            << "n=" << n << " start=" << start;
        simd::ForceScalarGuard guard;
        ASSERT_EQ(simd::firstEqual(lane.data(), n, needle, start), want);
    }
}

TEST(SimdKernels, FirstEqualAnyMatchesScalarOnAdversarialLanes)
{
    Rng rng(0x51D1);
    for (int iter = 0; iter < 4000; ++iter) {
        const std::size_t n = rng.nextBounded(66);
        std::uint64_t pool[4];
        for (auto &p : pool)
            p = rng.next();
        std::vector<std::uint64_t> lane(n);
        for (auto &t : lane)
            t = pool[rng.nextBounded(4)];
        // 0..6 candidates: 0 (empty), 1..4 (hoisted vector paths), 5+
        // (the vector kernel's own scalar fallback).
        const unsigned ncands = static_cast<unsigned>(rng.nextBounded(7));
        std::uint64_t cands[6];
        for (unsigned c = 0; c < ncands; ++c)
            cands[c] = rng.chance(0.6) ? pool[rng.nextBounded(4)]
                                       : rng.next();
        const std::size_t start = rng.nextBounded(n + 2);
        const std::size_t want = simd::firstEqualAnyScalar(
            lane.data(), n, cands, ncands, start);
        ASSERT_EQ(
            simd::firstEqualAny(lane.data(), n, cands, ncands, start),
            want)
            << "n=" << n << " ncands=" << ncands << " start=" << start;
        simd::ForceScalarGuard guard;
        ASSERT_EQ(
            simd::firstEqualAny(lane.data(), n, cands, ncands, start),
            want);
    }
}

TEST(SimdKernels, L0RunLengthMatchesScalar)
{
    Rng rng(0x51D2);
    for (int iter = 0; iter < 4000; ++iter) {
        const std::size_t n = rng.nextBounded(66);
        const VAddr lo = (rng.next() >> 12) << 12;
        std::vector<MemRef> refs(n);
        for (auto &ref : refs) {
            if (rng.chance(0.8)) {
                ref.vaddr = lo + rng.nextBounded(PageBytes4K);
            } else if (rng.chance(0.5)) {
                // Boundary adversaries: one byte out on either side.
                ref.vaddr = rng.chance(0.5) ? lo - 1 : lo + PageBytes4K;
            } else {
                ref.vaddr = rng.next();
            }
            ref.type = rng.chance(0.3) ? AccessType::Write
                                       : AccessType::Read;
        }
        for (bool stores_ok : {false, true}) {
            const std::size_t want = simd::l0RunLengthScalar(
                refs.data(), n, lo, stores_ok, 0);
            ASSERT_EQ(simd::l0RunLength(refs.data(), n, lo, stores_ok),
                      want)
                << "n=" << n << " stores_ok=" << stores_ok;
            simd::ForceScalarGuard guard;
            ASSERT_EQ(simd::l0RunLength(refs.data(), n, lo, stores_ok),
                      want);
        }
    }
}

TEST(SimdKernels, TagLaneResumesPastFailedConfirms)
{
    Rng rng(0x51D3);
    for (int iter = 0; iter < 1000; ++iter) {
        TagLaneSet<std::uint64_t> set;
        const std::size_t n = rng.nextBounded(66);
        std::uint64_t pool[3];
        for (auto &p : pool)
            p = rng.next();
        for (std::size_t i = 0; i < n; ++i)
            set.insertFront(pool[rng.nextBounded(3)], rng.nextBounded(8));
        // Confirm accepts only one payload residue: with ~n/3 equal
        // tags and a 1/8 acceptance rate the scan routinely rejects
        // several tag hits before confirming mid-lane (or never).
        const std::uint64_t accept = rng.nextBounded(8);
        const auto confirm = [&](const std::uint64_t &p) {
            return p == accept;
        };
        const std::uint64_t needle = pool[rng.nextBounded(3)];
        std::size_t want = TagLaneSet<std::uint64_t>::npos;
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set.tag(i) == needle && confirm(set.payload(i))) {
                want = i;
                break;
            }
        }
        ASSERT_EQ(set.findTag(needle, confirm), want);
        std::uint64_t cands[2] = {pool[rng.nextBounded(3)],
                                  pool[rng.nextBounded(3)]};
        std::size_t want_any = TagLaneSet<std::uint64_t>::npos;
        for (std::size_t i = 0; i < set.size(); ++i) {
            if ((set.tag(i) == cands[0] || set.tag(i) == cands[1]) &&
                confirm(set.payload(i))) {
                want_any = i;
                break;
            }
        }
        ASSERT_EQ(set.findTagAny(cands, 2, confirm), want_any);
        simd::ForceScalarGuard guard;
        ASSERT_EQ(set.findTag(needle, confirm), want);
        ASSERT_EQ(set.findTagAny(cands, 2, confirm), want_any);
    }
}

/** One recorded lookup of the SIMD-vs-scalar design op streams. */
struct LookupRec
{
    bool hit;
    std::uint64_t probes;
    std::uint64_t waysRead;
    bool dirty;
    VAddr vbase;
    PAddr pbase;
    unsigned size;

    bool
    operator==(const LookupRec &other) const = default;
};

/**
 * Drive one design through the compareScanModes op mix (ASID mixes,
 * stores, invalidations, fills) with the SIMD kill switch held in one
 * position, recording every lookup and the final stat dump.
 */
template <typename Build>
std::pair<std::vector<LookupRec>, std::string>
runSimdOpStream(Build &&build, bool force_scalar, std::uint64_t seed)
{
    simd::ForceScalarGuard guard(force_scalar);
    Arena arena(seed);
    auto tlb = build(&arena.root);
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    const Asid asids[] = {0, 1, 2};
    std::vector<LookupRec> recs;
    recs.reserve(20000);
    const auto record = [&](const TlbLookup &result) {
        LookupRec rec{};
        rec.hit = result.hit;
        rec.probes = result.probes;
        rec.waysRead = result.waysRead;
        rec.dirty = result.entryDirty;
        if (result.hit) {
            rec.vbase = result.xlate.vbase;
            rec.pbase = result.xlate.pbase;
            rec.size = static_cast<unsigned>(result.xlate.size);
        }
        recs.push_back(rec);
    };
    for (int i = 0; i < 20000; i++) {
        if (rng.chance(0.001))
            tlb->setAsid(asids[rng.nextBounded(3)]);
        VAddr va = arena.randomAddr(rng);
        bool store = rng.chance(0.3);
        auto result = tlb->lookup(va, store);
        record(result);
        auto truth = arena.table.translate(va);
        if (!truth.has_value())
            ADD_FAILURE() << "unmapped arena address";
        if (!result.hit && truth && tlb->supports(truth->size)) {
            auto walk = arena.walker.walk(va, store);
            if (walk.pageFault()) {
                ADD_FAILURE() << "arena walk faulted";
            } else {
                FillInfo fill;
                fill.leaf = *walk.leaf;
                fill.vaddr = va;
                fill.walk = &walk;
                tlb->fill(fill);
            }
        }
        if (rng.chance(0.05))
            tlb->markDirty(va);
        if (rng.chance(0.004)) {
            VAddr page = arena.pages[rng.nextBounded(arena.pages.size())];
            auto size = arena.table.translate(page)->size;
            tlb->invalidate(page, size);
        }
        if (rng.chance(0.001))
            tlb->invalidateAsid(asids[rng.nextBounded(3)]);
    }
    tlb->setAsid(0);
    for (VAddr page : arena.pages) {
        auto size = arena.table.translate(page)->size;
        for (VAddr off : {VAddr(0), VAddr(0x40),
                          VAddr(pageBytes(size) - 1)})
            record(tlb->lookup(page + off, false));
    }
    return {std::move(recs), statDump(arena.root)};
}

template <typename Build>
void
compareSimdScan(Build &&build, std::uint64_t seed)
{
    auto wide = runSimdOpStream(build, false, seed);
    auto scalar = runSimdOpStream(build, true, seed);
    ASSERT_EQ(wide.first.size(), scalar.first.size());
    for (std::size_t i = 0; i < wide.first.size(); ++i) {
        ASSERT_TRUE(wide.first[i] == scalar.first[i])
            << "lookup #" << i << " diverges between SIMD and "
            << "forced-scalar kernels";
    }
    EXPECT_EQ(wide.second, scalar.second);
}

} // anonymous namespace

TEST_P(FamilyProperty, SimdProbesMatchForcedScalar)
{
    const Family family = GetParam();
    compareSimdScan(
        [&](stats::StatGroup *root) {
            return FamilyProperty::build(family, root);
        },
        23);
}

TEST_P(MixProperty, SimdProbesMatchForcedScalar)
{
    const auto &geometry = GetParam();
    compareSimdScan(
        [&](stats::StatGroup *root) {
            MixTlbParams params;
            params.entries = geometry.entries;
            params.assoc = geometry.assoc;
            params.mode = geometry.mode;
            params.colt4k = geometry.colt4k;
            params.alignmentRestricted = geometry.alignment;
            return std::make_unique<MixTlb>("mix", root, params);
        },
        29);
}

namespace
{

/** Cache probes: same paddr stream, SIMD vs forced scalar. */
std::pair<std::vector<std::uint64_t>, std::string>
runCacheStream(bool force_scalar, std::uint64_t seed)
{
    simd::ForceScalarGuard guard(force_scalar);
    stats::StatGroup root("cacheprop");
    cache::CacheHierarchy caches(cache::HierarchyParams{}, &root);
    Rng rng(seed);
    std::vector<std::uint64_t> cycles;
    cycles.reserve(50000);
    for (int i = 0; i < 50000; ++i) {
        // A small line pool keeps all three levels' sets mixing hits,
        // misses, and MRU churn.
        const PAddr paddr = (rng.nextBounded(1 << 14) << 6) +
                            rng.nextBounded(CacheLineBytes);
        cycles.push_back(caches.access(paddr, rng.chance(0.3)));
        if (rng.chance(0.0005))
            caches.flush();
    }
    return {std::move(cycles), statDump(root)};
}

} // anonymous namespace

TEST(SimdKernels, CacheProbesMatchForcedScalar)
{
    auto wide = runCacheStream(false, 0x51D4);
    auto scalar = runCacheStream(true, 0x51D4);
    ASSERT_EQ(wide.first, scalar.first);
    EXPECT_EQ(wide.second, scalar.second);
}

namespace
{

/**
 * End-to-end: full machine runs (L0 run-scan, tag lanes, and cache tag
 * windows all live) must dump identical stats with the kernels forced
 * scalar.
 */
class SimdMachineProperty
    : public ::testing::TestWithParam<sim::TlbDesign>
{
  public:
    static std::string
    runOnce(sim::TlbDesign design, bool force_scalar)
    {
        simd::ForceScalarGuard guard(force_scalar);
        sim::MachineParams params;
        params.name = "m";
        params.memBytes = 512 * MiB;
        params.design = design;
        params.seed = 5;
        sim::Machine machine(params);
        VAddr base = machine.mapArena(32 * MiB);
        machine.warmup(base, 32 * MiB);
        machine.startMeasurement();
        for (const char *workload : {"gups", "streamcluster"}) {
            auto gen = workload::makeGenerator(workload, base,
                                               32 * MiB, 7);
            machine.run(*gen, 100000);
        }
        return statDump(machine.root());
    }
};

} // anonymous namespace

TEST_P(SimdMachineProperty, SimdOnOffStatsIdentical)
{
    const sim::TlbDesign design = GetParam();
    EXPECT_EQ(runOnce(design, false), runOnce(design, true));
}

INSTANTIATE_TEST_SUITE_P(Designs, SimdMachineProperty,
                         ::testing::Values(sim::TlbDesign::Split,
                                           sim::TlbDesign::Mix,
                                           sim::TlbDesign::MixColt,
                                           sim::TlbDesign::HashRehash,
                                           sim::TlbDesign::Skew));
