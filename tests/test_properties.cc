/**
 * @file
 * Property-based tests (parameterized sweeps) over the TLB design
 * space. The central invariant for every design and geometry: a TLB
 * hit must return EXACTLY the page table's translation — regardless of
 * page-size mix, coalescing, mirroring, duplication, invalidation, or
 * migration history.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/random.hh"
#include "mem/phys_mem.hh"
#include "os/memhog.hh"
#include "os/memory_manager.hh"
#include "os/process.hh"
#include "pt/page_table.hh"
#include "pt/walker.hh"
#include "tlb/colt.hh"
#include "tlb/hash_rehash.hh"
#include "tlb/mix.hh"
#include "tlb/set_assoc.hh"
#include "tlb/skew.hh"
#include "tlb/split.hh"

using namespace mixtlb;
using namespace mixtlb::tlb;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

/** A mapped mixed-page-size address space to fuzz against. */
struct Arena
{
    mem::PhysMem mem{8 * GiB};
    pt::PageTable table{mem};
    stats::StatGroup root{"prop"};
    pt::Walker walker{table, &root, 8};
    std::vector<VAddr> pages; ///< one representative VA per page

    explicit Arena(std::uint64_t seed)
    {
        Rng rng(seed);
        // 4KB pages, some contiguous.
        PAddr pa = 0x10000000;
        for (int i = 0; i < 64; i++) {
            VAddr va = 0x00010000 + i * PageBytes4K;
            table.map(va, pa, PageSize::Size4K);
            pa += rng.chance(0.7) ? PageBytes4K : 3 * PageBytes4K;
            pages.push_back(va);
        }
        // 2MB superpages: one long contiguous run plus scattered ones.
        pa = 0x40000000;
        for (int i = 0; i < 24; i++) {
            VAddr va = 0x40000000 + static_cast<VAddr>(i) * PageBytes2M;
            table.map(va, pa, PageSize::Size2M);
            pa += rng.chance(0.8) ? PageBytes2M : 5 * PageBytes2M;
            pages.push_back(va);
        }
        // 1GB pages.
        table.map(8 * GiB, 1 * GiB, PageSize::Size1G);
        table.map(9 * GiB, 2 * GiB, PageSize::Size1G);
        pages.push_back(8 * GiB);
        pages.push_back(9 * GiB);
    }

    VAddr
    randomAddr(Rng &rng)
    {
        VAddr page = pages[rng.nextBounded(pages.size())];
        auto size = table.translate(page)->size;
        return page + rng.nextBounded(pageBytes(size));
    }
};

/**
 * Fuzz one TLB: random lookups; misses are walked and filled; every
 * hit must agree with the page table; random invalidations and
 * re-maps are thrown in.
 */
void
fuzzAgainstPageTable(BaseTlb &tlb, Arena &arena, std::uint64_t seed,
                     int iterations = 20000)
{
    Rng rng(seed);
    for (int i = 0; i < iterations; i++) {
        VAddr va = arena.randomAddr(rng);
        bool store = rng.chance(0.3);
        auto result = tlb.lookup(va, store);
        auto truth = arena.table.translate(va);
        ASSERT_TRUE(truth.has_value());
        if (result.hit) {
            ASSERT_EQ(result.xlate.translate(va), truth->translate(va))
                << std::hex << "va=0x" << va;
        } else if (tlb.supports(truth->size)) {
            auto walk = arena.walker.walk(va, store);
            ASSERT_FALSE(walk.pageFault());
            FillInfo fill;
            fill.leaf = *walk.leaf;
            fill.vaddr = va;
            fill.walk = &walk;
            tlb.fill(fill);
            auto again = tlb.lookup(va, store);
            ASSERT_TRUE(again.hit) << std::hex << "va=0x" << va;
            ASSERT_EQ(again.xlate.translate(va), truth->translate(va));
        }
        // Occasional shootdowns keep the invalidation paths honest.
        if (rng.chance(0.002)) {
            VAddr page = arena.pages[rng.nextBounded(
                arena.pages.size())];
            auto size = arena.table.translate(page)->size;
            tlb.invalidate(page, size);
            ASSERT_FALSE(tlb.lookup(page, false).hit);
        }
    }
}

struct MixGeometry
{
    std::uint64_t entries;
    unsigned assoc;
    CoalesceMode mode;
    unsigned colt4k;
    bool alignment;
};

class MixProperty : public ::testing::TestWithParam<MixGeometry>
{
};

} // anonymous namespace

TEST_P(MixProperty, HitsAlwaysAgreeWithPageTable)
{
    const auto &geometry = GetParam();
    Arena arena(42);
    MixTlbParams params;
    params.entries = geometry.entries;
    params.assoc = geometry.assoc;
    params.mode = geometry.mode;
    params.colt4k = geometry.colt4k;
    params.alignmentRestricted = geometry.alignment;
    MixTlb tlb("mix", &arena.root, params);
    fuzzAgainstPageTable(tlb, arena, 7);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MixProperty,
    ::testing::Values(
        MixGeometry{4, 2, CoalesceMode::Bitmap, 1, true},
        MixGeometry{4, 2, CoalesceMode::Length, 1, true},
        MixGeometry{96, 6, CoalesceMode::Bitmap, 1, true},
        MixGeometry{96, 6, CoalesceMode::Bitmap, 4, true},
        MixGeometry{544, 8, CoalesceMode::Length, 1, true},
        MixGeometry{544, 8, CoalesceMode::Length, 4, true},
        MixGeometry{544, 8, CoalesceMode::Length, 1, false},
        MixGeometry{96, 6, CoalesceMode::Bitmap, 1, false},
        MixGeometry{128, 2, CoalesceMode::Bitmap, 1, true},
        MixGeometry{64, 64, CoalesceMode::Length, 1, true}));

namespace
{

class MixSuperIndexProperty : public ::testing::TestWithParam<unsigned>
{
};

} // anonymous namespace

TEST_P(MixSuperIndexProperty, AblationModeStaysCorrect)
{
    Arena arena(43);
    MixTlbParams params;
    params.entries = 96;
    params.assoc = GetParam();
    params.superpageIndexBits = true;
    MixTlb tlb("mixsp", &arena.root, params);
    fuzzAgainstPageTable(tlb, arena, 11);
}

INSTANTIATE_TEST_SUITE_P(Assocs, MixSuperIndexProperty,
                         ::testing::Values(2u, 4u, 6u));

namespace
{

/** All non-MIX designs behind the same fuzz. */
enum class Family
{
    Split,
    HashRehash,
    HashRehashPred,
    Skew,
    SkewPred,
    Colt4K,
};

class FamilyProperty : public ::testing::TestWithParam<Family>
{
  public:
    static std::unique_ptr<BaseTlb>
    build(Family family, stats::StatGroup *root)
    {
        switch (family) {
          case Family::Split: {
            auto split = std::make_unique<SplitTlb>("t", root);
            split->addComponent(std::make_unique<SetAssocTlb>(
                "t4k", root, 64, 4, PageSize::Size4K));
            split->addComponent(std::make_unique<SetAssocTlb>(
                "t2m", root, 32, 4, PageSize::Size2M));
            split->addComponent(std::make_unique<FullyAssocTlb>(
                "t1g", root, 4,
                std::initializer_list<PageSize>{PageSize::Size1G}));
            return split;
          }
          case Family::HashRehash:
          case Family::HashRehashPred: {
            HashRehashParams params;
            params.entries = 96;
            params.assoc = 6;
            params.usePredictor = family == Family::HashRehashPred;
            return std::make_unique<HashRehashTlb>("t", root, params);
          }
          case Family::Skew:
          case Family::SkewPred: {
            SkewTlbParams params;
            params.setsPerWay = 16;
            params.usePredictor = family == Family::SkewPred;
            return std::make_unique<SkewTlb>("t", root, params);
          }
          case Family::Colt4K:
            return std::make_unique<ColtTlb>("t", root, 64, 4,
                                             PageSize::Size4K, 4);
        }
        return nullptr;
    }
};

} // anonymous namespace

TEST_P(FamilyProperty, HitsAlwaysAgreeWithPageTable)
{
    Arena arena(44);
    auto tlb = build(GetParam(), &arena.root);
    fuzzAgainstPageTable(*tlb, arena, 13);
}

INSTANTIATE_TEST_SUITE_P(Designs, FamilyProperty,
                         ::testing::Values(Family::Split,
                                           Family::HashRehash,
                                           Family::HashRehashPred,
                                           Family::Skew,
                                           Family::SkewPred,
                                           Family::Colt4K));

namespace
{

/** End-to-end invariant under OS churn: migration + shootdowns. */
class MigrationProperty : public ::testing::TestWithParam<int>
{
};

} // anonymous namespace

TEST_P(MigrationProperty, TranslationsSurviveCompactionChurn)
{
    // A THS process under heavy fragmentation; compaction migrates
    // pages mid-run while we fuzz translations through a MIX
    // hierarchy-like flow at the page-table level.
    mem::PhysMem mem(1 * GiB);
    stats::StatGroup root("prop");
    os::MemoryManager mm(mem, &root,
                         os::CompactionParams{
                             .maxCandidates = 64,
                             .deferOnFailure = true,
                             .minFreeFraction = 0.02,
                             .fullEffortFreeFraction = 0.05,
                             .seed = static_cast<std::uint64_t>(
                                 GetParam())});
    os::Memhog hog(mm, 0.0);
    hog.fragment(0.4, GetParam());
    os::ProcessParams proc_params;
    proc_params.policy = os::PagePolicy::SmallOnly;
    os::Process proc(mm, proc_params, &root);
    VAddr base = proc.mmap(128 * MiB);
    for (VAddr va = base; va < base + 64 * MiB; va += PageBytes4K)
        proc.touch(va);

    Rng rng(GetParam());
    for (int i = 0; i < 200; i++) {
        // Force compaction (migrates process pages).
        mm.allocContiguous(mem::Order2M, mem::FrameUse::AppHuge, true);
        // Every page must still translate, and A/D state is preserved.
        for (int j = 0; j < 50; j++) {
            VAddr va = base + rng.nextBounded(64 * MiB);
            auto xlate = proc.pageTable().translate(va);
            ASSERT_TRUE(xlate.has_value());
            ASSERT_EQ(mem.frameUse(xlate->pfn4k()),
                      mem::FrameUse::AppSmall);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationProperty,
                         ::testing::Values(1, 2, 3));
