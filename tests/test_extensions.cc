/**
 * @file
 * Tests for the extension features: the paging-structure (MMU) cache,
 * FreeBSD-style reservation paging, and trace record/replay.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "os/memhog.hh"
#include "os/memory_manager.hh"
#include "os/process.hh"
#include "os/scan.hh"
#include "pt/walker.hh"
#include "sim/machine.hh"
#include "workload/trace_file.hh"

using namespace mixtlb;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

} // anonymous namespace

TEST(Pwc, ShortensRepeatedWalks)
{
    mem::PhysMem mem(1 * GiB);
    pt::PageTable table(mem);
    stats::StatGroup root("test");
    pt::Walker walker(table, &root, 1, pt::PwcParams{16});
    for (VAddr va = 0x10000; va < 0x10000 + 64 * PageBytes4K;
         va += PageBytes4K) {
        table.map(va, 0x1000000 + va, PageSize::Size4K);
    }

    auto cold = walker.walk(0x10000, false);
    EXPECT_EQ(cold.accesses.size(), 4u); // full 4-level walk
    auto warm = walker.walk(0x11000, false);
    EXPECT_EQ(warm.accesses.size(), 1u); // PT base cached: leaf only
    ASSERT_FALSE(warm.pageFault());
    EXPECT_EQ(warm.leaf->translate(0x11000), 0x1000000u + 0x11000);
    EXPECT_GT(root.value("walker.pwc.hits"), 0.0);
}

TEST(Pwc, DisabledByDefault)
{
    mem::PhysMem mem(1 * GiB);
    pt::PageTable table(mem);
    stats::StatGroup root("test");
    pt::Walker walker(table, &root);
    table.map(0x10000, 0x1000000, PageSize::Size4K);
    table.map(0x11000, 0x1001000, PageSize::Size4K);
    walker.walk(0x10000, false);
    EXPECT_EQ(walker.walk(0x11000, false).accesses.size(), 4u);
}

TEST(Pwc, InvalidationDropsShortcuts)
{
    mem::PhysMem mem(1 * GiB);
    pt::PageTable table(mem);
    stats::StatGroup root("test");
    pt::Walker walker(table, &root, 1, pt::PwcParams{16});
    table.map(0x10000, 0x1000000, PageSize::Size4K);
    table.map(0x11000, 0x1001000, PageSize::Size4K);
    walker.walk(0x10000, false);
    walker.pwc().invalidate(0x10000, PageSize::Size4K);
    // Shortcut flushed: the next walk is a full one again.
    EXPECT_EQ(walker.walk(0x11000, false).accesses.size(), 4u);
}

TEST(Pwc, LruEviction)
{
    mem::PhysMem mem(4 * GiB);
    pt::PageTable table(mem);
    stats::StatGroup root("test");
    pt::Walker walker(table, &root, 1, pt::PwcParams{2});
    // Pages in many distinct 2MB regions: each needs its own PT entry
    // in the cache; with 2 entries, old shortcuts get evicted.
    for (int i = 0; i < 8; i++) {
        VAddr va = static_cast<VAddr>(i) * PageBytes2M;
        table.map(va, 0x40000000 + va, PageSize::Size4K);
        walker.walk(va, false);
    }
    // The oldest region's PT shortcut is long gone.
    auto again = walker.walk(0, false);
    EXPECT_GT(again.accesses.size(), 1u);
}

TEST(Pwc, WorksInsideAMachine)
{
    sim::MachineParams params;
    params.memBytes = 2 * GiB;
    params.design = sim::TlbDesign::Split;
    params.proc.policy = os::PagePolicy::SmallOnly;
    params.pwcEntries = 32;
    sim::Machine machine(params);
    VAddr base = machine.mapArena(64 * MiB);
    machine.warmup(base, 64 * MiB);
    machine.startMeasurement();
    auto gen = workload::makeGenerator("gups", base, 64 * MiB, 3);
    machine.run(*gen, 20000);
    EXPECT_GT(machine.root().value("walker.pwc.hits"), 0.0);
}

TEST(Reservation, PromotesWhenFullyTouched)
{
    mem::PhysMem mem(1 * GiB);
    stats::StatGroup root("test");
    os::MemoryManager mm(mem, &root);
    os::ProcessParams params;
    params.policy = os::PagePolicy::Reservation;
    os::Process proc(mm, params, &root);
    VAddr base = proc.mmap(16 * MiB);

    unsigned invalidations = 0;
    proc.addInvalidateListener([&](VAddr, PageSize) { invalidations++; });

    // Touch all but one page: still 4KB mappings.
    for (std::uint64_t i = 0; i < Frames2M - 1; i++)
        proc.touch(base + i * PageBytes4K);
    auto before = os::scanDistribution(proc.pageTable());
    EXPECT_EQ(before.bytes2m, 0u);
    EXPECT_EQ(before.bytes4k, (Frames2M - 1) * PageBytes4K);

    // The last touch promotes the whole region to a 2MB page.
    proc.touch(base + (Frames2M - 1) * PageBytes4K);
    auto after = os::scanDistribution(proc.pageTable());
    EXPECT_EQ(after.bytes2m, PageBytes2M);
    EXPECT_EQ(after.bytes4k, 0u);
    EXPECT_GE(invalidations, static_cast<unsigned>(Frames2M));

    // Physical frames are the reservation's: translation unchanged.
    auto leaf = proc.pageTable().translate(base + 0x3000);
    ASSERT_TRUE(leaf.has_value());
    EXPECT_EQ(leaf->size, PageSize::Size2M);
}

TEST(Reservation, ReservedFramesBackTheRightSlots)
{
    mem::PhysMem mem(1 * GiB);
    stats::StatGroup root("test");
    os::MemoryManager mm(mem, &root);
    os::ProcessParams params;
    params.policy = os::PagePolicy::Reservation;
    os::Process proc(mm, params, &root);
    VAddr base = proc.mmap(16 * MiB);

    proc.touch(base + 7 * PageBytes4K);
    proc.touch(base + 3 * PageBytes4K);
    auto a = proc.pageTable().translate(base + 7 * PageBytes4K);
    auto b = proc.pageTable().translate(base + 3 * PageBytes4K);
    ASSERT_TRUE(a && b);
    // Both come from one 2MB block, at their natural offsets.
    EXPECT_EQ(a->pbase - b->pbase, 4 * PageBytes4K);
}

TEST(Reservation, FallsBackWhenNoBlockAvailable)
{
    mem::PhysMem mem(256 * MiB);
    stats::StatGroup root("test");
    os::MemoryManager mm(mem, &root);
    // Fragment everything so no 2MB block can be reserved.
    os::Memhog hog(mm, 0.0);
    hog.fragment(0.5, 5);
    os::ProcessParams params;
    params.policy = os::PagePolicy::Reservation;
    params.thpDefrag = false;
    os::Process proc(mm, params, &root);
    VAddr base = proc.mmap(8 * MiB);
    EXPECT_EQ(proc.touch(base), os::TouchResult::Faulted);
    auto dist = os::scanDistribution(proc.pageTable());
    EXPECT_EQ(dist.bytes4k, PageBytes4K);
}

TEST(Reservation, SequentialSweepEndsMostlySuperpages)
{
    sim::MachineParams params;
    params.memBytes = 2 * GiB;
    params.proc.policy = os::PagePolicy::Reservation;
    sim::Machine machine(params);
    VAddr base = machine.mapArena(256 * MiB);
    machine.touchSequential(base, 256 * MiB);
    auto dist = machine.distribution();
    EXPECT_GT(dist.superpageFraction(), 0.95);
    // And the promoted superpages are contiguous, like THS's.
    EXPECT_GE(os::averageContiguity(
                  machine.contiguityRuns(PageSize::Size2M)),
              16.0);
}

TEST(TraceFile, RoundTrip)
{
    const std::string path = "/tmp/mixtlb_test_trace.bin";
    auto gen = workload::makeGenerator("graph500", 1ULL << 32,
                                       64 * MiB, 9);
    auto recorded = workload::recordTrace(*gen, 5000, path);
    EXPECT_EQ(recorded, 5000u);

    // Replay must match a fresh generator with the same seed exactly.
    auto fresh = workload::makeGenerator("graph500", 1ULL << 32,
                                         64 * MiB, 9);
    workload::TraceFileGen replay(path);
    EXPECT_EQ(replay.count(), 5000u);
    for (int i = 0; i < 5000; i++) {
        MemRef expected = fresh->next();
        MemRef got = replay.next();
        ASSERT_EQ(got.vaddr, expected.vaddr) << i;
        ASSERT_EQ(static_cast<int>(got.type),
                  static_cast<int>(expected.type)) << i;
    }
    std::remove(path.c_str());
}

TEST(TraceFile, LoopsAtEnd)
{
    const std::string path = "/tmp/mixtlb_test_trace2.bin";
    auto gen = workload::makeGenerator("gups", 1ULL << 32, 8 * MiB, 4);
    workload::recordTrace(*gen, 100, path);
    workload::TraceFileGen replay(path);
    MemRef first = replay.next();
    for (int i = 1; i < 100; i++)
        replay.next();
    MemRef wrapped = replay.next();
    EXPECT_EQ(wrapped.vaddr, first.vaddr);
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayDrivesAMachine)
{
    const std::string path = "/tmp/mixtlb_test_trace3.bin";
    sim::MachineParams params;
    params.memBytes = 2 * GiB;
    params.design = sim::TlbDesign::Mix;
    params.proc.policy = os::PagePolicy::Thp;
    sim::Machine machine(params);
    VAddr base = machine.mapArena(64 * MiB);

    auto gen = workload::makeGenerator("memcached", base, 64 * MiB, 5);
    workload::recordTrace(*gen, 2000, path);
    workload::TraceFileGen replay(path);
    EXPECT_EQ(machine.run(replay, 2000), 2000u);
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsGarbageFilesRecoverably)
{
    // Corrupt input is a per-point failure (SimError), not a process
    // abort: a sweep replaying a damaged trace quarantines the point.
    const std::string path = "/tmp/mixtlb_test_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace file at all", f);
    std::fclose(f);
    try {
        workload::TraceFileGen bad(path);
        FAIL() << "garbage trace accepted";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), "trace-corrupt");
        EXPECT_NE(std::string(error.what()).find("bad magic"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}
