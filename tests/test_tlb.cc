/**
 * @file
 * Tests for the non-MIX TLB designs (split set-associative, fully
 * associative, hash-rehash with prediction, skew-associative, COLT,
 * ideal) and the two-level TLB hierarchy.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>

#include "cache/cache.hh"
#include "common/random.hh"
#include "mem/phys_mem.hh"
#include "os/memory_manager.hh"
#include "os/process.hh"
#include "pt/page_table.hh"
#include "pt/walker.hh"
#include "tlb/colt.hh"
#include "tlb/hash_rehash.hh"
#include "tlb/hierarchy.hh"
#include "tlb/ideal.hh"
#include "tlb/mix.hh"
#include "tlb/set_assoc.hh"
#include "tlb/skew.hh"
#include "tlb/split.hh"
#include "tlb/walk_source.hh"

using namespace mixtlb;
using namespace mixtlb::tlb;

/**
 * Counting global allocator: every heap allocation in this binary
 * bumps the counter, letting tests assert that the TLB lookup hot
 * paths are allocation-free (the PR 4 contract).
 */
static std::atomic<std::uint64_t> g_heapAllocs{0};

static void *
countedAlloc(std::size_t size)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *operator new(std::size_t size) { return countedAlloc(size); }
void *operator new[](std::size_t size) { return countedAlloc(size); }
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

pt::Translation
xlate4k(VAddr vbase, PAddr pbase)
{
    pt::Translation t;
    t.vbase = vbase;
    t.pbase = pbase;
    t.size = PageSize::Size4K;
    t.accessed = true;
    return t;
}

pt::Translation
xlate2m(VAddr vbase, PAddr pbase)
{
    pt::Translation t;
    t.vbase = vbase;
    t.pbase = pbase;
    t.size = PageSize::Size2M;
    t.accessed = true;
    return t;
}

FillInfo
simpleFill(const pt::Translation &leaf)
{
    FillInfo fill;
    fill.leaf = leaf;
    fill.vaddr = leaf.vbase;
    return fill;
}

} // anonymous namespace

TEST(SetAssoc, HitMissAndLru)
{
    stats::StatGroup root("test");
    SetAssocTlb tlb("t", &root, 8, 2, PageSize::Size4K); // 4 sets
    tlb.fill(simpleFill(xlate4k(0x0000, 0x10000)));
    EXPECT_TRUE(tlb.lookup(0x0123, false).hit);
    EXPECT_FALSE(tlb.lookup(0x1000, false).hit);

    // Three pages mapping to set 0 (vpn 0, 4, 8): LRU evicts vpn 0.
    tlb.fill(simpleFill(xlate4k(0x4000, 0x20000)));
    tlb.fill(simpleFill(xlate4k(0x8000, 0x30000)));
    EXPECT_FALSE(tlb.lookup(0x0000, false).hit);
    EXPECT_TRUE(tlb.lookup(0x4000, false).hit);
    EXPECT_TRUE(tlb.lookup(0x8000, false).hit);
}

TEST(SetAssoc, RejectsOtherPageSizes)
{
    stats::StatGroup root("test");
    SetAssocTlb tlb("t", &root, 8, 2, PageSize::Size2M);
    EXPECT_TRUE(tlb.supports(PageSize::Size2M));
    EXPECT_FALSE(tlb.supports(PageSize::Size4K));
    tlb.fill(simpleFill(xlate2m(0x00400000, 0x0)));
    // Lookup treats the address by its own page size.
    EXPECT_TRUE(tlb.lookup(0x005fffff, false).hit);
}

TEST(SetAssoc, InvalidateAndDirty)
{
    stats::StatGroup root("test");
    SetAssocTlb tlb("t", &root, 8, 2, PageSize::Size4K);
    tlb.fill(simpleFill(xlate4k(0x1000, 0x10000)));
    EXPECT_FALSE(tlb.lookup(0x1000, false).entryDirty);
    tlb.markDirty(0x1000);
    EXPECT_TRUE(tlb.lookup(0x1000, false).entryDirty);
    tlb.invalidate(0x1000, PageSize::Size4K);
    EXPECT_FALSE(tlb.lookup(0x1000, false).hit);
}

TEST(FullyAssoc, MultiSizeAndLru)
{
    stats::StatGroup root("test");
    FullyAssocTlb tlb("t", &root, 2,
                      {PageSize::Size2M, PageSize::Size1G});
    tlb.fill(simpleFill(xlate2m(0x00400000, 0x0)));
    pt::Translation big;
    big.vbase = 4 * GiB;
    big.pbase = 1 * GiB;
    big.size = PageSize::Size1G;
    tlb.fill(simpleFill(big));
    EXPECT_TRUE(tlb.lookup(0x00400000, false).hit);
    EXPECT_TRUE(tlb.lookup(4 * GiB + 123, false).hit);
    // Third fill evicts the LRU (the 2MB entry was just touched, so
    // the 1GB entry goes).
    tlb.lookup(0x00400000, false);
    tlb.fill(simpleFill(xlate2m(0x00800000, 0x200000)));
    EXPECT_TRUE(tlb.lookup(0x00400000, false).hit);
    EXPECT_FALSE(tlb.lookup(4 * GiB + 123, false).hit);
}

TEST(Split, RoutesBySizeAndProbesAll)
{
    stats::StatGroup root("test");
    SplitTlb split("split", &root);
    split.addComponent(std::make_unique<SetAssocTlb>(
        "t4k", &root, 16, 4, PageSize::Size4K));
    split.addComponent(std::make_unique<SetAssocTlb>(
        "t2m", &root, 8, 4, PageSize::Size2M));
    split.addComponent(std::make_unique<FullyAssocTlb>(
        "t1g", &root, 4, std::initializer_list<PageSize>{
            PageSize::Size1G}));

    split.fill(simpleFill(xlate4k(0x1000, 0x10000)));
    split.fill(simpleFill(xlate2m(0x00400000, 0x0)));

    auto small = split.lookup(0x1000, false);
    EXPECT_TRUE(small.hit);
    EXPECT_EQ(small.xlate.size, PageSize::Size4K);
    auto big = split.lookup(0x00412345, false);
    EXPECT_TRUE(big.hit);
    EXPECT_EQ(big.xlate.size, PageSize::Size2M);
    // Parallel probe reads all components' ways: 4 + 4 + 4.
    EXPECT_EQ(big.waysRead, 12u);
    EXPECT_TRUE(split.supports(PageSize::Size1G));
}

TEST(Split, SuperpageThrashingDespiteFreeSmallEntries)
{
    // The paper's Figure 3 problem: superpages thrash their tiny TLB
    // while the 4KB TLB sits idle.
    stats::StatGroup root("test");
    SplitTlb split("split", &root);
    split.addComponent(std::make_unique<SetAssocTlb>(
        "t4k", &root, 64, 4, PageSize::Size4K));
    split.addComponent(std::make_unique<SetAssocTlb>(
        "t2m", &root, 4, 4, PageSize::Size2M)); // 1 set, 4 ways

    for (int i = 0; i < 8; i++)
        split.fill(simpleFill(xlate2m(i * PageBytes2M, i * PageBytes2M)));
    // Only the last 4 superpages survive; the 4KB TLB is empty but
    // cannot help.
    unsigned resident = 0;
    for (int i = 0; i < 8; i++)
        resident += split.lookup(i * PageBytes2M, false).hit ? 1 : 0;
    EXPECT_EQ(resident, 4u);
}

TEST(HashRehash, ProbeCountsAndHits)
{
    stats::StatGroup root("test");
    HashRehashParams params;
    params.entries = 64;
    params.assoc = 4;
    HashRehashTlb tlb("hr", &root, params);

    tlb.fill(simpleFill(xlate4k(0x1000, 0x10000)));
    tlb.fill(simpleFill(xlate2m(0x00400000, 0x0)));

    // 4KB page: first probe (4KB first in default order).
    auto small = tlb.lookup(0x1000, false);
    EXPECT_TRUE(small.hit);
    EXPECT_EQ(small.probes, 1u);
    // 2MB page: second probe.
    auto big = tlb.lookup(0x00400000, false);
    EXPECT_TRUE(big.hit);
    EXPECT_EQ(big.probes, 2u);
    // Miss: exhausts all three sizes.
    auto miss = tlb.lookup(0x7000000, false);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.probes, 3u);
}

TEST(HashRehash, PredictorCutsProbes)
{
    stats::StatGroup root("test");
    HashRehashParams params;
    params.entries = 64;
    params.assoc = 4;
    params.usePredictor = true;
    HashRehashTlb tlb("hr", &root, params);

    tlb.fill(simpleFill(xlate2m(0x00400000, 0x0)));
    // The fill trained the predictor, so the first probe goes straight
    // to the 2MB index — one probe instead of the fixed-order two.
    auto first = tlb.lookup(0x00400000, false);
    EXPECT_TRUE(first.hit);
    EXPECT_EQ(first.probes, 1u);

    // Re-train the region to 4KB; the next 2MB lookup mispredicts and
    // needs a second probe (the latency-variability problem of
    // Sec. 5.1).
    tlb.fill(simpleFill(xlate4k(0x00410000, 0x20000)));
    auto mispredicted = tlb.lookup(0x00400000, false);
    EXPECT_TRUE(mispredicted.hit);
    EXPECT_EQ(mispredicted.probes, 2u);
    ASSERT_NE(tlb.predictor(), nullptr);
    EXPECT_GT(tlb.predictor()->accuracy(), 0.0);
}

TEST(HashRehash, SizesShareCapacity)
{
    // Unlike split TLBs, one size can use the whole structure.
    stats::StatGroup root("test");
    HashRehashParams params;
    params.entries = 64;
    params.assoc = 4;
    HashRehashTlb tlb("hr", &root, params);
    for (int i = 0; i < 32; i++)
        tlb.fill(simpleFill(xlate2m(i * PageBytes2M, i * PageBytes2M)));
    unsigned resident = 0;
    for (int i = 0; i < 32; i++)
        resident += tlb.lookup(i * PageBytes2M, false).hit ? 1 : 0;
    EXPECT_EQ(resident, 32u);
}

TEST(Skew, AllSizesConcurrently)
{
    stats::StatGroup root("test");
    SkewTlbParams params;
    params.setsPerWay = 8;
    SkewTlb tlb("skew", &root, params);

    tlb.fill(simpleFill(xlate4k(0x1000, 0x10000)));
    tlb.fill(simpleFill(xlate2m(0x00400000, 0x0)));
    pt::Translation big;
    big.vbase = 4 * GiB;
    big.pbase = 1 * GiB;
    big.size = PageSize::Size1G;
    tlb.fill(simpleFill(big));

    EXPECT_TRUE(tlb.lookup(0x1000, false).hit);
    EXPECT_TRUE(tlb.lookup(0x00400000, false).hit);
    EXPECT_TRUE(tlb.lookup(4 * GiB + 5, false).hit);
    // Parallel probe reads the sum of all ways (6): the energy problem.
    EXPECT_EQ(tlb.lookup(0x1000, false).waysRead, 6u);
}

TEST(Skew, TimestampReplacementEvictsOldest)
{
    stats::StatGroup root("test");
    SkewTlbParams params;
    params.setsPerWay = 4;
    SkewTlb tlb("skew", &root, params);
    // Fill many 4KB pages; with 2 ways x 4 rows = 8 slots, 16 pages
    // must evict; recently used ones survive.
    for (int i = 0; i < 16; i++)
        tlb.fill(simpleFill(xlate4k(i * PageBytes4K, i * PageBytes4K)));
    unsigned survivors = 0;
    for (int i = 0; i < 16; i++)
        survivors += tlb.lookup(i * PageBytes4K, false).hit ? 1 : 0;
    EXPECT_GT(survivors, 0u);
    EXPECT_LE(survivors, 8u);
}

TEST(Skew, PredictorReducesWaysRead)
{
    stats::StatGroup root("test");
    SkewTlbParams params;
    params.setsPerWay = 8;
    params.usePredictor = true;
    SkewTlb tlb("skew", &root, params);
    tlb.fill(simpleFill(xlate4k(0x1000, 0x10000)));
    // Predictor defaults to 4KB: first-round probe reads only 2 ways.
    auto result = tlb.lookup(0x1000, false);
    EXPECT_TRUE(result.hit);
    EXPECT_EQ(result.waysRead, 2u);
    EXPECT_EQ(result.probes, 1u);
}

TEST(Skew, InvalidateWorks)
{
    stats::StatGroup root("test");
    SkewTlbParams params;
    SkewTlb tlb("skew", &root, params);
    tlb.fill(simpleFill(xlate2m(0x00400000, 0x0)));
    tlb.invalidate(0x00400000, PageSize::Size2M);
    EXPECT_FALSE(tlb.lookup(0x00400000, false).hit);
}

TEST(Colt, CoalescesContiguousSmallPages)
{
    // Feed a real walker line with 4 contiguous small pages.
    mem::PhysMem mem{256 * MiB};
    pt::PageTable table{mem};
    stats::StatGroup root("test");
    pt::Walker walker{table, &root};
    for (int i = 0; i < 4; i++) {
        table.map(0x10000 + i * PageBytes4K, 0x800000 + i * PageBytes4K,
                  PageSize::Size4K);
        walker.walk(0x10000 + i * PageBytes4K, false); // set A bits
    }
    ColtTlb tlb("colt", &root, 32, 4, PageSize::Size4K, 4);
    auto walk = walker.walk(0x10000, false);
    FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.vaddr = 0x10000;
    fill.walk = &walk;
    tlb.fill(fill);

    for (int i = 0; i < 4; i++) {
        auto result = tlb.lookup(0x10000 + i * PageBytes4K, false);
        ASSERT_TRUE(result.hit) << i;
        EXPECT_EQ(result.xlate.translate(0x10000 + i * PageBytes4K),
                  0x800000u + i * PageBytes4K);
    }
    EXPECT_EQ(root.value("colt.fills"), 1.0);
    ASSERT_TRUE(tlb.lookup(0x10000, false).bundle.has_value());
    EXPECT_EQ(tlb.lookup(0x10000, false).bundle->count, 4u);
}

TEST(Colt, NonContiguousPagesDoNotCoalesce)
{
    mem::PhysMem mem{256 * MiB};
    pt::PageTable table{mem};
    stats::StatGroup root("test");
    pt::Walker walker{table, &root};
    table.map(0x10000, 0x800000, PageSize::Size4K);
    table.map(0x11000, 0x900000, PageSize::Size4K); // PA gap
    walker.walk(0x11000, false);
    ColtTlb tlb("colt", &root, 32, 4, PageSize::Size4K, 4);
    auto walk = walker.walk(0x10000, false);
    FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.walk = &walk;
    tlb.fill(fill);
    EXPECT_TRUE(tlb.lookup(0x10000, false).hit);
    EXPECT_FALSE(tlb.lookup(0x11000, false).hit);
}

TEST(Colt, SuperpageVariantForColtPlusPlus)
{
    mem::PhysMem mem{1 * GiB};
    pt::PageTable table{mem};
    stats::StatGroup root("test");
    pt::Walker walker{table, &root};
    for (int i = 0; i < 2; i++) {
        table.map(0x00400000 + i * PageBytes2M, i * PageBytes2M,
                  PageSize::Size2M);
        walker.walk(0x00400000 + i * PageBytes2M, false);
    }
    ColtTlb tlb("colt2m", &root, 8, 4, PageSize::Size2M, 2);
    auto walk = walker.walk(0x00400000, false);
    FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.walk = &walk;
    tlb.fill(fill);
    EXPECT_TRUE(tlb.lookup(0x00400000, false).hit);
    EXPECT_TRUE(tlb.lookup(0x00600000, false).hit);
}

TEST(Ideal, HitsEveryMappedPage)
{
    mem::PhysMem mem{256 * MiB};
    pt::PageTable table{mem};
    stats::StatGroup root("test");
    table.map(0x1000, 0x800000, PageSize::Size4K);
    IdealTlb tlb("ideal", &root, table);
    auto result = tlb.lookup(0x1234, false);
    EXPECT_TRUE(result.hit);
    EXPECT_EQ(result.xlate.translate(0x1234), 0x800234u);
    EXPECT_FALSE(tlb.lookup(0x2000, false).hit);
}

namespace
{

/** An end-to-end hierarchy over a THS process. */
struct HierarchyFixture : ::testing::Test
{
    mem::PhysMem mem{2 * GiB};
    stats::StatGroup root{"test"};
    os::MemoryManager mm{mem, &root};
    os::Process proc;
    cache::CacheHierarchy caches{cache::HierarchyParams{}, &root};
    NativeWalkSource source;

    HierarchyFixture()
        : proc(mm, []{
              os::ProcessParams params;
              params.policy = os::PagePolicy::Thp;
              return params;
          }(), &root),
          source(proc.pageTable(), &root,
                 [this](VAddr va, bool st) {
                     return proc.touch(va, st)
                            != os::TouchResult::OutOfMemory;
                 })
    {}

    std::unique_ptr<TlbHierarchy>
    makeMixHierarchy()
    {
        MixTlbParams l1p;
        l1p.entries = 96;
        l1p.assoc = 6;
        MixTlbParams l2p;
        l2p.entries = 544;
        l2p.assoc = 8;
        l2p.mode = CoalesceMode::Length;
        auto hier = std::make_unique<TlbHierarchy>(
            "mixh", &root,
            std::make_unique<MixTlb>("l1", &root, l1p),
            std::make_shared<MixTlb>("l2", &root, l2p),
            source, caches);
        proc.addInvalidateListener([h = hier.get()](VAddr va, PageSize s) {
            h->invalidatePage(va, s);
        });
        return hier;
    }
};

} // anonymous namespace

TEST_F(HierarchyFixture, FaultThenHitFlow)
{
    auto hier = makeMixHierarchy();
    VAddr base = proc.mmap(64 * MiB);

    auto first = hier->access(base, false);
    EXPECT_TRUE(first.ok);
    EXPECT_TRUE(first.walked);
    EXPECT_TRUE(first.faulted);
    EXPECT_GT(first.cycles, 8u);

    auto second = hier->access(base + 64, false);
    EXPECT_TRUE(second.l1Hit);
    EXPECT_EQ(second.cycles, 1u);
    EXPECT_EQ(second.paddr, first.paddr + 64);
}

TEST_F(HierarchyFixture, TranslationsMatchPageTable)
{
    auto hier = makeMixHierarchy();
    VAddr base = proc.mmap(64 * MiB);
    Rng rng(5);
    for (int i = 0; i < 20000; i++) {
        VAddr va = base + rng.nextBounded(32 * MiB);
        auto result = hier->access(va, rng.chance(0.3));
        ASSERT_TRUE(result.ok);
        auto truth = proc.pageTable().translate(va);
        ASSERT_TRUE(truth.has_value());
        ASSERT_EQ(result.paddr, truth->translate(va));
    }
}

TEST_F(HierarchyFixture, L2HitRefillsL1WithBundle)
{
    auto hier = makeMixHierarchy();
    VAddr base = proc.mmap(64 * MiB);
    // Touch a superpage so both levels hold it, then flush L1 only by
    // invalidating... instead: flood L1 with 4KB-conflicting addresses
    // is complex; use invalidateAll on L1 via a fresh access pattern.
    hier->access(base, false);
    hier->l1().invalidateAll();
    auto result = hier->access(base + 8, false);
    EXPECT_TRUE(result.l2Hit);
    EXPECT_FALSE(result.walked);
    // And the L1 got refilled.
    auto again = hier->access(base + 16, false);
    EXPECT_TRUE(again.l1Hit);
}

TEST_F(HierarchyFixture, StoreToCleanEntryIssuesDirtyMicroOp)
{
    auto hier = makeMixHierarchy();
    VAddr base = proc.mmap(64 * MiB);
    hier->access(base, false); // read: walker leaves D clear
    EXPECT_EQ(root.value("mixh.dirty_micro_ops"), 0.0);
    hier->access(base + 4, true); // store to clean entry
    EXPECT_GT(root.value("mixh.dirty_micro_ops"), 0.0);
    EXPECT_TRUE(proc.pageTable().translate(base)->dirty);
}

TEST_F(HierarchyFixture, MigrationShootdownInvalidatesTlbs)
{
    auto hier = makeMixHierarchy();
    // Force 4KB pages so compaction has something to migrate.
    os::ProcessParams params;
    params.policy = os::PagePolicy::SmallOnly;
    params.name = "proc4k";
    os::Process proc4k(mm, params, &root);
    // (The fixture's hierarchy walks the THS process's table; this test
    // exercises listener wiring on the fixture process instead.)
    VAddr base = proc.mmap(64 * MiB);
    hier->access(base, false);
    EXPECT_TRUE(hier->access(base + 4, false).l1Hit);
    // Simulate a shootdown of the superpage backing base.
    auto leaf = proc.pageTable().translate(base);
    hier->invalidatePage(leaf->vbase, leaf->size);
    auto after = hier->access(base + 8, false);
    EXPECT_FALSE(after.l1Hit);
}

TEST_F(HierarchyFixture, WalkCostReflectsCacheHits)
{
    auto hier = makeMixHierarchy();
    VAddr base = proc.mmap(64 * MiB);
    auto first = hier->access(base, false);
    // Cold walk touches memory at least once.
    EXPECT_GT(first.cycles, 100u);
    hier->invalidateAll();
    // Warm walk: PTE lines now cached, much cheaper.
    auto warm = hier->access(base + 32, false);
    EXPECT_TRUE(warm.walked);
    EXPECT_LT(warm.cycles, first.cycles);
}

TEST(Skew, ManyWayConfigsHaveNoShiftOverflow)
{
    // Way indices >= 20 used to shift a 64-bit value by 4 + 3*way
    // >= 64 in the skewing hash — undefined behavior that UBSan traps.
    // Both shapes below reach way 20+; lookups and fills must work.
    const std::array<std::array<unsigned, NumPageSizes>, 2> shapes = {
        {{7, 7, 7}, {21, 1, 1}}};
    for (const auto &shape : shapes) {
        stats::StatGroup root("test");
        SkewTlbParams params;
        params.setsPerWay = 4;
        for (std::size_t s = 0; s < NumPageSizes; s++)
            params.waysPerSize[s] = shape[s];
        SkewTlb tlb("skew", &root, params);
        ASSERT_GE(tlb.numWays(), 21u);

        for (int i = 0; i < 64; i++) {
            tlb.fill(simpleFill(
                xlate4k(i * PageBytes4K, i * PageBytes4K)));
        }
        tlb.fill(simpleFill(xlate2m(0x00400000, 0x0)));
        unsigned survivors = 0;
        for (int i = 0; i < 64; i++)
            survivors += tlb.lookup(i * PageBytes4K, false).hit;
        // More than one way's worth of pages is resident (the exact
        // count depends on hash conflicts), and the most recent fill
        // never got evicted.
        EXPECT_GT(survivors, 4u);
        EXPECT_LE(survivors, 64u);
        EXPECT_TRUE(tlb.lookup(63 * PageBytes4K, false).hit);
        EXPECT_TRUE(tlb.lookup(0x00400000, false).hit);
        tlb.invalidateAll();
        EXPECT_FALSE(tlb.lookup(0, false).hit);
    }
}

TEST(Skew, TwentyFourPlusWaysSurviveFullExercise)
{
    // The per-way skewing hash derives shift amounts from the way
    // index; at 24+ ways the raw amounts pass 64 and only the
    // masked/guarded forms are defined. Running this under the CI
    // UBSan job is the regression gate for the shift-width fixes.
    const std::array<std::array<unsigned, NumPageSizes>, 2> shapes = {
        {{8, 8, 8}, {25, 2, 2}}};
    for (const auto &shape : shapes) {
        stats::StatGroup root("test");
        SkewTlbParams params;
        params.setsPerWay = 8;
        for (std::size_t s = 0; s < NumPageSizes; s++)
            params.waysPerSize[s] = shape[s];
        SkewTlb tlb("skew", &root, params);
        ASSERT_GE(tlb.numWays(), 24u);

        for (int i = 0; i < 256; i++) {
            tlb.fill(simpleFill(
                xlate4k(i * PageBytes4K, i * PageBytes4K)));
        }
        tlb.fill(simpleFill(xlate2m(0x40000000, 0x200000)));
        unsigned survivors = 0;
        for (int i = 0; i < 256; i++)
            survivors += tlb.lookup(i * PageBytes4K, false).hit;
        EXPECT_GT(survivors, 8u);
        EXPECT_TRUE(tlb.lookup(0x40000000, false).hit);
        tlb.markDirty(255 * PageBytes4K);
        tlb.invalidate(255 * PageBytes4K, PageSize::Size4K, Asid{0});
        EXPECT_FALSE(tlb.lookup(255 * PageBytes4K, false).hit);
        tlb.invalidateAll();
        EXPECT_FALSE(tlb.lookup(0, false).hit);
    }
}

TEST(Colt, FullWidthGroupCoalescesAcrossBitmapBoundary)
{
    // group == 32 puts the last slot at bit 31, the edge of the
    // coalescing bitmap; the bundling scans probe slots lo-1 and hi+1,
    // which touch bits 31 and 32 ("& 31"-masked). A fully contiguous
    // 32-page run must coalesce into one entry and every page must
    // hit — under UBSan this pins the bitmap shifts to defined forms.
    stats::StatGroup root("test");
    ColtTlb tlb("colt32", &root, 32, 4, PageSize::Size4K, 32);

    // One 32-page VA/PA-contiguous window, filled in reverse so the
    // bundling scan crosses the slot-31 boundary in both directions.
    for (int i = 31; i >= 0; i--) {
        tlb.fill(simpleFill(
            xlate4k(i * PageBytes4K, 0x100000 + i * PageBytes4K)));
    }
    for (int i = 0; i < 32; i++) {
        auto result = tlb.lookup(i * PageBytes4K, false);
        ASSERT_TRUE(result.hit) << "page " << i;
        EXPECT_EQ(result.xlate.pbase,
                  PAddr{0x100000} + i * PageBytes4K);
    }
    // Dirty/invalidate at both edges of the window exercise the
    // slot-0 and slot-31 mask paths. markDirty refuses to dirty a
    // coalesced entry (its single bit would over-claim 32 pages).
    tlb.markDirty(31 * PageBytes4K);
    EXPECT_FALSE(tlb.lookup(31 * PageBytes4K, false).entryDirty);
    tlb.invalidate(31 * PageBytes4K, PageSize::Size4K, Asid{0});
    EXPECT_FALSE(tlb.lookup(31 * PageBytes4K, false).hit);
    EXPECT_TRUE(tlb.lookup(0, false).hit);
    tlb.invalidate(0, PageSize::Size4K, Asid{0});
    EXPECT_FALSE(tlb.lookup(0, false).hit);
    EXPECT_TRUE(tlb.lookup(16 * PageBytes4K, false).hit);
}

TEST(SkewDeathTest, ZeroWaysDies)
{
    stats::StatGroup root("test");
    SkewTlbParams params;
    params.waysPerSize[0] = 0;
    params.waysPerSize[1] = 0;
    params.waysPerSize[2] = 0;
    EXPECT_EXIT(SkewTlb("skew", &root, params),
                ::testing::ExitedWithCode(1), "zero ways");
}

TEST(Skew, LookupHotPathIsAllocationFree)
{
    stats::StatGroup root("test");
    SkewTlbParams params;
    params.setsPerWay = 8;
    params.usePredictor = true;
    SkewTlb tlb("skew", &root, params);
    tlb.fill(simpleFill(xlate4k(0x1000, 0x10000)));
    tlb.fill(simpleFill(xlate2m(0x00400000, 0x0)));
    tlb.lookup(0x1000, false); // warm any lazy state

    const std::uint64_t before = g_heapAllocs.load();
    for (int i = 0; i < 256; i++) {
        tlb.lookup(0x1000, false);             // predicted hit
        tlb.lookup(0x00400000 + 64, false);    // mispredicted hit
        tlb.lookup(0x7f000000, false);         // full-probe miss
    }
    EXPECT_EQ(g_heapAllocs.load(), before)
        << "SkewTlb::lookup allocated on the hot path";
}

TEST(HashRehash, LookupHotPathIsAllocationFree)
{
    stats::StatGroup root("test");
    HashRehashParams params;
    params.usePredictor = true;
    HashRehashTlb tlb("hr", &root, params);
    tlb.fill(simpleFill(xlate4k(0x1000, 0x10000)));
    tlb.fill(simpleFill(xlate2m(0x00400000, 0x0)));
    tlb.lookup(0x1000, false);

    const std::uint64_t before = g_heapAllocs.load();
    for (int i = 0; i < 256; i++) {
        tlb.lookup(0x1000, false);
        tlb.lookup(0x00400000 + 64, false);
        tlb.lookup(0x7f000000, false);
    }
    EXPECT_EQ(g_heapAllocs.load(), before)
        << "HashRehashTlb::lookup allocated on the hot path";
}

TEST(Skew, PredictorTrainsWithDemandedAddressOnFill)
{
    stats::StatGroup root("test");
    SkewTlbParams params;
    params.setsPerWay = 8;
    params.usePredictor = true;
    SkewTlb tlb("skew", &root, params);

    // A miss deep inside a 1GB page refills the TLB. The predictor
    // must be trained with the *demanded* address, not the superpage
    // base: they hash to different 2MB-region predictor slots, and
    // the next access repeats the demanded address, not the base.
    pt::Translation big;
    big.vbase = 4 * GiB;
    big.pbase = 1 * GiB;
    big.size = PageSize::Size1G;
    big.accessed = true;
    FillInfo fill;
    fill.leaf = big;
    fill.vaddr = 4 * GiB + 768 * MiB + 0x3000;
    tlb.fill(fill);

    auto result = tlb.lookup(fill.vaddr, false);
    EXPECT_TRUE(result.hit);
    // Correct training: the 1GB prediction wins on the first probe.
    EXPECT_EQ(result.probes, 1u);
}

namespace
{

/** Every ASID-taggable design, freshly constructed. */
std::vector<std::pair<std::string, std::unique_ptr<BaseTlb>>>
makeAsidTlbs(stats::StatGroup &root)
{
    std::vector<std::pair<std::string, std::unique_ptr<BaseTlb>>> out;
    out.emplace_back("set_assoc",
                     std::make_unique<SetAssocTlb>(
                         "sa", &root, 64, 4, PageSize::Size4K));
    out.emplace_back(
        "fully_assoc",
        std::make_unique<FullyAssocTlb>(
            "fa", &root, 32,
            std::initializer_list<PageSize>{PageSize::Size4K,
                                            PageSize::Size2M}));
    out.emplace_back("hash_rehash",
                     std::make_unique<HashRehashTlb>(
                         "hr", &root, HashRehashParams{}));
    out.emplace_back("skew", std::make_unique<SkewTlb>(
                                 "skew", &root, SkewTlbParams{}));
    out.emplace_back("colt",
                     std::make_unique<ColtTlb>("colt", &root, 64, 4,
                                               PageSize::Size4K));
    out.emplace_back("mix", std::make_unique<MixTlb>("mix", &root,
                                                     MixTlbParams{}));
    auto split = std::make_unique<SplitTlb>("split", &root);
    split->addComponent(std::make_unique<SetAssocTlb>(
        "split_4k", &root, 64, 4, PageSize::Size4K));
    split->addComponent(std::make_unique<SetAssocTlb>(
        "split_2m", &root, 32, 4, PageSize::Size2M));
    out.emplace_back("split", std::move(split));
    return out;
}

} // anonymous namespace

TEST(Asid, EntriesAreAsidPrivate)
{
    stats::StatGroup root("test");
    for (auto &[name, tlb] : makeAsidTlbs(root)) {
        SCOPED_TRACE(name);

        tlb->setAsid(1);
        tlb->fill(simpleFill(xlate4k(0x5000, 0xA000)));
        EXPECT_TRUE(tlb->lookup(0x5000, false).hit);

        // The same VA under another ASID misses, then fills its own
        // entry with a different translation.
        tlb->setAsid(2);
        EXPECT_FALSE(tlb->lookup(0x5000, false).hit);
        tlb->fill(simpleFill(xlate4k(0x5000, 0xB000)));
        auto hit = tlb->lookup(0x5000, false);
        ASSERT_TRUE(hit.hit);
        EXPECT_EQ(hit.xlate.translate(0x5000), 0xB000u);

        // Both address spaces stay resident simultaneously.
        tlb->setAsid(1);
        auto original = tlb->lookup(0x5000, false);
        ASSERT_TRUE(original.hit);
        EXPECT_EQ(original.xlate.translate(0x5000), 0xA000u);
    }
}

TEST(Asid, InvalidateAsidLeavesOthersResident)
{
    stats::StatGroup root("test");
    for (auto &[name, tlb] : makeAsidTlbs(root)) {
        SCOPED_TRACE(name);
        tlb->setAsid(1);
        tlb->fill(simpleFill(xlate4k(0x5000, 0xA000)));
        tlb->setAsid(2);
        tlb->fill(simpleFill(xlate4k(0x5000, 0xB000)));

        tlb->invalidateAsid(1);
        EXPECT_TRUE(tlb->lookup(0x5000, false).hit); // asid 2 survives
        tlb->setAsid(1);
        EXPECT_FALSE(tlb->lookup(0x5000, false).hit); // asid 1 gone
    }
}

TEST(Asid, TargetedInvalidateMatchesAsid)
{
    stats::StatGroup root("test");
    for (auto &[name, tlb] : makeAsidTlbs(root)) {
        SCOPED_TRACE(name);
        tlb->setAsid(1);
        tlb->fill(simpleFill(xlate4k(0x5000, 0xA000)));
        tlb->setAsid(2);
        tlb->fill(simpleFill(xlate4k(0x5000, 0xB000)));

        // A shootdown tagged with ASID 1 must not touch ASID 2.
        tlb->invalidate(0x5000, PageSize::Size4K, Asid{1});
        EXPECT_TRUE(tlb->lookup(0x5000, false).hit);
        tlb->invalidate(0x5000, PageSize::Size4K, Asid{2});
        EXPECT_FALSE(tlb->lookup(0x5000, false).hit);

        tlb->setAsid(1);
        EXPECT_FALSE(tlb->lookup(0x5000, false).hit);
    }
}

TEST(Asid, IdealTlbTranslatesPerRegisteredTable)
{
    stats::StatGroup root("test");
    mem::PhysMem mem(256 * MiB);
    os::MemoryManager mm(mem, &root);
    os::ProcessParams pa, pb;
    pa.name = "proca";
    pb.name = "procb";
    os::Process proc_a(mm, pa, &root);
    os::Process proc_b(mm, pb, &root);
    VAddr base_a = proc_a.mmap(4 * MiB);
    VAddr base_b = proc_b.mmap(4 * MiB);
    proc_a.touch(base_a);
    proc_b.touch(base_b);

    IdealTlb tlb("ideal", &root, proc_a.pageTable());
    tlb.registerTable(1, proc_a.pageTable());
    tlb.registerTable(2, proc_b.pageTable());

    tlb.setAsid(1);
    EXPECT_TRUE(tlb.lookup(base_a, false).hit);
    tlb.setAsid(2);
    EXPECT_TRUE(tlb.lookup(base_b, false).hit);
    // An ASID with no registered table never hits.
    tlb.setAsid(7);
    EXPECT_FALSE(tlb.lookup(base_a, false).hit);
}

// --- Superpage-sized shootdowns (demotion / reclaim lifecycle) ------
//
// Demotion replaces a 2MB (or 1GB) leaf with smaller leaves and fires
// ONE superpage-sized invalidate; reclaim fires 4KB ones. Every design
// must honour the range semantics precisely: drop everything of the
// right ASID inside the window, keep everything else.

TEST(RangeInvalidate, SuperpageWindowIsAsidPrecise)
{
    stats::StatGroup root("test");
    constexpr VAddr region = 0x00400000; // 2MB-aligned
    for (auto &[name, tlb] : makeAsidTlbs(root)) {
        SCOPED_TRACE(name);

        tlb->setAsid(1);
        tlb->fill(simpleFill(xlate4k(region + 0x1000, 0xA000)));
        tlb->fill(simpleFill(xlate4k(region + 0x5000, 0xC000)));
        // Just past the window: must survive the shootdown.
        tlb->fill(simpleFill(
            xlate4k(region + PageBytes2M + 0x1000, 0xD000)));
        // Same VA, other address space: must also survive.
        tlb->setAsid(2);
        tlb->fill(simpleFill(xlate4k(region + 0x1000, 0xB000)));

        // The demotion shootdown: one 2MB-sized invalidate for ASID 1.
        tlb->invalidate(region, PageSize::Size2M, Asid{1});

        EXPECT_TRUE(tlb->lookup(region + 0x1000, false).hit)
            << "ASID 2 entry inside the window was collateral damage";
        tlb->setAsid(1);
        EXPECT_FALSE(tlb->lookup(region + 0x1000, false).hit);
        EXPECT_FALSE(tlb->lookup(region + 0x5000, false).hit);
        EXPECT_TRUE(
            tlb->lookup(region + PageBytes2M + 0x1000, false).hit)
            << "entry outside the 2MB window was dropped";
    }
}

TEST(RangeInvalidate, GigapageWindowDropsContainedEntries)
{
    stats::StatGroup root("test");
    constexpr VAddr gbase = 4 * GiB; // 1GB-aligned
    for (auto &[name, tlb] : makeAsidTlbs(root)) {
        SCOPED_TRACE(name);

        tlb->setAsid(1);
        tlb->fill(simpleFill(xlate4k(gbase + 0x1000, 0xA000)));
        // A different 2MB region of the same gigapage window.
        tlb->fill(simpleFill(
            xlate4k(gbase + 3 * PageBytes2M + 0x2000, 0xC000)));
        tlb->fill(simpleFill(
            xlate4k(gbase + PageBytes1G + 0x1000, 0xD000)));

        // A 1GB demotion's shootdown.
        tlb->invalidate(gbase, PageSize::Size1G, Asid{1});

        EXPECT_FALSE(tlb->lookup(gbase + 0x1000, false).hit);
        EXPECT_FALSE(
            tlb->lookup(gbase + 3 * PageBytes2M + 0x2000, false).hit);
        EXPECT_TRUE(
            tlb->lookup(gbase + PageBytes1G + 0x1000, false).hit)
            << "entry outside the 1GB window was dropped";
    }
}

TEST(RangeInvalidate, GigapageWindowDrops2mLeaves)
{
    // Designs that cache 2MB leaves must drop them under a 1GB-sized
    // shootdown (1GB -> 512 x 2MB demotion re-walks every child).
    stats::StatGroup root("test");
    constexpr VAddr gbase = 4 * GiB;
    FullyAssocTlb fa("fa", &root, 32,
                     std::initializer_list<PageSize>{PageSize::Size4K,
                                                     PageSize::Size2M});
    MixTlb mix("mix", &root, MixTlbParams{});
    std::vector<BaseTlb *> tlbs{&fa, &mix};
    for (BaseTlb *tlb : tlbs) {
        tlb->setAsid(1);
        tlb->fill(simpleFill(xlate2m(gbase + 5 * PageBytes2M, 0x0)));
        tlb->fill(simpleFill(
            xlate2m(gbase + PageBytes1G, PageBytes2M)));
        tlb->invalidate(gbase, PageSize::Size1G, Asid{1});
        EXPECT_FALSE(tlb->lookup(gbase + 5 * PageBytes2M, false).hit);
        EXPECT_TRUE(tlb->lookup(gbase + PageBytes1G + 64, false).hit);
    }
}

TEST(RangeInvalidate, SmallShootdownKillsStaleSuperpageEntry)
{
    // The reverse direction: after a demotion the OS may unmap one 4KB
    // page of the ex-superpage and fire a 4KB shootdown. Any cached
    // 2MB entry overlapping it is stale and must die too.
    stats::StatGroup root("test");
    constexpr VAddr region = 0x00400000;
    FullyAssocTlb fa("fa", &root, 32,
                     std::initializer_list<PageSize>{PageSize::Size4K,
                                                     PageSize::Size2M});
    MixTlb mix("mix", &root, MixTlbParams{});
    std::vector<BaseTlb *> tlbs{&fa, &mix};
    for (BaseTlb *tlb : tlbs) {
        tlb->setAsid(1);
        tlb->fill(simpleFill(xlate2m(region, 0x0)));
        ASSERT_TRUE(tlb->lookup(region + 0x7000, false).hit);
        tlb->invalidate(region + 0x7000, PageSize::Size4K, Asid{1});
        EXPECT_FALSE(tlb->lookup(region + 0x7000, false).hit);
        EXPECT_FALSE(tlb->lookup(region, false).hit);
    }
}

TEST(Colt, SmallInvalidateTrimsCoalescedRunMidway)
{
    // Reclaim drops single 4KB pages out of demoted regions; a COLT
    // bundle holding the dropped page must be trimmed, with its
    // neighbours staying resident.
    mem::PhysMem mem{256 * MiB};
    pt::PageTable table{mem};
    stats::StatGroup root("test");
    pt::Walker walker{table, &root};
    for (int i = 0; i < 4; i++) {
        table.map(0x10000 + i * PageBytes4K, 0x800000 + i * PageBytes4K,
                  PageSize::Size4K);
        walker.walk(0x10000 + i * PageBytes4K, false);
    }
    ColtTlb tlb("colt", &root, 32, 4, PageSize::Size4K, 4);
    auto walk = walker.walk(0x10000, false);
    FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.vaddr = 0x10000;
    fill.walk = &walk;
    tlb.fill(fill);
    ASSERT_EQ(tlb.lookup(0x10000, false).bundle->count, 4u);

    tlb.invalidate(0x11000, PageSize::Size4K);

    EXPECT_TRUE(tlb.lookup(0x10000, false).hit);
    EXPECT_FALSE(tlb.lookup(0x11000, false).hit);
    EXPECT_TRUE(tlb.lookup(0x12000, false).hit);
    EXPECT_TRUE(tlb.lookup(0x13000, false).hit);
}

TEST(Colt, RangeInvalidatePartiallyOverlappingRun)
{
    // Colt++ over 2MB pages: a coalesced run of two superpages where a
    // demotion shoots down only the second. The run must be trimmed,
    // not dropped whole (partial window overlap).
    mem::PhysMem mem{1 * GiB};
    pt::PageTable table{mem};
    stats::StatGroup root("test");
    pt::Walker walker{table, &root};
    for (int i = 0; i < 2; i++) {
        table.map(0x00400000 + i * PageBytes2M, i * PageBytes2M,
                  PageSize::Size2M);
        walker.walk(0x00400000 + i * PageBytes2M, false);
    }
    ColtTlb tlb("colt2m", &root, 8, 4, PageSize::Size2M, 2);
    auto walk = walker.walk(0x00400000, false);
    FillInfo fill;
    fill.leaf = *walk.leaf;
    fill.vaddr = 0x00400000;
    fill.walk = &walk;
    tlb.fill(fill);
    ASSERT_TRUE(tlb.lookup(0x00600000, false).hit);

    tlb.invalidate(0x00600000, PageSize::Size2M);

    EXPECT_TRUE(tlb.lookup(0x00400000, false).hit)
        << "trimming the run dropped the surviving superpage";
    EXPECT_FALSE(tlb.lookup(0x00600000, false).hit);
}

TEST(Mix, SuperpageInvalidateDropsAllMirrorCopies)
{
    // MIX fills superpages into every set (mirrors), and a dirty store
    // rides the burst-write path to update them all. A demotion's
    // single 2MB shootdown must kill every mirror — a stale copy in
    // any set would translate into freed (or re-used) frames.
    stats::StatGroup root("test");
    constexpr VAddr region = 0x00400000;
    MixTlb tlb("mix", &root, MixTlbParams{});
    tlb.setAsid(1);

    FillInfo fill = simpleFill(xlate2m(region, 0x0));
    fill.vaddr = region + 0x1000;
    tlb.fill(fill);
    // A second demanded offset in another 4KB chunk: with small-page
    // index bits this exercises a different set's mirror.
    FillInfo second = simpleFill(xlate2m(region, 0x0));
    second.vaddr = region + 0x5000;
    tlb.fill(second);
    // Dirty the bundle through one mirror.
    ASSERT_TRUE(tlb.lookup(region + 0x1000, true).hit);
    ASSERT_TRUE(tlb.lookup(region + 0x5000, false).hit);

    tlb.invalidate(region, PageSize::Size2M, Asid{1});

    for (VAddr off = 0; off < PageBytes2M; off += 64 * PageBytes4K)
        EXPECT_FALSE(tlb.lookup(region + off, false).hit) << off;

    contracts::AuditReport report;
    tlb.auditSets(report);
    EXPECT_TRUE(report.violations().empty());
}
