/**
 * @file
 * Unit tests for src/pt: PTE encoding, the radix page table, and the
 * hardware walker (including the cache-line PTE scan MIX TLBs rely on).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/phys_mem.hh"
#include "pt/page_table.hh"
#include "pt/pte.hh"
#include "pt/walker.hh"

using namespace mixtlb;
using namespace mixtlb::pt;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

struct PtFixture : ::testing::Test
{
    mem::PhysMem mem{512 * MiB};
    PageTable table{mem};
    stats::StatGroup root{"test"};
    Walker walker{table, &root};
};

} // anonymous namespace

TEST(Pte, EncodeDecodeRoundTrip)
{
    Perms perms{true, false, true};
    auto raw = pte::make(0x1234000, perms, true, true, false);
    EXPECT_TRUE(pte::present(raw));
    EXPECT_TRUE(pte::pageSizeBit(raw));
    EXPECT_TRUE(pte::accessed(raw));
    EXPECT_FALSE(pte::dirty(raw));
    EXPECT_EQ(pte::frame(raw), 0x1234000u);
    EXPECT_EQ(pte::perms(raw), perms);
}

TEST(Pte, TranslationHelpers)
{
    Translation t;
    t.vbase = 0x00400000;
    t.pbase = 0x00000000;
    t.size = PageSize::Size2M;
    EXPECT_TRUE(t.covers(0x00400000));
    EXPECT_TRUE(t.covers(0x005fffff));
    EXPECT_FALSE(t.covers(0x00600000));
    EXPECT_EQ(t.translate(0x00412345), 0x00012345u);
    EXPECT_EQ(t.vpn(), 2u);
}

TEST_F(PtFixture, Map4KAndTranslate)
{
    table.map(0x7000, 0x42000, PageSize::Size4K);
    auto xlate = table.translate(0x7abc);
    ASSERT_TRUE(xlate.has_value());
    EXPECT_EQ(xlate->pbase, 0x42000u);
    EXPECT_EQ(xlate->size, PageSize::Size4K);
    EXPECT_EQ(xlate->translate(0x7abc), 0x42abcu);
    EXPECT_FALSE(table.translate(0x8000).has_value());
}

TEST_F(PtFixture, Map2MAndTranslate)
{
    table.map(0x00400000, 0x00200000, PageSize::Size2M);
    auto xlate = table.translate(0x00412345);
    ASSERT_TRUE(xlate.has_value());
    EXPECT_EQ(xlate->size, PageSize::Size2M);
    EXPECT_EQ(xlate->vbase, 0x00400000u);
    EXPECT_EQ(xlate->translate(0x00412345), 0x00212345u);
}

TEST_F(PtFixture, Map1GAndTranslate)
{
    table.map(3 * GiB, 1 * GiB, PageSize::Size1G);
    auto xlate = table.translate(3 * GiB + 0x12345678);
    ASSERT_TRUE(xlate.has_value());
    EXPECT_EQ(xlate->size, PageSize::Size1G);
    EXPECT_EQ(xlate->translate(3 * GiB + 0x12345678),
              1 * GiB + 0x12345678u);
}

TEST_F(PtFixture, MixedSizesCoexist)
{
    table.map(0x0000, 0x10000, PageSize::Size4K);
    table.map(0x00400000, 0x00200000, PageSize::Size2M);
    table.map(1 * GiB, 0, PageSize::Size1G);
    EXPECT_EQ(table.numMappings(), 3u);
    EXPECT_EQ(table.translate(0x0123)->size, PageSize::Size4K);
    EXPECT_EQ(table.translate(0x00400123)->size, PageSize::Size2M);
    EXPECT_EQ(table.translate(1 * GiB + 5)->size, PageSize::Size1G);
}

TEST_F(PtFixture, UnmapRemovesMapping)
{
    table.map(0x7000, 0x42000, PageSize::Size4K);
    EXPECT_TRUE(table.unmap(0x7000));
    EXPECT_FALSE(table.translate(0x7000).has_value());
    EXPECT_FALSE(table.unmap(0x7000));
    EXPECT_EQ(table.numMappings(), 0u);
}

TEST_F(PtFixture, FreshMappingHasClearAD)
{
    table.map(0x7000, 0x42000, PageSize::Size4K);
    auto xlate = table.translate(0x7000);
    EXPECT_FALSE(xlate->accessed);
    EXPECT_FALSE(xlate->dirty);
    table.setAccessed(0x7000);
    EXPECT_TRUE(table.translate(0x7000)->accessed);
    table.setDirty(0x7000);
    EXPECT_TRUE(table.translate(0x7000)->dirty);
}

TEST_F(PtFixture, ForEachLeafVisitsAllInOrder)
{
    table.map(0x00400000, 0x00200000, PageSize::Size2M);
    table.map(0x7000, 0x42000, PageSize::Size4K);
    table.map(1 * GiB, 0, PageSize::Size1G);
    std::vector<VAddr> seen;
    table.forEachLeaf([&](const Translation &t) {
        seen.push_back(t.vbase);
    });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 0x7000u);
    EXPECT_EQ(seen[1], 0x00400000u);
    EXPECT_EQ(seen[2], 1 * GiB);
}

using PtDeathTest = PtFixture;

TEST_F(PtDeathTest, MapTwicePanics)
{
    table.map(0x7000, 0x42000, PageSize::Size4K);
    EXPECT_DEATH(table.map(0x7000, 0x43000, PageSize::Size4K),
                 "already mapped");
}

TEST_F(PtDeathTest, MisalignedMapPanics)
{
    EXPECT_DEATH(table.map(0x1000, 0x0, PageSize::Size2M), "misaligned");
    EXPECT_DEATH(table.map(0x00400000, 0x1000, PageSize::Size2M),
                 "misaligned");
}

TEST_F(PtFixture, WalkDepthMatchesPageSize)
{
    table.map(0x7000, 0x42000, PageSize::Size4K);
    table.map(0x00400000, 0x00200000, PageSize::Size2M);
    table.map(1 * GiB, 0, PageSize::Size1G);

    EXPECT_EQ(walker.walk(0x7123, false).accesses.size(), 4u);
    EXPECT_EQ(walker.walk(0x00400123, false).accesses.size(), 3u);
    EXPECT_EQ(walker.walk(1 * GiB + 9, false).accesses.size(), 2u);
}

TEST_F(PtFixture, WalkReturnsLeaf)
{
    table.map(0x00400000, 0x00200000, PageSize::Size2M);
    auto result = walker.walk(0x00412345, false);
    ASSERT_FALSE(result.pageFault());
    EXPECT_EQ(result.leaf->vbase, 0x00400000u);
    EXPECT_EQ(result.leaf->pbase, 0x00200000u);
    EXPECT_EQ(result.leaf->size, PageSize::Size2M);
}

TEST_F(PtFixture, WalkSetsAccessedAndDirty)
{
    table.map(0x7000, 0x42000, PageSize::Size4K);
    walker.walk(0x7000, false);
    auto xlate = table.translate(0x7000);
    EXPECT_TRUE(xlate->accessed);
    EXPECT_FALSE(xlate->dirty);
    walker.walk(0x7000, true);
    EXPECT_TRUE(table.translate(0x7000)->dirty);
    EXPECT_EQ(root.value("walker.dirty_updates"), 1.0);
}

TEST_F(PtFixture, PageFaultReportsPartialWalk)
{
    auto result = walker.walk(0xdead000, false);
    EXPECT_TRUE(result.pageFault());
    EXPECT_EQ(result.accesses.size(), 1u); // root line only
    EXPECT_EQ(root.value("walker.page_faults"), 1.0);
}

TEST_F(PtFixture, LineScanSeesContiguousSuperpages)
{
    // Map superpages B..E contiguously, as Figure 2 of the paper.
    for (int i = 0; i < 4; i++) {
        table.map(0x00400000 + i * 0x200000, 0x00000000 + i * 0x200000,
                  PageSize::Size2M);
    }
    auto result = walker.walk(0x00400000, false);
    ASSERT_FALSE(result.pageFault());
    EXPECT_EQ(result.lineGranularity, PageSize::Size2M);

    // The 2MB entries at indices 2..5 of the PD share the line group
    // [0..7]; slots 2..5 must be present and contiguous.
    unsigned present = 0;
    for (const auto &slot : result.line)
        present += slot.present ? 1 : 0;
    EXPECT_EQ(present, 4u);
    ASSERT_TRUE(result.line[2].present);
    ASSERT_TRUE(result.line[5].present);
    EXPECT_EQ(result.line[2].xlate.vbase, 0x00400000u);
    EXPECT_EQ(result.line[3].xlate.pbase,
              result.line[2].xlate.pbase + 0x200000u);
    EXPECT_EQ(result.leafSlot, 2u);
}

TEST_F(PtFixture, LineScanDoesNotConfuseTablePointersWithLeaves)
{
    // A 4KB mapping makes the PD entry a *table pointer*; a walk to a
    // neighbouring 2MB superpage must not treat it as a 2MB leaf.
    table.map(0x00200000, 0x7000000, PageSize::Size4K); // PD index 1
    table.map(0x00400000, 0x0000000, PageSize::Size2M); // PD index 2
    auto result = walker.walk(0x00400000, false);
    ASSERT_FALSE(result.pageFault());
    EXPECT_EQ(result.lineGranularity, PageSize::Size2M);
    EXPECT_FALSE(result.line[1].present);
    EXPECT_TRUE(result.line[2].present);
}

TEST_F(PtFixture, LineScanReportsNeighbourADBits)
{
    table.map(0x00400000, 0x00000000, PageSize::Size2M);
    table.map(0x00600000, 0x00200000, PageSize::Size2M);
    auto result = walker.walk(0x00400000, false);
    ASSERT_TRUE(result.line[2].present);
    ASSERT_TRUE(result.line[3].present);
    // We walked slot 2, so it is accessed; its neighbour is not (yet).
    EXPECT_TRUE(result.line[2].xlate.accessed);
    EXPECT_FALSE(result.line[3].xlate.accessed);
}

TEST_F(PtFixture, ReadLeafLineChargesOneAccess)
{
    table.map(0x00400000, 0x00000000, PageSize::Size2M);
    auto result = walker.readLeafLine(0x00400000, false);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->accesses.size(), 1u);
    ASSERT_FALSE(result->pageFault());
    EXPECT_EQ(result->leaf->vbase, 0x00400000u);
    EXPECT_FALSE(walker.readLeafLine(0xdead000, false).has_value());
}

TEST_F(PtFixture, LineGroupAlignment4K)
{
    // 4KB PTEs: 8 per line, groups aligned to 32KB of VA space.
    for (VAddr va = 0x10000; va < 0x20000; va += 0x1000)
        table.map(va, 0x100000 + va, PageSize::Size4K);
    auto result = walker.walk(0x13000, false);
    ASSERT_FALSE(result.pageFault());
    EXPECT_EQ(result.leafSlot, 3u);
    EXPECT_EQ(result.line[0].xlate.vbase, 0x10000u);
    EXPECT_EQ(result.line[7].xlate.vbase, 0x17000u);
}

TEST_F(PtFixture, PageTableFramesComeFromPhysMem)
{
    auto free_before = mem.buddy().freeFrames();
    table.map(0x7000, 0x42000, PageSize::Size4K);
    // PML4 existed; mapping a 4KB page allocates PDPT + PD + PT frames.
    EXPECT_EQ(mem.buddy().freeFrames(), free_before - 3);
    EXPECT_EQ(mem.frameUse(table.root() >> PageShift4K),
              mem::FrameUse::PageTable);
}

TEST_F(PtFixture, SplitLeafDemotes2mTo4kInPlace)
{
    // The demotion primitive: a 2MB leaf becomes 512 4KB leaves over
    // the same frames, so no data moves and translations are
    // preserved bit-for-bit.
    constexpr VAddr region = 0x00400000;
    table.map(region, 0x00800000, PageSize::Size2M);
    ASSERT_TRUE(table.splitLeaf(region));
    for (std::uint64_t i = 0; i < 512; i += 61) {
        auto x = table.translate(region + i * 0x1000 + 0x123);
        ASSERT_TRUE(x.has_value()) << i;
        EXPECT_EQ(x->size, PageSize::Size4K);
        EXPECT_EQ(x->translate(region + i * 0x1000 + 0x123),
                  0x00800000u + i * 0x1000 + 0x123);
    }
    // Splitting a 4KB leaf (or an unmapped VA) is refused.
    EXPECT_FALSE(table.splitLeaf(region));
    EXPECT_FALSE(table.splitLeaf(region + PageBytes2M));
}

TEST(Pwc, RepromotionShootdownDropsRetiredLeafTable)
{
    // Demotion creates a 4KB leaf table; re-promotion (or releasing a
    // fully reclaimed region) retires it again via clearLevelEntry.
    // The PWC cached that table as a walk starting point — without the
    // superpage-sized shootdown, a later walk would start inside a
    // freed (soon recycled) table frame.
    mem::PhysMem mem{512 * MiB};
    PageTable table{mem};
    stats::StatGroup root{"test"};
    PwcParams pwcp;
    pwcp.entries = 16;
    Walker walker{table, &root, 1, pwcp};

    constexpr VAddr region = 0x00400000;
    table.map(region, 0x00800000, PageSize::Size2M);
    ASSERT_TRUE(table.splitLeaf(region));
    for (int i = 0; i < 4; i++)
        ASSERT_FALSE(walker.walk(region + i * 0x1000, false).pageFault());

    // The PWC now shortcuts straight to the demoted region's 4KB leaf
    // table: this is exactly the stale-hit hazard.
    auto stale = walker.pwc().probe(region + 0x1000);
    ASSERT_TRUE(stale.has_value());
    ASSERT_EQ(stale->first, leafLevel(PageSize::Size4K));

    // Re-promote: retire the leaf table, map the 2MB leaf again.
    table.clearLevelEntry(region, leafLevel(PageSize::Size2M));
    table.map(region, 0x00800000, PageSize::Size2M);
    walker.pwc().invalidate(region, PageSize::Size2M);
    EXPECT_GE(table.reclaimRetiredFrames(), 1u);

    // No stale shortcut into the freed table frame survives ...
    auto after = walker.pwc().probe(region + 0x1000);
    if (after.has_value())
        EXPECT_NE(after->second, stale->second);
    // ... and a fresh walk sees the re-promoted superpage.
    auto walk = walker.walk(region + 0x1000, false);
    ASSERT_FALSE(walk.pageFault());
    ASSERT_TRUE(walk.leaf.has_value());
    EXPECT_EQ(walk.leaf->size, PageSize::Size2M);
    EXPECT_EQ(walk.leaf->translate(region + 0x1234), 0x00801234u);
}

TEST(Pwc, StaleProbeWithoutShootdownIsTheHazard)
{
    // Negative control for the test above: skipping the shootdown
    // leaves the PWC pointing at the retired table. This documents
    // why Process::releaseEmptyRegion and tryRepromote2m must fire a
    // superpage-sized invalidate before reclaimRetiredFrames() frees
    // the frame.
    mem::PhysMem mem{512 * MiB};
    PageTable table{mem};
    stats::StatGroup root{"test"};
    PwcParams pwcp;
    pwcp.entries = 16;
    Walker walker{table, &root, 1, pwcp};

    constexpr VAddr region = 0x00400000;
    table.map(region, 0x00800000, PageSize::Size2M);
    ASSERT_TRUE(table.splitLeaf(region));
    ASSERT_FALSE(walker.walk(region, false).pageFault());
    auto stale = walker.pwc().probe(region + 0x1000);
    ASSERT_TRUE(stale.has_value());

    table.clearLevelEntry(region, leafLevel(PageSize::Size2M));
    // No invalidate: the stale shortcut is still there.
    auto still = walker.pwc().probe(region + 0x1000);
    ASSERT_TRUE(still.has_value());
    EXPECT_EQ(still->second, stale->second);
}
