/**
 * @file
 * Unit tests for the functional cache hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

using namespace mixtlb;
using namespace mixtlb::cache;

namespace
{

CacheParams
tinyCache(unsigned assoc = 2, std::uint64_t lines = 8)
{
    CacheParams params;
    params.name = "tiny";
    params.lineBytes = 64;
    params.assoc = assoc;
    params.sizeBytes = lines * 64;
    params.hitLatency = 1;
    return params;
}

} // anonymous namespace

TEST(Cache, MissThenHit)
{
    stats::StatGroup root("test");
    Cache cache(tinyCache(), &root);
    EXPECT_FALSE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x103f, false)); // same line
    EXPECT_FALSE(cache.access(0x1040, false)); // next line
    EXPECT_EQ(root.scalar("tiny.hits").value(), 2.0);
    EXPECT_EQ(root.scalar("tiny.misses").value(), 2.0);
}

TEST(Cache, LruEvictionWithinSet)
{
    stats::StatGroup root("test");
    Cache cache(tinyCache(2, 8), &root); // 4 sets, 2 ways
    // Three lines mapping to set 0: tags 0, 4, 8 (set = tag % 4).
    EXPECT_FALSE(cache.access(0 * 64, false));
    EXPECT_FALSE(cache.access(4 * 64, false));
    EXPECT_FALSE(cache.access(8 * 64, false)); // evicts tag 0
    EXPECT_FALSE(cache.access(0 * 64, false)); // miss again
    EXPECT_TRUE(cache.access(8 * 64, false));
}

TEST(Cache, LruPromotionOnHit)
{
    stats::StatGroup root("test");
    Cache cache(tinyCache(2, 8), &root);
    cache.access(0 * 64, false);
    cache.access(4 * 64, false);
    cache.access(0 * 64, false);  // promote tag 0 to MRU
    cache.access(8 * 64, false);  // should evict tag 4, not 0
    EXPECT_TRUE(cache.contains(0 * 64));
    EXPECT_FALSE(cache.contains(4 * 64));
}

TEST(Cache, ContainsDoesNotPerturb)
{
    stats::StatGroup root("test");
    Cache cache(tinyCache(), &root);
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_EQ(root.scalar("tiny.hits").value(), 0.0);
    EXPECT_EQ(root.scalar("tiny.misses").value(), 0.0);
}

TEST(Cache, FlushEmptiesEverything)
{
    stats::StatGroup root("test");
    Cache cache(tinyCache(), &root);
    cache.access(0x1000, false);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(Hierarchy, InclusiveFillAndLevels)
{
    stats::StatGroup root("test");
    HierarchyParams params;
    params.l1 = {"l1d", 4 * 1024, 8, 64, 4};
    params.l2 = {"l2", 32 * 1024, 8, 64, 12};
    params.llc = {"llc", 256 * 1024, 16, 64, 40};
    params.memLatency = 200;
    CacheHierarchy hier(params, &root);

    EXPECT_EQ(hier.accessLevel(0x1000, false), HitLevel::Memory);
    EXPECT_EQ(hier.accessLevel(0x1000, false), HitLevel::L1);
    EXPECT_EQ(hier.access(0x1000, false), 4u);

    // Push enough distinct lines through to evict 0x1000 from L1 but
    // not from LLC; it should then hit at L2 or LLC.
    for (PAddr addr = 0x100000; addr < 0x100000 + 8 * 1024; addr += 64)
        hier.accessLevel(addr, false);
    auto level = hier.accessLevel(0x1000, false);
    EXPECT_TRUE(level == HitLevel::L2 || level == HitLevel::LLC);
}

TEST(Hierarchy, LatenciesAreMonotonic)
{
    stats::StatGroup root("test");
    CacheHierarchy hier(HierarchyParams{}, &root);
    EXPECT_LT(hier.levelLatency(HitLevel::L1),
              hier.levelLatency(HitLevel::L2));
    EXPECT_LT(hier.levelLatency(HitLevel::L2),
              hier.levelLatency(HitLevel::LLC));
    EXPECT_LT(hier.levelLatency(HitLevel::LLC),
              hier.levelLatency(HitLevel::Memory));
}

TEST(CacheDeathTest, BadGeometryFails)
{
    stats::StatGroup root("test");
    CacheParams params = tinyCache();
    params.assoc = 3; // 8 lines % 3 != 0
    EXPECT_DEATH({ Cache cache(params, &root); }, "geometry");
}
