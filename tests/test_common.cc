/**
 * @file
 * Unit tests for src/common: types, intmath, RNG, and statistics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/inline_vec.hh"
#include "common/intmath.hh"
#include "common/json.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "common/types.hh"

using namespace mixtlb;

TEST(Types, PageGeometry)
{
    EXPECT_EQ(pageShift(PageSize::Size4K), 12u);
    EXPECT_EQ(pageShift(PageSize::Size2M), 21u);
    EXPECT_EQ(pageShift(PageSize::Size1G), 30u);

    EXPECT_EQ(pageBytes(PageSize::Size4K), 4096u);
    EXPECT_EQ(pageBytes(PageSize::Size2M), 2u * 1024 * 1024);
    EXPECT_EQ(pageBytes(PageSize::Size1G), 1024u * 1024 * 1024);

    EXPECT_EQ(framesPerPage(PageSize::Size4K), 1u);
    EXPECT_EQ(framesPerPage(PageSize::Size2M), 512u);
    EXPECT_EQ(framesPerPage(PageSize::Size1G), 262144u);
}

TEST(Types, PaperRunningExample)
{
    // Superpage B from Figure 2 sits at virtual 0x00400000.
    VAddr b = 0x00400000;
    EXPECT_EQ(vpnOf(b, PageSize::Size2M), 0x2u);
    EXPECT_EQ(vpn4kOf(b), 0x400u);
    EXPECT_EQ(pageBase(b + 0x1234, PageSize::Size2M), b);
    EXPECT_EQ(pageOffset(b + 0x1234, PageSize::Size2M), 0x1234u);
}

TEST(Types, VpnRoundTrip)
{
    for (VAddr va : {0x0ULL, 0xfffULL, 0x1000ULL, 0x3fffffffULL,
                     0x40000000ULL, 0x7fffffffffffULL}) {
        for (auto size : {PageSize::Size4K, PageSize::Size2M,
                          PageSize::Size1G}) {
            EXPECT_EQ(pageBase(va, size) + pageOffset(va, size), va);
        }
    }
}

TEST(IntMath, PowersAndLogs)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));

    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(4097), 12u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(IntMath, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1234, 0x1000), 0x2000u);
    EXPECT_EQ(alignUp(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
}

TEST(IntMath, BitsExtractInsert)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
    EXPECT_EQ(insertBits(0, 15, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffff, 7, 0, 0), 0xff00u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    bool all_equal_c = true;
    for (int i = 0; i < 100; i++) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            all_equal_c = false;
    }
    EXPECT_FALSE(all_equal_c);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++) {
        EXPECT_LT(rng.nextBounded(17), 17u);
        auto v = rng.nextRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        auto d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, UniformityRoughly)
{
    Rng rng(11);
    std::array<int, 10> hist{};
    const int n = 100000;
    for (int i = 0; i < n; i++)
        hist[rng.nextBounded(10)]++;
    for (int count : hist) {
        EXPECT_GT(count, n / 10 * 0.9);
        EXPECT_LT(count, n / 10 * 1.1);
    }
}

TEST(Zipf, RanksSkewTowardZero)
{
    ZipfSampler zipf(1000, 0.99, 3);
    std::map<std::uint64_t, int> hist;
    const int n = 50000;
    for (int i = 0; i < n; i++) {
        auto rank = zipf.sample();
        ASSERT_LT(rank, 1000u);
        hist[rank]++;
    }
    // Rank 0 must be (much) more popular than rank 500.
    EXPECT_GT(hist[0], 10 * (hist.count(500) ? hist[500] : 0) + 10);
    // And the head should dominate: top-10 ranks > 25% of samples.
    int head = 0;
    for (std::uint64_t r = 0; r < 10; r++)
        head += hist.count(r) ? hist[r] : 0;
    EXPECT_GT(head, n / 4);
}

TEST(Stats, ScalarBasics)
{
    stats::StatGroup root("root");
    auto &s = root.addScalar("hits", "hit count");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    EXPECT_DOUBLE_EQ(root.scalar("hits").value(), 3.5);
    root.resetStats();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    stats::StatGroup root("root");
    auto &hits = root.addScalar("hits", "");
    auto &misses = root.addScalar("misses", "");
    root.addFormula("hit_rate", "hits / accesses", [&] {
        double total = hits.value() + misses.value();
        return total > 0 ? hits.value() / total : 0.0;
    });
    hits += 3;
    misses += 1;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("hit_rate"), std::string::npos);
    EXPECT_NE(os.str().find("0.75"), std::string::npos);
}

TEST(Stats, DistributionBuckets)
{
    stats::StatGroup root("root");
    auto &d = root.addDistribution("lat", "latency", 10.0, 4);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(1000); // overflow bucket
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
    EXPECT_DOUBLE_EQ(d.max(), 1000.0);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 2u);
    EXPECT_EQ(d.buckets().back(), 1u);
}

TEST(Stats, NestedGroupPaths)
{
    stats::StatGroup root("system");
    stats::StatGroup child("l1", &root);
    child.addScalar("hits", "") += 7;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("system.l1.hits"), std::string::npos);
}

TEST(StatsDeathTest, DuplicateNamePanics)
{
    stats::StatGroup root("root");
    root.addScalar("x", "");
    EXPECT_DEATH(root.addScalar("x", ""), "duplicate");
}

TEST(Json, ScalarsAndEscaping)
{
    using json::Value;
    EXPECT_EQ(Value{}.dump(0), "null");
    EXPECT_EQ(Value{true}.dump(0), "true");
    EXPECT_EQ(Value{std::uint64_t{42}}.dump(0), "42");
    EXPECT_EQ(Value{1.5}.dump(0), "1.5");
    EXPECT_EQ(Value{"plain"}.dump(0), "\"plain\"");
    EXPECT_EQ(Value{"q\"b\\s\nnl\tt"}.dump(0),
              "\"q\\\"b\\\\s\\nnl\\tt\"");
    EXPECT_EQ(Value{std::string(1, '\x01')}.dump(0), "\"\\u0001\"");
    // Large counters stay integral; non-finite values become null.
    EXPECT_EQ(Value{1e12}.dump(0), "1000000000000");
    EXPECT_EQ(Value{std::nan("")}.dump(0), "null");
}

TEST(Json, ObjectsAndArraysKeepInsertionOrder)
{
    auto doc = json::Value::object();
    doc["benchmark"] = "fig14";
    doc["jobs"] = 8u;
    auto &results = doc["results"];
    auto row = json::Value::object();
    row["label"] = "mcf/THS/mix";
    row["improvement"] = 12.25;
    results.push(std::move(row));
    results.push(json::Value::object());
    EXPECT_TRUE(doc.isObject());
    EXPECT_TRUE(doc["results"].isArray());
    EXPECT_EQ(doc["results"].size(), 2u);
    EXPECT_EQ(doc.dump(0),
              "{\"benchmark\":\"fig14\",\"jobs\":8,\"results\":"
              "[{\"label\":\"mcf/THS/mix\",\"improvement\":12.25},"
              "{}]}");
    // Pretty-printing only changes whitespace.
    std::string pretty = doc.dump(2);
    std::string stripped;
    bool in_string = false;
    for (std::size_t i = 0; i < pretty.size(); i++) {
        char c = pretty[i];
        if (c == '"' && (i == 0 || pretty[i - 1] != '\\'))
            in_string = !in_string;
        if (in_string || (c != ' ' && c != '\n'))
            stripped += c;
    }
    EXPECT_EQ(stripped, doc.dump(0));
}

TEST(Json, ParseRoundTripsItsOwnOutput)
{
    auto doc = json::Value::object();
    doc["benchmark"] = "fig14";
    doc["jobs"] = 8u;
    doc["rate"] = 0.1; // not exactly representable: needs %.17g
    doc["big"] = 1e12;
    doc["negative"] = -42;
    doc["flag"] = true;
    doc["nothing"] = json::Value{};
    doc["text"] = "q\"b\\s\nnl\tt";
    auto &results = doc["results"];
    auto row = json::Value::object();
    row["label"] = "mcf/THS/mix";
    row["improvement"] = 12.25;
    results.push(std::move(row));
    results.push(json::Value::object());

    for (int indent : {0, 2}) {
        auto parsed = json::Value::parse(doc.dump(indent));
        ASSERT_TRUE(parsed.has_value()) << indent;
        // Insertion order, numbers, and escapes all survive, so the
        // re-dump is byte-identical (the checkpoint/resume contract).
        EXPECT_EQ(parsed->dump(0), doc.dump(0)) << indent;
    }

    auto parsed = json::Value::parse(doc.dump(0));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->find("rate")->number(), 0.1);
    EXPECT_TRUE(parsed->find("flag")->boolean());
    EXPECT_TRUE(parsed->find("nothing")->isNull());
    EXPECT_EQ(parsed->find("text")->str(), "q\"b\\s\nnl\tt");
    EXPECT_EQ(parsed->find("results")->size(), 2u);
    EXPECT_EQ(parsed->find("absent"), nullptr);
}

TEST(Json, ParseHandlesUnicodeEscapes)
{
    auto parsed = json::Value::parse("\"a\\u00e9\\u4e2d\"");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->str(), "a\xc3\xa9\xe4\xb8\xad");
    // A surrogate pair encodes one astral-plane code point.
    auto pair = json::Value::parse("\"\\ud83d\\ude00\"");
    ASSERT_TRUE(pair.has_value());
    EXPECT_EQ(pair->str(), "\xf0\x9f\x98\x80");
}

TEST(Json, ParseRejectsMalformedDocuments)
{
    using json::Value;
    EXPECT_FALSE(Value::parse("").has_value());
    EXPECT_FALSE(Value::parse("{").has_value());
    EXPECT_FALSE(Value::parse("{\"a\": 1,}").has_value());
    EXPECT_FALSE(Value::parse("[1, 2").has_value());
    EXPECT_FALSE(Value::parse("\"unterminated").has_value());
    EXPECT_FALSE(Value::parse("\"bad\\escape\"").has_value());
    EXPECT_FALSE(Value::parse("nul").has_value());
    EXPECT_FALSE(Value::parse("1 trailing").has_value());
    EXPECT_FALSE(Value::parse("{} {}").has_value());
    // A truncated checkpoint line is malformed, never misparsed.
    EXPECT_FALSE(Value::parse("{\"i\": 3, \"record\": {\"la")
                     .has_value());
}

TEST(Json, WriteFileIsAtomicAndCleansUp)
{
    const std::string path = "/tmp/mixtlb_test_json_atomic.json";
    auto doc = json::Value::object();
    doc["value"] = 1;
    ASSERT_TRUE(json::writeFile(path, doc));
    // The temp file was renamed into place, not left behind.
    std::FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);

    // Overwrite: readers see the old or the new doc, never a torn one.
    doc["value"] = 2;
    ASSERT_TRUE(json::writeFile(path, doc));
    std::FILE *file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    std::string content(4096, '\0');
    content.resize(std::fread(content.data(), 1, content.size(), file));
    std::fclose(file);
    auto parsed = json::Value::parse(content);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("value")->number(), 2.0);
    std::remove(path.c_str());

    // Unwritable destination: failure is reported, no tmp litter.
    EXPECT_FALSE(json::writeFile("/nonexistent-dir/out.json", doc));
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    std::vector<int> counts(257, 0);
    {
        ThreadPool pool(8);
        for (std::size_t i = 0; i < counts.size(); i++)
            pool.submit([&counts, i] { counts[i]++; });
        pool.wait();
        for (int count : counts)
            EXPECT_EQ(count, 1);
        // The pool must be reusable after a wait().
        pool.submit([&counts] { counts[0]++; });
        pool.wait();
        EXPECT_EQ(counts[0], 2);
    }
}

TEST(ThreadPool, WaitRethrowsTaskException)
{
    ThreadPool pool(4);
    for (int i = 0; i < 16; i++) {
        pool.submit([i] {
            if (i == 7)
                throw std::runtime_error("task 7 failed");
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, FailedTaskDoesNotCancelOthers)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    for (int i = 0; i < 64; i++) {
        pool.submit([&completed, i] {
            if (i == 3)
                throw std::runtime_error("one bad task");
            completed++;
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // Every other task still ran to completion: the pool quarantines
    // the exception, it does not cancel the batch.
    EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, RemainsUsableAfterARethrow)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("first batch"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The error slot was cleared: the next batch runs cleanly.
    std::atomic<int> completed{0};
    for (int i = 0; i < 8; i++)
        pool.submit([&completed] { completed++; });
    pool.wait();
    EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPool, UnretrievedExceptionIsSafeAtDestruction)
{
    // A caller that never calls wait() must still get a clean join,
    // not a std::terminate from an in-flight exception.
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("never retrieved"); });
}

// ---------------------------------------------------------------------
// InlineVec: the fixed-capacity vector backing the walk hot path.

TEST(InlineVec, PushIndexIterateClear)
{
    InlineVec<int, 8> vec;
    EXPECT_TRUE(vec.empty());
    EXPECT_EQ(vec.capacity(), 8u);
    for (int i = 0; i < 5; i++)
        vec.push_back(i * 10);
    EXPECT_EQ(vec.size(), 5u);
    EXPECT_EQ(vec[0], 0);
    EXPECT_EQ(vec[4], 40);
    int sum = 0;
    for (int value : vec)
        sum += value;
    EXPECT_EQ(sum, 100);
    vec.clear();
    EXPECT_TRUE(vec.empty());
    EXPECT_EQ(vec.begin(), vec.end());
}

TEST(InlineVec, CopyTakesOnlyLiveElements)
{
    InlineVec<int, 4> vec;
    vec.push_back(7);
    vec.push_back(9);
    InlineVec<int, 4> copy(vec);
    EXPECT_EQ(copy.size(), 2u);
    EXPECT_EQ(copy[0], 7);
    EXPECT_EQ(copy[1], 9);
    copy.push_back(11); // independent storage
    EXPECT_EQ(vec.size(), 2u);
    InlineVec<int, 4> assigned;
    assigned.push_back(1);
    assigned = vec;
    EXPECT_EQ(assigned.size(), 2u);
    EXPECT_EQ(assigned[1], 9);
}

TEST(InlineVec, AssignAndAppend)
{
    InlineVec<int, 8> vec;
    vec.assign(3, 42);
    ASSERT_EQ(vec.size(), 3u);
    EXPECT_EQ(vec[2], 42);
    const int more[] = {1, 2, 3};
    vec.append(more, more + 3);
    ASSERT_EQ(vec.size(), 6u);
    EXPECT_EQ(vec[3], 1);
    EXPECT_EQ(vec[5], 3);
    vec.assign(2, 5); // assign replaces, not appends
    ASSERT_EQ(vec.size(), 2u);
    EXPECT_EQ(vec[1], 5);
}

TEST(InlineVecDeathTest, OverflowTrapsOnTheArchitecturalBound)
{
    InlineVec<int, 2> vec;
    vec.push_back(1);
    vec.push_back(2);
    EXPECT_DEATH(vec.push_back(3), "InlineVec overflow");
    InlineVec<int, 2> assigned;
    EXPECT_DEATH(assigned.assign(3, 0), "InlineVec overflow");
    const int more[] = {1, 2, 3};
    InlineVec<int, 2> appended;
    EXPECT_DEATH(appended.append(more, more + 3), "InlineVec overflow");
}

// ---------------------------------------------------------------------
// stats::Counter: integer-precision hot counters beside Scalars.

TEST(Stats, CountersAccumulateExactlyAndPrint)
{
    stats::StatGroup root("root");
    auto &walks = root.addCounter("walks", "walk count");
    ++walks;
    walks += 41;
    EXPECT_EQ(walks.value(), 42u);
    EXPECT_DOUBLE_EQ(root.value("walks"), 42.0);
    std::ostringstream out;
    root.dump(out);
    EXPECT_NE(out.str().find("walks"), std::string::npos);
    root.resetStats();
    EXPECT_EQ(walks.value(), 0u);
}

TEST(Stats, ValueReadsCountersAndScalarsThroughOnePath)
{
    stats::StatGroup root("root");
    stats::StatGroup child("child", &root);
    child.addCounter("hits", "") += 7;
    child.addScalar("ratio", "") += 0.5;
    EXPECT_DOUBLE_EQ(root.value("child.hits"), 7.0);
    EXPECT_DOUBLE_EQ(root.value("child.ratio"), 0.5);
}

TEST(StatsDeathTest, CounterScalarNameCollisionPanics)
{
    stats::StatGroup root("root");
    root.addCounter("x", "");
    EXPECT_DEATH(root.addScalar("x", ""), "duplicate");
    stats::StatGroup other("other");
    other.addScalar("y", "");
    EXPECT_DEATH(other.addCounter("y", ""), "duplicate");
}

TEST(StatsDeathTest, UnknownValueNamePanics)
{
    stats::StatGroup root("root");
    EXPECT_DEATH(root.value("nope"), "unknown stat");
}
