/**
 * @file
 * Tests for the MIX TLB, built around the paper's running example
 * (Figures 2-4, 7, 8): 4KB translation A, contiguous 2MB superpages
 * B and C, a 2-set TLB.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mem/phys_mem.hh"
#include "pt/page_table.hh"
#include "pt/walker.hh"
#include "tlb/mix.hh"

using namespace mixtlb;
using namespace mixtlb::tlb;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024 * MiB;

/** Figure 2 of the paper, with a real page table + walker behind it. */
struct MixFixture : ::testing::Test
{
    mem::PhysMem mem{8 * GiB};
    pt::PageTable table{mem};
    stats::StatGroup root{"test"};
    pt::Walker walker{table, &root};

    // Figure 2: A is a 4KB page; B and C are contiguous 2MB superpages
    // at virtual 0x00400000/0x00600000, physical 0x00000000/0x00200000.
    static constexpr VAddr A = 0x00000000;
    static constexpr VAddr B = 0x00400000;
    static constexpr VAddr C = 0x00600000;

    void
    mapFigure2()
    {
        table.map(A, 0x00400000, PageSize::Size4K);
        table.map(B, 0x00000000, PageSize::Size2M);
        table.map(C, 0x00200000, PageSize::Size2M);
    }

    /** Walk (sets A-bits) and return the result for a fill. */
    pt::WalkResult
    walkFor(VAddr vaddr, bool store = false)
    {
        auto result = walker.walk(vaddr, store);
        EXPECT_FALSE(result.pageFault());
        return result;
    }

    MixTlbParams
    twoSetParams(CoalesceMode mode = CoalesceMode::Bitmap)
    {
        MixTlbParams params;
        params.entries = 4;
        params.assoc = 2;
        params.mode = mode;
        return params;
    }

    /** Build a FillInfo from a walk; @p vaddr is the demanded address. */
    static FillInfo
    fillFrom(const pt::WalkResult &walk, VAddr vaddr = 0)
    {
        FillInfo fill;
        fill.leaf = *walk.leaf;
        fill.vaddr = vaddr ? vaddr : walk.leaf->vbase;
        fill.walk = &walk;
        return fill;
    }
};

} // anonymous namespace

TEST_F(MixFixture, SmallPageLookupUnchanged)
{
    mapFigure2();
    MixTlb tlb("mix", &root, twoSetParams());
    auto walk = walkFor(A);
    tlb.fill(fillFrom(walk));

    auto result = tlb.lookup(A + 0x123, false);
    ASSERT_TRUE(result.hit);
    EXPECT_EQ(result.xlate.translate(A + 0x123), 0x00400123u);
    EXPECT_FALSE(tlb.lookup(A + PageBytes4K, false).hit);
}

TEST_F(MixFixture, SuperpageFillCoalescesContiguousNeighbours)
{
    mapFigure2();
    MixTlb tlb("mix", &root, twoSetParams());
    // Touch C first so its accessed bit permits coalescing (Sec. 4.4).
    walkFor(C);
    auto walk = walkFor(B);
    tlb.fill(fillFrom(walk));

    // B and C both hit from the single coalesced (mirrored) entry.
    auto bhit = tlb.lookup(B + 0x1234, false);
    ASSERT_TRUE(bhit.hit);
    EXPECT_EQ(bhit.xlate.translate(B + 0x1234), 0x00001234u);
    auto chit = tlb.lookup(C + 0x4321, false);
    ASSERT_TRUE(chit.hit);
    EXPECT_EQ(chit.xlate.translate(C + 0x4321), 0x00204321u);
    EXPECT_EQ(root.value("mix.coalesces")
                  + root.value("mix.fills"),
              2.0); // one entry per set, however accounted
}

TEST_F(MixFixture, MirrorsServeEvenAndOddRegions)
{
    mapFigure2();
    MixTlb tlb("mix", &root, twoSetParams());
    auto walk = walkFor(B);
    tlb.fill(fillFrom(walk));

    // Figure 4: B0, B2 (even 4KB regions) probe set 0; B1, B3 probe
    // set 1. Both must hit because B was mirrored into both sets.
    for (unsigned region = 0; region < 8; region++) {
        auto result = tlb.lookup(B + region * PageBytes4K, false);
        ASSERT_TRUE(result.hit) << "region " << region;
        EXPECT_EQ(result.xlate.translate(B + region * PageBytes4K),
                  region * PageBytes4K);
    }
    EXPECT_EQ(root.value("mix.mirror_writes"), 2.0);
}

TEST_F(MixFixture, UnaccessedNeighbourNotCoalescedAtFill)
{
    mapFigure2();
    MixTlb tlb("mix", &root, twoSetParams());
    // C has never been walked, so its accessed bit is clear; the x86
    // rule (Sec. 4.4) forbids coalescing it on B's fill.
    auto walk = walkFor(B);
    tlb.fill(fillFrom(walk));
    EXPECT_TRUE(tlb.lookup(B, false).hit);
    EXPECT_FALSE(tlb.lookup(C, false).hit);
}

TEST_F(MixFixture, LaterFillExtendsExistingBundle)
{
    mapFigure2();
    MixTlb tlb("mix", &root, twoSetParams());
    auto walk_b = walkFor(B);
    tlb.fill(fillFrom(walk_b));
    ASSERT_FALSE(tlb.lookup(C, false).hit);

    // A miss on C walks and merges C into B's bundle (Sec. 4.2).
    auto walk_c = walkFor(C);
    tlb.fill(fillFrom(walk_c));
    EXPECT_TRUE(tlb.lookup(C, false).hit);
    EXPECT_GT(root.value("mix.extensions"), 0.0);
}

TEST_F(MixFixture, NonContiguousPhysicalPagesDoNotCoalesce)
{
    table.map(B, 0x00000000, PageSize::Size2M);
    table.map(C, 0x00800000, PageSize::Size2M); // physical gap
    MixTlb tlb("mix", &root, twoSetParams());
    walkFor(C);
    auto walk = walkFor(B);
    tlb.fill(fillFrom(walk));
    EXPECT_TRUE(tlb.lookup(B, false).hit);
    // C is present in the line but not PA-contiguous: separate entry
    // needed, so a lookup before filling C misses.
    EXPECT_FALSE(tlb.lookup(C, false).hit);
}

TEST_F(MixFixture, DifferentPermissionsDoNotCoalesce)
{
    table.map(B, 0x00000000, PageSize::Size2M, pt::Perms{true, true});
    table.map(C, 0x00200000, PageSize::Size2M,
              pt::Perms{false, true}); // read-only
    MixTlb tlb("mix", &root, twoSetParams());
    walkFor(C);
    auto walk = walkFor(B);
    tlb.fill(fillFrom(walk));
    EXPECT_TRUE(tlb.lookup(B, false).hit);
    EXPECT_FALSE(tlb.lookup(C, false).hit);
}

TEST_F(MixFixture, DuplicateMirrorsCollapseOnProbe)
{
    // Figure 8's scenario on a 2-set, 2-way MIX TLB.
    mapFigure2();
    table.map(0x00001000, 0x00500000, PageSize::Size4K); // D -> set 1
    table.map(0x00003000, 0x00501000, PageSize::Size4K); // E -> set 1
    MixTlb tlb("mix", &root, twoSetParams());

    walkFor(C);
    auto walk_b = walkFor(B);
    tlb.fill(fillFrom(walk_b)); // B-C both sets

    auto walk_a = walkFor(A);
    tlb.fill(fillFrom(walk_a)); // A -> set 0

    // D and E evict set 1's B-C mirror.
    auto walk_d = walkFor(0x00001000);
    tlb.fill(fillFrom(walk_d));
    auto walk_e = walkFor(0x00003000);
    tlb.fill(fillFrom(walk_e));
    EXPECT_FALSE(tlb.lookup(B + PageBytes4K, false).hit); // B1: set 1 miss
    EXPECT_TRUE(tlb.lookup(B, false).hit);                // B0: set 0 hit

    // Refill after the B1 miss: blind mirroring duplicates B-C in set 0.
    auto walk_b1 = walkFor(B + PageBytes4K);
    tlb.fill(fillFrom(walk_b1, B + PageBytes4K));

    // A probe of set 0 collapses duplicates; everything still hits and
    // the set serves both A... (A may have been evicted by the dup) and
    // both superpages.
    EXPECT_TRUE(tlb.lookup(B, false).hit);
    EXPECT_TRUE(tlb.lookup(C, false).hit);
}

TEST_F(MixFixture, BitmapInvalidationKeepsNeighbours)
{
    mapFigure2();
    MixTlb tlb("mix", &root, twoSetParams(CoalesceMode::Bitmap));
    walkFor(C);
    auto walk = walkFor(B);
    tlb.fill(fillFrom(walk));

    tlb.invalidate(B, PageSize::Size2M);
    EXPECT_FALSE(tlb.lookup(B, false).hit);
    EXPECT_TRUE(tlb.lookup(C, false).hit); // Sec. 4.4: C survives
}

TEST_F(MixFixture, LengthInvalidationDropsWholeBundle)
{
    mapFigure2();
    MixTlb tlb("mix", &root, twoSetParams(CoalesceMode::Length));
    walkFor(C);
    auto walk = walkFor(B);
    tlb.fill(fillFrom(walk));
    ASSERT_TRUE(tlb.lookup(C, false).hit);

    tlb.invalidate(B, PageSize::Size2M);
    EXPECT_FALSE(tlb.lookup(B, false).hit);
    EXPECT_FALSE(tlb.lookup(C, false).hit); // simple approach drops all
}

TEST_F(MixFixture, LengthModeStoresRuns)
{
    // Map 8 contiguous superpages filling one PD cache line.
    for (int i = 0; i < 8; i++) {
        table.map(B + i * PageBytes2M, 0x10000000 + i * PageBytes2M,
                  PageSize::Size2M);
        walkFor(B + i * PageBytes2M);
    }
    MixTlbParams params = twoSetParams(CoalesceMode::Length);
    params.entries = 16;
    params.assoc = 2; // 8 sets, window = 8 superpages
    MixTlb tlb("mix", &root, params);
    auto walk = walkFor(B + 3 * PageBytes2M);
    tlb.fill(fillFrom(walk));
    for (int i = 0; i < 8; i++) {
        VAddr va = B + i * PageBytes2M + 0x999;
        // Window base is 16MB-aligned = 0x00000000; B (0x00400000) is
        // slot 2. Slots 2..7 sit in B's aligned window; slots beyond
        // come from the next window.
        auto result = tlb.lookup(va, false);
        if (B + i * PageBytes2M < 0x01000000) {
            ASSERT_TRUE(result.hit) << i;
            EXPECT_EQ(result.xlate.translate(va),
                      0x10000000 + i * PageBytes2M + 0x999);
        }
    }
}

TEST_F(MixFixture, AlignmentRestrictionClipsWindow)
{
    // Superpages at slots 2..5 of an 8-slot window coalesce; with a
    // 2-superpage window (2-set TLB), B (slot 2) and C (slot 3) fall in
    // different 2-superpage windows: B pairs with the slot-2 window.
    mapFigure2();
    MixTlb tlb("mix", &root, twoSetParams());
    walkFor(C);
    auto walk = walkFor(B);
    tlb.fill(fillFrom(walk));
    // B at 0x00400000 is an even 2MB slot; its 2-wide window is
    // [0x00400000, 0x00800000), which contains C. Both coalesce.
    EXPECT_TRUE(tlb.lookup(B, false).hit);
    EXPECT_TRUE(tlb.lookup(C, false).hit);

    // Now the misaligned pair: superpages at odd/even boundary crossing
    // a window edge must NOT coalesce.
    table.map(0x00a00000, 0x00a00000, PageSize::Size2M); // odd slot 5
    table.map(0x00c00000, 0x00c00000, PageSize::Size2M); // even slot 6
    walkFor(0x00c00000);
    auto walk2 = walkFor(0x00a00000);
    tlb.fill(fillFrom(walk2));
    EXPECT_TRUE(tlb.lookup(0x00a00000, false).hit);
    // 0x00c00000 belongs to the next window: not coalesced by this fill.
    EXPECT_FALSE(tlb.lookup(0x00c00000, false).hit);
}

TEST_F(MixFixture, BundleDirtyBitIsAndOfMembers)
{
    mapFigure2();
    table.setDirty(C); // C dirty, B clean
    MixTlb tlb("mix", &root, twoSetParams());
    walkFor(C);
    auto walk = walkFor(B);
    tlb.fill(fillFrom(walk));
    auto result = tlb.lookup(C, false);
    ASSERT_TRUE(result.hit);
    EXPECT_FALSE(result.entryDirty); // B clean -> bundle clean

    // markDirty must not set a multi-page bundle's dirty bit.
    tlb.markDirty(C);
    EXPECT_FALSE(tlb.lookup(C, false).entryDirty);
}

TEST_F(MixFixture, SingletonDirtyBitSets)
{
    table.map(B, 0x00000000, PageSize::Size2M);
    MixTlb tlb("mix", &root, twoSetParams());
    auto walk = walkFor(B);
    tlb.fill(fillFrom(walk));
    ASSERT_FALSE(tlb.lookup(B, false).entryDirty);
    tlb.markDirty(B);
    EXPECT_TRUE(tlb.lookup(B, false).entryDirty);
}

TEST_F(MixFixture, ColtModeCoalescesSmallPages)
{
    // Four VA+PA contiguous small pages in one aligned group.
    for (int i = 0; i < 4; i++) {
        table.map(0x00010000 + i * PageBytes4K,
                  0x00800000 + i * PageBytes4K, PageSize::Size4K);
        walkFor(0x00010000 + i * PageBytes4K);
    }
    MixTlbParams params = twoSetParams();
    params.colt4k = 4;
    MixTlb tlb("mixcolt", &root, params);
    auto walk = walkFor(0x00010000);
    tlb.fill(fillFrom(walk));
    for (int i = 0; i < 4; i++) {
        auto result = tlb.lookup(0x00010000 + i * PageBytes4K, false);
        ASSERT_TRUE(result.hit) << i;
        EXPECT_EQ(result.xlate.translate(0x00010000 + i * PageBytes4K),
                  0x00800000u + i * PageBytes4K);
    }
    // One entry in one set serves all four pages.
    EXPECT_EQ(root.value("mixcolt.fills"), 1.0);
}

TEST_F(MixFixture, SuperpageIndexAblationConflictsOnSmallPages)
{
    // With 2MB index bits, adjacent 4KB pages all map to one set
    // (Sec. 3's rejected design): a 2-way TLB thrashes on 3 pages.
    MixTlbParams params = twoSetParams();
    params.superpageIndexBits = true;
    MixTlb tlb("mixsp", &root, params);
    for (int i = 0; i < 3; i++) {
        table.map(0x00010000 + i * PageBytes4K,
                  0x00800000 + i * PageBytes4K, PageSize::Size4K);
        auto walk = walkFor(0x00010000 + i * PageBytes4K);
        tlb.fill(fillFrom(walk));
    }
    // All three went to the same set (2 ways): the first was evicted.
    EXPECT_FALSE(tlb.lookup(0x00010000, false).hit);

    // The normal MIX spreads them over sets and keeps all three.
    MixTlb tlb2("mixnorm", &root, twoSetParams());
    for (int i = 0; i < 3; i++) {
        auto walk = walkFor(0x00010000 + i * PageBytes4K);
        tlb2.fill(fillFrom(walk));
    }
    EXPECT_TRUE(tlb2.lookup(0x00010000, false).hit);
}

TEST_F(MixFixture, OneGigabytePagesSupported)
{
    table.map(4 * GiB, 1 * GiB, PageSize::Size1G);
    MixTlb tlb("mix", &root, twoSetParams());
    auto walk = walkFor(4 * GiB + 0x12345678);
    tlb.fill(fillFrom(walk));
    auto result = tlb.lookup(4 * GiB + 0x9999999, false);
    ASSERT_TRUE(result.hit);
    EXPECT_EQ(result.xlate.size, PageSize::Size1G);
    EXPECT_EQ(result.xlate.translate(4 * GiB + 0x9999999),
              1 * GiB + 0x9999999u);
}

TEST_F(MixFixture, MixedSizesShareTheArray)
{
    mapFigure2();
    MixTlbParams params;
    params.entries = 16;
    params.assoc = 4;
    MixTlb tlb("mix", &root, params);
    auto walk_a = walkFor(A);
    tlb.fill(fillFrom(walk_a));
    walkFor(C);
    auto walk_b = walkFor(B);
    tlb.fill(fillFrom(walk_b));
    EXPECT_TRUE(tlb.lookup(A, false).hit);
    EXPECT_TRUE(tlb.lookup(B, false).hit);
    EXPECT_TRUE(tlb.lookup(C, false).hit);
}

TEST_F(MixFixture, HitsAgreeWithPageTableProperty)
{
    // Property: every MIX hit must agree exactly with the page table.
    Rng rng(123);
    MixTlbParams params;
    params.entries = 64;
    params.assoc = 4;
    MixTlb tlb("mix", &root, params);

    // A mixture of sizes over a 1GB-aligned arena.
    std::vector<VAddr> vas;
    for (int i = 0; i < 20; i++) {
        VAddr va = 8 * GiB + i * PageBytes4K;
        table.map(va, 0x4000000 + i * PageBytes4K, PageSize::Size4K);
        vas.push_back(va);
    }
    for (int i = 0; i < 20; i++) {
        VAddr va = 9 * GiB + i * PageBytes2M;
        table.map(va, 0x40000000ULL + i * PageBytes2M, PageSize::Size2M);
        vas.push_back(va + (rng.next() % PageBytes2M));
    }

    for (int iter = 0; iter < 5000; iter++) {
        VAddr va = vas[rng.nextBounded(vas.size())];
        va = pageBase(va, PageSize::Size4K) + rng.nextBounded(PageBytes4K);
        auto result = tlb.lookup(va, false);
        auto truth = table.translate(va);
        ASSERT_TRUE(truth.has_value());
        if (result.hit) {
            ASSERT_EQ(result.xlate.translate(va), truth->translate(va))
                << std::hex << va;
        } else {
            auto walk = walkFor(va);
            tlb.fill(fillFrom(walk));
        }
    }
}

TEST_F(MixFixture, DirtyUpdateReachesMirrorCopies)
{
    // B alone: a singleton bundle, mirrored into both sets.
    table.map(B, 0x00000000, PageSize::Size2M);
    MixTlb tlb("mix", &root, twoSetParams());
    auto walk = walkFor(B);
    tlb.fill(fillFrom(walk));
    ASSERT_FALSE(tlb.lookup(B, false).entryDirty);
    ASSERT_FALSE(tlb.lookup(B + PageBytes4K, false).entryDirty);

    // The dirty micro-op probes set 0 (B's even 4KB regions); the
    // mirror in set 1 must be updated too, or a later probe of B
    // through an odd 4KB region hits a clean mirror and the hierarchy
    // re-issues the dirty micro-op for an already-dirty page.
    tlb.markDirty(B);
    EXPECT_TRUE(tlb.lookup(B, false).entryDirty);
    EXPECT_TRUE(tlb.lookup(B + PageBytes4K, false).entryDirty);
}

TEST(MixParams, RejectsColtWindowBeyondBitmap)
{
    // colt4k > 64 would shift the 64-bit membership bitmap by >= 64
    // (undefined behaviour) in buildEntry/invalidate; the constructor
    // must reject the configuration outright.
    stats::StatGroup root("guard");
    MixTlbParams params;
    params.entries = 256;
    params.assoc = 2;
    params.colt4k = 128;
    EXPECT_EXIT({ MixTlb tlb("bad", &root, params); },
                ::testing::ExitedWithCode(1), "colt4k");
}
