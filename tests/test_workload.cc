/**
 * @file
 * Tests for the synthetic workload generators: all references stay in
 * bounds, are deterministic per seed, and exhibit the locality
 * character their family claims.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/generator.hh"

using namespace mixtlb;
using namespace mixtlb::workload;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr VAddr Base = 1ULL << 32;

/** Count distinct 4KB pages touched in n references. */
std::uint64_t
pagesTouched(TraceGenerator &gen, int n)
{
    std::set<Vpn> pages;
    for (int i = 0; i < n; i++)
        pages.insert(vpn4kOf(gen.next().vaddr));
    return pages.size();
}

} // anonymous namespace

TEST(Workload, AllGeneratorsStayInBounds)
{
    const std::uint64_t bytes = 64 * MiB;
    for (const auto &spec : cpuWorkloads()) {
        auto gen = makeGenerator(spec.name, Base, bytes, 42);
        for (int i = 0; i < 20000; i++) {
            MemRef ref = gen->next();
            ASSERT_GE(ref.vaddr, Base) << spec.name;
            ASSERT_LT(ref.vaddr, Base + bytes) << spec.name;
        }
    }
    for (const auto &spec : gpuWorkloads()) {
        auto gen = makeGenerator(spec.name, Base, bytes, 42);
        for (int i = 0; i < 20000; i++) {
            MemRef ref = gen->next();
            ASSERT_GE(ref.vaddr, Base) << spec.name;
            ASSERT_LT(ref.vaddr, Base + bytes) << spec.name;
        }
    }
}

TEST(Workload, DeterministicPerSeed)
{
    auto a = makeGenerator("graph500", Base, 64 * MiB, 7);
    auto b = makeGenerator("graph500", Base, 64 * MiB, 7);
    auto c = makeGenerator("graph500", Base, 64 * MiB, 8);
    bool differs = false;
    for (int i = 0; i < 1000; i++) {
        auto ra = a->next(), rb = b->next(), rc = c->next();
        ASSERT_EQ(ra.vaddr, rb.vaddr);
        ASSERT_EQ(static_cast<int>(ra.type), static_cast<int>(rb.type));
        differs |= ra.vaddr != rc.vaddr;
    }
    EXPECT_TRUE(differs);
}

TEST(Workload, GupsHasNoLocality)
{
    GupsGen gups(Base, 256 * MiB, 3);
    // Random accesses over 64K pages: nearly every access is a new page.
    EXPECT_GT(pagesTouched(gups, 20000), 7000u);
}

TEST(Workload, GupsPairsReadsWithWrites)
{
    GupsGen gups(Base, 1 * MiB, 3);
    for (int i = 0; i < 100; i++) {
        MemRef read = gups.next();
        MemRef write = gups.next();
        EXPECT_EQ(static_cast<int>(read.type),
                  static_cast<int>(AccessType::Read));
        EXPECT_EQ(static_cast<int>(write.type),
                  static_cast<int>(AccessType::Write));
        EXPECT_EQ(read.vaddr, write.vaddr);
    }
}

TEST(Workload, StreamIsSequential)
{
    StreamGen stream(Base, 1 * MiB, 3, 64, 0.0);
    VAddr prev = stream.next().vaddr;
    for (int i = 0; i < 1000; i++) {
        VAddr cur = stream.next().vaddr;
        ASSERT_EQ(cur, prev + 64);
        prev = cur;
    }
}

TEST(Workload, StreamTouchesFewPagesPerReference)
{
    StreamGen stream(Base, 256 * MiB, 3, 64, 0.3);
    // 20000 sequential 64B refs cover 20000*64/4096 ~ 313 pages.
    auto pages = pagesTouched(stream, 20000);
    EXPECT_LE(pages, 320u);
    EXPECT_GE(pages, 300u);
}

TEST(Workload, ChaseStaysInWindowUntilDrift)
{
    PointerChaseGen chase(Base, 256 * MiB, 3, 1 * MiB, 0.0);
    for (int i = 0; i < 10000; i++) {
        VAddr va = chase.next().vaddr;
        ASSERT_LT(va, Base + 256 * MiB);
        // drift_prob = 0: stays in the initial window forever.
        ASSERT_LT(va - Base, 1 * MiB);
    }
}

TEST(Workload, GraphMixesRunsAndJumps)
{
    GraphWalkGen graph(Base, 256 * MiB, 3, 16, 0.8);
    // Sequential runs mean consecutive refs are often 8B apart.
    unsigned sequential = 0;
    VAddr prev = graph.next().vaddr;
    for (int i = 0; i < 10000; i++) {
        VAddr cur = graph.next().vaddr;
        sequential += (cur == prev + 8) ? 1 : 0;
        prev = cur;
    }
    EXPECT_GT(sequential, 5000u); // mostly runs...
    EXPECT_LT(sequential, 9990u); // ...but with jumps
}

TEST(Workload, KeyValueSkewsTowardHotObjects)
{
    KeyValueGen kv(Base, 256 * MiB, 3, 1 << 16, 512, 0.99, 0.1);
    // Zipf-popular keys mean far fewer distinct pages than gups.
    auto kv_pages = pagesTouched(kv, 20000);
    GupsGen gups(Base, 256 * MiB, 3);
    auto gups_pages = pagesTouched(gups, 20000);
    EXPECT_LT(kv_pages, gups_pages / 2);
}

TEST(Workload, RegistryNamesResolve)
{
    EXPECT_EQ(cpuWorkloads().size(), 11u);
    EXPECT_EQ(gpuWorkloads().size(), 6u);
    for (const auto &spec : cpuWorkloads())
        EXPECT_NE(makeGenerator(spec.name, Base, 8 * MiB, 1), nullptr);
}

TEST(WorkloadDeathTest, UnknownNameFails)
{
    EXPECT_DEATH(
        { makeGenerator("no-such-workload", Base, 8 * MiB, 1); },
        "unknown workload");
}
