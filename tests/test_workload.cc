/**
 * @file
 * Tests for the synthetic workload generators: all references stay in
 * bounds, are deterministic per seed, and exhibit the locality
 * character their family claims.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "common/contracts.hh"
#include "common/fault.hh"
#include "workload/generator.hh"
#include "workload/trace_file.hh"

using namespace mixtlb;
using namespace mixtlb::workload;

namespace
{

constexpr std::uint64_t MiB = 1024 * 1024;
constexpr VAddr Base = 1ULL << 32;

/** Count distinct 4KB pages touched in n references. */
std::uint64_t
pagesTouched(TraceGenerator &gen, int n)
{
    std::set<Vpn> pages;
    for (int i = 0; i < n; i++)
        pages.insert(vpn4kOf(gen.next().vaddr));
    return pages.size();
}

} // anonymous namespace

TEST(Workload, AllGeneratorsStayInBounds)
{
    const std::uint64_t bytes = 64 * MiB;
    for (const auto &spec : cpuWorkloads()) {
        auto gen = makeGenerator(spec.name, Base, bytes, 42);
        for (int i = 0; i < 20000; i++) {
            MemRef ref = gen->next();
            ASSERT_GE(ref.vaddr, Base) << spec.name;
            ASSERT_LT(ref.vaddr, Base + bytes) << spec.name;
        }
    }
    for (const auto &spec : gpuWorkloads()) {
        auto gen = makeGenerator(spec.name, Base, bytes, 42);
        for (int i = 0; i < 20000; i++) {
            MemRef ref = gen->next();
            ASSERT_GE(ref.vaddr, Base) << spec.name;
            ASSERT_LT(ref.vaddr, Base + bytes) << spec.name;
        }
    }
}

TEST(Workload, DeterministicPerSeed)
{
    auto a = makeGenerator("graph500", Base, 64 * MiB, 7);
    auto b = makeGenerator("graph500", Base, 64 * MiB, 7);
    auto c = makeGenerator("graph500", Base, 64 * MiB, 8);
    bool differs = false;
    for (int i = 0; i < 1000; i++) {
        auto ra = a->next(), rb = b->next(), rc = c->next();
        ASSERT_EQ(ra.vaddr, rb.vaddr);
        ASSERT_EQ(static_cast<int>(ra.type), static_cast<int>(rb.type));
        differs |= ra.vaddr != rc.vaddr;
    }
    EXPECT_TRUE(differs);
}

TEST(Workload, GupsHasNoLocality)
{
    GupsGen gups(Base, 256 * MiB, 3);
    // Random accesses over 64K pages: nearly every access is a new page.
    EXPECT_GT(pagesTouched(gups, 20000), 7000u);
}

TEST(Workload, GupsPairsReadsWithWrites)
{
    GupsGen gups(Base, 1 * MiB, 3);
    for (int i = 0; i < 100; i++) {
        MemRef read = gups.next();
        MemRef write = gups.next();
        EXPECT_EQ(static_cast<int>(read.type),
                  static_cast<int>(AccessType::Read));
        EXPECT_EQ(static_cast<int>(write.type),
                  static_cast<int>(AccessType::Write));
        EXPECT_EQ(read.vaddr, write.vaddr);
    }
}

TEST(Workload, StreamIsSequential)
{
    StreamGen stream(Base, 1 * MiB, 3, 64, 0.0);
    VAddr prev = stream.next().vaddr;
    for (int i = 0; i < 1000; i++) {
        VAddr cur = stream.next().vaddr;
        ASSERT_EQ(cur, prev + 64);
        prev = cur;
    }
}

TEST(Workload, StreamTouchesFewPagesPerReference)
{
    StreamGen stream(Base, 256 * MiB, 3, 64, 0.3);
    // 20000 sequential 64B refs cover 20000*64/4096 ~ 313 pages.
    auto pages = pagesTouched(stream, 20000);
    EXPECT_LE(pages, 320u);
    EXPECT_GE(pages, 300u);
}

TEST(Workload, ChaseStaysInWindowUntilDrift)
{
    PointerChaseGen chase(Base, 256 * MiB, 3, 1 * MiB, 0.0);
    for (int i = 0; i < 10000; i++) {
        VAddr va = chase.next().vaddr;
        ASSERT_LT(va, Base + 256 * MiB);
        // drift_prob = 0: stays in the initial window forever.
        ASSERT_LT(va - Base, 1 * MiB);
    }
}

TEST(Workload, GraphMixesRunsAndJumps)
{
    GraphWalkGen graph(Base, 256 * MiB, 3, 16, 0.8);
    // Sequential runs mean consecutive refs are often 8B apart.
    unsigned sequential = 0;
    VAddr prev = graph.next().vaddr;
    for (int i = 0; i < 10000; i++) {
        VAddr cur = graph.next().vaddr;
        sequential += (cur == prev + 8) ? 1 : 0;
        prev = cur;
    }
    EXPECT_GT(sequential, 5000u); // mostly runs...
    EXPECT_LT(sequential, 9990u); // ...but with jumps
}

TEST(Workload, KeyValueSkewsTowardHotObjects)
{
    KeyValueGen kv(Base, 256 * MiB, 3, 1 << 16, 512, 0.99, 0.1);
    // Zipf-popular keys mean far fewer distinct pages than gups.
    auto kv_pages = pagesTouched(kv, 20000);
    GupsGen gups(Base, 256 * MiB, 3);
    auto gups_pages = pagesTouched(gups, 20000);
    EXPECT_LT(kv_pages, gups_pages / 2);
}

TEST(Workload, RegistryNamesResolve)
{
    EXPECT_EQ(cpuWorkloads().size(), 11u);
    EXPECT_EQ(gpuWorkloads().size(), 6u);
    for (const auto &spec : cpuWorkloads())
        EXPECT_NE(makeGenerator(spec.name, Base, 8 * MiB, 1), nullptr);
}

TEST(WorkloadDeathTest, UnknownNameFails)
{
    EXPECT_DEATH(
        { makeGenerator("no-such-workload", Base, 8 * MiB, 1); },
        "unknown workload");
}

// ---------------------------------------------------------------------
// Trace-file validation: damaged traces raise recoverable SimErrors
// (kind "trace-corrupt") so a sweep quarantines the replaying point.

namespace
{

/** Record a small valid trace and return its path. */
std::string
recordedTrace(const char *name)
{
    std::string path = std::string("/tmp/") + name;
    auto gen = makeGenerator("gups", Base, 8 * MiB, 6);
    recordTrace(*gen, 64, path);
    return path;
}

/** Expect constructing a TraceFileGen for @p path to raise. */
void
expectCorrupt(const std::string &path, const char *fragment)
{
    try {
        TraceFileGen bad(path);
        FAIL() << "damaged trace accepted (" << fragment << ")";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), "trace-corrupt");
        EXPECT_NE(std::string(error.what()).find(fragment),
                  std::string::npos)
            << error.what();
    }
}

/** Overwrite @p size bytes at @p offset in the file at @p path. */
void
patchFile(const std::string &path, long offset, const void *bytes,
          std::size_t size)
{
    std::FILE *file = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(file, nullptr);
    std::fseek(file, offset, SEEK_SET);
    ASSERT_EQ(std::fwrite(bytes, 1, size, file), size);
    std::fclose(file);
}

constexpr long HeaderBytes = 16; ///< magic + version + count
constexpr long RecordBytes = 9;  ///< packed vaddr + type

} // anonymous namespace

TEST(TraceValidation, MissingFileRaisesIoError)
{
    try {
        TraceFileGen gone("/tmp/mixtlb_no_such_trace.bin");
        FAIL() << "missing trace accepted";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), "io");
    }
}

TEST(TraceValidation, TruncatedPayloadIsRejected)
{
    auto path = recordedTrace("mixtlb_test_trace_trunc.bin");
    ASSERT_EQ(std::filesystem::file_size(path),
              static_cast<std::uintmax_t>(HeaderBytes
                                          + 64 * RecordBytes));
    std::filesystem::resize_file(path,
                                 HeaderBytes + 64 * RecordBytes - 1);
    expectCorrupt(path, "size does not match");
    std::remove(path.c_str());
}

TEST(TraceValidation, TruncatedHeaderIsRejected)
{
    auto path = recordedTrace("mixtlb_test_trace_hdr.bin");
    std::filesystem::resize_file(path, HeaderBytes - 4);
    expectCorrupt(path, "truncated header");
    std::remove(path.c_str());
}

TEST(TraceValidation, UnsupportedVersionIsRejected)
{
    auto path = recordedTrace("mixtlb_test_trace_ver.bin");
    std::uint32_t version = 99;
    patchFile(path, 4, &version, sizeof(version));
    expectCorrupt(path, "unsupported version");
    std::remove(path.c_str());
}

TEST(TraceValidation, EmptyTraceIsRejected)
{
    const std::string path = "/tmp/mixtlb_test_trace_empty.bin";
    auto gen = makeGenerator("gups", Base, 8 * MiB, 6);
    recordTrace(*gen, 0, path); // header only, count = 0
    expectCorrupt(path, "empty trace");
    std::remove(path.c_str());
}

TEST(TraceValidation, InvalidRecordTypeIsRejectedAtRead)
{
    auto path = recordedTrace("mixtlb_test_trace_type.bin");
    std::uint8_t bad_type = 0x7f;
    patchFile(path, HeaderBytes + 5 * RecordBytes + 8, &bad_type,
              sizeof(bad_type));
    TraceFileGen replay(path);
    for (int i = 0; i < 5; i++)
        replay.next();
    try {
        replay.next();
        FAIL() << "invalid access type accepted";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), "trace-corrupt");
        EXPECT_NE(std::string(error.what()).find("invalid access type"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceValidation, OutOfRangeAddressIsRejectedAtRead)
{
    auto path = recordedTrace("mixtlb_test_trace_vaddr.bin");
    std::uint64_t bad_vaddr = 1ULL << 52;
    patchFile(path, HeaderBytes, &bad_vaddr, sizeof(bad_vaddr));
    TraceFileGen replay(path);
    try {
        replay.next();
        FAIL() << "out-of-range address accepted";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), "trace-corrupt");
        EXPECT_NE(std::string(error.what()).find("48-bit"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceValidation, InjectedCorruptionTripsTheSameValidation)
{
    auto path = recordedTrace("mixtlb_test_trace_inject.bin");
    TraceFileGen replay(path);
    auto faults = fault::FaultConfig::parse("trace-corrupt=1.0");
    fault::FaultScope scope(faults, 31, 0);
    try {
        replay.next();
        FAIL() << "injected corruption not detected";
    } catch (const SimError &error) {
        EXPECT_EQ(error.kind(), "trace-corrupt");
    }
    EXPECT_EQ(scope.fired(fault::Site::TraceCorrupt), 1u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// nextBatch parity: for every generator family, nextBatch() must emit
// exactly the stream next() would — including across batch boundaries
// that split gups' read/write pairs — or batched run loops would
// silently change every modeled statistic.

namespace
{

/** Drain @p gen through nextBatch using a mixed chunk schedule. */
std::vector<MemRef>
drainBatched(TraceGenerator &gen, std::size_t total)
{
    // Chunk sizes deliberately mix odd, one, and large: every gups
    // pair alignment and every internal-state carry gets exercised.
    static constexpr std::size_t Chunks[] = {1, 3, 7, 64, 2, 129, 5};
    std::vector<MemRef> out(total);
    std::size_t done = 0, turn = 0;
    while (done < total) {
        std::size_t n = std::min(Chunks[turn++ % std::size(Chunks)],
                                 total - done);
        gen.nextBatch(out.data() + done, n);
        done += n;
    }
    return out;
}

} // anonymous namespace

TEST(Workload, NextBatchMatchesNextForEveryFamily)
{
    std::vector<std::string> names;
    for (const auto &spec : cpuWorkloads())
        names.push_back(spec.name);
    for (const auto &spec : gpuWorkloads())
        names.push_back(spec.name);
    for (const auto &name : names) {
        SCOPED_TRACE(name);
        auto serial = makeGenerator(name, Base, 64 * MiB, 42);
        auto batched = makeGenerator(name, Base, 64 * MiB, 42);
        auto refs = drainBatched(*batched, 5000);
        for (std::size_t i = 0; i < refs.size(); i++) {
            MemRef want = serial->next();
            ASSERT_EQ(refs[i].vaddr, want.vaddr) << "ref " << i;
            ASSERT_EQ(static_cast<int>(refs[i].type),
                      static_cast<int>(want.type))
                << "ref " << i;
        }
    }
}

TEST(Workload, NextBatchCarriesGupsPairsAcrossBatchBoundaries)
{
    GupsGen serial(Base, 8 * MiB, 9);
    GupsGen batched(Base, 8 * MiB, 9);
    // Odd batch size: every batch ends mid-pair, so the write half
    // must carry over as pending state.
    std::vector<MemRef> refs(9);
    for (int round = 0; round < 50; round++) {
        batched.nextBatch(refs.data(), refs.size());
        for (const MemRef &ref : refs) {
            MemRef want = serial.next();
            ASSERT_EQ(ref.vaddr, want.vaddr);
            ASSERT_EQ(static_cast<int>(ref.type),
                      static_cast<int>(want.type));
        }
    }
}

TEST(Workload, NextBatchInterleavesWithNext)
{
    // Mixing the two entry points must still be one coherent stream.
    auto a = makeGenerator("gups", Base, 8 * MiB, 21);
    auto b = makeGenerator("gups", Base, 8 * MiB, 21);
    std::vector<MemRef> got;
    MemRef buffer[5];
    a->nextBatch(buffer, 5);
    got.insert(got.end(), buffer, buffer + 5);
    got.push_back(a->next());
    a->nextBatch(buffer, 4);
    got.insert(got.end(), buffer, buffer + 4);
    for (const MemRef &ref : got) {
        MemRef want = b->next();
        ASSERT_EQ(ref.vaddr, want.vaddr);
        ASSERT_EQ(static_cast<int>(ref.type),
                  static_cast<int>(want.type));
    }
}
